// Package backoff is the shared retry/backoff helper behind every
// recovery path in the system: the transport's reconnecting caller, the
// cloud layer's round-retry policy, the facade's retrying client plane,
// and sectopk-node's dial loop. One implementation means one failure
// model: capped exponential backoff with full jitter, cooperative
// context cancellation between attempts, and attempt histories attached
// to terminal failures so operators see what was tried, not just what
// finally failed.
package backoff

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Defaults used by the zero Policy. They favor fast local links (the
// paper's S1/S2 sit in the same cloud): first retry after ~25ms, growing
// 2x to a 2s cap.
const (
	DefaultInitial     = 25 * time.Millisecond
	DefaultMax         = 2 * time.Second
	DefaultFactor      = 2.0
	DefaultJitter      = 0.5
	DefaultMaxAttempts = 4
)

// Policy describes a capped exponential backoff schedule. The zero value
// uses the package defaults; set MaxAttempts < 0 for a single attempt
// (no retries) and MaxElapsed to bound the total retry window instead of
// (or in addition to) the attempt count.
type Policy struct {
	// Initial is the base delay before the first retry.
	Initial time.Duration
	// Max caps the per-retry delay after exponential growth.
	Max time.Duration
	// Factor is the exponential growth factor between retries.
	Factor float64
	// Jitter is the randomized fraction of each delay, in [0, 1]: the
	// actual sleep is d*(1-Jitter) + rand*d*Jitter, decorrelating
	// retry storms from concurrent callers.
	Jitter float64
	// MaxAttempts bounds the total tries (first call included).
	// 0 picks DefaultMaxAttempts; negative means exactly one attempt.
	MaxAttempts int
	// MaxElapsed, when positive, stops retrying once the time since the
	// first attempt exceeds it, regardless of the attempt count.
	MaxElapsed time.Duration
	// Rand, when non-nil, supplies the jitter randomness (for
	// deterministic tests). It must return values in [0, 1).
	Rand func() float64
}

// jitterMu guards the shared fallback randomness source.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func (p Policy) initial() time.Duration {
	if p.Initial > 0 {
		return p.Initial
	}
	return DefaultInitial
}

func (p Policy) max() time.Duration {
	if p.Max > 0 {
		return p.Max
	}
	return DefaultMax
}

func (p Policy) factor() float64 {
	if p.Factor > 1 {
		return p.Factor
	}
	return DefaultFactor
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return DefaultJitter
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}

// Attempts returns the effective attempt bound (>= 1), or 0 for
// unbounded (an explicit MaxElapsed window with no attempt cap).
func (p Policy) Attempts() int {
	switch {
	case p.MaxAttempts > 0:
		return p.MaxAttempts
	case p.MaxAttempts < 0:
		return 1
	case p.MaxElapsed > 0:
		return 0 // the elapsed window alone governs
	default:
		return DefaultMaxAttempts
	}
}

// Delay returns the randomized delay before retry number retry (1 is the
// first retry, i.e. before attempt 2).
func (p Policy) Delay(retry int) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := float64(p.initial())
	limit := float64(p.max())
	for i := 1; i < retry; i++ {
		d *= p.factor()
		if d >= limit {
			d = limit
			break
		}
	}
	if d > limit {
		d = limit
	}
	j := p.jitter()
	if j > 0 {
		var u float64
		if p.Rand != nil {
			u = p.Rand()
		} else {
			jitterMu.Lock()
			u = jitterRand.Float64()
			jitterMu.Unlock()
		}
		d = d*(1-j) + d*j*u
	}
	return time.Duration(d)
}

// Sleep waits the randomized delay for retry number retry, returning
// early with the context's error if it fires first.
func (p Policy) Sleep(ctx context.Context, retry int) error {
	d := p.Delay(retry)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Attempt records one failed try for the attempt history.
type Attempt struct {
	// N is the attempt number, starting at 1.
	N int
	// Err is that attempt's failure.
	Err error
}

// ExhaustedError is the terminal failure of a retried operation: the
// last error (which Unwrap exposes, so errors.Is/As classify the failure
// by its final cause) plus the full attempt history.
type ExhaustedError struct {
	// Op names the retried operation.
	Op string
	// Attempts holds every failed try in order; the last entry is the
	// terminal one.
	Attempts []Attempt
	// GaveUp says why retrying stopped: "attempts", "elapsed",
	// "non-retryable", or "context".
	GaveUp string
}

// Error renders the terminal failure with the attempt history attached.
func (e *ExhaustedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %v", e.Op, e.Attempts[len(e.Attempts)-1].Err)
	fmt.Fprintf(&b, " (gave up after %d attempt(s): %s", len(e.Attempts), e.GaveUp)
	if len(e.Attempts) > 1 {
		b.WriteString("; earlier:")
		for _, a := range e.Attempts[:len(e.Attempts)-1] {
			fmt.Fprintf(&b, " [#%d %v]", a.N, a.Err)
		}
	}
	b.WriteString(")")
	return b.String()
}

// Unwrap exposes the final attempt's error so errors.Is/As keep
// classifying the failure by its last cause.
func (e *ExhaustedError) Unwrap() error {
	return e.Attempts[len(e.Attempts)-1].Err
}

// Retry runs fn until it succeeds, the policy is exhausted, the error is
// ruled non-retryable, or the context is done. retryable may be nil
// (every error retries). The terminal error is an *ExhaustedError
// carrying the attempt history and wrapping the final cause.
func Retry(ctx context.Context, op string, p Policy, retryable func(error) bool, fn func(ctx context.Context) error) error {
	start := time.Now()
	var history []Attempt
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if len(history) == 0 {
				return err
			}
			return &ExhaustedError{Op: op, Attempts: append(history, Attempt{N: attempt, Err: err}), GaveUp: "context"}
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		history = append(history, Attempt{N: attempt, Err: err})
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
			// The caller gave up; surfacing promptly beats another retry.
			return &ExhaustedError{Op: op, Attempts: history, GaveUp: "context"}
		case retryable != nil && !retryable(err):
			return &ExhaustedError{Op: op, Attempts: history, GaveUp: "non-retryable"}
		case p.Attempts() > 0 && attempt >= p.Attempts():
			return &ExhaustedError{Op: op, Attempts: history, GaveUp: "attempts"}
		case p.MaxElapsed > 0 && time.Since(start) >= p.MaxElapsed:
			return &ExhaustedError{Op: op, Attempts: history, GaveUp: "elapsed"}
		}
		if serr := p.Sleep(ctx, attempt); serr != nil {
			return &ExhaustedError{Op: op, Attempts: append(history, Attempt{N: attempt + 1, Err: serr}), GaveUp: "context"}
		}
	}
}
