package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelaySchedule pins the jitter-free exponential schedule: growth by
// Factor from Initial, capped at Max.
func TestDelaySchedule(t *testing.T) {
	p := Policy{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestDelayJitterBounds checks jittered delays stay within the
// [d*(1-j), d] envelope and use the injected randomness.
func TestDelayJitterBounds(t *testing.T) {
	for _, u := range []float64{0, 0.5, 0.999} {
		p := Policy{Initial: 100 * time.Millisecond, Max: time.Second, Jitter: 0.4, Rand: func() float64 { return u }}
		d := p.Delay(1)
		lo := 60 * time.Millisecond
		hi := 100 * time.Millisecond
		if d < lo || d > hi {
			t.Errorf("u=%v: Delay = %v, want within [%v, %v]", u, d, lo, hi)
		}
	}
}

// TestRetrySucceedsAfterTransientFailures pins the basic recovery path:
// the first failures retry, the eventual success returns nil.
func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), "op", Policy{Initial: time.Millisecond, Jitter: -1}, nil,
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// TestRetryExhaustsAttemptsWithHistory checks the terminal error carries
// every attempt and unwraps to the final cause.
func TestRetryExhaustsAttemptsWithHistory(t *testing.T) {
	sentinel := errors.New("still down")
	calls := 0
	err := Retry(context.Background(), "op", Policy{Initial: time.Millisecond, MaxAttempts: 3, Jitter: -1}, nil,
		func(context.Context) error { calls++; return sentinel })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %T, want *ExhaustedError", err)
	}
	if len(ex.Attempts) != 3 || ex.GaveUp != "attempts" {
		t.Fatalf("history = %d attempts, gaveUp = %q; want 3, attempts", len(ex.Attempts), ex.GaveUp)
	}
	if !errors.Is(err, sentinel) {
		t.Fatal("terminal error does not unwrap to the final cause")
	}
}

// TestRetryNonRetryableSurfacesImmediately checks the retryable
// predicate stops the loop on the first ineligible failure.
func TestRetryNonRetryableSurfacesImmediately(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Retry(context.Background(), "op", Policy{Initial: time.Millisecond, Jitter: -1},
		func(err error) bool { return !errors.Is(err, fatal) },
		func(context.Context) error { calls++; return fatal })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.GaveUp != "non-retryable" {
		t.Fatalf("err = %v, want non-retryable ExhaustedError", err)
	}
	if !errors.Is(err, fatal) {
		t.Fatal("terminal error does not unwrap to the cause")
	}
}

// TestRetryContextCanceledMidBackoff checks a context canceled while
// sleeping between attempts surfaces context.Canceled promptly.
func TestRetryContextCanceledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, "op", Policy{Initial: time.Minute, Jitter: -1}, nil,
			func(context.Context) error { calls++; return errors.New("transient") })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not return promptly after cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestRetryElapsedWindow checks MaxElapsed with no attempt cap keeps
// retrying until the window closes, then reports "elapsed".
func TestRetryElapsedWindow(t *testing.T) {
	calls := 0
	start := time.Now()
	err := Retry(context.Background(), "op",
		Policy{Initial: time.Millisecond, Max: time.Millisecond, MaxElapsed: 50 * time.Millisecond, Jitter: -1},
		nil, func(context.Context) error { calls++; return errors.New("down") })
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.GaveUp != "elapsed" {
		t.Fatalf("err = %v, want elapsed ExhaustedError", err)
	}
	if calls < 5 {
		t.Fatalf("calls = %d, want many within the window", calls)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry window ran far past MaxElapsed")
	}
}
