package zmath

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func TestRandIntRange(t *testing.T) {
	n := big.NewInt(1000)
	for i := 0; i < 200; i++ {
		r, err := RandInt(rand.Reader, n)
		if err != nil {
			t.Fatalf("RandInt: %v", err)
		}
		if r.Sign() < 0 || r.Cmp(n) >= 0 {
			t.Fatalf("RandInt out of range: %v", r)
		}
	}
}

func TestRandIntRejectsNonPositive(t *testing.T) {
	if _, err := RandInt(rand.Reader, big.NewInt(0)); err == nil {
		t.Fatal("expected error for zero bound")
	}
	if _, err := RandInt(rand.Reader, big.NewInt(-5)); err == nil {
		t.Fatal("expected error for negative bound")
	}
}

func TestRandRange(t *testing.T) {
	lo, hi := big.NewInt(50), big.NewInt(60)
	seen := map[int64]bool{}
	for i := 0; i < 500; i++ {
		r, err := RandRange(rand.Reader, lo, hi)
		if err != nil {
			t.Fatalf("RandRange: %v", err)
		}
		if r.Cmp(lo) < 0 || r.Cmp(hi) >= 0 {
			t.Fatalf("RandRange out of range: %v", r)
		}
		seen[r.Int64()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("expected all 10 values to appear, saw %d", len(seen))
	}
	if _, err := RandRange(rand.Reader, hi, lo); err == nil {
		t.Fatal("expected error for empty range")
	}
}

func TestRandUnit(t *testing.T) {
	n := big.NewInt(35) // 5 * 7
	gcd := new(big.Int)
	for i := 0; i < 100; i++ {
		r, err := RandUnit(rand.Reader, n)
		if err != nil {
			t.Fatalf("RandUnit: %v", err)
		}
		if gcd.GCD(nil, nil, r, n); gcd.Cmp(One) != 0 {
			t.Fatalf("RandUnit returned non-unit %v mod %v", r, n)
		}
	}
}

func TestModInverse(t *testing.T) {
	n := big.NewInt(101)
	for a := int64(1); a < 101; a++ {
		inv, err := ModInverse(big.NewInt(a), n)
		if err != nil {
			t.Fatalf("ModInverse(%d): %v", a, err)
		}
		prod := new(big.Int).Mul(inv, big.NewInt(a))
		prod.Mod(prod, n)
		if prod.Cmp(One) != 0 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	if _, err := ModInverse(big.NewInt(10), big.NewInt(20)); err != ErrNotInvertible {
		t.Fatalf("expected ErrNotInvertible, got %v", err)
	}
}

func TestSigned(t *testing.T) {
	n := big.NewInt(101)
	cases := []struct{ in, want int64 }{
		{0, 0}, {1, 1}, {50, 50}, {51, -50}, {100, -1}, {99, -2},
	}
	for _, c := range cases {
		got := Signed(big.NewInt(c.in), n)
		if got.Int64() != c.want {
			t.Errorf("Signed(%d, 101) = %v, want %d", c.in, got, c.want)
		}
	}
}

func TestSignedRoundTrip(t *testing.T) {
	n := big.NewInt(1 << 40)
	f := func(v int32) bool {
		x := big.NewInt(int64(v))
		residue := new(big.Int).Mod(x, n)
		return Signed(residue, n).Int64() == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsNegative(t *testing.T) {
	n := big.NewInt(1001)
	if IsNegative(big.NewInt(3), n) {
		t.Error("3 should not be negative")
	}
	if !IsNegative(big.NewInt(1000), n) {
		t.Error("n-1 should be negative (-1)")
	}
}

func TestLcm(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{4, 6, 12}, {5, 7, 35}, {12, 18, 36}, {1, 9, 9},
	}
	for _, c := range cases {
		got := Lcm(big.NewInt(c.a), big.NewInt(c.b))
		if got.Int64() != c.want {
			t.Errorf("Lcm(%d,%d) = %v, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCRTPair(t *testing.T) {
	p, q := big.NewInt(11), big.NewInt(13)
	pInv := new(big.Int).ModInverse(p, q)
	for x := int64(0); x < 143; x++ {
		a := big.NewInt(x % 11)
		b := big.NewInt(x % 13)
		got := CRTPair(a, b, p, q, pInv)
		if got.Int64() != x {
			t.Fatalf("CRTPair failed for x=%d: got %v", x, got)
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for k, w := range want {
		if got := Factorial(k); got.Int64() != w {
			t.Errorf("Factorial(%d) = %v, want %d", k, got, w)
		}
	}
}

func TestBatchModInverse(t *testing.T) {
	n := big.NewInt(10007) // prime
	xs := []*big.Int{
		big.NewInt(1), big.NewInt(2), big.NewInt(9999), big.NewInt(123),
		big.NewInt(10006), big.NewInt(5000), big.NewInt(7),
	}
	invs, err := BatchModInverse(xs, n)
	if err != nil {
		t.Fatalf("BatchModInverse: %v", err)
	}
	if len(invs) != len(xs) {
		t.Fatalf("got %d inverses for %d inputs", len(invs), len(xs))
	}
	for i, x := range xs {
		want, err := ModInverse(x, n)
		if err != nil {
			t.Fatalf("ModInverse(%v): %v", x, err)
		}
		if invs[i].Cmp(want) != 0 {
			t.Errorf("inverse %d: got %v want %v", i, invs[i], want)
		}
	}
}

func TestBatchModInverseLarge(t *testing.T) {
	n, _ := new(big.Int).SetString("fffffffffffffffffffffffffffffffeffffffffffffffff", 16)
	xs := make([]*big.Int, 50)
	for i := range xs {
		r, err := RandUnit(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = r
	}
	invs, err := BatchModInverse(xs, n)
	if err != nil {
		t.Fatalf("BatchModInverse: %v", err)
	}
	prod := new(big.Int)
	for i := range xs {
		prod.Mul(xs[i], invs[i])
		prod.Mod(prod, n)
		if prod.Cmp(One) != 0 {
			t.Fatalf("x * x^-1 != 1 at %d", i)
		}
	}
}

func TestBatchModInverseErrors(t *testing.T) {
	n := big.NewInt(20)
	if _, err := BatchModInverse([]*big.Int{big.NewInt(3), big.NewInt(10)}, n); err != ErrNotInvertible {
		t.Fatalf("expected ErrNotInvertible, got %v", err)
	}
	out, err := BatchModInverse(nil, n)
	if err != nil || out != nil {
		t.Fatalf("empty input should be a no-op, got %v, %v", out, err)
	}
}

func TestFixedBaseTableFixedVectors(t *testing.T) {
	m := big.NewInt(1000003)
	base := big.NewInt(12345)
	tab, err := NewFixedBaseTable(base, m, 4, 64)
	if err != nil {
		t.Fatalf("NewFixedBaseTable: %v", err)
	}
	// Fixed vectors spanning zero, single-window, window-boundary, and
	// maximum-width exponents.
	for _, e := range []uint64{0, 1, 2, 15, 16, 17, 255, 256, 65535, 1 << 32, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		exp := new(big.Int).SetUint64(e)
		got, err := tab.Exp(exp)
		if err != nil {
			t.Fatalf("Exp(%d): %v", e, err)
		}
		want := new(big.Int).Exp(base, exp, m)
		if got.Cmp(want) != 0 {
			t.Errorf("Exp(%d) = %v, want %v", e, got, want)
		}
	}
}

func TestFixedBaseTableRandom(t *testing.T) {
	m, _ := new(big.Int).SetString("c90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74020bbea63b139b22514a08798e3404dd", 16)
	base, err := RandUnit(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []uint{1, 3, 6, 8} {
		tab, err := NewFixedBaseTable(base, m, w, 256)
		if err != nil {
			t.Fatalf("NewFixedBaseTable(w=%d): %v", w, err)
		}
		for i := 0; i < 20; i++ {
			e, err := RandInt(rand.Reader, new(big.Int).Lsh(One, 256))
			if err != nil {
				t.Fatal(err)
			}
			got, err := tab.Exp(e)
			if err != nil {
				t.Fatalf("Exp: %v", err)
			}
			if want := new(big.Int).Exp(base, e, m); got.Cmp(want) != 0 {
				t.Fatalf("w=%d: Exp(%v) mismatch", w, e)
			}
		}
	}
}

func TestFixedBaseTableErrors(t *testing.T) {
	m := big.NewInt(101)
	if _, err := NewFixedBaseTable(big.NewInt(2), m, 0, 16); err == nil {
		t.Error("expected error for window 0")
	}
	if _, err := NewFixedBaseTable(big.NewInt(2), m, 17, 16); err == nil {
		t.Error("expected error for window 17")
	}
	if _, err := NewFixedBaseTable(big.NewInt(0), m, 4, 16); err == nil {
		t.Error("expected error for zero base")
	}
	if _, err := NewFixedBaseTable(big.NewInt(2), m, 4, 0); err == nil {
		t.Error("expected error for maxBits 0")
	}
	tab, err := NewFixedBaseTable(big.NewInt(2), m, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tab.MaxBits() != 16 {
		t.Errorf("MaxBits = %d, want 16", tab.MaxBits())
	}
	if _, err := tab.Exp(big.NewInt(1 << 17)); err == nil {
		t.Error("expected error for oversized exponent")
	}
	if _, err := tab.Exp(big.NewInt(-1)); err == nil {
		t.Error("expected error for negative exponent")
	}
}
