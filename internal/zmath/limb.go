package zmath

import "math/bits"

// Fixed-width limb kernels for the Montgomery engine. All slices are
// little-endian uint64 limb vectors of exactly k = len(n) limbs unless
// noted; callers guarantee the shapes, so the kernels carry no validation.
// The temporaries come from the owning Modulus's scratch pool — none of
// these functions allocate.

// ciosMul is the fused CIOS (coarsely integrated operand scanning)
// Montgomery multiplication: z = x * y * 2^{-64k} mod n, for x, y < n and
// odd n with n0inv = -n^{-1} mod 2^64. t is a scratch vector of at least
// k+1 limbs. The multiplication and the REDC reduction interleave one
// outer-loop row at a time, so the double-width product never
// materializes and the word shift after each reduction row is implicit in
// the t[j-1] store — the structure that makes this the fastest path for
// half-width moduli (see DESIGN.md "Montgomery engine": the pure-Go
// kernel beats math/big's divide-based Mod below ~12 limbs, while the
// redc hybrid wins above).
func ciosMul(z, x, y, n []uint64, n0inv uint64, t []uint64) {
	k := len(n)
	t = t[:k+1]
	for i := range t {
		t[i] = 0
	}
	y = y[:k]
	var tk1 uint64 // the (k+2)-th accumulator word, always 0 or 1
	for i := 0; i < k; i++ {
		xi := x[i]
		// t += x[i] * y
		var c uint64
		for j := 0; j < k; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			t[j] = lo
			c = hi + cc
		}
		var cc uint64
		t[k], cc = bits.Add64(t[k], c, 0)
		tk1 = cc
		// Reduction row: add m*n and divide by 2^64, folding the shift
		// into the t[j-1] stores.
		m := t[0] * n0inv
		hi, lo := bits.Mul64(m, n[0])
		_, cc = bits.Add64(lo, t[0], 0) // low word becomes zero by choice of m
		c = hi + cc
		for j := 1; j < k; j++ {
			hi, lo := bits.Mul64(m, n[j])
			var c2 uint64
			lo, c2 = bits.Add64(lo, t[j], 0)
			hi += c2
			lo, c2 = bits.Add64(lo, c, 0)
			t[j-1] = lo
			c = hi + c2
		}
		t[k-1], cc = bits.Add64(t[k], c, 0)
		t[k] = tk1 + cc
		tk1 = 0
	}
	if t[k] != 0 || !limbsLess(t[:k], n) {
		limbsSub(z, t[:k], n)
	} else {
		copy(z, t[:k])
	}
}

// redc performs the standalone Montgomery reduction z = t * 2^{-64k} mod n
// over a full double-width accumulator t of exactly 2k+1 limbs (the top
// limb absorbs the final carry; callers zero-extend shorter values). t is
// destroyed. Requires t's value < n * 2^{64k}, which holds for products of
// reduced operands and for plain domain exits. This is the second half of
// the hybrid multiply path: the k x k product comes from math/big's
// assembly multiplier, and this pass strips the 2^{64k} factor.
func redc(z, n []uint64, n0inv uint64, t []uint64) {
	k := len(n)
	for i := 0; i < k; i++ {
		m := t[i] * n0inv
		var c uint64
		for j := 0; j < k; j++ {
			hi, lo := bits.Mul64(m, n[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[i+j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			t[i+j] = lo
			c = hi + cc
		}
		for p := i + k; c != 0; p++ {
			t[p], c = bits.Add64(t[p], c, 0)
		}
	}
	u := t[k : 2*k+1]
	if u[k] != 0 || !limbsLess(u[:k], n) {
		limbsSub(z, u[:k], n)
	} else {
		copy(z, u[:k])
	}
}

// limbsLess reports a < b for equal-length limb vectors.
func limbsLess(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// limbsSub sets z = a - b for equal-length vectors with a >= b.
func limbsSub(z, a, b []uint64) {
	var borrow uint64
	for i := range a {
		z[i], borrow = bits.Sub64(a[i], b[i], borrow)
	}
}

// limbsZero reports whether the vector is zero.
func limbsZero(a []uint64) bool {
	for _, w := range a {
		if w != 0 {
			return false
		}
	}
	return true
}

// negInvMod64 returns -n^{-1} mod 2^64 for odd n[0] by Newton iteration
// (each step doubles the number of correct low bits).
func negInvMod64(n0 uint64) uint64 {
	inv := n0 // 3 correct bits to start (n0 odd)
	for i := 0; i < 5; i++ {
		inv *= 2 - n0*inv
	}
	return -inv
}
