package zmath

import (
	"fmt"
	"math/big"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
)

// Modulus is a fixed, long-lived odd modulus with every constant the
// reduction kernels need precomputed once: the little-endian limb vector,
// the Montgomery constants N' = -n^{-1} mod 2^64, R = 2^{64k} mod n and
// R^2 mod n (k = limb count), and the Barrett constant mu =
// floor(2^{128k} / n). The crypto layers build one Modulus per long-lived
// modulus (N, N^2, p^2, q^2, N^s, N^{s+1}) at key-construction time and
// route their mul-mod chains through it.
//
// Strategy by operand width (see DESIGN.md "Montgomery engine"):
//
//   - k <= ciosMaxLimbs: a fused-CIOS Montgomery multiply; a one-shot
//     MulMod is two kernel calls (multiply, then un-scale by R^2).
//   - larger k: in-domain chains use a hybrid multiply (math/big's
//     assembly product + a limb REDC pass); one-shot MulMod switches to
//     Barrett reduction, because two REDC passes cost more than the
//     division they replace while Barrett's three multiplications do not.
//
// All kernel temporaries come from a per-Modulus sync.Pool, so steady
// state allocates only each operation's result.
//
// A Modulus is immutable after construction and safe for concurrent use.
type Modulus struct {
	n  *big.Int
	k  int      // limb count of n
	nl []uint64 // limbs of n, little-endian

	n0inv uint64   // -n^{-1} mod 2^64
	rl    []uint64 // R mod n: the Montgomery form of 1
	r2l   []uint64 // R^2 mod n: multiplier that enters the domain
	onel  []uint64 // plain 1, padded to k limbs (exits the domain)
	mu    *big.Int // floor(2^{128k} / n) for Barrett reduction

	// rpow[j] = R^{2^j + 1} mod n. Chaining montMul over entries for the
	// set bits of e-1 yields R^e (each montMul eats one R, so exponents
	// 2^j+1 add up to (e-1)+1): the constant-cost drift fixup that lets
	// ProdMod run one kernel call per element instead of two.
	rpow [][]uint64

	useCios bool // fused CIOS beats the hybrid below ciosMaxLimbs
	// chainKernel selects the ProdMod strategy: below chainKernelMaxLimbs
	// the montMul drift chain wins; above it the quadratic REDC pass falls
	// behind big.Int's subquadratic division and Barrett one-shots win.
	chainKernel bool
	fallback    bool // non-64-bit platform: every op delegates to big.Int

	pool sync.Pool
}

// ciosMaxLimbs is the largest limb count at which the fused CIOS kernel
// outruns the hybrid (product-then-REDC) multiply. Above it the working
// set outgrows the register file and math/big's assembly multiplier wins
// the product half. Measured crossover on amd64: CIOS 2.8x at 8 limbs,
// roughly break-even near 12, behind at 16.
const ciosMaxLimbs = 12

// chainKernelMaxLimbs is the largest width at which ProdMod's montMul
// drift chain beats a Barrett one-shot per element (measured crossover on
// amd64 between 1536 and 2048 bits).
const chainKernelMaxLimbs = 24

// montDisabled flips the whole engine to the plain big.Int path. The
// zero value means enabled; SECTOPK_MONT=0/off/false disables at startup
// (the CI matrix runs both settings). Both paths return canonical
// residues in [0, n), so flipping the switch never changes an output bit.
var montDisabled atomic.Bool

func init() {
	switch os.Getenv("SECTOPK_MONT") {
	case "0", "off", "false", "no":
		montDisabled.Store(true)
	}
}

// MontgomeryEnabled reports whether the limb kernels are active.
func MontgomeryEnabled() bool { return !montDisabled.Load() }

// SetMontgomeryEnabled toggles the limb kernels at runtime (tests and the
// bench harness use this to measure both paths in one process).
func SetMontgomeryEnabled(on bool) { montDisabled.Store(!on) }

// montScratch is the per-call working set: limb vectors for the kernels
// and big.Int temporaries for the Barrett/hybrid paths.
type montScratch struct {
	x, y, z []uint64
	t       []uint64 // 2k+2 limbs: CIOS needs k+1, REDC 2k+1

	wa, wb []big.Word // backing stores for ba, bb (SetBits aliases them)
	ba, bb *big.Int
	prod   *big.Int
	q      *big.Int
	red1   *big.Int
	red2   *big.Int
}

// NewModulus precomputes the reduction constants for n. It rejects nil,
// n <= 1, and even n: REDC needs n invertible mod 2^64, and every modulus
// in this codebase (N, N^2, prime squares, N^{s+1}) is odd by
// construction, so evenness always signals caller error rather than a
// case worth supporting.
func NewModulus(n *big.Int) (*Modulus, error) {
	if n == nil || n.Cmp(One) <= 0 {
		return nil, fmt.Errorf("zmath: Montgomery modulus must be > 1, got %v", n)
	}
	if n.Bit(0) == 0 {
		return nil, fmt.Errorf("zmath: Montgomery modulus must be odd (n' = -n^{-1} mod 2^64 does not exist for even n)")
	}
	m := &Modulus{n: new(big.Int).Set(n)}
	if bits.UintSize != 64 {
		// The kernels assume 64-bit limbs and big.Word == uint64.
		// On other platforms every operation takes the big.Int path.
		m.fallback = true
		return m, nil
	}
	k := (n.BitLen() + 63) / 64
	m.k = k
	m.nl = natFromBig(make([]uint64, k), n)
	m.n0inv = negInvMod64(m.nl[0])
	m.useCios = k <= ciosMaxLimbs
	m.chainKernel = k <= chainKernelMaxLimbs

	r := new(big.Int).Lsh(One, uint(64*k))
	r.Mod(r, n)
	m.rl = natFromBig(make([]uint64, k), r)
	r2 := new(big.Int).Lsh(One, uint(128*k))
	r2.Mod(r2, n)
	m.r2l = natFromBig(make([]uint64, k), r2)
	m.onel = natFromBig(make([]uint64, k), One)
	m.mu = new(big.Int).Lsh(One, uint(128*k))
	m.mu.Div(m.mu, n)

	m.pool.New = func() any {
		return newMontScratch(k)
	}
	s := m.pool.Get().(*montScratch)
	m.rpow = make([][]uint64, prodMaxLog)
	m.rpow[0] = m.r2l
	for j := 1; j < prodMaxLog; j++ {
		p := make([]uint64, k)
		m.montMul(p, m.rpow[j-1], m.rpow[j-1], s)
		m.rpow[j] = p
	}
	m.pool.Put(s)
	return m, nil
}

// prodMaxLog bounds the drift-fixup table: ProdMod chains of up to
// 2^prodMaxLog elements get the one-kernel-per-element path.
const prodMaxLog = 21

func newMontScratch(k int) *montScratch {
	return &montScratch{
		x:    make([]uint64, k),
		y:    make([]uint64, k),
		z:    make([]uint64, k),
		t:    make([]uint64, 2*k+2),
		wa:   make([]big.Word, k),
		wb:   make([]big.Word, k),
		ba:   new(big.Int),
		bb:   new(big.Int),
		prod: new(big.Int),
		q:    new(big.Int),
		red1: new(big.Int),
		red2: new(big.Int),
	}
}

// MustModulus is NewModulus for moduli the caller constructed odd by
// definition (N^2, prime squares, ...); it panics on the error path.
func MustModulus(n *big.Int) *Modulus {
	m, err := NewModulus(n)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the modulus value. Callers must treat it as read-only.
func (m *Modulus) N() *big.Int { return m.n }

// active reports whether the limb kernels should run for this call.
func (m *Modulus) active() bool {
	return m != nil && !m.fallback && !montDisabled.Load()
}

// natFromBig copies x's limbs into dst (little-endian, zero-padded).
// Requires 0 <= x < 2^{64 len(dst)}.
func natFromBig(dst []uint64, x *big.Int) []uint64 {
	for i := range dst {
		dst[i] = 0
	}
	for i, w := range x.Bits() {
		dst[i] = uint64(w)
	}
	return dst
}

// natToBig returns z's value as a fresh big.Int.
func natToBig(z []uint64) *big.Int {
	words := make([]big.Word, len(z))
	for i, w := range z {
		words[i] = big.Word(w)
	}
	return new(big.Int).SetBits(words)
}

// setBigFromNat points dst at the limb vector using the caller-owned word
// buffer as backing store (no allocation).
func setBigFromNat(dst *big.Int, buf []big.Word, z []uint64) *big.Int {
	for i, w := range z {
		buf[i] = big.Word(w)
	}
	return dst.SetBits(buf)
}

// canon reduces x into [0, n) without mutating it, using scratch storage
// when a division is actually needed.
func (m *Modulus) canon(dst *big.Int, x *big.Int) *big.Int {
	if x.Sign() >= 0 && x.Cmp(m.n) < 0 {
		return x
	}
	return dst.Mod(x, m.n)
}

// montMul runs one Montgomery multiply z = x*y*R^{-1} mod n on reduced
// limb vectors, choosing the kernel by width.
func (m *Modulus) montMul(z, x, y []uint64, s *montScratch) {
	if m.useCios {
		ciosMul(z, x, y, m.nl, m.n0inv, s.t)
		return
	}
	// Hybrid: let math/big's assembly multiplier build the double-width
	// product, then strip the R factor with a limb REDC pass.
	setBigFromNat(s.ba, s.wa, x)
	setBigFromNat(s.bb, s.wb, y)
	s.prod.Mul(s.ba, s.bb)
	t := s.t[:2*m.k+1]
	for i := range t {
		t[i] = 0
	}
	for i, w := range s.prod.Bits() {
		t[i] = uint64(w)
	}
	redc(z, m.nl, m.n0inv, t)
}

// MulMod returns x*y mod n as a canonical residue. Inputs of any sign and
// size are accepted; values already in [0, n) take the no-division fast
// path. With the engine disabled (or on 32-bit platforms) it computes the
// same result with big.Int Mul+Mod.
func (m *Modulus) MulMod(x, y *big.Int) *big.Int {
	if !m.active() {
		out := new(big.Int).Mul(x, y)
		return out.Mod(out, m.n)
	}
	s := m.pool.Get().(*montScratch)
	out := m.mulModInto(new(big.Int), x, y, s)
	m.pool.Put(s)
	return out
}

// mulModInto is MulMod with caller-provided result and scratch, used by
// the chain operations to keep steady state allocation-free.
func (m *Modulus) mulModInto(out *big.Int, x, y *big.Int, s *montScratch) *big.Int {
	xr := m.canon(s.red1, x)
	yr := m.canon(s.red2, y)
	if m.useCios {
		natFromBig(s.x, xr)
		natFromBig(s.y, yr)
		// Two kernel calls: (x*y*R^{-1}) * R^2 * R^{-1} = x*y.
		m.montMul(s.z, s.x, s.y, s)
		m.montMul(s.z, s.z, m.r2l, s)
		return setFromNat(out, s.z)
	}
	// Barrett: t = x*y; q = floor(floor(t/b^{k-1}) * mu / b^{k+1});
	// r = t - q*n is within 2n of the answer (HAC 14.42).
	t := s.prod.Mul(xr, yr)
	q := s.q.Rsh(t, uint(64*(m.k-1)))
	q.Mul(q, m.mu)
	q.Rsh(q, uint(64*(m.k+1)))
	q.Mul(q, m.n)
	t.Sub(t, q)
	for t.Cmp(m.n) >= 0 {
		t.Sub(t, m.n)
	}
	return out.Set(t)
}

// setFromNat copies a limb vector into an existing big.Int.
func setFromNat(dst *big.Int, z []uint64) *big.Int {
	words := make([]big.Word, len(z))
	for i, w := range z {
		words[i] = big.Word(w)
	}
	return dst.SetBits(words)
}

// ExpMod returns x^e mod n. It delegates to big.Int.Exp: for full-width
// exponents math/big already runs an assembly Montgomery ladder
// internally, and a pure-Go REDC ladder cannot beat it. The engine's
// exponentiation wins live where the access pattern does the work —
// shared squarings in MultiExpMod and the in-domain FixedBaseTable —
// not in a plain single-base power.
func (m *Modulus) ExpMod(x, e *big.Int) *big.Int {
	return new(big.Int).Exp(x, e, m.n)
}

// ProdMod returns xs[0]*xs[1]*...*xs[len-1] mod n (1 mod n for an empty
// product). This is the engine form of the homomorphic-sum loops — a
// batch of ciphertext additions is one ProdMod per round — and the shape
// where the kernels pay off in full: the chain runs one Montgomery
// multiply per element, letting the R^{-1} factors pile up, and cancels
// the accumulated drift with a single table-driven fixup at the end
// instead of un-scaling after every multiply.
func (m *Modulus) ProdMod(xs []*big.Int) *big.Int {
	if len(xs) == 0 {
		return new(big.Int).Mod(One, m.n)
	}
	if !m.active() || len(xs)-1 >= 1<<prodMaxLog {
		acc := new(big.Int).Mod(xs[0], m.n)
		for _, x := range xs[1:] {
			acc.Mul(acc, x)
			acc.Mod(acc, m.n)
		}
		return acc
	}
	s := m.pool.Get().(*montScratch)
	defer m.pool.Put(s)
	if len(xs) == 1 {
		return new(big.Int).Set(m.canon(s.red1, xs[0]))
	}
	if !m.chainKernel {
		acc := new(big.Int).Set(m.canon(s.red1, xs[0]))
		for _, x := range xs[1:] {
			m.mulModInto(acc, acc, x, s)
		}
		return acc
	}
	natFromBig(s.x, m.canon(s.red1, xs[0]))
	for _, x := range xs[1:] {
		natFromBig(s.y, m.canon(s.red1, x))
		m.montMul(s.x, s.x, s.y, s)
	}
	// s.x = prod * R^{-(len-1)}. Build R^{len} in s.y from the rpow table
	// (montMul over entries for the set bits of len-1 yields R^{len}) and
	// one final multiply cancels the drift exactly.
	e := len(xs) - 1
	first := true
	for j := 0; e>>j != 0; j++ {
		if e>>j&1 == 0 {
			continue
		}
		if first {
			copy(s.y, m.rpow[j])
			first = false
		} else {
			m.montMul(s.y, s.y, m.rpow[j], s)
		}
	}
	m.montMul(s.x, s.x, s.y, s)
	return natToBig(s.x)
}
