package zmath

import (
	"fmt"
	"math/big"
)

// multiExpWindow picks the Straus window width for the largest exponent:
// wider windows amortize squarings over more bases but cost 2^w - 1 table
// entries per base.
func multiExpWindow(maxBits int) uint {
	switch {
	case maxBits >= 256:
		return 5
	case maxBits >= 64:
		return 4
	case maxBits >= 16:
		return 3
	default:
		return 2
	}
}

// MultiExpMod returns the product of bases[i]^exps[i] mod n using Straus's
// interleaved ladder: all bases enter the Montgomery domain once, their
// window tables are built in-domain, and a single run of squarings is
// shared by every base — for t bases the squaring work is 1/t of t
// separate exponentiations, which is where the randomized EHL equality
// operator and the selection gadgets spend their time. Exponents must be
// non-negative (invert the base first for a negative power; the callers
// in this codebase all hold nonces or blinds, which are positive by
// construction). With the engine disabled it computes the same value as a
// plain big.Int exponentiation loop.
func (m *Modulus) MultiExpMod(bases, exps []*big.Int) (*big.Int, error) {
	if len(bases) != len(exps) {
		return nil, fmt.Errorf("zmath: MultiExpMod length mismatch %d bases vs %d exponents", len(bases), len(exps))
	}
	maxBits := 0
	for i, e := range exps {
		if e == nil || e.Sign() < 0 {
			return nil, fmt.Errorf("zmath: MultiExpMod exponent %d must be non-negative", i)
		}
		if b := e.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	if len(bases) == 0 || maxBits == 0 {
		return new(big.Int).Mod(One, m.n), nil
	}
	if !m.active() {
		acc := new(big.Int).Mod(One, m.n)
		t := new(big.Int)
		for i := range bases {
			t.Exp(bases[i], exps[i], m.n)
			acc.Mul(acc, t)
			acc.Mod(acc, m.n)
		}
		return acc, nil
	}

	w := multiExpWindow(maxBits)
	size := 1 << w
	s := m.pool.Get().(*montScratch)
	defer m.pool.Put(s)

	// Per-base in-domain window tables: tbl[i][d-1] = bases[i]^d * R.
	tbl := make([][][]uint64, len(bases))
	for i, b := range bases {
		row := make([][]uint64, size-1)
		ent := make([]uint64, m.k)
		natFromBig(ent, m.canon(s.red1, b))
		m.montMul(ent, ent, m.r2l, s) // enter the domain
		row[0] = ent
		for d := 2; d < size; d++ {
			nxt := make([]uint64, m.k)
			m.montMul(nxt, row[d-2], ent, s)
			row[d-1] = nxt
		}
		tbl[i] = row
	}

	acc := make([]uint64, m.k)
	copy(acc, m.rl)  // Montgomery form of 1
	started := false // skip squarings while the accumulator is still 1
	windows := (maxBits + int(w) - 1) / int(w)
	for wpos := windows - 1; wpos >= 0; wpos-- {
		if started {
			for sq := 0; sq < int(w); sq++ {
				m.montMul(acc, acc, acc, s)
			}
		}
		base := wpos * int(w)
		for i, e := range exps {
			var d uint
			for b := 0; b < int(w); b++ {
				d |= uint(e.Bit(base+b)) << b
			}
			if d == 0 {
				continue
			}
			m.montMul(acc, acc, tbl[i][d-1], s)
			started = true
		}
	}
	m.montMul(acc, acc, m.onel, s) // exit the domain
	return natToBig(acc), nil
}

// BatchModInverseMod is BatchModInverse with the prefix/suffix product
// chains routed through a precomputed Modulus, so the 3(len-1)
// multiplications of the batch trick stop paying the division tax. A nil
// engine falls back to the plain implementation.
func BatchModInverseMod(xs []*big.Int, m *Modulus) ([]*big.Int, error) {
	if m == nil {
		return nil, fmt.Errorf("zmath: BatchModInverseMod requires a modulus")
	}
	if !m.active() {
		return BatchModInverse(xs, m.n)
	}
	if len(xs) == 0 {
		return nil, nil
	}
	s := m.pool.Get().(*montScratch)
	defer m.pool.Put(s)
	prefix := make([]*big.Int, len(xs))
	prefix[0] = new(big.Int).Set(m.canon(s.red1, xs[0]))
	for i := 1; i < len(xs); i++ {
		prefix[i] = m.mulModInto(new(big.Int), prefix[i-1], xs[i], s)
	}
	inv := new(big.Int).ModInverse(prefix[len(xs)-1], m.n)
	if inv == nil {
		return nil, ErrNotInvertible
	}
	out := make([]*big.Int, len(xs))
	for i := len(xs) - 1; i > 0; i-- {
		out[i] = m.mulModInto(new(big.Int), inv, prefix[i-1], s)
		m.mulModInto(inv, inv, xs[i], s)
	}
	out[0] = inv
	return out, nil
}
