package zmath

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// testModulusBits spans both kernel regimes: <= ciosMaxLimbs*64 exercises
// the fused CIOS path, the larger sizes the hybrid/Barrett path. The odd
// sizes check non-limb-aligned widths.
var testModulusBits = []int{64, 100, 512, 768, 1024, 2048, 3072}

func randOddModulus(t *testing.T, bits int) *big.Int {
	t.Helper()
	n, err := rand.Int(rand.Reader, new(big.Int).Lsh(One, uint(bits)))
	if err != nil {
		t.Fatal(err)
	}
	n.SetBit(n, bits-1, 1) // full width
	n.SetBit(n, 0, 1)      // odd
	return n
}

func withBothEngineModes(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	prev := MontgomeryEnabled()
	defer SetMontgomeryEnabled(prev)
	for _, on := range []bool{true, false} {
		SetMontgomeryEnabled(on)
		name := "mont-on"
		if !on {
			name = "mont-off"
		}
		t.Run(name, f)
	}
}

func TestNewModulusRejections(t *testing.T) {
	for _, bad := range []*big.Int{nil, big.NewInt(-5), big.NewInt(0), big.NewInt(1), big.NewInt(10), big.NewInt(1 << 20)} {
		if _, err := NewModulus(bad); err == nil {
			t.Errorf("NewModulus(%v): want error for even or out-of-range modulus", bad)
		}
	}
	if _, err := NewModulus(big.NewInt(3)); err != nil {
		t.Errorf("NewModulus(3): %v", err)
	}
}

func TestMulModMatchesBigInt(t *testing.T) {
	withBothEngineModes(t, func(t *testing.T) {
		for _, bits := range testModulusBits {
			n := randOddModulus(t, bits)
			m, err := NewModulus(n)
			if err != nil {
				t.Fatal(err)
			}
			nm1 := new(big.Int).Sub(n, One)
			above := new(big.Int).Mul(n, big.NewInt(7)) // a >= N
			above.Add(above, big.NewInt(3))
			neg := new(big.Int).Neg(nm1)
			cases := []*big.Int{Zero, One, nm1, above, neg, nil, nil, nil}
			for i := 5; i < len(cases); i++ {
				r, err := rand.Int(rand.Reader, n)
				if err != nil {
					t.Fatal(err)
				}
				cases[i] = r
			}
			for _, a := range cases {
				for _, b := range cases {
					got := m.MulMod(a, b)
					want := new(big.Int).Mul(a, b)
					want.Mod(want, n)
					if got.Cmp(want) != 0 {
						t.Fatalf("bits=%d MulMod(%v, %v) = %v, want %v", bits, a, b, got, want)
					}
				}
			}
		}
	})
}

func TestExpModMatchesBigInt(t *testing.T) {
	for _, bits := range []int{512, 1024} {
		n := randOddModulus(t, bits)
		m, err := NewModulus(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			a, _ := rand.Int(rand.Reader, n)
			e, _ := rand.Int(rand.Reader, n)
			got := m.ExpMod(a, e)
			want := new(big.Int).Exp(a, e, n)
			if got.Cmp(want) != 0 {
				t.Fatalf("bits=%d ExpMod mismatch", bits)
			}
		}
	}
}

func TestProdModMatchesBigInt(t *testing.T) {
	withBothEngineModes(t, func(t *testing.T) {
		for _, bits := range []int{256, 1024, 2048} {
			n := randOddModulus(t, bits)
			m, err := NewModulus(n)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{0, 1, 2, 17} {
				xs := make([]*big.Int, size)
				want := new(big.Int).Mod(One, n)
				for i := range xs {
					x, _ := rand.Int(rand.Reader, n)
					xs[i] = x
					want.Mul(want, x)
					want.Mod(want, n)
				}
				if got := m.ProdMod(xs); got.Cmp(want) != 0 {
					t.Fatalf("bits=%d size=%d ProdMod mismatch", bits, size)
				}
			}
		}
	})
}

func TestMultiExpModMatchesBigInt(t *testing.T) {
	withBothEngineModes(t, func(t *testing.T) {
		for _, bits := range []int{256, 1024, 2048} {
			n := randOddModulus(t, bits)
			m, err := NewModulus(n)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range []struct{ count, expBits int }{
				{1, 8}, {2, 32}, {4, 256}, {3, bits},
			} {
				bases := make([]*big.Int, cfg.count)
				exps := make([]*big.Int, cfg.count)
				want := new(big.Int).Mod(One, n)
				tmp := new(big.Int)
				for i := range bases {
					b, _ := rand.Int(rand.Reader, n)
					e, _ := rand.Int(rand.Reader, new(big.Int).Lsh(One, uint(cfg.expBits)))
					bases[i], exps[i] = b, e
					tmp.Exp(b, e, n)
					want.Mul(want, tmp)
					want.Mod(want, n)
				}
				got, err := m.MultiExpMod(bases, exps)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("bits=%d count=%d expBits=%d MultiExpMod mismatch", bits, cfg.count, cfg.expBits)
				}
			}
			// Zero exponents and the empty product are 1 mod n.
			got, err := m.MultiExpMod([]*big.Int{big.NewInt(5)}, []*big.Int{Zero})
			if err != nil || got.Cmp(One) != 0 {
				t.Fatalf("MultiExpMod zero exponent = %v, %v", got, err)
			}
			if got, err = m.MultiExpMod(nil, nil); err != nil || got.Cmp(One) != 0 {
				t.Fatalf("MultiExpMod empty = %v, %v", got, err)
			}
			if _, err := m.MultiExpMod([]*big.Int{One}, []*big.Int{big.NewInt(-1)}); err == nil {
				t.Fatal("MultiExpMod accepted a negative exponent")
			}
			if _, err := m.MultiExpMod([]*big.Int{One}, nil); err == nil {
				t.Fatal("MultiExpMod accepted mismatched lengths")
			}
		}
	})
}

func TestBatchModInverseMod(t *testing.T) {
	withBothEngineModes(t, func(t *testing.T) {
		n := randOddModulus(t, 1024)
		m, err := NewModulus(n)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]*big.Int, 33)
		for i := range xs {
			u, err := RandUnit(rand.Reader, n)
			if err != nil {
				t.Fatal(err)
			}
			xs[i] = u
		}
		invs, err := BatchModInverseMod(xs, m)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := BatchModInverse(xs, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if invs[i].Cmp(ref[i]) != 0 {
				t.Fatalf("BatchModInverseMod[%d] diverges from BatchModInverse", i)
			}
			prod := new(big.Int).Mul(xs[i], invs[i])
			if prod.Mod(prod, n); prod.Cmp(One) != 0 {
				t.Fatalf("BatchModInverseMod[%d] is not an inverse", i)
			}
		}
		if out, err := BatchModInverseMod(nil, m); err != nil || out != nil {
			t.Fatalf("BatchModInverseMod(empty) = %v, %v", out, err)
		}
		if _, err := BatchModInverseMod([]*big.Int{Zero}, m); err == nil {
			t.Fatal("BatchModInverseMod inverted a non-unit")
		}
	})
}

func TestFixedBaseTableModMatchesPlain(t *testing.T) {
	n := randOddModulus(t, 1024)
	n2 := new(big.Int).Mul(n, n)
	m, err := NewModulus(n2)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := rand.Int(rand.Reader, n2)
	plain, err := NewFixedBaseTable(base, n2, 6, 256)
	if err != nil {
		t.Fatal(err)
	}
	mont, err := NewFixedBaseTableMod(base, m, 6, 256)
	if err != nil {
		t.Fatal(err)
	}
	prev := MontgomeryEnabled()
	defer SetMontgomeryEnabled(prev)
	exps := []*big.Int{Zero, One, new(big.Int).Sub(new(big.Int).Lsh(One, 256), One)}
	for i := 0; i < 8; i++ {
		e, _ := rand.Int(rand.Reader, new(big.Int).Lsh(One, 256))
		exps = append(exps, e)
	}
	for _, e := range exps {
		want, err := plain.Exp(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, on := range []bool{true, false} {
			SetMontgomeryEnabled(on)
			got, err := mont.Exp(e)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("mont=%v FixedBaseTableMod.Exp(%v) = %v, want %v", on, e, got, want)
			}
		}
	}
	if _, err := NewFixedBaseTableMod(base, nil, 6, 256); err == nil {
		t.Fatal("NewFixedBaseTableMod accepted a nil engine")
	}
}

func TestEngineToggleBitIdentical(t *testing.T) {
	// The same inputs must produce byte-identical residues with the
	// kernels on and off — this is the contract that lets the crypto
	// layers route through the engine without a compatibility mode.
	prev := MontgomeryEnabled()
	defer SetMontgomeryEnabled(prev)
	for _, bits := range []int{512, 2048} {
		n := randOddModulus(t, bits)
		m, err := NewModulus(n)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := rand.Int(rand.Reader, n)
		b, _ := rand.Int(rand.Reader, n)
		SetMontgomeryEnabled(true)
		on := m.MulMod(a, b)
		SetMontgomeryEnabled(false)
		off := m.MulMod(a, b)
		if on.Cmp(off) != 0 {
			t.Fatalf("bits=%d toggle changed MulMod output", bits)
		}
	}
}
