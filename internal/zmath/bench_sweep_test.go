package zmath

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"
)

func BenchmarkMulModSweep(b *testing.B) {
	for _, bits := range []int{512, 1024, 2048, 3072} {
		n := randOddModulusB(bits)
		m, _ := NewModulus(n)
		x, _ := rand.Int(rand.Reader, n)
		y, _ := rand.Int(rand.Reader, n)
		b.Run(fmt.Sprintf("big/%d", bits), func(b *testing.B) {
			z := new(big.Int)
			for i := 0; i < b.N; i++ {
				z.Mul(x, y)
				z.Mod(z, n)
			}
		})
		b.Run(fmt.Sprintf("mont/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MulMod(x, y)
			}
		})
	}
}

func BenchmarkMultiExpSweep(b *testing.B) {
	for _, bits := range []int{2048, 3072} {
		n := randOddModulusB(bits)
		m, _ := NewModulus(n)
		const cnt = 4
		bases := make([]*big.Int, cnt)
		exps := make([]*big.Int, cnt)
		for i := range bases {
			bases[i], _ = rand.Int(rand.Reader, n)
			exps[i], _ = rand.Int(rand.Reader, new(big.Int).Lsh(One, 1024))
		}
		b.Run(fmt.Sprintf("big/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acc := new(big.Int).SetInt64(1)
				t := new(big.Int)
				for j := range bases {
					t.Exp(bases[j], exps[j], n)
					acc.Mul(acc, t)
					acc.Mod(acc, n)
				}
			}
		})
		b.Run(fmt.Sprintf("mont/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MultiExpMod(bases, exps)
			}
		})
	}
}

func randOddModulusB(bits int) *big.Int {
	n, _ := rand.Int(rand.Reader, new(big.Int).Lsh(One, uint(bits)))
	n.SetBit(n, bits-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

func BenchmarkProdModSweep(b *testing.B) {
	for _, bits := range []int{512, 1024, 2048} {
		n := randOddModulusB(bits)
		m, _ := NewModulus(n)
		const cnt = 64
		xs := make([]*big.Int, cnt)
		for i := range xs {
			xs[i], _ = rand.Int(rand.Reader, n)
		}
		b.Run(fmt.Sprintf("big/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acc := new(big.Int).Set(xs[0])
				for _, x := range xs[1:] {
					acc.Mul(acc, x)
					acc.Mod(acc, n)
				}
			}
		})
		b.Run(fmt.Sprintf("mont/%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.ProdMod(xs)
			}
		})
	}
}

func BenchmarkChainStrategy(b *testing.B) {
	for _, bits := range []int{512, 1024, 1536, 2048, 3072} {
		n := randOddModulusB(bits)
		m, _ := NewModulus(n)
		const cnt = 64
		xs := make([]*big.Int, cnt)
		for i := range xs {
			xs[i], _ = rand.Int(rand.Reader, n)
		}
		b.Run(fmt.Sprintf("kernelchain/%d", bits), func(b *testing.B) {
			s := m.pool.Get().(*montScratch)
			defer m.pool.Put(s)
			for i := 0; i < b.N; i++ {
				natFromBig(s.x, xs[0])
				for _, x := range xs[1:] {
					natFromBig(s.y, x)
					m.montMul(s.x, s.x, s.y, s)
				}
			}
		})
		b.Run(fmt.Sprintf("barrettchain/%d", bits), func(b *testing.B) {
			s := m.pool.Get().(*montScratch)
			defer m.pool.Put(s)
			save := m.useCios
			m.useCios = false
			acc := new(big.Int)
			for i := 0; i < b.N; i++ {
				acc.Set(xs[0])
				for _, x := range xs[1:] {
					m.mulModInto(acc, acc, x, s)
				}
			}
			m.useCios = save
		})
	}
}
