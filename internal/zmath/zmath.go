// Package zmath provides small number-theoretic helpers shared by the
// Paillier and Damgård-Jurik implementations and by the two-party
// protocols: uniform sampling in Z_N and Z*_N, the signed interpretation
// of residues used for encrypted comparisons, and checked modular inverses.
package zmath

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Common small constants. Callers must treat these as read-only.
var (
	Zero = big.NewInt(0)
	One  = big.NewInt(1)
	Two  = big.NewInt(2)
)

// ErrNotInvertible is returned when a modular inverse does not exist.
var ErrNotInvertible = errors.New("zmath: element is not invertible")

// RandInt returns a uniform random integer in [0, n).
func RandInt(rnd io.Reader, n *big.Int) (*big.Int, error) {
	if n.Sign() <= 0 {
		return nil, fmt.Errorf("zmath: RandInt bound must be positive, got %v", n)
	}
	return rand.Int(rnd, n)
}

// RandRange returns a uniform random integer in [lo, hi).
func RandRange(rnd io.Reader, lo, hi *big.Int) (*big.Int, error) {
	if lo.Cmp(hi) >= 0 {
		return nil, fmt.Errorf("zmath: RandRange empty range [%v, %v)", lo, hi)
	}
	width := new(big.Int).Sub(hi, lo)
	r, err := rand.Int(rnd, width)
	if err != nil {
		return nil, err
	}
	return r.Add(r, lo), nil
}

// RandUnit returns a uniform random element of Z*_n (invertible mod n).
// For an RSA-style modulus n = pq with large primes, the expected number
// of retries is negligible.
func RandUnit(rnd io.Reader, n *big.Int) (*big.Int, error) {
	if n.Cmp(Two) < 0 {
		return nil, fmt.Errorf("zmath: RandUnit modulus must be >= 2, got %v", n)
	}
	gcd := new(big.Int)
	for i := 0; i < 128; i++ {
		r, err := rand.Int(rnd, n)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if gcd.GCD(nil, nil, r, n); gcd.Cmp(One) == 0 {
			return r, nil
		}
	}
	return nil, errors.New("zmath: RandUnit failed to find an invertible element")
}

// ModInverse returns a^{-1} mod n, or ErrNotInvertible when gcd(a, n) != 1.
func ModInverse(a, n *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(a, n)
	if inv == nil {
		return nil, ErrNotInvertible
	}
	return inv, nil
}

// Signed maps a residue v in [0, n) to its signed representative in
// (-n/2, n/2]. This is the convention under which the dedup sentinel
// Z = n-1 reads as -1 and sinks below every non-negative score.
func Signed(v, n *big.Int) *big.Int {
	out := new(big.Int).Mod(v, n)
	half := new(big.Int).Rsh(n, 1)
	if out.Cmp(half) > 0 {
		out.Sub(out, n)
	}
	return out
}

// IsNegative reports whether the residue v in [0, n) represents a negative
// value under the signed interpretation.
func IsNegative(v, n *big.Int) bool {
	return Signed(v, n).Sign() < 0
}

// Lcm returns lcm(a, b).
func Lcm(a, b *big.Int) *big.Int {
	gcd := new(big.Int).GCD(nil, nil, a, b)
	out := new(big.Int).Div(a, gcd)
	return out.Mul(out, b)
}

// CRTPair combines residues (a mod p, b mod q) for coprime p, q into the
// unique residue mod p*q using precomputed pInvModQ = p^{-1} mod q.
func CRTPair(a, b, p, q, pInvModQ *big.Int) *big.Int {
	// x = a + p * ((b - a) * pInv mod q)
	t := new(big.Int).Sub(b, a)
	t.Mul(t, pInvModQ)
	t.Mod(t, q)
	t.Mul(t, p)
	return t.Add(t, a)
}

// Factorial returns k! as a big.Int. Used by the Damgård-Jurik plaintext
// extraction, where k stays tiny (k <= s).
func Factorial(k int) *big.Int {
	out := big.NewInt(1)
	for i := 2; i <= k; i++ {
		out.Mul(out, big.NewInt(int64(i)))
	}
	return out
}
