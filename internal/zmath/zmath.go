// Package zmath provides small number-theoretic helpers shared by the
// Paillier and Damgård-Jurik implementations and by the two-party
// protocols: uniform sampling in Z_N and Z*_N, the signed interpretation
// of residues used for encrypted comparisons, and checked modular inverses.
package zmath

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Common small constants. Callers must treat these as read-only.
var (
	Zero = big.NewInt(0)
	One  = big.NewInt(1)
	Two  = big.NewInt(2)
)

// ErrNotInvertible is returned when a modular inverse does not exist.
var ErrNotInvertible = errors.New("zmath: element is not invertible")

// RandInt returns a uniform random integer in [0, n).
func RandInt(rnd io.Reader, n *big.Int) (*big.Int, error) {
	if n.Sign() <= 0 {
		return nil, fmt.Errorf("zmath: RandInt bound must be positive, got %v", n)
	}
	return rand.Int(rnd, n)
}

// RandRange returns a uniform random integer in [lo, hi).
func RandRange(rnd io.Reader, lo, hi *big.Int) (*big.Int, error) {
	if lo.Cmp(hi) >= 0 {
		return nil, fmt.Errorf("zmath: RandRange empty range [%v, %v)", lo, hi)
	}
	width := new(big.Int).Sub(hi, lo)
	r, err := rand.Int(rnd, width)
	if err != nil {
		return nil, err
	}
	return r.Add(r, lo), nil
}

// RandUnit returns a uniform random element of Z*_n (invertible mod n).
// For an RSA-style modulus n = pq with large primes, the expected number
// of retries is negligible.
func RandUnit(rnd io.Reader, n *big.Int) (*big.Int, error) {
	if n.Cmp(Two) < 0 {
		return nil, fmt.Errorf("zmath: RandUnit modulus must be >= 2, got %v", n)
	}
	gcd := new(big.Int)
	for i := 0; i < 128; i++ {
		r, err := rand.Int(rnd, n)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if gcd.GCD(nil, nil, r, n); gcd.Cmp(One) == 0 {
			return r, nil
		}
	}
	return nil, errors.New("zmath: RandUnit failed to find an invertible element")
}

// ModInverse returns a^{-1} mod n, or ErrNotInvertible when gcd(a, n) != 1.
func ModInverse(a, n *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(a, n)
	if inv == nil {
		return nil, ErrNotInvertible
	}
	return inv, nil
}

// Signed maps a residue v in [0, n) to its signed representative in
// (-n/2, n/2]. This is the convention under which the dedup sentinel
// Z = n-1 reads as -1 and sinks below every non-negative score.
func Signed(v, n *big.Int) *big.Int {
	out := new(big.Int).Mod(v, n)
	half := new(big.Int).Rsh(n, 1)
	if out.Cmp(half) > 0 {
		out.Sub(out, n)
	}
	return out
}

// IsNegative reports whether the residue v in [0, n) represents a negative
// value under the signed interpretation.
func IsNegative(v, n *big.Int) bool {
	return Signed(v, n).Sign() < 0
}

// Lcm returns lcm(a, b).
func Lcm(a, b *big.Int) *big.Int {
	gcd := new(big.Int).GCD(nil, nil, a, b)
	out := new(big.Int).Div(a, gcd)
	return out.Mul(out, b)
}

// CRTPair combines residues (a mod p, b mod q) for coprime p, q into the
// unique residue mod p*q using precomputed pInvModQ = p^{-1} mod q.
func CRTPair(a, b, p, q, pInvModQ *big.Int) *big.Int {
	// x = a + p * ((b - a) * pInv mod q)
	t := new(big.Int).Sub(b, a)
	t.Mul(t, pInvModQ)
	t.Mod(t, q)
	t.Mul(t, p)
	return t.Add(t, a)
}

// Factorial returns k! as a big.Int. Used by the Damgård-Jurik plaintext
// extraction, where k stays tiny (k <= s).
func Factorial(k int) *big.Int {
	out := big.NewInt(1)
	for i := 2; i <= k; i++ {
		out.Mul(out, big.NewInt(int64(i)))
	}
	return out
}

// SampleSubgroupPower draws a uniform element of the image of the
// e-power map on Z*_m for a prime-power modulus m = prime^k: sample a
// uniform unit s (a non-unit appears only with probability 1/prime, so
// the retry loop is all but dead code) and return s^e mod m. The crypto
// layers use it to sample nonce powers directly from the N-th-residue
// subgroup's CRT components.
func SampleSubgroupPower(rnd io.Reader, m, prime, e *big.Int) (*big.Int, error) {
	for i := 0; i < 128; i++ {
		s, err := RandInt(rnd, m)
		if err != nil {
			return nil, err
		}
		if s.Sign() == 0 || new(big.Int).Mod(s, prime).Sign() == 0 {
			continue
		}
		return new(big.Int).Exp(s, e, m), nil
	}
	return nil, errors.New("zmath: subgroup sampling failed to find a unit")
}

// BatchModInverse computes xs[i]^{-1} mod n for every element with a
// single modular inversion plus 3(len-1) multiplications (Montgomery's
// batch-inversion trick): prefix products are accumulated forward, the
// running product is inverted once, and the individual inverses fall out
// walking backward. Inversions mod an RSA-sized modulus cost tens of
// multiplications, so for the per-ciphertext unblinding loops this is a
// large constant-factor win. Returns ErrNotInvertible if any element
// shares a factor with n (the error does not identify which, matching the
// all-or-nothing usage in the protocols).
func BatchModInverse(xs []*big.Int, n *big.Int) ([]*big.Int, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	// prefix[i] = xs[0] * ... * xs[i] mod n
	prefix := make([]*big.Int, len(xs))
	acc := new(big.Int).Mod(xs[0], n)
	prefix[0] = acc
	for i := 1; i < len(xs); i++ {
		acc = new(big.Int).Mul(acc, xs[i])
		acc.Mod(acc, n)
		prefix[i] = acc
	}
	inv := new(big.Int).ModInverse(prefix[len(xs)-1], n)
	if inv == nil {
		return nil, ErrNotInvertible
	}
	out := make([]*big.Int, len(xs))
	for i := len(xs) - 1; i > 0; i-- {
		// inv currently holds (xs[0]*...*xs[i])^{-1}.
		out[i] = new(big.Int).Mul(inv, prefix[i-1])
		out[i].Mod(out[i], n)
		inv.Mul(inv, xs[i])
		inv.Mod(inv, n)
	}
	out[0] = inv
	return out, nil
}

// FixedBaseTable precomputes the 2^w-ary fixed-base exponentiation table
// for one (base, modulus) pair: entries base^(i * 2^(w*j)) mod m for every
// window j below maxBits/w and every window value i in [1, 2^w). Exp then
// needs only one multiplication per nonzero window — about maxBits/w
// multiplications and no squarings — versus the ~1.5*|e| multiplications
// of a square-and-multiply ladder. Build cost is one table (~maxBits/w *
// 2^w multiplications), amortized when the same base is exponentiated many
// times, which is exactly the fast-nonce workload: one fixed base h^N per
// key, thousands of short exponents per query.
//
// The table is read-only after construction and safe for concurrent Exp
// calls.
type FixedBaseTable struct {
	m       *big.Int
	window  uint
	maxBits int
	// pow[j][i-1] = base^(i << (window*j)) mod m
	pow [][]*big.Int

	// Montgomery acceleration (optional): with an engine attached the
	// same entries are also stored in Montgomery form, so Exp runs the
	// whole per-window multiplication chain in-domain — one REDC multiply
	// per nonzero window, one exit at the end, and no divisions at all.
	mod *Modulus
	// powMont[j][i-1] = pow[j][i-1] * R mod m
	powMont [][][]uint64
}

// NewFixedBaseTable builds the table for exponents up to maxBits bits.
// window must be in [1, 16]; 6 is a good default for 256..512-bit
// exponents.
func NewFixedBaseTable(base, m *big.Int, window uint, maxBits int) (*FixedBaseTable, error) {
	return newFixedBaseTable(base, m, nil, window, maxBits)
}

// NewFixedBaseTableMod is NewFixedBaseTable with a precomputed Modulus:
// the table keeps its entries in Montgomery form alongside the plain
// ones, and Exp multiplies in-domain whenever the engine is active. mod
// must satisfy mod.N() == m's value.
func NewFixedBaseTableMod(base *big.Int, mod *Modulus, window uint, maxBits int) (*FixedBaseTable, error) {
	if mod == nil {
		return nil, fmt.Errorf("zmath: fixed-base table requires a modulus engine")
	}
	return newFixedBaseTable(base, mod.N(), mod, window, maxBits)
}

func newFixedBaseTable(base, m *big.Int, mod *Modulus, window uint, maxBits int) (*FixedBaseTable, error) {
	if m == nil || m.Cmp(Two) < 0 {
		return nil, fmt.Errorf("zmath: fixed-base modulus must be >= 2")
	}
	if base == nil || base.Sign() <= 0 {
		return nil, fmt.Errorf("zmath: fixed-base base must be positive")
	}
	if window < 1 || window > 16 {
		return nil, fmt.Errorf("zmath: fixed-base window %d out of range [1,16]", window)
	}
	if maxBits < 1 {
		return nil, fmt.Errorf("zmath: fixed-base maxBits must be positive, got %d", maxBits)
	}
	windows := (maxBits + int(window) - 1) / int(window)
	t := &FixedBaseTable{
		m:       new(big.Int).Set(m),
		window:  window,
		maxBits: maxBits,
		pow:     make([][]*big.Int, windows),
	}
	size := 1 << window
	// g walks base^(2^(w*j)) across windows; each row is filled by
	// repeated multiplication with the row's generator.
	g := new(big.Int).Mod(base, m)
	for j := 0; j < windows; j++ {
		row := make([]*big.Int, size-1)
		row[0] = new(big.Int).Set(g)
		for i := 2; i < size; i++ {
			prev := row[i-2]
			e := new(big.Int).Mul(prev, g)
			row[i-1] = e.Mod(e, m)
		}
		t.pow[j] = row
		if j+1 < windows {
			// Advance the generator: g <- g^(2^w).
			next := new(big.Int).Mul(row[size-2], g)
			g = next.Mod(next, m)
		}
	}
	if mod != nil && !mod.fallback {
		t.mod = mod
		t.powMont = make([][][]uint64, windows)
		s := mod.pool.Get().(*montScratch)
		for j, row := range t.pow {
			mrow := make([][]uint64, len(row))
			for i, e := range row {
				ent := natFromBig(make([]uint64, mod.k), e)
				mod.montMul(ent, ent, mod.r2l, s) // enter the domain once
				mrow[i] = ent
			}
			t.powMont[j] = mrow
		}
		mod.pool.Put(s)
	}
	return t, nil
}

// MaxBits returns the largest exponent bit length the table supports.
func (t *FixedBaseTable) MaxBits() int { return t.maxBits }

// Exp returns base^e mod m for 0 <= e < 2^maxBits, using one table lookup
// and multiplication per nonzero window of e.
func (t *FixedBaseTable) Exp(e *big.Int) (*big.Int, error) {
	if e == nil || e.Sign() < 0 {
		return nil, fmt.Errorf("zmath: fixed-base exponent must be non-negative")
	}
	if e.BitLen() > t.maxBits {
		return nil, fmt.Errorf("zmath: fixed-base exponent %d bits exceeds table limit %d", e.BitLen(), t.maxBits)
	}
	if t.mod.active() {
		return t.expMont(e), nil
	}
	out := big.NewInt(1)
	mask := uint(1<<t.window) - 1
	bits := e.BitLen()
	for j := 0; j*int(t.window) < bits; j++ {
		// Extract window j of the exponent.
		var idx uint
		base := j * int(t.window)
		for b := 0; b < int(t.window); b++ {
			idx |= uint(e.Bit(base+b)) << b
		}
		idx &= mask
		if idx == 0 {
			continue
		}
		out.Mul(out, t.pow[j][idx-1])
		out.Mod(out, t.m)
	}
	return out, nil
}

// expMont is the Montgomery-domain window chain: the table entries are
// pre-entered, the accumulator starts at the domain's 1 (R mod m), and
// only the final exit multiply leaves the domain. Outputs are canonical
// residues, bit-identical to the plain path.
func (t *FixedBaseTable) expMont(e *big.Int) *big.Int {
	mod := t.mod
	s := mod.pool.Get().(*montScratch)
	acc := make([]uint64, mod.k)
	copy(acc, mod.rl)
	mask := uint(1<<t.window) - 1
	bits := e.BitLen()
	for j := 0; j*int(t.window) < bits; j++ {
		var idx uint
		base := j * int(t.window)
		for b := 0; b < int(t.window); b++ {
			idx |= uint(e.Bit(base+b)) << b
		}
		idx &= mask
		if idx == 0 {
			continue
		}
		mod.montMul(acc, acc, t.powMont[j][idx-1], s)
	}
	mod.montMul(acc, acc, mod.onel, s)
	mod.pool.Put(s)
	return natToBig(acc)
}
