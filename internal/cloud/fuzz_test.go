package cloud

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/transport"
)

// fuzzMethods is every wire method a hostile S1 could name, plus a bogus
// one.
var fuzzMethods = []string{
	MethodHello, MethodEqBits, MethodRecover, MethodCompare,
	MethodCompareHidden, MethodMult, MethodDedup, MethodFilter,
	MethodBatch, MethodApply, "Bogus",
}

// applyEnvelope mirrors the client plane's Apply request shape: a
// relation name plus an opaque serialized delta. S2 deliberately has no
// Apply handler (the crypto cloud holds no relation state to mutate), so
// these envelopes must earn typed unknown-method errors, never a panic —
// including when smuggled inside a batch envelope.
type applyEnvelope struct {
	Relation string
	Delta    []byte
}

// fuzzSeedBodies are structurally plausible but hostile request bodies:
// nil ciphertexts, mismatched lengths, nil moduli, and shape-violating
// rows — each a case that must come back as an error, never a panic.
func fuzzSeedBodies(t testing.TB) [][]byte {
	t.Helper()
	enc := func(v any) []byte {
		b, err := transport.Encode(v)
		if err != nil {
			t.Fatalf("encoding seed: %v", err)
		}
		return b
	}
	one := big.NewInt(1)
	return [][]byte{
		{},
		{0xff, 0x01, 0x02},
		enc(&HelloRequest{Version: 99}),
		enc(&EqBitsRequest{Cts: []*big.Int{nil, one}}),
		enc(&RecoverRequest{Cts: []*big.Int{nil}}),
		enc(&CompareRequest{Cts: []*big.Int{big.NewInt(0)}}),
		enc(&MultRequest{A: []*big.Int{one}, B: nil}),
		enc(&MultRequest{A: []*big.Int{one}, B: []*big.Int{nil}}),
		enc(&DedupRequest{
			Rows:  []WireRow{{EHL: []*big.Int{nil}, Scores: []*big.Int{one}, Blinds: []*big.Int{one, one}}},
			PairI: []int{0}, PairJ: []int{0}, PairCts: []*big.Int{one},
		}),
		enc(&DedupRequest{
			Rows:       []WireRow{{Scores: []*big.Int{one}, Blinds: []*big.Int{one}}},
			EphemeralN: nil,
		}),
		enc(&DedupRequest{
			Mode:       DedupMerge,
			Rows:       []WireRow{{Scores: []*big.Int{one}, Blinds: []*big.Int{one}}},
			MergeCols:  []int{7},
			EphemeralN: one,
		}),
		enc(&FilterRequest{Rows: []WireRow{{Scores: []*big.Int{nil}, Blinds: []*big.Int{one}}}, EphemeralN: one}),
		enc(&FilterRequest{Rows: []WireRow{{EHL: []*big.Int{one}, Scores: []*big.Int{one}, Blinds: []*big.Int{one}}}, EphemeralN: one}),
		// Batch envelopes: hostile item bodies, bogus item methods, nested
		// envelopes, and nil bodies — each must fail per item (or as
		// bad_request), never panic.
		enc(&BatchRequest{}),
		enc(&BatchRequest{Items: []BatchItem{{Method: MethodEqBits, Body: []byte{0xff}}}}),
		enc(&BatchRequest{Items: []BatchItem{
			{Method: "Bogus"},
			{Method: MethodBatch, Body: enc(&BatchRequest{})},
			{Method: MethodRecover, Body: enc(&RecoverRequest{Cts: []*big.Int{nil}})},
		}}),
		// Apply envelopes: a plausible one, an empty one, a garbage delta,
		// and one nested in a batch. S2 has no Apply handler, so every
		// shape must come back unknown_method / per-item error.
		enc(&applyEnvelope{Relation: "r", Delta: []byte{0xde, 0xad}}),
		enc(&applyEnvelope{}),
		enc(&applyEnvelope{Relation: "r", Delta: enc(&HelloRequest{Version: 2})}),
		enc(&BatchRequest{Items: []BatchItem{
			{Method: MethodApply, Body: enc(&applyEnvelope{Relation: "r"})},
		}}),
	}
}

// FuzzServe feeds malformed gob bodies to the single-relation Server and
// the multi-relation Service: a hostile data cloud must never be able to
// panic the crypto cloud, only earn itself typed errors.
func FuzzServe(f *testing.F) {
	keys, err := NewKeyMaterial(256)
	if err != nil {
		f.Fatalf("NewKeyMaterial: %v", err)
	}
	srv, err := NewServer(keys, nil, WithParallelism(1))
	if err != nil {
		f.Fatalf("NewServer: %v", err)
	}
	f.Cleanup(srv.Close)
	svc := NewService()
	if err := svc.Register("r", keys, nil, WithParallelism(1)); err != nil {
		f.Fatalf("Register: %v", err)
	}
	f.Cleanup(svc.Close)

	for mi := range fuzzMethods {
		for _, body := range fuzzSeedBodies(f) {
			f.Add(mi, body)
		}
	}
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, methodIdx int, body []byte) {
		if methodIdx < 0 {
			methodIdx = -methodIdx
		}
		method := fuzzMethods[methodIdx%len(fuzzMethods)]
		// Both responders must survive arbitrary bodies; outputs are either
		// a valid reply or an error — panics fail the fuzz run.
		_, _ = srv.Serve(ctx, method, body)
		_, _ = svc.Serve(ctx, method, body)
	})
}
