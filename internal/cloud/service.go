package cloud

import (
	"context"
	"sort"
	"sync"

	"repro/internal/secerr"
	"repro/internal/transport"
)

// Service is the multi-relation crypto cloud: a registry of relation IDs
// to per-relation Servers (each with its own key material, encryption
// surfaces, and parallelism configuration). It implements
// transport.Responder by routing every protocol request on the relation
// ID it carries, so one S2 process serves many outsourced relations — the
// many-relations deployment Section 3.2's architecture assumes.
//
// Registration order is unconstrained and registration is safe while the
// service is serving traffic.
type Service struct {
	mu        sync.RWMutex
	relations map[string]*Server
	closed    bool
}

// NewService returns an empty registry.
func NewService() *Service {
	return &Service{relations: make(map[string]*Server)}
}

// Register builds a Server for the relation's key material and adds it
// under id. It fails with secerr.ErrRelationExists when the ID is taken.
func (s *Service) Register(id string, keys *KeyMaterial, ledger *Ledger, opts ...Option) error {
	if id == "" {
		return secerr.New(secerr.CodeBadRequest, "cloud: empty relation id")
	}
	// Cheap pre-check before paying for encryptor/pool construction; the
	// authoritative re-check happens under the write lock below.
	s.mu.RLock()
	_, taken := s.relations[id]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return secerr.New(secerr.CodeInternal, "cloud: service is closed")
	}
	if taken {
		return secerr.New(secerr.CodeRelationExists, "cloud: relation %q already registered", id)
	}
	srv, err := NewServer(keys, ledger, opts...)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		srv.Close()
		return secerr.New(secerr.CodeInternal, "cloud: service is closed")
	}
	if _, ok := s.relations[id]; ok {
		srv.Close()
		return secerr.New(secerr.CodeRelationExists, "cloud: relation %q already registered", id)
	}
	s.relations[id] = srv
	return nil
}

// Deregister removes a relation and releases its server's background
// pools. Unknown IDs are a no-op.
func (s *Service) Deregister(id string) {
	s.mu.Lock()
	srv := s.relations[id]
	delete(s.relations, id)
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Relation returns the server registered under id (nil when absent).
func (s *Service) Relation(id string) *Server {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.relations[id]
}

// Relations lists the registered relation IDs, sorted.
func (s *Service) Relations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.relations))
	for id := range s.relations {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Close deregisters every relation and releases their servers. The
// service rejects registrations afterwards; safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	servers := make([]*Server, 0, len(s.relations))
	for _, srv := range s.relations {
		servers = append(servers, srv)
	}
	s.relations = make(map[string]*Server)
	s.closed = true
	s.mu.Unlock()
	for _, srv := range servers {
		srv.Close()
	}
}

// Serve implements transport.Responder: Hello negotiates the version and
// optionally checks a relation is served; every other method routes to
// the Server registered for the request's relation ID.
func (s *Service) Serve(ctx context.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case MethodHello:
		var req HelloRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: decoding %s", method)
		}
		resp, err := s.hello(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	case MethodBatch:
		// Items route individually on the relation IDs they carry, so one
		// envelope can serve many relations; item fan-out uses the full
		// worker budget (each relation's handlers apply their own knob).
		return serveBatch(ctx, body, 0, s.Serve)
	}
	req, err := decodeRequest(method, body)
	if err != nil {
		return nil, err
	}
	srv := s.Relation(req.relationID())
	if srv == nil {
		return nil, secerr.New(secerr.CodeUnknownRelation, "cloud: relation %q not registered", req.relationID())
	}
	return srv.handle(ctx, req)
}

// hello negotiates the wire version and, when the peer names the relation
// it intends to query, confirms the relation is registered. The reply
// confirms only the relation the peer asked about — never the full
// registry, which would let any connecting peer enumerate other tenants.
func (s *Service) hello(req *HelloRequest) (*HelloReply, error) {
	if err := acceptVersion(req.Version); err != nil {
		return nil, err
	}
	reply := &HelloReply{Version: negotiateVersion(req.Version)}
	if req.Relation != "" {
		if s.Relation(req.Relation) == nil {
			return nil, secerr.New(secerr.CodeUnknownRelation, "cloud: relation %q not registered", req.Relation)
		}
		reply.Relations = []string{req.Relation}
	}
	return reply, nil
}
