package cloud

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/secerr"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Batcher is the S1-side batch scheduler: a transport.Caller that
// coalesces protocol calls from concurrent sessions into BatchRequest
// envelopes, so the crypto cloud's worker pool sees a few large batches
// per round trip instead of per-session dribbles.
//
// Scheduling is latency-neutral for a lone session and convoy-forming
// under load: a call arriving while the link is idle flushes immediately;
// while an envelope is in flight, arrivals accumulate and drain either
// when the in-flight envelope returns, when the queue reaches the size
// threshold, or on the flush tick — whichever comes first. Envelopes are
// issued concurrently (a multiplexed transport keeps several in flight).
//
// Hello rounds bypass the scheduler: handshakes run before traffic and
// must not wait on it. All methods are safe for concurrent use.
type Batcher struct {
	caller   transport.Caller
	maxItems int
	window   time.Duration

	mu         sync.Mutex
	queue      []*batchCall
	inflight   int
	timer      *time.Timer
	timerArmed bool
	closed     bool
	wg         sync.WaitGroup

	// items counts every call ever shipped in an envelope — the per-query
	// S2-call accounting reads deltas of it (approximate under concurrency,
	// like the shared connection's Traffic counters).
	items atomic.Int64
}

// Items returns the cumulative count of protocol calls shipped to S2
// through this batcher.
func (b *Batcher) Items() int64 { return b.items.Load() }

// batchCall is one queued protocol call awaiting its slot in an envelope.
type batchCall struct {
	method string
	body   []byte
	done   chan batchOutcome // buffered: senders never block on delivery
}

type batchOutcome struct {
	body []byte
	err  error
}

// DefaultBatchSize is the flush-on-size threshold.
const DefaultBatchSize = 64

// DefaultBatchWindow is the flush tick: the longest a queued call waits
// behind an in-flight envelope before draining anyway.
const DefaultBatchWindow = time.Millisecond

// BatcherOption tunes a Batcher.
type BatcherOption func(*Batcher)

// WithBatchSize sets the flush-on-size threshold (minimum 1).
func WithBatchSize(n int) BatcherOption {
	return func(b *Batcher) {
		if n > 0 {
			b.maxItems = n
		}
	}
}

// WithBatchWindow sets the flush tick.
func WithBatchWindow(d time.Duration) BatcherOption {
	return func(b *Batcher) {
		if d > 0 {
			b.window = d
		}
	}
}

// NewBatcher wraps a transport with the batch scheduler. Call Close when
// done; the underlying caller is not closed.
func NewBatcher(caller transport.Caller, opts ...BatcherOption) *Batcher {
	b := &Batcher{caller: caller, maxItems: DefaultBatchSize, window: DefaultBatchWindow}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Call implements transport.Caller: the request is encoded, queued into
// the next envelope, and the matching per-item reply decoded into resp.
// A canceled context abandons only this call (its slot in an already
// scheduled envelope is still computed, and the result discarded).
func (b *Batcher) Call(ctx context.Context, method string, req, resp any) error {
	if method == MethodHello {
		return b.caller.Call(ctx, method, req, resp)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cloud: %s: %w", method, err)
	}
	body, err := transport.Encode(req)
	if err != nil {
		return secerr.Wrap(secerr.CodeTransport, err, "encoding %s request", method)
	}
	bc := &batchCall{method: method, body: body, done: make(chan batchOutcome, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return secerr.New(secerr.CodeTransport, "cloud: %s: batcher closed", method)
	}
	b.queue = append(b.queue, bc)
	switch {
	case b.inflight == 0:
		// Idle link: flush immediately, so a lone session pays no
		// scheduling latency at all.
		b.flushLocked("idle")
	case len(b.queue) >= b.maxItems:
		b.flushLocked("size")
	default:
		b.armTimerLocked()
	}
	b.mu.Unlock()

	select {
	case out := <-bc.done:
		if out.err != nil {
			return out.err
		}
		if resp == nil {
			return nil
		}
		if err := transport.Decode(out.body, resp); err != nil {
			return secerr.Wrap(secerr.CodeTransport, err, "decoding %s response", method)
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cloud: %s: %w", method, ctx.Err())
	}
}

// flushLocked ships the queued calls as one envelope (mu held); reason
// labels the flush trigger in the metrics.
func (b *Batcher) flushLocked(reason string) {
	if len(b.queue) == 0 {
		return
	}
	calls := b.queue
	b.queue = nil
	if b.timerArmed {
		b.timer.Stop()
		b.timerArmed = false
	}
	b.inflight++
	b.items.Add(int64(len(calls)))
	telemetry.Default().Counter("sectopk_batch_flushes_total", "reason", reason).Inc()
	telemetry.Default().Counter("sectopk_batch_items_total").Add(int64(len(calls)))
	b.wg.Add(1)
	go b.send(calls)
}

// armTimerLocked schedules the flush tick (mu held).
func (b *Batcher) armTimerLocked() {
	if b.timerArmed {
		return
	}
	b.timerArmed = true
	if b.timer == nil {
		b.timer = time.AfterFunc(b.window, b.onTick)
	} else {
		b.timer.Reset(b.window)
	}
}

func (b *Batcher) onTick() {
	b.mu.Lock()
	b.timerArmed = false
	if !b.closed {
		b.flushLocked("tick")
	}
	b.mu.Unlock()
}

// send issues one envelope round and distributes the per-item outcomes.
// The envelope runs under the background context: per-call cancellation
// abandons the result, never a co-batched neighbour's round.
func (b *Batcher) send(calls []*batchCall) {
	defer b.wg.Done()
	req := BatchRequest{Items: make([]BatchItem, len(calls))}
	for i, c := range calls {
		req.Items[i] = BatchItem{Method: c.method, Body: c.body}
	}
	var reply BatchReply
	telemetry.Default().Counter("sectopk_s2_rounds_total").Inc()
	err := b.caller.Call(context.Background(), MethodBatch, &req, &reply)
	if err == nil && len(reply.Items) != len(calls) {
		err = secerr.New(secerr.CodeTransport,
			"cloud: batch reply has %d items, want %d", len(reply.Items), len(calls))
	}
	for i, c := range calls {
		if err != nil {
			c.done <- batchOutcome{err: fmt.Errorf("cloud: %s: %w", c.method, err)}
			continue
		}
		it := reply.Items[i]
		if it.ErrCode != "" {
			c.done <- batchOutcome{err: fmt.Errorf("cloud: %s: remote: %w", c.method, secerr.FromWire(it.ErrCode, it.ErrMsg))}
			continue
		}
		c.done <- batchOutcome{body: it.Body}
	}
	b.mu.Lock()
	b.inflight--
	if !b.closed && len(b.queue) > 0 {
		// Drain the convoy that formed behind this round.
		b.flushLocked("drain")
	}
	b.mu.Unlock()
}

// Close fails every queued call with a typed transport error and waits
// for in-flight envelopes to finish distributing. Safe to call more than
// once; the underlying transport is left open.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	queued := b.queue
	b.queue = nil
	if b.timerArmed {
		b.timer.Stop()
		b.timerArmed = false
	}
	b.mu.Unlock()
	for _, c := range queued {
		c.done <- batchOutcome{err: secerr.New(secerr.CodeTransport, "cloud: %s: batcher closed", c.method)}
	}
	b.wg.Wait()
}
