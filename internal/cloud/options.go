package cloud

import (
	"runtime"

	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/parallel"
)

// Option configures a Server or Client at construction time. Both parties
// share one option vocabulary so deployments tune them uniformly.
type Option func(*config)

type config struct {
	parallelism int
	noPools     bool
	fastNonce   bool
	crtOff      bool
	relation    string
}

// WithRelation sets the relation ID a Client stamps on every request, so
// a multi-relation crypto cloud (Service) can route it to the right key
// material. Single-relation deployments may leave it empty. Servers
// ignore the option.
func WithRelation(id string) Option {
	return func(c *config) { c.relation = id }
}

// WithParallelism sets the party's parallelism knob: 0 (the default) uses
// all cores, 1 reproduces the serial pre-parallel behavior exactly, n caps
// foreground worker goroutines at n. Note the background nonce-pool
// fillers (up to 4 per pool, see poolWorkers) run in addition to this
// cap; combine with WithoutNoncePools for a hard concurrency bound.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithoutNoncePools disables the background nonce-precompute pools even at
// parallelism != 1 (useful for memory-constrained deployments and for
// benchmarking the pools' contribution in isolation).
func WithoutNoncePools() Option {
	return func(c *config) { c.noPools = true }
}

// WithFastNonce toggles the short-exponent fixed-base nonce path
// (paillier.FastEncryptor / dj.FastEncryptor) for every encryption
// surface the party owns. Off by default: the fast path rests on the
// standard short-exponent/subgroup indistinguishability assumption on top
// of DCR, so it is strictly opt-in (see DESIGN.md "Precomputation fast
// paths"). When enabled it takes precedence over the CRT path — it is
// faster, and applies even to surfaces without the private key.
func WithFastNonce(on bool) Option {
	return func(c *config) { c.fastNonce = on }
}

// WithCRTNonce toggles the CRT nonce fast path for surfaces whose private
// key the party holds (S2's main and DJ keys, S1's ephemeral key). On by
// default: the CRT split is assumption-free and bit-compatible with the
// spec path, ~2-3x cheaper per nonce. Turn it off to benchmark the spec
// path or to pin down a suspected CRT-related miscomputation.
func WithCRTNonce(on bool) Option {
	return func(c *config) { c.crtOff = !on }
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// poolsEnabled reports whether background nonce pools should run: they
// are off at parallelism 1 (so the serial path stays byte-for-byte
// identical to the pre-parallel implementation) and on single-core hosts,
// where background precompute can only steal cycles from the foreground
// rounds it is meant to feed.
func (c config) poolsEnabled() bool {
	return !c.noPools && c.parallelism != 1 && runtime.GOMAXPROCS(0) > 1
}

// poolWorkers sizes a pool's background filler count, scaled to (but not
// deducted from) the foreground worker budget and capped low so
// precompute never starves foreground rounds.
func (c config) poolWorkers() int {
	w := parallel.Workers(c.parallelism) / 2
	if w < 1 {
		w = 1
	}
	if w > 4 {
		w = 4
	}
	return w
}

// poolCapacity bounds how far ahead the fillers may run.
const poolCapacity = 128

// paillierSurface is what every Paillier nonce producer offers: the
// Encryptor methods the protocols consume plus the NonceSource feed a
// pool can buffer.
type paillierSurface interface {
	paillier.Encryptor
	paillier.NonceSource
}

// newPaillierEnc returns the encryption surface for pk under this config.
// sk may be nil (the party does not hold the private key). Precedence:
// fast-nonce table (opt-in) > CRT split (default when sk is present) >
// spec path; a background pool wraps whichever base was picked when
// pooling is enabled. The returned closer is non-nil only when a pool was
// started.
func (c config) newPaillierEnc(pk *paillier.PublicKey, sk *paillier.PrivateKey) (paillier.Encryptor, func(), error) {
	var base paillierSurface = pk
	switch {
	case c.fastNonce:
		fast, err := paillier.NewFastEncryptor(pk, 0)
		if err != nil {
			return nil, nil, err
		}
		base = fast
	case sk != nil && !c.crtOff:
		base = sk.CRTEncryptor()
	}
	if !c.poolsEnabled() {
		return base, nil, nil
	}
	pool := paillier.NewNoncePool(base, c.poolWorkers(), poolCapacity)
	return pool, pool.Close, nil
}

// djSurface mirrors paillierSurface for the Damgård-Jurik layer.
type djSurface interface {
	dj.Encryptor
	dj.NonceSource
}

// newDJEnc is newPaillierEnc for the Damgård-Jurik layer.
func (c config) newDJEnc(pk *dj.PublicKey, sk *dj.PrivateKey) (dj.Encryptor, func(), error) {
	var base djSurface = pk
	switch {
	case c.fastNonce:
		fast, err := dj.NewFastEncryptor(pk, 0)
		if err != nil {
			return nil, nil, err
		}
		base = fast
	case sk != nil && !c.crtOff:
		base = sk.CRTEncryptor()
	}
	if !c.poolsEnabled() {
		return base, nil, nil
	}
	pool := dj.NewNoncePool(base, c.poolWorkers(), poolCapacity)
	return pool, pool.Close, nil
}
