package cloud

import (
	"runtime"

	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/parallel"
)

// Option configures a Server or Client at construction time. Both parties
// share one option vocabulary so deployments tune them uniformly.
type Option func(*config)

type config struct {
	parallelism int
	noPools     bool
}

// WithParallelism sets the party's parallelism knob: 0 (the default) uses
// all cores, 1 reproduces the serial pre-parallel behavior exactly, n caps
// foreground worker goroutines at n. Note the background nonce-pool
// fillers (up to 4 per pool, see poolWorkers) run in addition to this
// cap; combine with WithoutNoncePools for a hard concurrency bound.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithoutNoncePools disables the background nonce-precompute pools even at
// parallelism != 1 (useful for memory-constrained deployments and for
// benchmarking the pools' contribution in isolation).
func WithoutNoncePools() Option {
	return func(c *config) { c.noPools = true }
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// poolsEnabled reports whether background nonce pools should run: they
// are off at parallelism 1 (so the serial path stays byte-for-byte
// identical to the pre-parallel implementation) and on single-core hosts,
// where background precompute can only steal cycles from the foreground
// rounds it is meant to feed.
func (c config) poolsEnabled() bool {
	return !c.noPools && c.parallelism != 1 && runtime.GOMAXPROCS(0) > 1
}

// poolWorkers sizes a pool's background filler count, scaled to (but not
// deducted from) the foreground worker budget and capped low so
// precompute never starves foreground rounds.
func (c config) poolWorkers() int {
	w := parallel.Workers(c.parallelism) / 2
	if w < 1 {
		w = 1
	}
	if w > 4 {
		w = 4
	}
	return w
}

// poolCapacity bounds how far ahead the fillers may run.
const poolCapacity = 128

// newPaillierEnc returns the encryption surface for pk under this config:
// a background pool when enabled, the plain key otherwise. The returned
// closer is non-nil only when a pool was started.
func (c config) newPaillierEnc(pk *paillier.PublicKey) (paillier.Encryptor, func()) {
	if !c.poolsEnabled() {
		return pk, nil
	}
	pool := paillier.NewNoncePool(pk, c.poolWorkers(), poolCapacity)
	return pool, pool.Close
}

// newDJEnc is newPaillierEnc for the Damgård-Jurik layer.
func (c config) newDJEnc(pk *dj.PublicKey) (dj.Encryptor, func()) {
	if !c.poolsEnabled() {
		return pk, nil
	}
	pool := dj.NewNoncePool(pk, c.poolWorkers(), poolCapacity)
	return pool, pool.Close
}
