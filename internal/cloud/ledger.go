package cloud

import (
	"fmt"
	"sync"
)

// Event is one leakage observation recorded by a party during a protocol
// round: what the party could compute from its view beyond the declared
// ciphertexts.
type Event struct {
	Party  string // "S1" or "S2"
	Method string // protocol round that produced the observation
	Detail string // human-readable description of the observation
}

func (e Event) String() string {
	return fmt.Sprintf("[%s] %s: %s", e.Party, e.Method, e.Detail)
}

// Ledger accumulates leakage events. The security tests assert that the
// recorded views match the leakage functions of Section 9 (query pattern,
// halting depth, per-depth equality pattern) and Section 10 (uniqueness
// pattern for SecDupElim) — and nothing else.
type Ledger struct {
	mu     sync.Mutex
	events []Event
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Record appends an event. A nil ledger ignores the call, so recording is
// always safe.
func (l *Ledger) Record(party, method, format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Party: party, Method: method, Detail: fmt.Sprintf(format, args...)})
}

// Events returns a copy of the recorded events.
func (l *Ledger) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
}

// ByMethod returns the events recorded for one method.
func (l *Ledger) ByMethod(method string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Method == method {
			out = append(out, e)
		}
	}
	return out
}
