package cloud

import (
	"context"
	"math/big"
	"strings"
	"sync"
	"testing"

	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/transport"
)

type testEnv struct {
	keys   *KeyMaterial
	server *Server
	client *Client
	s2led  *Ledger
	stats  *transport.Stats
}

var (
	envOnce sync.Once
	sharedE *testEnv
)

// env builds a shared server/client pair over the in-process transport.
func env(t testing.TB) *testEnv {
	t.Helper()
	envOnce.Do(func() {
		keys, err := NewKeyMaterial(256)
		if err != nil {
			t.Fatalf("NewKeyMaterial: %v", err)
		}
		led := NewLedger()
		srv, err := NewServer(keys, led)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		stats := transport.NewStats()
		client, err := NewClient(transport.NewLocal(srv, stats), &keys.Paillier.PublicKey, NewLedger())
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		sharedE = &testEnv{keys: keys, server: srv, client: client, s2led: led, stats: stats}
	})
	return sharedE
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Fatal("expected error for nil keys")
	}
	if _, err := NewServer(&KeyMaterial{}, nil); err == nil {
		t.Fatal("expected error for incomplete keys")
	}
}

func TestNewClientValidation(t *testing.T) {
	e := env(t)
	if _, err := NewClient(nil, &e.keys.Paillier.PublicKey, nil); err == nil {
		t.Fatal("expected error for nil caller")
	}
	if _, err := NewClient(transport.NewLocal(e.server, nil), nil, nil); err == nil {
		t.Fatal("expected error for nil pk")
	}
}

func TestEqBits(t *testing.T) {
	e := env(t)
	pk := &e.keys.Paillier.PublicKey
	zero, _ := pk.EncryptInt64(0)
	nz, _ := pk.EncryptInt64(991)
	zero2, _ := pk.EncryptInt64(0)
	bits, err := e.client.EqBits(context.Background(), []*paillier.Ciphertext{zero, nz, zero2})
	if err != nil {
		t.Fatalf("EqBits: %v", err)
	}
	want := []int64{1, 0, 1}
	for i, b := range bits {
		m, err := e.keys.DJ.Decrypt(b)
		if err != nil {
			t.Fatalf("decrypt bit %d: %v", i, err)
		}
		if m.Int64() != want[i] {
			t.Errorf("bit %d = %v, want %d", i, m, want[i])
		}
	}
	if out, err := e.client.EqBits(context.Background(), nil); err != nil || out != nil {
		t.Fatal("empty EqBits should be a no-op")
	}
	if _, err := e.client.EqBits(context.Background(), []*paillier.Ciphertext{nil}); err == nil {
		t.Fatal("expected error for nil ciphertext")
	}
}

func TestRecover(t *testing.T) {
	e := env(t)
	pk := &e.keys.Paillier.PublicKey
	inner, _ := pk.EncryptInt64(4242)
	outer, err := e.client.DJPK().EncryptInner(inner)
	if err != nil {
		t.Fatalf("EncryptInner: %v", err)
	}
	got, err := e.client.Recover(context.Background(), []*dj.Ciphertext{outer})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d ciphertexts", len(got))
	}
	m, err := e.keys.Paillier.Decrypt(got[0])
	if err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	if m.Int64() != 4242 {
		t.Fatalf("recovered plaintext %v, want 4242", m)
	}
}

func TestCompareSigns(t *testing.T) {
	e := env(t)
	pk := &e.keys.Paillier.PublicKey
	pos, _ := pk.EncryptInt64(7)
	neg, _ := pk.EncryptInt64(-7)
	zero, _ := pk.EncryptInt64(0)
	got, err := e.client.CompareSigns(context.Background(), []*paillier.Ciphertext{pos, neg, zero})
	if err != nil {
		t.Fatalf("CompareSigns: %v", err)
	}
	if got[0] || !got[1] || got[2] {
		t.Fatalf("signs = %v, want [false true false]", got)
	}
}

func TestCompareSignsHidden(t *testing.T) {
	e := env(t)
	pk := &e.keys.Paillier.PublicKey
	pos, _ := pk.EncryptInt64(3)
	neg, _ := pk.EncryptInt64(-3)
	bits, err := e.client.CompareSignsHidden(context.Background(), []*paillier.Ciphertext{pos, neg})
	if err != nil {
		t.Fatalf("CompareSignsHidden: %v", err)
	}
	m0, _ := e.keys.DJ.Decrypt(bits[0])
	m1, _ := e.keys.DJ.Decrypt(bits[1])
	if m0.Int64() != 0 || m1.Int64() != 1 {
		t.Fatalf("hidden bits = %v %v, want 0 1", m0, m1)
	}
}

func TestMultBlinded(t *testing.T) {
	e := env(t)
	pk := &e.keys.Paillier.PublicKey
	a, _ := pk.EncryptInt64(6)
	b, _ := pk.EncryptInt64(7)
	prods, err := e.client.MultBlinded(context.Background(), []*paillier.Ciphertext{a}, []*paillier.Ciphertext{b})
	if err != nil {
		t.Fatalf("MultBlinded: %v", err)
	}
	m, _ := e.keys.Paillier.Decrypt(prods[0])
	if m.Int64() != 42 {
		t.Fatalf("6*7 = %v", m)
	}
	if _, err := e.client.MultBlinded(context.Background(), []*paillier.Ciphertext{a}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

// buildRow constructs a WireRow with known digests and scores, blinded
// with zero blinds (Enc_eph(0)) so the test can reason about values
// directly; the server re-blinds anyway.
func buildRow(t *testing.T, e *testEnv, digests []int64, scores []int64) WireRow {
	t.Helper()
	pk := &e.keys.Paillier.PublicKey
	eph := &e.client.Ephemeral().PublicKey
	row := WireRow{}
	for _, d := range digests {
		ct, err := pk.EncryptInt64(d)
		if err != nil {
			t.Fatal(err)
		}
		row.EHL = append(row.EHL, ct.C)
	}
	for _, s := range scores {
		ct, err := pk.EncryptInt64(s)
		if err != nil {
			t.Fatal(err)
		}
		row.Scores = append(row.Scores, ct.C)
	}
	for i := 0; i < len(digests)+len(scores); i++ {
		b, err := eph.EncryptInt64(0)
		if err != nil {
			t.Fatal(err)
		}
		row.Blinds = append(row.Blinds, b.C)
	}
	return row
}

// decodeRow unblinds and decrypts a returned row.
func decodeRow(t *testing.T, e *testEnv, row WireRow) (digests, scores []*big.Int) {
	t.Helper()
	for i, slot := range row.EHL {
		blind, err := e.client.Ephemeral().Decrypt(&paillier.Ciphertext{C: row.Blinds[i]})
		if err != nil {
			t.Fatal(err)
		}
		ct, err := e.keys.Paillier.AddPlain(&paillier.Ciphertext{C: slot}, new(big.Int).Neg(blind))
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.keys.Paillier.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, m)
	}
	for i, slot := range row.Scores {
		blind, err := e.client.Ephemeral().Decrypt(&paillier.Ciphertext{C: row.Blinds[len(row.EHL)+i]})
		if err != nil {
			t.Fatal(err)
		}
		ct, err := e.keys.Paillier.AddPlain(&paillier.Ciphertext{C: slot}, new(big.Int).Neg(blind))
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.keys.Paillier.DecryptSigned(ct)
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, m)
	}
	return digests, scores
}

// eqPair encrypts 0 (rows equal) or a nonzero marker (distinct).
func eqPair(t *testing.T, e *testEnv, equal bool) *big.Int {
	t.Helper()
	v := int64(777)
	if equal {
		v = 0
	}
	ct, err := e.keys.Paillier.PublicKey.EncryptInt64(v)
	if err != nil {
		t.Fatal(err)
	}
	return ct.C
}

func TestDedupReplace(t *testing.T) {
	e := env(t)
	// Rows 0 and 1 are duplicates (digest 11); row 2 is distinct.
	rows := []WireRow{
		buildRow(t, e, []int64{11}, []int64{100, 200}),
		buildRow(t, e, []int64{11}, []int64{100, 200}),
		buildRow(t, e, []int64{22}, []int64{300, 400}),
	}
	req := &DedupRequest{
		Mode:    DedupReplace,
		Rows:    rows,
		PairI:   []int{0, 0, 1},
		PairJ:   []int{1, 2, 2},
		PairCts: []*big.Int{eqPair(t, e, true), eqPair(t, e, false), eqPair(t, e, false)},
	}
	resp, err := e.client.DedupRound(context.Background(), req)
	if err != nil {
		t.Fatalf("DedupRound: %v", err)
	}
	if len(resp.Rows) != 3 {
		t.Fatalf("replace mode must preserve row count, got %d", len(resp.Rows))
	}
	var keptDup, keptUnique, sentinels int
	for _, r := range resp.Rows {
		digests, scores := decodeRow(t, e, r)
		switch {
		case digests[0].Int64() == 11 && scores[0].Int64() == 100:
			keptDup++
		case digests[0].Int64() == 22 && scores[0].Int64() == 300:
			keptUnique++
		case scores[0].Int64() == -1 && scores[1].Int64() == -1:
			sentinels++
		default:
			t.Fatalf("unexpected row: digests=%v scores=%v", digests, scores)
		}
	}
	if keptDup != 1 || keptUnique != 1 || sentinels != 1 {
		t.Fatalf("kept=%d unique=%d sentinels=%d", keptDup, keptUnique, sentinels)
	}
}

func TestDedupEliminate(t *testing.T) {
	e := env(t)
	rows := []WireRow{
		buildRow(t, e, []int64{11}, []int64{100}),
		buildRow(t, e, []int64{11}, []int64{100}),
		buildRow(t, e, []int64{22}, []int64{300}),
	}
	req := &DedupRequest{
		Mode:    DedupEliminate,
		Rows:    rows,
		PairI:   []int{0, 0, 1},
		PairJ:   []int{1, 2, 2},
		PairCts: []*big.Int{eqPair(t, e, true), eqPair(t, e, false), eqPair(t, e, false)},
	}
	resp, err := e.client.DedupRound(context.Background(), req)
	if err != nil {
		t.Fatalf("DedupRound: %v", err)
	}
	if len(resp.Rows) != 2 {
		t.Fatalf("eliminate mode should return 2 rows, got %d", len(resp.Rows))
	}
	seen := map[int64]bool{}
	for _, r := range resp.Rows {
		digests, _ := decodeRow(t, e, r)
		seen[digests[0].Int64()] = true
	}
	if !seen[11] || !seen[22] {
		t.Fatalf("expected digests 11 and 22, got %v", seen)
	}
}

func TestDedupMerge(t *testing.T) {
	e := env(t)
	// Three occurrences of digest 11 with worst contributions 10, 20, 5;
	// column 1 (best) should keep one representative value.
	rows := []WireRow{
		buildRow(t, e, []int64{11}, []int64{10, 99}),
		buildRow(t, e, []int64{11}, []int64{20, 98}),
		buildRow(t, e, []int64{11}, []int64{5, 97}),
		buildRow(t, e, []int64{22}, []int64{7, 96}),
	}
	req := &DedupRequest{
		Mode:      DedupMerge,
		Rows:      rows,
		PairI:     []int{0, 0, 0, 1, 1, 2},
		PairJ:     []int{1, 2, 3, 2, 3, 3},
		PairCts:   []*big.Int{eqPair(t, e, true), eqPair(t, e, true), eqPair(t, e, false), eqPair(t, e, true), eqPair(t, e, false), eqPair(t, e, false)},
		MergeCols: []int{0},
	}
	resp, err := e.client.DedupRound(context.Background(), req)
	if err != nil {
		t.Fatalf("DedupRound: %v", err)
	}
	if len(resp.Rows) != 2 {
		t.Fatalf("merge mode should return 2 rows, got %d", len(resp.Rows))
	}
	var mergedW, uniqueW int64 = -1, -1
	for _, r := range resp.Rows {
		digests, scores := decodeRow(t, e, r)
		switch digests[0].Int64() {
		case 11:
			mergedW = scores[0].Int64()
			if b := scores[1].Int64(); b != 99 && b != 98 && b != 97 {
				t.Fatalf("merged best %d not one of the group's", b)
			}
		case 22:
			uniqueW = scores[0].Int64()
		default:
			t.Fatalf("unexpected digest %v", digests[0])
		}
	}
	if mergedW != 35 {
		t.Fatalf("merged worst = %d, want 10+20+5 = 35", mergedW)
	}
	if uniqueW != 7 {
		t.Fatalf("unique worst = %d, want 7", uniqueW)
	}
}

func TestDedupValidation(t *testing.T) {
	e := env(t)
	row := buildRow(t, e, []int64{1}, []int64{2})
	bad := &DedupRequest{
		Mode:    DedupReplace,
		Rows:    []WireRow{row},
		PairI:   []int{0},
		PairJ:   []int{5}, // out of range
		PairCts: []*big.Int{eqPair(t, e, false)},
	}
	if _, err := e.client.DedupRound(context.Background(), bad); err == nil {
		t.Fatal("expected out-of-range pair error")
	}
	short := &DedupRequest{
		Mode:    DedupReplace,
		Rows:    []WireRow{{EHL: row.EHL, Scores: row.Scores, Blinds: row.Blinds[:1]}},
		PairI:   nil,
		PairJ:   nil,
		PairCts: nil,
	}
	if _, err := e.client.DedupRound(context.Background(), short); err == nil {
		t.Fatal("expected malformed blind vector error")
	}
	mergeBad := &DedupRequest{
		Mode:      DedupMerge,
		Rows:      []WireRow{row},
		MergeCols: []int{9},
	}
	if _, err := e.client.DedupRound(context.Background(), mergeBad); err == nil {
		t.Fatal("expected merge column range error")
	}
	if _, err := e.client.DedupRound(context.Background(), nil); err == nil {
		t.Fatal("expected nil request error")
	}
}

func TestFilterDropsAndRecovers(t *testing.T) {
	e := env(t)
	pk := &e.keys.Paillier.PublicKey
	eph := e.client.Ephemeral()

	// Row A: score 9 blinded multiplicatively by r; payload 55 blinded by 0.
	r := big.NewInt(123457)
	rInv := new(big.Int).ModInverse(r, pk.N)
	sBlinded := new(big.Int).Mul(big.NewInt(9), r)
	sBlinded.Mod(sBlinded, pk.N)
	sCt, _ := pk.Encrypt(sBlinded)
	payloadCt, _ := pk.EncryptInt64(55)
	bl0, _ := eph.Encrypt(rInv)
	bl1, _ := eph.EncryptInt64(0)
	rowA := WireRow{Scores: []*big.Int{sCt.C, payloadCt.C}, Blinds: []*big.Int{bl0.C, bl1.C}}

	// Row B: score 0 (fails the join condition) — must be dropped.
	zeroCt, _ := pk.EncryptInt64(0)
	pay2, _ := pk.EncryptInt64(66)
	bl20, _ := eph.EncryptInt64(1)
	bl21, _ := eph.EncryptInt64(0)
	rowB := WireRow{Scores: []*big.Int{zeroCt.C, pay2.C}, Blinds: []*big.Int{bl20.C, bl21.C}}

	resp, err := e.client.FilterRound(context.Background(), &FilterRequest{Rows: []WireRow{rowA, rowB}})
	if err != nil {
		t.Fatalf("FilterRound: %v", err)
	}
	if len(resp.Rows) != 1 {
		t.Fatalf("expected 1 surviving row, got %d", len(resp.Rows))
	}
	out := resp.Rows[0]
	// Unblind the score: decrypt the returned inverse (an integer product
	// r^{-1} * gamma^{-1} below the ephemeral modulus), reduce mod N, and
	// exponentiate.
	invRaw, err := eph.Decrypt(&paillier.Ciphertext{C: out.Blinds[0]})
	if err != nil {
		t.Fatal(err)
	}
	invRaw.Mod(invRaw, pk.N)
	unblinded, err := pk.MulConst(&paillier.Ciphertext{C: out.Scores[0]}, invRaw)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.keys.Paillier.Decrypt(unblinded)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 9 {
		t.Fatalf("unblinded join score = %v, want 9", m)
	}
	// Unblind the payload column.
	padBlind, err := eph.Decrypt(&paillier.Ciphertext{C: out.Blinds[1]})
	if err != nil {
		t.Fatal(err)
	}
	padCt, err := pk.AddPlain(&paillier.Ciphertext{C: out.Scores[1]}, new(big.Int).Neg(padBlind))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := e.keys.Paillier.Decrypt(padCt)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Int64() != 55 {
		t.Fatalf("unblinded payload = %v, want 55", pm)
	}
}

func TestFilterMalformedRow(t *testing.T) {
	e := env(t)
	bad := &FilterRequest{Rows: []WireRow{{Scores: nil, Blinds: nil}}}
	if _, err := e.client.FilterRound(context.Background(), bad); err == nil {
		t.Fatal("expected malformed row error")
	}
	if _, err := e.client.FilterRound(context.Background(), nil); err == nil {
		t.Fatal("expected nil request error")
	}
}

func TestUnknownMethod(t *testing.T) {
	e := env(t)
	if _, err := e.server.Serve(context.Background(), "Nope", nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("expected unknown method error, got %v", err)
	}
}

func TestMalformedBody(t *testing.T) {
	e := env(t)
	for _, m := range []string{MethodEqBits, MethodRecover, MethodCompare, MethodCompareHidden, MethodMult, MethodDedup, MethodFilter} {
		if _, err := e.server.Serve(context.Background(), m, []byte{0xff, 0x01, 0x02}); err == nil {
			t.Errorf("method %s: expected decode error", m)
		}
	}
}

func TestLedgerRecordsEqualityPattern(t *testing.T) {
	e := env(t)
	e.s2led.Reset()
	pk := &e.keys.Paillier.PublicKey
	zero, _ := pk.EncryptInt64(0)
	nz, _ := pk.EncryptInt64(5)
	if _, err := e.client.EqBits(context.Background(), []*paillier.Ciphertext{zero, nz}); err != nil {
		t.Fatal(err)
	}
	events := e.s2led.ByMethod(MethodEqBits)
	if len(events) != 1 {
		t.Fatalf("expected 1 EqBits event, got %d", len(events))
	}
	if !strings.Contains(events[0].Detail, "1 equal of 2") {
		t.Fatalf("event detail = %q", events[0].Detail)
	}
	if events[0].String() == "" {
		t.Fatal("event should format")
	}
}

func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	l.Record("S1", "x", "y")
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil ledger should be inert")
	}
	l.Reset()
}

func TestStatsAccumulate(t *testing.T) {
	e := env(t)
	before := e.stats.Rounds()
	pk := &e.keys.Paillier.PublicKey
	a, _ := pk.EncryptInt64(0)
	if _, err := e.client.EqBits(context.Background(), []*paillier.Ciphertext{a}); err != nil {
		t.Fatal(err)
	}
	if e.stats.Rounds() != before+1 {
		t.Fatalf("rounds did not advance: %d -> %d", before, e.stats.Rounds())
	}
}
