package cloud

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/secerr"
	"repro/internal/transport"
)

// TestBatchEnvelopeServer feeds a mixed envelope to a real Server: valid
// items succeed, hostile items earn per-item structured errors without
// failing their neighbours, and nested envelopes are rejected.
func TestBatchEnvelopeServer(t *testing.T) {
	e := env(t)
	hello, err := transport.Encode(&HelloRequest{Version: transport.ProtocolVersion})
	if err != nil {
		t.Fatal(err)
	}
	nested, err := transport.Encode(&BatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	req := &BatchRequest{Items: []BatchItem{
		{Method: MethodHello, Body: hello},
		{Method: "Bogus", Body: nil},
		{Method: MethodEqBits, Body: []byte{0xff, 0x01}},
		{Method: MethodBatch, Body: nested},
	}}
	body, err := transport.Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.server.Serve(context.Background(), MethodBatch, body)
	if err != nil {
		t.Fatalf("batch envelope failed wholesale: %v", err)
	}
	var reply BatchReply
	if err := transport.Decode(out, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Items) != 4 {
		t.Fatalf("got %d item replies, want 4", len(reply.Items))
	}
	if reply.Items[0].ErrCode != "" {
		t.Errorf("valid Hello item failed: %s %s", reply.Items[0].ErrCode, reply.Items[0].ErrMsg)
	}
	var hr HelloReply
	if err := transport.Decode(reply.Items[0].Body, &hr); err != nil || hr.Version != transport.ProtocolVersion {
		t.Errorf("Hello item reply: %v / %+v", err, hr)
	}
	if got := reply.Items[1].ErrCode; got != string(secerr.CodeUnknownMethod) {
		t.Errorf("bogus method item: code %q", got)
	}
	if got := reply.Items[2].ErrCode; got != string(secerr.CodeBadRequest) {
		t.Errorf("malformed body item: code %q", got)
	}
	if got := reply.Items[3].ErrCode; got != string(secerr.CodeBadRequest) {
		t.Errorf("nested envelope item: code %q", got)
	}
}

// stubCaller is a transport.Caller that records every envelope and can
// hold the first one until released.
type stubCaller struct {
	mu        sync.Mutex
	envelopes [][]BatchItem
	blockOnce chan struct{} // non-nil: the first envelope blocks on it
	fail      bool
}

func (s *stubCaller) Call(ctx context.Context, method string, req, resp any) error {
	if method != MethodBatch {
		return fmt.Errorf("stub: unexpected method %s", method)
	}
	breq := req.(*BatchRequest)
	s.mu.Lock()
	s.envelopes = append(s.envelopes, breq.Items)
	n := len(s.envelopes)
	blocker := s.blockOnce
	s.mu.Unlock()
	if n == 1 && blocker != nil {
		<-blocker
	}
	if s.fail {
		return secerr.New(secerr.CodeTransport, "stub: link down")
	}
	rep := resp.(*BatchReply)
	for _, it := range breq.Items {
		body, err := transport.Encode(it.Method + " ok")
		if err != nil {
			return err
		}
		rep.Items = append(rep.Items, BatchResult{Body: body})
	}
	return nil
}

func (s *stubCaller) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.envelopes)
}

// TestBatcherCoalesces pins the scheduler contract: an idle link flushes
// immediately (envelope of one), and calls arriving behind an in-flight
// envelope coalesce into a single follow-up envelope when it returns.
func TestBatcherCoalesces(t *testing.T) {
	stub := &stubCaller{blockOnce: make(chan struct{})}
	b := NewBatcher(stub, WithBatchWindow(time.Hour)) // tick out of the picture
	defer b.Close()

	firstDone := make(chan error, 1)
	go func() {
		var out string
		firstDone <- b.Call(context.Background(), "First", 1, &out)
	}()
	waitFor(t, func() bool { return stub.count() == 1 })

	const queued = 5
	var wg sync.WaitGroup
	errs := make([]error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out string
			errs[i] = b.Call(context.Background(), fmt.Sprintf("Q%d", i), i, &out)
			if errs[i] == nil && out != fmt.Sprintf("Q%d ok", i) {
				errs[i] = fmt.Errorf("reply %q routed to the wrong call", out)
			}
		}(i)
	}
	// Let every queued call enqueue behind the blocked envelope.
	time.Sleep(100 * time.Millisecond)
	if got := stub.count(); got != 1 {
		t.Fatalf("queued calls flushed behind an in-flight envelope: %d envelopes", got)
	}
	close(stub.blockOnce)
	if err := <-firstDone; err != nil {
		t.Fatalf("first call: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("queued call %d: %v", i, err)
		}
	}
	if got := stub.count(); got != 2 {
		t.Fatalf("got %d envelopes, want 2 (1 immediate + 1 coalesced)", got)
	}
	stub.mu.Lock()
	coalesced := len(stub.envelopes[1])
	stub.mu.Unlock()
	if coalesced != queued {
		t.Fatalf("follow-up envelope carries %d items, want %d", coalesced, queued)
	}
}

// TestBatcherTickFlush checks the ~1ms tick drains a convoy even while
// an envelope is still in flight.
func TestBatcherTickFlush(t *testing.T) {
	stub := &stubCaller{blockOnce: make(chan struct{})}
	b := NewBatcher(stub, WithBatchWindow(time.Millisecond))
	defer b.Close()
	go func() {
		var out string
		_ = b.Call(context.Background(), "Blocked", 1, &out)
	}()
	waitFor(t, func() bool { return stub.count() == 1 })
	var out string
	if err := b.Call(context.Background(), "Ticked", 1, &out); err != nil {
		t.Fatalf("ticked call: %v", err)
	}
	if out != "Ticked ok" {
		t.Fatalf("ticked call reply %q", out)
	}
	if got := stub.count(); got < 2 {
		t.Fatalf("tick did not flush past the in-flight envelope (%d envelopes)", got)
	}
	close(stub.blockOnce)
}

// TestBatcherCancelOneOfN cancels one queued call: it returns promptly
// with the context error while its co-batched neighbours complete.
func TestBatcherCancelOneOfN(t *testing.T) {
	stub := &stubCaller{blockOnce: make(chan struct{})}
	b := NewBatcher(stub, WithBatchWindow(time.Hour))
	defer b.Close()
	go func() {
		var out string
		_ = b.Call(context.Background(), "Blocked", 1, &out)
	}()
	waitFor(t, func() bool { return stub.count() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	canceledDone := make(chan error, 1)
	go func() {
		var out string
		canceledDone <- b.Call(ctx, "Canceled", 1, &out)
	}()
	survivorDone := make(chan error, 1)
	go func() {
		var out string
		survivorDone <- b.Call(context.Background(), "Survivor", 1, &out)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-canceledDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled call: want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled call did not return")
	}
	close(stub.blockOnce)
	if err := <-survivorDone; err != nil {
		t.Fatalf("survivor poisoned by the canceled neighbour: %v", err)
	}
}

// TestBatcherCloseQueued fails queued calls with a typed transport error
// and leaks no goroutine.
func TestBatcherCloseQueued(t *testing.T) {
	baseline := runtime.NumGoroutine()
	stub := &stubCaller{blockOnce: make(chan struct{})}
	b := NewBatcher(stub, WithBatchWindow(time.Hour))
	inflightDone := make(chan error, 1)
	go func() {
		var out string
		inflightDone <- b.Call(context.Background(), "Inflight", 1, &out)
	}()
	waitFor(t, func() bool { return stub.count() == 1 })
	queuedDone := make(chan error, 1)
	go func() {
		var out string
		queuedDone <- b.Call(context.Background(), "Queued", 1, &out)
	}()
	time.Sleep(50 * time.Millisecond)
	go close(stub.blockOnce) // let the in-flight envelope drain under Close
	b.Close()
	if err := <-queuedDone; !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("queued call after Close: want ErrTransport, got %v", err)
	}
	if err := <-inflightDone; err != nil {
		t.Fatalf("in-flight call: %v", err)
	}
	// Post-Close calls fail fast; double Close is safe.
	if err := b.Call(context.Background(), "Post", 1, nil); !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("post-Close call: want ErrTransport, got %v", err)
	}
	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak: %d alive, baseline %d", n, baseline)
	}
}

// TestBatcherLinkFailure propagates an envelope failure to every
// co-batched call.
func TestBatcherLinkFailure(t *testing.T) {
	stub := &stubCaller{fail: true}
	b := NewBatcher(stub)
	defer b.Close()
	err := b.Call(context.Background(), "Doomed", 1, nil)
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("want ErrTransport, got %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
