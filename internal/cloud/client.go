package cloud

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/transport"
)

// Client is the data cloud S1's stub for talking to the crypto cloud S2.
// It owns S1's ephemeral Paillier key pair (the pk' of Algorithm 7), whose
// modulus is kept at least 2x+64 bits larger than the main modulus so that
// blind bookkeeping (integer sums of additive blinds, one integer product
// for the multiplicative join blind) never wraps before S1 reduces mod N.
//
// The client also carries S1's parallelism knob and nonce-precompute
// pools; the protocols layer reads them through Parallelism, Enc, and
// EphEnc so every S1-side blinding loop shares one configuration.
type Client struct {
	caller   transport.Caller
	relation string
	pk       *paillier.PublicKey
	djPK     *dj.PublicKey
	eph      *paillier.PrivateKey
	ledger   *Ledger
	par      int
	pkEnc    paillier.Encryptor
	ephEnc   paillier.Encryptor
	djEnc    dj.Encryptor
	close    []func()
}

// NewClient builds S1's stub. The ledger records S1-side leakage
// observations and may be nil. Call Close when done to release the
// background nonce pools.
func NewClient(caller transport.Caller, pk *paillier.PublicKey, ledger *Ledger, opts ...Option) (*Client, error) {
	if caller == nil {
		return nil, errors.New("cloud: nil caller")
	}
	if pk == nil {
		return nil, errors.New("cloud: nil public key")
	}
	djPK, err := dj.NewPublicKey(pk, 2)
	if err != nil {
		return nil, err
	}
	ephBits := 2*pk.N.BitLen() + 64
	eph, err := paillier.GenerateKey(rand.Reader, ephBits)
	if err != nil {
		return nil, fmt.Errorf("cloud: generating ephemeral key: %w", err)
	}
	cfg := buildConfig(opts)
	c := &Client{caller: caller, relation: cfg.relation, pk: pk, djPK: djPK, eph: eph, ledger: ledger, par: cfg.parallelism}
	// S1 holds only the ephemeral private key: the main and DJ surfaces
	// get the fast-nonce table when opted in (spec path otherwise), while
	// the ephemeral surface — the hottest client-side one, with a modulus
	// more than twice the main size — additionally defaults to CRT.
	var closer func()
	c.pkEnc, closer, err = cfg.newPaillierEnc(pk, nil)
	if err != nil {
		return nil, err
	}
	if closer != nil {
		c.close = append(c.close, closer)
	}
	c.ephEnc, closer, err = cfg.newPaillierEnc(&eph.PublicKey, eph)
	if err != nil {
		c.Close()
		return nil, err
	}
	if closer != nil {
		c.close = append(c.close, closer)
	}
	c.djEnc, closer, err = cfg.newDJEnc(djPK, nil)
	if err != nil {
		c.Close()
		return nil, err
	}
	if closer != nil {
		c.close = append(c.close, closer)
	}
	return c, nil
}

// Close stops the client's background nonce pools. The client stays
// usable afterwards (encryptions compute nonces inline).
func (c *Client) Close() {
	for _, f := range c.close {
		f()
	}
	c.close = nil
}

// Relation returns the relation ID this stub stamps on every request
// (set with WithRelation; empty for single-relation deployments).
func (c *Client) Relation() string { return c.relation }

// Handshake runs the Hello round: it announces this side's wire protocol
// version (and, when configured, the relation it intends to query) and
// verifies the peer answers compatibly. Incompatible peers surface as
// secerr.ErrProtocolVersion; an unregistered relation as
// secerr.ErrUnknownRelation.
func (c *Client) Handshake(ctx context.Context) error {
	return Handshake(ctx, c.caller, c.relation)
}

// Handshake runs the Hello round over a bare caller — the shared
// implementation behind Client.Handshake and connection-time handshakes
// that happen before any client (with its ephemeral key) exists.
func Handshake(ctx context.Context, caller transport.Caller, relation string) error {
	var resp HelloReply
	req := &HelloRequest{Version: transport.ProtocolVersion, Relation: relation}
	if err := caller.Call(ctx, MethodHello, req, &resp); err != nil {
		return err
	}
	return acceptVersion(resp.Version)
}

// PK returns the main Paillier public key.
func (c *Client) PK() *paillier.PublicKey { return c.pk }

// DJPK returns the degree-2 Damgård-Jurik public key.
func (c *Client) DJPK() *dj.PublicKey { return c.djPK }

// Ephemeral returns S1's ephemeral key pair.
func (c *Client) Ephemeral() *paillier.PrivateKey { return c.eph }

// Ledger returns S1's leakage ledger (may be nil).
func (c *Client) Ledger() *Ledger { return c.ledger }

// Parallelism returns S1's parallelism knob (0 = all cores, 1 = serial).
func (c *Client) Parallelism() int { return c.par }

// Enc returns the encryption surface for the main public key (pooled when
// pooling is enabled).
func (c *Client) Enc() paillier.Encryptor { return c.pkEnc }

// EphEnc returns the encryption surface for the ephemeral key — the
// hottest client-side operation, since the ephemeral modulus is more than
// twice the size of the main one.
func (c *Client) EphEnc() paillier.Encryptor { return c.ephEnc }

// DJEnc returns the encryption surface for the Damgård-Jurik layer.
func (c *Client) DJEnc() dj.Encryptor { return c.djEnc }

func ctsToBig(cts []*paillier.Ciphertext) ([]*big.Int, error) {
	out := make([]*big.Int, len(cts))
	for i, c := range cts {
		if c == nil || c.C == nil {
			return nil, fmt.Errorf("cloud: nil ciphertext at %d", i)
		}
		out[i] = c.C
	}
	return out, nil
}

func djToBig(cts []*dj.Ciphertext) ([]*big.Int, error) {
	out := make([]*big.Int, len(cts))
	for i, c := range cts {
		if c == nil || c.C == nil {
			return nil, fmt.Errorf("cloud: nil ciphertext at %d", i)
		}
		out[i] = c.C
	}
	return out, nil
}

func bigToCts(vals []*big.Int) []*paillier.Ciphertext {
	out := make([]*paillier.Ciphertext, len(vals))
	for i, v := range vals {
		out[i] = &paillier.Ciphertext{C: v}
	}
	return out
}

func bigToDJ(vals []*big.Int) []*dj.Ciphertext {
	out := make([]*dj.Ciphertext, len(vals))
	for i, v := range vals {
		out[i] = &dj.Ciphertext{C: v}
	}
	return out
}

// EqBits sends randomized EHL differences and returns the hidden equality
// bits E2(t_i).
func (c *Client) EqBits(ctx context.Context, cts []*paillier.Ciphertext) ([]*dj.Ciphertext, error) {
	if len(cts) == 0 {
		return nil, nil
	}
	vals, err := ctsToBig(cts)
	if err != nil {
		return nil, err
	}
	var resp EqBitsReply
	if err := c.caller.Call(ctx, MethodEqBits, &EqBitsRequest{Relation: c.relation, Cts: vals}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Bits) != len(cts) {
		return nil, fmt.Errorf("cloud: EqBits reply length %d != %d", len(resp.Bits), len(cts))
	}
	return bigToDJ(resp.Bits), nil
}

// Recover strips the outer layer from blinded double encryptions.
func (c *Client) Recover(ctx context.Context, cts []*dj.Ciphertext) ([]*paillier.Ciphertext, error) {
	if len(cts) == 0 {
		return nil, nil
	}
	vals, err := djToBig(cts)
	if err != nil {
		return nil, err
	}
	var resp RecoverReply
	if err := c.caller.Call(ctx, MethodRecover, &RecoverRequest{Relation: c.relation, Cts: vals}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Cts) != len(cts) {
		return nil, fmt.Errorf("cloud: Recover reply length %d != %d", len(resp.Cts), len(cts))
	}
	return bigToCts(resp.Cts), nil
}

// CompareSigns sends sign-blinded differences and returns each sign.
func (c *Client) CompareSigns(ctx context.Context, cts []*paillier.Ciphertext) ([]bool, error) {
	if len(cts) == 0 {
		return nil, nil
	}
	vals, err := ctsToBig(cts)
	if err != nil {
		return nil, err
	}
	var resp CompareReply
	if err := c.caller.Call(ctx, MethodCompare, &CompareRequest{Relation: c.relation, Cts: vals}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Neg) != len(cts) {
		return nil, fmt.Errorf("cloud: Compare reply length %d != %d", len(resp.Neg), len(cts))
	}
	return resp.Neg, nil
}

// CompareSignsHidden is CompareSigns with encrypted result bits.
func (c *Client) CompareSignsHidden(ctx context.Context, cts []*paillier.Ciphertext) ([]*dj.Ciphertext, error) {
	if len(cts) == 0 {
		return nil, nil
	}
	vals, err := ctsToBig(cts)
	if err != nil {
		return nil, err
	}
	var resp CompareHiddenReply
	if err := c.caller.Call(ctx, MethodCompareHidden, &CompareHiddenRequest{Relation: c.relation, Cts: vals}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Bits) != len(cts) {
		return nil, fmt.Errorf("cloud: CompareHidden reply length %d != %d", len(resp.Bits), len(cts))
	}
	return bigToDJ(resp.Bits), nil
}

// MultBlinded sends blinded factor pairs and returns the raw products
// Enc((a+r_a)(b+r_b)).
func (c *Client) MultBlinded(ctx context.Context, a, b []*paillier.Ciphertext) ([]*paillier.Ciphertext, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("cloud: Mult length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, nil
	}
	av, err := ctsToBig(a)
	if err != nil {
		return nil, err
	}
	bv, err := ctsToBig(b)
	if err != nil {
		return nil, err
	}
	var resp MultReply
	if err := c.caller.Call(ctx, MethodMult, &MultRequest{Relation: c.relation, A: av, B: bv}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Products) != len(a) {
		return nil, fmt.Errorf("cloud: Mult reply length %d != %d", len(resp.Products), len(a))
	}
	return bigToCts(resp.Products), nil
}

// DedupRound executes one oblivious deduplication exchange. The request
// must already be blinded and permuted; see protocols.SecDedup for the
// full S1-side protocol.
func (c *Client) DedupRound(ctx context.Context, req *DedupRequest) (*DedupReply, error) {
	if req == nil {
		return nil, errors.New("cloud: nil dedup request")
	}
	req.Relation = c.relation
	req.EphemeralN = c.eph.N
	var resp DedupReply
	if err := c.caller.Call(ctx, MethodDedup, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// FilterRound executes one oblivious filter exchange for the join
// pipeline; see protocols.SecFilter.
func (c *Client) FilterRound(ctx context.Context, req *FilterRequest) (*FilterReply, error) {
	if req == nil {
		return nil, errors.New("cloud: nil filter request")
	}
	req.Relation = c.relation
	req.EphemeralN = c.eph.N
	var resp FilterReply
	if err := c.caller.Call(ctx, MethodFilter, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
