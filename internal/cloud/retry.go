package cloud

import (
	"context"

	"repro/internal/backoff"
	"repro/internal/secerr"
	"repro/internal/transport"
)

// methodRetryable is the per-method retryability table for the S1→S2
// wire. Every v1/v2 protocol handler on S2 is a stateless crypto
// transform — decrypt, compare, re-blind, re-permute — keyed entirely by
// the request body, with no per-call state on the serving side, so
// re-issuing a round after a link failure cannot corrupt anything: the
// worst case is S2 doing the same work twice. Hello is a pure version
// check and Batch is a bag of items that are themselves retryable.
//
// The table is explicit (rather than "retry everything") so a future
// method with side effects defaults to NON-retryable until someone makes
// its idempotency argument here. See DESIGN.md "Failure model".
var methodRetryable = map[string]bool{
	MethodHello:         true,
	MethodEqBits:        true,
	MethodRecover:       true,
	MethodCompare:       true,
	MethodCompareHidden: true,
	MethodMult:          true,
	MethodDedup:         true,
	MethodFilter:        true,
	MethodBatch:         true,
	// Apply mutates hosted state: a lost reply leaves the caller unable
	// to tell whether the delta landed, so the wire layer must NOT blindly
	// re-issue it. The entry is spelled out (rather than relying on the
	// unknown-method default) so the fail-closed choice is pinned by test
	// and survives anyone "completing" this table mechanically. Retries
	// happen above this layer, guarded by the delta's idempotency key.
	MethodApply: false,
}

// MethodRetryable reports whether a failed round of the method is safe
// to re-issue. Unknown methods are not.
func MethodRetryable(method string) bool {
	return methodRetryable[method]
}

// retryableFailure decides whether a failed round is worth repeating at
// all: link failures (the round may never have reached S2, or its reply
// was lost) and overload sheds (S2 asked us to back off) are; errors the
// peer actually computed — invalid token, unknown relation, bad request
// — would only fail identically again.
func retryableFailure(err error) bool {
	switch secerr.CodeOf(err) {
	case secerr.CodeTransport, secerr.CodeOverloaded:
		return true
	default:
		return false
	}
}

// RetryCaller re-issues failed protocol rounds when — and only when —
// that is safe: the method must be in the retryability table AND the
// failure must be link-level or an overload shed. It composes with
// ReconnectCaller underneath (which re-dials and re-runs Hello but never
// repeats a round): this layer holds the protocol knowledge of what may
// be repeated, that layer holds the link knowledge of how to get a
// connection back.
type RetryCaller struct {
	inner  transport.Caller
	policy backoff.Policy
}

// NewRetryCaller wraps inner with the retry policy (zero value = package
// defaults).
func NewRetryCaller(inner transport.Caller, policy backoff.Policy) *RetryCaller {
	return &RetryCaller{inner: inner, policy: policy}
}

// Call implements transport.Caller. resp is decoded at most once (on the
// single successful attempt), so partially failed attempts never leave a
// half-written response behind.
func (c *RetryCaller) Call(ctx context.Context, method string, req, resp any) error {
	if !MethodRetryable(method) {
		return c.inner.Call(ctx, method, req, resp)
	}
	return backoff.Retry(ctx, method, c.policy, retryableFailure, func(ctx context.Context) error {
		return c.inner.Call(ctx, method, req, resp)
	})
}

// Close closes the wrapped caller when it is closeable.
func (c *RetryCaller) Close() error {
	if cc, ok := c.inner.(interface{ Close() error }); ok {
		return cc.Close()
	}
	return nil
}
