package cloud

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/secerr"
)

// flakySeq is a Caller whose scripted errors are consumed one per Call
// (nil entries succeed).
type flakySeq struct {
	errs  []error
	calls int
}

func (f *flakySeq) Call(context.Context, string, any, any) error {
	f.calls++
	if len(f.errs) == 0 {
		return nil
	}
	err := f.errs[0]
	f.errs = f.errs[1:]
	return err
}

var retryTestPolicy = backoff.Policy{Initial: time.Millisecond, Max: time.Millisecond, Jitter: -1, MaxAttempts: 3}

// TestRetryCallerRetriesTransportFailures checks a retryable method's
// link failure is re-issued until it succeeds.
func TestRetryCallerRetriesTransportFailures(t *testing.T) {
	inner := &flakySeq{errs: []error{
		secerr.New(secerr.CodeTransport, "link lost"),
		secerr.New(secerr.CodeOverloaded, "shed"),
		nil,
	}}
	rc := NewRetryCaller(inner, retryTestPolicy)
	if err := rc.Call(context.Background(), MethodCompare, nil, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("calls = %d, want 3 (two retries)", inner.calls)
	}
}

// TestRetryCallerPeerErrorsSurfaceImmediately checks an error the peer
// computed (not a link failure) is never retried and keeps its code.
func TestRetryCallerPeerErrorsSurfaceImmediately(t *testing.T) {
	inner := &flakySeq{errs: []error{secerr.New(secerr.CodeInvalidToken, "bad token")}}
	rc := NewRetryCaller(inner, retryTestPolicy)
	err := rc.Call(context.Background(), MethodCompare, nil, nil)
	if !errors.Is(err, secerr.ErrInvalidToken) {
		t.Fatalf("Call: %v, want invalid token surfaced", err)
	}
	if inner.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of peer errors)", inner.calls)
	}
	var ex *backoff.ExhaustedError
	if !errors.As(err, &ex) || len(ex.Attempts) != 1 {
		t.Fatalf("err = %v, want attempt history attached", err)
	}
}

// TestRetryCallerUnknownMethodNotRetried checks a method outside the
// retryability table passes through without retries even on a link
// failure: its idempotency has not been argued.
func TestRetryCallerUnknownMethodNotRetried(t *testing.T) {
	inner := &flakySeq{errs: []error{secerr.New(secerr.CodeTransport, "link lost")}}
	rc := NewRetryCaller(inner, retryTestPolicy)
	err := rc.Call(context.Background(), "FutureMutation", nil, nil)
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("Call: %v, want the transport failure surfaced", err)
	}
	if inner.calls != 1 {
		t.Fatalf("calls = %d, want 1", inner.calls)
	}
}

// TestRetryCallerExhaustionCarriesHistory checks a persistently failing
// round exhausts the policy and reports every attempt.
func TestRetryCallerExhaustionCarriesHistory(t *testing.T) {
	inner := &flakySeq{errs: []error{
		secerr.New(secerr.CodeTransport, "one"),
		secerr.New(secerr.CodeTransport, "two"),
		secerr.New(secerr.CodeTransport, "three"),
	}}
	rc := NewRetryCaller(inner, retryTestPolicy)
	err := rc.Call(context.Background(), MethodEqBits, nil, nil)
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("Call: %v, want transport classification preserved", err)
	}
	var ex *backoff.ExhaustedError
	if !errors.As(err, &ex) || len(ex.Attempts) != 3 || ex.GaveUp != "attempts" {
		t.Fatalf("err = %v, want 3-attempt exhaustion history", err)
	}
}

// TestRetryCallerEveryWireMethodIsTabled checks the retryability table
// covers exactly the declared method set, so adding a method without
// deciding its retryability is caught here.
func TestRetryCallerEveryWireMethodIsTabled(t *testing.T) {
	for _, m := range []string{
		MethodHello, MethodEqBits, MethodRecover, MethodCompare,
		MethodCompareHidden, MethodMult, MethodDedup, MethodFilter, MethodBatch,
	} {
		if !MethodRetryable(m) {
			t.Errorf("method %s missing from the retryability table", m)
		}
	}
}

// TestMethodApplyFailClosed pins the mutation plane's wire-layer choice:
// Apply has side effects (it advances a hosted relation's epoch), so a
// failed round must NOT be blindly re-issued here — exactly-once comes
// from the delta's idempotency key one layer up. Both the table entry
// and the RetryCaller behaviour are pinned so neither can be "completed"
// mechanically into retry-everything.
func TestMethodApplyFailClosed(t *testing.T) {
	if MethodRetryable(MethodApply) {
		t.Fatal("MethodApply is marked retryable; it mutates hosted state")
	}
	inner := &flakySeq{errs: []error{secerr.New(secerr.CodeTransport, "link lost mid-apply")}}
	rc := NewRetryCaller(inner, retryTestPolicy)
	err := rc.Call(context.Background(), MethodApply, nil, nil)
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("Call: %v, want the transport failure surfaced unretried", err)
	}
	if inner.calls != 1 {
		t.Fatalf("calls = %d, want exactly 1 (no blind re-issue of Apply)", inner.calls)
	}
}
