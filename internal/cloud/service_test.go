package cloud

import (
	"context"
	"errors"
	"math/big"
	"net"
	"testing"

	"repro/internal/paillier"
	"repro/internal/secerr"
	"repro/internal/transport"
)

// TestServiceRegistry exercises registration lifecycle and typed errors.
func TestServiceRegistry(t *testing.T) {
	e := env(t)
	svc := NewService()
	defer svc.Close()
	if err := svc.Register("patients", e.keys, nil); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := svc.Register("patients", e.keys, nil); !errors.Is(err, secerr.ErrRelationExists) {
		t.Fatalf("duplicate Register: want ErrRelationExists, got %v", err)
	}
	if err := svc.Register("", e.keys, nil); err == nil {
		t.Fatal("empty id accepted")
	}
	if got := svc.Relations(); len(got) != 1 || got[0] != "patients" {
		t.Fatalf("Relations = %v", got)
	}
	svc.Deregister("patients")
	if got := svc.Relations(); len(got) != 0 {
		t.Fatalf("Relations after Deregister = %v", got)
	}
	svc.Deregister("missing") // no-op
}

// TestServiceRouting routes a real round through the registry and checks
// unknown relations are rejected with the typed code.
func TestServiceRouting(t *testing.T) {
	e := env(t)
	svc := NewService()
	defer svc.Close()
	if err := svc.Register("r1", e.keys, nil, WithParallelism(1)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	client, err := NewClient(transport.NewLocal(svc, nil), &e.keys.Paillier.PublicKey, nil,
		WithRelation("r1"), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Handshake(ctx); err != nil {
		t.Fatalf("Handshake: %v", err)
	}
	zero, err := e.keys.Paillier.PublicKey.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	bits, err := client.EqBits(ctx, []*paillier.Ciphertext{zero})
	if err != nil {
		t.Fatalf("EqBits via service: %v", err)
	}
	if len(bits) != 1 {
		t.Fatalf("EqBits returned %d bits", len(bits))
	}

	// A client naming an unregistered relation is rejected with the code.
	stranger, err := NewClient(transport.NewLocal(svc, nil), &e.keys.Paillier.PublicKey, nil,
		WithRelation("nope"), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	if err := stranger.Handshake(ctx); !errors.Is(err, secerr.ErrUnknownRelation) {
		t.Fatalf("Handshake for unknown relation: want ErrUnknownRelation, got %v", err)
	}
	if _, err := stranger.EqBits(ctx, []*paillier.Ciphertext{zero}); !errors.Is(err, secerr.ErrUnknownRelation) {
		t.Fatalf("EqBits for unknown relation: want ErrUnknownRelation, got %v", err)
	}
}

// TestHelloVersionNegotiation rejects incompatible wire versions on both
// Server and Service with the typed code.
func TestHelloVersionNegotiation(t *testing.T) {
	e := env(t)
	svc := NewService()
	defer svc.Close()
	if err := svc.Register("r", e.keys, nil, WithParallelism(1)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, responder := range map[string]transport.Responder{"server": e.server, "service": svc} {
		body, err := transport.Encode(&HelloRequest{Version: 99})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := responder.Serve(ctx, MethodHello, body); !errors.Is(err, secerr.ErrProtocolVersion) {
			t.Fatalf("%s: want ErrProtocolVersion for v99, got %v", name, err)
		}
		body, err = transport.Encode(&HelloRequest{Version: transport.ProtocolVersion})
		if err != nil {
			t.Fatal(err)
		}
		out, err := responder.Serve(ctx, MethodHello, body)
		if err != nil {
			t.Fatalf("%s: Hello v%d rejected: %v", name, transport.ProtocolVersion, err)
		}
		var resp HelloReply
		if err := transport.Decode(out, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Version != transport.ProtocolVersion {
			t.Fatalf("%s: reply version %d", name, resp.Version)
		}
	}
}

// TestTypedErrorsSurviveTCP runs the Service behind the real framed
// transport and checks the error codes cross the wire intact.
func TestTypedErrorsSurviveTCP(t *testing.T) {
	e := env(t)
	svc := NewService()
	defer svc.Close()
	if err := svc.Register("r", e.keys, nil, WithParallelism(1)); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelServe := context.WithCancel(context.Background())
	defer cancelServe()
	go func() { _ = transport.Serve(ctx, l, svc) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	caller := transport.NewNetCaller(conn, nil)
	defer caller.Close()

	// Unknown relation.
	var hr HelloReply
	err = caller.Call(ctx, MethodHello, &HelloRequest{Version: transport.ProtocolVersion, Relation: "ghost"}, &hr)
	if !errors.Is(err, secerr.ErrUnknownRelation) {
		t.Fatalf("want ErrUnknownRelation over TCP, got %v", err)
	}
	// Version mismatch (outside the accepted v1..v2 range).
	err = caller.Call(ctx, MethodHello, &HelloRequest{Version: transport.ProtocolVersion + 1}, &hr)
	if !errors.Is(err, secerr.ErrProtocolVersion) {
		t.Fatalf("want ErrProtocolVersion over TCP, got %v", err)
	}
	// Unknown method.
	err = caller.Call(ctx, "Bogus", &HelloRequest{}, nil)
	if !errors.Is(err, secerr.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod over TCP, got %v", err)
	}
	// Bad request (nil ciphertext) routed to a registered relation.
	var eq EqBitsReply
	err = caller.Call(ctx, MethodEqBits, &EqBitsRequest{Relation: "r", Cts: []*big.Int{nil}}, &eq)
	if !errors.Is(err, secerr.ErrBadRequest) {
		t.Fatalf("want ErrBadRequest over TCP, got %v", err)
	}
	// The connection stays usable after typed errors.
	if err := caller.Call(ctx, MethodHello, &HelloRequest{Version: transport.ProtocolVersion, Relation: "r"}, &hr); err != nil {
		t.Fatalf("connection unusable after errors: %v", err)
	}
}
