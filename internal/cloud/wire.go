// Package cloud implements the two-party runtime of Section 3.2: the
// crypto cloud S2 (Server per relation, Service as the multi-relation
// registry) holding the secret keys, and the data cloud S1's stub
// (Client) that drives the protocol rounds over a transport.
//
// Every exchange is a single request/response round. The Server sees only
// blinded and/or permuted data; each handler records what it learns into a
// leakage Ledger so tests can check the CQA leakage profile of Section 9.
//
// Every protocol request names the relation it operates on (RelationID),
// so one crypto cloud can serve many outsourced relations under distinct
// key material — the deployment shape the paper's Section 3.2 assumes.
// Peers negotiate the wire protocol version with a Hello round before
// issuing protocol methods.
package cloud

import "math/big"

// Method names for the transport layer.
const (
	MethodHello         = "Hello"
	MethodEqBits        = "EqBits"
	MethodRecover       = "Recover"
	MethodCompare       = "Compare"
	MethodCompareHidden = "CompareHidden"
	MethodMult          = "Mult"
	MethodDedup         = "Dedup"
	MethodFilter        = "Filter"
	MethodBatch         = "Batch"
	// MethodApply is the mutation plane's delta application. Unlike the
	// protocol rounds above it has SIDE EFFECTS — it advances a hosted
	// relation's epoch — so it is deliberately absent from S2's handler
	// set (the crypto cloud holds no relation state to mutate) and
	// explicitly non-retryable at the wire layer; exactly-once semantics
	// come from the idempotency key inside the delta, one layer up.
	MethodApply = "Apply"
)

// BatchItem is one coalesced protocol call inside a batch envelope: the
// method name plus its already-encoded request body (which carries its
// own relation ID, so items from different sessions and relations share
// one envelope).
type BatchItem struct {
	Method string
	Body   []byte
}

// BatchRequest is the wire v2 batch envelope: homomorphic-op requests
// from concurrent sessions coalesced into a single round trip, so S2's
// worker pool sees one large batch instead of per-session dribbles.
// Envelopes must not nest.
type BatchRequest struct {
	Items []BatchItem
}

// BatchResult is one item's outcome: either the encoded reply body or a
// structured (code, message) error pair — per item, so one hostile or
// malformed item cannot fail its co-batched neighbours.
type BatchResult struct {
	Body    []byte
	ErrCode string
	ErrMsg  string
}

// BatchReply carries one BatchResult per request item, in order.
type BatchReply struct {
	Items []BatchResult
}

// HelloRequest opens a connection: the caller announces the wire protocol
// version it speaks and, optionally, the relation it intends to query, so
// incompatible peers and unknown relations are rejected up front instead
// of gob-failing mid-round.
type HelloRequest struct {
	Version  int
	Relation string // optional: "" checks only the version
}

// HelloReply confirms the handshake: the responder's version and, when
// the request named a relation, that relation echoed back as confirmed
// (never the full registry — peers cannot enumerate other tenants). Nil
// from a single-relation Server, which accepts any relation ID.
type HelloReply struct {
	Version   int
	Relations []string
}

// EqBitsRequest carries randomized EHL differences Enc(b_i) (outputs of
// the ⊖ operator). S2 decrypts each and answers with E2(t_i), t_i = 1 iff
// b_i = 0 (the two objects were equal), per Algorithm 4 lines 11-13.
type EqBitsRequest struct {
	Relation string
	Cts      []*big.Int // Paillier ciphertexts
}

// EqBitsReply carries the hidden equality bits E2(t_i).
type EqBitsReply struct {
	Bits []*big.Int // Damgård-Jurik ciphertexts
}

// RecoverRequest carries blinded double encryptions E2(Enc(c+r)); S2
// strips the outer layer (Algorithm 5).
type RecoverRequest struct {
	Relation string
	Cts      []*big.Int // DJ ciphertexts
}

// RecoverReply carries the inner Paillier ciphertexts Enc(c+r).
type RecoverReply struct {
	Cts []*big.Int
}

// CompareRequest carries sign-blinded differences Enc(±r(2a-2b-1)); S2
// reports each sign. The ±1 flip chosen by S1 hides the true order from
// S2, and the blinded magnitude hides the values.
type CompareRequest struct {
	Relation string
	Cts      []*big.Int
}

// CompareReply reports, for each input, whether the decrypted value is
// negative under the signed interpretation.
type CompareReply struct {
	Neg []bool
}

// CompareHiddenRequest is CompareRequest for the oblivious variant: the
// sign comes back encrypted so not even S1 learns the order (used inside
// EncSort compare-exchange gates).
type CompareHiddenRequest struct {
	Relation string
	Cts      []*big.Int
}

// CompareHiddenReply carries E2(neg_i).
type CompareHiddenReply struct {
	Bits []*big.Int
}

// MultRequest carries additively blinded factor pairs Enc(a+r_a),
// Enc(b+r_b) for the standard two-party multiplication gadget (used by
// the secure kNN baseline of Section 11.3 and the batched best-bound
// computation).
type MultRequest struct {
	Relation string
	A        []*big.Int
	B        []*big.Int
}

// MultReply carries Enc((a+r_a)(b+r_b)); S1 strips the cross terms
// homomorphically.
type MultReply struct {
	Products []*big.Int
}

// DedupMode selects the behaviour of the oblivious deduplication round.
type DedupMode int

const (
	// DedupReplace is Algorithm 7 (SecDedup): duplicates are replaced in
	// place with random ids and sentinel scores, preserving list length.
	DedupReplace DedupMode = iota
	// DedupEliminate is Section 10.1 (SecDupElim): duplicates are removed,
	// leaking the uniqueness pattern (the kept count) to S1.
	DedupEliminate
	// DedupMerge eliminates duplicates while homomorphically summing the
	// designated score columns into the surviving row (used by the batched
	// engine to merge per-depth worst-score contributions).
	DedupMerge
)

func (m DedupMode) String() string {
	switch m {
	case DedupReplace:
		return "replace"
	case DedupEliminate:
		return "eliminate"
	case DedupMerge:
		return "merge"
	default:
		return "unknown"
	}
}

// WireRow is one blinded, permuted scored item E(I~) together with its
// blind vector encrypted under S1's ephemeral key (the H_i of Algorithm 7).
//
// Scores is a flat list of Paillier ciphertexts; by convention column 0 is
// the worst score W and column 1 the best score B, with any further
// columns carrying engine payload (e.g. per-list seen indicators).
// Blinds has one entry per EHL slot followed by one entry per score
// column, all encrypted under the ephemeral modulus.
type WireRow struct {
	EHL    []*big.Int
	Scores []*big.Int
	Blinds []*big.Int
}

// DedupRequest is one SecDedup/SecDupElim round. PairI/PairJ/PairCts list
// the equality ciphertexts Enc(b_ij) = EHL(o_i) ⊖ EHL(o_j) for the pair
// set S1 wants examined (the upper triangle of Algorithm 7's matrix B, or
// a bipartite block inside SecUpdate).
type DedupRequest struct {
	Relation   string
	Mode       DedupMode
	Rows       []WireRow
	PairI      []int
	PairJ      []int
	PairCts    []*big.Int
	EphemeralN *big.Int // S1's ephemeral Paillier modulus (for blind updates)
	// MergeCols lists the Scores columns to sum across a duplicate group in
	// DedupMerge mode; all other columns keep the representative's value.
	MergeCols []int
}

// DedupReply returns the re-blinded, re-permuted rows. In Replace mode the
// row count is unchanged; in Eliminate/Merge modes duplicates are gone.
type DedupReply struct {
	Rows []WireRow
}

// FilterRequest is one SecFilter round (Algorithm 12): rows whose
// multiplicatively blinded score decrypts to zero did not satisfy the join
// condition and are dropped.
//
// By convention Scores[0] is the multiplicatively blinded join score
// s' = s*r and Blinds[0] encrypts r^{-1} mod N under the ephemeral key;
// remaining Scores columns are additively blinded attributes with additive
// blind entries. EHL is unused (empty) for join tuples.
type FilterRequest struct {
	Relation   string
	Rows       []WireRow
	EphemeralN *big.Int
}

// FilterReply returns the surviving rows, re-blinded and re-permuted.
type FilterReply struct {
	Rows []WireRow
}

// relationRequest is implemented by every protocol request so the
// multi-relation Service can route a decoded request to the Server
// registered for its relation.
type relationRequest interface{ relationID() string }

func (r *EqBitsRequest) relationID() string        { return r.Relation }
func (r *RecoverRequest) relationID() string       { return r.Relation }
func (r *CompareRequest) relationID() string       { return r.Relation }
func (r *CompareHiddenRequest) relationID() string { return r.Relation }
func (r *MultRequest) relationID() string          { return r.Relation }
func (r *DedupRequest) relationID() string         { return r.Relation }
func (r *FilterRequest) relationID() string        { return r.Relation }
