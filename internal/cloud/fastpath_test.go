package cloud

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/transport"
)

// TestNonceKnobSurfaces pins which encryption surface each knob
// combination selects, and that every combination still produces
// ciphertexts the key holder can decrypt.
func TestNonceKnobSurfaces(t *testing.T) {
	e := env(t)
	keys := e.keys

	cases := []struct {
		name string
		opts []Option
		// wantPK is the expected dynamic type of the server's Paillier
		// surface at parallelism 1 (no pool wrapping).
		wantPK interface{}
	}{
		{"default-crt", []Option{WithParallelism(1)}, (*paillier.CRTEncryptor)(nil)},
		{"crt-off", []Option{WithParallelism(1), WithCRTNonce(false)}, (*paillier.PublicKey)(nil)},
		{"fast", []Option{WithParallelism(1), WithFastNonce(true)}, (*paillier.FastEncryptor)(nil)},
		{"fast-overrides-crt", []Option{WithParallelism(1), WithFastNonce(true), WithCRTNonce(true)}, (*paillier.FastEncryptor)(nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewServer(keys, nil, tc.opts...)
			if err != nil {
				t.Fatalf("NewServer: %v", err)
			}
			defer srv.Close()
			switch tc.wantPK.(type) {
			case *paillier.CRTEncryptor:
				if _, ok := srv.pkEnc.(*paillier.CRTEncryptor); !ok {
					t.Errorf("pkEnc is %T, want *paillier.CRTEncryptor", srv.pkEnc)
				}
				if _, ok := srv.djEnc.(*dj.CRTEncryptor); !ok {
					t.Errorf("djEnc is %T, want *dj.CRTEncryptor", srv.djEnc)
				}
			case *paillier.PublicKey:
				if _, ok := srv.pkEnc.(*paillier.PublicKey); !ok {
					t.Errorf("pkEnc is %T, want *paillier.PublicKey", srv.pkEnc)
				}
			case *paillier.FastEncryptor:
				if _, ok := srv.pkEnc.(*paillier.FastEncryptor); !ok {
					t.Errorf("pkEnc is %T, want *paillier.FastEncryptor", srv.pkEnc)
				}
				if _, ok := srv.djEnc.(*dj.FastEncryptor); !ok {
					t.Errorf("djEnc is %T, want *dj.FastEncryptor", srv.djEnc)
				}
			}
			ct, err := srv.pkEnc.Encrypt(big.NewInt(99))
			if err != nil {
				t.Fatalf("Encrypt: %v", err)
			}
			if m, err := keys.Paillier.Decrypt(ct); err != nil || m.Int64() != 99 {
				t.Fatalf("round trip -> %v (%v)", m, err)
			}
		})
	}
}

// TestClientFastNonceRound drives a real protocol exchange with the
// fast-nonce knob on at both parties; the recovered plaintext must be
// unaffected.
func TestClientFastNonceRound(t *testing.T) {
	e := env(t)
	srv, err := NewServer(e.keys, nil, WithFastNonce(true))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	client, err := NewClient(transport.NewLocal(srv, nil), &e.keys.Paillier.PublicKey, nil,
		WithFastNonce(true))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer client.Close()
	// The client's main surface must be the fast table; the ephemeral
	// surface (private key held) follows the fast knob too.
	if _, ok := client.Enc().(*paillier.FastEncryptor); !ok {
		t.Errorf("client Enc is %T, want *paillier.FastEncryptor", client.Enc())
	}
	if _, ok := client.EphEnc().(*paillier.FastEncryptor); !ok {
		t.Errorf("client EphEnc is %T, want *paillier.FastEncryptor", client.EphEnc())
	}
	// Round trip through S2's CompareSigns: blind a difference with a
	// fast-nonce rerandomization and check the sign survives.
	a, err := client.Enc().Encrypt(big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Enc().Encrypt(big.NewInt(9))
	if err != nil {
		t.Fatal(err)
	}
	diff, err := client.PK().Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := client.CompareSigns(context.Background(), []*paillier.Ciphertext{diff})
	if err != nil {
		t.Fatalf("CompareSigns: %v", err)
	}
	if len(neg) != 1 || !neg[0] {
		t.Fatalf("5 - 9 should compare negative, got %v", neg)
	}
}
