package cloud

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/prf"
	"repro/internal/transport"
	"repro/internal/zmath"
)

// KeyMaterial is the secret key material the data owner provisions to the
// crypto cloud S2 (Algorithm 2 line 10): the Paillier key pair and the
// derived degree-2 Damgård-Jurik key.
type KeyMaterial struct {
	Paillier *paillier.PrivateKey
	DJ       *dj.PrivateKey
}

// NewKeyMaterial generates fresh key material with the given Paillier
// modulus size.
func NewKeyMaterial(bits int) (*KeyMaterial, error) {
	sk, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	return KeyMaterialFromPaillier(sk)
}

// KeyMaterialFromPaillier derives the DJ key from an existing Paillier key.
func KeyMaterialFromPaillier(sk *paillier.PrivateKey) (*KeyMaterial, error) {
	djSK, err := dj.NewPrivateKey(sk, 2)
	if err != nil {
		return nil, err
	}
	return &KeyMaterial{Paillier: sk, DJ: djSK}, nil
}

// Server is the crypto cloud S2. It implements transport.Responder; each
// Serve call is one protocol round. The server is stateless across rounds
// apart from the leakage ledger.
type Server struct {
	keys   *KeyMaterial
	ledger *Ledger
}

// NewServer builds S2 from its key material. ledger may be nil.
func NewServer(keys *KeyMaterial, ledger *Ledger) (*Server, error) {
	if keys == nil || keys.Paillier == nil || keys.DJ == nil {
		return nil, errors.New("cloud: incomplete key material")
	}
	return &Server{keys: keys, ledger: ledger}, nil
}

// Ledger returns the server's leakage ledger (may be nil).
func (s *Server) Ledger() *Ledger { return s.ledger }

// Serve implements transport.Responder.
func (s *Server) Serve(method string, body []byte) ([]byte, error) {
	switch method {
	case MethodEqBits:
		var req EqBitsRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, fmt.Errorf("cloud: decoding %s: %w", method, err)
		}
		resp, err := s.eqBits(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	case MethodRecover:
		var req RecoverRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, fmt.Errorf("cloud: decoding %s: %w", method, err)
		}
		resp, err := s.recover(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	case MethodCompare:
		var req CompareRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, fmt.Errorf("cloud: decoding %s: %w", method, err)
		}
		resp, err := s.compare(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	case MethodCompareHidden:
		var req CompareHiddenRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, fmt.Errorf("cloud: decoding %s: %w", method, err)
		}
		resp, err := s.compareHidden(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	case MethodMult:
		var req MultRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, fmt.Errorf("cloud: decoding %s: %w", method, err)
		}
		resp, err := s.mult(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	case MethodDedup:
		var req DedupRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, fmt.Errorf("cloud: decoding %s: %w", method, err)
		}
		resp, err := s.dedup(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	case MethodFilter:
		var req FilterRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, fmt.Errorf("cloud: decoding %s: %w", method, err)
		}
		resp, err := s.filter(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	default:
		return nil, fmt.Errorf("cloud: unknown method %q", method)
	}
}

// eqBits decrypts each randomized EHL difference and answers E2(t),
// t = 1 iff the difference is zero (Algorithm 4, server side).
func (s *Server) eqBits(req *EqBitsRequest) (*EqBitsReply, error) {
	out := make([]*big.Int, len(req.Cts))
	equal := 0
	for i, c := range req.Cts {
		m, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: c})
		if err != nil {
			return nil, fmt.Errorf("cloud: EqBits[%d]: %w", i, err)
		}
		t := zmath.Zero
		if m.Sign() == 0 {
			t = zmath.One
			equal++
		}
		ct, err := s.keys.DJ.Encrypt(t)
		if err != nil {
			return nil, err
		}
		out[i] = ct.C
	}
	s.ledger.Record("S2", MethodEqBits, "equality pattern: %d equal of %d pairs", equal, len(req.Cts))
	return &EqBitsReply{Bits: out}, nil
}

// recover strips the outer DJ layer from each blinded double encryption
// (Algorithm 5, server side).
func (s *Server) recover(req *RecoverRequest) (*RecoverReply, error) {
	out := make([]*big.Int, len(req.Cts))
	for i, c := range req.Cts {
		inner, err := s.keys.DJ.DecryptInner(&dj.Ciphertext{C: c})
		if err != nil {
			return nil, fmt.Errorf("cloud: Recover[%d]: %w", i, err)
		}
		out[i] = inner.C
	}
	s.ledger.Record("S2", MethodRecover, "recovered %d blinded ciphertexts", len(req.Cts))
	return &RecoverReply{Cts: out}, nil
}

// compare decrypts each sign-blinded difference and reports its sign.
func (s *Server) compare(req *CompareRequest) (*CompareReply, error) {
	out := make([]bool, len(req.Cts))
	for i, c := range req.Cts {
		m, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: c})
		if err != nil {
			return nil, fmt.Errorf("cloud: Compare[%d]: %w", i, err)
		}
		out[i] = zmath.IsNegative(m, s.keys.Paillier.N)
	}
	s.ledger.Record("S2", MethodCompare, "compared %d blinded differences", len(req.Cts))
	return &CompareReply{Neg: out}, nil
}

// compareHidden is compare with the result bit re-encrypted under DJ so
// S1 learns nothing either.
func (s *Server) compareHidden(req *CompareHiddenRequest) (*CompareHiddenReply, error) {
	out := make([]*big.Int, len(req.Cts))
	for i, c := range req.Cts {
		m, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: c})
		if err != nil {
			return nil, fmt.Errorf("cloud: CompareHidden[%d]: %w", i, err)
		}
		t := zmath.Zero
		if zmath.IsNegative(m, s.keys.Paillier.N) {
			t = zmath.One
		}
		ct, err := s.keys.DJ.Encrypt(t)
		if err != nil {
			return nil, err
		}
		out[i] = ct.C
	}
	s.ledger.Record("S2", MethodCompareHidden, "compared %d blinded differences (hidden)", len(req.Cts))
	return &CompareHiddenReply{Bits: out}, nil
}

// mult decrypts blinded factor pairs and returns the encrypted products;
// S1 strips the cross terms.
func (s *Server) mult(req *MultRequest) (*MultReply, error) {
	if len(req.A) != len(req.B) {
		return nil, fmt.Errorf("cloud: Mult length mismatch %d vs %d", len(req.A), len(req.B))
	}
	pk := &s.keys.Paillier.PublicKey
	out := make([]*big.Int, len(req.A))
	for i := range req.A {
		a, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: req.A[i]})
		if err != nil {
			return nil, fmt.Errorf("cloud: Mult a[%d]: %w", i, err)
		}
		b, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: req.B[i]})
		if err != nil {
			return nil, fmt.Errorf("cloud: Mult b[%d]: %w", i, err)
		}
		prod := new(big.Int).Mul(a, b)
		prod.Mod(prod, pk.N)
		ct, err := pk.Encrypt(prod)
		if err != nil {
			return nil, err
		}
		out[i] = ct.C
	}
	s.ledger.Record("S2", MethodMult, "multiplied %d blinded pairs", len(req.A))
	return &MultReply{Products: out}, nil
}

// unionFind is a tiny disjoint-set for grouping equal rows.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra < rb {
			u.parent[rb] = ra
		} else {
			u.parent[ra] = rb
		}
	}
}

func (s *Server) validateDedup(req *DedupRequest) error {
	n := len(req.Rows)
	if len(req.PairI) != len(req.PairJ) || len(req.PairI) != len(req.PairCts) {
		return errors.New("cloud: Dedup pair arrays have mismatched lengths")
	}
	for k := range req.PairI {
		if req.PairI[k] < 0 || req.PairI[k] >= n || req.PairJ[k] < 0 || req.PairJ[k] >= n {
			return fmt.Errorf("cloud: Dedup pair %d out of range", k)
		}
		if req.PairCts[k] == nil {
			return fmt.Errorf("cloud: Dedup pair %d has nil ciphertext", k)
		}
	}
	for i, r := range req.Rows {
		if len(r.Blinds) != len(r.EHL)+len(r.Scores) {
			return fmt.Errorf("cloud: Dedup row %d blind vector length %d != %d slots",
				i, len(r.Blinds), len(r.EHL)+len(r.Scores))
		}
	}
	if req.Mode == DedupMerge {
		cols := 0
		if n > 0 {
			cols = len(req.Rows[0].Scores)
		}
		for _, c := range req.MergeCols {
			if c < 0 || c >= cols {
				return fmt.Errorf("cloud: Dedup merge column %d out of range", c)
			}
		}
	}
	return nil
}

// dedup is the S2 side of SecDedup (Algorithm 7 lines 16-31) and its
// SecDupElim / merge variants. Rows arrive blinded and permuted by S1;
// the equality pattern of the permuted pair set is the only thing S2
// learns (the leakage EP^d of Section 9).
func (s *Server) dedup(req *DedupRequest) (*DedupReply, error) {
	if err := s.validateDedup(req); err != nil {
		return nil, err
	}
	pk := &s.keys.Paillier.PublicKey
	ephPK, err := paillier.NewPublicKeyFromN(req.EphemeralN)
	if err != nil {
		return nil, fmt.Errorf("cloud: Dedup ephemeral key: %w", err)
	}
	n := len(req.Rows)
	uf := newUnionFind(n)
	equalPairs := 0
	for k := range req.PairI {
		m, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: req.PairCts[k]})
		if err != nil {
			return nil, fmt.Errorf("cloud: Dedup pair %d: %w", k, err)
		}
		if m.Sign() == 0 {
			uf.union(req.PairI[k], req.PairJ[k])
			equalPairs++
		}
	}
	// Group rows; the representative is the smallest index in the
	// (already random) permuted order, so the choice carries no signal.
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	s.ledger.Record("S2", MethodDedup, "mode=%s rows=%d equal-pairs=%d groups=%d",
		req.Mode, n, equalPairs, len(groups))

	sentinel := new(big.Int).Sub(pk.N, zmath.One) // Z = N-1 ≡ -1

	// Assemble the surviving rows (pre re-blinding).
	var rows []WireRow
	for i := 0; i < n; i++ {
		root := uf.find(i)
		members := groups[root]
		isRep := members[0] == i
		switch req.Mode {
		case DedupReplace:
			if isRep {
				rows = append(rows, req.Rows[i])
				continue
			}
			// Replace with a random id and sentinel scores; the recorded
			// blinds are fresh so S1's unblinding yields uniformly random
			// digests and the sentinel value Z.
			repl, err := s.sentinelRow(pk, ephPK, len(req.Rows[i].EHL), len(req.Rows[i].Scores), sentinel)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *repl)
		case DedupEliminate:
			if isRep {
				rows = append(rows, req.Rows[i])
			}
		case DedupMerge:
			if !isRep {
				continue
			}
			merged := req.Rows[i]
			if len(members) > 1 {
				mergedCopy := WireRow{
					EHL:    append([]*big.Int(nil), merged.EHL...),
					Scores: append([]*big.Int(nil), merged.Scores...),
					Blinds: append([]*big.Int(nil), merged.Blinds...),
				}
				for _, col := range req.MergeCols {
					for _, other := range members[1:] {
						// Homomorphic sum of blinded scores...
						sum := new(big.Int).Mul(mergedCopy.Scores[col], req.Rows[other].Scores[col])
						sum.Mod(sum, pk.N2)
						mergedCopy.Scores[col] = sum
						// ...and of their blinds under the ephemeral key.
						bIdx := len(merged.EHL) + col
						bsum := new(big.Int).Mul(mergedCopy.Blinds[bIdx], req.Rows[other].Blinds[bIdx])
						bsum.Mod(bsum, ephPK.N2)
						mergedCopy.Blinds[bIdx] = bsum
					}
				}
				merged = mergedCopy
			}
			rows = append(rows, merged)
		default:
			return nil, fmt.Errorf("cloud: unknown dedup mode %d", req.Mode)
		}
	}

	// Re-blind every surviving row (Algorithm 7 lines 26-30) so S1 cannot
	// tell which rows were touched, then re-permute (line 31).
	for i := range rows {
		if err := s.reblindRow(pk, ephPK, &rows[i]); err != nil {
			return nil, err
		}
	}
	perm, err := prf.RandomPerm(len(rows))
	if err != nil {
		return nil, err
	}
	out := make([]WireRow, len(rows))
	for i := range rows {
		out[perm[i]] = rows[i]
	}
	return &DedupReply{Rows: out}, nil
}

// sentinelRow builds the replacement row for a duplicate in Replace mode:
// random id digests and sentinel scores Z, with fresh recorded blinds.
func (s *Server) sentinelRow(pk, ephPK *paillier.PublicKey, ehlWidth, scoreCols int, sentinel *big.Int) (*WireRow, error) {
	row := WireRow{
		EHL:    make([]*big.Int, ehlWidth),
		Scores: make([]*big.Int, scoreCols),
		Blinds: make([]*big.Int, ehlWidth+scoreCols),
	}
	for j := 0; j < ehlWidth; j++ {
		u, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		alpha, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		// Store Enc(u + alpha); after S1 subtracts alpha the digest is the
		// uniformly random u.
		ct, err := pk.Encrypt(new(big.Int).Add(u, alpha))
		if err != nil {
			return nil, err
		}
		row.EHL[j] = ct.C
		bct, err := ephPK.Encrypt(alpha)
		if err != nil {
			return nil, err
		}
		row.Blinds[j] = bct.C
	}
	for j := 0; j < scoreCols; j++ {
		beta, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		ct, err := pk.Encrypt(new(big.Int).Add(sentinel, beta))
		if err != nil {
			return nil, err
		}
		row.Scores[j] = ct.C
		bct, err := ephPK.Encrypt(beta)
		if err != nil {
			return nil, err
		}
		row.Blinds[ehlWidth+j] = bct.C
	}
	return &row, nil
}

// reblindRow adds fresh additive blinds to every slot of the row and
// accumulates them into the recorded blind vector, re-randomizing all
// ciphertexts in the process.
func (s *Server) reblindRow(pk, ephPK *paillier.PublicKey, row *WireRow) error {
	apply := func(slot **big.Int, blind **big.Int) error {
		delta, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return err
		}
		dct, err := pk.Encrypt(delta)
		if err != nil {
			return err
		}
		v := new(big.Int).Mul(*slot, dct.C)
		v.Mod(v, pk.N2)
		*slot = v
		bct, err := ephPK.Encrypt(delta)
		if err != nil {
			return err
		}
		b := new(big.Int).Mul(*blind, bct.C)
		b.Mod(b, ephPK.N2)
		*blind = b
		return nil
	}
	for j := range row.EHL {
		if err := apply(&row.EHL[j], &row.Blinds[j]); err != nil {
			return err
		}
	}
	for j := range row.Scores {
		if err := apply(&row.Scores[j], &row.Blinds[len(row.EHL)+j]); err != nil {
			return err
		}
	}
	return nil
}

// filter is the S2 side of SecFilter (Algorithm 12 lines 11-23): drop the
// rows whose multiplicatively blinded join score decrypts to zero, then
// re-blind and re-permute the survivors.
func (s *Server) filter(req *FilterRequest) (*FilterReply, error) {
	pk := &s.keys.Paillier.PublicKey
	ephPK, err := paillier.NewPublicKeyFromN(req.EphemeralN)
	if err != nil {
		return nil, fmt.Errorf("cloud: Filter ephemeral key: %w", err)
	}
	var rows []WireRow
	for i, r := range req.Rows {
		if len(r.Scores) == 0 || len(r.Blinds) != len(r.Scores) {
			return nil, fmt.Errorf("cloud: Filter row %d malformed", i)
		}
		m, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: r.Scores[0]})
		if err != nil {
			return nil, fmt.Errorf("cloud: Filter row %d score: %w", i, err)
		}
		if m.Sign() == 0 {
			continue // did not satisfy the join condition
		}
		rows = append(rows, r)
	}
	s.ledger.Record("S2", MethodFilter, "joined %d of %d candidate tuples", len(rows), len(req.Rows))

	for i := range rows {
		row := &rows[i]
		// Multiplicative re-blind of the join score: s'' = s' * gamma,
		// with the recorded inverse updated to r^{-1} * gamma^{-1}. The
		// ephemeral modulus is at least twice the main modulus size, so
		// the integer product never wraps and S1 can reduce mod N.
		gamma, err := zmath.RandUnit(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		gammaInv, err := zmath.ModInverse(gamma, pk.N)
		if err != nil {
			return nil, err
		}
		v := new(big.Int).Exp(row.Scores[0], gamma, pk.N2)
		// Re-randomize so the transformation is not a deterministic
		// function of the input ciphertext.
		z, err := pk.EncryptZero()
		if err != nil {
			return nil, err
		}
		v.Mul(v, z.C)
		v.Mod(v, pk.N2)
		row.Scores[0] = v
		b := new(big.Int).Exp(row.Blinds[0], gammaInv, ephPK.N2)
		row.Blinds[0] = b

		// Additive re-blind of the payload columns.
		for j := 1; j < len(row.Scores); j++ {
			delta, err := zmath.RandInt(rand.Reader, pk.N)
			if err != nil {
				return nil, err
			}
			dct, err := pk.Encrypt(delta)
			if err != nil {
				return nil, err
			}
			sv := new(big.Int).Mul(row.Scores[j], dct.C)
			sv.Mod(sv, pk.N2)
			row.Scores[j] = sv
			bct, err := ephPK.Encrypt(delta)
			if err != nil {
				return nil, err
			}
			bv := new(big.Int).Mul(row.Blinds[j], bct.C)
			bv.Mod(bv, ephPK.N2)
			row.Blinds[j] = bv
		}
	}
	perm, err := prf.RandomPerm(len(rows))
	if err != nil {
		return nil, err
	}
	out := make([]WireRow, len(rows))
	for i := range rows {
		out[perm[i]] = rows[i]
	}
	return &FilterReply{Rows: out}, nil
}
