package cloud

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/prf"
	"repro/internal/secerr"
	"repro/internal/transport"
	"repro/internal/zmath"
)

// KeyMaterial is the secret key material the data owner provisions to the
// crypto cloud S2 (Algorithm 2 line 10): the Paillier key pair and the
// derived degree-2 Damgård-Jurik key.
type KeyMaterial struct {
	Paillier *paillier.PrivateKey
	DJ       *dj.PrivateKey
}

// NewKeyMaterial generates fresh key material with the given Paillier
// modulus size.
func NewKeyMaterial(bits int) (*KeyMaterial, error) {
	sk, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	return KeyMaterialFromPaillier(sk)
}

// KeyMaterialFromPaillier derives the DJ key from an existing Paillier key.
func KeyMaterialFromPaillier(sk *paillier.PrivateKey) (*KeyMaterial, error) {
	djSK, err := dj.NewPrivateKey(sk, 2)
	if err != nil {
		return nil, err
	}
	return &KeyMaterial{Paillier: sk, DJ: djSK}, nil
}

// Server is the crypto cloud S2. It implements transport.Responder; each
// Serve call is one protocol round. The server is stateless across rounds
// apart from the leakage ledger and the nonce-precompute pools.
//
// Every per-ciphertext loop in the handlers runs on the shared parallel
// substrate, bounded by the WithParallelism option; encryptions draw from
// background nonce pools unless pooling is disabled (parallelism 1, or
// WithoutNoncePools).
type Server struct {
	keys   *KeyMaterial
	ledger *Ledger
	par    int
	pkEnc  paillier.Encryptor
	djEnc  dj.Encryptor
	close  []func()
}

// NewServer builds S2 from its key material. ledger may be nil. Call Close
// when done to release the background nonce pools.
func NewServer(keys *KeyMaterial, ledger *Ledger, opts ...Option) (*Server, error) {
	if keys == nil || keys.Paillier == nil || keys.DJ == nil {
		return nil, errors.New("cloud: incomplete key material")
	}
	cfg := buildConfig(opts)
	s := &Server{keys: keys, ledger: ledger, par: cfg.parallelism}
	// S2 holds both private keys, so its surfaces default to the CRT
	// nonce fast path (fast-nonce table when opted in).
	var closer func()
	var err error
	s.pkEnc, closer, err = cfg.newPaillierEnc(&keys.Paillier.PublicKey, keys.Paillier)
	if err != nil {
		return nil, err
	}
	if closer != nil {
		s.close = append(s.close, closer)
	}
	s.djEnc, closer, err = cfg.newDJEnc(&keys.DJ.PublicKey, keys.DJ)
	if err != nil {
		s.Close()
		return nil, err
	}
	if closer != nil {
		s.close = append(s.close, closer)
	}
	return s, nil
}

// Close stops the server's background nonce pools. The server stays usable
// afterwards (encryptions compute nonces inline).
func (s *Server) Close() {
	for _, c := range s.close {
		c()
	}
	s.close = nil
}

// Ledger returns the server's leakage ledger (may be nil).
func (s *Server) Ledger() *Ledger { return s.ledger }

// Parallelism returns the server's parallelism knob (0 = all cores).
func (s *Server) Parallelism() int { return s.par }

// decryptRaw decrypts a batch of raw ciphertext values in parallel via
// the paillier batch helper. Nil or out-of-group values — which a hostile
// peer can inject freely, since the body is attacker-controlled gob —
// surface as bad-request errors, never panics.
func (s *Server) decryptRaw(cts []*big.Int, label string) ([]*big.Int, error) {
	wrapped := make([]*paillier.Ciphertext, len(cts))
	for i, c := range cts {
		if c == nil {
			return nil, secerr.New(secerr.CodeBadRequest, "cloud: %s: nil ciphertext at %d", label, i)
		}
		wrapped[i] = &paillier.Ciphertext{C: c}
	}
	out, err := s.keys.Paillier.DecryptBatch(wrapped, s.par)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: %s", label)
	}
	return out, nil
}

// decodeRequest decodes the typed request for a protocol method and
// reports the relation it names. Hello is handled by the dispatch layers
// directly and is not a relation-scoped request.
func decodeRequest(method string, body []byte) (relationRequest, error) {
	var req relationRequest
	switch method {
	case MethodEqBits:
		req = new(EqBitsRequest)
	case MethodRecover:
		req = new(RecoverRequest)
	case MethodCompare:
		req = new(CompareRequest)
	case MethodCompareHidden:
		req = new(CompareHiddenRequest)
	case MethodMult:
		req = new(MultRequest)
	case MethodDedup:
		req = new(DedupRequest)
	case MethodFilter:
		req = new(FilterRequest)
	default:
		return nil, secerr.New(secerr.CodeUnknownMethod, "cloud: unknown method %q", method)
	}
	if err := transport.Decode(body, req); err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: decoding %s", method)
	}
	return req, nil
}

// Serve implements transport.Responder for a single-relation deployment:
// the relation ID carried by requests is accepted verbatim. Multi-relation
// deployments wrap Servers in a Service, which routes on the relation ID.
func (s *Server) Serve(ctx context.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case MethodHello:
		var req HelloRequest
		if err := transport.Decode(body, &req); err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: decoding %s", method)
		}
		resp, err := s.hello(&req)
		if err != nil {
			return nil, err
		}
		return transport.Encode(resp)
	case MethodBatch:
		return serveBatch(ctx, body, s.par, s.Serve)
	}
	req, err := decodeRequest(method, body)
	if err != nil {
		return nil, err
	}
	return s.handle(ctx, req)
}

// hello answers the version-negotiation round. A single-relation Server
// serves whatever relation the peer names, so only the version is checked.
func (s *Server) hello(req *HelloRequest) (*HelloReply, error) {
	if err := acceptVersion(req.Version); err != nil {
		return nil, err
	}
	return &HelloReply{Version: negotiateVersion(req.Version)}, nil
}

// acceptVersion checks a peer's announced wire version against the range
// this build speaks.
func acceptVersion(v int) error {
	if v < transport.MinProtocolVersion || v > transport.ProtocolVersion {
		return secerr.New(secerr.CodeProtocolVersion,
			"cloud: peer speaks wire protocol v%d, this side v%d..v%d",
			v, transport.MinProtocolVersion, transport.ProtocolVersion)
	}
	return nil
}

// negotiateVersion picks the version both sides speak: the lower of the
// peer's announcement and this build's maximum.
func negotiateVersion(peer int) int {
	if peer < transport.ProtocolVersion {
		return peer
	}
	return transport.ProtocolVersion
}

// serveBatch unwraps a batch envelope and dispatches every item through
// the given single-call dispatcher, fanning items out over the worker
// budget. Item failures are reported per item as structured (code,
// message) pairs — one malformed item never fails its neighbours — and
// envelopes must not nest.
func serveBatch(ctx context.Context, body []byte, par int, dispatch func(context.Context, string, []byte) ([]byte, error)) ([]byte, error) {
	var req BatchRequest
	if err := transport.Decode(body, &req); err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: decoding %s", MethodBatch)
	}
	reply := BatchReply{Items: make([]BatchResult, len(req.Items))}
	err := parallel.ForEachCtx(ctx, par, len(req.Items), func(i int) error {
		item := req.Items[i]
		if item.Method == MethodBatch {
			reply.Items[i] = BatchResult{ErrCode: string(secerr.CodeBadRequest), ErrMsg: "cloud: nested batch envelope"}
			return nil
		}
		out, herr := dispatch(ctx, item.Method, item.Body)
		if herr != nil {
			reply.Items[i] = BatchResult{ErrCode: string(secerr.CodeOf(herr)), ErrMsg: herr.Error()}
			return nil
		}
		reply.Items[i] = BatchResult{Body: out}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return transport.Encode(&reply)
}

// handle dispatches a decoded request to its handler and encodes the
// reply.
func (s *Server) handle(ctx context.Context, req relationRequest) ([]byte, error) {
	var (
		resp any
		err  error
	)
	switch r := req.(type) {
	case *EqBitsRequest:
		resp, err = s.eqBits(ctx, r)
	case *RecoverRequest:
		resp, err = s.recover(r)
	case *CompareRequest:
		resp, err = s.compare(r)
	case *CompareHiddenRequest:
		resp, err = s.compareHidden(ctx, r)
	case *MultRequest:
		resp, err = s.mult(ctx, r)
	case *DedupRequest:
		resp, err = s.dedup(ctx, r)
	case *FilterRequest:
		resp, err = s.filter(ctx, r)
	default:
		err = secerr.New(secerr.CodeUnknownMethod, "cloud: unroutable request %T", req)
	}
	if err != nil {
		return nil, err
	}
	return transport.Encode(resp)
}

// eqBits decrypts each randomized EHL difference and answers E2(t),
// t = 1 iff the difference is zero (Algorithm 4, server side). The
// decryptions and the reply encryptions each fan out over the worker pool.
func (s *Server) eqBits(ctx context.Context, req *EqBitsRequest) (*EqBitsReply, error) {
	ms, err := s.decryptRaw(req.Cts, "EqBits")
	if err != nil {
		return nil, err
	}
	ts := make([]*big.Int, len(ms))
	equal := 0
	for i, m := range ms {
		if m.Sign() == 0 {
			ts[i] = zmath.One
			equal++
		} else {
			ts[i] = zmath.Zero
		}
	}
	out := make([]*big.Int, len(ts))
	err = parallel.ForEachCtx(ctx, s.par, len(ts), func(i int) error {
		ct, err := s.djEnc.Encrypt(ts[i])
		if err != nil {
			return err
		}
		out[i] = ct.C
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.ledger.Record("S2", MethodEqBits, "equality pattern: %d equal of %d pairs", equal, len(req.Cts))
	return &EqBitsReply{Bits: out}, nil
}

// recover strips the outer DJ layer from each blinded double encryption
// (Algorithm 5, server side).
func (s *Server) recover(req *RecoverRequest) (*RecoverReply, error) {
	wrapped := make([]*dj.Ciphertext, len(req.Cts))
	for i, c := range req.Cts {
		if c == nil {
			return nil, secerr.New(secerr.CodeBadRequest, "cloud: Recover: nil ciphertext at %d", i)
		}
		wrapped[i] = &dj.Ciphertext{C: c}
	}
	inner, err := s.keys.DJ.DecryptInnerBatch(wrapped, s.par)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: Recover")
	}
	out := make([]*big.Int, len(inner))
	for i, ct := range inner {
		out[i] = ct.C
	}
	s.ledger.Record("S2", MethodRecover, "recovered %d blinded ciphertexts", len(req.Cts))
	return &RecoverReply{Cts: out}, nil
}

// compare decrypts each sign-blinded difference and reports its sign.
func (s *Server) compare(req *CompareRequest) (*CompareReply, error) {
	ms, err := s.decryptRaw(req.Cts, "Compare")
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(ms))
	for i, m := range ms {
		out[i] = zmath.IsNegative(m, s.keys.Paillier.N)
	}
	s.ledger.Record("S2", MethodCompare, "compared %d blinded differences", len(req.Cts))
	return &CompareReply{Neg: out}, nil
}

// compareHidden is compare with the result bit re-encrypted under DJ so
// S1 learns nothing either.
func (s *Server) compareHidden(ctx context.Context, req *CompareHiddenRequest) (*CompareHiddenReply, error) {
	ms, err := s.decryptRaw(req.Cts, "CompareHidden")
	if err != nil {
		return nil, err
	}
	out := make([]*big.Int, len(ms))
	err = parallel.ForEachCtx(ctx, s.par, len(ms), func(i int) error {
		t := zmath.Zero
		if zmath.IsNegative(ms[i], s.keys.Paillier.N) {
			t = zmath.One
		}
		ct, err := s.djEnc.Encrypt(t)
		if err != nil {
			return err
		}
		out[i] = ct.C
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.ledger.Record("S2", MethodCompareHidden, "compared %d blinded differences (hidden)", len(req.Cts))
	return &CompareHiddenReply{Bits: out}, nil
}

// mult decrypts blinded factor pairs and returns the encrypted products;
// S1 strips the cross terms.
func (s *Server) mult(ctx context.Context, req *MultRequest) (*MultReply, error) {
	if len(req.A) != len(req.B) {
		return nil, secerr.New(secerr.CodeBadRequest, "cloud: Mult length mismatch %d vs %d", len(req.A), len(req.B))
	}
	for i := range req.A {
		if req.A[i] == nil || req.B[i] == nil {
			return nil, secerr.New(secerr.CodeBadRequest, "cloud: Mult: nil ciphertext at %d", i)
		}
	}
	pk := &s.keys.Paillier.PublicKey
	out := make([]*big.Int, len(req.A))
	err := parallel.ForEachCtx(ctx, s.par, len(req.A), func(i int) error {
		a, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: req.A[i]})
		if err != nil {
			return fmt.Errorf("cloud: Mult a[%d]: %w", i, err)
		}
		b, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: req.B[i]})
		if err != nil {
			return fmt.Errorf("cloud: Mult b[%d]: %w", i, err)
		}
		var prod *big.Int
		if eng := pk.EngineN(); eng != nil {
			prod = eng.MulMod(a, b)
		} else {
			prod = new(big.Int).Mul(a, b)
			prod.Mod(prod, pk.N)
		}
		ct, err := s.pkEnc.Encrypt(prod)
		if err != nil {
			return err
		}
		out[i] = ct.C
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.ledger.Record("S2", MethodMult, "multiplied %d blinded pairs", len(req.A))
	return &MultReply{Products: out}, nil
}

// unionFind is a tiny disjoint-set for grouping equal rows.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra < rb {
			u.parent[rb] = ra
		} else {
			u.parent[ra] = rb
		}
	}
}

func (s *Server) validateDedup(req *DedupRequest) error {
	n := len(req.Rows)
	if len(req.PairI) != len(req.PairJ) || len(req.PairI) != len(req.PairCts) {
		return errors.New("cloud: Dedup pair arrays have mismatched lengths")
	}
	for k := range req.PairI {
		if req.PairI[k] < 0 || req.PairI[k] >= n || req.PairJ[k] < 0 || req.PairJ[k] >= n {
			return fmt.Errorf("cloud: Dedup pair %d out of range", k)
		}
		if req.PairCts[k] == nil {
			return fmt.Errorf("cloud: Dedup pair %d has nil ciphertext", k)
		}
	}
	for i, r := range req.Rows {
		if len(r.Blinds) != len(r.EHL)+len(r.Scores) {
			return fmt.Errorf("cloud: Dedup row %d blind vector length %d != %d slots",
				i, len(r.Blinds), len(r.EHL)+len(r.Scores))
		}
		if err := validateRow(&r, i); err != nil {
			return err
		}
		if n > 0 && (len(r.EHL) != len(req.Rows[0].EHL) || len(r.Scores) != len(req.Rows[0].Scores)) {
			return fmt.Errorf("cloud: Dedup row %d shape differs from row 0", i)
		}
	}
	if req.Mode == DedupMerge {
		cols := 0
		if n > 0 {
			cols = len(req.Rows[0].Scores)
		}
		for _, c := range req.MergeCols {
			if c < 0 || c >= cols {
				return fmt.Errorf("cloud: Dedup merge column %d out of range", c)
			}
		}
	}
	return nil
}

// dedup is the S2 side of SecDedup (Algorithm 7 lines 16-31) and its
// SecDupElim / merge variants. Rows arrive blinded and permuted by S1;
// the equality pattern of the permuted pair set is the only thing S2
// learns (the leakage EP^d of Section 9). The pair decryptions, sentinel
// construction, and re-blinding all fan out over the worker pool.
func (s *Server) dedup(ctx context.Context, req *DedupRequest) (*DedupReply, error) {
	if err := s.validateDedup(req); err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: Dedup")
	}
	pk := &s.keys.Paillier.PublicKey
	ephPK, err := paillier.NewPublicKeyFromN(req.EphemeralN)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: Dedup ephemeral key")
	}
	n := len(req.Rows)
	pairMs, err := s.decryptRaw(req.PairCts, "Dedup pair")
	if err != nil {
		return nil, err
	}
	uf := newUnionFind(n)
	equalPairs := 0
	for k, m := range pairMs {
		if m.Sign() == 0 {
			uf.union(req.PairI[k], req.PairJ[k])
			equalPairs++
		}
	}
	// Group rows; the representative is the smallest index in the
	// (already random) permuted order, so the choice carries no signal.
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	s.ledger.Record("S2", MethodDedup, "mode=%s rows=%d equal-pairs=%d groups=%d",
		req.Mode, n, equalPairs, len(groups))

	sentinel := new(big.Int).Sub(pk.N, zmath.One) // Z = N-1 ≡ -1

	// Replace mode rebuilds every duplicate as a sentinel row; those rows
	// are independent, so construct them ahead of assembly in parallel.
	var sentinels []*WireRow
	if req.Mode == DedupReplace {
		sentinels = make([]*WireRow, n)
		var dups []int
		for i := 0; i < n; i++ {
			if groups[uf.find(i)][0] != i {
				dups = append(dups, i)
			}
		}
		err := parallel.ForEachCtx(ctx, s.par, len(dups), func(k int) error {
			i := dups[k]
			repl, err := s.sentinelRow(pk, ephPK, len(req.Rows[i].EHL), len(req.Rows[i].Scores), sentinel)
			if err != nil {
				return err
			}
			sentinels[i] = repl
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Assemble the surviving rows (pre re-blinding).
	var rows []WireRow
	for i := 0; i < n; i++ {
		root := uf.find(i)
		members := groups[root]
		isRep := members[0] == i
		switch req.Mode {
		case DedupReplace:
			if isRep {
				rows = append(rows, req.Rows[i])
				continue
			}
			// Replace with a random id and sentinel scores; the recorded
			// blinds are fresh so S1's unblinding yields uniformly random
			// digests and the sentinel value Z.
			rows = append(rows, *sentinels[i])
		case DedupEliminate:
			if isRep {
				rows = append(rows, req.Rows[i])
			}
		case DedupMerge:
			if !isRep {
				continue
			}
			merged := req.Rows[i]
			if len(members) > 1 {
				mergedCopy := WireRow{
					EHL:    append([]*big.Int(nil), merged.EHL...),
					Scores: append([]*big.Int(nil), merged.Scores...),
					Blinds: append([]*big.Int(nil), merged.Blinds...),
				}
				for _, col := range req.MergeCols {
					for _, other := range members[1:] {
						// Homomorphic sum of blinded scores...
						mergedCopy.Scores[col] = mulModN2(pk, mergedCopy.Scores[col], req.Rows[other].Scores[col])
						// ...and of their blinds under the ephemeral key.
						bIdx := len(merged.EHL) + col
						mergedCopy.Blinds[bIdx] = mulModN2(ephPK, mergedCopy.Blinds[bIdx], req.Rows[other].Blinds[bIdx])
					}
				}
				merged = mergedCopy
			}
			rows = append(rows, merged)
		default:
			return nil, fmt.Errorf("cloud: unknown dedup mode %d", req.Mode)
		}
	}

	// Re-blind every surviving row (Algorithm 7 lines 26-30) so S1 cannot
	// tell which rows were touched, then re-permute (line 31). Rows are
	// independent, so the re-blinding fans out row-per-worker.
	err = parallel.ForEachCtx(ctx, s.par, len(rows), func(i int) error {
		return s.reblindRow(pk, ephPK, &rows[i])
	})
	if err != nil {
		return nil, err
	}
	perm, err := prf.RandomPerm(len(rows))
	if err != nil {
		return nil, err
	}
	out := make([]WireRow, len(rows))
	for i := range rows {
		out[perm[i]] = rows[i]
	}
	return &DedupReply{Rows: out}, nil
}

// mulModN2 multiplies two ciphertext group elements mod pk.N^2 through the
// key's Montgomery engine when it carries one, falling back to a plain
// big.Int multiply-and-reduce. Both paths return the canonical residue.
func mulModN2(pk *paillier.PublicKey, a, b *big.Int) *big.Int {
	if eng := pk.EngineN2(); eng != nil {
		return eng.MulMod(a, b)
	}
	v := new(big.Int).Mul(a, b)
	return v.Mod(v, pk.N2)
}

// sentinelRow builds the replacement row for a duplicate in Replace mode:
// random id digests and sentinel scores Z, with fresh recorded blinds.
func (s *Server) sentinelRow(pk, ephPK *paillier.PublicKey, ehlWidth, scoreCols int, sentinel *big.Int) (*WireRow, error) {
	row := WireRow{
		EHL:    make([]*big.Int, ehlWidth),
		Scores: make([]*big.Int, scoreCols),
		Blinds: make([]*big.Int, ehlWidth+scoreCols),
	}
	for j := 0; j < ehlWidth; j++ {
		u, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		alpha, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		// Store Enc(u + alpha); after S1 subtracts alpha the digest is the
		// uniformly random u.
		ct, err := s.pkEnc.Encrypt(new(big.Int).Add(u, alpha))
		if err != nil {
			return nil, err
		}
		row.EHL[j] = ct.C
		bct, err := ephPK.Encrypt(alpha)
		if err != nil {
			return nil, err
		}
		row.Blinds[j] = bct.C
	}
	for j := 0; j < scoreCols; j++ {
		beta, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		ct, err := s.pkEnc.Encrypt(new(big.Int).Add(sentinel, beta))
		if err != nil {
			return nil, err
		}
		row.Scores[j] = ct.C
		bct, err := ephPK.Encrypt(beta)
		if err != nil {
			return nil, err
		}
		row.Blinds[ehlWidth+j] = bct.C
	}
	return &row, nil
}

// reblindRow adds fresh additive blinds to every slot of the row and
// accumulates them into the recorded blind vector, re-randomizing all
// ciphertexts in the process.
func (s *Server) reblindRow(pk, ephPK *paillier.PublicKey, row *WireRow) error {
	apply := func(slot **big.Int, blind **big.Int) error {
		delta, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return err
		}
		dct, err := s.pkEnc.Encrypt(delta)
		if err != nil {
			return err
		}
		*slot = mulModN2(pk, *slot, dct.C)
		bct, err := ephPK.Encrypt(delta)
		if err != nil {
			return err
		}
		*blind = mulModN2(ephPK, *blind, bct.C)
		return nil
	}
	for j := range row.EHL {
		if err := apply(&row.EHL[j], &row.Blinds[j]); err != nil {
			return err
		}
	}
	for j := range row.Scores {
		if err := apply(&row.Scores[j], &row.Blinds[len(row.EHL)+j]); err != nil {
			return err
		}
	}
	return nil
}

// filter is the S2 side of SecFilter (Algorithm 12 lines 11-23): drop the
// rows whose multiplicatively blinded join score decrypts to zero, then
// re-blind and re-permute the survivors. Score decryptions and per-row
// re-blinding fan out over the worker pool.
func (s *Server) filter(ctx context.Context, req *FilterRequest) (*FilterReply, error) {
	pk := &s.keys.Paillier.PublicKey
	ephPK, err := paillier.NewPublicKeyFromN(req.EphemeralN)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: Filter ephemeral key")
	}
	for i := range req.Rows {
		r := &req.Rows[i]
		if len(r.Scores) == 0 || len(r.Blinds) != len(r.Scores) || len(r.EHL) != 0 {
			return nil, secerr.New(secerr.CodeBadRequest, "cloud: Filter row %d malformed", i)
		}
		if err := validateRow(r, i); err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cloud: Filter")
		}
	}
	scores := make([]*big.Int, len(req.Rows))
	err = parallel.ForEachCtx(ctx, s.par, len(req.Rows), func(i int) error {
		r := req.Rows[i]
		m, err := s.keys.Paillier.Decrypt(&paillier.Ciphertext{C: r.Scores[0]})
		if err != nil {
			return secerr.Wrap(secerr.CodeBadRequest, err, "cloud: Filter row %d score", i)
		}
		scores[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []WireRow
	for i, r := range req.Rows {
		if scores[i].Sign() == 0 {
			continue // did not satisfy the join condition
		}
		rows = append(rows, r)
	}
	s.ledger.Record("S2", MethodFilter, "joined %d of %d candidate tuples", len(rows), len(req.Rows))

	err = parallel.ForEachCtx(ctx, s.par, len(rows), func(i int) error {
		row := &rows[i]
		// Multiplicative re-blind of the join score: s'' = s' * gamma,
		// with the recorded inverse updated to r^{-1} * gamma^{-1}. The
		// ephemeral modulus is at least twice the main modulus size, so
		// the integer product never wraps and S1 can reduce mod N.
		gamma, err := zmath.RandUnit(rand.Reader, pk.N)
		if err != nil {
			return err
		}
		gammaInv, err := zmath.ModInverse(gamma, pk.N)
		if err != nil {
			return err
		}
		v := new(big.Int).Exp(row.Scores[0], gamma, pk.N2)
		// Re-randomize so the transformation is not a deterministic
		// function of the input ciphertext.
		z, err := s.pkEnc.EncryptZero()
		if err != nil {
			return err
		}
		row.Scores[0] = mulModN2(pk, v, z.C)
		b := new(big.Int).Exp(row.Blinds[0], gammaInv, ephPK.N2)
		row.Blinds[0] = b

		// Additive re-blind of the payload columns.
		for j := 1; j < len(row.Scores); j++ {
			delta, err := zmath.RandInt(rand.Reader, pk.N)
			if err != nil {
				return err
			}
			dct, err := s.pkEnc.Encrypt(delta)
			if err != nil {
				return err
			}
			row.Scores[j] = mulModN2(pk, row.Scores[j], dct.C)
			bct, err := ephPK.Encrypt(delta)
			if err != nil {
				return err
			}
			row.Blinds[j] = mulModN2(ephPK, row.Blinds[j], bct.C)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	perm, err := prf.RandomPerm(len(rows))
	if err != nil {
		return nil, err
	}
	out := make([]WireRow, len(rows))
	for i := range rows {
		out[perm[i]] = rows[i]
	}
	return &FilterReply{Rows: out}, nil
}

// validateRow rejects rows carrying nil slots anywhere a hostile peer
// could hide one; the re-blinding paths do raw big.Int arithmetic on
// these values and must never see a nil.
func validateRow(r *WireRow, i int) error {
	for j, v := range r.EHL {
		if v == nil {
			return fmt.Errorf("cloud: row %d EHL slot %d is nil", i, j)
		}
	}
	for j, v := range r.Scores {
		if v == nil {
			return fmt.Errorf("cloud: row %d score column %d is nil", i, j)
		}
	}
	for j, v := range r.Blinds {
		if v == nil {
			return fmt.Errorf("cloud: row %d blind %d is nil", i, j)
		}
	}
	return nil
}
