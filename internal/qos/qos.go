// Package qos is the serving plane's per-tenant admission layer:
// token-bucket rate limiting with deadline-aware shedding, layered on
// top of the data cloud's session-limit gate. A request that is over
// its tenant's budget — or whose deadline cannot be met — is SHED with
// a typed error instead of queued: under sustained overload the server
// stays at its configured concurrency and callers get an immediate,
// retryable signal (the client plane's backoff honors it) rather than
// an unbounded queue of doomed work.
package qos

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/secerr"
	"repro/internal/telemetry"
)

// DefaultTenant is the bucket unidentified callers land in: in-process
// callers, wire v1/v2 peers (whose Hello predates the tenant field),
// and v3 clients that never set WithTenant.
const DefaultTenant = "default"

// Rate is one tenant's admission budget: a sustained request rate plus
// a burst allowance. Burst <= 0 defaults to max(1, ceil(PerSecond)).
type Rate struct {
	PerSecond float64
	Burst     int
}

// burst resolves the effective bucket capacity.
func (r Rate) burst() float64 {
	if r.Burst > 0 {
		return float64(r.Burst)
	}
	return math.Max(1, math.Ceil(r.PerSecond))
}

// bucket is one tenant's token bucket.
type bucket struct {
	rate   Rate
	tokens float64
	last   time.Time
}

// ewmaWeight is the exponential moving average factor for observed
// service latency: small enough to smooth over stragglers, large
// enough to track a shifting workload within tens of requests.
const ewmaWeight = 0.1

// Limiter admits requests per tenant. Tenants without a configured
// Rate are admitted unconditionally (the session-limit gate below this
// layer still bounds them); configured tenants draw from their bucket
// and shed typed ErrOverloaded when it is empty. All methods are safe
// for concurrent use.
type Limiter struct {
	mu      sync.Mutex
	limits  map[string]Rate
	buckets map[string]*bucket
	ewma    time.Duration // observed service latency, 0 until warmed
	now     func() time.Time
}

// NewLimiter builds a limiter over the given per-tenant budgets (which
// may be nil or empty: every request is then admitted and only
// counted). The map key "" configures the default tenant.
func NewLimiter(limits map[string]Rate) *Limiter {
	l := &Limiter{
		limits:  make(map[string]Rate, len(limits)),
		buckets: map[string]*bucket{},
		now:     time.Now,
	}
	for tenant, r := range limits {
		l.limits[Canonical(tenant)] = r
	}
	return l
}

// Canonical maps the empty tenant name to DefaultTenant.
func Canonical(tenant string) string {
	if tenant == "" {
		return DefaultTenant
	}
	return tenant
}

// Admit decides one request: nil admits it, a typed error sheds it.
// Sheds never queue — the decision is immediate.
//
// Deadline-aware scheduling: a context whose deadline has passed, or
// whose remaining budget is shorter than the observed (EWMA) service
// latency, sheds with context.DeadlineExceeded — executing it would
// only burn a concurrency slot on an answer nobody can receive. An
// over-budget tenant sheds with the typed overloaded error
// (sectopk.ErrOverloaded across the facade and the wire).
func (l *Limiter) Admit(ctx context.Context, tenant string) error {
	tenant = Canonical(tenant)
	if dl, ok := ctx.Deadline(); ok {
		l.mu.Lock()
		ewma := l.ewma
		now := l.now()
		l.mu.Unlock()
		remaining := dl.Sub(now)
		if remaining <= 0 {
			l.count(tenant, "shed", "deadline")
			return fmt.Errorf("qos: tenant %q deadline already passed: %w", tenant, context.DeadlineExceeded)
		}
		if ewma > 0 && remaining < ewma {
			l.count(tenant, "shed", "deadline")
			return fmt.Errorf("qos: tenant %q deadline %s away, under the %s observed service time: %w",
				tenant, remaining.Round(time.Millisecond), ewma.Round(time.Millisecond), context.DeadlineExceeded)
		}
	}
	l.mu.Lock()
	rate, limited := l.limits[tenant]
	if !limited {
		l.mu.Unlock()
		l.count(tenant, "admit", "")
		return nil
	}
	b := l.buckets[tenant]
	now := l.now()
	if b == nil {
		b = &bucket{rate: rate, tokens: rate.burst(), last: now}
		l.buckets[tenant] = b
	}
	b.tokens = math.Min(b.rate.burst(), b.tokens+now.Sub(b.last).Seconds()*b.rate.PerSecond)
	b.last = now
	if b.tokens < 1 {
		l.mu.Unlock()
		l.count(tenant, "shed", "rate")
		return secerr.New(secerr.CodeOverloaded,
			"qos: tenant %q over its %.3g/s admission budget (burst %g), request shed",
			tenant, rate.PerSecond, rate.burst())
	}
	b.tokens--
	l.mu.Unlock()
	l.count(tenant, "admit", "")
	return nil
}

// Observe feeds one completed request's service latency into the EWMA
// the deadline-aware shed consults.
func (l *Limiter) Observe(d time.Duration) {
	if d <= 0 {
		return
	}
	l.mu.Lock()
	if l.ewma == 0 {
		l.ewma = d
	} else {
		l.ewma = time.Duration((1-ewmaWeight)*float64(l.ewma) + ewmaWeight*float64(d))
	}
	l.mu.Unlock()
}

// count records the admission decision in the default registry.
func (l *Limiter) count(tenant, verdict, reason string) {
	r := telemetry.Default()
	if verdict == "admit" {
		r.Counter("sectopk_tenant_admitted_total", "tenant", tenant).Inc()
		return
	}
	r.Counter("sectopk_tenant_shed_total", "tenant", tenant, "reason", reason).Inc()
}
