package qos

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/secerr"
)

// fakeClock drives a limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestLimiter(limits map[string]Rate) (*Limiter, *fakeClock) {
	l := NewLimiter(limits)
	c := &fakeClock{t: time.Unix(1000, 0)}
	l.now = c.now
	return l, c
}

func TestBucketAdmitsBurstThenSheds(t *testing.T) {
	l, _ := newTestLimiter(map[string]Rate{"gold": {PerSecond: 10, Burst: 3}})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.Admit(ctx, "gold"); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	err := l.Admit(ctx, "gold")
	if err == nil {
		t.Fatal("over-burst request admitted")
	}
	if secerr.CodeOf(err) != secerr.CodeOverloaded {
		t.Fatalf("shed error code = %q, want overloaded", secerr.CodeOf(err))
	}
}

func TestBucketRefills(t *testing.T) {
	l, clk := newTestLimiter(map[string]Rate{"gold": {PerSecond: 2, Burst: 1}})
	ctx := context.Background()
	if err := l.Admit(ctx, "gold"); err != nil {
		t.Fatal(err)
	}
	if err := l.Admit(ctx, "gold"); err == nil {
		t.Fatal("empty bucket admitted")
	}
	clk.advance(600 * time.Millisecond) // 1.2 tokens at 2/s
	if err := l.Admit(ctx, "gold"); err != nil {
		t.Fatalf("refilled bucket shed: %v", err)
	}
	// Refill is capped at burst: a long idle stretch buys one slot, not
	// an unbounded backlog of them.
	clk.advance(time.Hour)
	if err := l.Admit(ctx, "gold"); err != nil {
		t.Fatal(err)
	}
	if err := l.Admit(ctx, "gold"); err == nil {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

func TestUnconfiguredTenantUnlimited(t *testing.T) {
	l, _ := newTestLimiter(map[string]Rate{"free": {PerSecond: 1, Burst: 1}})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := l.Admit(ctx, "gold"); err != nil {
			t.Fatalf("unconfigured tenant shed: %v", err)
		}
	}
}

func TestEmptyTenantIsDefault(t *testing.T) {
	l, _ := newTestLimiter(map[string]Rate{"": {PerSecond: 1, Burst: 1}})
	ctx := context.Background()
	if err := l.Admit(ctx, ""); err != nil {
		t.Fatal(err)
	}
	// "" and "default" share one bucket.
	if err := l.Admit(ctx, DefaultTenant); err == nil {
		t.Fatal("default tenant did not share the \"\" bucket")
	}
}

func TestPastDeadlineSheds(t *testing.T) {
	l, clk := newTestLimiter(nil)
	ctx, cancel := context.WithDeadline(context.Background(), clk.now().Add(-time.Second))
	defer cancel()
	err := l.Admit(ctx, "gold")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("past-deadline admit = %v, want DeadlineExceeded", err)
	}
}

func TestTooShortDeadlineSheds(t *testing.T) {
	l, clk := newTestLimiter(nil)
	for i := 0; i < 20; i++ {
		l.Observe(100 * time.Millisecond)
	}
	ctx, cancel := context.WithDeadline(context.Background(), clk.now().Add(10*time.Millisecond))
	defer cancel()
	err := l.Admit(ctx, "gold")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("doomed-deadline admit = %v, want DeadlineExceeded", err)
	}
	// A deadline comfortably above the EWMA admits.
	ctx2, cancel2 := context.WithDeadline(context.Background(), clk.now().Add(time.Second))
	defer cancel2()
	if err := l.Admit(ctx2, "gold"); err != nil {
		t.Fatalf("healthy-deadline admit = %v", err)
	}
}

func TestObserveWarmsEWMA(t *testing.T) {
	l, _ := newTestLimiter(nil)
	if l.ewma != 0 {
		t.Fatal("fresh limiter has a warmed EWMA")
	}
	l.Observe(100 * time.Millisecond)
	if l.ewma != 100*time.Millisecond {
		t.Fatalf("first observation ewma = %v, want 100ms (seeded, not averaged from zero)", l.ewma)
	}
	for i := 0; i < 100; i++ {
		l.Observe(200 * time.Millisecond)
	}
	if l.ewma < 150*time.Millisecond || l.ewma > 200*time.Millisecond {
		t.Fatalf("ewma = %v, want converged toward 200ms", l.ewma)
	}
}
