package dj

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/paillier"
	"repro/internal/zmath"
)

func testKeys(t testing.TB) (*PrivateKey, *PublicKey) {
	t.Helper()
	sk, _ := testKeysFull(t)
	return sk, &sk.PublicKey
}

func testKeysFull(t testing.TB) (*PrivateKey, *paillier.PrivateKey) {
	t.Helper()
	psk, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	sk, err := NewPrivateKey(psk, 2)
	if err != nil {
		t.Fatalf("NewPrivateKey: %v", err)
	}
	return sk, psk
}

func TestEncryptWithNonceBatchEquivalence(t *testing.T) {
	sk, pk := testKeys(t)
	const n = 32
	ms := make([]*big.Int, n)
	rs := make([]*big.Int, n)
	for i := range ms {
		ms[i] = big.NewInt(int64(i*i + 1))
		r, err := zmath.RandUnit(rand.Reader, pk.N)
		if err != nil {
			t.Fatal(err)
		}
		rs[i] = r
	}
	serial, err := pk.EncryptWithNonceBatch(ms, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel8, err := pk.EncryptWithNonceBatch(ms, rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		want, err := pk.EncryptWithNonce(ms[i], rs[i])
		if err != nil {
			t.Fatal(err)
		}
		if serial[i].C.Cmp(want.C) != 0 || parallel8[i].C.Cmp(want.C) != 0 {
			t.Fatalf("batch diverges from EncryptWithNonce at %d", i)
		}
	}
	_ = sk
}

func TestBatchRoundTrip(t *testing.T) {
	sk, pk := testKeys(t)
	const n = 24
	ms := make([]*big.Int, n)
	for i := range ms {
		ms[i] = new(big.Int).Lsh(big.NewInt(int64(i+1)), 70) // exercise N < m < N^2
	}
	for _, par := range []int{1, 8} {
		cts, err := EncryptBatch(pk, ms, par)
		if err != nil {
			t.Fatal(err)
		}
		cts, err = RerandomizeBatch(pk, cts, par)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.DecryptBatch(cts, par)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ms {
			if got[i].Cmp(ms[i]) != 0 {
				t.Fatalf("par=%d: round trip broke at %d", par, i)
			}
		}
	}
}

func TestDecryptInnerBatch(t *testing.T) {
	sk, psk := testKeysFull(t)
	pk := &sk.PublicKey
	const n = 8
	outer := make([]*Ciphertext, n)
	for i := range outer {
		ict, err := psk.PublicKey.EncryptInt64(int64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		ct, err := pk.EncryptInner(ict)
		if err != nil {
			t.Fatal(err)
		}
		outer[i] = ct
	}
	recovered, err := sk.DecryptInnerBatch(outer, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range recovered {
		m, err := psk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if m.Int64() != int64(100+i) {
			t.Fatalf("inner batch slot %d: got %v", i, m)
		}
	}
}

func TestNoncePool(t *testing.T) {
	sk, pk := testKeys(t)
	pool := NewNoncePool(pk, 2, 8)
	defer pool.Close()
	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		m := big.NewInt(int64(i + 3))
		ct, err := pool.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("pooled encryption of %v decrypts to %v", m, got)
		}
		if seen[ct.C.String()] {
			t.Fatal("pooled encryptions share randomness")
		}
		seen[ct.C.String()] = true
	}
}
