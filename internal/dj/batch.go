package dj

import (
	"fmt"
	"math/big"

	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/zmath"
)

// Encryptor is the DJ encryption surface shared by PublicKey and
// NoncePool, mirroring paillier.Encryptor.
type Encryptor interface {
	Encrypt(m *big.Int) (*Ciphertext, error)
	Rerandomize(a *Ciphertext) (*Ciphertext, error)
	Key() *PublicKey
}

// Key returns the public key itself, making PublicKey an Encryptor.
func (pk *PublicKey) Key() *PublicKey { return pk }

// encryptWithRN assembles E(m) from a precomputed nonce power
// rn = r^{N^s} mod N^{s+1}.
func (pk *PublicKey) encryptWithRN(m, rn *big.Int) (*Ciphertext, error) {
	mm, err := pk.validateMessage(m)
	if err != nil {
		return nil, err
	}
	gm := pk.expOnePlusN(mm)
	return &Ciphertext{C: pk.mulNS1(gm, rn)}, nil
}

// EncryptBatch encrypts every message with fresh randomness over at most
// parallel.Workers(par) goroutines (0 = all cores, 1 = serial).
func EncryptBatch(enc Encryptor, ms []*big.Int, par int) ([]*Ciphertext, error) {
	return parallel.MapErr(par, ms, func(_ int, m *big.Int) (*Ciphertext, error) {
		return enc.Encrypt(m)
	})
}

// EncryptWithNonceBatch encrypts ms[i] under rs[i]; deterministic given
// the nonces.
func (pk *PublicKey) EncryptWithNonceBatch(ms, rs []*big.Int, par int) ([]*Ciphertext, error) {
	if len(ms) != len(rs) {
		return nil, fmt.Errorf("dj: %d messages for %d nonces", len(ms), len(rs))
	}
	return parallel.MapErr(par, ms, func(i int, m *big.Int) (*Ciphertext, error) {
		return pk.EncryptWithNonce(m, rs[i])
	})
}

// RerandomizeBatch re-randomizes every ciphertext.
func RerandomizeBatch(enc Encryptor, cts []*Ciphertext, par int) ([]*Ciphertext, error) {
	return parallel.MapErr(par, cts, func(_ int, c *Ciphertext) (*Ciphertext, error) {
		return enc.Rerandomize(c)
	})
}

// DecryptBatch decrypts every ciphertext. Errors carry the failing index.
func (sk *PrivateKey) DecryptBatch(cts []*Ciphertext, par int) ([]*big.Int, error) {
	return parallel.MapErr(par, cts, func(i int, c *Ciphertext) (*big.Int, error) {
		m, err := sk.Decrypt(c)
		if err != nil {
			return nil, fmt.Errorf("dj: DecryptBatch[%d]: %w", i, err)
		}
		return m, nil
	})
}

// DecryptInnerBatch strips the outer DJ layer from every ciphertext.
// Errors carry the failing index.
func (sk *PrivateKey) DecryptInnerBatch(cts []*Ciphertext, par int) ([]*paillier.Ciphertext, error) {
	return parallel.MapErr(par, cts, func(i int, c *Ciphertext) (*paillier.Ciphertext, error) {
		inner, err := sk.DecryptInner(c)
		if err != nil {
			return nil, fmt.Errorf("dj: DecryptInnerBatch[%d]: %w", i, err)
		}
		return inner, nil
	})
}

// NoncePool precomputes DJ nonce powers r^{N^s} mod N^{s+1} on background
// goroutines; drained pools fall back inline, so pooling never changes
// results. The powers come from any NonceSource (spec path, CRT, or
// fast-nonce table). See parallel.Pool for the shared machinery.
type NoncePool struct {
	src  NonceSource
	pool *parallel.Pool[*big.Int]
}

// NewNoncePool starts workers filler goroutines maintaining up to capacity
// precomputed nonce powers drawn from src. Close must be called to
// release them.
func NewNoncePool(src NonceSource, workers, capacity int) *NoncePool {
	return &NoncePool{src: src, pool: parallel.NewPool(workers, capacity, src.NoncePower)}
}

// Close stops the background fillers; the pool stays usable (inline path).
func (np *NoncePool) Close() { np.pool.Close() }

func (np *NoncePool) get() (*big.Int, error) {
	if rn, ok := np.pool.Get(); ok {
		return rn, nil
	}
	return np.src.NoncePower()
}

// Key returns the underlying public key.
func (np *NoncePool) Key() *PublicKey { return np.src.Key() }

// NoncePower returns a pooled nonce power (inline when drained), making
// the pool itself a NonceSource.
func (np *NoncePool) NoncePower() (*big.Int, error) { return np.get() }

// Encrypt encrypts m using a pooled nonce power.
func (np *NoncePool) Encrypt(m *big.Int) (*Ciphertext, error) {
	rn, err := np.get()
	if err != nil {
		return nil, err
	}
	return np.Key().encryptWithRN(m, rn)
}

// Rerandomize multiplies by a pooled fresh encryption of zero.
func (np *NoncePool) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	z, err := np.Encrypt(zmath.Zero)
	if err != nil {
		return nil, err
	}
	return np.Key().Add(a, z)
}
