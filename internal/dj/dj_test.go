package dj

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/paillier"
	"repro/internal/zmath"
)

var (
	keyOnce  sync.Once
	basePail *paillier.PrivateKey
	testSK2  *PrivateKey // s = 2
)

func keys(t testing.TB) (*paillier.PrivateKey, *PrivateKey) {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		basePail, err = paillier.GenerateKey(rand.Reader, 512)
		if err != nil {
			t.Fatalf("paillier.GenerateKey: %v", err)
		}
		testSK2, err = NewPrivateKey(basePail, 2)
		if err != nil {
			t.Fatalf("dj.NewPrivateKey: %v", err)
		}
	})
	return basePail, testSK2
}

func TestDegreeValidation(t *testing.T) {
	pail, _ := keys(t)
	if _, err := NewPublicKey(&pail.PublicKey, 0); err != ErrDegree {
		t.Fatalf("expected ErrDegree, got %v", err)
	}
	if _, err := NewPrivateKey(pail, -1); err != ErrDegree {
		t.Fatalf("expected ErrDegree, got %v", err)
	}
}

func TestRoundTripSmall(t *testing.T) {
	_, sk := keys(t)
	for _, m := range []int64{0, 1, 2, 42, 1 << 40} {
		ct, err := sk.EncryptInt64(m)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
}

func TestRoundTripLargerThanN(t *testing.T) {
	// Messages beyond N (but below N^2) are the whole point of s = 2:
	// the plaintext space must hold first-layer Paillier ciphertexts.
	_, sk := keys(t)
	m := new(big.Int).Mul(sk.N, big.NewInt(12345))
	m.Add(m, big.NewInt(678))
	ct, err := sk.Encrypt(m)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("round trip mismatch: got %v want %v", got, m)
	}
}

func TestRoundTripDegree1And3(t *testing.T) {
	pail, _ := keys(t)
	for _, s := range []int{1, 3} {
		sk, err := NewPrivateKey(pail, s)
		if err != nil {
			t.Fatalf("NewPrivateKey(s=%d): %v", s, err)
		}
		m, err := zmath.RandInt(rand.Reader, sk.NS)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := sk.Encrypt(m)
		if err != nil {
			t.Fatalf("Encrypt(s=%d): %v", s, err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt(s=%d): %v", s, err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("s=%d round trip mismatch", s)
		}
	}
}

func TestHomomorphicAdd(t *testing.T) {
	_, sk := keys(t)
	f := func(x, y uint32) bool {
		a, _ := sk.EncryptInt64(int64(x))
		b, _ := sk.EncryptInt64(int64(y))
		sum, err := sk.Add(a, b)
		if err != nil {
			return false
		}
		m, err := sk.Decrypt(sum)
		if err != nil {
			return false
		}
		return m.Int64() == int64(x)+int64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestExpConst(t *testing.T) {
	_, sk := keys(t)
	a, _ := sk.EncryptInt64(7)
	b, err := sk.ExpConst(a, big.NewInt(6))
	if err != nil {
		t.Fatalf("ExpConst: %v", err)
	}
	if m, _ := sk.Decrypt(b); m.Int64() != 42 {
		t.Fatalf("7*6 = %v", m)
	}
}

func TestLayeredHomomorphism(t *testing.T) {
	// The identity the whole paper rests on:
	// E2(Enc(m1))^{Enc(m2)} = E2(Enc(m1+m2)).
	pail, sk := keys(t)
	enc1, _ := pail.EncryptInt64(30)
	enc2, _ := pail.EncryptInt64(12)
	outer, err := sk.EncryptInner(enc1)
	if err != nil {
		t.Fatalf("EncryptInner: %v", err)
	}
	combined, err := sk.ExpCipher(outer, enc2)
	if err != nil {
		t.Fatalf("ExpCipher: %v", err)
	}
	inner, err := sk.DecryptInner(combined)
	if err != nil {
		t.Fatalf("DecryptInner: %v", err)
	}
	m, err := pail.Decrypt(inner)
	if err != nil {
		t.Fatalf("inner Decrypt: %v", err)
	}
	if m.Int64() != 42 {
		t.Fatalf("layered sum = %v, want 42", m)
	}
}

func TestSelectionIdentity(t *testing.T) {
	// E2(t)^{Enc(x)} * E2(1-t)^{Enc(y)} = E2(t*Enc(x) + (1-t)*Enc(y)),
	// i.e. the inner plaintext selects Enc(x) when t=1 and Enc(y) when t=0.
	// This is the select gadget used by SecWorst/SecBest/EncSort.
	pail, sk := keys(t)
	x, _ := pail.EncryptInt64(111)
	y, _ := pail.EncryptInt64(222)
	for _, tBit := range []int64{0, 1} {
		et, _ := sk.EncryptInt64(tBit)
		notT, err := sk.OneMinus(et)
		if err != nil {
			t.Fatalf("OneMinus: %v", err)
		}
		termX, _ := sk.ExpCipher(et, x)
		termY, _ := sk.ExpCipher(notT, y)
		sel, _ := sk.Add(termX, termY)
		inner, err := sk.DecryptInner(sel)
		if err != nil {
			t.Fatalf("DecryptInner: %v", err)
		}
		m, err := pail.Decrypt(inner)
		if err != nil {
			t.Fatalf("inner decrypt: %v", err)
		}
		want := int64(222)
		if tBit == 1 {
			want = 111
		}
		if m.Int64() != want {
			t.Fatalf("select(t=%d) = %v, want %d", tBit, m, want)
		}
	}
}

func TestSubNeg(t *testing.T) {
	_, sk := keys(t)
	a, _ := sk.EncryptInt64(10)
	b, _ := sk.EncryptInt64(4)
	d, err := sk.Sub(a, b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if m, _ := sk.Decrypt(d); m.Int64() != 6 {
		t.Fatalf("10-4 = %v", m)
	}
}

func TestRerandomize(t *testing.T) {
	_, sk := keys(t)
	a, _ := sk.EncryptInt64(5)
	b, err := sk.Rerandomize(a)
	if err != nil {
		t.Fatalf("Rerandomize: %v", err)
	}
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("rerandomized ciphertext equals input")
	}
	if m, _ := sk.Decrypt(b); m.Int64() != 5 {
		t.Fatalf("plaintext changed: %v", m)
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	_, sk := keys(t)
	a, _ := sk.EncryptInt64(9)
	b, _ := sk.EncryptInt64(9)
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("two encryptions identical")
	}
}

func TestInvalidInputs(t *testing.T) {
	pail, sk := keys(t)
	if _, err := sk.Encrypt(nil); err == nil {
		t.Error("expected error for nil message")
	}
	if _, err := sk.Decrypt(nil); err == nil {
		t.Error("expected error for nil ciphertext")
	}
	if _, err := sk.Decrypt(&Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Error("expected error for zero ciphertext")
	}
	if _, err := sk.Add(&Ciphertext{C: big.NewInt(0)}, nil); err == nil {
		t.Error("expected error for invalid Add operands")
	}
	if _, err := sk.ExpCipher(&Ciphertext{C: big.NewInt(1)}, nil); err == nil {
		t.Error("expected error for nil exponent")
	}
	// EncryptInner/DecryptInner require s >= 2.
	sk1, err := NewPrivateKey(pail, 1)
	if err != nil {
		t.Fatal(err)
	}
	innerCt, _ := pail.EncryptInt64(1)
	if _, err := sk1.EncryptInner(innerCt); err == nil {
		t.Error("expected error for EncryptInner with s=1")
	}
	c1, _ := sk1.EncryptInt64(1)
	if _, err := sk1.DecryptInner(c1); err == nil {
		t.Error("expected error for DecryptInner with s=1")
	}
}

func TestExtractRejectsGarbage(t *testing.T) {
	_, sk := keys(t)
	// A random element of Z_{N^3} is (w.h.p.) not a pure (1+N)-power after
	// the d exponentiation check inside extract.
	bad := &Ciphertext{C: big.NewInt(2)}
	// This may or may not error depending on the algebra, but must never
	// panic.
	_, _ = sk.Decrypt(bad)
}

func TestCloneAndByteLen(t *testing.T) {
	_, sk := keys(t)
	a, _ := sk.EncryptInt64(3)
	b := a.Clone()
	b.C.Add(b.C, big.NewInt(1))
	if m, _ := sk.Decrypt(a); m.Int64() != 3 {
		t.Fatal("Clone aliases original")
	}
	if (*Ciphertext)(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
	if sk.ByteLen() <= 0 {
		t.Fatal("ByteLen must be positive")
	}
}

func TestExpOnePlusNMatchesExp(t *testing.T) {
	_, sk := keys(t)
	g := new(big.Int).Add(sk.N, zmath.One)
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		m := new(big.Int).Mod(big.NewInt(seed), sk.NS)
		fast := sk.expOnePlusN(m)
		slow := new(big.Int).Exp(g, m, sk.NS1)
		return fast.Cmp(slow) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
	// Also check with a huge exponent near N^s.
	m := new(big.Int).Sub(sk.NS, big.NewInt(3))
	if sk.expOnePlusN(m).Cmp(new(big.Int).Exp(g, m, sk.NS1)) != 0 {
		t.Fatal("expOnePlusN mismatch for large exponent")
	}
}

func BenchmarkEncryptS2(b *testing.B) {
	_, sk := keys(b)
	m := big.NewInt(424242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptS2(b *testing.B) {
	_, sk := keys(b)
	ct, _ := sk.EncryptInt64(424242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}
