package dj

import (
	"math/big"
	"testing"

	"repro/internal/zmath"
)

// TestFixedNonceBitEquality pins the engine-routed DJ operations to the
// big.Int reference path bit for bit, mirroring the Paillier suite: with
// the nonce fixed, encryption and the homomorphic operators must produce
// byte-identical ciphertexts whichever arithmetic backend is active.
func TestFixedNonceBitEquality(t *testing.T) {
	_, sk := keys(t)
	pk := &sk.PublicKey
	if pk.EngineNS1() == nil {
		t.Fatal("generated key carries no Montgomery engine")
	}

	nonce := big.NewInt(0x5eed)
	m1, m2 := big.NewInt(424242), big.NewInt(987654321)

	prev := zmath.MontgomeryEnabled()
	defer zmath.SetMontgomeryEnabled(prev)

	type snapshot struct{ enc, sum *big.Int }
	var ref *snapshot
	for _, mode := range []struct {
		name string
		on   bool
	}{{"mont-on", true}, {"mont-off", false}} {
		zmath.SetMontgomeryEnabled(mode.on)
		t.Run(mode.name, func(t *testing.T) {
			c1, err := pk.EncryptWithNonce(m1, nonce)
			if err != nil {
				t.Fatalf("EncryptWithNonce: %v", err)
			}
			c2, err := pk.EncryptWithNonce(m2, nonce)
			if err != nil {
				t.Fatalf("EncryptWithNonce: %v", err)
			}
			sum, err := pk.Add(c1, c2)
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			got := &snapshot{enc: c1.C, sum: sum.C}
			if ref == nil {
				ref = got
				return
			}
			if ref.enc.Cmp(got.enc) != 0 {
				t.Error("EncryptWithNonce: engine paths diverge")
			}
			if ref.sum.Cmp(got.sum) != 0 {
				t.Error("Add: engine paths diverge")
			}
		})
	}
}
