package dj

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/paillier"
	"repro/internal/zmath"
)

// TestCRTDecryptMatchesDirect pins the CRT-split c^d against the direct
// full-width exponentiation, bit for bit, across fresh ciphertexts.
func TestCRTDecryptMatchesDirect(t *testing.T) {
	_, sk := keys(t)
	for i := 0; i < 10; i++ {
		ct, err := sk.PublicKey.EncryptInt64(int64(i * 1000003))
		if err != nil {
			t.Fatal(err)
		}
		direct := new(big.Int).Exp(ct.C, sk.d, sk.NS1)
		if crt := sk.powD(ct.C); crt.Cmp(direct) != 0 {
			t.Fatalf("powD differs from direct exponentiation at %d", i)
		}
	}
}

// TestDJCRTNoncePowerMatchesSpec pins the CRT nonce split against the
// spec-path exponentiation on fixed nonces.
func TestDJCRTNoncePowerMatchesSpec(t *testing.T) {
	_, sk := keys(t)
	enc := sk.CRTEncryptor()
	for i := 0; i < 10; i++ {
		r, err := zmath.RandUnit(rand.Reader, sk.N)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(r, sk.NS, sk.NS1)
		if got := enc.noncePowerOf(r); got.Cmp(want) != 0 {
			t.Fatalf("CRT nonce power differs from spec for r=%v", r)
		}
	}
}

// TestDJCRTNoncePowerIsResidue pins the distribution invariant of the
// direct subgroup sampler: every drawn nonce power is a unit of order
// dividing phi(N) — a genuine N^s-th residue mod N^{s+1}.
func TestDJCRTNoncePowerIsResidue(t *testing.T) {
	pail, sk := keys(t)
	enc := sk.CRTEncryptor()
	phi := new(big.Int).Mul(
		new(big.Int).Sub(pail.P, zmath.One), new(big.Int).Sub(pail.Q, zmath.One))
	gcd := new(big.Int)
	for i := 0; i < 5; i++ {
		x, err := enc.NoncePower()
		if err != nil {
			t.Fatal(err)
		}
		if gcd.GCD(nil, nil, x, sk.NS1); gcd.Cmp(zmath.One) != 0 {
			t.Fatal("nonce power is not a unit")
		}
		if new(big.Int).Exp(x, phi, sk.NS1).Cmp(zmath.One) != 0 {
			t.Fatal("nonce power is not an N^s-th residue")
		}
	}
}

// TestDJCRTEncryptorRoundTrip checks CRT-path DJ ciphertexts decrypt to
// the plaintext, remain probabilistic, and interoperate with the layered
// EncryptInner/DecryptInner trick.
func TestDJCRTEncryptorRoundTrip(t *testing.T) {
	pail, sk := keys(t)
	enc := sk.CRTEncryptor()
	m := new(big.Int).Lsh(zmath.One, 300) // needs the full Z_{N^2} range
	c1, err := enc.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := enc.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.C.Cmp(c2.C) == 0 {
		t.Error("CRT DJ encryption is deterministic")
	}
	got, err := sk.Decrypt(c1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Errorf("round trip mismatch: %v != %v", got, m)
	}
	rr, err := enc.Rerandomize(c1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.C.Cmp(c1.C) == 0 {
		t.Error("Rerandomize returned the same ciphertext")
	}
	// Layered: E2(Enc(x)) -> Enc(x) through the CRT surface.
	inner, err := pail.PublicKey.EncryptInt64(77)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := enc.EncryptInner(inner)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sk.DecryptInner(outer)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := pail.Decrypt(back); err != nil || v.Int64() != 77 {
		t.Fatalf("layered round trip -> %v (%v)", v, err)
	}
}

// TestDJFastEncryptorRoundTrip checks fast-nonce DJ ciphertexts decrypt
// correctly and remain probabilistic.
func TestDJFastEncryptorRoundTrip(t *testing.T) {
	_, sk := keys(t)
	enc, err := NewFastEncryptor(&sk.PublicKey, 0)
	if err != nil {
		t.Fatalf("NewFastEncryptor: %v", err)
	}
	for _, m := range []int64{0, 1, 424242} {
		c1, err := enc.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		c2, err := enc.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		if c1.C.Cmp(c2.C) == 0 {
			t.Errorf("fast DJ encryption of %d is deterministic", m)
		}
		got, err := sk.Decrypt(c1)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
	if _, err := NewFastEncryptor(&sk.PublicKey, 64); err == nil {
		t.Error("expected error for a 64-bit short exponent")
	}
}

// TestDJNoncePoolOverFastSources checks the generalized pool composes
// with all three DJ nonce sources.
func TestDJNoncePoolOverFastSources(t *testing.T) {
	_, sk := keys(t)
	fast, err := NewFastEncryptor(&sk.PublicKey, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]NonceSource{
		"spec": &sk.PublicKey,
		"crt":  sk.CRTEncryptor(),
		"fast": fast,
	} {
		pool := NewNoncePool(src, 1, 4)
		for i := 0; i < 6; i++ {
			ct, err := pool.Encrypt(big.NewInt(int64(i)))
			if err != nil {
				t.Fatalf("%s pooled Encrypt: %v", name, err)
			}
			m, err := sk.Decrypt(ct)
			if err != nil || m.Int64() != int64(i) {
				t.Fatalf("%s pooled round trip %d -> %v (%v)", name, i, m, err)
			}
		}
		pool.Close()
	}
}

// TestDJFastSourcesSatisfyEncryptor pins the interface contracts at
// compile time.
var (
	_ Encryptor            = (*CRTEncryptor)(nil)
	_ Encryptor            = (*FastEncryptor)(nil)
	_ NonceSource          = (*NoncePool)(nil)
	_ paillier.NonceSource = (*paillier.NoncePool)(nil)
)
