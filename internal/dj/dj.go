// Package dj implements the Damgård-Jurik generalization of the Paillier
// cryptosystem (PKC 2001). For a degree parameter s >= 1, plaintexts live
// in Z_{N^s} and ciphertexts in Z*_{N^{s+1}}; s = 1 recovers plain
// Paillier.
//
// SecTopK uses s = 2 for its double-layer trick (Section 3.3 of the
// paper): a first-layer Paillier ciphertext c = Enc(m) in Z_{N^2} is a
// valid *plaintext* for the s = 2 scheme, and
//
//	E2(Enc(m1))^{Enc(m2)} = E2(Enc(m1) * Enc(m2) mod N^2) = E2(Enc(m1+m2))
//
// is the only homomorphic property the construction relies on. That
// identity is exactly ExpConst below, applied with the inner ciphertext
// as exponent.
package dj

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/paillier"
	"repro/internal/zmath"
)

var (
	// ErrMessageRange is returned when a plaintext is outside [0, N^s).
	ErrMessageRange = errors.New("dj: message outside [0, N^s)")
	// ErrCiphertextRange is returned for ciphertexts outside (0, N^{s+1}).
	ErrCiphertextRange = errors.New("dj: invalid ciphertext")
	// ErrDegree is returned for an unsupported degree parameter.
	ErrDegree = errors.New("dj: degree s must be >= 1")
)

// PublicKey is the Damgård-Jurik public key: the Paillier modulus N plus
// the degree s and cached powers of N.
type PublicKey struct {
	N *big.Int
	S int

	NS  *big.Int // N^s, the plaintext modulus
	NS1 *big.Int // N^{s+1}, the ciphertext modulus
	// nPow[i] = N^i for i in [0, s+1]; shared by the decrypt extraction.
	nPow []*big.Int

	// engNS1 is the reduction engine for the ciphertext modulus N^{s+1},
	// precomputed by NewPublicKey; nil on literal-constructed keys, in
	// which case every helper falls back to plain big.Int arithmetic.
	engNS1 *zmath.Modulus
}

// EngineNS1 returns the reduction engine for the ciphertext modulus
// N^{s+1} (nil on keys built without NewPublicKey). Read-only.
func (pk *PublicKey) EngineNS1() *zmath.Modulus { return pk.engNS1 }

// mulNS1 multiplies mod N^{s+1} through the engine when available.
func (pk *PublicKey) mulNS1(a, b *big.Int) *big.Int {
	if pk.engNS1 != nil {
		return pk.engNS1.MulMod(a, b)
	}
	out := new(big.Int).Mul(a, b)
	return out.Mod(out, pk.NS1)
}

// PrivateKey carries the decryption exponent d with d = 1 mod N^s and
// d = 0 mod lambda, plus the precomputed k!^{-1} mod N^s table used by the
// plaintext extraction and the CRT caches that split the dominating
// c^d mod N^{s+1} exponentiation into two half-width ones.
type PrivateKey struct {
	PublicKey
	d *big.Int
	// factInv[k] = (k!)^{-1} mod N^s for k in [0, s].
	factInv []*big.Int

	// CRT decryption caches derived from the factorization N = p*q:
	// c^d mod p^{s+1} needs only d mod |Z*_{p^{s+1}}| = p^s(p-1), which is
	// s/(s+1) the width of d, over a modulus half the width of N^{s+1}.
	p, q         *big.Int
	ps1, qs1     *big.Int // p^{s+1}, q^{s+1}
	dp, dq       *big.Int // d mod p^s(p-1), d mod q^s(q-1)
	ps1InvModQs1 *big.Int // p^{s+1}^{-1} mod q^{s+1}
	// ordP, ordQ are the unit-group orders p^s(p-1), q^s(q-1), kept for
	// the CRT nonce encryptor's exponent reduction.
	ordP, ordQ *big.Int
}

// Ciphertext is a DJ ciphertext: an element of Z*_{N^{s+1}}.
type Ciphertext struct {
	C *big.Int
}

// NewPublicKey derives the DJ public key of degree s from a Paillier
// public key (same modulus N).
func NewPublicKey(pk *paillier.PublicKey, s int) (*PublicKey, error) {
	if s < 1 {
		return nil, ErrDegree
	}
	out := &PublicKey{N: new(big.Int).Set(pk.N), S: s}
	out.nPow = make([]*big.Int, s+2)
	out.nPow[0] = big.NewInt(1)
	for i := 1; i <= s+1; i++ {
		out.nPow[i] = new(big.Int).Mul(out.nPow[i-1], out.N)
	}
	out.NS = out.nPow[s]
	out.NS1 = out.nPow[s+1]
	// N is odd for every valid Paillier modulus, hence so is N^{s+1};
	// the guard only spares hand-built test keys with toy moduli.
	if out.NS1.Bit(0) == 1 {
		out.engNS1 = zmath.MustModulus(out.NS1)
	}
	return out, nil
}

// NewPrivateKey derives the DJ private key of degree s from a Paillier
// private key (shared factorization), as the paper's single data-owner key
// setup does.
func NewPrivateKey(sk *paillier.PrivateKey, s int) (*PrivateKey, error) {
	pub, err := NewPublicKey(&sk.PublicKey, s)
	if err != nil {
		return nil, err
	}
	// CRT: d = 1 mod N^s, d = 0 mod lambda. gcd(N^s, lambda) = 1.
	lambdaInv, err := zmath.ModInverse(sk.Lambda, pub.NS)
	if err != nil {
		return nil, fmt.Errorf("dj: lambda not invertible mod N^s: %w", err)
	}
	d := new(big.Int).Mul(sk.Lambda, lambdaInv) // = 1 mod N^s, = 0 mod lambda
	out := &PrivateKey{PublicKey: *pub, d: d}
	out.factInv = make([]*big.Int, s+1)
	for k := 0; k <= s; k++ {
		inv, err := zmath.ModInverse(zmath.Factorial(k), pub.NS)
		if err != nil {
			return nil, fmt.Errorf("dj: %d! not invertible mod N^s: %w", k, err)
		}
		out.factInv[k] = inv
	}
	// CRT caches (the factorization rides along from the Paillier key).
	out.p = new(big.Int).Set(sk.P)
	out.q = new(big.Int).Set(sk.Q)
	out.ps1 = new(big.Int).Exp(sk.P, big.NewInt(int64(s+1)), nil)
	out.qs1 = new(big.Int).Exp(sk.Q, big.NewInt(int64(s+1)), nil)
	pm1 := new(big.Int).Sub(sk.P, zmath.One)
	qm1 := new(big.Int).Sub(sk.Q, zmath.One)
	out.ordP = new(big.Int).Exp(sk.P, big.NewInt(int64(s)), nil)
	out.ordP.Mul(out.ordP, pm1)
	out.ordQ = new(big.Int).Exp(sk.Q, big.NewInt(int64(s)), nil)
	out.ordQ.Mul(out.ordQ, qm1)
	out.dp = new(big.Int).Mod(d, out.ordP)
	out.dq = new(big.Int).Mod(d, out.ordQ)
	if out.ps1InvModQs1, err = zmath.ModInverse(out.ps1, out.qs1); err != nil {
		return nil, fmt.Errorf("dj: p^{s+1} not invertible mod q^{s+1}: %w", err)
	}
	return out, nil
}

func (pk *PublicKey) validateMessage(m *big.Int) (*big.Int, error) {
	if m == nil {
		return nil, ErrMessageRange
	}
	return new(big.Int).Mod(m, pk.NS), nil
}

func (pk *PublicKey) validateCiphertext(c *Ciphertext) error {
	if c == nil || c.C == nil || c.C.Sign() <= 0 || c.C.Cmp(pk.NS1) >= 0 {
		return ErrCiphertextRange
	}
	return nil
}

// Encrypt encrypts m in Z_{N^s}: c = (1+N)^m * r^{N^s} mod N^{s+1}.
func (pk *PublicKey) Encrypt(m *big.Int) (*Ciphertext, error) {
	r, err := zmath.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("dj: sampling randomness: %w", err)
	}
	return pk.EncryptWithNonce(m, r)
}

// EncryptWithNonce encrypts m with caller-provided nonce r in Z*_N.
func (pk *PublicKey) EncryptWithNonce(m, r *big.Int) (*Ciphertext, error) {
	mm, err := pk.validateMessage(m)
	if err != nil {
		return nil, err
	}
	if r == nil || r.Sign() <= 0 || r.Cmp(pk.N) >= 0 {
		return nil, errors.New("dj: nonce outside (0, N)")
	}
	gm := pk.expOnePlusN(mm)
	rn := new(big.Int).Exp(r, pk.NS, pk.NS1)
	return &Ciphertext{C: pk.mulNS1(gm, rn)}, nil
}

// EncryptInt64 is a convenience wrapper around Encrypt.
func (pk *PublicKey) EncryptInt64(m int64) (*Ciphertext, error) {
	return pk.Encrypt(big.NewInt(m))
}

// EncryptInner encrypts a first-layer Paillier ciphertext under the outer
// DJ layer, i.e. builds E2(Enc(m)). Requires s >= 2 so the inner
// ciphertext fits the plaintext space.
func (pk *PublicKey) EncryptInner(inner *paillier.Ciphertext) (*Ciphertext, error) {
	if pk.S < 2 {
		return nil, fmt.Errorf("dj: EncryptInner needs s >= 2, have s = %d", pk.S)
	}
	if inner == nil || inner.C == nil {
		return nil, ErrMessageRange
	}
	return pk.Encrypt(inner.C)
}

// expOnePlusN computes (1+N)^m mod N^{s+1} via the binomial expansion:
// (1+N)^m = sum_{k=0..s} C(m,k) N^k mod N^{s+1}. The running term
// C(m,k)*N^k is kept as an exact integer so the incremental division by k
// stays exact (C(m,k-1)*(m-k+1) is always divisible by k); the sizes stay
// small because s is tiny (2 in SecTopK).
func (pk *PublicKey) expOnePlusN(m *big.Int) *big.Int {
	out := big.NewInt(1)
	term := big.NewInt(1) // C(m, k) * N^k, built incrementally, exact
	mk := new(big.Int)
	for k := 1; k <= pk.S; k++ {
		// term *= (m - k + 1) * N / k, exact integer division
		mk.Sub(m, big.NewInt(int64(k-1)))
		term.Mul(term, mk)
		term.Mul(term, pk.N)
		term.Div(term, big.NewInt(int64(k)))
		out.Add(out, term)
	}
	out.Mod(out, pk.NS1)
	return out
}

// Decrypt recovers m in [0, N^s).
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if err := sk.validateCiphertext(c); err != nil {
		return nil, err
	}
	// c^d = (1+N)^m mod N^{s+1} because d = 0 mod lambda kills the
	// randomness and d = 1 mod N^s preserves m.
	return sk.extract(sk.powD(c.C))
}

// powD computes c^d mod N^{s+1} by CRT: two exponentiations over the
// half-width moduli p^{s+1}, q^{s+1} with d reduced mod the respective
// unit-group orders, recombined with the precomputed inverse. For s = 2
// this replaces one 2n-bit exponent over a 3n-bit modulus with two
// 1.5n-bit exponents over 1.5n-bit moduli (~2.7x fewer word
// multiplications). Bit-identical to the direct exponentiation for every
// c in Z*_{N^{s+1}}.
func (sk *PrivateKey) powD(c *big.Int) *big.Int {
	ap := new(big.Int).Exp(new(big.Int).Mod(c, sk.ps1), sk.dp, sk.ps1)
	aq := new(big.Int).Exp(new(big.Int).Mod(c, sk.qs1), sk.dq, sk.qs1)
	return zmath.CRTPair(ap, aq, sk.ps1, sk.qs1, sk.ps1InvModQs1)
}

// DecryptInner decrypts the outer DJ layer and reinterprets the plaintext
// as a first-layer Paillier ciphertext, i.e. E2(Enc(m)) -> Enc(m).
func (sk *PrivateKey) DecryptInner(c *Ciphertext) (*paillier.Ciphertext, error) {
	if sk.S < 2 {
		return nil, fmt.Errorf("dj: DecryptInner needs s >= 2, have s = %d", sk.S)
	}
	m, err := sk.Decrypt(c)
	if err != nil {
		return nil, err
	}
	return &paillier.Ciphertext{C: m}, nil
}

// extract computes i from a = (1+N)^i mod N^{s+1} using the iterative
// algorithm from the Damgård-Jurik paper (Section 4.2): recover i mod N^j
// for j = 1..s by peeling binomial terms.
func (sk *PrivateKey) extract(a *big.Int) (*big.Int, error) {
	i := new(big.Int)
	t1 := new(big.Int)
	t2 := new(big.Int)
	tmp := new(big.Int)
	for j := 1; j <= sk.S; j++ {
		nj := sk.nPow[j]
		nj1 := sk.nPow[j+1]
		// t1 = L(a mod N^{j+1}) = ((a mod N^{j+1}) - 1) / N
		t1.Mod(a, nj1)
		t1.Sub(t1, zmath.One)
		if new(big.Int).Mod(t1, sk.N).Sign() != 0 {
			return nil, errors.New("dj: ciphertext is not a valid (1+N)-power")
		}
		t1.Div(t1, sk.N)
		t2.Set(i)
		for k := 2; k <= j; k++ {
			i.Sub(i, zmath.One)
			t2.Mul(t2, i)
			t2.Mod(t2, nj)
			// t1 -= t2 * N^{k-1} / k!
			tmp.Mul(t2, sk.nPow[k-1])
			tmp.Mul(tmp, sk.factInv[k])
			t1.Sub(t1, tmp)
			t1.Mod(t1, nj)
		}
		i.Mod(t1, nj)
	}
	return i, nil
}

// Add returns E(x+y) = E(x) * E(y) mod N^{s+1}.
func (pk *PublicKey) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := pk.validateCiphertext(a); err != nil {
		return nil, err
	}
	if err := pk.validateCiphertext(b); err != nil {
		return nil, err
	}
	return &Ciphertext{C: pk.mulNS1(a.C, b.C)}, nil
}

// ExpConst returns E(k*x) = E(x)^k for a plaintext exponent k in Z_{N^s}.
// With k an inner Paillier ciphertext value this is the paper's layered
// homomorphism E2(Enc(a))^{Enc(b)} = E2(Enc(a+b)).
func (pk *PublicKey) ExpConst(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.validateCiphertext(a); err != nil {
		return nil, err
	}
	if k == nil {
		return nil, ErrMessageRange
	}
	kk := new(big.Int).Mod(k, pk.NS)
	c := new(big.Int).Exp(a.C, kk, pk.NS1)
	return &Ciphertext{C: c}, nil
}

// ExpCipher is ExpConst with a first-layer Paillier ciphertext as the
// exponent: E2(x)^{Enc(m)} = E2(x * Enc(m) mod N^2).
func (pk *PublicKey) ExpCipher(a *Ciphertext, e *paillier.Ciphertext) (*Ciphertext, error) {
	if e == nil || e.C == nil {
		return nil, ErrMessageRange
	}
	return pk.ExpConst(a, e.C)
}

// Neg returns E(-x) = E(x)^{-1} mod N^{s+1}.
func (pk *PublicKey) Neg(a *Ciphertext) (*Ciphertext, error) {
	if err := pk.validateCiphertext(a); err != nil {
		return nil, err
	}
	inv, err := zmath.ModInverse(a.C, pk.NS1)
	if err != nil {
		return nil, fmt.Errorf("dj: Neg: %w", err)
	}
	return &Ciphertext{C: inv}, nil
}

// Sub returns E(x-y).
func (pk *PublicKey) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	nb, err := pk.Neg(b)
	if err != nil {
		return nil, err
	}
	return pk.Add(a, nb)
}

// OneMinus returns E(1-t), the complement used for encrypted selection
// bits: E2(1) * E2(t)^{-1}.
func (pk *PublicKey) OneMinus(t *Ciphertext) (*Ciphertext, error) {
	return OneMinusEnc(pk, t)
}

// OneMinusEnc is OneMinus with an explicit encryption surface, so hot
// paths can draw the E(1) from a nonce pool.
func OneMinusEnc(enc Encryptor, t *Ciphertext) (*Ciphertext, error) {
	one, err := enc.Encrypt(zmath.One)
	if err != nil {
		return nil, err
	}
	return enc.Key().Sub(one, t)
}

// Rerandomize multiplies by a fresh encryption of zero.
func (pk *PublicKey) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	z, err := pk.Encrypt(zmath.Zero)
	if err != nil {
		return nil, err
	}
	return pk.Add(a, z)
}

// Clone returns a deep copy of the ciphertext.
func (c *Ciphertext) Clone() *Ciphertext {
	if c == nil || c.C == nil {
		return nil
	}
	return &Ciphertext{C: new(big.Int).Set(c.C)}
}

// ByteLen returns the serialized size of a ciphertext under this key.
func (pk *PublicKey) ByteLen() int { return (pk.NS1.BitLen() + 7) / 8 }
