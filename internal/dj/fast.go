package dj

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"repro/internal/paillier"
	"repro/internal/zmath"
)

// NonceSource produces the nonce powers r^{N^s} mod N^{s+1} that dominate
// DJ encryption, mirroring paillier.NonceSource: PublicKey is the spec
// path, CRTEncryptor and FastEncryptor the precomputation fast paths, and
// NoncePool buffers any of them.
type NonceSource interface {
	Key() *PublicKey
	NoncePower() (*big.Int, error)
}

// NoncePower samples a fresh r in Z*_N and returns r^{N^s} mod N^{s+1} —
// the spec path, one full-width exponentiation per nonce.
func (pk *PublicKey) NoncePower() (*big.Int, error) {
	r, err := zmath.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("dj: sampling randomness: %w", err)
	}
	return new(big.Int).Exp(r, pk.NS, pk.NS1), nil
}

// encryptFromSource assembles a fresh encryption of m from src's next
// nonce power.
func encryptFromSource(src NonceSource, m *big.Int) (*Ciphertext, error) {
	rn, err := src.NoncePower()
	if err != nil {
		return nil, err
	}
	return src.Key().encryptWithRN(m, rn)
}

// CRTEncryptor is the key holder's fast path for DJ nonces, mirroring
// paillier.CRTEncryptor: the spec path's nonce powers
// {r^{N^s} mod N^{s+1}} are uniform over the N^s-th residue subgroup,
// whose CRT components are the unique order-(p-1) / order-(q-1)
// subgroups of Z*_{p^{s+1}} / Z*_{q^{s+1}}; each is sampled directly as
// sp^{p^s} for a uniform unit sp. Assumption-free: the nonce
// distribution is exactly the spec path's, at a fraction of the cost
// (for s = 2, two 2n/2-bit-exponent exponentiations over 1.5n-bit moduli
// replace one 2n-bit-exponent exponentiation over a 3n-bit modulus).
type CRTEncryptor struct {
	sk     *PrivateKey
	ep, eq *big.Int // N^s reduced mod p^s(p-1) and q^s(q-1), for noncePowerOf
	pS, qS *big.Int // p^s, q^s, the direct-sampling exponents
}

// CRTEncryptor returns the CRT-accelerated encryption surface for the
// private key.
func (sk *PrivateKey) CRTEncryptor() *CRTEncryptor {
	s := big.NewInt(int64(sk.S))
	return &CRTEncryptor{
		sk: sk,
		ep: new(big.Int).Mod(sk.NS, sk.ordP),
		eq: new(big.Int).Mod(sk.NS, sk.ordQ),
		pS: new(big.Int).Exp(sk.p, s, nil),
		qS: new(big.Int).Exp(sk.q, s, nil),
	}
}

// Key returns the underlying public key.
func (e *CRTEncryptor) Key() *PublicKey { return &e.sk.PublicKey }

// noncePowerOf computes r^{N^s} mod N^{s+1} for a caller-provided r via
// the classic CRT split (exponent reduced mod the unit-group orders);
// kept so tests can pin bit-identical equivalence with the spec path.
// NoncePower uses the cheaper direct subgroup sampling.
func (e *CRTEncryptor) noncePowerOf(r *big.Int) *big.Int {
	rp := new(big.Int).Exp(new(big.Int).Mod(r, e.sk.ps1), e.ep, e.sk.ps1)
	rq := new(big.Int).Exp(new(big.Int).Mod(r, e.sk.qs1), e.eq, e.sk.qs1)
	return zmath.CRTPair(rp, rq, e.sk.ps1, e.sk.qs1, e.sk.ps1InvModQs1)
}

// NoncePower returns a uniform N^s-th residue mod N^{s+1} by sampling
// its CRT components directly (see the type comment).
func (e *CRTEncryptor) NoncePower() (*big.Int, error) {
	xp, err := zmath.SampleSubgroupPower(rand.Reader, e.sk.ps1, e.sk.p, e.pS)
	if err != nil {
		return nil, err
	}
	xq, err := zmath.SampleSubgroupPower(rand.Reader, e.sk.qs1, e.sk.q, e.qS)
	if err != nil {
		return nil, err
	}
	return zmath.CRTPair(xp, xq, e.sk.ps1, e.sk.qs1, e.sk.ps1InvModQs1), nil
}

// Encrypt encrypts m with a CRT-computed nonce power.
func (e *CRTEncryptor) Encrypt(m *big.Int) (*Ciphertext, error) {
	return encryptFromSource(e, m)
}

// EncryptInner encrypts a first-layer Paillier ciphertext under the outer
// DJ layer through the CRT path.
func (e *CRTEncryptor) EncryptInner(inner *paillier.Ciphertext) (*Ciphertext, error) {
	if e.sk.S < 2 {
		return nil, fmt.Errorf("dj: EncryptInner needs s >= 2, have s = %d", e.sk.S)
	}
	if inner == nil || inner.C == nil {
		return nil, ErrMessageRange
	}
	return e.Encrypt(inner.C)
}

// Rerandomize multiplies by a fresh encryption of zero.
func (e *CRTEncryptor) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	z, err := e.Encrypt(zmath.Zero)
	if err != nil {
		return nil, err
	}
	return e.Key().Add(a, z)
}

// FastEncryptor is the opt-in short-exponent fast path for DJ nonces,
// mirroring paillier.FastEncryptor: precompute hNs = h^{N^s} mod N^{s+1}
// once for a random quadratic residue h, then draw nonce powers as
// hNs^alpha for short random alpha through a fixed-base windowed table.
// Carries the same short-exponent/subgroup assumption as the Paillier
// variant and is therefore opt-in; see the security note in DESIGN.md.
type FastEncryptor struct {
	pk      *PublicKey
	table   *zmath.FixedBaseTable
	expHi   *big.Int
	expBits int
}

// NewFastEncryptor precomputes the fast-nonce table for pk. expBits <= 0
// selects paillier.FastNonceBits.
func NewFastEncryptor(pk *PublicKey, expBits int) (*FastEncryptor, error) {
	if expBits <= 0 {
		expBits = paillier.FastNonceBits
	}
	if expBits < 2*64 {
		return nil, fmt.Errorf("dj: fast-nonce exponent %d bits below the short-exponent safety margin", expBits)
	}
	x, err := zmath.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("dj: sampling fast-nonce base: %w", err)
	}
	h := new(big.Int).Mul(x, x)
	h.Mod(h, pk.N)
	hNs := new(big.Int).Exp(h, pk.NS, pk.NS1)
	// Keep the table entries in Montgomery form when the key carries an
	// engine, so nonce draws run their window chains division-free.
	var table *zmath.FixedBaseTable
	if eng := pk.EngineNS1(); eng != nil {
		table, err = zmath.NewFixedBaseTableMod(hNs, eng, paillier.FastNonceWindow, expBits)
	} else {
		table, err = zmath.NewFixedBaseTable(hNs, pk.NS1, paillier.FastNonceWindow, expBits)
	}
	if err != nil {
		return nil, fmt.Errorf("dj: building fast-nonce table: %w", err)
	}
	return &FastEncryptor{
		pk:      pk,
		table:   table,
		expHi:   new(big.Int).Lsh(zmath.One, uint(expBits)),
		expBits: expBits,
	}, nil
}

// Key returns the underlying public key.
func (e *FastEncryptor) Key() *PublicKey { return e.pk }

// NoncePower draws a short random exponent alpha and returns
// (h^{N^s})^alpha mod N^{s+1} from the fixed-base table.
func (e *FastEncryptor) NoncePower() (*big.Int, error) {
	alpha, err := zmath.RandRange(rand.Reader, zmath.One, e.expHi)
	if err != nil {
		return nil, fmt.Errorf("dj: sampling fast-nonce exponent: %w", err)
	}
	return e.table.Exp(alpha)
}

// Encrypt encrypts m with a fast-path nonce power.
func (e *FastEncryptor) Encrypt(m *big.Int) (*Ciphertext, error) {
	return encryptFromSource(e, m)
}

// Rerandomize multiplies by a fresh encryption of zero.
func (e *FastEncryptor) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	z, err := e.Encrypt(zmath.Zero)
	if err != nil {
		return nil, err
	}
	return e.pk.Add(a, z)
}
