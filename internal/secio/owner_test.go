package secio

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestOwnerBundleRoundTrip(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOwnerBundle(&buf, r.scheme); err != nil {
		t.Fatalf("WriteOwnerBundle: %v", err)
	}
	restored, err := ReadOwnerBundle(&buf)
	if err != nil {
		t.Fatalf("ReadOwnerBundle: %v", err)
	}
	// The restored scheme must issue tokens valid for the ORIGINAL
	// encrypted relation (the PRP key survived) ...
	tk, err := restored.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(r.client, er)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltStrict})
	if err != nil {
		t.Fatalf("SecQuery with restored token: %v", err)
	}
	// ... and reveal the results (the EHL master key survived).
	rev, err := restored.NewRevealer(er.N)
	if err != nil {
		t.Fatal(err)
	}
	revealed, err := rev.RevealTopK(res.Items)
	if err != nil {
		t.Fatalf("RevealTopK with restored scheme: %v", err)
	}
	if revealed[0].Obj != 2 || revealed[0].Worst != 18 {
		t.Fatalf("restored-scheme result = %+v", revealed[0])
	}
	if err := WriteOwnerBundle(&buf, nil); err == nil {
		t.Fatal("expected error for nil scheme")
	}
}

func TestOwnerBundleFile(t *testing.T) {
	r := getRig(t)
	path := filepath.Join(t.TempDir(), "owner.bundle")
	if err := SaveOwnerBundle(path, r.scheme); err != nil {
		t.Fatalf("SaveOwnerBundle: %v", err)
	}
	restored, err := LoadOwnerBundle(path)
	if err != nil {
		t.Fatalf("LoadOwnerBundle: %v", err)
	}
	if restored.PublicKey().N.Cmp(r.scheme.PublicKey().N) != 0 {
		t.Fatal("restored scheme has different modulus")
	}
	if _, err := LoadOwnerBundle(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	r := getRig(t)
	var buf bytes.Buffer
	if err := WritePublicKey(&buf, r.scheme.PublicKey()); err != nil {
		t.Fatalf("WritePublicKey: %v", err)
	}
	pk, err := ReadPublicKey(&buf)
	if err != nil {
		t.Fatalf("ReadPublicKey: %v", err)
	}
	if pk.N.Cmp(r.scheme.PublicKey().N) != 0 {
		t.Fatal("modulus mismatch")
	}
	// Loaded public key must encrypt values decryptable by the owner.
	ct, err := pk.EncryptInt64(5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.scheme.KeyMaterial().Paillier.Decrypt(ct)
	if err != nil || m.Int64() != 5 {
		t.Fatalf("cross decrypt: %v %v", m, err)
	}
	if err := WritePublicKey(&buf, nil); err == nil {
		t.Fatal("expected error for nil key")
	}
	path := filepath.Join(t.TempDir(), "pk")
	if err := SavePublicKey(path, r.scheme.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPublicKey(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPublicKey(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestRestoreSchemeValidation(t *testing.T) {
	r := getRig(t)
	params := r.scheme.Params()
	keys := r.scheme.KeyMaterial()
	secrets := r.scheme.Secrets()
	if _, err := core.RestoreScheme(params, nil, secrets); err == nil {
		t.Fatal("expected error for nil keys")
	}
	if _, err := core.RestoreScheme(params, keys, core.Secrets{}); err == nil {
		t.Fatal("expected error for empty secrets")
	}
	if _, err := core.RestoreScheme(core.Params{}, keys, secrets); err == nil {
		t.Fatal("expected error for invalid params")
	}
}
