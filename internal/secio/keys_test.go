package secio

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
)

func TestKeyMaterialRoundTrip(t *testing.T) {
	r := getRig(t)
	keys := r.scheme.KeyMaterial()
	var buf bytes.Buffer
	if err := WriteKeyMaterial(&buf, keys); err != nil {
		t.Fatalf("WriteKeyMaterial: %v", err)
	}
	loaded, err := ReadKeyMaterial(&buf)
	if err != nil {
		t.Fatalf("ReadKeyMaterial: %v", err)
	}
	if loaded.Paillier.N.Cmp(keys.Paillier.N) != 0 {
		t.Fatal("modulus changed across serialization")
	}
	// The reloaded key must decrypt ciphertexts made under the original.
	ct, err := keys.Paillier.PublicKey.EncryptInt64(4242)
	if err != nil {
		t.Fatal(err)
	}
	m, err := loaded.Paillier.Decrypt(ct)
	if err != nil {
		t.Fatalf("decrypt with reloaded key: %v", err)
	}
	if m.Int64() != 4242 {
		t.Fatalf("reloaded key decrypted %v", m)
	}
	// And the DJ layer must work too.
	dct, err := loaded.DJ.EncryptInt64(7)
	if err != nil {
		t.Fatal(err)
	}
	if dm, err := keys.DJ.Decrypt(dct); err != nil || dm.Int64() != 7 {
		t.Fatalf("DJ cross-decrypt failed: %v %v", dm, err)
	}
	if err := WriteKeyMaterial(&buf, nil); err == nil {
		t.Fatal("expected error for nil keys")
	}
}

func TestKeyMaterialFilePermissions(t *testing.T) {
	r := getRig(t)
	path := filepath.Join(t.TempDir(), "owner.keys")
	if err := SaveKeyMaterial(path, r.scheme.KeyMaterial()); err != nil {
		t.Fatalf("SaveKeyMaterial: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("key file permissions = %v, want 0600", info.Mode().Perm())
	}
	loaded, err := LoadKeyMaterial(path)
	if err != nil {
		t.Fatalf("LoadKeyMaterial: %v", err)
	}
	if loaded.Paillier.N.Cmp(r.scheme.KeyMaterial().Paillier.N) != 0 {
		t.Fatal("loaded wrong key")
	}
	if _, err := LoadKeyMaterial(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestItemsRoundTrip(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(r.client, er)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltStrict})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteItems(&buf, res.Items); err != nil {
		t.Fatalf("WriteItems: %v", err)
	}
	loaded, err := ReadItems(&buf)
	if err != nil {
		t.Fatalf("ReadItems: %v", err)
	}
	rev, err := r.scheme.NewRevealer(er.N)
	if err != nil {
		t.Fatal(err)
	}
	revealed, err := rev.RevealTopK(loaded)
	if err != nil {
		t.Fatalf("RevealTopK over loaded items: %v", err)
	}
	if revealed[0].Obj != 2 || revealed[0].Worst != 18 {
		t.Fatalf("loaded result top-1 = %+v", revealed[0])
	}
	// Malformed item.
	if err := WriteItems(&buf, []protocols.Item{{}}); err == nil {
		t.Fatal("expected error for item without EHL")
	}
	if _, err := ReadItems(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty stream")
	}
}
