package secio

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/ehl"
	"repro/internal/mutate"
	"repro/internal/paillier"
)

// This file serializes the mutation plane's artifacts, all format
// version 2:
//
//   - "delta": an owner-produced mutation bundle (the Client.Apply wire
//     payload and the `sectopk-node apply` hand-off artifact);
//   - "hosted-mutable": an epoch-stamped hosted relation — the sharded
//     store including tombstone tails, so a mutated hosting round-trips
//     through files without losing its version or compaction debt;
//   - "mutable-owner": the owner's mirror (plaintext rows + id
//     allocator + epoch) bundled with its encrypted shadow state. This
//     stream holds plaintext and must never leave the owner.

// wireDeleteRow, wireInsertRow, wireShardDelta and wireDelta flatten
// mutate.Delta. The EHL parameters ride along so the decoder can
// validate digest widths without out-of-band schema knowledge.
type wireDeleteRow struct {
	ID  int
	Pos []int
}

type wireInsertRow struct {
	ID    int
	Pos   []int
	Items []wireEncItem
}

type wireShardDelta struct {
	Shard   int
	Deletes []wireDeleteRow
	Inserts []wireInsertRow
}

type wireDelta struct {
	BaseEpoch  uint64
	ID         string
	EHLKind    int
	EHLS, EHLH int
	Shards     []wireShardDelta
}

// encodeDelta flattens a delta to its wire form.
func encodeDelta(d *mutate.Delta, params ehl.Params) (*wireDelta, error) {
	if d == nil {
		return nil, errors.New("secio: nil delta")
	}
	wd := &wireDelta{
		BaseEpoch: d.BaseEpoch, ID: d.ID,
		EHLKind: int(params.Kind), EHLS: params.S, EHLH: params.H,
		Shards: make([]wireShardDelta, len(d.Shards)),
	}
	for i, sd := range d.Shards {
		ws := wireShardDelta{Shard: sd.Shard}
		for _, del := range sd.Deletes {
			ws.Deletes = append(ws.Deletes, wireDeleteRow{ID: del.ID, Pos: del.Pos})
		}
		for _, ins := range sd.Inserts {
			wi := wireInsertRow{ID: ins.ID, Pos: ins.Pos}
			for j, it := range ins.Items {
				if it.EHL == nil || it.Score == nil {
					return nil, fmt.Errorf("secio: delta shard %d: incomplete insert item %d", sd.Shard, j)
				}
				w := wireEncItem{Score: it.Score.C}
				for _, ct := range it.EHL.Cts {
					w.EHL = append(w.EHL, ct.C)
				}
				wi.Items = append(wi.Items, w)
			}
			ws.Inserts = append(ws.Inserts, wi)
		}
		wd.Shards[i] = ws
	}
	return wd, nil
}

// decodeDelta rebuilds a delta from its wire form.
func decodeDelta(wd *wireDelta) (*mutate.Delta, error) {
	params := ehl.Params{Kind: ehl.Kind(wd.EHLKind), S: wd.EHLS, H: wd.EHLH}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("secio: stored delta EHL params invalid: %w", err)
	}
	d := &mutate.Delta{BaseEpoch: wd.BaseEpoch, ID: wd.ID, Shards: make([]mutate.ShardDelta, len(wd.Shards))}
	for i, ws := range wd.Shards {
		sd := mutate.ShardDelta{Shard: ws.Shard}
		for _, del := range ws.Deletes {
			sd.Deletes = append(sd.Deletes, mutate.DeleteRow{ID: del.ID, Pos: del.Pos})
		}
		for _, wi := range ws.Inserts {
			ins := mutate.InsertRow{ID: wi.ID, Pos: wi.Pos}
			for j, w := range wi.Items {
				if w.Score == nil || len(w.EHL) != params.Width() {
					return nil, fmt.Errorf("secio: stored delta shard %d: malformed insert item %d", ws.Shard, j)
				}
				l := &ehl.List{Kind: params.Kind}
				for _, v := range w.EHL {
					l.Cts = append(l.Cts, &paillier.Ciphertext{C: v})
				}
				ins.Items = append(ins.Items, core.EncItem{EHL: l, Score: &paillier.Ciphertext{C: w.Score}})
			}
			sd.Inserts = append(sd.Inserts, ins)
		}
		d.Shards[i] = sd
	}
	return d, nil
}

// WriteDelta serializes a mutation delta; params are the relation's EHL
// parameters (needed to validate digest widths on the reading side).
func WriteDelta(w io.Writer, d *mutate.Delta, params ehl.Params) error {
	wd, err := encodeDelta(d, params)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "delta"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := enc.Encode(wd); err != nil {
		return fmt.Errorf("secio: writing delta: %w", err)
	}
	return bw.Flush()
}

// ReadDelta deserializes a mutation delta, returning the EHL parameters
// it was validated against alongside (so a loaded delta can be
// re-serialized without out-of-band schema knowledge).
func ReadDelta(r io.Reader) (*mutate.Delta, ehl.Params, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, ehl.Params{}, fmt.Errorf("secio: reading header: %w", err)
	}
	if err := h.check("delta"); err != nil {
		return nil, ehl.Params{}, err
	}
	var wd wireDelta
	if err := dec.Decode(&wd); err != nil {
		return nil, ehl.Params{}, fmt.Errorf("secio: reading delta: %w", err)
	}
	d, err := decodeDelta(&wd)
	if err != nil {
		return nil, ehl.Params{}, err
	}
	return d, ehl.Params{Kind: ehl.Kind(wd.EHLKind), S: wd.EHLS, H: wd.EHLH}, nil
}

// wireMutableMeta stamps a hosted-mutable stream with its version state.
type wireMutableMeta struct {
	Epoch   uint64
	IDSpace int
	Shards  int
}

// wireMutableShard carries one shard's tombstone bookkeeping; the shard
// body follows as a wireRelation whose N is the TOTAL (live + dead)
// entry count, Live of which lead each list.
type wireMutableShard struct {
	Live    int
	DeadIDs []int
}

// writeMutableBody emits the shared payload of the "hosted-mutable" and
// "mutable-owner" kinds: public key, epoch metadata, then per shard the
// tombstone bookkeeping and the full (live + dead) lists.
func writeMutableBody(enc *gob.Encoder, st *mutate.Relation, pk *paillier.PublicKey) error {
	if st == nil || len(st.Shards) == 0 {
		return errors.New("secio: empty mutable relation")
	}
	if pk == nil || pk.N == nil {
		return errors.New("secio: nil public key")
	}
	if err := enc.Encode(wirePub{N: pk.N}); err != nil {
		return fmt.Errorf("secio: writing public key: %w", err)
	}
	if err := enc.Encode(wireMutableMeta{Epoch: st.Epoch, IDSpace: st.IDSpace, Shards: len(st.Shards)}); err != nil {
		return fmt.Errorf("secio: writing mutable metadata: %w", err)
	}
	for i, s := range st.Shards {
		if err := enc.Encode(wireMutableShard{Live: s.ER.N, DeadIDs: s.DeadIDs}); err != nil {
			return fmt.Errorf("secio: writing shard %d metadata: %w", i, err)
		}
		wr, err := encodeRelation(s.ER)
		if err != nil {
			return err
		}
		// The stored lists run Live+Dead deep; stamp the wire N with the
		// total so the relation codec's shape check holds.
		wr.N = s.ER.N + s.Dead
		if err := enc.Encode(wr); err != nil {
			return fmt.Errorf("secio: writing shard %d: %w", i, err)
		}
	}
	return nil
}

// readMutableBody decodes the shared payload written by
// writeMutableBody.
func readMutableBody(dec *gob.Decoder) (*mutate.Relation, *paillier.PublicKey, error) {
	var wp wirePub
	if err := dec.Decode(&wp); err != nil {
		return nil, nil, fmt.Errorf("secio: reading public key: %w", err)
	}
	pk, err := paillier.NewPublicKeyFromN(wp.N)
	if err != nil {
		return nil, nil, err
	}
	var meta wireMutableMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, nil, fmt.Errorf("secio: reading mutable metadata: %w", err)
	}
	if meta.Shards < 1 || meta.Shards > maxShardCount {
		return nil, nil, fmt.Errorf("secio: shard count %d out of range", meta.Shards)
	}
	if meta.Epoch == 0 {
		return nil, nil, errors.New("secio: mutable bundle has zero epoch")
	}
	st := &mutate.Relation{Epoch: meta.Epoch, IDSpace: meta.IDSpace, Shards: make([]*mutate.Shard, meta.Shards)}
	for i := range st.Shards {
		var ws wireMutableShard
		if err := dec.Decode(&ws); err != nil {
			return nil, nil, fmt.Errorf("secio: reading shard %d metadata: %w", i, err)
		}
		var wr wireRelation
		if err := dec.Decode(&wr); err != nil {
			return nil, nil, fmt.Errorf("secio: reading shard %d: %w", i, err)
		}
		er, err := decodeRelation(&wr)
		if err != nil {
			return nil, nil, err
		}
		if ws.Live < 0 || ws.Live > er.N {
			return nil, nil, fmt.Errorf("secio: shard %d live count %d out of range [0,%d]", i, ws.Live, er.N)
		}
		dead := er.N - ws.Live
		er.N = ws.Live
		st.Shards[i] = &mutate.Shard{ER: er, Dead: dead, DeadIDs: ws.DeadIDs}
	}
	return st, pk, nil
}

// WriteMutableHosted serializes an epoch-stamped hosted relation: the
// full mutable state (live prefixes, tombstone tails, epoch, id space)
// plus the public key — everything the data cloud needs to host it and
// keep applying deltas against it.
func WriteMutableHosted(w io.Writer, st *mutate.Relation, pk *paillier.PublicKey) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "hosted-mutable"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := writeMutableBody(enc, st, pk); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMutableHosted deserializes an epoch-stamped hosted relation. It
// also accepts the pre-mutation "hosted-relation" and "hosted-shards"
// kinds, adopting them as epoch-1 state with no tombstones, so every
// bundle an older build wrote hosts cleanly on a mutation-aware node.
func ReadMutableHosted(r io.Reader) (*mutate.Relation, *paillier.PublicKey, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, nil, fmt.Errorf("secio: reading header: %w", err)
	}
	switch h.Kind {
	case "hosted-relation", "hosted-shards":
		shards, pk, err := readHostedShardsBody(dec, h)
		if err != nil {
			return nil, nil, err
		}
		st, err := mutate.New(shards, 0)
		if err != nil {
			return nil, nil, err
		}
		return st, pk, nil
	}
	if err := h.check("hosted-mutable"); err != nil {
		return nil, nil, err
	}
	return readMutableBody(dec)
}

// OwnerMirror is the owner-side plaintext mirror of a mutable relation:
// the live rows with their global ids, the id allocator's high-water
// mark, and the epoch the owner believes the hosting is at. The facade
// owns the semantics; this is only its persistence shape.
type OwnerMirror struct {
	Name   string
	P, M   int
	NextID int
	Epoch  uint64
	IDs    []int
	Rows   [][]int64
}

// WriteOwnerMutable serializes the owner's mutable-relation bundle: the
// plaintext mirror followed by the encrypted shadow state (the owner's
// copy of exactly what the data cloud hosts). Plaintext rows are inside
// — this stream must never leave the owner.
func WriteOwnerMutable(w io.Writer, mir *OwnerMirror, st *mutate.Relation, pk *paillier.PublicKey) error {
	if mir == nil {
		return errors.New("secio: nil owner mirror")
	}
	if len(mir.IDs) != len(mir.Rows) {
		return fmt.Errorf("secio: mirror has %d ids for %d rows", len(mir.IDs), len(mir.Rows))
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "mutable-owner"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := enc.Encode(mir); err != nil {
		return fmt.Errorf("secio: writing owner mirror: %w", err)
	}
	if err := writeMutableBody(enc, st, pk); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadOwnerMutable deserializes an owner mutable-relation bundle.
func ReadOwnerMutable(r io.Reader) (*OwnerMirror, *mutate.Relation, *paillier.PublicKey, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, nil, nil, fmt.Errorf("secio: reading header: %w", err)
	}
	if err := h.check("mutable-owner"); err != nil {
		return nil, nil, nil, err
	}
	var mir OwnerMirror
	if err := dec.Decode(&mir); err != nil {
		return nil, nil, nil, fmt.Errorf("secio: reading owner mirror: %w", err)
	}
	if len(mir.IDs) != len(mir.Rows) {
		return nil, nil, nil, fmt.Errorf("secio: stored mirror has %d ids for %d rows", len(mir.IDs), len(mir.Rows))
	}
	st, pk, err := readMutableBody(dec)
	if err != nil {
		return nil, nil, nil, err
	}
	return &mir, st, pk, nil
}

// SaveOwnerMutable writes the owner bundle to a 0600 file (it holds
// plaintext rows).
func SaveOwnerMutable(path string, mir *OwnerMirror, st *mutate.Relation, pk *paillier.PublicKey) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := WriteOwnerMutable(f, mir, st, pk); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadOwnerMutable reads an owner bundle from a file.
func LoadOwnerMutable(path string) (*OwnerMirror, *mutate.Relation, *paillier.PublicKey, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	return ReadOwnerMutable(f)
}
