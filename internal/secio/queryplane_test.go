package secio

import (
	"bytes"
	"math/big"
	"path/filepath"
	"testing"

	"repro/internal/ehl"
	"repro/internal/join"
	"repro/internal/knn"
	"repro/internal/paillier"
	"repro/internal/protocols"
)

func TestKNNTokenRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKNNToken(&buf, []int64{3, 1, 4}, 2); err != nil {
		t.Fatalf("WriteKNNToken: %v", err)
	}
	point, k, err := ReadKNNToken(&buf)
	if err != nil {
		t.Fatalf("ReadKNNToken: %v", err)
	}
	if k != 2 || len(point) != 3 || point[0] != 3 || point[1] != 1 || point[2] != 4 {
		t.Fatalf("round trip = point %v k %d", point, k)
	}
	if err := WriteKNNToken(&buf, nil, 1); err == nil {
		t.Fatal("expected error for empty point")
	}
	// Wrong kind is rejected.
	buf.Reset()
	if err := WriteJoinToken(&buf, &join.Token{K: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadKNNToken(&buf); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}

func TestJoinResultRoundTrip(t *testing.T) {
	ct := func(v int64) *paillier.Ciphertext { return &paillier.Ciphertext{C: big.NewInt(v)} }
	tuples := []protocols.JoinTuple{
		{Score: ct(11), Attrs: []*paillier.Ciphertext{ct(21), ct(31)}},
		{Score: ct(12), Attrs: []*paillier.Ciphertext{ct(22), ct(32)}},
	}
	var buf bytes.Buffer
	if err := WriteJoinResult(&buf, tuples); err != nil {
		t.Fatalf("WriteJoinResult: %v", err)
	}
	loaded, err := ReadJoinResult(&buf)
	if err != nil {
		t.Fatalf("ReadJoinResult: %v", err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d tuples, want 2", len(loaded))
	}
	for i, tup := range loaded {
		if tup.Score.C.Cmp(tuples[i].Score.C) != 0 || len(tup.Attrs) != 2 {
			t.Fatalf("tuple %d mismatch: %+v", i, tup)
		}
		for j, a := range tup.Attrs {
			if a.C.Cmp(tuples[i].Attrs[j].C) != 0 {
				t.Fatalf("tuple %d attr %d mismatch", i, j)
			}
		}
	}
	// Empty results round-trip too (a join can select zero tuples).
	buf.Reset()
	if err := WriteJoinResult(&buf, nil); err != nil {
		t.Fatalf("WriteJoinResult(nil): %v", err)
	}
	if loaded, err := ReadJoinResult(&buf); err != nil || len(loaded) != 0 {
		t.Fatalf("empty round trip = %v, %v", loaded, err)
	}
	buf.Reset()
	if err := WriteJoinResult(&buf, []protocols.JoinTuple{{}}); err == nil {
		t.Fatal("expected error for nil score")
	}
}

func TestKNNResultRoundTrip(t *testing.T) {
	ct := func(v int64) *paillier.Ciphertext { return &paillier.Ciphertext{C: big.NewInt(v)} }
	items := []protocols.Item{
		{EHL: &ehl.List{Kind: ehl.KindPlus, Cts: []*paillier.Ciphertext{ct(7), ct(8)}}, Scores: []*paillier.Ciphertext{ct(42)}},
	}
	var buf bytes.Buffer
	if err := WriteKNNResult(&buf, items); err != nil {
		t.Fatalf("WriteKNNResult: %v", err)
	}
	loaded, err := ReadKNNResult(&buf)
	if err != nil {
		t.Fatalf("ReadKNNResult: %v", err)
	}
	if len(loaded) != 1 || len(loaded[0].EHL.Cts) != 2 || loaded[0].Scores[0].C.Cmp(big.NewInt(42)) != 0 {
		t.Fatalf("round trip = %+v", loaded)
	}
	// A top-k result stream is not a kNN result stream.
	buf.Reset()
	if err := WriteQueryResult(&buf, items, 3, true); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadKNNResult(&buf); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}

func TestHostedKNNRelationRoundTrip(t *testing.T) {
	r := getRig(t)
	scheme, err := knn.NewScheme(r.scheme.KeyMaterial(), ehl.Params{Kind: ehl.KindPlus, S: 3}, 20)
	if err != nil {
		t.Fatal(err)
	}
	db, err := scheme.Encrypt(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHostedKNNRelation(&buf, db, 20, r.scheme.PublicKey()); err != nil {
		t.Fatalf("WriteHostedKNNRelation: %v", err)
	}
	loaded, maxScoreBits, pk, err := ReadHostedKNNRelation(&buf)
	if err != nil {
		t.Fatalf("ReadHostedKNNRelation: %v", err)
	}
	if maxScoreBits != 20 || pk.N.Cmp(r.scheme.PublicKey().N) != 0 {
		t.Fatalf("metadata mismatch: bits=%d", maxScoreBits)
	}
	if loaded.Name != db.Name || loaded.N != db.N || loaded.M != db.M || len(loaded.Records) != len(db.Records) {
		t.Fatalf("shape mismatch: %+v", loaded)
	}
	// Stored ciphertexts decrypt to the original attribute values.
	sk := r.scheme.KeyMaterial().Paillier
	rel := testRelation()
	for i, rec := range loaded.Records {
		for j, ct := range rec.Values {
			v, err := sk.Decrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int64() != rel.Rows[i][j] {
				t.Fatalf("record %d value %d = %v, want %d", i, j, v, rel.Rows[i][j])
			}
		}
	}
	if err := WriteHostedKNNRelation(&buf, nil, 20, r.scheme.PublicKey()); err == nil {
		t.Fatal("expected error for nil database")
	}
	if err := WriteHostedKNNRelation(&buf, db, 20, nil); err == nil {
		t.Fatal("expected error for nil public key")
	}
}

func TestJoinOwnerBundleRoundTrip(t *testing.T) {
	scheme, err := join.NewScheme(join.Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20})
	if err != nil {
		t.Fatal(err)
	}
	er, err := scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "join-owner.bundle")
	if err := SaveJoinOwnerBundle(path, scheme); err != nil {
		t.Fatalf("SaveJoinOwnerBundle: %v", err)
	}
	restored, err := LoadJoinOwnerBundle(path)
	if err != nil {
		t.Fatalf("LoadJoinOwnerBundle: %v", err)
	}
	// The restored scheme must issue tokens valid for the ORIGINAL
	// encrypted relation: the attribute permutation key survived, so the
	// permuted positions agree.
	tk1, err := scheme.NewToken(er, er, 0, 0, 1, 1, []int{2}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := restored.NewToken(er, er, 0, 0, 1, 1, []int{2}, nil, 1)
	if err != nil {
		t.Fatalf("restored NewToken: %v", err)
	}
	if tk1.JoinPos1 != tk2.JoinPos1 || tk1.ScorePos1 != tk2.ScorePos1 || tk1.Proj1[0] != tk2.Proj1[0] {
		t.Fatalf("restored token disagrees: %+v vs %+v", tk1, tk2)
	}
	if restored.PublicKey().N.Cmp(scheme.PublicKey().N) != 0 {
		t.Fatal("restored join scheme has different modulus")
	}
	if err := WriteJoinOwnerBundle(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("expected error for nil scheme")
	}
	if _, err := LoadJoinOwnerBundle(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
