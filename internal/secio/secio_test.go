package secio

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/join"
	"repro/internal/transport"
)

type rigT struct {
	scheme *core.Scheme
	client *cloud.Client
}

var (
	rigOnce sync.Once
	rig     *rigT
)

func getRig(t testing.TB) *rigT {
	t.Helper()
	rigOnce.Do(func() {
		scheme, err := core.NewScheme(core.Params{
			KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20,
		})
		if err != nil {
			t.Fatalf("NewScheme: %v", err)
		}
		server, err := cloud.NewServer(scheme.KeyMaterial(), nil)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		client, err := cloud.NewClient(transport.NewLocal(server, nil), scheme.PublicKey(), nil)
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		rig = &rigT{scheme: scheme, client: client}
	})
	return rig
}

func testRelation() *dataset.Relation {
	return &dataset.Relation{
		Name: "fig3",
		Rows: [][]int64{
			{10, 3, 2}, {8, 8, 0}, {5, 7, 6}, {3, 2, 8}, {1, 1, 1},
		},
	}
}

func TestRelationRoundTripAndQuery(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRelation(&buf, er); err != nil {
		t.Fatalf("WriteRelation: %v", err)
	}
	loaded, err := ReadRelation(&buf)
	if err != nil {
		t.Fatalf("ReadRelation: %v", err)
	}
	if loaded.Name != er.Name || loaded.N != er.N || loaded.M != er.M ||
		loaded.MaxScoreBits != er.MaxScoreBits || loaded.EHLParams != er.EHLParams {
		t.Fatalf("metadata mismatch: %+v vs %+v", loaded, er)
	}
	// The loaded relation must be fully queryable.
	tk, err := r.scheme.Token(loaded, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(r.client, loaded)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltStrict})
	if err != nil {
		t.Fatalf("SecQuery over loaded relation: %v", err)
	}
	rev, err := r.scheme.NewRevealer(loaded.N)
	if err != nil {
		t.Fatal(err)
	}
	revealed, err := rev.RevealTopK(res.Items)
	if err != nil {
		t.Fatal(err)
	}
	if revealed[0].Obj != 2 || revealed[0].Worst != 18 {
		t.Fatalf("loaded-relation query top-1 = %+v", revealed[0])
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rel.er")
	if err := SaveRelation(path, er); err != nil {
		t.Fatalf("SaveRelation: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty file")
	}
	loaded, err := LoadRelation(path)
	if err != nil {
		t.Fatalf("LoadRelation: %v", err)
	}
	if loaded.N != er.N {
		t.Fatalf("loaded N = %d", loaded.N)
	}
	if _, err := LoadRelation(filepath.Join(t.TempDir(), "missing.er")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestHeaderValidation(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	// Garbage stream.
	if _, err := ReadRelation(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
	// Wrong kind: a token stream read as a relation.
	var buf bytes.Buffer
	tk, err := r.scheme.Token(er, []int{0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteToken(&buf, tk); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRelation(&buf); err == nil || !strings.Contains(err.Error(), "expected") {
		t.Fatalf("expected kind mismatch error, got %v", err)
	}
	if err := WriteRelation(&buf, nil); err == nil {
		t.Fatal("expected error for nil relation")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.scheme.Token(er, []int{0, 2}, []int64{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteToken(&buf, tk); err != nil {
		t.Fatal(err)
	}
	got, err := ReadToken(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != tk.K || len(got.Lists) != len(tk.Lists) || len(got.Weights) != len(tk.Weights) {
		t.Fatalf("token mismatch: %+v vs %+v", got, tk)
	}
	for i := range tk.Lists {
		if got.Lists[i] != tk.Lists[i] {
			t.Fatalf("list position %d mismatch", i)
		}
	}
	if err := WriteToken(&buf, nil); err == nil {
		t.Fatal("expected error for nil token")
	}
	if _, err := ReadToken(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

func TestJoinRelationRoundTrip(t *testing.T) {
	r := getRig(t)
	params := join.Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 16}
	jScheme, err := join.NewSchemeFromKeys(params, r.scheme.KeyMaterial())
	if err != nil {
		t.Fatal(err)
	}
	rel := &dataset.Relation{Name: "J", Rows: [][]int64{{1, 10}, {2, 20}}}
	er, err := jScheme.EncryptRelation(rel)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJoinRelation(&buf, er, params.EHL); err != nil {
		t.Fatalf("WriteJoinRelation: %v", err)
	}
	loaded, gotParams, err := ReadJoinRelation(&buf)
	if err != nil {
		t.Fatalf("ReadJoinRelation: %v", err)
	}
	if gotParams != params.EHL {
		t.Fatalf("params mismatch: %+v", gotParams)
	}
	if loaded.Name != er.Name || loaded.N != er.N || loaded.M != er.M {
		t.Fatalf("metadata mismatch")
	}
	if len(loaded.Tuples) != 2 || len(loaded.Tuples[0]) != 2 {
		t.Fatalf("tuple shape wrong")
	}
	if err := WriteJoinRelation(&buf, nil, params.EHL); err == nil {
		t.Fatal("expected error for nil join relation")
	}
}

func TestCorruptedStreamRejected(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRelation(&buf, er); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncate mid-stream.
	if _, err := ReadRelation(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}
