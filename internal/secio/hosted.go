package secio

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/core"
	"repro/internal/ehl"
	"repro/internal/join"
	"repro/internal/paillier"
	"repro/internal/protocols"
)

// This file serializes the artifacts the public sectopk facade moves
// between parties: relations bundled with the public key they were
// encrypted under (so S1 can host them from a single file), join
// relations with their score-bit metadata, join tokens, and full query
// results (items + depth + halted flag).

// WriteHostedRelation serializes an encrypted relation together with its
// public key — everything the data cloud needs to host it.
func WriteHostedRelation(w io.Writer, er *core.EncryptedRelation, pk *paillier.PublicKey) error {
	if pk == nil || pk.N == nil {
		return errors.New("secio: nil public key")
	}
	wr, err := encodeRelation(er)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "hosted-relation"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := enc.Encode(wirePub{N: pk.N}); err != nil {
		return fmt.Errorf("secio: writing public key: %w", err)
	}
	if err := enc.Encode(wr); err != nil {
		return fmt.Errorf("secio: writing relation: %w", err)
	}
	return bw.Flush()
}

// ReadHostedRelation deserializes a relation + public key bundle.
func ReadHostedRelation(r io.Reader) (*core.EncryptedRelation, *paillier.PublicKey, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, nil, fmt.Errorf("secio: reading header: %w", err)
	}
	if err := h.check("hosted-relation"); err != nil {
		return nil, nil, err
	}
	var wp wirePub
	if err := dec.Decode(&wp); err != nil {
		return nil, nil, fmt.Errorf("secio: reading public key: %w", err)
	}
	pk, err := paillier.NewPublicKeyFromN(wp.N)
	if err != nil {
		return nil, nil, err
	}
	var wr wireRelation
	if err := dec.Decode(&wr); err != nil {
		return nil, nil, fmt.Errorf("secio: reading relation: %w", err)
	}
	er, err := decodeRelation(&wr)
	if err != nil {
		return nil, nil, err
	}
	return er, pk, nil
}

// WriteHostedShards serializes a sharded encrypted relation (shards plus
// the shared public key). A single shard is written in the legacy
// "hosted-relation" format, so unsharded bundles stay readable by older
// builds; P > 1 uses the "hosted-shards" kind: header, public key, shard
// count, then one relation block per shard.
func WriteHostedShards(w io.Writer, shards []*core.EncryptedRelation, pk *paillier.PublicKey) error {
	if len(shards) == 0 {
		return errors.New("secio: no shards")
	}
	if len(shards) == 1 {
		return WriteHostedRelation(w, shards[0], pk)
	}
	if pk == nil || pk.N == nil {
		return errors.New("secio: nil public key")
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "hosted-shards"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := enc.Encode(wirePub{N: pk.N}); err != nil {
		return fmt.Errorf("secio: writing public key: %w", err)
	}
	if err := enc.Encode(len(shards)); err != nil {
		return fmt.Errorf("secio: writing shard count: %w", err)
	}
	for i, s := range shards {
		wr, err := encodeRelation(s)
		if err != nil {
			return err
		}
		if err := enc.Encode(wr); err != nil {
			return fmt.Errorf("secio: writing shard %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// maxShardCount bounds a decoded shard count so a corrupt stream cannot
// force an absurd allocation.
const maxShardCount = 1 << 16

// ReadHostedShards deserializes a hosted relation bundle in either the
// legacy single-relation format or the sharded one.
func ReadHostedShards(r io.Reader) ([]*core.EncryptedRelation, *paillier.PublicKey, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, nil, fmt.Errorf("secio: reading header: %w", err)
	}
	return readHostedShardsBody(dec, h)
}

// readHostedShardsBody decodes a hosted bundle after its header has been
// consumed (shared with the mutable-hosted reader, which sniffs the kind
// first to adopt pre-mutation bundles).
func readHostedShardsBody(dec *gob.Decoder, h header) ([]*core.EncryptedRelation, *paillier.PublicKey, error) {
	kind := h.Kind
	if kind != "hosted-shards" {
		kind = "hosted-relation"
	}
	if err := h.check(kind); err != nil {
		return nil, nil, err
	}
	var wp wirePub
	if err := dec.Decode(&wp); err != nil {
		return nil, nil, fmt.Errorf("secio: reading public key: %w", err)
	}
	pk, err := paillier.NewPublicKeyFromN(wp.N)
	if err != nil {
		return nil, nil, err
	}
	count := 1
	if kind == "hosted-shards" {
		if err := dec.Decode(&count); err != nil {
			return nil, nil, fmt.Errorf("secio: reading shard count: %w", err)
		}
		if count < 1 || count > maxShardCount {
			return nil, nil, fmt.Errorf("secio: shard count %d out of range", count)
		}
	}
	shards := make([]*core.EncryptedRelation, count)
	for i := range shards {
		var wr wireRelation
		if err := dec.Decode(&wr); err != nil {
			return nil, nil, fmt.Errorf("secio: reading shard %d: %w", i, err)
		}
		er, err := decodeRelation(&wr)
		if err != nil {
			return nil, nil, err
		}
		shards[i] = er
	}
	return shards, pk, nil
}

// wireJoinMeta carries the schema metadata a hosted join relation needs
// beyond the tuples themselves.
type wireJoinMeta struct {
	N            *big.Int // public modulus
	MaxScoreBits int
}

// WriteHostedJoinRelation serializes an encrypted join relation together
// with its public key and score-bit bound.
func WriteHostedJoinRelation(w io.Writer, er *join.EncRelation, params ehl.Params, maxScoreBits int, pk *paillier.PublicKey) error {
	if pk == nil || pk.N == nil {
		return errors.New("secio: nil public key")
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "hosted-join-relation"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := enc.Encode(wireJoinMeta{N: pk.N, MaxScoreBits: maxScoreBits}); err != nil {
		return fmt.Errorf("secio: writing join metadata: %w", err)
	}
	wr, err := encodeJoinRelation(er, params)
	if err != nil {
		return err
	}
	if err := enc.Encode(wr); err != nil {
		return fmt.Errorf("secio: writing join relation: %w", err)
	}
	return bw.Flush()
}

// ReadHostedJoinRelation deserializes a join relation bundle.
func ReadHostedJoinRelation(r io.Reader) (*join.EncRelation, ehl.Params, int, *paillier.PublicKey, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, ehl.Params{}, 0, nil, fmt.Errorf("secio: reading header: %w", err)
	}
	if err := h.check("hosted-join-relation"); err != nil {
		return nil, ehl.Params{}, 0, nil, err
	}
	var meta wireJoinMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, ehl.Params{}, 0, nil, fmt.Errorf("secio: reading join metadata: %w", err)
	}
	pk, err := paillier.NewPublicKeyFromN(meta.N)
	if err != nil {
		return nil, ehl.Params{}, 0, nil, err
	}
	var wr wireJoinRelation
	if err := dec.Decode(&wr); err != nil {
		return nil, ehl.Params{}, 0, nil, fmt.Errorf("secio: reading join relation: %w", err)
	}
	er, params, err := decodeJoinRelation(&wr)
	if err != nil {
		return nil, ehl.Params{}, 0, nil, err
	}
	return er, params, meta.MaxScoreBits, pk, nil
}

// WriteJoinToken serializes a join trapdoor.
func WriteJoinToken(w io.Writer, tk *join.Token) error {
	if tk == nil {
		return errors.New("secio: nil join token")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "join-token"}); err != nil {
		return err
	}
	return enc.Encode(tk)
}

// ReadJoinToken deserializes a join trapdoor.
func ReadJoinToken(r io.Reader) (*join.Token, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("join-token"); err != nil {
		return nil, err
	}
	var tk join.Token
	if err := dec.Decode(&tk); err != nil {
		return nil, err
	}
	return &tk, nil
}

// wireResultMeta carries the scalar outcome of a query run.
type wireResultMeta struct {
	Depth  int
	Halted bool
}

// WriteQueryResult serializes a full query outcome: the encrypted items
// plus the scan depth and halting flag.
func WriteQueryResult(w io.Writer, items []protocols.Item, depth int, halted bool) error {
	wi, err := encodeItems(items)
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "result"}); err != nil {
		return err
	}
	if err := enc.Encode(wireResultMeta{Depth: depth, Halted: halted}); err != nil {
		return err
	}
	return enc.Encode(wi)
}

// ReadQueryResult deserializes a full query outcome.
func ReadQueryResult(r io.Reader) (items []protocols.Item, depth int, halted bool, err error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, 0, false, err
	}
	if err := h.check("result"); err != nil {
		return nil, 0, false, err
	}
	var meta wireResultMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, 0, false, err
	}
	var wi wireItems
	if err := dec.Decode(&wi); err != nil {
		return nil, 0, false, err
	}
	return decodeItems(&wi), meta.Depth, meta.Halted, nil
}
