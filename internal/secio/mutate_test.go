package secio

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ehl"
	"repro/internal/mutate"
	"repro/internal/secerr"
)

// futureStream encodes a header claiming format version 99 for the given
// kind, with no body — readers must reject it on the header alone.
func futureStream(t *testing.T, kind string) io.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(header{Magic: magic, Version: 99, Kind: kind}); err != nil {
		t.Fatalf("encoding future header: %v", err)
	}
	return &buf
}

// TestFutureVersionRejectedEveryKind pins version negotiation for EVERY
// stream kind: a header stamped with an unknown future version fails
// typed bad_request, and the message names both the found version and
// the supported range — what a stranded operator needs to see.
func TestFutureVersionRejectedEveryKind(t *testing.T) {
	readers := map[string]func(r io.Reader) error{
		"relation":      func(r io.Reader) error { _, err := ReadRelation(r); return err },
		"join-relation": func(r io.Reader) error { _, _, err := ReadJoinRelation(r); return err },
		"token":         func(r io.Reader) error { _, err := ReadToken(r); return err },
		"hosted-relation": func(r io.Reader) error {
			_, _, err := ReadHostedRelation(r)
			return err
		},
		"hosted-shards": func(r io.Reader) error {
			_, _, err := ReadHostedShards(r)
			return err
		},
		"hosted-join-relation": func(r io.Reader) error {
			_, _, _, _, err := ReadHostedJoinRelation(r)
			return err
		},
		"join-token": func(r io.Reader) error { _, err := ReadJoinToken(r); return err },
		"result": func(r io.Reader) error {
			_, _, _, err := ReadQueryResult(r)
			return err
		},
		"knn-token":   func(r io.Reader) error { _, _, err := ReadKNNToken(r); return err },
		"join-result": func(r io.Reader) error { _, err := ReadJoinResult(r); return err },
		"knn-result":  func(r io.Reader) error { _, err := ReadKNNResult(r); return err },
		"hosted-knn-relation": func(r io.Reader) error {
			_, _, _, err := ReadHostedKNNRelation(r)
			return err
		},
		"join-owner": func(r io.Reader) error { _, err := ReadJoinOwnerBundle(r); return err },
		"keys":       func(r io.Reader) error { _, err := ReadKeyMaterial(r); return err },
		"owner":      func(r io.Reader) error { _, err := ReadOwnerBundle(r); return err },
		"pubkey":     func(r io.Reader) error { _, err := ReadPublicKey(r); return err },
		"items":      func(r io.Reader) error { _, err := ReadItems(r); return err },
		"delta":      func(r io.Reader) error { _, _, err := ReadDelta(r); return err },
		"hosted-mutable": func(r io.Reader) error {
			_, _, err := ReadMutableHosted(r)
			return err
		},
		"mutable-owner": func(r io.Reader) error {
			_, _, _, err := ReadOwnerMutable(r)
			return err
		},
		"hosted-subset": func(r io.Reader) error {
			_, _, _, _, _, err := ReadHostedSubset(r)
			return err
		},
		"candidates": func(r io.Reader) error { _, err := ReadCandidates(r); return err },
	}
	for kind, read := range readers {
		t.Run(kind, func(t *testing.T) {
			err := read(futureStream(t, kind))
			if err == nil {
				t.Fatalf("%s reader accepted a version-99 stream", kind)
			}
			if !errors.Is(err, secerr.ErrBadRequest) {
				t.Fatalf("%s: err = %v (code %q), want bad_request", kind, err, secerr.CodeOf(err))
			}
			msg := err.Error()
			if !strings.Contains(msg, "99") {
				t.Fatalf("%s: error %q does not name the found version", kind, msg)
			}
			if !strings.Contains(msg, "1..2") {
				t.Fatalf("%s: error %q does not name the supported range", kind, msg)
			}
		})
	}
	// The legacy-adoption sniff in ReadMutableHosted must not bypass the
	// version gate for the kinds it adopts.
	for _, kind := range []string{"hosted-relation", "hosted-shards"} {
		if _, _, err := ReadMutableHosted(futureStream(t, kind)); !errors.Is(err, secerr.ErrBadRequest) {
			t.Fatalf("ReadMutableHosted(%s v99): err = %v, want bad_request", kind, err)
		}
	}
}

// TestDeltaRoundTrip serializes a mutation delta (the Client.Apply wire
// payload) and checks every field — idempotency key, base epoch, shard
// targeting, delete positions, insert ciphertexts — survives, along with
// the EHL parameters the decoder validated against.
func TestDeltaRoundTrip(t *testing.T) {
	r := getRig(t)
	params := ehl.Params{Kind: ehl.KindPlus, S: 3}
	item, err := r.scheme.EncryptEntry(7, 42)
	if err != nil {
		t.Fatal(err)
	}
	d := &mutate.Delta{
		BaseEpoch: 3,
		ID:        "delta-abc123",
		Shards: []mutate.ShardDelta{
			{
				Shard:   1,
				Deletes: []mutate.DeleteRow{{ID: 4, Pos: []int{0, 2, 1}}},
				Inserts: []mutate.InsertRow{{ID: 7, Pos: []int{2, 0, 1}, Items: []core.EncItem{item, item, item}}},
			},
			{Shard: 0, Deletes: []mutate.DeleteRow{{ID: 2, Pos: []int{1, 1, 0}}}},
		},
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d, params); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	got, gotParams, err := ReadDelta(&buf)
	if err != nil {
		t.Fatalf("ReadDelta: %v", err)
	}
	if gotParams != params {
		t.Fatalf("params mismatch: %+v vs %+v", gotParams, params)
	}
	if got.BaseEpoch != d.BaseEpoch || got.ID != d.ID || len(got.Shards) != len(d.Shards) {
		t.Fatalf("delta metadata mismatch: %+v", got)
	}
	sd := got.Shards[0]
	if sd.Shard != 1 || len(sd.Deletes) != 1 || len(sd.Inserts) != 1 {
		t.Fatalf("shard 0 shape wrong: %+v", sd)
	}
	if sd.Deletes[0].ID != 4 || len(sd.Deletes[0].Pos) != 3 || sd.Deletes[0].Pos[1] != 2 {
		t.Fatalf("delete row mismatch: %+v", sd.Deletes[0])
	}
	ins := sd.Inserts[0]
	if ins.ID != 7 || len(ins.Items) != 3 || len(ins.Items[0].EHL.Cts) != params.Width() {
		t.Fatalf("insert row mismatch: %+v", ins)
	}
	if ins.Items[0].Score.C.Cmp(item.Score.C) != 0 {
		t.Fatal("insert score ciphertext mutated in transit")
	}
	if got.Shards[1].Shard != 0 || len(got.Shards[1].Inserts) != 0 {
		t.Fatalf("shard 1 mismatch: %+v", got.Shards[1])
	}
	// Error paths.
	if err := WriteDelta(io.Discard, nil, params); err == nil {
		t.Fatal("expected error for nil delta")
	}
	var wrongKind bytes.Buffer
	if err := WriteToken(&wrongKind, &core.Token{K: 1, Lists: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDelta(&wrongKind); !errors.Is(err, secerr.ErrBadRequest) {
		t.Fatalf("ReadDelta(token stream) = %v, want bad_request", err)
	}
}

// TestMutableHostedRoundTrip serializes an epoch-stamped hosted relation
// with tombstone debt and checks the mutable bookkeeping — epoch, id
// space, live prefixes, dead tails, tombstoned ids — all survive.
func TestMutableHostedRoundTrip(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	st, err := mutate.New([]*core.EncryptedRelation{er}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-roll post-mutation state: epoch advanced, last row of each
	// list tombstoned (lists stay full depth; N shrinks to the live
	// prefix), id space grown past the row count.
	st.Epoch = 5
	st.IDSpace = 9
	sh := st.Shards[0]
	sh.ER.N--
	sh.Dead = 1
	sh.DeadIDs = []int{4}
	var buf bytes.Buffer
	if err := WriteMutableHosted(&buf, st, r.scheme.PublicKey()); err != nil {
		t.Fatalf("WriteMutableHosted: %v", err)
	}
	got, pk, err := ReadMutableHosted(&buf)
	if err != nil {
		t.Fatalf("ReadMutableHosted: %v", err)
	}
	if pk.N.Cmp(r.scheme.PublicKey().N) != 0 {
		t.Fatal("public key mismatch")
	}
	if got.Epoch != 5 || got.IDSpace != 9 || len(got.Shards) != 1 {
		t.Fatalf("mutable metadata mismatch: epoch=%d idspace=%d shards=%d", got.Epoch, got.IDSpace, len(got.Shards))
	}
	gs := got.Shards[0]
	if gs.ER.N != sh.ER.N || gs.Dead != 1 || len(gs.DeadIDs) != 1 || gs.DeadIDs[0] != 4 {
		t.Fatalf("tombstone bookkeeping mismatch: %+v", gs)
	}
	for p, list := range gs.ER.Lists {
		if len(list) != gs.ER.N+gs.Dead {
			t.Fatalf("list %d stored %d entries, want live+dead = %d", p, len(list), gs.ER.N+gs.Dead)
		}
	}
	// The live view must be queryable shape: N live entries per list.
	live := got.LiveShards()[0]
	for p, list := range live.Lists {
		if len(list) != live.N {
			t.Fatalf("live view list %d has %d entries for N=%d", p, len(list), live.N)
		}
	}
	if err := WriteMutableHosted(io.Discard, nil, r.scheme.PublicKey()); err == nil {
		t.Fatal("expected error for nil mutable relation")
	}
}

// TestMutableHostedAdoptsLegacy checks ReadMutableHosted accepts the
// pre-mutation hosted kinds, adopting them as epoch-1 state with no
// tombstone debt — every bundle an older build wrote hosts cleanly.
func TestMutableHostedAdoptsLegacy(t *testing.T) {
	r := getRig(t)
	er1, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	// Sharded legacy bundle ("hosted-shards").
	var buf bytes.Buffer
	if err := WriteHostedShards(&buf, []*core.EncryptedRelation{er1, er1}, r.scheme.PublicKey()); err != nil {
		t.Fatalf("WriteHostedShards: %v", err)
	}
	st, _, err := ReadMutableHosted(&buf)
	if err != nil {
		t.Fatalf("ReadMutableHosted(hosted-shards): %v", err)
	}
	if st.Epoch != 1 || st.DeadRows() != 0 || len(st.Shards) != 2 {
		t.Fatalf("adopted state wrong: epoch=%d dead=%d shards=%d", st.Epoch, st.DeadRows(), len(st.Shards))
	}
	if st.LiveRows() != 2*er1.N {
		t.Fatalf("adopted live rows = %d, want %d", st.LiveRows(), 2*er1.N)
	}
	// Single-relation legacy bundle ("hosted-relation").
	buf.Reset()
	if err := WriteHostedRelation(&buf, er1, r.scheme.PublicKey()); err != nil {
		t.Fatalf("WriteHostedRelation: %v", err)
	}
	st, _, err = ReadMutableHosted(&buf)
	if err != nil {
		t.Fatalf("ReadMutableHosted(hosted-relation): %v", err)
	}
	if st.Epoch != 1 || len(st.Shards) != 1 || st.IDSpace != er1.N {
		t.Fatalf("adopted single-shard state wrong: %+v", st)
	}
}

// TestOwnerMutableRoundTrip serializes the owner's mirror bundle
// (plaintext rows + encrypted shadow) and checks both halves survive.
func TestOwnerMutableRoundTrip(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	st, err := mutate.New([]*core.EncryptedRelation{er}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Epoch = 2
	mir := &OwnerMirror{
		Name: "fig3", P: 1, M: 3, NextID: 6, Epoch: 2,
		IDs:  []int{0, 1, 2, 3, 5},
		Rows: [][]int64{{10, 3, 2}, {8, 8, 0}, {5, 7, 6}, {3, 2, 8}, {9, 9, 9}},
	}
	var buf bytes.Buffer
	if err := WriteOwnerMutable(&buf, mir, st, r.scheme.PublicKey()); err != nil {
		t.Fatalf("WriteOwnerMutable: %v", err)
	}
	gotMir, gotSt, pk, err := ReadOwnerMutable(&buf)
	if err != nil {
		t.Fatalf("ReadOwnerMutable: %v", err)
	}
	if pk.N.Cmp(r.scheme.PublicKey().N) != 0 {
		t.Fatal("public key mismatch")
	}
	if gotMir.Name != mir.Name || gotMir.P != 1 || gotMir.M != 3 || gotMir.NextID != 6 || gotMir.Epoch != 2 {
		t.Fatalf("mirror metadata mismatch: %+v", gotMir)
	}
	if len(gotMir.IDs) != 5 || gotMir.IDs[4] != 5 || gotMir.Rows[4][0] != 9 {
		t.Fatalf("mirror rows mismatch: %+v", gotMir)
	}
	if gotSt.Epoch != 2 || gotSt.LiveRows() != er.N {
		t.Fatalf("shadow state mismatch: epoch=%d live=%d", gotSt.Epoch, gotSt.LiveRows())
	}
	// Error paths: nil mirror, mismatched ids/rows, wrong kind.
	if err := WriteOwnerMutable(io.Discard, nil, st, r.scheme.PublicKey()); err == nil {
		t.Fatal("expected error for nil mirror")
	}
	bad := &OwnerMirror{Name: "x", IDs: []int{1, 2}, Rows: [][]int64{{1}}}
	if err := WriteOwnerMutable(io.Discard, bad, st, r.scheme.PublicKey()); err == nil {
		t.Fatal("expected error for mismatched ids/rows")
	}
	buf.Reset()
	if err := WriteMutableHosted(&buf, st, r.scheme.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadOwnerMutable(&buf); !errors.Is(err, secerr.ErrBadRequest) {
		t.Fatalf("ReadOwnerMutable(hosted-mutable stream) = %v, want bad_request", err)
	}
}
