package secio

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"os"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/protocols"
)

// wireKeys carries the factorization; everything else is derived on load.
type wireKeys struct {
	P, Q *big.Int
}

// WriteKeyMaterial serializes the secret key material the data owner
// provisions to the crypto cloud S2. Handle with the care the trust model
// demands: whoever reads this stream can decrypt the database.
func WriteKeyMaterial(w io.Writer, keys *cloud.KeyMaterial) error {
	if keys == nil || keys.Paillier == nil {
		return errors.New("secio: nil key material")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "keys"}); err != nil {
		return err
	}
	return enc.Encode(wireKeys{P: keys.Paillier.P, Q: keys.Paillier.Q})
}

// ReadKeyMaterial reconstructs key material from a stream.
func ReadKeyMaterial(r io.Reader) (*cloud.KeyMaterial, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("keys"); err != nil {
		return nil, err
	}
	var wk wireKeys
	if err := dec.Decode(&wk); err != nil {
		return nil, err
	}
	if wk.P == nil || wk.Q == nil {
		return nil, errors.New("secio: incomplete key material")
	}
	sk, err := paillier.FromPrimes(wk.P, wk.Q)
	if err != nil {
		return nil, fmt.Errorf("secio: rebuilding key: %w", err)
	}
	return cloud.KeyMaterialFromPaillier(sk)
}

// SaveKeyMaterial writes key material to a file with owner-only
// permissions.
func SaveKeyMaterial(path string, keys *cloud.KeyMaterial) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := WriteKeyMaterial(f, keys); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadKeyMaterial reads key material from a file.
func LoadKeyMaterial(path string) (*cloud.KeyMaterial, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadKeyMaterial(f)
}

// wireOwnerBundle persists everything the data owner needs to restore the
// scheme: the factorization, the scheme parameters, and the symmetric
// secrets. The kNN digest key is deliberately NOT stored — the facade
// derives it deterministically from Master (domain-separated), so old
// and new bundles restore identically.
type wireOwnerBundle struct {
	P, Q         *big.Int
	KeyBits      int
	EHLKind      int
	EHLS, EHLH   int
	MaxScoreBits int
	Master, Perm []byte
}

// WriteOwnerBundle persists the owner's full scheme state. This stream
// must never leave the owner (it contains everything).
func WriteOwnerBundle(w io.Writer, scheme *core.Scheme) error {
	if scheme == nil {
		return errors.New("secio: nil scheme")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "owner"}); err != nil {
		return err
	}
	params := scheme.Params()
	secrets := scheme.Secrets()
	keys := scheme.KeyMaterial()
	return enc.Encode(wireOwnerBundle{
		P: keys.Paillier.P, Q: keys.Paillier.Q,
		KeyBits: params.KeyBits,
		EHLKind: int(params.EHL.Kind), EHLS: params.EHL.S, EHLH: params.EHL.H,
		MaxScoreBits: params.MaxScoreBits,
		Master:       secrets.Master, Perm: secrets.Perm,
	})
}

// ReadOwnerBundle restores the owner's scheme.
func ReadOwnerBundle(r io.Reader) (*core.Scheme, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("owner"); err != nil {
		return nil, err
	}
	var wb wireOwnerBundle
	if err := dec.Decode(&wb); err != nil {
		return nil, err
	}
	sk, err := paillier.FromPrimes(wb.P, wb.Q)
	if err != nil {
		return nil, fmt.Errorf("secio: rebuilding key: %w", err)
	}
	keys, err := cloud.KeyMaterialFromPaillier(sk)
	if err != nil {
		return nil, err
	}
	params := core.Params{
		KeyBits:      wb.KeyBits,
		EHL:          ehl.Params{Kind: ehl.Kind(wb.EHLKind), S: wb.EHLS, H: wb.EHLH},
		MaxScoreBits: wb.MaxScoreBits,
	}
	return core.RestoreScheme(params, keys, core.Secrets{Master: wb.Master, Perm: wb.Perm})
}

// SaveOwnerBundle writes the owner bundle to a 0600 file.
func SaveOwnerBundle(path string, scheme *core.Scheme) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := WriteOwnerBundle(f, scheme); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadOwnerBundle reads an owner bundle from a file.
func LoadOwnerBundle(path string) (*core.Scheme, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadOwnerBundle(f)
}

// wirePub carries just the public modulus for provisioning S1.
type wirePub struct {
	N *big.Int
}

// WritePublicKey serializes the public key (what S1 is allowed to hold).
// The node CLI no longer ships a standalone public-key file — the key
// travels embedded in the hosted-relation bundle (WriteHostedRelation) —
// but the bare format remains supported for deployments that provision
// the key out of band.
func WritePublicKey(w io.Writer, pk *paillier.PublicKey) error {
	if pk == nil || pk.N == nil {
		return errors.New("secio: nil public key")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "pubkey"}); err != nil {
		return err
	}
	return enc.Encode(wirePub{N: pk.N})
}

// ReadPublicKey deserializes a public key.
func ReadPublicKey(r io.Reader) (*paillier.PublicKey, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("pubkey"); err != nil {
		return nil, err
	}
	var wp wirePub
	if err := dec.Decode(&wp); err != nil {
		return nil, err
	}
	return paillier.NewPublicKeyFromN(wp.N)
}

// SavePublicKey writes the public key to a file.
func SavePublicKey(path string, pk *paillier.PublicKey) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePublicKey(f, pk); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPublicKey reads a public key from a file.
func LoadPublicKey(path string) (*paillier.PublicKey, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPublicKey(f)
}

// wireItem flattens one result item.
type wireItem struct {
	EHL    []*big.Int
	Scores []*big.Int
}

// wireItems carries a query result.
type wireItems struct {
	EHLKind int
	Items   []wireItem
}

// encodeItems flattens result items to their wire form.
func encodeItems(items []protocols.Item) (*wireItems, error) {
	wi := &wireItems{}
	for i, it := range items {
		if it.EHL == nil {
			return nil, fmt.Errorf("secio: item %d missing EHL", i)
		}
		wi.EHLKind = int(it.EHL.Kind)
		row := wireItem{}
		for _, ct := range it.EHL.Cts {
			row.EHL = append(row.EHL, ct.C)
		}
		for _, s := range it.Scores {
			if s == nil {
				return nil, fmt.Errorf("secio: item %d has nil score", i)
			}
			row.Scores = append(row.Scores, s.C)
		}
		wi.Items = append(wi.Items, row)
	}
	return wi, nil
}

// decodeItems rebuilds result items from their wire form.
func decodeItems(wi *wireItems) []protocols.Item {
	out := make([]protocols.Item, len(wi.Items))
	for i, row := range wi.Items {
		it := protocols.Item{EHL: &ehl.List{Kind: ehl.Kind(wi.EHLKind)}}
		for _, v := range row.EHL {
			it.EHL.Cts = append(it.EHL.Cts, &paillier.Ciphertext{C: v})
		}
		for _, v := range row.Scores {
			it.Scores = append(it.Scores, &paillier.Ciphertext{C: v})
		}
		out[i] = it
	}
	return out
}

// WriteItems serializes encrypted result items (what S1 returns to the
// client).
func WriteItems(w io.Writer, items []protocols.Item) error {
	wi, err := encodeItems(items)
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "items"}); err != nil {
		return err
	}
	return enc.Encode(wi)
}

// ReadItems deserializes encrypted result items.
func ReadItems(r io.Reader) ([]protocols.Item, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("items"); err != nil {
		return nil, err
	}
	var wi wireItems
	if err := dec.Decode(&wi); err != nil {
		return nil, err
	}
	return decodeItems(&wi), nil
}
