package secio

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/core"
	"repro/internal/paillier"
)

// This file serializes the cluster plane's two artifacts. A hosted
// subset is the handoff format for provisioning shards onto (or moving
// them between) S1 cluster members: the member's shard blocks plus the
// placement metadata — which global shard indices these are, how many
// shards the whole relation has, and the epoch the subset was cut at —
// that the member announces back to the coordinator in its Hello. A
// candidate set is one shard's contribution to a distributed merge
// (core.CandidateSet), shipped from member to coordinator over the
// cluster wire.

// wireSubsetMeta carries a subset's placement within the global
// relation.
type wireSubsetMeta struct {
	// Total is the global shard count P of the relation being tiled.
	Total int
	// Indices are the global shard indices hosted by this subset, each
	// in [0, Total); the relation blocks that follow align with them.
	Indices []int
	// Epoch is the relation epoch the subset was cut at. Coordinators
	// pin candidate requests to it so a cluster never merges candidates
	// from mixed epochs.
	Epoch uint64
}

// WriteHostedSubset serializes one cluster member's shard subset: the
// shared public key, the placement metadata, then one relation block per
// hosted shard (kind "hosted-subset").
func WriteHostedSubset(w io.Writer, total int, indices []int, shards []*core.EncryptedRelation, epoch uint64, pk *paillier.PublicKey) error {
	if pk == nil || pk.N == nil {
		return errors.New("secio: nil public key")
	}
	if err := checkSubsetPlacement(total, indices); err != nil {
		return err
	}
	if len(shards) != len(indices) {
		return fmt.Errorf("secio: subset has %d shards for %d indices", len(shards), len(indices))
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "hosted-subset"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := enc.Encode(wirePub{N: pk.N}); err != nil {
		return fmt.Errorf("secio: writing public key: %w", err)
	}
	if err := enc.Encode(wireSubsetMeta{Total: total, Indices: indices, Epoch: epoch}); err != nil {
		return fmt.Errorf("secio: writing subset metadata: %w", err)
	}
	for i, s := range shards {
		wr, err := encodeRelation(s)
		if err != nil {
			return err
		}
		if err := enc.Encode(wr); err != nil {
			return fmt.Errorf("secio: writing subset shard %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadHostedSubset deserializes a hosted shard subset.
func ReadHostedSubset(r io.Reader) (total int, indices []int, shards []*core.EncryptedRelation, epoch uint64, pk *paillier.PublicKey, err error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return 0, nil, nil, 0, nil, fmt.Errorf("secio: reading header: %w", err)
	}
	if err := h.check("hosted-subset"); err != nil {
		return 0, nil, nil, 0, nil, err
	}
	var wp wirePub
	if err := dec.Decode(&wp); err != nil {
		return 0, nil, nil, 0, nil, fmt.Errorf("secio: reading public key: %w", err)
	}
	pk, err = paillier.NewPublicKeyFromN(wp.N)
	if err != nil {
		return 0, nil, nil, 0, nil, err
	}
	var meta wireSubsetMeta
	if err := dec.Decode(&meta); err != nil {
		return 0, nil, nil, 0, nil, fmt.Errorf("secio: reading subset metadata: %w", err)
	}
	if err := checkSubsetPlacement(meta.Total, meta.Indices); err != nil {
		return 0, nil, nil, 0, nil, err
	}
	shards = make([]*core.EncryptedRelation, len(meta.Indices))
	for i := range shards {
		var wr wireRelation
		if err := dec.Decode(&wr); err != nil {
			return 0, nil, nil, 0, nil, fmt.Errorf("secio: reading subset shard %d: %w", i, err)
		}
		er, err := decodeRelation(&wr)
		if err != nil {
			return 0, nil, nil, 0, nil, err
		}
		shards[i] = er
	}
	return meta.Total, meta.Indices, shards, meta.Epoch, pk, nil
}

// checkSubsetPlacement validates a subset's placement metadata: a sane
// total, at least one hosted index, every index in range, no duplicates.
func checkSubsetPlacement(total int, indices []int) error {
	if total < 1 || total > maxShardCount {
		return fmt.Errorf("secio: subset shard total %d out of range", total)
	}
	if len(indices) < 1 || len(indices) > total {
		return fmt.Errorf("secio: subset hosts %d of %d shards", len(indices), total)
	}
	seen := make(map[int]bool, len(indices))
	for _, ix := range indices {
		if ix < 0 || ix >= total {
			return fmt.Errorf("secio: subset shard index %d out of range [0,%d)", ix, total)
		}
		if seen[ix] {
			return fmt.Errorf("secio: subset shard index %d duplicated", ix)
		}
		seen[ix] = true
	}
	return nil
}

// wireCandMeta carries a candidate set's scalar fields and residual
// bounds; the items ride in a wireItems block after it.
type wireCandMeta struct {
	Depth     int
	Halted    bool
	Residuals []*big.Int
}

// WriteCandidates serializes one shard's candidate contribution to a
// distributed merge (kind "candidates").
func WriteCandidates(w io.Writer, cs *core.CandidateSet) error {
	if cs == nil {
		return errors.New("secio: nil candidate set")
	}
	wi, err := encodeItems(cs.Items)
	if err != nil {
		return err
	}
	meta := wireCandMeta{Depth: cs.Depth, Halted: cs.Halted}
	meta.Residuals = make([]*big.Int, len(cs.Residuals))
	for i, ct := range cs.Residuals {
		if ct == nil || ct.C == nil {
			return fmt.Errorf("secio: nil residual bound %d", i)
		}
		meta.Residuals[i] = ct.C
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "candidates"}); err != nil {
		return err
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	return enc.Encode(wi)
}

// ReadCandidates deserializes one shard's candidate contribution.
func ReadCandidates(r io.Reader) (*core.CandidateSet, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("candidates"); err != nil {
		return nil, err
	}
	var meta wireCandMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, err
	}
	var wi wireItems
	if err := dec.Decode(&wi); err != nil {
		return nil, err
	}
	cs := &core.CandidateSet{Items: decodeItems(&wi), Depth: meta.Depth, Halted: meta.Halted}
	cs.Residuals = make([]*paillier.Ciphertext, len(meta.Residuals))
	for i, v := range meta.Residuals {
		if v == nil {
			return nil, fmt.Errorf("secio: nil residual bound %d", i)
		}
		cs.Residuals[i] = &paillier.Ciphertext{C: v}
	}
	return cs, nil
}
