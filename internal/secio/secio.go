// Package secio serializes the system's persistent artifacts: encrypted
// relations (the ER a data owner uploads to S1), encrypted join
// relations, and query tokens. The format is a versioned gob stream, so
// a stored ER can be loaded by a different process — the deployment shape
// of Section 3.2 where the data owner uploads once and goes offline.
//
// Only public/encrypted material is ever serialized here; key material
// stays with the owner and the crypto cloud.
package secio

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"os"

	"repro/internal/core"
	"repro/internal/ehl"
	"repro/internal/join"
	"repro/internal/paillier"
	"repro/internal/secerr"
)

// magic identifies sectopk gob streams; the version range gates format
// changes. Writers stamp the current version; readers accept the whole
// [minVersion, version] range, so every v1 artifact stays loadable.
// Version 2 added the mutation-plane kinds ("delta", "hosted-mutable",
// "mutable-owner"); the pre-mutation kinds carry the same payloads in
// both versions.
const (
	magic      = "sectopk-er"
	version    = 2
	minVersion = 1
)

// header leads every stream.
type header struct {
	Magic   string
	Version int
	Kind    string // "relation", "join-relation", "token"
}

// wireEncItem flattens one encrypted item.
type wireEncItem struct {
	EHL   []*big.Int
	Score *big.Int
}

// wireRelation flattens core.EncryptedRelation.
type wireRelation struct {
	Name         string
	N, M         int
	EHLKind      int
	EHLS         int
	EHLH         int
	MaxScoreBits int
	Lists        [][]wireEncItem
}

// encodeRelation flattens an encrypted relation to its wire form.
func encodeRelation(er *core.EncryptedRelation) (*wireRelation, error) {
	if er == nil {
		return nil, errors.New("secio: nil relation")
	}
	wr := &wireRelation{
		Name: er.Name, N: er.N, M: er.M,
		EHLKind: int(er.EHLParams.Kind), EHLS: er.EHLParams.S, EHLH: er.EHLParams.H,
		MaxScoreBits: er.MaxScoreBits,
		Lists:        make([][]wireEncItem, len(er.Lists)),
	}
	for i, list := range er.Lists {
		wl := make([]wireEncItem, len(list))
		for j, it := range list {
			if it.EHL == nil || it.Score == nil {
				return nil, fmt.Errorf("secio: incomplete item at (%d,%d)", i, j)
			}
			w := wireEncItem{Score: it.Score.C}
			for _, ct := range it.EHL.Cts {
				w.EHL = append(w.EHL, ct.C)
			}
			wl[j] = w
		}
		wr.Lists[i] = wl
	}
	return wr, nil
}

// WriteRelation serializes an encrypted relation.
func WriteRelation(w io.Writer, er *core.EncryptedRelation) error {
	wr, err := encodeRelation(er)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "relation"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := enc.Encode(wr); err != nil {
		return fmt.Errorf("secio: writing relation: %w", err)
	}
	return bw.Flush()
}

// ReadRelation deserializes an encrypted relation.
func ReadRelation(r io.Reader) (*core.EncryptedRelation, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("secio: reading header: %w", err)
	}
	if err := h.check("relation"); err != nil {
		return nil, err
	}
	var wr wireRelation
	if err := dec.Decode(&wr); err != nil {
		return nil, fmt.Errorf("secio: reading relation: %w", err)
	}
	return decodeRelation(&wr)
}

// decodeRelation rebuilds an encrypted relation from its wire form.
func decodeRelation(wr *wireRelation) (*core.EncryptedRelation, error) {
	params := ehl.Params{Kind: ehl.Kind(wr.EHLKind), S: wr.EHLS, H: wr.EHLH}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("secio: stored EHL params invalid: %w", err)
	}
	er := &core.EncryptedRelation{
		Name: wr.Name, N: wr.N, M: wr.M,
		EHLParams: params, MaxScoreBits: wr.MaxScoreBits,
		Lists: make([][]core.EncItem, len(wr.Lists)),
	}
	if len(wr.Lists) != wr.M {
		return nil, fmt.Errorf("secio: stored relation has %d lists for M=%d", len(wr.Lists), wr.M)
	}
	for i, wl := range wr.Lists {
		if len(wl) != wr.N {
			return nil, fmt.Errorf("secio: list %d has %d items for N=%d", i, len(wl), wr.N)
		}
		list := make([]core.EncItem, len(wl))
		for j, w := range wl {
			if w.Score == nil || len(w.EHL) != params.Width() {
				return nil, fmt.Errorf("secio: malformed item at (%d,%d)", i, j)
			}
			l := &ehl.List{Kind: params.Kind}
			for _, v := range w.EHL {
				l.Cts = append(l.Cts, &paillier.Ciphertext{C: v})
			}
			list[j] = core.EncItem{EHL: l, Score: &paillier.Ciphertext{C: w.Score}}
		}
		er.Lists[i] = list
	}
	return er, nil
}

// check validates a stream header. All failures are typed
// secerr.CodeBadRequest so callers (and wire peers) can distinguish "you
// handed me a bad/foreign/future artifact" from internal faults; the
// version branch names both the found version and the supported range,
// which is what a stranded operator needs to see.
func (h header) check(kind string) error {
	if h.Magic != magic {
		return secerr.New(secerr.CodeBadRequest, "secio: not a sectopk stream (magic %q)", h.Magic)
	}
	if h.Version < minVersion || h.Version > version {
		return secerr.New(secerr.CodeBadRequest,
			"secio: unsupported format version %d (supported %d..%d)", h.Version, minVersion, version)
	}
	if h.Kind != kind {
		return secerr.New(secerr.CodeBadRequest, "secio: stream holds %q, expected %q", h.Kind, kind)
	}
	return nil
}

// SaveRelation writes the relation to a file.
func SaveRelation(path string, er *core.EncryptedRelation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteRelation(f, er); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRelation reads a relation from a file.
func LoadRelation(path string) (*core.EncryptedRelation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRelation(f)
}

// wireJoinAttr flattens one encrypted join attribute cell.
type wireJoinAttr struct {
	EHL   []*big.Int
	Value *big.Int
}

// wireJoinRelation flattens join.EncRelation.
type wireJoinRelation struct {
	Name    string
	N, M    int
	EHLKind int
	EHLS    int
	EHLH    int
	Tuples  [][]wireJoinAttr
}

// encodeJoinRelation flattens a join relation to its wire form.
func encodeJoinRelation(er *join.EncRelation, params ehl.Params) (*wireJoinRelation, error) {
	if er == nil {
		return nil, errors.New("secio: nil join relation")
	}
	wr := &wireJoinRelation{
		Name: er.Name, N: er.N, M: er.M,
		EHLKind: int(params.Kind), EHLS: params.S, EHLH: params.H,
		Tuples: make([][]wireJoinAttr, len(er.Tuples)),
	}
	for i, tuple := range er.Tuples {
		wt := make([]wireJoinAttr, len(tuple))
		for j, a := range tuple {
			if a.EHL == nil || a.Value == nil {
				return nil, fmt.Errorf("secio: incomplete join attr at (%d,%d)", i, j)
			}
			wa := wireJoinAttr{Value: a.Value.C}
			for _, ct := range a.EHL.Cts {
				wa.EHL = append(wa.EHL, ct.C)
			}
			wt[j] = wa
		}
		wr.Tuples[i] = wt
	}
	return wr, nil
}

// WriteJoinRelation serializes an encrypted join relation.
func WriteJoinRelation(w io.Writer, er *join.EncRelation, params ehl.Params) error {
	wr, err := encodeJoinRelation(er, params)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "join-relation"}); err != nil {
		return err
	}
	if err := enc.Encode(wr); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadJoinRelation deserializes an encrypted join relation.
func ReadJoinRelation(r io.Reader) (*join.EncRelation, ehl.Params, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, ehl.Params{}, err
	}
	if err := h.check("join-relation"); err != nil {
		return nil, ehl.Params{}, err
	}
	var wr wireJoinRelation
	if err := dec.Decode(&wr); err != nil {
		return nil, ehl.Params{}, err
	}
	return decodeJoinRelation(&wr)
}

// decodeJoinRelation rebuilds a join relation from its wire form.
func decodeJoinRelation(wr *wireJoinRelation) (*join.EncRelation, ehl.Params, error) {
	params := ehl.Params{Kind: ehl.Kind(wr.EHLKind), S: wr.EHLS, H: wr.EHLH}
	if err := params.Validate(); err != nil {
		return nil, ehl.Params{}, err
	}
	er := &join.EncRelation{Name: wr.Name, N: wr.N, M: wr.M, Tuples: make([][]join.EncAttr, len(wr.Tuples))}
	for i, wt := range wr.Tuples {
		tuple := make([]join.EncAttr, len(wt))
		for j, wa := range wt {
			if wa.Value == nil || len(wa.EHL) != params.Width() {
				return nil, ehl.Params{}, fmt.Errorf("secio: malformed join attr at (%d,%d)", i, j)
			}
			l := &ehl.List{Kind: params.Kind}
			for _, v := range wa.EHL {
				l.Cts = append(l.Cts, &paillier.Ciphertext{C: v})
			}
			tuple[j] = join.EncAttr{EHL: l, Value: &paillier.Ciphertext{C: wa.Value}}
		}
		er.Tuples[i] = tuple
	}
	return er, params, nil
}

// WriteToken serializes a query token (what an authorized client sends to
// S1).
func WriteToken(w io.Writer, tk *core.Token) error {
	if tk == nil {
		return errors.New("secio: nil token")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "token"}); err != nil {
		return err
	}
	return enc.Encode(tk)
}

// ReadToken deserializes a query token.
func ReadToken(r io.Reader) (*core.Token, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("token"); err != nil {
		return nil, err
	}
	var tk core.Token
	if err := dec.Decode(&tk); err != nil {
		return nil, err
	}
	return &tk, nil
}
