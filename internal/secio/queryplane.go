package secio

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"os"

	"repro/internal/cloud"
	"repro/internal/ehl"
	"repro/internal/join"
	"repro/internal/knn"
	"repro/internal/paillier"
	"repro/internal/protocols"
)

// This file serializes the query-plane artifacts introduced with the
// networked client surface: kNN tokens and databases, join and kNN query
// answers, and the join owner's restorable bundle. The same codecs back
// both on-disk persistence (sectopk's Save/Load pairs) and the client
// wire protocol (the token/answer byte payloads of Client.Execute), so a
// stored artifact and a wire payload are byte-identical formats.

// wireKNNToken carries a kNN trapdoor: the query point (whose length is
// the attribute count it was issued for) and k.
type wireKNNToken struct {
	Point []int64
	K     int
}

// WriteKNNToken serializes a kNN trapdoor.
func WriteKNNToken(w io.Writer, point []int64, k int) error {
	if len(point) == 0 {
		return errors.New("secio: empty kNN query point")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "knn-token"}); err != nil {
		return err
	}
	return enc.Encode(wireKNNToken{Point: point, K: k})
}

// ReadKNNToken deserializes a kNN trapdoor.
func ReadKNNToken(r io.Reader) (point []int64, k int, err error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, 0, err
	}
	if err := h.check("knn-token"); err != nil {
		return nil, 0, err
	}
	var wt wireKNNToken
	if err := dec.Decode(&wt); err != nil {
		return nil, 0, err
	}
	if len(wt.Point) == 0 {
		return nil, 0, errors.New("secio: stored kNN token has no query point")
	}
	return wt.Point, wt.K, nil
}

// wireJoinTuple flattens one encrypted joined tuple.
type wireJoinTuple struct {
	Score *big.Int
	Attrs []*big.Int
}

// WriteJoinResult serializes the encrypted outcome of a top-k join (what
// S1 returns to the client for revealing).
func WriteJoinResult(w io.Writer, tuples []protocols.JoinTuple) error {
	rows := make([]wireJoinTuple, len(tuples))
	for i, t := range tuples {
		if t.Score == nil {
			return fmt.Errorf("secio: join tuple %d missing score", i)
		}
		row := wireJoinTuple{Score: t.Score.C}
		for j, a := range t.Attrs {
			if a == nil {
				return fmt.Errorf("secio: join tuple %d has nil attribute %d", i, j)
			}
			row.Attrs = append(row.Attrs, a.C)
		}
		rows[i] = row
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "join-result"}); err != nil {
		return err
	}
	return enc.Encode(rows)
}

// ReadJoinResult deserializes an encrypted join outcome.
func ReadJoinResult(r io.Reader) ([]protocols.JoinTuple, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("join-result"); err != nil {
		return nil, err
	}
	var rows []wireJoinTuple
	if err := dec.Decode(&rows); err != nil {
		return nil, err
	}
	out := make([]protocols.JoinTuple, len(rows))
	for i, row := range rows {
		if row.Score == nil {
			return nil, fmt.Errorf("secio: stored join tuple %d missing score", i)
		}
		t := protocols.JoinTuple{Score: &paillier.Ciphertext{C: row.Score}}
		for _, v := range row.Attrs {
			if v == nil {
				return nil, fmt.Errorf("secio: stored join tuple %d has nil attribute", i)
			}
			t.Attrs = append(t.Attrs, &paillier.Ciphertext{C: v})
		}
		out[i] = t
	}
	return out, nil
}

// WriteKNNResult serializes the encrypted outcome of a kNN query: the
// ranked items (encrypted ids and squared distances).
func WriteKNNResult(w io.Writer, items []protocols.Item) error {
	wi, err := encodeItems(items)
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "knn-result"}); err != nil {
		return err
	}
	return enc.Encode(wi)
}

// ReadKNNResult deserializes an encrypted kNN outcome.
func ReadKNNResult(r io.Reader) ([]protocols.Item, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("knn-result"); err != nil {
		return nil, err
	}
	var wi wireItems
	if err := dec.Decode(&wi); err != nil {
		return nil, err
	}
	return decodeItems(&wi), nil
}

// wireKNNRecord flattens one encrypted kNN record.
type wireKNNRecord struct {
	EHL    []*big.Int
	Values []*big.Int
}

// wireKNNRelation flattens knn.EncDatabase plus its hosting metadata.
type wireKNNRelation struct {
	Name         string
	N, M         int
	EHLKind      int
	MaxScoreBits int
	Records      []wireKNNRecord
}

// WriteHostedKNNRelation serializes an encrypted kNN database together
// with its public key and score-bit bound — everything the data cloud
// needs to host it.
func WriteHostedKNNRelation(w io.Writer, db *knn.EncDatabase, maxScoreBits int, pk *paillier.PublicKey) error {
	if db == nil {
		return errors.New("secio: nil kNN database")
	}
	if pk == nil || pk.N == nil {
		return errors.New("secio: nil public key")
	}
	wr := &wireKNNRelation{Name: db.Name, N: db.N, M: db.M, MaxScoreBits: maxScoreBits}
	for i, rec := range db.Records {
		if rec.ID == nil || len(rec.Values) != db.M {
			return fmt.Errorf("secio: malformed kNN record %d", i)
		}
		wr.EHLKind = int(rec.ID.Kind)
		row := wireKNNRecord{}
		for _, ct := range rec.ID.Cts {
			row.EHL = append(row.EHL, ct.C)
		}
		for j, ct := range rec.Values {
			if ct == nil {
				return fmt.Errorf("secio: kNN record %d has nil value %d", i, j)
			}
			row.Values = append(row.Values, ct.C)
		}
		wr.Records = append(wr.Records, row)
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "hosted-knn-relation"}); err != nil {
		return fmt.Errorf("secio: writing header: %w", err)
	}
	if err := enc.Encode(wirePub{N: pk.N}); err != nil {
		return fmt.Errorf("secio: writing public key: %w", err)
	}
	if err := enc.Encode(wr); err != nil {
		return fmt.Errorf("secio: writing kNN relation: %w", err)
	}
	return bw.Flush()
}

// ReadHostedKNNRelation deserializes a kNN database bundle.
func ReadHostedKNNRelation(r io.Reader) (*knn.EncDatabase, int, *paillier.PublicKey, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, 0, nil, fmt.Errorf("secio: reading header: %w", err)
	}
	if err := h.check("hosted-knn-relation"); err != nil {
		return nil, 0, nil, err
	}
	var wp wirePub
	if err := dec.Decode(&wp); err != nil {
		return nil, 0, nil, fmt.Errorf("secio: reading public key: %w", err)
	}
	pk, err := paillier.NewPublicKeyFromN(wp.N)
	if err != nil {
		return nil, 0, nil, err
	}
	var wr wireKNNRelation
	if err := dec.Decode(&wr); err != nil {
		return nil, 0, nil, fmt.Errorf("secio: reading kNN relation: %w", err)
	}
	if len(wr.Records) != wr.N {
		return nil, 0, nil, fmt.Errorf("secio: kNN bundle has %d records for N=%d", len(wr.Records), wr.N)
	}
	db := &knn.EncDatabase{Name: wr.Name, N: wr.N, M: wr.M}
	for i, row := range wr.Records {
		if len(row.Values) != wr.M || len(row.EHL) == 0 {
			return nil, 0, nil, fmt.Errorf("secio: malformed stored kNN record %d", i)
		}
		rec := knn.EncRecord{ID: &ehl.List{Kind: ehl.Kind(wr.EHLKind)}}
		for _, v := range row.EHL {
			if v == nil {
				return nil, 0, nil, fmt.Errorf("secio: stored kNN record %d has nil id digest", i)
			}
			rec.ID.Cts = append(rec.ID.Cts, &paillier.Ciphertext{C: v})
		}
		for _, v := range row.Values {
			if v == nil {
				return nil, 0, nil, fmt.Errorf("secio: stored kNN record %d has nil value", i)
			}
			rec.Values = append(rec.Values, &paillier.Ciphertext{C: v})
		}
		db.Records = append(db.Records, rec)
	}
	return db, wr.MaxScoreBits, pk, nil
}

// wireJoinOwnerBundle persists everything a join owner needs to restore
// its scheme: the factorization, the parameters, and the symmetric
// secrets.
type wireJoinOwnerBundle struct {
	P, Q         *big.Int
	KeyBits      int
	EHLKind      int
	EHLS, EHLH   int
	MaxScoreBits int
	Master, Perm []byte
}

// WriteJoinOwnerBundle persists the join owner's full scheme state. This
// stream must never leave the owner.
func WriteJoinOwnerBundle(w io.Writer, scheme *join.Scheme) error {
	if scheme == nil {
		return errors.New("secio: nil join scheme")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: "join-owner"}); err != nil {
		return err
	}
	params := scheme.Params()
	secrets := scheme.Secrets()
	keys := scheme.KeyMaterial()
	return enc.Encode(wireJoinOwnerBundle{
		P: keys.Paillier.P, Q: keys.Paillier.Q,
		KeyBits: params.KeyBits,
		EHLKind: int(params.EHL.Kind), EHLS: params.EHL.S, EHLH: params.EHL.H,
		MaxScoreBits: params.MaxScoreBits,
		Master:       secrets.Master, Perm: secrets.Perm,
	})
}

// ReadJoinOwnerBundle restores a join owner's scheme.
func ReadJoinOwnerBundle(r io.Reader) (*join.Scheme, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, err
	}
	if err := h.check("join-owner"); err != nil {
		return nil, err
	}
	var wb wireJoinOwnerBundle
	if err := dec.Decode(&wb); err != nil {
		return nil, err
	}
	sk, err := paillier.FromPrimes(wb.P, wb.Q)
	if err != nil {
		return nil, fmt.Errorf("secio: rebuilding key: %w", err)
	}
	keys, err := cloud.KeyMaterialFromPaillier(sk)
	if err != nil {
		return nil, err
	}
	params := join.Params{
		KeyBits:      wb.KeyBits,
		EHL:          ehl.Params{Kind: ehl.Kind(wb.EHLKind), S: wb.EHLS, H: wb.EHLH},
		MaxScoreBits: wb.MaxScoreBits,
	}
	return join.RestoreScheme(params, keys, join.Secrets{Master: wb.Master, Perm: wb.Perm})
}

// SaveJoinOwnerBundle writes the join owner bundle to a 0600 file.
func SaveJoinOwnerBundle(path string, scheme *join.Scheme) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := WriteJoinOwnerBundle(f, scheme); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJoinOwnerBundle reads a join owner bundle from a file.
func LoadJoinOwnerBundle(path string) (*join.Scheme, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJoinOwnerBundle(f)
}
