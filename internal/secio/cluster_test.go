package secio

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/paillier"
	"repro/internal/protocols"
	"repro/internal/shard"
)

// TestHostedSubsetRoundTrip pins the handoff format: a member's shard
// blocks plus placement metadata survive a write/read cycle intact.
func TestHostedSubsetRoundTrip(t *testing.T) {
	r := getRig(t)
	sh, err := shard.Encrypt(r.scheme, testRelation(), 4)
	if err != nil {
		t.Fatal(err)
	}
	indices := []int{1, 3}
	shards := []*core.EncryptedRelation{sh.Shards[1], sh.Shards[3]}
	var buf bytes.Buffer
	if err := WriteHostedSubset(&buf, 4, indices, shards, 7, r.scheme.PublicKey()); err != nil {
		t.Fatalf("WriteHostedSubset: %v", err)
	}
	total, gotIdx, gotShards, epoch, pk, err := ReadHostedSubset(&buf)
	if err != nil {
		t.Fatalf("ReadHostedSubset: %v", err)
	}
	if total != 4 || epoch != 7 {
		t.Fatalf("total=%d epoch=%d, want 4/7", total, epoch)
	}
	if pk.N.Cmp(r.scheme.PublicKey().N) != 0 {
		t.Fatal("public key modulus changed in round trip")
	}
	if len(gotIdx) != 2 || gotIdx[0] != 1 || gotIdx[1] != 3 {
		t.Fatalf("indices = %v, want [1 3]", gotIdx)
	}
	for i, er := range gotShards {
		want := shards[i]
		if er.N != want.N || er.M != want.M || er.MaxScoreBits != want.MaxScoreBits {
			t.Fatalf("shard %d shape changed: %d/%d/%d vs %d/%d/%d",
				i, er.N, er.M, er.MaxScoreBits, want.N, want.M, want.MaxScoreBits)
		}
	}
}

// TestHostedSubsetRejectsBadPlacement pins the placement validation a
// corrupt or mis-cut handoff file must fail on.
func TestHostedSubsetRejectsBadPlacement(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	pk := r.scheme.PublicKey()
	cases := []struct {
		name    string
		total   int
		indices []int
		shards  []*core.EncryptedRelation
	}{
		{"index out of range", 2, []int{2}, []*core.EncryptedRelation{er}},
		{"duplicate index", 4, []int{1, 1}, []*core.EncryptedRelation{er, er}},
		{"zero total", 0, []int{0}, []*core.EncryptedRelation{er}},
		{"count mismatch", 4, []int{0, 1}, []*core.EncryptedRelation{er}},
		{"more indices than total", 1, []int{0, 1}, []*core.EncryptedRelation{er, er}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteHostedSubset(&buf, tc.total, tc.indices, tc.shards, 1, pk); err == nil {
				t.Fatal("bad placement accepted")
			}
		})
	}
}

// TestCandidatesRoundTrip runs a real per-shard candidate scan and pins
// that its merge view — items, residual bounds, depth, halted — crosses
// the wire format bit-identically.
func TestCandidatesRoundTrip(t *testing.T) {
	r := getRig(t)
	er, err := r.scheme.EncryptRelation(testRelation())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(r.client, er)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := engine.SecQueryCandidates(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltPaper})
	if err != nil {
		t.Fatalf("SecQueryCandidates: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCandidates(&buf, cs); err != nil {
		t.Fatalf("WriteCandidates: %v", err)
	}
	got, err := ReadCandidates(&buf)
	if err != nil {
		t.Fatalf("ReadCandidates: %v", err)
	}
	if got.Depth != cs.Depth || got.Halted != cs.Halted {
		t.Fatalf("scalar fields changed: depth %d/%d halted %v/%v", got.Depth, cs.Depth, got.Halted, cs.Halted)
	}
	if len(got.Items) != len(cs.Items) || len(got.Residuals) != len(cs.Residuals) {
		t.Fatalf("lengths changed: items %d/%d residuals %d/%d",
			len(got.Items), len(cs.Items), len(got.Residuals), len(cs.Residuals))
	}
	for i := range cs.Items {
		for _, col := range []int{protocols.ColWorst, protocols.ColBest} {
			if got.Items[i].Scores[col].C.Cmp(cs.Items[i].Scores[col].C) != 0 {
				t.Fatalf("item %d score column %d changed", i, col)
			}
		}
	}
	for i := range cs.Residuals {
		if got.Residuals[i].C.Cmp(cs.Residuals[i].C) != 0 {
			t.Fatalf("residual %d changed", i)
		}
	}
}

// TestCandidatesRejectsNilResidual pins that a half-built candidate set
// cannot be serialized silently.
func TestCandidatesRejectsNilResidual(t *testing.T) {
	var buf bytes.Buffer
	cs := &core.CandidateSet{Residuals: []*paillier.Ciphertext{nil}}
	if err := WriteCandidates(&buf, cs); err == nil {
		t.Fatal("nil residual accepted")
	}
}
