package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/sectopk"
)

// The qps experiment measures the throughput-first data plane end to
// end: queries per second over real TCP as a function of the transport
// (lockstep single-flight v1 vs multiplexed+batched v2), the number of
// concurrent client sessions, and the shard count. The baseline scenario
// reproduces the pre-v2 deployment exactly — one in-flight call per
// connection, no batch envelopes, unsharded relation — so the speedup
// column tracks what the rearchitecture buys per PR.

// QPSResult is one measured scenario. GoMaxProcs and KeyBits repeat per
// row (not just in the report header) because cluster rows measured in a
// separate process get merged into an existing BENCH_<date>.json — each
// row must stay interpretable on its own.
type QPSResult struct {
	Transport  string  `json:"transport"` // "single-flight-v1", "mux-batch-v2", or "cluster-v2"
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	Nodes      int     `json:"nodes,omitempty"` // S1 member processes behind the front door (cluster rows)
	Queries    int     `json:"queries"`
	Seconds    float64 `json:"seconds"`
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms,omitempty"` // median per-query latency
	P99Ms      float64 `json:"p99_ms,omitempty"` // tail per-query latency
	GoMaxProcs int     `json:"gomaxprocs"`
	KeyBits    int     `json:"key_bits"`
}

// QPSReport is the machine-readable record merged into BENCH_<date>.json.
type QPSReport struct {
	Date       string      `json:"date"`
	KeyBits    int         `json:"key_bits"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Rows       int         `json:"rows"`
	K          int         `json:"k"`
	Results    []QPSResult `json:"results"`
}

// qpsRelation builds a rank-correlated relation so queries halt after a
// few depths — the workload is then round-trip- and S2-throughput-bound,
// which is exactly what the data plane changes target.
func qpsRelation(rows int) *dataset.Relation {
	rel := &dataset.Relation{Name: "qps"}
	n := int64(rows)
	for i := int64(0); i < n; i++ {
		rel.Rows = append(rel.Rows, []int64{3*n - 3*i, 2*n - 2*i + 1, n - i + 2})
	}
	return rel
}

// queryEngine is the slice of the two engines the scenario driver needs.
type queryEngine interface {
	SecQuery(ctx context.Context, tk *core.Token, opts core.Options) (*core.QueryResult, error)
}

// RunQPS measures the scenario matrix and returns the report.
func RunQPS(cfg Config) (*QPSReport, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultConfig().Rows
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 4
	}
	if shards > rows {
		shards = rows
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 8
	}
	const k = 3
	params := core.Params{
		KeyBits:      cfg.KeyBits,
		EHL:          ehl.Params{Kind: ehl.KindPlus, S: cfg.EHLS},
		MaxScoreBits: cfg.MaxScoreBits,
		Parallelism:  cfg.Parallelism,
	}
	scheme, err := core.NewScheme(params)
	if err != nil {
		return nil, fmt.Errorf("bench: qps scheme: %w", err)
	}
	rel := qpsRelation(rows)
	er, err := scheme.EncryptRelation(rel)
	if err != nil {
		return nil, err
	}
	shRel, err := shard.Encrypt(scheme, rel, shards)
	if err != nil {
		return nil, err
	}
	tk, err := scheme.TokenFor(rows, rel.M(), []int{0, 1, 2}, nil, k)
	if err != nil {
		return nil, err
	}
	svc := cloud.NewService()
	defer svc.Close()
	if err := svc.Register("qps", scheme.KeyMaterial(), nil, cloud.WithParallelism(cfg.Parallelism)); err != nil {
		return nil, err
	}

	rep := &QPSReport{
		Date:       time.Now().Format("2006-01-02"),
		KeyBits:    cfg.KeyBits,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rows:       rows,
		K:          k,
	}
	scenarios := []struct {
		mux     bool
		shards  int
		clients int
	}{
		{false, 1, 1},       // the pre-v2 deployment
		{false, 1, clients}, // concurrency over a lockstep link
		{true, 1, 1},        // v2 adds nothing for a lone session (sanity)
		{true, 1, clients},  // multiplexing + batching
		{true, shards, clients},
	}
	perClient := cfg.QueriesPerClient
	if perClient <= 0 {
		perClient = 4
	}
	for _, sc := range scenarios {
		res, err := runQPSScenario(svc, scheme, er, shRel, tk, sc.mux, sc.shards, sc.clients, perClient)
		if err != nil {
			return nil, fmt.Errorf("bench: qps %+v: %w", sc, err)
		}
		res.KeyBits = cfg.KeyBits
		rep.Results = append(rep.Results, *res)
	}
	return rep, nil
}

// runQPSScenario measures one (transport, shards, clients) cell over a
// real TCP loopback connection; each client runs perClient timed
// queries after a shared warm-up.
func runQPSScenario(svc *cloud.Service, scheme *core.Scheme, er *core.EncryptedRelation, shRel *shard.Relation, tk *core.Token, mux bool, shards, clients, perClient int) (*QPSResult, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = transport.Serve(ctx, l, svc) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return nil, err
	}
	var (
		caller  transport.Caller
		batcher *cloud.Batcher
		cc      transport.ConnCaller
	)
	if mux {
		if cc, err = transport.Connect(ctx, conn, nil); err != nil {
			conn.Close()
			return nil, err
		}
		batcher = cloud.NewBatcher(cc)
		caller = batcher
	} else {
		nc := transport.NewNetCaller(conn, nil)
		cc = nc
		caller = nc
	}
	defer cc.Close()
	if batcher != nil {
		defer batcher.Close()
	}
	client, err := cloud.NewClient(caller, scheme.PublicKey(), nil, cloud.WithRelation("qps"))
	if err != nil {
		return nil, err
	}
	defer client.Close()
	if err := client.Handshake(ctx); err != nil {
		return nil, err
	}

	engines := make([]queryEngine, clients)
	for i := range engines {
		if shards > 1 {
			eng, err := shard.NewEngine(client, shRel)
			if err != nil {
				return nil, err
			}
			engines[i] = eng
		} else {
			eng, err := core.NewEngine(client, er)
			if err != nil {
				return nil, err
			}
			engines[i] = eng
		}
	}
	opts := core.Options{Mode: core.QryE, Halt: core.HaltPaper}
	total := clients * perClient
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// One warm-up query per client (nonce pools, TCP, first-touch code
	// paths), excluded from the timing: with only a handful of timed
	// queries per client, letting one client eat all the setup cost
	// skews the sample.
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := engines[i].SecQuery(ctx, tk, opts); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	durs := make([][]time.Duration, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			durs[i] = make([]time.Duration, 0, perClient)
			for q := 0; q < perClient; q++ {
				t0 := time.Now()
				if _, err := engines[i].SecQuery(ctx, tk, opts); err != nil {
					fail(err)
					return
				}
				durs[i] = append(durs[i], time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	kind := "single-flight-v1"
	if mux {
		kind = "mux-batch-v2"
	}
	all := flattenDurations(durs)
	return &QPSResult{
		Transport:  kind,
		Shards:     shards,
		Clients:    clients,
		Queries:    total,
		Seconds:    elapsed.Seconds(),
		QPS:        float64(total) / elapsed.Seconds(),
		P50Ms:      percentileMs(all, 0.50),
		P99Ms:      percentileMs(all, 0.99),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}, nil
}

// ClusterConfig drives the external-cluster qps rows: the measured
// system is a sectopk-node fleet already running elsewhere (S2, member
// processes, and a front door over real TCP); this process only plays
// the queriers.
type ClusterConfig struct {
	Connect          string // front door client-listen address
	Nodes            int    // S1 member count behind the front door, recorded per row
	Shards           int    // provisioned shard count, recorded per row
	Relation         string // hosted relation ID
	TokenPath        string // stored top-k trapdoor (sectopk-node owner's query.tk)
	KeyBits          int    // recorded per row
	Clients          int
	QueriesPerClient int
}

// RunQPSCluster measures one cluster throughput row against a running
// front door: Clients concurrent queriers, each on its own TCP
// connection, each running one warm-up query and then QueriesPerClient
// timed ones. Merge the row into an existing record with AppendJSON.
func RunQPSCluster(cfg ClusterConfig) (*QPSReport, error) {
	clients := cfg.Clients
	if clients <= 0 {
		clients = 8
	}
	perClient := cfg.QueriesPerClient
	if perClient <= 0 {
		perClient = 4
	}
	tk, err := sectopk.LoadToken(cfg.TokenPath)
	if err != nil {
		return nil, fmt.Errorf("bench: qps cluster token: %w", err)
	}
	ctx := context.Background()
	conns := make([]*sectopk.Client, clients)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range conns {
		c, err := sectopk.DialRetry(ctx, cfg.Connect, sectopk.WithRetry(sectopk.RetryPolicy{
			Initial:    50 * time.Millisecond,
			Max:        time.Second,
			MaxElapsed: 15 * time.Second,
		}))
		if err != nil {
			return nil, fmt.Errorf("bench: qps cluster dial %s: %w", cfg.Connect, err)
		}
		conns[i] = c
	}
	req := sectopk.TopKRequest(cfg.Relation, tk)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// One warm-up query per client, as in the in-process scenarios.
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := conns[i].Execute(ctx, req); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("bench: qps cluster warm-up: %w", firstErr)
	}
	total := clients * perClient
	durs := make([][]time.Duration, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			durs[i] = make([]time.Duration, 0, perClient)
			for q := 0; q < perClient; q++ {
				t0 := time.Now()
				if _, err := conns[i].Execute(ctx, req); err != nil {
					fail(err)
					return
				}
				durs[i] = append(durs[i], time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	all := flattenDurations(durs)
	rep := &QPSReport{
		Date:       time.Now().Format("2006-01-02"),
		KeyBits:    cfg.KeyBits,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	rep.Results = append(rep.Results, QPSResult{
		Transport:  "cluster-v2",
		Shards:     cfg.Shards,
		Clients:    clients,
		Nodes:      cfg.Nodes,
		Queries:    total,
		Seconds:    elapsed.Seconds(),
		QPS:        float64(total) / elapsed.Seconds(),
		P50Ms:      percentileMs(all, 0.50),
		P99Ms:      percentileMs(all, 0.99),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		KeyBits:    cfg.KeyBits,
	})
	return rep, nil
}

// SaveJSON merges the QPS record into path (BENCH_<date>.json when
// empty): an existing record — e.g. the micro experiment's — keeps its
// fields and gains/overwrites the "qps" key, so one file per date tracks
// both trajectories.
func (r *QPSReport) SaveJSON(path string) (string, error) {
	return r.writeJSON(path, r)
}

// AppendJSON merges this report's rows into an existing qps record in
// path instead of replacing it: the in-process scenario matrix keeps
// its rows and gains the rows measured by this (separate) process —
// the per-row gomaxprocs/key_bits fields keep mixed origins
// interpretable. With no prior qps record it behaves like SaveJSON.
func (r *QPSReport) AppendJSON(path string) (string, error) {
	merged := r
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", r.Date)
	}
	doc := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(b, &doc)
	}
	if raw, ok := doc["qps"]; ok {
		if b, err := json.Marshal(raw); err == nil {
			prev := &QPSReport{}
			if json.Unmarshal(b, prev) == nil && len(prev.Results) > 0 {
				prev.Results = append(prev.Results, r.Results...)
				merged = prev
			}
		}
	}
	return r.writeJSON(path, merged)
}

// writeJSON installs rep under the "qps" key of the dated record.
func (r *QPSReport) writeJSON(path string, rep *QPSReport) (string, error) {
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", r.Date)
	}
	doc := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(b, &doc)
	}
	doc["qps"] = rep
	if _, ok := doc["date"]; !ok {
		doc["date"] = r.Date
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Report renders the scenario table with the speedup over the
// single-flight baseline at the same client count; cluster rows compare
// against the 1-node cluster row instead (same wire path, scaled fleet).
func (r *QPSReport) Report() *Report {
	base := map[int]float64{}        // clients -> single-flight unsharded QPS
	clusterBase := map[int]float64{} // clients -> 1-node cluster QPS
	for _, res := range r.Results {
		if res.Transport == "single-flight-v1" && res.Shards == 1 {
			base[res.Clients] = res.QPS
		}
		if res.Nodes == 1 {
			clusterBase[res.Clients] = res.QPS
		}
	}
	out := &Report{
		ID:     "qps",
		Title:  fmt.Sprintf("query throughput vs transport/shards/clients (%d-bit keys, %d rows, GOMAXPROCS=%d)", r.KeyBits, r.Rows, r.GoMaxProcs),
		Header: []string{"transport", "shards", "nodes", "clients", "queries", "qps", "p50 ms", "p99 ms", "vs baseline"},
	}
	for _, res := range r.Results {
		vs := "-"
		switch {
		case res.Nodes > 1:
			if b, ok := clusterBase[res.Clients]; ok && b > 0 {
				vs = fmt.Sprintf("%.2fx", res.QPS/b)
			}
		case res.Nodes == 0:
			if b, ok := base[res.Clients]; ok && b > 0 && !(res.Transport == "single-flight-v1" && res.Shards == 1) {
				vs = fmt.Sprintf("%.2fx", res.QPS/b)
			}
		}
		nodes := "-"
		if res.Nodes > 0 {
			nodes = fmt.Sprint(res.Nodes)
		}
		out.Rows = append(out.Rows, []string{
			res.Transport,
			fmt.Sprint(res.Shards),
			nodes,
			fmt.Sprint(res.Clients),
			fmt.Sprint(res.Queries),
			fmt.Sprintf("%.2f", res.QPS),
			fmt.Sprintf("%.1f", res.P50Ms),
			fmt.Sprintf("%.1f", res.P99Ms),
			vs,
		})
	}
	out.Notes = append(out.Notes,
		"baseline = lockstep v1 transport, unsharded, same client count; cluster rows compare against the 1-node cluster row",
		"acceptance targets on a 4-core runner: mux+shards >= 2x at 8 clients; 2-node cluster >= 1.6x 1-node at 8 clients",
		fmt.Sprintf("emitted into BENCH_%s.json under the \"qps\" key", r.Date))
	return out
}
