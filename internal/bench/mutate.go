package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/sectopk"
)

// The mutate experiment measures the incremental-write plane: what a
// single-row insert/update/delete costs end to end (owner builds the
// encrypted delta, S1 applies it, the owner adopts the epoch) against
// the only alternative the paper's static scheme offers — re-encrypting
// the whole relation — and whether queries get slower after mutations
// than they are on a freshly encrypted copy of the same data.

// MutateResult is one measured operation class.
type MutateResult struct {
	Op      string  `json:"op"`
	Ops     int     `json:"ops"`
	Seconds float64 `json:"seconds"`
	MsPerOp float64 `json:"ms_per_op"`
}

// MutateReport is the machine-readable record merged into
// BENCH_<date>.json under the "mutate" key.
type MutateReport struct {
	Date       string         `json:"date"`
	KeyBits    int            `json:"key_bits"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Rows       int            `json:"rows"`
	Shards     int            `json:"shards"`
	Results    []MutateResult `json:"results"`
	// SpeedupVsReencrypt is full-re-encrypt ms over single-row-update
	// delta ms: how much cheaper one incremental write is than the
	// static scheme's only update path.
	SpeedupVsReencrypt float64 `json:"speedup_vs_reencrypt"`
}

// RunMutate measures the mutation plane and returns the report.
func RunMutate(cfg Config) (*MutateReport, error) {
	ctx := context.Background()
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultConfig().Rows
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 4
	}
	if shards > rows {
		shards = rows
	}
	batch := 8
	if batch > rows/2 {
		batch = rows / 2
	}
	if batch < 1 {
		batch = 1
	}
	opts := []sectopk.Option{
		sectopk.WithKeyBits(cfg.KeyBits),
		sectopk.WithEHLDigests(cfg.EHLS),
		sectopk.WithMaxScoreBits(cfg.MaxScoreBits),
		sectopk.WithParallelism(cfg.Parallelism),
		sectopk.WithFastNonce(cfg.FastNonce),
	}
	owner, err := sectopk.NewOwner(append(opts, sectopk.WithShards(shards))...)
	if err != nil {
		return nil, fmt.Errorf("bench: mutate owner: %w", err)
	}
	src := qpsRelation(rows)
	rel := &sectopk.Relation{Name: "mutate", Rows: src.Rows}
	er, err := owner.Encrypt(rel)
	if err != nil {
		return nil, err
	}
	mr, err := owner.NewMutable(rel, er)
	if err != nil {
		return nil, err
	}
	cc := sectopk.NewCryptoCloud(opts...)
	defer cc.Close()
	if err := cc.Register("mutate", owner.Keys()); err != nil {
		return nil, err
	}
	if err := cc.Register("mutate-fresh", owner.Keys()); err != nil {
		return nil, err
	}
	dc := sectopk.NewDataCloud(opts...)
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		return nil, err
	}
	if err := dc.Host(ctx, "mutate", er); err != nil {
		return nil, err
	}

	rep := &MutateReport{
		Date:       time.Now().Format("2006-01-02"),
		KeyBits:    cfg.KeyBits,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rows:       rows,
		Shards:     shards,
	}
	record := func(op string, ops int, elapsed time.Duration) {
		rep.Results = append(rep.Results, MutateResult{
			Op: op, Ops: ops, Seconds: elapsed.Seconds(),
			MsPerOp: elapsed.Seconds() * 1000 / float64(ops),
		})
	}
	ship := func(d *sectopk.Delta) error {
		epoch, err := dc.Apply(ctx, "mutate", d)
		if err != nil {
			return err
		}
		return mr.Adopt(epoch)
	}

	// The current plaintext, maintained alongside the deltas so the fresh
	// re-encryption baseline encrypts exactly the post-mutation data.
	live := make(map[int][]int64, rows)
	for i, row := range rel.Rows {
		live[i] = row
	}

	// Single-row inserts.
	n := int64(rows)
	start := time.Now()
	for i := 0; i < batch; i++ {
		row := []int64{n + int64(i), 2*n + int64(i), 3*n - int64(i)}
		d, err := mr.InsertRows([][]int64{row})
		if err != nil {
			return nil, fmt.Errorf("bench: mutate insert: %w", err)
		}
		if err := ship(d); err != nil {
			return nil, err
		}
		live[rows+i] = row
	}
	record("insert (1-row delta)", batch, time.Since(start))

	// Single-row score updates on original rows.
	start = time.Now()
	for i := 0; i < batch; i++ {
		row := []int64{3*n + int64(i), n - int64(i), 2 * n}
		d, err := mr.UpdateScores(map[int][]int64{i: row})
		if err != nil {
			return nil, fmt.Errorf("bench: mutate update: %w", err)
		}
		if err := ship(d); err != nil {
			return nil, err
		}
		live[i] = row
	}
	updatePerOp := time.Since(start)
	record("update (1-row delta)", batch, updatePerOp)

	// Single-row deletes of the inserted rows.
	start = time.Now()
	for i := 0; i < batch; i++ {
		d, err := mr.DeleteRows([]int{rows + i})
		if err != nil {
			return nil, fmt.Errorf("bench: mutate delete: %w", err)
		}
		if err := ship(d); err != nil {
			return nil, err
		}
		delete(live, rows+i)
	}
	record("delete (1-row delta)", batch, time.Since(start))

	// One compaction folding the accumulated tombstones.
	start = time.Now()
	epoch, err := dc.Compact(ctx, "mutate")
	if err != nil {
		return nil, err
	}
	if err := mr.Adopt(epoch); err != nil {
		return nil, err
	}
	record("compact", 1, time.Since(start))

	// The static alternative: re-encrypt the post-mutation plaintext from
	// scratch (the mirror's live view, in id order for determinism).
	fresh := &sectopk.Relation{Name: "mutate-fresh"}
	for id := 0; id < rows+batch; id++ {
		if row, ok := live[id]; ok {
			fresh.Rows = append(fresh.Rows, row)
		}
	}
	start = time.Now()
	erFresh, err := owner.Encrypt(fresh)
	if err != nil {
		return nil, err
	}
	reencrypt := time.Since(start)
	record("full re-encrypt", 1, reencrypt)
	if err := dc.Host(ctx, "mutate-fresh", erFresh); err != nil {
		return nil, err
	}
	if per := updatePerOp.Seconds() * 1000 / float64(batch); per > 0 {
		rep.SpeedupVsReencrypt = reencrypt.Seconds() * 1000 / per
	}

	// Post-mutation query latency on the mutated hosting vs the fresh
	// one: identical answers, and the mutated relation must not be
	// slower (its live lists are laid out exactly like fresh ones).
	queryMS := func(relation string, tk *sectopk.Token) (float64, error) {
		req := sectopk.TopKRequest(relation, tk, sectopk.WithHalting(sectopk.HaltingStrict))
		if _, err := dc.Execute(ctx, req); err != nil { // warm-up
			return 0, err
		}
		const timed = 3
		start := time.Now()
		for i := 0; i < timed; i++ {
			if _, err := dc.Execute(ctx, req); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() * 1000 / timed, nil
	}
	q := sectopk.Query{Attrs: []int{0, 1, 2}, K: 3}
	tk, err := mr.Token(q)
	if err != nil {
		return nil, err
	}
	ms, err := queryMS("mutate", tk)
	if err != nil {
		return nil, fmt.Errorf("bench: mutate query: %w", err)
	}
	record("query after mutations", 1, time.Duration(ms*float64(time.Millisecond)))
	tkFresh, err := owner.Token(erFresh, q)
	if err != nil {
		return nil, err
	}
	ms, err = queryMS("mutate-fresh", tkFresh)
	if err != nil {
		return nil, fmt.Errorf("bench: fresh query: %w", err)
	}
	record("query after re-encrypt", 1, time.Duration(ms*float64(time.Millisecond)))
	return rep, nil
}

// SaveJSON merges the mutate record into path (BENCH_<date>.json when
// empty) under the "mutate" key, preserving the micro/qps records.
func (r *MutateReport) SaveJSON(path string) (string, error) {
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", r.Date)
	}
	doc := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(b, &doc)
	}
	doc["mutate"] = r
	if _, ok := doc["date"]; !ok {
		doc["date"] = r.Date
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Report renders the operation table.
func (r *MutateReport) Report() *Report {
	out := &Report{
		ID:     "mutate",
		Title:  fmt.Sprintf("incremental writes vs re-encryption (%d-bit keys, %d rows, %d shards)", r.KeyBits, r.Rows, r.Shards),
		Header: []string{"op", "ops", "total", "ms/op"},
	}
	for _, res := range r.Results {
		out.Rows = append(out.Rows, []string{
			res.Op,
			fmt.Sprint(res.Ops),
			fmtDur(time.Duration(res.Seconds * float64(time.Second))),
			fmt.Sprintf("%.2f", res.MsPerOp),
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("one single-row update delta is %.1fx cheaper than re-encrypting the relation", r.SpeedupVsReencrypt),
		"delta ms/op includes the owner building the encrypted delta AND S1 applying it",
		fmt.Sprintf("emitted into BENCH_%s.json under the \"mutate\" key", r.Date))
	return out
}
