// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (Section 11 and Section 12.4.1), plus
// the ablations DESIGN.md calls out. Each runner builds its workload,
// drives the real two-party protocols, and prints the same series/rows
// the paper reports.
//
// Absolute numbers differ from the paper's C++/24-core testbed; the
// harness is about reproducing the *shapes* (who wins, scaling in k, m,
// p, n). EXPERIMENTS.md records paper-vs-measured for every run.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Config scopes an experiment run.
type Config struct {
	// KeyBits is the Paillier modulus size (256 keeps runs fast; the
	// paper's own modulus is comparably small, Section 11.2.5).
	KeyBits int
	// EHLS is the number of EHL+ digests (paper: 5).
	EHLS int
	// MaxScoreBits bounds attribute values.
	MaxScoreBits int
	// Rows scales every dataset to this many rows (0 = per-experiment
	// default). Full-paper row counts are impractical for the pure-Go
	// in-process harness; see EXPERIMENTS.md.
	Rows int
	// MaxDepth caps query scans for time-per-depth measurements.
	MaxDepth int
	// Seed feeds the dataset generators.
	Seed int64
	// Parallelism bounds worker goroutines in every layer (owner
	// encryption, S1 blinding, S2 handlers): 0 = all cores, 1 = the exact
	// serial pre-parallel behavior.
	Parallelism int
	// FastNonce opts every layer into the short-exponent fixed-base nonce
	// path (see cloud.WithFastNonce for the assumption it carries).
	FastNonce bool
	// Shards is the shard count the qps experiment partitions its
	// relation into (0 picks 4, capped at Rows).
	Shards int
	// Clients is the concurrent-session count the qps experiment loads
	// the data plane with (0 picks 8).
	Clients int
	// QueriesPerClient is how many timed queries each qps client runs
	// (0 picks 4). Larger samples cost linearly more wall clock but damp
	// run-to-run variance in the tracked QPS numbers.
	QueriesPerClient int
	// Out receives the rendered tables; nil discards.
	Out io.Writer
}

// DefaultConfig returns the scaled-down defaults used by `go test -bench`
// and the CLI without -full.
func DefaultConfig() Config {
	return Config{
		KeyBits:      256,
		EHLS:         3,
		MaxScoreBits: 20,
		Rows:         120,
		MaxDepth:     6,
		Seed:         1,
	}
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// Report is one experiment's result table, consumable both for printing
// and for EXPERIMENTS.md generation.
type Report struct {
	ID     string // experiment id from DESIGN.md's index (e.g. "fig9a")
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if w == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(r.Header)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown renders the report as a GitHub-flavored markdown table.
func (r *Report) Markdown(w io.Writer) error {
	if w == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(r.Header, " | "))
	seps := make([]string, len(r.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range r.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// fmtDur renders a duration with 3 significant figures.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtBytes renders a byte count.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
