package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/transport"
)

// Rig wires one data owner, data cloud S1 and crypto cloud S2 over the
// in-process transport with byte accounting.
type Rig struct {
	Cfg    Config
	Scheme *core.Scheme
	Server *cloud.Server
	Client *cloud.Client
	Stats  *transport.Stats
	S1Led  *cloud.Ledger
	S2Led  *cloud.Ledger

	// encrypted relation cache keyed by name/shape, so sweeps over k do
	// not re-encrypt.
	erCache map[string]*core.EncryptedRelation
}

// NewRig builds the two-cloud test bed.
func NewRig(cfg Config) (*Rig, error) {
	params := core.Params{
		KeyBits:      cfg.KeyBits,
		EHL:          ehl.Params{Kind: ehl.KindPlus, S: cfg.EHLS},
		MaxScoreBits: cfg.MaxScoreBits,
		Parallelism:  cfg.Parallelism,
		FastNonce:    cfg.FastNonce,
	}
	scheme, err := core.NewScheme(params)
	if err != nil {
		return nil, fmt.Errorf("bench: scheme: %w", err)
	}
	s2led := cloud.NewLedger()
	server, err := cloud.NewServer(scheme.KeyMaterial(), s2led,
		cloud.WithParallelism(cfg.Parallelism), cloud.WithFastNonce(cfg.FastNonce))
	if err != nil {
		return nil, fmt.Errorf("bench: server: %w", err)
	}
	stats := transport.NewStats()
	s1led := cloud.NewLedger()
	client, err := cloud.NewClient(transport.NewLocal(server, stats), scheme.PublicKey(), s1led,
		cloud.WithParallelism(cfg.Parallelism), cloud.WithFastNonce(cfg.FastNonce))
	if err != nil {
		server.Close()
		return nil, fmt.Errorf("bench: client: %w", err)
	}
	return &Rig{
		Cfg: cfg, Scheme: scheme, Server: server, Client: client,
		Stats: stats, S1Led: s1led, S2Led: s2led,
		erCache: map[string]*core.EncryptedRelation{},
	}, nil
}

// Close releases the rig's background nonce pools.
func (r *Rig) Close() {
	r.Client.Close()
	r.Server.Close()
}

// scaledSpec applies the run's row scaling to a dataset spec.
func (r *Rig) scaledSpec(spec dataset.Spec) dataset.Spec {
	rows := r.Cfg.Rows
	if rows <= 0 {
		rows = DefaultConfig().Rows
	}
	if rows < spec.N {
		spec = spec.WithN(rows)
	}
	return spec
}

// relation generates (deterministically) the scaled dataset.
func (r *Rig) relation(spec dataset.Spec) (*dataset.Relation, error) {
	return dataset.Generate(r.scaledSpec(spec), r.Cfg.Seed)
}

// encrypted returns the encrypted relation for the scaled spec, cached.
func (r *Rig) encrypted(spec dataset.Spec) (*core.EncryptedRelation, *dataset.Relation, error) {
	s := r.scaledSpec(spec)
	key := fmt.Sprintf("%s/%dx%d", s.Name, s.N, s.M)
	rel, err := dataset.Generate(s, r.Cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	if er, ok := r.erCache[key]; ok {
		return er, rel, nil
	}
	er, err := r.Scheme.EncryptRelation(rel)
	if err != nil {
		return nil, nil, err
	}
	r.erCache[key] = er
	return er, rel, nil
}

// queryMeasurement captures one timed SecQuery run.
type queryMeasurement struct {
	elapsed      time.Duration
	depth        int
	halted       bool
	timePerDepth time.Duration
	bytes        int64
	bytesPerDep  int64
	rounds       int64
}

// timeQuery runs one SecQuery with fresh traffic counters and reports the
// paper's metrics: average time per depth (Section 11.2.1's T/D) and the
// exchanged bytes.
func (r *Rig) timeQuery(er *core.EncryptedRelation, attrs []int, k int, opts core.Options) (*queryMeasurement, error) {
	tk, err := r.Scheme.Token(er, attrs, nil, k)
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(r.Client, er)
	if err != nil {
		return nil, err
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = r.Cfg.MaxDepth
	}
	r.Stats.Reset()
	start := time.Now()
	res, err := engine.SecQuery(context.Background(), tk, opts)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	depth := res.Depth
	if depth == 0 {
		depth = 1
	}
	total := r.Stats.Bytes()
	return &queryMeasurement{
		elapsed:      elapsed,
		depth:        res.Depth,
		halted:       res.Halted,
		timePerDepth: elapsed / time.Duration(depth),
		bytes:        total,
		bytesPerDep:  total / int64(depth),
		rounds:       r.Stats.Rounds(),
	}, nil
}

// firstAttrs returns [0, 1, .., m).
func firstAttrs(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}
