package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	rigOnce sync.Once
	shared  *Rig
)

// tinyConfig keeps the smoke tests fast: minimal rows and depth caps.
func tinyConfig() Config {
	return Config{
		KeyBits:      256,
		EHLS:         2,
		MaxScoreBits: 20,
		Rows:         16,
		MaxDepth:     2,
		Seed:         1,
	}
}

func getRig(t testing.TB) *Rig {
	t.Helper()
	rigOnce.Do(func() {
		r, err := NewRig(tinyConfig())
		if err != nil {
			t.Fatalf("NewRig: %v", err)
		}
		shared = r
	})
	return shared
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		ID:     "figX",
		Title:  "test table",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "test table", "333", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
	var md bytes.Buffer
	if err := rep.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| a | bb |") {
		t.Fatalf("markdown output malformed:\n%s", md.String())
	}
	if err := rep.Render(nil); err != nil {
		t.Fatal("nil writer should be a no-op")
	}
	if err := rep.Markdown(nil); err != nil {
		t.Fatal("nil writer should be a no-op")
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtDur(1500*time.Millisecond) != "1.50s" {
		t.Fatalf("fmtDur seconds: %s", fmtDur(1500*time.Millisecond))
	}
	if !strings.HasSuffix(fmtDur(2500*time.Microsecond), "ms") {
		t.Fatalf("fmtDur ms: %s", fmtDur(2500*time.Microsecond))
	}
	if !strings.HasSuffix(fmtDur(900*time.Nanosecond), "µs") {
		t.Fatalf("fmtDur µs: %s", fmtDur(900*time.Nanosecond))
	}
	if fmtBytes(5) != "5B" || !strings.HasSuffix(fmtBytes(2048), "KB") || !strings.HasSuffix(fmtBytes(3<<20), "MB") {
		t.Fatal("fmtBytes wrong")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	r := getRig(t)
	if _, err := Run(r, "nope"); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestExperimentIDsCoverRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != len(Registry) {
		t.Fatalf("ExperimentIDs has %d entries, registry has %d", len(ids), len(Registry))
	}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Fatalf("id %q not in registry", id)
		}
	}
}

// TestSmokeFastExperiments runs the cheaper experiments end to end with a
// tiny configuration; the heavyweight query sweeps are exercised by the
// root-level benchmarks instead.
func TestSmokeFastExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke tests are not short")
	}
	r := getRig(t)
	for _, id := range []string{"fig7", "fig13", "tab3"} {
		reports, err := Run(r, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(reports) == 0 {
			t.Fatalf("%s produced no reports", id)
		}
		for _, rep := range reports {
			if len(rep.Rows) == 0 {
				t.Fatalf("%s: report %s has no rows", id, rep.ID)
			}
		}
	}
}

// TestSmokeMutateExperiment runs the mutation-plane benchmark end to end
// with a tiny configuration and checks the record is well-formed.
func TestSmokeMutateExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke tests are not short")
	}
	rep, err := RunMutate(tinyConfig())
	if err != nil {
		t.Fatalf("RunMutate: %v", err)
	}
	if len(rep.Results) < 6 {
		t.Fatalf("mutate report has %d result rows, want >= 6", len(rep.Results))
	}
	if rep.SpeedupVsReencrypt <= 0 {
		t.Fatalf("speedup vs re-encrypt = %v, want > 0", rep.SpeedupVsReencrypt)
	}
	if len(rep.Report().Rows) != len(rep.Results) {
		t.Fatal("rendered table drops result rows")
	}
}

func TestSmokeKNNExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke tests are not short")
	}
	r := getRig(t)
	reports, err := Run(r, "knn")
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	if len(reports[0].Rows) == 0 {
		t.Fatal("knn comparison produced no rows")
	}
}
