package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/secerr"
	"repro/sectopk"
)

// The soak experiment exercises the serving plane the way the qps
// experiment exercises the data plane: many concurrent clients — mixed
// tenants, mixed workloads — hammer one data cloud's client port over
// real TCP for a fixed wall-clock budget. It publishes the numbers the
// QoS admission layer is judged by: tail latency (p50/p90/p99/max),
// shed rate, and an error-code histogram. A healthy run sheds only with
// typed overload/deadline errors; anything else in the histogram is a
// serving-plane bug, which is what the CI smoke gates on.

// SoakTenant describes one tenant's slice of the client fleet: how many
// concurrent clients it runs and the admission rate the serving node
// grants it (PerSecond 0 = unlimited).
type SoakTenant struct {
	Name      string  `json:"tenant"`
	PerSecond float64 `json:"per_second,omitempty"` // admission rate (0 = unlimited)
	Burst     int     `json:"burst,omitempty"`
	Clients   int     `json:"clients"`
}

// SoakConfig drives one soak run. The embedded Config supplies the
// crypto knobs and the total client count; Tenants splits that fleet
// (nil = DefaultSoakTenants over Config.Clients).
type SoakConfig struct {
	Config
	Duration     time.Duration // wall-clock budget (default 8s)
	SessionLimit int           // WithSessionLimit on the serving node (0 = node default)
	Tenants      []SoakTenant
}

// DefaultSoakTenants is the two-tenant split used when SoakConfig.Tenants
// is nil: "gold" runs unlimited with two thirds of the fleet, "bronze"
// gets the rest behind a deliberately tight rate so the run demonstrates
// per-tenant shedding without starving the unlimited tenant.
func DefaultSoakTenants(clients int) []SoakTenant {
	if clients < 2 {
		clients = 2
	}
	gold := (clients*2 + 2) / 3
	return []SoakTenant{
		{Name: "gold", Clients: gold},
		{Name: "bronze", PerSecond: 2, Burst: 2, Clients: clients - gold},
	}
}

// SoakResult is one tenant's measured slice of the run.
type SoakResult struct {
	Tenant    string         `json:"tenant"`
	Limit     float64        `json:"limit_per_second,omitempty"`
	Clients   int            `json:"clients"`
	Workloads []string       `json:"workloads"`
	Attempts  int            `json:"attempts"`
	OK        int            `json:"ok"`
	Shed      int            `json:"shed"`
	ShedRate  float64        `json:"shed_rate"`
	Errors    map[string]int `json:"errors,omitempty"` // non-shed failures by code
	QPS       float64        `json:"qps"`              // completed queries per second
	P50Ms     float64        `json:"p50_ms"`
	P90Ms     float64        `json:"p90_ms"`
	P99Ms     float64        `json:"p99_ms"`
	MaxMs     float64        `json:"max_ms"`
}

// SoakReport is the machine-readable record merged into BENCH_<date>.json
// under the "soak" key. The top-level fields aggregate across tenants;
// Results keeps the per-tenant split.
type SoakReport struct {
	Date       string         `json:"date"`
	KeyBits    int            `json:"key_bits"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Rows       int            `json:"rows"`
	K          int            `json:"k"`
	Seconds    float64        `json:"seconds"`
	Clients    int            `json:"clients"`
	Attempts   int            `json:"attempts"`
	OK         int            `json:"ok"`
	Shed       int            `json:"shed"`
	ShedRate   float64        `json:"shed_rate"`
	Errors     map[string]int `json:"errors,omitempty"`
	P50Ms      float64        `json:"p50_ms"`
	P90Ms      float64        `json:"p90_ms"`
	P99Ms      float64        `json:"p99_ms"`
	MaxMs      float64        `json:"max_ms"`
	Results    []SoakResult   `json:"results"`
}

// soakWorker is one concurrent client's tally, merged per tenant after
// the run.
type soakWorker struct {
	tenant   string
	workload string
	client   *sectopk.Client
	req      sectopk.Request
	durs     []time.Duration
	shed     int
	errs     map[string]int
}

// RunSoak stands up the full serving stack — owner, crypto cloud, one
// data cloud with per-tenant limits, client port on TCP loopback — and
// soaks it with the configured tenant fleet for the wall-clock budget.
// Each client alternates between the top-k and kNN workloads by fleet
// position.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultConfig().Rows
	}
	const k = 3
	duration := cfg.Duration
	if duration <= 0 {
		duration = 8 * time.Second
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		clients := cfg.Clients
		if clients <= 0 {
			clients = 200
		}
		tenants = DefaultSoakTenants(clients)
	}
	totalClients := 0
	for _, t := range tenants {
		totalClients += t.Clients
	}
	if totalClients == 0 {
		return nil, fmt.Errorf("bench: soak: no clients configured")
	}

	cryptoOpts := []sectopk.Option{
		sectopk.WithKeyBits(cfg.KeyBits),
		sectopk.WithEHLDigests(cfg.EHLS),
		sectopk.WithMaxScoreBits(cfg.MaxScoreBits),
		sectopk.WithParallelism(cfg.Parallelism),
	}
	owner, err := sectopk.NewOwner(cryptoOpts...)
	if err != nil {
		return nil, fmt.Errorf("bench: soak owner: %w", err)
	}
	src := qpsRelation(rows)
	rel := &sectopk.Relation{Name: "soak", Rows: src.Rows}
	er, err := owner.Encrypt(rel)
	if err != nil {
		return nil, err
	}
	ker, err := owner.EncryptKNN(rel)
	if err != nil {
		return nil, err
	}
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: k})
	if err != nil {
		return nil, err
	}
	ktk, err := owner.KNNToken(ker, sectopk.KNNQuery{Point: append([]int64(nil), src.Rows[0]...), K: k})
	if err != nil {
		return nil, err
	}

	cc := sectopk.NewCryptoCloud(cryptoOpts...)
	defer cc.Close()
	if err := cc.Register("soak", owner.Keys()); err != nil {
		return nil, err
	}
	if err := cc.Register("soak-knn", owner.Keys()); err != nil {
		return nil, err
	}

	limits := map[string]sectopk.Rate{}
	for _, t := range tenants {
		if t.PerSecond > 0 {
			limits[t.Name] = sectopk.Rate{PerSecond: t.PerSecond, Burst: t.Burst}
		}
	}
	nodeOpts := append([]sectopk.Option{}, cryptoOpts...)
	nodeOpts = append(nodeOpts, sectopk.WithTenantLimits(limits))
	if cfg.SessionLimit > 0 {
		nodeOpts = append(nodeOpts, sectopk.WithSessionLimit(cfg.SessionLimit))
	}
	dc := sectopk.NewDataCloud(nodeOpts...)
	defer dc.Close()
	ctx := context.Background()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		return nil, err
	}
	if err := dc.Host(ctx, "soak", er); err != nil {
		return nil, err
	}
	if err := dc.HostKNN(ctx, "soak-knn", ker); err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = dc.ServeClients(serveCtx, l) }()
	defer func() { stopServe(); <-serveDone }()

	// Dial the fleet: every client its own TCP connection carrying its
	// tenant in the v3 Hello. No Execute retry — a retrying client would
	// hide the sheds this experiment exists to measure.
	workers := make([]*soakWorker, 0, totalClients)
	defer func() {
		for _, w := range workers {
			w.client.Close()
		}
	}()
	pos := 0
	for _, t := range tenants {
		for i := 0; i < t.Clients; i++ {
			c, err := sectopk.Dial(ctx, l.Addr().String(), sectopk.WithTenant(t.Name))
			if err != nil {
				return nil, fmt.Errorf("bench: soak dial (tenant %s): %w", t.Name, err)
			}
			w := &soakWorker{tenant: t.Name, client: c, errs: map[string]int{}}
			if pos%2 == 0 {
				w.workload, w.req = "topk", sectopk.TopKRequest("soak", tk)
			} else {
				w.workload, w.req = "knn", sectopk.KNNRequest("soak-knn", ktk)
			}
			workers = append(workers, w)
			pos++
		}
	}

	// Warm-up: one query per client outside the timed window (nonce
	// pools, first-touch code paths). Errors are expected for limited
	// tenants — their buckets start near empty — and ignored.
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *soakWorker) {
			defer wg.Done()
			_, _ = w.client.Execute(ctx, w.req)
		}(w)
	}
	wg.Wait()

	start := time.Now()
	deadline := start.Add(duration)
	for _, w := range workers {
		wg.Add(1)
		go func(w *soakWorker) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				_, err := w.client.Execute(ctx, w.req)
				switch {
				case err == nil:
					w.durs = append(w.durs, time.Since(t0))
				case errors.Is(err, sectopk.ErrOverloaded) || errors.Is(err, context.DeadlineExceeded):
					w.shed++
					// A throttled tenant must not busy-spin the admission
					// gate; the pause approximates client-side backoff.
					time.Sleep(5 * time.Millisecond)
				default:
					code := string(secerr.CodeOf(err))
					if code == "" {
						code = "unknown"
					}
					w.errs[code]++
					time.Sleep(5 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &SoakReport{
		Date:       time.Now().Format("2006-01-02"),
		KeyBits:    cfg.KeyBits,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rows:       rows,
		K:          k,
		Seconds:    elapsed.Seconds(),
		Clients:    totalClients,
		Errors:     map[string]int{},
	}
	var allDurs []time.Duration
	for _, t := range tenants {
		res := SoakResult{Tenant: t.Name, Limit: t.PerSecond, Clients: t.Clients, Errors: map[string]int{}}
		seen := map[string]bool{}
		var durs []time.Duration
		for _, w := range workers {
			if w.tenant != t.Name {
				continue
			}
			if !seen[w.workload] {
				seen[w.workload] = true
				res.Workloads = append(res.Workloads, w.workload)
			}
			durs = append(durs, w.durs...)
			res.OK += len(w.durs)
			res.Shed += w.shed
			for code, n := range w.errs {
				res.Errors[code] += n
			}
		}
		sort.Strings(res.Workloads)
		errCount := 0
		for code, n := range res.Errors {
			errCount += n
			rep.Errors[code] += n
		}
		res.Attempts = res.OK + res.Shed + errCount
		if res.Attempts > 0 {
			res.ShedRate = float64(res.Shed) / float64(res.Attempts)
		}
		res.QPS = float64(res.OK) / elapsed.Seconds()
		res.P50Ms = percentileMs(durs, 0.50)
		res.P90Ms = percentileMs(durs, 0.90)
		res.P99Ms = percentileMs(durs, 0.99)
		res.MaxMs = percentileMs(durs, 1)
		if len(res.Errors) == 0 {
			res.Errors = nil
		}
		allDurs = append(allDurs, durs...)
		rep.OK += res.OK
		rep.Shed += res.Shed
		rep.Results = append(rep.Results, res)
	}
	for _, n := range rep.Errors {
		rep.Attempts += n
	}
	rep.Attempts += rep.OK + rep.Shed
	if rep.Attempts > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Attempts)
	}
	rep.P50Ms = percentileMs(allDurs, 0.50)
	rep.P90Ms = percentileMs(allDurs, 0.90)
	rep.P99Ms = percentileMs(allDurs, 0.99)
	rep.MaxMs = percentileMs(allDurs, 1)
	if len(rep.Errors) == 0 {
		rep.Errors = nil
	}
	return rep, nil
}

// Clean reports whether the run shed only with typed overload/deadline
// errors — the invariant the CI soak smoke gates on. Sheds themselves
// are expected (that is the admission layer working); anything in the
// error histogram is not.
func (r *SoakReport) Clean() bool {
	return len(r.Errors) == 0
}

// SaveJSON merges the soak record into path (BENCH_<date>.json when
// empty) under the "soak" key; other experiments' keys in the dated
// record are preserved.
func (r *SoakReport) SaveJSON(path string) (string, error) {
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", r.Date)
	}
	doc := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(b, &doc)
	}
	doc["soak"] = r
	if _, ok := doc["date"]; !ok {
		doc["date"] = r.Date
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Report renders the per-tenant table plus the aggregate row.
func (r *SoakReport) Report() *Report {
	out := &Report{
		ID: "soak",
		Title: fmt.Sprintf("serving-plane soak: %d clients for %.1fs (%d-bit keys, %d rows, GOMAXPROCS=%d)",
			r.Clients, r.Seconds, r.KeyBits, r.Rows, r.GoMaxProcs),
		Header: []string{"tenant", "limit/s", "clients", "workloads", "attempts", "ok", "shed", "shed rate", "qps", "p50 ms", "p90 ms", "p99 ms", "max ms"},
	}
	row := func(name, limit string, clients int, workloads []string, attempts, ok, shed int, shedRate, qps, p50, p90, p99, max float64) {
		wl := "-"
		if len(workloads) > 0 {
			wl = ""
			for i, w := range workloads {
				if i > 0 {
					wl += "+"
				}
				wl += w
			}
		}
		out.Rows = append(out.Rows, []string{
			name, limit, fmt.Sprint(clients), wl,
			fmt.Sprint(attempts), fmt.Sprint(ok), fmt.Sprint(shed),
			fmt.Sprintf("%.1f%%", 100*shedRate),
			fmt.Sprintf("%.2f", qps),
			fmt.Sprintf("%.1f", p50), fmt.Sprintf("%.1f", p90),
			fmt.Sprintf("%.1f", p99), fmt.Sprintf("%.1f", max),
		})
	}
	for _, res := range r.Results {
		limit := "-"
		if res.Limit > 0 {
			limit = fmt.Sprintf("%.1f", res.Limit)
		}
		row(res.Tenant, limit, res.Clients, res.Workloads,
			res.Attempts, res.OK, res.Shed, res.ShedRate, res.QPS,
			res.P50Ms, res.P90Ms, res.P99Ms, res.MaxMs)
	}
	row("(all)", "", r.Clients, nil, r.Attempts, r.OK, r.Shed, r.ShedRate,
		float64(r.OK)/r.Seconds, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	if r.Clean() {
		out.Notes = append(out.Notes, "clean run: every failed request shed with a typed overload/deadline error")
	} else {
		out.Notes = append(out.Notes, fmt.Sprintf("NON-TYPED ERRORS observed: %v", r.Errors))
	}
	out.Notes = append(out.Notes,
		"sheds are the admission layer working; the error histogram must stay empty",
		fmt.Sprintf("emitted into BENCH_%s.json under the \"soak\" key", r.Date))
	return out
}

// flattenDurations merges the per-client latency samples into one slice.
func flattenDurations(per [][]time.Duration) []time.Duration {
	var all []time.Duration
	for _, ds := range per {
		all = append(all, ds...)
	}
	return all
}

// percentileMs returns the q-quantile (0 < q <= 1) of the sample in
// milliseconds, nearest-rank over a sorted copy; 0 on an empty sample.
func percentileMs(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}
