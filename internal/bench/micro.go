package bench

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"os"
	"runtime"
	"time"

	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/zmath"
)

// MicroResult is one measured micro-operation.
type MicroResult struct {
	// Op names the operation and the nonce path it ran on, e.g.
	// "paillier/encrypt/crt".
	Op string `json:"op"`
	// Name mirrors Op under the key downstream row consumers expect;
	// rows used to deserialize with name null. Op is kept for
	// compatibility with older readers.
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iters"`
}

// MicroReport is the machine-readable record sectopk-bench emits as
// BENCH_<date>.json so the perf trajectory is tracked across PRs.
type MicroReport struct {
	Date       string            `json:"date"`
	KeyBits    int               `json:"key_bits"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Knobs      map[string]string `json:"knobs"`
	Results    []MicroResult     `json:"results"`
}

// microBudget is the per-operation wall-clock budget; long enough for
// stable medians on RSA-sized moduli, short enough for a CI smoke step.
const microBudget = 75 * time.Millisecond

// invBatch is the element count for the batch-vs-loop inversion
// comparison; it appears in the emitted op names.
const invBatch = 64

// timeOp measures f's steady-state cost: one warm-up call, then repeated
// calls until the budget elapses.
func timeOp(f func() error) (MicroResult, error) {
	if err := f(); err != nil {
		return MicroResult{}, err
	}
	var iters int
	start := time.Now()
	for time.Since(start) < microBudget {
		if err := f(); err != nil {
			return MicroResult{}, err
		}
		iters++
	}
	elapsed := time.Since(start)
	return MicroResult{NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters), Iters: iters}, nil
}

// RunMicro measures the crypto hot paths this codebase optimizes — nonce
// generation on the spec / CRT / fast paths for both cryptosystems,
// key-holder decryption, and batch vs loop modular inversion — and
// returns the machine-readable report.
func RunMicro(cfg Config) (*MicroReport, error) {
	sk, err := paillier.GenerateKey(rand.Reader, cfg.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("bench: micro key: %w", err)
	}
	pk := &sk.PublicKey
	djSK, err := dj.NewPrivateKey(sk, 2)
	if err != nil {
		return nil, err
	}
	djPK := &djSK.PublicKey
	fastPK, err := paillier.NewFastEncryptor(pk, 0)
	if err != nil {
		return nil, err
	}
	fastDJ, err := dj.NewFastEncryptor(djPK, 0)
	if err != nil {
		return nil, err
	}
	crtPK := sk.CRTEncryptor()
	crtDJ := djSK.CRTEncryptor()

	// The knobs recorded here are the measurement parameters that
	// actually shaped this run. The micro experiment deliberately ignores
	// Config.FastNonce/Parallelism: it always measures the spec, CRT, and
	// fast paths side by side, single-threaded, so records stay
	// comparable across PRs regardless of CLI flags.
	rep := &MicroReport{
		Date:       time.Now().Format("2006-01-02"),
		KeyBits:    cfg.KeyBits,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Knobs: map[string]string{
			"fast_nonce_bits":   fmt.Sprint(paillier.FastNonceBits),
			"fast_nonce_window": fmt.Sprint(paillier.FastNonceWindow),
			"inv_batch":         fmt.Sprint(invBatch),
			"budget_ms":         fmt.Sprint(microBudget.Milliseconds()),
		},
	}

	m := big.NewInt(123456789)
	specCT, err := pk.Encrypt(m)
	if err != nil {
		return nil, err
	}
	djCT, err := djPK.Encrypt(m)
	if err != nil {
		return nil, err
	}

	// Batch-inversion comparison operands: blind-sized units mod N^2.
	units := make([]*big.Int, invBatch)
	for i := range units {
		u, err := zmath.RandUnit(rand.Reader, pk.N2)
		if err != nil {
			return nil, err
		}
		units[i] = u
	}

	// Montgomery-vs-big.Int comparison operands. The modmul chain runs in
	// the plaintext group Z_N — the Mult protocol's product domain — where
	// the engine amortizes domain entry over the whole chain. The modexp
	// and multiexp operands are ciphertext-sized elements of Z_{N^2}.
	engN, engN2 := pk.EngineN(), pk.EngineN2()
	if engN == nil || engN2 == nil {
		return nil, fmt.Errorf("bench: micro: key carries no Montgomery engines")
	}
	muls := make([]*big.Int, invBatch)
	for i := range muls {
		u, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		muls[i] = u
	}
	expBase, err := zmath.RandUnit(rand.Reader, pk.N2)
	if err != nil {
		return nil, err
	}
	expE, err := zmath.RandInt(rand.Reader, pk.N)
	if err != nil {
		return nil, err
	}
	const multiBases = 4
	mxBases := make([]*big.Int, multiBases)
	mxExps := make([]*big.Int, multiBases)
	for i := range mxBases {
		if mxBases[i], err = zmath.RandUnit(rand.Reader, pk.N2); err != nil {
			return nil, err
		}
		if mxExps[i], err = zmath.RandInt(rand.Reader, pk.N); err != nil {
			return nil, err
		}
	}

	ops := []struct {
		name string
		f    func() error
	}{
		{"paillier/encrypt/spec", func() error { _, err := pk.Encrypt(m); return err }},
		{"paillier/encrypt/crt", func() error { _, err := crtPK.Encrypt(m); return err }},
		{"paillier/encrypt/fast", func() error { _, err := fastPK.Encrypt(m); return err }},
		{"paillier/decrypt", func() error { _, err := sk.Decrypt(specCT); return err }},
		{"dj/encrypt/spec", func() error { _, err := djPK.Encrypt(m); return err }},
		{"dj/encrypt/crt", func() error { _, err := crtDJ.Encrypt(m); return err }},
		{"dj/encrypt/fast", func() error { _, err := fastDJ.Encrypt(m); return err }},
		{"dj/decrypt", func() error { _, err := djSK.Decrypt(djCT); return err }},
		{fmt.Sprintf("zmath/inverse-loop/%d", invBatch), func() error {
			for _, u := range units {
				if _, err := zmath.ModInverse(u, pk.N2); err != nil {
					return err
				}
			}
			return nil
		}},
		{fmt.Sprintf("zmath/inverse-batch/%d", invBatch), func() error {
			_, err := zmath.BatchModInverse(units, pk.N2)
			return err
		}},
		{fmt.Sprintf("zmath/modmul-big/%d", invBatch), func() error {
			acc := new(big.Int).Set(muls[0])
			for _, x := range muls[1:] {
				acc.Mul(acc, x)
				acc.Mod(acc, pk.N)
			}
			return nil
		}},
		{fmt.Sprintf("zmath/modmul-mont/%d", invBatch), func() error {
			engN.ProdMod(muls)
			return nil
		}},
		{"zmath/modexp-big", func() error {
			new(big.Int).Exp(expBase, expE, pk.N2)
			return nil
		}},
		{"zmath/modexp-mont", func() error {
			engN2.ExpMod(expBase, expE)
			return nil
		}},
		{fmt.Sprintf("zmath/multiexp-big/%d", multiBases), func() error {
			acc := big.NewInt(1)
			t := new(big.Int)
			for i := range mxBases {
				t.Exp(mxBases[i], mxExps[i], pk.N2)
				acc.Mul(acc, t)
				acc.Mod(acc, pk.N2)
			}
			return nil
		}},
		{fmt.Sprintf("zmath/multiexp-mont/%d", multiBases), func() error {
			_, err := engN2.MultiExpMod(mxBases, mxExps)
			return err
		}},
	}
	for _, op := range ops {
		res, err := timeOp(op.f)
		if err != nil {
			return nil, fmt.Errorf("bench: micro %s: %w", op.name, err)
		}
		res.Op = op.name
		res.Name = op.name
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON.
func (r *MicroReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SaveJSON writes the report to path (BENCH_<date>.json when path is
// empty) and returns the path written.
func (r *MicroReport) SaveJSON(path string) (string, error) {
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", r.Date)
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Report renders the micro measurements as a bench table, with the
// spec-path baseline ratio alongside each fast path.
func (r *MicroReport) Report() *Report {
	base := map[string]float64{}
	for _, res := range r.Results {
		base[res.Op] = res.NsPerOp
	}
	ratio := func(op, spec string) string {
		b, ok := base[spec]
		if !ok || base[op] == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", b/base[op])
	}
	out := &Report{
		ID:     "micro",
		Title:  fmt.Sprintf("crypto hot paths (%d-bit keys)", r.KeyBits),
		Header: []string{"op", "ns/op", "vs spec"},
	}
	for _, res := range r.Results {
		spec := ""
		switch res.Op {
		case "paillier/encrypt/crt", "paillier/encrypt/fast":
			spec = "paillier/encrypt/spec"
		case "dj/encrypt/crt", "dj/encrypt/fast":
			spec = "dj/encrypt/spec"
		case fmt.Sprintf("zmath/inverse-batch/%d", invBatch):
			spec = fmt.Sprintf("zmath/inverse-loop/%d", invBatch)
		case fmt.Sprintf("zmath/modmul-mont/%d", invBatch):
			spec = fmt.Sprintf("zmath/modmul-big/%d", invBatch)
		case "zmath/modexp-mont":
			spec = "zmath/modexp-big"
		case "zmath/multiexp-mont/4":
			spec = "zmath/multiexp-big/4"
		}
		vs := "-"
		if spec != "" {
			vs = ratio(res.Op, spec)
		}
		out.Rows = append(out.Rows, []string{
			res.Op,
			fmt.Sprintf("%.0f", res.NsPerOp),
			vs,
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("knobs: %v; gomaxprocs=%d; emitted as BENCH_%s.json", r.Knobs, r.GoMaxProcs, r.Date))
	return out
}
