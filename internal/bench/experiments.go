package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/join"
	"repro/internal/knn"
	"repro/internal/prf"
	"repro/internal/transport"
)

// Fig7 regenerates Figure 7: EHL vs EHL+ construction time (a) and size
// overhead (b) as the number of items grows. The paper sweeps 0.1M..1M;
// the default scaled sweep keeps the same linear shape at laptop scale.
func Fig7(r *Rig) ([]*Report, error) {
	counts := []int{100, 200, 400, 600, 800, 1000}
	if r.Cfg.Rows > 1000 {
		counts = []int{r.Cfg.Rows / 4, r.Cfg.Rows / 2, r.Cfg.Rows}
	}
	pk := r.Scheme.PublicKey()
	master, err := prf.NewKey()
	if err != nil {
		return nil, err
	}
	classic, err := ehl.NewHasher(master, ehl.Params{Kind: ehl.KindClassic, S: 5, H: 23}, pk)
	if err != nil {
		return nil, err
	}
	plus, err := ehl.NewHasher(master, ehl.Params{Kind: ehl.KindPlus, S: r.Cfg.EHLS}, pk)
	if err != nil {
		return nil, err
	}
	timeRep := &Report{
		ID:     "fig7a",
		Title:  "EHL vs EHL+ construction time vs number of items",
		Header: []string{"items", "EHL", "EHL+"},
	}
	sizeRep := &Report{
		ID:     "fig7b",
		Title:  "EHL vs EHL+ size overhead vs number of items",
		Header: []string{"items", "EHL", "EHL+"},
	}
	for _, n := range counts {
		var classicSize, plusSize int64
		start := time.Now()
		for i := 0; i < n; i++ {
			l, err := classic.Build(uint64(i))
			if err != nil {
				return nil, err
			}
			classicSize += int64(l.ByteSize(pk))
		}
		classicTime := time.Since(start)
		start = time.Now()
		for i := 0; i < n; i++ {
			l, err := plus.Build(uint64(i))
			if err != nil {
				return nil, err
			}
			plusSize += int64(l.ByteSize(pk))
		}
		plusTime := time.Since(start)
		timeRep.Rows = append(timeRep.Rows, []string{fmt.Sprint(n), fmtDur(classicTime), fmtDur(plusTime)})
		sizeRep.Rows = append(sizeRep.Rows, []string{fmt.Sprint(n), fmtBytes(classicSize), fmtBytes(plusSize)})
	}
	timeRep.Notes = append(timeRep.Notes,
		"paper shape: both linear in n, EHL+ cheaper (54s / 1M items on their 64-thread testbed)")
	sizeRep.Notes = append(sizeRep.Notes,
		"paper shape: EHL+ ~4.6x smaller (H=23 slots vs s=5 digests); 111MB for 1M EHL+ items")
	return []*Report{timeRep, sizeRep}, nil
}

// Fig8 regenerates Figure 8: full-relation encryption time and size for
// the four evaluation datasets under both structures.
func Fig8(r *Rig) ([]*Report, error) {
	timeRep := &Report{
		ID:     "fig8a",
		Title:  "Relation encryption time: EHL vs EHL+ (scaled datasets)",
		Header: []string{"dataset", "rows", "attrs", "EHL", "EHL+"},
	}
	sizeRep := &Report{
		ID:     "fig8b",
		Title:  "Encrypted relation size: EHL vs EHL+ (scaled datasets)",
		Header: []string{"dataset", "rows", "attrs", "EHL", "EHL+"},
	}
	for _, spec := range dataset.All() {
		rel, err := r.relation(spec)
		if err != nil {
			return nil, err
		}
		var cells [2]struct {
			dur  time.Duration
			size int64
		}
		for i, params := range []ehl.Params{
			{Kind: ehl.KindClassic, S: 5, H: 23},
			{Kind: ehl.KindPlus, S: r.Cfg.EHLS},
		} {
			scheme, err := core.NewSchemeFromKeys(core.Params{
				KeyBits: r.Cfg.KeyBits, EHL: params, MaxScoreBits: r.Cfg.MaxScoreBits,
			}, r.Scheme.KeyMaterial())
			if err != nil {
				return nil, err
			}
			start := time.Now()
			er, err := scheme.EncryptRelation(rel)
			if err != nil {
				return nil, err
			}
			cells[i].dur = time.Since(start)
			cells[i].size = er.ByteSize(r.Scheme.PublicKey())
		}
		timeRep.Rows = append(timeRep.Rows, []string{
			spec.Name, fmt.Sprint(rel.N()), fmt.Sprint(rel.M()),
			fmtDur(cells[0].dur), fmtDur(cells[1].dur),
		})
		sizeRep.Rows = append(sizeRep.Rows, []string{
			spec.Name, fmt.Sprint(rel.N()), fmt.Sprint(rel.M()),
			fmtBytes(cells[0].size), fmtBytes(cells[1].size),
		})
	}
	timeRep.Notes = append(timeRep.Notes, "paper shape: EHL+ faster on every dataset; one-time offline cost")
	return []*Report{timeRep, sizeRep}, nil
}

// queryFigure is the shared sweep runner behind Figures 9, 10 and 11a/b:
// average time per depth for one engine mode, varying k at fixed m and
// varying m at fixed k, across the four datasets.
func queryFigure(r *Rig, id, title string, opts core.Options, ks []int, fixedM int, ms []int, fixedK int) ([]*Report, error) {
	kRep := &Report{
		ID:     id + "a",
		Title:  title + fmt.Sprintf(": time per depth varying k (m=%d)", fixedM),
		Header: append([]string{"dataset"}, headerInts("k", ks)...),
	}
	mRep := &Report{
		ID:     id + "b",
		Title:  title + fmt.Sprintf(": time per depth varying m (k=%d)", fixedK),
		Header: append([]string{"dataset"}, headerInts("m", ms)...),
	}
	for _, spec := range dataset.All() {
		if spec.M < maxInt(ms) {
			spec = spec.WithM(maxInt(ms))
		}
		er, _, err := r.encrypted(spec)
		if err != nil {
			return nil, err
		}
		kRow := []string{spec.Name}
		for _, k := range ks {
			o := opts
			if o.Mode == core.QryBa && o.BatchDepth < k {
				o.BatchDepth = k
			}
			m, err := r.timeQuery(er, firstAttrs(fixedM), k, o)
			if err != nil {
				return nil, fmt.Errorf("%s %s k=%d: %w", id, spec.Name, k, err)
			}
			kRow = append(kRow, fmtDur(m.timePerDepth))
		}
		kRep.Rows = append(kRep.Rows, kRow)
		mRow := []string{spec.Name}
		for _, mm := range ms {
			o := opts
			if o.Mode == core.QryBa && o.BatchDepth < fixedK {
				o.BatchDepth = fixedK
			}
			m, err := r.timeQuery(er, firstAttrs(mm), fixedK, o)
			if err != nil {
				return nil, fmt.Errorf("%s %s m=%d: %w", id, spec.Name, mm, err)
			}
			mRow = append(mRow, fmtDur(m.timePerDepth))
		}
		mRep.Rows = append(mRep.Rows, mRow)
	}
	return []*Report{kRep, mRep}, nil
}

// Fig9 regenerates Figure 9 (Qry_F): paper shape — time/depth grows
// roughly linearly in k and in m; ~1.3 s/depth at m=3, k=20 on their
// testbed.
func Fig9(r *Rig) ([]*Report, error) {
	return queryFigure(r, "fig9", "Qry_F",
		core.Options{Mode: core.QryF, Halt: core.HaltPaper},
		[]int{2, 4, 6, 8}, 3, []int{2, 3, 4}, 3)
}

// Fig10 regenerates Figure 10 (Qry_E): same sweeps, 5-7x faster than
// Qry_F in the paper.
func Fig10(r *Rig) ([]*Report, error) {
	return queryFigure(r, "fig10", "Qry_E",
		core.Options{Mode: core.QryE, Halt: core.HaltPaper},
		[]int{2, 4, 6, 8}, 3, []int{2, 3, 4}, 3)
}

// Fig11 regenerates Figure 11 (Qry_Ba): sweeps over k and m plus the
// batching-parameter sweep of Figure 11c.
func Fig11(r *Rig) ([]*Report, error) {
	reports, err := queryFigure(r, "fig11", "Qry_Ba",
		core.Options{Mode: core.QryBa, Halt: core.HaltPaper, BatchDepth: 4},
		[]int{2, 4, 6, 8}, 3, []int{2, 3, 4}, 3)
	if err != nil {
		return nil, err
	}
	pRep := &Report{
		ID:     "fig11c",
		Title:  "Qry_Ba: time per depth varying batching parameter p (k=3, m=3)",
		Header: []string{"dataset", "p=3", "p=4", "p=6", "p=8"},
	}
	for _, spec := range dataset.All() {
		er, _, err := r.encrypted(spec)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, p := range []int{3, 4, 6, 8} {
			m, err := r.timeQuery(er, firstAttrs(3), 3,
				core.Options{Mode: core.QryBa, Halt: core.HaltPaper, BatchDepth: p, MaxDepth: 2 * p})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m.timePerDepth))
		}
		pRep.Rows = append(pRep.Rows, row)
	}
	pRep.Notes = append(pRep.Notes,
		"paper shape: a sweet-spot p exists per dataset (their p in 200..550 at full scale)")
	return append(reports, pRep), nil
}

// Fig12 regenerates Figure 12: the three engines side by side (paper: at
// k=5, m=3, p=500, Qry_Ba is ~15x faster than Qry_F).
func Fig12(r *Rig) ([]*Report, error) {
	rep := &Report{
		ID:     "fig12",
		Title:  "Qry_F vs Qry_E vs Qry_Ba, time per depth (k=3, m=3)",
		Header: []string{"dataset", "Qry_F", "Qry_E", "Qry_Ba"},
	}
	for _, spec := range dataset.All() {
		er, _, err := r.encrypted(spec)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, opts := range []core.Options{
			{Mode: core.QryF, Halt: core.HaltPaper},
			{Mode: core.QryE, Halt: core.HaltPaper},
			{Mode: core.QryBa, Halt: core.HaltPaper, BatchDepth: 6},
		} {
			m, err := r.timeQuery(er, firstAttrs(3), 3, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m.timePerDepth))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: Qry_Ba << Qry_E << Qry_F")
	return []*Report{rep}, nil
}

// Table3 regenerates Table 3: total communication bandwidth and the
// modeled 50 Mbps-LAN latency per query (paper: k=20, m=4).
func Table3(r *Rig) ([]*Report, error) {
	rep := &Report{
		ID:     "tab3",
		Title:  "Communication bandwidth & modeled 50 Mbps latency (m=4, Qry_F)",
		Header: []string{"dataset", "bandwidth", "latency", "rounds"},
	}
	link := transport.LAN50Mbps()
	for _, spec := range dataset.All() {
		if spec.M < 4 {
			spec = spec.WithM(4)
		}
		er, _, err := r.encrypted(spec)
		if err != nil {
			return nil, err
		}
		k := 20
		if k >= er.N {
			k = er.N - 1
		}
		// timeQuery resets the counters, so the link model sees exactly
		// one query's traffic.
		m, err := r.timeQuery(er, firstAttrs(4), k, core.Options{Mode: core.QryF, Halt: core.HaltPaper})
		if err != nil {
			return nil, err
		}
		lat := link.Latency(r.Stats)
		rep.Rows = append(rep.Rows, []string{
			spec.Name, fmtBytes(m.bytes), fmtDur(lat), fmt.Sprint(m.rounds),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: 8.87-17.3MB / 1.41-2.77s over full-scale scans; communication is never the bottleneck")
	return []*Report{rep}, nil
}

// Fig13 regenerates Figure 13: bandwidth per depth varying m (a) and
// total bandwidth varying k (b), on the synthetic dataset.
func Fig13(r *Rig) ([]*Report, error) {
	er, _, err := r.encrypted(dataset.Synthetic())
	if err != nil {
		return nil, err
	}
	aRep := &Report{
		ID:     "fig13a",
		Title:  "Bandwidth per depth varying m (synthetic, Qry_F)",
		Header: []string{"m", "bytes/depth"},
	}
	for _, m := range []int{2, 3, 4, 5, 6} {
		meas, err := r.timeQuery(er, firstAttrs(m), 3, core.Options{Mode: core.QryF, Halt: core.HaltPaper})
		if err != nil {
			return nil, err
		}
		aRep.Rows = append(aRep.Rows, []string{fmt.Sprint(m), fmtBytes(meas.bytesPerDep)})
	}
	aRep.Notes = append(aRep.Notes, "paper shape: O(m^2) growth per depth, independent of k")
	bRep := &Report{
		ID:     "fig13b",
		Title:  "Total bandwidth varying k (synthetic, m=4, Qry_F)",
		Header: []string{"k", "total bytes", "depths"},
	}
	for _, k := range []int{2, 4, 6, 8} {
		meas, err := r.timeQuery(er, firstAttrs(4), k, core.Options{Mode: core.QryF, Halt: core.HaltPaper})
		if err != nil {
			return nil, err
		}
		bRep.Rows = append(bRep.Rows, []string{fmt.Sprint(k), fmtBytes(meas.bytes), fmt.Sprint(meas.depth)})
	}
	bRep.Notes = append(bRep.Notes,
		"paper shape: per-depth bandwidth independent of k; totals grow only via the halting depth")
	return []*Report{aRep, bRep}, nil
}

// KNNCompare regenerates the Section 11.3 comparison: SecTopK vs the
// SkNN-as-top-k baseline across database sizes.
func KNNCompare(r *Rig) ([]*Report, error) {
	rep := &Report{
		ID:     "knn",
		Title:  "SecTopK (Qry_E) vs secure-kNN baseline [21], sum-of-squares top-k",
		Header: []string{"n", "SecTopK/query", "SkNN/query", "SkNN bytes", "SecTopK bytes"},
	}
	kScheme, err := knn.NewScheme(r.Scheme.KeyMaterial(), ehl.Params{Kind: ehl.KindPlus, S: r.Cfg.EHLS}, r.Cfg.MaxScoreBits)
	if err != nil {
		return nil, err
	}
	const k = 3
	for _, n := range []int{40, 80, 120} {
		spec := dataset.Synthetic().WithN(n).WithM(3)
		// High cross-attribute correlation keeps the halting depth shallow
		// relative to n, which is the regime of the paper's full-scale
		// comparison (halting depth << n at 10^6 rows); without it the
		// scaled-down SecTopK scan degenerates to a full pass.
		spec.Correlation = 0.95
		rel, err := dataset.Generate(spec, r.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		// Our scheme: square the attributes at encryption time so the
		// linear engine ranks by sum-of-squares (Section 11.3's setup).
		squared := &dataset.Relation{Name: "sq", Rows: make([][]int64, rel.N())}
		for i, row := range rel.Rows {
			srow := make([]int64, len(row))
			for j, v := range row {
				srow[j] = v * v
			}
			squared.Rows[i] = srow
		}
		er, err := r.Scheme.EncryptRelation(squared)
		if err != nil {
			return nil, err
		}
		r.Stats.Reset()
		start := time.Now()
		meas, err := r.timeQuery(er, firstAttrs(3), k, core.Options{Mode: core.QryE, Halt: core.HaltPaper, MaxDepth: er.N})
		if err != nil {
			return nil, err
		}
		oursTime := time.Since(start)
		oursBytes := meas.bytes

		db, err := kScheme.Encrypt(rel)
		if err != nil {
			return nil, err
		}
		kEngine, err := knn.NewEngine(r.Client, db, r.Cfg.MaxScoreBits)
		if err != nil {
			return nil, err
		}
		r.Stats.Reset()
		start = time.Now()
		if _, err := knn.TopKViaKNN(context.Background(), kEngine, spec.MaxScore, k); err != nil {
			return nil, err
		}
		knnTime := time.Since(start)
		knnBytes := r.Stats.Bytes()
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), fmtDur(oursTime), fmtDur(knnTime), fmtBytes(knnBytes), fmtBytes(oursBytes),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper shape: [21] touches all n records per query (O(nm) compute + bandwidth); SecTopK scans only to the halting depth",
		"paper datapoint: [21] needs >2h for k=10 over 2,000 records; SecTopK answers over 1M records in <30min")
	return []*Report{rep}, nil
}

// Fig14 regenerates Figure 14: secure top-k join time as the number of
// combined attributes grows (paper: R1 5Kx10, R2 10Kx15, m 5..20).
func Fig14(r *Rig) ([]*Report, error) {
	rep := &Report{
		ID:     "fig14",
		Title:  "Top-k join ./sec time varying combined attributes (scaled R1, R2)",
		Header: []string{"m", "join time", "joined tuples"},
	}
	jScheme, err := join.NewSchemeFromKeys(join.Params{
		KeyBits: r.Cfg.KeyBits, EHL: ehl.Params{Kind: ehl.KindPlus, S: r.Cfg.EHLS}, MaxScoreBits: r.Cfg.MaxScoreBits,
	}, r.Scheme.KeyMaterial())
	if err != nil {
		return nil, err
	}
	// Scaled stand-ins for the paper's uniform 5K/10K relations; join
	// attribute domain sized so a few percent of pairs join.
	n1, n2 := 16, 32
	r1 := &dataset.Relation{Name: "J1", Rows: make([][]int64, n1)}
	r2 := &dataset.Relation{Name: "J2", Rows: make([][]int64, n2)}
	const m1, m2 = 10, 15
	rng := rand.New(rand.NewSource(r.Cfg.Seed))
	for i := 0; i < n1; i++ {
		row := make([]int64, m1)
		row[0] = int64(rng.Intn(24))
		for j := 1; j < m1; j++ {
			row[j] = int64(rng.Intn(1000))
		}
		r1.Rows[i] = row
	}
	for i := 0; i < n2; i++ {
		row := make([]int64, m2)
		row[0] = int64(rng.Intn(24))
		for j := 1; j < m2; j++ {
			row[j] = int64(rng.Intn(1000))
		}
		r2.Rows[i] = row
	}
	er1, err := jScheme.EncryptRelation(r1)
	if err != nil {
		return nil, err
	}
	er2, err := jScheme.EncryptRelation(r2)
	if err != nil {
		return nil, err
	}
	for _, m := range []int{5, 8, 10, 15, 20} {
		p1 := m / 2
		if p1 > m1-1 {
			p1 = m1 - 1
		}
		p2 := m - p1
		if p2 > m2-1 {
			p2 = m2 - 1
			p1 = m - p2
		}
		proj1 := make([]int, p1)
		for i := range proj1 {
			proj1[i] = 1 + i%(m1-1)
		}
		proj2 := make([]int, p2)
		for i := range proj2 {
			proj2[i] = 1 + i%(m2-1)
		}
		tk, err := jScheme.NewToken(er1, er2, 0, 0, 1, 1, proj1, proj2, 5)
		if err != nil {
			return nil, err
		}
		engine, err := join.NewEngine(r.Client, er1, er2, r.Cfg.MaxScoreBits)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		out, err := engine.SecJoin(context.Background(), tk)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(m), fmtDur(time.Since(start)), fmt.Sprint(len(out))})
	}
	rep.Notes = append(rep.Notes, "paper shape: roughly linear growth in the number of combined attributes")
	return []*Report{rep}, nil
}

// Ablations runs the design-choice studies DESIGN.md commits to: halting
// policy, ranking strategy, and EHL structure inside the full query.
func Ablations(r *Rig) ([]*Report, error) {
	spec := dataset.Synthetic().WithN(48).WithM(3)
	spec.Correlation = 0.85
	rel, err := dataset.Generate(spec, r.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	er, err := r.Scheme.EncryptRelation(rel)
	if err != nil {
		return nil, err
	}
	halt := &Report{
		ID:     "abl1",
		Title:  "Ablation: halting policy (Qry_E, k=3, m=3, run to halt)",
		Header: []string{"policy", "halting depth", "total time"},
	}
	for _, row := range []struct {
		name string
		h    core.HaltPolicy
	}{{"paper", core.HaltPaper}, {"strict", core.HaltStrict}} {
		m, err := r.timeQuery(er, firstAttrs(3), 3, core.Options{Mode: core.QryE, Halt: row.h, MaxDepth: er.N})
		if err != nil {
			return nil, err
		}
		halt.Rows = append(halt.Rows, []string{row.name, fmt.Sprint(m.depth), fmtDur(m.elapsed)})
	}
	halt.Notes = append(halt.Notes,
		"strict halting restores NRA's guarantee at the cost of extra comparisons and (possibly) later halting")

	sortRep := &Report{
		ID:     "abl2",
		Title:  "Ablation: ranking strategy (Qry_E, k=3, m=3, capped depth)",
		Header: []string{"strategy", "time/depth"},
	}
	for _, row := range []struct {
		name string
		s    core.SortStrategy
	}{{"top-k selection", core.SortTopK}, {"full EncSort [7]", core.SortFull}} {
		m, err := r.timeQuery(er, firstAttrs(3), 3, core.Options{Mode: core.QryE, Halt: core.HaltPaper, Sort: row.s})
		if err != nil {
			return nil, err
		}
		sortRep.Rows = append(sortRep.Rows, []string{row.name, fmtDur(m.timePerDepth)})
	}

	ehlRep := &Report{
		ID:     "abl3",
		Title:  "Ablation: EHL structure inside the full query (Qry_E, k=3, m=3)",
		Header: []string{"structure", "time/depth", "ER size"},
	}
	for _, row := range []struct {
		name   string
		params ehl.Params
	}{
		{"EHL (H=23)", ehl.Params{Kind: ehl.KindClassic, S: 5, H: 23}},
		{"EHL+ (s=3)", ehl.Params{Kind: ehl.KindPlus, S: 3}},
	} {
		scheme, err := core.NewSchemeFromKeys(core.Params{
			KeyBits: r.Cfg.KeyBits, EHL: row.params, MaxScoreBits: r.Cfg.MaxScoreBits,
		}, r.Scheme.KeyMaterial())
		if err != nil {
			return nil, err
		}
		er2, err := scheme.EncryptRelation(rel)
		if err != nil {
			return nil, err
		}
		tk, err := scheme.Token(er2, firstAttrs(3), nil, 3)
		if err != nil {
			return nil, err
		}
		engine, err := core.NewEngine(r.Client, er2)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := engine.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltPaper, MaxDepth: r.Cfg.MaxDepth})
		if err != nil {
			return nil, err
		}
		perDepth := time.Since(start) / time.Duration(maxI(res.Depth, 1))
		ehlRep.Rows = append(ehlRep.Rows, []string{row.name, fmtDur(perDepth), fmtBytes(er2.ByteSize(r.Scheme.PublicKey()))})
	}
	ehlRep.Notes = append(ehlRep.Notes, "EHL+ wins on both query time (s vs H ciphertext ops per ⊖) and storage")
	return []*Report{halt, sortRep, ehlRep}, nil
}

// Registry maps experiment ids to runners.
var Registry = map[string]func(*Rig) ([]*Report, error){
	"fig7":     Fig7,
	"fig8":     Fig8,
	"fig9":     Fig9,
	"fig10":    Fig10,
	"fig11":    Fig11,
	"fig12":    Fig12,
	"tab3":     Table3,
	"fig13":    Fig13,
	"knn":      KNNCompare,
	"fig14":    Fig14,
	"ablation": Ablations,
}

// ExperimentIDs lists the registry keys in the paper's order.
func ExperimentIDs() []string {
	return []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "tab3", "fig13", "knn", "fig14", "ablation"}
}

// Run executes one experiment and renders its reports.
func Run(r *Rig, id string) ([]*Report, error) {
	fn, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	reports, err := fn(r)
	if err != nil {
		return nil, err
	}
	for _, rep := range reports {
		if err := rep.Render(r.Cfg.out()); err != nil {
			return nil, err
		}
	}
	return reports, nil
}

func headerInts(prefix string, vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%s=%d", prefix, v)
	}
	return out
}

func maxInt(vals []int) int {
	out := 0
	for _, v := range vals {
		if v > out {
			out = v
		}
	}
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
