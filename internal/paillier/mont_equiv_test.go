package paillier

import (
	"math/big"
	"testing"

	"repro/internal/zmath"
)

// withEngineModes runs f once with the Montgomery engine enabled and once
// with it disabled, restoring the previous toggle state afterwards.
func withEngineModes(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	prev := zmath.MontgomeryEnabled()
	defer zmath.SetMontgomeryEnabled(prev)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"mont-on", true}, {"mont-off", false}} {
		zmath.SetMontgomeryEnabled(mode.on)
		t.Run(mode.name, f)
	}
}

// TestFixedNonceBitEquality pins the engine-routed operations to the
// big.Int reference path bit for bit: with the nonce fixed, encryption
// and every homomorphic operator must produce byte-identical ciphertexts
// whichever arithmetic backend is active.
func TestFixedNonceBitEquality(t *testing.T) {
	sk := testKeyPair(t)
	pk := &sk.PublicKey
	if pk.EngineN() == nil || pk.EngineN2() == nil {
		t.Fatal("generated key carries no Montgomery engines")
	}

	nonce := big.NewInt(0x5eed)
	m1, m2 := big.NewInt(424242), big.NewInt(987654321)
	k := big.NewInt(1337)

	type snapshot struct {
		enc, sum, all, plain, mul *big.Int
	}
	var ref *snapshot
	withEngineModes(t, func(t *testing.T) {
		c1, err := pk.EncryptWithNonce(m1, nonce)
		if err != nil {
			t.Fatalf("EncryptWithNonce: %v", err)
		}
		c2, err := pk.EncryptWithNonce(m2, nonce)
		if err != nil {
			t.Fatalf("EncryptWithNonce: %v", err)
		}
		sum, err := pk.Add(c1, c2)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		all, err := pk.AddAll([]*Ciphertext{c1, c2, sum})
		if err != nil {
			t.Fatalf("AddAll: %v", err)
		}
		plain, err := pk.AddPlain(c1, k)
		if err != nil {
			t.Fatalf("AddPlain: %v", err)
		}
		mul, err := pk.MulConst(c1, k)
		if err != nil {
			t.Fatalf("MulConst: %v", err)
		}
		got := &snapshot{enc: c1.C, sum: sum.C, all: all.C, plain: plain.C, mul: mul.C}
		if ref == nil {
			ref = got
			return
		}
		for _, cmp := range []struct {
			name     string
			want, at *big.Int
		}{
			{"EncryptWithNonce", ref.enc, got.enc},
			{"Add", ref.sum, got.sum},
			{"AddAll", ref.all, got.all},
			{"AddPlain", ref.plain, got.plain},
			{"MulConst", ref.mul, got.mul},
		} {
			if cmp.want.Cmp(cmp.at) != 0 {
				t.Errorf("%s: engine paths diverge:\n  mont-on  %v\n  mont-off %v", cmp.name, cmp.want, cmp.at)
			}
		}
	})
}

// TestAddAllMatchesSequentialAdd pins the product-chain accumulator to the
// pairwise operator on both backends.
func TestAddAllMatchesSequentialAdd(t *testing.T) {
	sk := testKeyPair(t)
	pk := &sk.PublicKey
	cts := make([]*Ciphertext, 9)
	for i := range cts {
		var err error
		if cts[i], err = pk.Encrypt(big.NewInt(int64(i * i))); err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
	}
	want := cts[0]
	for _, c := range cts[1:] {
		var err error
		if want, err = pk.Add(want, c); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	withEngineModes(t, func(t *testing.T) {
		got, err := pk.AddAll(cts)
		if err != nil {
			t.Fatalf("AddAll: %v", err)
		}
		if got.C.Cmp(want.C) != 0 {
			t.Fatal("AddAll diverges from sequential Add")
		}
	})
	if _, err := pk.AddAll(nil); err == nil {
		t.Fatal("AddAll accepted an empty batch")
	}
}
