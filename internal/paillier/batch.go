package paillier

import (
	"fmt"
	"math/big"

	"repro/internal/parallel"
	"repro/internal/zmath"
)

// Encryptor is the encryption surface the batch helpers and the blinding
// layers program against. Both PublicKey (computes nonces inline) and
// NoncePool (draws precomputed nonce powers) implement it, so callers can
// be handed whichever the deployment configured without caring.
type Encryptor interface {
	Encrypt(m *big.Int) (*Ciphertext, error)
	EncryptZero() (*Ciphertext, error)
	Rerandomize(a *Ciphertext) (*Ciphertext, error)
	Key() *PublicKey
}

// Key returns the public key itself, making PublicKey an Encryptor.
func (pk *PublicKey) Key() *PublicKey { return pk }

// encryptWithRN assembles Enc(m) from a precomputed nonce power
// rn = r^N mod N^2: Enc(m) = (1 + m*N) * rn mod N^2.
func (pk *PublicKey) encryptWithRN(m, rn *big.Int) (*Ciphertext, error) {
	mm, err := pk.validateMessage(m)
	if err != nil {
		return nil, err
	}
	// gm = 1 + m*N < N^2 already, so the only reduction is the engine's
	// nonce multiply.
	gm := new(big.Int).Mul(mm, pk.N)
	gm.Add(gm, zmath.One)
	return &Ciphertext{C: pk.mulN2(gm, rn)}, nil
}

// EncryptBatch encrypts every message with fresh randomness, fanning the
// nonce exponentiations out over at most parallel.Workers(par) goroutines.
// par follows the shared knob convention (0 = all cores, 1 = serial).
func EncryptBatch(enc Encryptor, ms []*big.Int, par int) ([]*Ciphertext, error) {
	return parallel.MapErr(par, ms, func(_ int, m *big.Int) (*Ciphertext, error) {
		return enc.Encrypt(m)
	})
}

// EncryptZeroBatch returns n independent fresh encryptions of zero.
func EncryptZeroBatch(enc Encryptor, n, par int) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, n)
	err := parallel.ForEach(par, n, func(i int) error {
		ct, err := enc.EncryptZero()
		if err != nil {
			return err
		}
		out[i] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RerandomizeBatch re-randomizes every ciphertext.
func RerandomizeBatch(enc Encryptor, cts []*Ciphertext, par int) ([]*Ciphertext, error) {
	return parallel.MapErr(par, cts, func(_ int, c *Ciphertext) (*Ciphertext, error) {
		return enc.Rerandomize(c)
	})
}

// EncryptWithNonceBatch encrypts ms[i] under rs[i]. Deterministic given
// the nonces, so serial/parallel equivalence is directly testable.
func (pk *PublicKey) EncryptWithNonceBatch(ms, rs []*big.Int, par int) ([]*Ciphertext, error) {
	if len(ms) != len(rs) {
		return nil, fmt.Errorf("paillier: %d messages for %d nonces", len(ms), len(rs))
	}
	return parallel.MapErr(par, ms, func(i int, m *big.Int) (*Ciphertext, error) {
		return pk.EncryptWithNonce(m, rs[i])
	})
}

// DecryptBatch decrypts every ciphertext. Errors carry the failing index.
func (sk *PrivateKey) DecryptBatch(cts []*Ciphertext, par int) ([]*big.Int, error) {
	return parallel.MapErr(par, cts, func(i int, c *Ciphertext) (*big.Int, error) {
		m, err := sk.Decrypt(c)
		if err != nil {
			return nil, fmt.Errorf("paillier: DecryptBatch[%d]: %w", i, err)
		}
		return m, nil
	})
}

// DecryptSignedBatch decrypts every ciphertext into (-N/2, N/2].
func (sk *PrivateKey) DecryptSignedBatch(cts []*Ciphertext, par int) ([]*big.Int, error) {
	return parallel.MapErr(par, cts, func(i int, c *Ciphertext) (*big.Int, error) {
		m, err := sk.DecryptSigned(c)
		if err != nil {
			return nil, fmt.Errorf("paillier: DecryptSignedBatch[%d]: %w", i, err)
		}
		return m, nil
	})
}

// NoncePool precomputes nonce powers r^N mod N^2 — the single hottest
// operation in the system — on background goroutines so foreground
// encryptions reduce to two modular multiplications. The powers come from
// any NonceSource: the spec path (a *PublicKey), the key holder's CRT
// split, or the fast-nonce table, so pooling composes with the
// precomputation fast paths. A drained pool falls back to computing
// inline, so the pool is purely a throughput optimization and never
// changes results.
type NoncePool struct {
	src  NonceSource
	pool *parallel.Pool[*big.Int]
}

// NewNoncePool starts workers filler goroutines maintaining up to capacity
// precomputed nonce powers drawn from src. Close must be called to
// release them.
func NewNoncePool(src NonceSource, workers, capacity int) *NoncePool {
	return &NoncePool{src: src, pool: parallel.NewPool(workers, capacity, src.NoncePower)}
}

// Close stops the background fillers. Safe to call once; the pool remains
// usable afterwards (Get computes inline).
func (np *NoncePool) Close() { np.pool.Close() }

// get returns a precomputed nonce power, or computes one inline when the
// pool is drained.
func (np *NoncePool) get() (*big.Int, error) {
	if rn, ok := np.pool.Get(); ok {
		return rn, nil
	}
	return np.src.NoncePower()
}

// Key returns the underlying public key.
func (np *NoncePool) Key() *PublicKey { return np.src.Key() }

// NoncePower returns a pooled nonce power (inline when drained), making
// the pool itself a NonceSource.
func (np *NoncePool) NoncePower() (*big.Int, error) { return np.get() }

// Encrypt encrypts m using a pooled nonce power.
func (np *NoncePool) Encrypt(m *big.Int) (*Ciphertext, error) {
	rn, err := np.get()
	if err != nil {
		return nil, err
	}
	return np.Key().encryptWithRN(m, rn)
}

// EncryptZero returns a fresh encryption of zero from the pool.
func (np *NoncePool) EncryptZero() (*Ciphertext, error) {
	return np.Encrypt(zmath.Zero)
}

// Rerandomize multiplies by a pooled fresh encryption of zero.
func (np *NoncePool) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	z, err := np.EncryptZero()
	if err != nil {
		return nil, err
	}
	return np.Key().Add(a, z)
}
