// Package paillier implements the Paillier public-key cryptosystem
// (Paillier, EUROCRYPT 1999), the additively homomorphic encryption scheme
// that SecTopK uses for every score, bound, and EHL component.
//
// Messages live in Z_N and ciphertexts in Z*_{N^2}. The scheme supports
//
//	Enc(x) * Enc(y)   = Enc(x + y)   (Add)
//	Enc(x)^a          = Enc(a * x)   (MulConst)
//	Enc(x)^{-1}       = Enc(-x)      (Neg)
//
// which are the only homomorphic properties the paper's protocols rely on
// (Section 3.3). Decryption is CRT-accelerated using the factorization.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/zmath"
)

// MinKeyBits is the smallest modulus size GenerateKey accepts. The paper's
// own evaluation uses a 256-bit N ("128-bit primes", Section 5); production
// deployments should use 2048 or more.
const MinKeyBits = 128

var (
	// ErrMessageRange is returned when a plaintext is outside [0, N).
	ErrMessageRange = errors.New("paillier: message outside [0, N)")
	// ErrCiphertextRange is returned when a ciphertext is outside (0, N^2)
	// or shares a factor with N.
	ErrCiphertextRange = errors.New("paillier: invalid ciphertext")
	// ErrKeyMismatch is returned when operands were encrypted under
	// different public keys.
	ErrKeyMismatch = errors.New("paillier: ciphertexts under different keys")
)

// PublicKey holds the Paillier public key N together with cached values.
type PublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // N^2, the ciphertext modulus

	// engN and engN2 are the Montgomery/Barrett reduction engines for the
	// two long-lived moduli, precomputed by the constructors. They are nil
	// on literal-constructed keys, in which case every helper falls back
	// to plain big.Int arithmetic with identical outputs.
	engN  *zmath.Modulus
	engN2 *zmath.Modulus
}

// EngineN returns the reduction engine for N (nil on keys built without
// constructors). Callers must treat it as read-only.
func (pk *PublicKey) EngineN() *zmath.Modulus { return pk.engN }

// EngineN2 returns the reduction engine for the ciphertext modulus N^2.
func (pk *PublicKey) EngineN2() *zmath.Modulus { return pk.engN2 }

// attachEngines populates the reduction engines; N is odd for every valid
// key (a product of odd primes — the guard only spares hand-built toy
// keys), so construction cannot fail.
func (pk *PublicKey) attachEngines() {
	if pk.N.Bit(0) == 1 {
		pk.engN = zmath.MustModulus(pk.N)
		pk.engN2 = zmath.MustModulus(pk.N2)
	}
}

// mulN2 multiplies mod N^2 through the engine when the key has one.
func (pk *PublicKey) mulN2(a, b *big.Int) *big.Int {
	if pk.engN2 != nil {
		return pk.engN2.MulMod(a, b)
	}
	out := new(big.Int).Mul(a, b)
	return out.Mod(out, pk.N2)
}

// PrivateKey holds the factorization and the CRT decryption caches.
type PrivateKey struct {
	PublicKey
	P, Q *big.Int

	p2, q2     *big.Int // p^2, q^2
	pOrder     *big.Int // p-1
	qOrder     *big.Int // q-1
	hp, hq     *big.Int // CRT decryption multipliers
	pInvModQ   *big.Int // p^{-1} mod q for plaintext recombination
	p2InvModQ2 *big.Int // p^2^{-1} mod q^2 for recombination
	Lambda     *big.Int // lcm(p-1, q-1); exposed for the DJ extension
}

// Ciphertext is a Paillier ciphertext: an element of Z*_{N^2}.
type Ciphertext struct {
	C *big.Int
}

// GenerateKey creates a Paillier key pair with an N of the given bit length.
func GenerateKey(rnd io.Reader, bits int) (*PrivateKey, error) {
	if bits < MinKeyBits {
		return nil, fmt.Errorf("paillier: key size %d below minimum %d", bits, MinKeyBits)
	}
	for {
		p, err := rand.Prime(rnd, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(rnd, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		sk, err := newPrivateKey(p, q)
		if err != nil {
			continue
		}
		return sk, nil
	}
}

// FromPrimes rebuilds a private key from its prime factors (e.g. when
// loading stored key material). The primes are validated for primality
// and size.
func FromPrimes(p, q *big.Int) (*PrivateKey, error) {
	if p == nil || q == nil || p.Cmp(q) == 0 {
		return nil, errors.New("paillier: need two distinct primes")
	}
	if !p.ProbablyPrime(32) || !q.ProbablyPrime(32) {
		return nil, errors.New("paillier: factors are not prime")
	}
	if p.BitLen()+q.BitLen() < MinKeyBits {
		return nil, fmt.Errorf("paillier: modulus below %d bits", MinKeyBits)
	}
	return newPrivateKey(p, q)
}

func newPrivateKey(p, q *big.Int) (*PrivateKey, error) {
	n := new(big.Int).Mul(p, q)
	// gcd(N, (p-1)(q-1)) must be 1; guaranteed when p, q are distinct
	// primes of the same size, but verify anyway.
	pm1 := new(big.Int).Sub(p, zmath.One)
	qm1 := new(big.Int).Sub(q, zmath.One)
	phi := new(big.Int).Mul(pm1, qm1)
	if new(big.Int).GCD(nil, nil, n, phi).Cmp(zmath.One) != 0 {
		return nil, errors.New("paillier: gcd(N, phi) != 1")
	}
	pub := PublicKey{N: n, N2: new(big.Int).Mul(n, n)}
	pub.attachEngines()
	sk := &PrivateKey{
		PublicKey: pub,
		P:         new(big.Int).Set(p),
		Q:         new(big.Int).Set(q),
		p2:        new(big.Int).Mul(p, p),
		q2:        new(big.Int).Mul(q, q),
		pOrder:    pm1,
		qOrder:    qm1,
		Lambda:    zmath.Lcm(pm1, qm1),
	}
	// With g = 1+N, L_p(g^{p-1} mod p^2) = (p-1) * [N/p part]...; computing
	// the multipliers directly from the definition keeps this honest:
	// hp = L_p((1+N)^{p-1} mod p^2)^{-1} mod p.
	g := new(big.Int).Add(n, zmath.One)
	hpBase := new(big.Int).Exp(g, pm1, sk.p2)
	hp := lFunc(hpBase, p)
	hq2 := new(big.Int).Exp(g, qm1, sk.q2)
	hq := lFunc(hq2, q)
	var err error
	if sk.hp, err = zmath.ModInverse(hp, p); err != nil {
		return nil, fmt.Errorf("paillier: hp not invertible: %w", err)
	}
	if sk.hq, err = zmath.ModInverse(hq, q); err != nil {
		return nil, fmt.Errorf("paillier: hq not invertible: %w", err)
	}
	if sk.pInvModQ, err = zmath.ModInverse(p, q); err != nil {
		return nil, fmt.Errorf("paillier: p not invertible mod q: %w", err)
	}
	if sk.p2InvModQ2, err = zmath.ModInverse(sk.p2, sk.q2); err != nil {
		return nil, fmt.Errorf("paillier: p^2 not invertible mod q^2: %w", err)
	}
	return sk, nil
}

// lFunc is Paillier's L function, L(u) = (u-1)/d.
func lFunc(u, d *big.Int) *big.Int {
	out := new(big.Int).Sub(u, zmath.One)
	return out.Div(out, d)
}

// Equal reports whether two public keys are the same key.
func (pk *PublicKey) Equal(other *PublicKey) bool {
	return other != nil && pk.N.Cmp(other.N) == 0
}

// NewPublicKeyFromN reconstructs a public key from a transmitted modulus
// (e.g. the ephemeral key S1 ships inside SecDedup requests).
func NewPublicKeyFromN(n *big.Int) (*PublicKey, error) {
	if n == nil || n.BitLen() < MinKeyBits {
		return nil, fmt.Errorf("paillier: modulus missing or below %d bits", MinKeyBits)
	}
	if n.Bit(0) == 0 {
		return nil, errors.New("paillier: modulus must be odd")
	}
	pk := &PublicKey{N: new(big.Int).Set(n), N2: new(big.Int).Mul(n, n)}
	pk.attachEngines()
	return pk, nil
}

// validateMessage normalizes m into [0, N), accepting negative inputs as
// their residue (e.g. -1 encrypts to N-1, the dedup sentinel).
func (pk *PublicKey) validateMessage(m *big.Int) (*big.Int, error) {
	if m == nil {
		return nil, ErrMessageRange
	}
	mm := new(big.Int).Mod(m, pk.N)
	return mm, nil
}

// Encrypt encrypts m (interpreted mod N) with fresh randomness.
func (pk *PublicKey) Encrypt(m *big.Int) (*Ciphertext, error) {
	r, err := zmath.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("paillier: sampling randomness: %w", err)
	}
	return pk.EncryptWithNonce(m, r)
}

// EncryptWithNonce encrypts m with the caller-provided nonce r in Z*_N.
// With g = 1+N, Enc(m) = (1 + m*N) * r^N mod N^2.
func (pk *PublicKey) EncryptWithNonce(m, r *big.Int) (*Ciphertext, error) {
	mm, err := pk.validateMessage(m)
	if err != nil {
		return nil, err
	}
	if r == nil || r.Sign() <= 0 || r.Cmp(pk.N) >= 0 {
		return nil, errors.New("paillier: nonce outside (0, N)")
	}
	// gm = 1 + m*N is already < N^2 (m < N), so no reduction is needed
	// before the nonce multiply.
	gm := new(big.Int).Mul(mm, pk.N)
	gm.Add(gm, zmath.One)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	return &Ciphertext{C: pk.mulN2(gm, rn)}, nil
}

// EncryptInt64 is a convenience wrapper around Encrypt.
func (pk *PublicKey) EncryptInt64(m int64) (*Ciphertext, error) {
	return pk.Encrypt(big.NewInt(m))
}

// EncryptZero returns a fresh encryption of zero (used for blinding and
// re-randomization).
func (pk *PublicKey) EncryptZero() (*Ciphertext, error) {
	return pk.Encrypt(zmath.Zero)
}

// validateCiphertext checks c is in the ciphertext group.
func (pk *PublicKey) validateCiphertext(c *Ciphertext) error {
	if c == nil || c.C == nil || c.C.Sign() <= 0 || c.C.Cmp(pk.N2) >= 0 {
		return ErrCiphertextRange
	}
	return nil
}

// Decrypt recovers the plaintext in [0, N) using CRT.
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if err := sk.validateCiphertext(c); err != nil {
		return nil, err
	}
	// m mod p = L_p(c^{p-1} mod p^2) * hp mod p, likewise for q.
	cp := new(big.Int).Exp(new(big.Int).Mod(c.C, sk.p2), sk.pOrder, sk.p2)
	mp := lFunc(cp, sk.P)
	mp.Mul(mp, sk.hp)
	mp.Mod(mp, sk.P)

	cq := new(big.Int).Exp(new(big.Int).Mod(c.C, sk.q2), sk.qOrder, sk.q2)
	mq := lFunc(cq, sk.Q)
	mq.Mul(mq, sk.hq)
	mq.Mod(mq, sk.Q)

	return zmath.CRTPair(mp, mq, sk.P, sk.Q, sk.pInvModQ), nil
}

// DecryptSigned decrypts and maps the result to (-N/2, N/2].
func (sk *PrivateKey) DecryptSigned(c *Ciphertext) (*big.Int, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return nil, err
	}
	return zmath.Signed(m, sk.N), nil
}

// Add returns Enc(x + y) from Enc(x) and Enc(y).
func (pk *PublicKey) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := pk.validateCiphertext(a); err != nil {
		return nil, err
	}
	if err := pk.validateCiphertext(b); err != nil {
		return nil, err
	}
	return &Ciphertext{C: pk.mulN2(a.C, b.C)}, nil
}

// AddAll returns Enc(x_1 + ... + x_n) by folding the whole batch through
// one reduction chain (ProdMod) instead of a multiply-divide pair per
// element — the engine form of the homomorphic-sum loops. An empty batch
// is invalid (there is no canonical encryption of zero without
// randomness).
func (pk *PublicKey) AddAll(cts []*Ciphertext) (*Ciphertext, error) {
	if len(cts) == 0 {
		return nil, errors.New("paillier: AddAll of empty batch")
	}
	vals := make([]*big.Int, len(cts))
	for i, ct := range cts {
		if err := pk.validateCiphertext(ct); err != nil {
			return nil, err
		}
		vals[i] = ct.C
	}
	if pk.engN2 != nil {
		return &Ciphertext{C: pk.engN2.ProdMod(vals)}, nil
	}
	acc := new(big.Int).Set(vals[0])
	for _, v := range vals[1:] {
		acc.Mul(acc, v)
		acc.Mod(acc, pk.N2)
	}
	return &Ciphertext{C: acc}, nil
}

// AddPlain returns Enc(x + k) for plaintext k without consuming randomness:
// Enc(x) * (1+N)^k mod N^2.
func (pk *PublicKey) AddPlain(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.validateCiphertext(a); err != nil {
		return nil, err
	}
	kk := new(big.Int).Mod(k, pk.N)
	gk := new(big.Int).Mul(kk, pk.N)
	gk.Add(gk, zmath.One)
	return &Ciphertext{C: pk.mulN2(gk, a.C)}, nil
}

// MulConst returns Enc(k * x) = Enc(x)^k. Negative k is interpreted mod N.
func (pk *PublicKey) MulConst(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.validateCiphertext(a); err != nil {
		return nil, err
	}
	kk := new(big.Int).Mod(k, pk.N)
	c := new(big.Int).Exp(a.C, kk, pk.N2)
	return &Ciphertext{C: c}, nil
}

// Neg returns Enc(-x) = Enc(x)^{-1} mod N^2.
func (pk *PublicKey) Neg(a *Ciphertext) (*Ciphertext, error) {
	if err := pk.validateCiphertext(a); err != nil {
		return nil, err
	}
	inv, err := zmath.ModInverse(a.C, pk.N2)
	if err != nil {
		return nil, fmt.Errorf("paillier: Neg: %w", err)
	}
	return &Ciphertext{C: inv}, nil
}

// Sub returns Enc(x - y).
func (pk *PublicKey) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	nb, err := pk.Neg(b)
	if err != nil {
		return nil, err
	}
	return pk.Add(a, nb)
}

// Rerandomize multiplies by a fresh encryption of zero, producing a
// ciphertext of the same plaintext that is unlinkable to the input.
func (pk *PublicKey) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	z, err := pk.EncryptZero()
	if err != nil {
		return nil, err
	}
	return pk.Add(a, z)
}

// Clone returns a deep copy of the ciphertext.
func (c *Ciphertext) Clone() *Ciphertext {
	if c == nil || c.C == nil {
		return nil
	}
	return &Ciphertext{C: new(big.Int).Set(c.C)}
}

// Bytes returns the minimal big-endian encoding of the ciphertext value.
func (c *Ciphertext) Bytes() []byte { return c.C.Bytes() }

// CiphertextFromBytes reconstructs a ciphertext from Bytes output.
func CiphertextFromBytes(b []byte) *Ciphertext {
	return &Ciphertext{C: new(big.Int).SetBytes(b)}
}

// ByteLen returns the byte length of a serialized ciphertext under this key
// (used by the bandwidth accounting of Section 11.2.5).
func (pk *PublicKey) ByteLen() int { return (pk.N2.BitLen() + 7) / 8 }
