package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/zmath"
)

// testKey caches a key pair across tests; key generation dominates
// otherwise.
var (
	keyOnce sync.Once
	testSK  *PrivateKey
)

func testKeyPair(t *testing.T) *PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		sk, err := GenerateKey(rand.Reader, 512)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testSK = sk
	})
	return testSK
}

func TestGenerateKeyRejectsTinyKeys(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 64); err == nil {
		t.Fatal("expected error for 64-bit key")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKeyPair(t)
	for _, m := range []int64{0, 1, 2, 42, 1 << 30, -1, -100} {
		ct, err := sk.EncryptInt64(m)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.DecryptSigned(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.EncryptInt64(7)
	b, _ := sk.EncryptInt64(7)
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("two encryptions of the same message are identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := testKeyPair(t)
	f := func(x, y uint32) bool {
		a, _ := sk.EncryptInt64(int64(x))
		b, _ := sk.EncryptInt64(int64(y))
		sum, err := sk.Add(a, b)
		if err != nil {
			return false
		}
		m, err := sk.Decrypt(sum)
		if err != nil {
			return false
		}
		return m.Int64() == int64(x)+int64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHomomorphicMulConst(t *testing.T) {
	sk := testKeyPair(t)
	f := func(x uint16, k uint16) bool {
		a, _ := sk.EncryptInt64(int64(x))
		ka, err := sk.MulConst(a, big.NewInt(int64(k)))
		if err != nil {
			return false
		}
		m, err := sk.Decrypt(ka)
		if err != nil {
			return false
		}
		return m.Int64() == int64(x)*int64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHomomorphicSubAndNeg(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.EncryptInt64(100)
	b, _ := sk.EncryptInt64(42)
	diff, err := sk.Sub(a, b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if m, _ := sk.Decrypt(diff); m.Int64() != 58 {
		t.Fatalf("100-42 = %v", m)
	}
	// Negative result comes out as a residue; signed view recovers it.
	diff2, _ := sk.Sub(b, a)
	if m, _ := sk.DecryptSigned(diff2); m.Int64() != -58 {
		t.Fatalf("42-100 signed = %v", m)
	}
}

func TestAddPlain(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.EncryptInt64(5)
	c, err := sk.AddPlain(a, big.NewInt(37))
	if err != nil {
		t.Fatalf("AddPlain: %v", err)
	}
	if m, _ := sk.Decrypt(c); m.Int64() != 42 {
		t.Fatalf("5+37 = %v", m)
	}
	c2, _ := sk.AddPlain(a, big.NewInt(-6))
	if m, _ := sk.DecryptSigned(c2); m.Int64() != -1 {
		t.Fatalf("5-6 = %v", m)
	}
}

func TestRerandomize(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.EncryptInt64(99)
	b, err := sk.Rerandomize(a)
	if err != nil {
		t.Fatalf("Rerandomize: %v", err)
	}
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("rerandomized ciphertext equals input")
	}
	if m, _ := sk.Decrypt(b); m.Int64() != 99 {
		t.Fatalf("rerandomize changed plaintext: %v", m)
	}
}

func TestSentinelMinusOne(t *testing.T) {
	sk := testKeyPair(t)
	// The dedup sentinel Z = N-1 must read as -1 in the signed view so that
	// it sinks below all real (non-negative) scores.
	z := new(big.Int).Sub(sk.N, zmath.One)
	ct, _ := sk.Encrypt(z)
	m, _ := sk.DecryptSigned(ct)
	if m.Int64() != -1 {
		t.Fatalf("sentinel decrypts to %v, want -1", m)
	}
}

func TestInvalidCiphertextRejected(t *testing.T) {
	sk := testKeyPair(t)
	bad := []*Ciphertext{
		nil,
		{C: nil},
		{C: big.NewInt(0)},
		{C: new(big.Int).Set(sk.N2)},
	}
	for i, c := range bad {
		if _, err := sk.Decrypt(c); err == nil {
			t.Errorf("case %d: expected decryption error", i)
		}
		if _, err := sk.Add(c, c); err == nil {
			t.Errorf("case %d: expected Add error", i)
		}
	}
}

func TestEncryptNilMessage(t *testing.T) {
	sk := testKeyPair(t)
	if _, err := sk.Encrypt(nil); err == nil {
		t.Fatal("expected error for nil message")
	}
}

func TestEncryptWithNonceValidation(t *testing.T) {
	sk := testKeyPair(t)
	if _, err := sk.EncryptWithNonce(big.NewInt(1), big.NewInt(0)); err == nil {
		t.Fatal("expected error for zero nonce")
	}
	if _, err := sk.EncryptWithNonce(big.NewInt(1), sk.N); err == nil {
		t.Fatal("expected error for nonce = N")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.EncryptInt64(1234)
	b := CiphertextFromBytes(a.Bytes())
	if m, err := sk.Decrypt(b); err != nil || m.Int64() != 1234 {
		t.Fatalf("bytes round trip: %v %v", m, err)
	}
}

func TestClone(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.EncryptInt64(8)
	b := a.Clone()
	b.C.Add(b.C, big.NewInt(1))
	if m, _ := sk.Decrypt(a); m.Int64() != 8 {
		t.Fatal("Clone aliases the original")
	}
	if (*Ciphertext)(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestByteLen(t *testing.T) {
	sk := testKeyPair(t)
	want := (sk.N2.BitLen() + 7) / 8
	if got := sk.ByteLen(); got != want {
		t.Fatalf("ByteLen = %d, want %d", got, want)
	}
}

func TestPublicKeyEqual(t *testing.T) {
	sk := testKeyPair(t)
	if !sk.PublicKey.Equal(&sk.PublicKey) {
		t.Fatal("key should equal itself")
	}
	other := &PublicKey{N: big.NewInt(35), N2: big.NewInt(1225)}
	if sk.PublicKey.Equal(other) {
		t.Fatal("distinct keys reported equal")
	}
	if sk.PublicKey.Equal(nil) {
		t.Fatal("nil key reported equal")
	}
}

func TestLargeMessageWrapsModN(t *testing.T) {
	sk := testKeyPair(t)
	m := new(big.Int).Add(sk.N, big.NewInt(5)) // N+5 ≡ 5
	ct, err := sk.Encrypt(m)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if got, _ := sk.Decrypt(ct); got.Int64() != 5 {
		t.Fatalf("N+5 decrypts to %v, want 5", got)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	sk, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	sk, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		b.Fatal(err)
	}
	ct, _ := sk.EncryptInt64(123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomomorphicAdd(b *testing.B) {
	sk, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := sk.EncryptInt64(1)
	y, _ := sk.EncryptInt64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Add(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
