package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/zmath"
)

func testKey(t testing.TB) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return sk
}

// TestEncryptWithNonceBatchEquivalence pins the serial/parallel contract:
// with fixed nonces, the parallel batch is bit-identical to the serial
// loop (and to the pre-batch EncryptWithNonce path).
func TestEncryptWithNonceBatchEquivalence(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	const n = 64
	ms := make([]*big.Int, n)
	rs := make([]*big.Int, n)
	for i := range ms {
		ms[i] = big.NewInt(int64(i * 31))
		r, err := zmath.RandUnit(rand.Reader, pk.N)
		if err != nil {
			t.Fatal(err)
		}
		rs[i] = r
	}
	serial, err := pk.EncryptWithNonceBatch(ms, rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel8, err := pk.EncryptWithNonceBatch(ms, rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		want, err := pk.EncryptWithNonce(ms[i], rs[i])
		if err != nil {
			t.Fatal(err)
		}
		if serial[i].C.Cmp(want.C) != 0 {
			t.Fatalf("serial batch diverges from EncryptWithNonce at %d", i)
		}
		if parallel8[i].C.Cmp(want.C) != 0 {
			t.Fatalf("parallel batch diverges from EncryptWithNonce at %d", i)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	const n = 40
	ms := make([]*big.Int, n)
	for i := range ms {
		ms[i] = big.NewInt(int64(1000 - i))
	}
	for _, par := range []int{1, 8} {
		cts, err := EncryptBatch(pk, ms, par)
		if err != nil {
			t.Fatal(err)
		}
		cts, err = RerandomizeBatch(pk, cts, par)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.DecryptBatch(cts, par)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ms {
			if got[i].Cmp(ms[i]) != 0 {
				t.Fatalf("par=%d: round trip broke at %d: got %v want %v", par, i, got[i], ms[i])
			}
		}
	}
}

func TestEncryptZeroBatch(t *testing.T) {
	sk := testKey(t)
	cts, err := EncryptZeroBatch(&sk.PublicKey, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, ct := range cts {
		m, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if m.Sign() != 0 {
			t.Fatalf("zero batch slot %d decrypts to %v", i, m)
		}
		key := ct.C.String()
		if seen[key] {
			t.Fatal("two zero encryptions share randomness")
		}
		seen[key] = true
	}
}

// TestNoncePool verifies pooled encryptions decrypt correctly, never share
// randomness, and that a closed (drained) pool still works via the inline
// fallback.
func TestNoncePool(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	pool := NewNoncePool(pk, 2, 8)
	defer pool.Close()
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		m := big.NewInt(int64(i))
		ct, err := pool.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("pooled encryption of %v decrypts to %v", m, got)
		}
		if seen[ct.C.String()] {
			t.Fatal("pooled encryptions share randomness")
		}
		seen[ct.C.String()] = true
	}
	rr, err := pool.Rerandomize(mustEncrypt(t, pk, big.NewInt(7)))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sk.Decrypt(rr); err != nil || got.Int64() != 7 {
		t.Fatalf("pooled rerandomize: got %v, %v", got, err)
	}
}

func TestNoncePoolClosedFallback(t *testing.T) {
	sk := testKey(t)
	pool := NewNoncePool(&sk.PublicKey, 1, 2)
	pool.Close()
	for i := 0; i < 4; i++ {
		ct, err := pool.Encrypt(big.NewInt(9))
		if err != nil {
			t.Fatal(err)
		}
		if got, err := sk.Decrypt(ct); err != nil || got.Int64() != 9 {
			t.Fatalf("closed pool fallback: got %v, %v", got, err)
		}
	}
}

func mustEncrypt(t *testing.T, pk *PublicKey, m *big.Int) *Ciphertext {
	t.Helper()
	ct, err := pk.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}
