package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/zmath"
)

// TestCRTNoncePowerMatchesSpec pins bit-identical equivalence of the CRT
// split against the spec-path exponentiation on fixed nonces.
func TestCRTNoncePowerMatchesSpec(t *testing.T) {
	sk := testKey(t)
	enc := sk.CRTEncryptor()
	for i := 0; i < 25; i++ {
		r, err := zmath.RandUnit(rand.Reader, sk.N)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(r, sk.N, sk.N2)
		if got := enc.noncePowerOf(r); got.Cmp(want) != 0 {
			t.Fatalf("CRT nonce power differs from spec for r=%v", r)
		}
	}
}

// TestCRTNoncePowerIsNthResidue pins the distribution invariant of the
// direct subgroup sampler: every drawn nonce power is a unit whose order
// divides phi(N), i.e. a genuine N-th residue mod N^2 — exactly the set
// the spec path draws from.
func TestCRTNoncePowerIsNthResidue(t *testing.T) {
	sk := testKey(t)
	enc := sk.CRTEncryptor()
	phi := new(big.Int).Mul(new(big.Int).Sub(sk.P, zmath.One), new(big.Int).Sub(sk.Q, zmath.One))
	gcd := new(big.Int)
	for i := 0; i < 10; i++ {
		x, err := enc.NoncePower()
		if err != nil {
			t.Fatal(err)
		}
		if gcd.GCD(nil, nil, x, sk.N2); gcd.Cmp(zmath.One) != 0 {
			t.Fatal("nonce power is not a unit")
		}
		if new(big.Int).Exp(x, phi, sk.N2).Cmp(zmath.One) != 0 {
			t.Fatal("nonce power is not an N-th residue")
		}
	}
}

// TestCRTEncryptorRoundTrip checks CRT-path ciphertexts decrypt to the
// plaintext and stay probabilistic.
func TestCRTEncryptorRoundTrip(t *testing.T) {
	sk := testKey(t)
	enc := sk.CRTEncryptor()
	if enc.Key() != &sk.PublicKey {
		t.Fatal("Key() should return the underlying public key")
	}
	for _, m := range []int64{0, 1, 42, 1 << 40, -1} {
		c1, err := enc.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		c2, err := enc.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		if c1.C.Cmp(c2.C) == 0 {
			t.Errorf("CRT encryption of %d is deterministic", m)
		}
		got, err := sk.DecryptSigned(c1)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
	z, err := enc.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := sk.Decrypt(z); err != nil || m.Sign() != 0 {
		t.Fatalf("EncryptZero decrypts to %v (%v)", m, err)
	}
	c, err := enc.Encrypt(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := enc.Rerandomize(c)
	if err != nil {
		t.Fatal(err)
	}
	if rr.C.Cmp(c.C) == 0 {
		t.Error("Rerandomize returned the same ciphertext")
	}
	if m, _ := sk.Decrypt(rr); m.Int64() != 7 {
		t.Errorf("rerandomized ciphertext decrypts to %v", m)
	}
}

// TestFastEncryptorRoundTrip checks fast-nonce ciphertexts decrypt
// identically to the spec path and remain probabilistic.
func TestFastEncryptorRoundTrip(t *testing.T) {
	sk := testKey(t)
	enc, err := NewFastEncryptor(&sk.PublicKey, 0)
	if err != nil {
		t.Fatalf("NewFastEncryptor: %v", err)
	}
	if enc.ExpBits() != FastNonceBits {
		t.Errorf("default ExpBits = %d, want %d", enc.ExpBits(), FastNonceBits)
	}
	for _, m := range []int64{0, 1, 42, 1 << 40, -1} {
		c1, err := enc.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		c2, err := enc.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		if c1.C.Cmp(c2.C) == 0 {
			t.Errorf("fast-nonce encryption of %d is deterministic", m)
		}
		got, err := sk.DecryptSigned(c1)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
	// Fast-path ciphertexts must compose homomorphically with spec-path
	// ones — they live in the same group.
	a, err := enc.Encrypt(big.NewInt(30))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sk.PublicKey.Encrypt(big.NewInt(12))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sk.PublicKey.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := sk.Decrypt(sum); m.Int64() != 42 {
		t.Errorf("fast+spec homomorphic sum = %v, want 42", m)
	}
	rr, err := enc.Rerandomize(a)
	if err != nil {
		t.Fatal(err)
	}
	if rr.C.Cmp(a.C) == 0 {
		t.Error("Rerandomize returned the same ciphertext")
	}
	if m, _ := sk.Decrypt(rr); m.Int64() != 30 {
		t.Errorf("rerandomized ciphertext decrypts to %v", m)
	}
}

func TestFastEncryptorRejectsShortExponent(t *testing.T) {
	sk := testKey(t)
	if _, err := NewFastEncryptor(&sk.PublicKey, 64); err == nil {
		t.Fatal("expected error for a 64-bit short exponent")
	}
}

// TestNoncePoolOverFastSources checks the pool composes with both fast
// paths: pooled encryptions still decrypt correctly.
func TestNoncePoolOverFastSources(t *testing.T) {
	sk := testKey(t)
	fast, err := NewFastEncryptor(&sk.PublicKey, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]NonceSource{
		"spec": &sk.PublicKey,
		"crt":  sk.CRTEncryptor(),
		"fast": fast,
	} {
		pool := NewNoncePool(src, 1, 8)
		for i := 0; i < 12; i++ {
			ct, err := pool.Encrypt(big.NewInt(int64(i)))
			if err != nil {
				t.Fatalf("%s pooled Encrypt: %v", name, err)
			}
			m, err := sk.Decrypt(ct)
			if err != nil || m.Int64() != int64(i) {
				t.Fatalf("%s pooled round trip %d -> %v (%v)", name, i, m, err)
			}
		}
		pool.Close()
	}
}
