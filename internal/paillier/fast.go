package paillier

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"repro/internal/zmath"
)

// NonceSource produces the nonce powers r^N mod N^2 that dominate
// Paillier encryption. PublicKey computes them with a full-width
// variable-base exponentiation (the spec path); CRTEncryptor and
// FastEncryptor are the precomputation fast paths; NoncePool buffers any
// of them on background goroutines.
type NonceSource interface {
	Key() *PublicKey
	NoncePower() (*big.Int, error)
}

// NoncePower samples a fresh r in Z*_N and returns r^N mod N^2 — the spec
// path, one full-width exponentiation per nonce.
func (pk *PublicKey) NoncePower() (*big.Int, error) {
	r, err := zmath.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("paillier: sampling randomness: %w", err)
	}
	return new(big.Int).Exp(r, pk.N, pk.N2), nil
}

// encryptFromSource assembles a fresh encryption of m from src's next
// nonce power.
func encryptFromSource(src NonceSource, m *big.Int) (*Ciphertext, error) {
	rn, err := src.NoncePower()
	if err != nil {
		return nil, err
	}
	return src.Key().encryptWithRN(m, rn)
}

// CRTEncryptor is the key holder's fast path. The spec path's nonce
// powers {r^N mod N^2 : r uniform in Z*_N} are exactly the uniform
// distribution over the subgroup R of N-th residues, whose CRT
// components are the unique order-(p-1) and order-(q-1) subgroups of the
// cyclic groups Z*_{p^2} and Z*_{q^2} (gcd(q, p-1) = gcd(p, q-1) = 1 for
// distinct same-size primes). With the factorization available each
// component can be sampled directly: the p-power map s -> s^p on
// Z*_{p^2} surjects uniformly onto that same order-(p-1) subgroup, so a
// uniform nonce power is CRT(sp^p mod p^2, sq^q mod q^2) for uniform
// units sp, sq — two half-width exponents over half-width moduli instead
// of one full-width exponentiation over N^2. Identical output
// distribution to the spec path — assumption-free — at a quarter of the
// word-multiplication count.
//
// Only parties holding the private key can construct one: the data owner
// bulk-encrypting a relation, the crypto cloud S2 re-blinding, and S1 for
// its own ephemeral key.
type CRTEncryptor struct {
	sk     *PrivateKey
	ep, eq *big.Int // N reduced mod p(p-1) and q(q-1), for noncePowerOf
}

// CRTEncryptor returns the CRT-accelerated encryption surface for the
// private key.
func (sk *PrivateKey) CRTEncryptor() *CRTEncryptor {
	ordP := new(big.Int).Mul(sk.P, sk.pOrder) // |Z*_{p^2}| = p(p-1)
	ordQ := new(big.Int).Mul(sk.Q, sk.qOrder)
	return &CRTEncryptor{
		sk: sk,
		ep: new(big.Int).Mod(sk.N, ordP),
		eq: new(big.Int).Mod(sk.N, ordQ),
	}
}

// Key returns the underlying public key.
func (e *CRTEncryptor) Key() *PublicKey { return &e.sk.PublicKey }

// noncePowerOf computes r^N mod N^2 for a caller-provided r via the
// classic CRT split (exponent reduced mod the unit-group orders). Kept
// so tests can pin bit-identical equivalence with the spec path on fixed
// nonces; NoncePower uses the cheaper direct subgroup sampling.
func (e *CRTEncryptor) noncePowerOf(r *big.Int) *big.Int {
	rp := new(big.Int).Exp(new(big.Int).Mod(r, e.sk.p2), e.ep, e.sk.p2)
	rq := new(big.Int).Exp(new(big.Int).Mod(r, e.sk.q2), e.eq, e.sk.q2)
	return zmath.CRTPair(rp, rq, e.sk.p2, e.sk.q2, e.sk.p2InvModQ2)
}

// NoncePower returns a uniform N-th residue mod N^2 by sampling its CRT
// components directly (see the type comment for why this matches the
// spec path's distribution exactly).
func (e *CRTEncryptor) NoncePower() (*big.Int, error) {
	xp, err := zmath.SampleSubgroupPower(rand.Reader, e.sk.p2, e.sk.P, e.sk.P)
	if err != nil {
		return nil, err
	}
	xq, err := zmath.SampleSubgroupPower(rand.Reader, e.sk.q2, e.sk.Q, e.sk.Q)
	if err != nil {
		return nil, err
	}
	return zmath.CRTPair(xp, xq, e.sk.p2, e.sk.q2, e.sk.p2InvModQ2), nil
}

// Encrypt encrypts m with a CRT-computed nonce power.
func (e *CRTEncryptor) Encrypt(m *big.Int) (*Ciphertext, error) {
	return encryptFromSource(e, m)
}

// EncryptZero returns a fresh encryption of zero.
func (e *CRTEncryptor) EncryptZero() (*Ciphertext, error) {
	return e.Encrypt(zmath.Zero)
}

// Rerandomize multiplies by a fresh encryption of zero.
func (e *CRTEncryptor) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	z, err := e.EncryptZero()
	if err != nil {
		return nil, err
	}
	return e.Key().Add(a, z)
}

// FastNonceBits is the default short-exponent length for FastEncryptor:
// twice a 128-bit security parameter, the standard margin for the
// short-exponent indistinguishability assumption.
const FastNonceBits = 256

// FastNonceWindow is the fixed-base window width shared by the Paillier
// and DJ fast-nonce tables; 6 keeps the per-key table a few thousand
// entries while cutting a 256-bit exponent to ~43 multiplications.
const FastNonceWindow = 6

// FastEncryptor is the opt-in fast-nonce path, usable by any party
// holding only the public key: precompute hN = h^N mod N^2 once for a
// random quadratic residue h, then draw nonce powers as hN^alpha for
// short random alpha (FastNonceBits bits) through a fixed-base windowed
// table — ~45 modular multiplications per nonce instead of a full-width
// exponentiation.
//
// SECURITY: the spec path draws nonces uniformly from the N-th residues;
// this path draws them from the subgroup generated by h^N with
// short exponents. Indistinguishability rests on the standard
// short-exponent / subgroup assumption (as in the Damgård–Jurik–Nielsen
// fast variant of Paillier), which is an extra assumption on top of DCR.
// It is therefore opt-in everywhere (cloud.WithFastNonce, -fast-nonce);
// the default remains spec-faithful. See DESIGN.md "Precomputation fast
// paths".
type FastEncryptor struct {
	pk      *PublicKey
	table   *zmath.FixedBaseTable
	expHi   *big.Int // 2^expBits, the exclusive sampling bound
	expBits int
}

// NewFastEncryptor precomputes the fast-nonce table for pk. expBits <= 0
// selects FastNonceBits. The table build costs a few full-width
// exponentiations' worth of multiplications and ~(expBits/6 * 63)
// cached big.Ints; it amortizes after a handful of encryptions.
func NewFastEncryptor(pk *PublicKey, expBits int) (*FastEncryptor, error) {
	if expBits <= 0 {
		expBits = FastNonceBits
	}
	if expBits < 2*64 {
		return nil, fmt.Errorf("paillier: fast-nonce exponent %d bits below the short-exponent safety margin", expBits)
	}
	x, err := zmath.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("paillier: sampling fast-nonce base: %w", err)
	}
	// h = x^2 mod N is a uniform quadratic residue; hN = h^N generates the
	// subgroup the short-exponent nonces are drawn from.
	h := new(big.Int).Mul(x, x)
	h.Mod(h, pk.N)
	hN := new(big.Int).Exp(h, pk.N, pk.N2)
	// With an engine on the key the table keeps its entries in Montgomery
	// form, so every nonce draw runs its whole window chain division-free.
	var table *zmath.FixedBaseTable
	if eng := pk.EngineN2(); eng != nil {
		table, err = zmath.NewFixedBaseTableMod(hN, eng, FastNonceWindow, expBits)
	} else {
		table, err = zmath.NewFixedBaseTable(hN, pk.N2, FastNonceWindow, expBits)
	}
	if err != nil {
		return nil, fmt.Errorf("paillier: building fast-nonce table: %w", err)
	}
	return &FastEncryptor{
		pk:      pk,
		table:   table,
		expHi:   new(big.Int).Lsh(zmath.One, uint(expBits)),
		expBits: expBits,
	}, nil
}

// Key returns the underlying public key.
func (e *FastEncryptor) Key() *PublicKey { return e.pk }

// ExpBits returns the short-exponent length in bits.
func (e *FastEncryptor) ExpBits() int { return e.expBits }

// NoncePower draws a short random exponent alpha and returns
// (h^N)^alpha mod N^2 from the fixed-base table.
func (e *FastEncryptor) NoncePower() (*big.Int, error) {
	alpha, err := zmath.RandRange(rand.Reader, zmath.One, e.expHi)
	if err != nil {
		return nil, fmt.Errorf("paillier: sampling fast-nonce exponent: %w", err)
	}
	return e.table.Exp(alpha)
}

// Encrypt encrypts m with a fast-path nonce power.
func (e *FastEncryptor) Encrypt(m *big.Int) (*Ciphertext, error) {
	return encryptFromSource(e, m)
}

// EncryptZero returns a fresh encryption of zero.
func (e *FastEncryptor) EncryptZero() (*Ciphertext, error) {
	return e.Encrypt(zmath.Zero)
}

// Rerandomize multiplies by a fresh encryption of zero.
func (e *FastEncryptor) Rerandomize(a *Ciphertext) (*Ciphertext, error) {
	z, err := e.EncryptZero()
	if err != nil {
		return nil, err
	}
	return e.pk.Add(a, z)
}
