// Package secerr defines the typed error taxonomy shared by every layer
// of the system and by the public sectopk facade. Each error carries a
// stable machine-readable Code that survives the S1↔S2 wire: the
// transport serializes the code alongside the message, and the receiving
// side reconstructs an *Error with the same code, so errors.Is against
// the package sentinels works identically in-process and across a TCP
// link (see DESIGN.md "Wire versioning and error codes").
package secerr

import (
	"errors"
	"fmt"
)

// Code is a stable machine-readable error class. Codes are part of the
// v1 wire protocol: once shipped, a code's meaning never changes.
type Code string

const (
	// CodeInvalidToken marks a query token that fails validation against
	// the relation it targets (bad k, out-of-range list positions, ...).
	CodeInvalidToken Code = "invalid_token"
	// CodeUnknownRelation marks a request naming a relation the serving
	// party has not registered.
	CodeUnknownRelation Code = "unknown_relation"
	// CodeRelationExists marks a registration attempt for an already
	// registered relation ID.
	CodeRelationExists Code = "relation_exists"
	// CodeProtocolVersion marks a Hello handshake between peers speaking
	// incompatible wire protocol versions.
	CodeProtocolVersion Code = "protocol_version"
	// CodeUnknownMethod marks a request for a method the responder does
	// not implement.
	CodeUnknownMethod Code = "unknown_method"
	// CodeBadRequest marks a structurally invalid request body
	// (undecodable gob, nil ciphertexts, mismatched lengths, ...).
	CodeBadRequest Code = "bad_request"
	// CodeTransport marks a failure of the link itself (connection loss,
	// framing errors) as opposed to an error reported by the peer.
	CodeTransport Code = "transport"
	// CodeOverloaded marks a request shed by an admission bound: the
	// serving party is at capacity (or draining toward shutdown) and
	// refused the work instead of queueing it. Overloaded failures are
	// safe to retry after backing off.
	CodeOverloaded Code = "overloaded"
	// CodeRelationStale marks an operation pinned to a relation epoch
	// that is no longer the hosted one: a concurrent Apply or Compact
	// advanced the relation. The caller must refresh its view of the
	// relation (epoch, token) and retry deliberately — the failure is
	// fail-fast by design, never retried blindly.
	CodeRelationStale Code = "relation_stale"
	// CodeUnavailable marks a required peer that cannot be reached: a
	// cluster member whose link failed mid-query, or a forwarding target
	// that is down. It always wraps the underlying transport failure and
	// names the peer, so a half-up cluster is diagnosable from the
	// message alone.
	CodeUnavailable Code = "unavailable"
	// CodeInternal marks any other server-side failure.
	CodeInternal Code = "internal"
)

// Sentinel errors, one per code. Use errors.Is(err, secerr.ErrX) to test
// for a class; matching is by code, so errors reconstructed from the wire
// satisfy Is against these sentinels too.
var (
	ErrInvalidToken    = &Error{Code: CodeInvalidToken, Msg: "invalid query token"}
	ErrUnknownRelation = &Error{Code: CodeUnknownRelation, Msg: "unknown relation"}
	ErrRelationExists  = &Error{Code: CodeRelationExists, Msg: "relation already registered"}
	ErrProtocolVersion = &Error{Code: CodeProtocolVersion, Msg: "incompatible wire protocol version"}
	ErrUnknownMethod   = &Error{Code: CodeUnknownMethod, Msg: "unknown method"}
	ErrBadRequest      = &Error{Code: CodeBadRequest, Msg: "malformed request"}
	ErrTransport       = &Error{Code: CodeTransport, Msg: "transport failure"}
	ErrOverloaded      = &Error{Code: CodeOverloaded, Msg: "overloaded"}
	ErrRelationStale   = &Error{Code: CodeRelationStale, Msg: "relation epoch is stale"}
	ErrUnavailable     = &Error{Code: CodeUnavailable, Msg: "peer unavailable"}
	ErrInternal        = &Error{Code: CodeInternal, Msg: "internal error"}
)

// Error is a coded error. The zero Msg renders as the code itself.
type Error struct {
	Code Code
	Msg  string
	// Err is the wrapped cause. It is local-only: the wire carries just
	// Code and Msg.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	msg := e.Msg
	if msg == "" {
		msg = string(e.Code)
	}
	if e.Err != nil {
		return fmt.Sprintf("%s: %v", msg, e.Err)
	}
	return msg
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Is reports whether target is a coded error of the same class, making
// errors.Is(err, sentinel) match on Code rather than pointer identity.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// New builds a coded error with a formatted message.
func New(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Wrap attaches a code and context message to an underlying cause. A nil
// cause yields a plain coded error.
func Wrap(code Code, err error, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...), Err: err}
}

// CodeOf extracts the code carried by err, or CodeInternal when err has
// no coded error in its chain. A nil error has no code ("").
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeInternal
}

// FromWire reconstructs the error a peer reported: a coded error whose
// code round-trips (errors.Is against the sentinels keeps working) and
// whose message is the peer's rendered message.
func FromWire(code, msg string) *Error {
	c := Code(code)
	if c == "" {
		c = CodeInternal
	}
	return &Error{Code: c, Msg: msg}
}
