package secerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	err := New(CodeUnknownRelation, "relation %q not registered", "patients")
	if !errors.Is(err, ErrUnknownRelation) {
		t.Fatal("coded error does not match its sentinel")
	}
	if errors.Is(err, ErrInvalidToken) {
		t.Fatal("coded error matches a foreign sentinel")
	}
}

func TestWrappedChain(t *testing.T) {
	cause := errors.New("connection reset")
	err := fmt.Errorf("round 3: %w", Wrap(CodeTransport, cause, "sending EqBits"))
	if !errors.Is(err, ErrTransport) {
		t.Fatal("wrapped coded error lost its code")
	}
	if !errors.Is(err, cause) {
		t.Fatal("wrapping hid the cause")
	}
	if CodeOf(err) != CodeTransport {
		t.Fatalf("CodeOf = %q, want %q", CodeOf(err), CodeTransport)
	}
}

func TestWireRoundTrip(t *testing.T) {
	orig := New(CodeProtocolVersion, "peer speaks v9, this side v1")
	back := FromWire(string(CodeOf(orig)), orig.Error())
	if !errors.Is(back, ErrProtocolVersion) {
		t.Fatal("wire round-trip lost the code")
	}
	if back.Error() != orig.Error() {
		t.Fatalf("message changed: %q vs %q", back.Error(), orig.Error())
	}
}

func TestCodeOfUncoded(t *testing.T) {
	if CodeOf(errors.New("plain")) != CodeInternal {
		t.Fatal("uncoded error should map to internal")
	}
	if CodeOf(nil) != "" {
		t.Fatal("nil error should have empty code")
	}
	if FromWire("", "boom").Code != CodeInternal {
		t.Fatal("empty wire code should map to internal")
	}
}
