package protocols

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/cloud"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/prf"
	"repro/internal/zmath"
)

// PairSet enumerates which item pairs a dedup round should test for
// equality. AllPairs is Algorithm 7's full upper triangle; Bipartite is
// SecUpdate's block between newly appended items and the existing list.
type PairSet struct {
	Pairs [][2]int
}

// AllPairs returns the upper-triangle pair set over n items.
func AllPairs(n int) PairSet {
	var out PairSet
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.Pairs = append(out.Pairs, [2]int{i, j})
		}
	}
	return out
}

// Bipartite returns the pair set {(a, b) : a in A, b in B}.
func Bipartite(a, b []int) PairSet {
	var out PairSet
	for _, i := range a {
		for _, j := range b {
			out.Pairs = append(out.Pairs, [2]int{i, j})
		}
	}
	return out
}

// SecDedup runs the oblivious deduplication protocol (Algorithm 7, plus
// the SecDupElim variant of Section 10.1 and the score-merging variant
// used by batched processing):
//
//  1. S1 computes randomized equality ciphertexts over the pair set from
//     the *unblinded* EHLs;
//  2. S1 additively blinds every slot of every item, encrypts the blind
//     vector under its own ephemeral key, and permutes everything;
//  3. one round with S2 replaces/eliminates/merges duplicates and
//     re-blinds + re-permutes the survivors;
//  4. S1 decrypts the returned blind vectors and removes them.
//
// S2 learns only the equality pattern of the permuted pair set; S1 learns
// only the surviving row count (the uniqueness pattern UP^d, and only in
// the eliminate/merge modes — replace mode preserves the count).
func SecDedup(ctx context.Context, c *cloud.Client, items []Item, mode cloud.DedupMode, pairs PairSet, mergeCols []int) ([]Item, error) {
	if len(items) == 0 {
		return nil, nil
	}
	cols := len(items[0].Scores)
	for i, it := range items {
		if err := it.Validate(cols); err != nil {
			return nil, fmt.Errorf("protocols: SecDedup item %d: %w", i, err)
		}
	}
	pk := c.PK()

	// Step 1: equality ciphertexts over unblinded EHLs, built in parallel.
	for _, p := range pairs.Pairs {
		if p[0] < 0 || p[0] >= len(items) || p[1] < 0 || p[1] >= len(items) || p[0] == p[1] {
			return nil, fmt.Errorf("protocols: SecDedup pair %v out of range", p)
		}
	}
	eqCts, err := parallel.MapErrCtx(ctx, c.Parallelism(), pairs.Pairs, func(_ int, p [2]int) (*big.Int, error) {
		ct, err := ehl.SubEnc(c.Enc(), items[p[0]].EHL, items[p[1]].EHL)
		if err != nil {
			return nil, fmt.Errorf("protocols: SecDedup eq %v: %w", p, err)
		}
		return ct.C, nil
	})
	if err != nil {
		return nil, err
	}

	// Step 2: blind and permute. Blinding encrypts every slot's blind
	// under the oversized ephemeral key — the hottest S1-side loop in the
	// dedup round — so items fan out item-per-worker.
	perm, err := prf.RandomPerm(len(items))
	if err != nil {
		return nil, err
	}
	rows := make([]cloud.WireRow, len(items))
	err = parallel.ForEachCtx(ctx, c.Parallelism(), len(items), func(i int) error {
		row, err := blindItem(pk, c.EphEnc(), items[i])
		if err != nil {
			return fmt.Errorf("protocols: SecDedup blinding item %d: %w", i, err)
		}
		rows[perm[i]] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	req := &cloud.DedupRequest{
		Mode:      mode,
		Rows:      rows,
		MergeCols: mergeCols,
	}
	for k, p := range pairs.Pairs {
		req.PairI = append(req.PairI, perm[p[0]])
		req.PairJ = append(req.PairJ, perm[p[1]])
		req.PairCts = append(req.PairCts, eqCts[k])
	}

	// Step 3: the oblivious round.
	resp, err := c.DedupRound(ctx, req)
	if err != nil {
		return nil, err
	}
	if mode == cloud.DedupReplace && len(resp.Rows) != len(items) {
		return nil, fmt.Errorf("protocols: replace-mode dedup changed row count %d -> %d", len(items), len(resp.Rows))
	}
	if mode != cloud.DedupReplace {
		c.Ledger().Record("S1", cloud.MethodDedup, "uniqueness pattern: %d of %d items kept", len(resp.Rows), len(items))
	}

	// Step 4: unblind, row-per-worker (each row decrypts its whole blind
	// vector under the ephemeral key).
	out := make([]Item, len(resp.Rows))
	width := items[0].EHL.Width()
	kind := items[0].EHL.Kind
	err = parallel.ForEachCtx(ctx, c.Parallelism(), len(resp.Rows), func(i int) error {
		it, err := unblindRow(pk, c.Ephemeral(), resp.Rows[i], width, cols, kind)
		if err != nil {
			return fmt.Errorf("protocols: SecDedup unblinding row %d: %w", i, err)
		}
		out[i] = *it
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// blindItem additively blinds every slot and records the blinds under the
// ephemeral key (Algorithm 7 lines 8-11).
func blindItem(pk *paillier.PublicKey, ephEnc paillier.Encryptor, it Item) (*cloud.WireRow, error) {
	row := &cloud.WireRow{}
	for _, slot := range it.EHL.Cts {
		alpha, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		blinded, err := pk.AddPlain(slot, alpha)
		if err != nil {
			return nil, err
		}
		row.EHL = append(row.EHL, blinded.C)
		bct, err := ephEnc.Encrypt(alpha)
		if err != nil {
			return nil, err
		}
		row.Blinds = append(row.Blinds, bct.C)
	}
	for _, score := range it.Scores {
		beta, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		blinded, err := pk.AddPlain(score, beta)
		if err != nil {
			return nil, err
		}
		row.Scores = append(row.Scores, blinded.C)
		bct, err := ephEnc.Encrypt(beta)
		if err != nil {
			return nil, err
		}
		row.Blinds = append(row.Blinds, bct.C)
	}
	return row, nil
}

// unblindRow decrypts the blind vector with the ephemeral secret key and
// removes the blinds (Algorithm 7 lines 32-35).
func unblindRow(pk *paillier.PublicKey, eph *paillier.PrivateKey, row cloud.WireRow, ehlWidth, cols int, kind ehl.Kind) (*Item, error) {
	if len(row.EHL) != ehlWidth || len(row.Scores) != cols || len(row.Blinds) != ehlWidth+cols {
		return nil, errors.New("protocols: returned row has unexpected shape")
	}
	it := &Item{EHL: &ehl.List{Kind: kind}}
	for i, slot := range row.EHL {
		blind, err := eph.Decrypt(&paillier.Ciphertext{C: row.Blinds[i]})
		if err != nil {
			return nil, err
		}
		blind.Mod(blind, pk.N)
		ct, err := pk.AddPlain(&paillier.Ciphertext{C: slot}, new(big.Int).Neg(blind))
		if err != nil {
			return nil, err
		}
		it.EHL.Cts = append(it.EHL.Cts, ct)
	}
	for i, slot := range row.Scores {
		blind, err := eph.Decrypt(&paillier.Ciphertext{C: row.Blinds[ehlWidth+i]})
		if err != nil {
			return nil, err
		}
		blind.Mod(blind, pk.N)
		ct, err := pk.AddPlain(&paillier.Ciphertext{C: slot}, new(big.Int).Neg(blind))
		if err != nil {
			return nil, err
		}
		it.Scores = append(it.Scores, ct)
	}
	return it, nil
}
