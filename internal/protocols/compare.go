package protocols

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"

	"repro/internal/cloud"
	"repro/internal/dj"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/zmath"
)

// The comparison protocols realize the EncCompare functionality of [11]
// (Bost et al.) the paper uses as a black box: S1 holds Enc(a), Enc(b) and
// learns f = (a <= b); S2 holds the secret key.
//
// Implementation (documented substitution, see DESIGN.md): S1 computes
// d = 2a - 2b - 1 (strictly negative iff a <= b, and never zero, which
// removes the equality corner case), masks it multiplicatively with a
// random magnitude r and a random sign flip s, and sends Enc(±r*d). S2
// reports only the sign of the decryption; S1 undoes the flip. The hidden
// variant gets the sign back as E2(t) and undoes the flip homomorphically
// so not even S1 learns the order — that is the comparator used inside
// EncSort.

// maskedDiff builds Enc(±r(2a-2b-1)) and returns the ciphertext plus the
// sign flip that was applied. magBits bounds |a|,|b| so the mask range can
// be chosen with r*|d| < N/2.
func maskedDiff(enc paillier.Encryptor, a, b *paillier.Ciphertext, magBits int) (*paillier.Ciphertext, bool, error) {
	if magBits <= 0 {
		return nil, false, fmt.Errorf("protocols: magnitude bits must be positive, got %d", magBits)
	}
	pk := enc.Key()
	// |d| = |2a - 2b - 1| < 2^{magBits+2}; keep r*|d| below N/2.
	kappa := pk.N.BitLen() - magBits - 4
	if kappa < 16 {
		return nil, false, fmt.Errorf("protocols: modulus too small for %d-bit comparisons", magBits)
	}
	two := big.NewInt(2)
	a2, err := pk.MulConst(a, two)
	if err != nil {
		return nil, false, err
	}
	b2, err := pk.MulConst(b, two)
	if err != nil {
		return nil, false, err
	}
	d, err := pk.Sub(a2, b2)
	if err != nil {
		return nil, false, err
	}
	if d, err = pk.AddPlain(d, big.NewInt(-1)); err != nil {
		return nil, false, err
	}
	r, err := zmath.RandRange(rand.Reader, zmath.One, new(big.Int).Lsh(zmath.One, uint(kappa)))
	if err != nil {
		return nil, false, err
	}
	coin := make([]byte, 1)
	if _, err := rand.Read(coin); err != nil {
		return nil, false, err
	}
	flip := coin[0]&1 == 1
	if flip {
		r.Neg(r)
	}
	masked, err := pk.MulConst(d, r)
	if err != nil {
		return nil, false, err
	}
	// Fresh randomness so S2 cannot correlate the mask with earlier
	// ciphertexts.
	if masked, err = enc.Rerandomize(masked); err != nil {
		return nil, false, err
	}
	return masked, flip, nil
}

// EncCompare returns f = (a <= b), revealed to S1 (one round).
func EncCompare(ctx context.Context, c *cloud.Client, a, b *paillier.Ciphertext, magBits int) (bool, error) {
	out, err := EncCompareBatch(ctx, c, []*paillier.Ciphertext{a}, []*paillier.Ciphertext{b}, magBits)
	if err != nil {
		return false, err
	}
	return out[0], nil
}

// EncCompareBatch evaluates f_i = (a_i <= b_i) for each pair in one round.
func EncCompareBatch(ctx context.Context, c *cloud.Client, as, bs []*paillier.Ciphertext, magBits int) ([]bool, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("protocols: EncCompare length mismatch %d vs %d", len(as), len(bs))
	}
	if len(as) == 0 {
		return nil, nil
	}
	masked := make([]*paillier.Ciphertext, len(as))
	flips := make([]bool, len(as))
	err := parallel.ForEachCtx(ctx, c.Parallelism(), len(as), func(i int) error {
		m, flip, err := maskedDiff(c.Enc(), as[i], bs[i], magBits)
		if err != nil {
			return err
		}
		masked[i], flips[i] = m, flip
		return nil
	})
	if err != nil {
		return nil, err
	}
	negs, err := c.CompareSigns(ctx, masked)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(as))
	for i := range out {
		// d < 0 iff a <= b; the flip inverts the observed sign.
		out[i] = negs[i] != flips[i]
	}
	return out, nil
}

// EncCompareHiddenBatch evaluates t_i = (a_i <= b_i) with the result left
// encrypted as E2(t_i): S2 sees only masked differences, S1 sees only
// ciphertext bits. One round.
func EncCompareHiddenBatch(ctx context.Context, c *cloud.Client, as, bs []*paillier.Ciphertext, magBits int) ([]*dj.Ciphertext, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("protocols: EncCompareHidden length mismatch %d vs %d", len(as), len(bs))
	}
	if len(as) == 0 {
		return nil, nil
	}
	masked := make([]*paillier.Ciphertext, len(as))
	flips := make([]bool, len(as))
	err := parallel.ForEachCtx(ctx, c.Parallelism(), len(as), func(i int) error {
		m, flip, err := maskedDiff(c.Enc(), as[i], bs[i], magBits)
		if err != nil {
			return err
		}
		masked[i], flips[i] = m, flip
		return nil
	})
	if err != nil {
		return nil, err
	}
	bits, err := c.CompareSignsHidden(ctx, masked)
	if err != nil {
		return nil, err
	}
	err = parallel.ForEachCtx(ctx, c.Parallelism(), len(bits), func(i int) error {
		if !flips[i] {
			return nil
		}
		// Undo the sign flip homomorphically: t = 1 - neg.
		nb, err := dj.OneMinusEnc(c.DJEnc(), bits[i])
		if err != nil {
			return err
		}
		bits[i] = nb
		return nil
	})
	if err != nil {
		return nil, err
	}
	return bits, nil
}
