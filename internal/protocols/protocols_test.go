package protocols

import (
	"context"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cloud"
	"repro/internal/dj"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/prf"
	"repro/internal/transport"
)

type testEnv struct {
	keys   *cloud.KeyMaterial
	server *cloud.Server
	client *cloud.Client
	hasher *ehl.Hasher
	stats  *transport.Stats
}

var (
	envOnce sync.Once
	shared  *testEnv
)

func env(t testing.TB) *testEnv {
	t.Helper()
	envOnce.Do(func() {
		keys, err := cloud.NewKeyMaterial(256)
		if err != nil {
			t.Fatalf("NewKeyMaterial: %v", err)
		}
		srv, err := cloud.NewServer(keys, cloud.NewLedger())
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		stats := transport.NewStats()
		client, err := cloud.NewClient(transport.NewLocal(srv, stats), &keys.Paillier.PublicKey, cloud.NewLedger())
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		master := prf.Key(make([]byte, prf.KeySize))
		for i := range master {
			master[i] = byte(i * 3)
		}
		hasher, err := ehl.NewHasher(master, ehl.Params{Kind: ehl.KindPlus, S: 3}, &keys.Paillier.PublicKey)
		if err != nil {
			t.Fatalf("NewHasher: %v", err)
		}
		shared = &testEnv{keys: keys, server: srv, client: client, hasher: hasher, stats: stats}
	})
	return shared
}

func (e *testEnv) enc(t testing.TB, v int64) *paillier.Ciphertext {
	t.Helper()
	ct, err := e.keys.Paillier.PublicKey.EncryptInt64(v)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func (e *testEnv) dec(t testing.TB, ct *paillier.Ciphertext) int64 {
	t.Helper()
	m, err := e.keys.Paillier.DecryptSigned(ct)
	if err != nil {
		t.Fatal(err)
	}
	return m.Int64()
}

func (e *testEnv) list(t testing.TB, obj uint64) *ehl.List {
	t.Helper()
	l, err := e.hasher.Build(obj)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func (e *testEnv) item(t testing.TB, obj uint64, scores ...int64) Item {
	t.Helper()
	it := Item{EHL: e.list(t, obj)}
	for _, s := range scores {
		it.Scores = append(it.Scores, e.enc(t, s))
	}
	return it
}

// revealObj decrypts the first EHL digest so tests can recognize which
// object an item carries (the test plays the data owner).
func (e *testEnv) revealObj(t testing.TB, l *ehl.List, candidates []uint64) (uint64, bool) {
	t.Helper()
	d, err := e.keys.Paillier.Decrypt(l.Cts[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range candidates {
		want, err := e.hasher.Digests(obj)
		if err != nil {
			t.Fatal(err)
		}
		if want[0].Cmp(d) == 0 {
			return obj, true
		}
	}
	return 0, false
}

func TestRecoverEncRoundTrip(t *testing.T) {
	e := env(t)
	vals := []int64{0, 1, 777, 1 << 20}
	var outers []*dj.Ciphertext
	for _, v := range vals {
		outer, err := e.client.DJPK().EncryptInner(e.enc(t, v))
		if err != nil {
			t.Fatal(err)
		}
		outers = append(outers, outer)
	}
	inners, err := RecoverEnc(context.Background(), e.client, outers)
	if err != nil {
		t.Fatalf("RecoverEnc: %v", err)
	}
	for i, v := range vals {
		if got := e.dec(t, inners[i]); got != v {
			t.Errorf("recovered[%d] = %d, want %d", i, got, v)
		}
	}
	if out, err := RecoverEnc(context.Background(), e.client, nil); err != nil || out != nil {
		t.Fatal("empty RecoverEnc should be a no-op")
	}
}

func TestSecMult(t *testing.T) {
	e := env(t)
	f := func(x, y int32) bool {
		a := e.enc(t, int64(x))
		b := e.enc(t, int64(y))
		prods, err := SecMult(context.Background(), e.client, []*paillier.Ciphertext{a}, []*paillier.Ciphertext{b})
		if err != nil {
			t.Logf("SecMult: %v", err)
			return false
		}
		return e.dec(t, prods[0]) == int64(x)*int64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := SecMult(context.Background(), e.client, make([]*paillier.Ciphertext, 1), nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if out, err := SecMult(context.Background(), e.client, nil, nil); err != nil || out != nil {
		t.Fatal("empty SecMult should be a no-op")
	}
}

func TestEncCompare(t *testing.T) {
	e := env(t)
	cases := []struct {
		a, b int64
		want bool // a <= b
	}{
		{1, 2, true}, {2, 1, false}, {5, 5, true}, {0, 0, true},
		{-1, 0, true}, {0, -1, false}, {-1, -1, true},
		{100, 1 << 20, true}, {1 << 20, 100, false},
	}
	for _, c := range cases {
		// Repeat to cover both random sign flips.
		for rep := 0; rep < 4; rep++ {
			got, err := EncCompare(context.Background(), e.client, e.enc(t, c.a), e.enc(t, c.b), 24)
			if err != nil {
				t.Fatalf("EncCompare(%d,%d): %v", c.a, c.b, err)
			}
			if got != c.want {
				t.Fatalf("EncCompare(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestEncCompareBatchAndValidation(t *testing.T) {
	e := env(t)
	as := []*paillier.Ciphertext{e.enc(t, 3), e.enc(t, 9)}
	bs := []*paillier.Ciphertext{e.enc(t, 7), e.enc(t, 2)}
	got, err := EncCompareBatch(context.Background(), e.client, as, bs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] {
		t.Fatalf("batch = %v, want [true false]", got)
	}
	if _, err := EncCompareBatch(context.Background(), e.client, as, bs[:1], 16); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := EncCompare(context.Background(), e.client, as[0], bs[0], 0); err == nil {
		t.Fatal("expected error for non-positive magnitude bits")
	}
	if _, err := EncCompare(context.Background(), e.client, as[0], bs[0], 1000); err == nil {
		t.Fatal("expected error for magnitude exceeding modulus")
	}
	if out, err := EncCompareBatch(context.Background(), e.client, nil, nil, 16); err != nil || out != nil {
		t.Fatal("empty batch should be a no-op")
	}
}

func TestEncCompareHidden(t *testing.T) {
	e := env(t)
	as := []*paillier.Ciphertext{e.enc(t, 3), e.enc(t, 9), e.enc(t, 4)}
	bs := []*paillier.Ciphertext{e.enc(t, 7), e.enc(t, 2), e.enc(t, 4)}
	want := []int64{1, 0, 1} // a <= b
	for rep := 0; rep < 4; rep++ {
		bits, err := EncCompareHiddenBatch(context.Background(), e.client, as, bs, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range bits {
			m, err := e.keys.DJ.Decrypt(b)
			if err != nil {
				t.Fatal(err)
			}
			if m.Int64() != want[i] {
				t.Fatalf("rep %d: hidden bit %d = %v, want %d", rep, i, m, want[i])
			}
		}
	}
}

func TestSecWorstAll(t *testing.T) {
	e := env(t)
	// Depth snapshot from the paper's Figure 3a, depth 1:
	// R1 -> X1:10, R2 -> X2:8, R3 -> X4:8. No co-occurrences, so each
	// worst equals the item's own score.
	items := []DepthItem{
		{EHL: e.list(t, 1), Score: e.enc(t, 10)},
		{EHL: e.list(t, 2), Score: e.enc(t, 8)},
		{EHL: e.list(t, 4), Score: e.enc(t, 8)},
	}
	worst, err := SecWorstAll(context.Background(), e.client, items)
	if err != nil {
		t.Fatalf("SecWorstAll: %v", err)
	}
	for i, want := range []int64{10, 8, 8} {
		if got := e.dec(t, worst[i]); got != want {
			t.Errorf("worst[%d] = %d, want %d", i, got, want)
		}
	}

	// Same object appearing in two lists at this depth: scores add up.
	items2 := []DepthItem{
		{EHL: e.list(t, 7), Score: e.enc(t, 5)},
		{EHL: e.list(t, 7), Score: e.enc(t, 6)},
		{EHL: e.list(t, 9), Score: e.enc(t, 3)},
	}
	worst2, err := SecWorstAll(context.Background(), e.client, items2)
	if err != nil {
		t.Fatalf("SecWorstAll: %v", err)
	}
	for i, want := range []int64{11, 11, 3} {
		if got := e.dec(t, worst2[i]); got != want {
			t.Errorf("co-occurrence worst[%d] = %d, want %d", i, got, want)
		}
	}

	// Single-attribute queries degenerate to the item's own score.
	w1, err := SecWorstAll(context.Background(), e.client, items2[:1])
	if err != nil {
		t.Fatal(err)
	}
	if e.dec(t, w1[0]) != 5 {
		t.Fatal("m=1 worst should be own score")
	}
	if _, err := SecWorstAll(context.Background(), e.client, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestSecBestAll(t *testing.T) {
	e := env(t)
	// Figure 3b state (depth 2) with three lists:
	// R1: X1:10, X2:8   R2: X2:8, X3:7   R3: X4:8, X3:6
	hist := []ListHistory{
		{EHLs: []*ehl.List{e.list(t, 1), e.list(t, 2)}, Scores: []*paillier.Ciphertext{e.enc(t, 10), e.enc(t, 8)}},
		{EHLs: []*ehl.List{e.list(t, 2), e.list(t, 3)}, Scores: []*paillier.Ciphertext{e.enc(t, 8), e.enc(t, 7)}},
		{EHLs: []*ehl.List{e.list(t, 4), e.list(t, 3)}, Scores: []*paillier.Ciphertext{e.enc(t, 8), e.enc(t, 6)}},
	}
	items := []DepthItem{
		{EHL: e.list(t, 2), Score: e.enc(t, 8)}, // current depth item of R1
		{EHL: e.list(t, 3), Score: e.enc(t, 7)}, // of R2
		{EHL: e.list(t, 3), Score: e.enc(t, 6)}, // of R3
	}
	best, err := SecBestAll(context.Background(), e.client, items, hist)
	if err != nil {
		t.Fatalf("SecBestAll: %v", err)
	}
	// X2 (item of R1): own 8 + seen in R2 (8) + bottom of R3 (6) = 22.
	// X3 (item of R2): own 7 + bottom of R1 (8) + seen in R3 (6) = 21.
	// X3 (item of R3): own 6 + bottom of R1 (8) + seen in R2 (7) = 21.
	for i, want := range []int64{22, 21, 21} {
		if got := e.dec(t, best[i]); got != want {
			t.Errorf("best[%d] = %d, want %d (paper Fig. 3b)", i, got, want)
		}
	}
	if _, err := SecBestAll(context.Background(), e.client, items, hist[:1]); err == nil {
		t.Fatal("expected history length mismatch error")
	}
	b1, err := SecBestAll(context.Background(), e.client, items[:1], hist[:1])
	if err != nil {
		t.Fatal(err)
	}
	if e.dec(t, b1[0]) != 8 {
		t.Fatal("m=1 best should be own score")
	}
}

func TestSecDedupReplaceFullProtocol(t *testing.T) {
	e := env(t)
	items := []Item{
		e.item(t, 1, 100, 200),
		e.item(t, 1, 100, 200),
		e.item(t, 2, 300, 400),
	}
	out, err := SecDedup(context.Background(), e.client, items, cloud.DedupReplace, AllPairs(3), nil)
	if err != nil {
		t.Fatalf("SecDedup: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("replace mode should keep 3 rows, got %d", len(out))
	}
	var real1, real2, sentinels int
	for _, it := range out {
		obj, ok := e.revealObj(t, it.EHL, []uint64{1, 2})
		w := e.dec(t, it.Scores[0])
		switch {
		case ok && obj == 1 && w == 100:
			real1++
		case ok && obj == 2 && w == 300:
			real2++
		case !ok && w == -1:
			sentinels++
		default:
			t.Fatalf("unexpected row: obj=%d ok=%v w=%d", obj, ok, w)
		}
	}
	if real1 != 1 || real2 != 1 || sentinels != 1 {
		t.Fatalf("real1=%d real2=%d sentinels=%d", real1, real2, sentinels)
	}
}

func TestSecDedupEliminate(t *testing.T) {
	e := env(t)
	items := []Item{
		e.item(t, 5, 10, 20),
		e.item(t, 6, 30, 40),
		e.item(t, 5, 10, 20),
		e.item(t, 5, 10, 20),
	}
	out, err := SecDedup(context.Background(), e.client, items, cloud.DedupEliminate, AllPairs(4), nil)
	if err != nil {
		t.Fatalf("SecDedup: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("eliminate should keep 2 rows, got %d", len(out))
	}
	seen := map[uint64]int64{}
	for _, it := range out {
		obj, ok := e.revealObj(t, it.EHL, []uint64{5, 6})
		if !ok {
			t.Fatal("eliminate mode returned an unknown object")
		}
		seen[obj] = e.dec(t, it.Scores[0])
	}
	if seen[5] != 10 || seen[6] != 30 {
		t.Fatalf("scores wrong after eliminate: %v", seen)
	}
}

func TestSecDedupMergeSumsWorst(t *testing.T) {
	e := env(t)
	items := []Item{
		e.item(t, 8, 10, 99),
		e.item(t, 8, 20, 98),
		e.item(t, 9, 7, 96),
	}
	out, err := SecDedup(context.Background(), e.client, items, cloud.DedupMerge, AllPairs(3), []int{ColWorst})
	if err != nil {
		t.Fatalf("SecDedup merge: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("merge should keep 2 rows, got %d", len(out))
	}
	for _, it := range out {
		obj, ok := e.revealObj(t, it.EHL, []uint64{8, 9})
		if !ok {
			t.Fatal("merge returned unknown object")
		}
		w := e.dec(t, it.Scores[0])
		if obj == 8 && w != 30 {
			t.Fatalf("merged worst = %d, want 30", w)
		}
		if obj == 9 && w != 7 {
			t.Fatalf("unique worst = %d, want 7", w)
		}
	}
}

func TestSecDedupValidation(t *testing.T) {
	e := env(t)
	items := []Item{e.item(t, 1, 5, 5)}
	if _, err := SecDedup(context.Background(), e.client, items, cloud.DedupReplace, PairSet{Pairs: [][2]int{{0, 3}}}, nil); err == nil {
		t.Fatal("expected out-of-range pair error")
	}
	if out, err := SecDedup(context.Background(), e.client, nil, cloud.DedupReplace, PairSet{}, nil); err != nil || out != nil {
		t.Fatal("empty dedup should be a no-op")
	}
	bad := []Item{{EHL: nil}}
	if _, err := SecDedup(context.Background(), e.client, bad, cloud.DedupReplace, PairSet{}, nil); err == nil {
		t.Fatal("expected invalid item error")
	}
}

func TestSecUpdateMergesMatchedObjects(t *testing.T) {
	e := env(t)
	// Existing: object 1 with W=10, B=26; object 2 with W=8, B=26.
	T := []Item{
		e.item(t, 1, 10, 26),
		e.item(t, 2, 8, 26),
	}
	// Depth items: object 2 reappears (local worst 8, fresh best 22);
	// object 3 is new (worst 7, best 21).
	gamma := []Item{
		e.item(t, 2, 8, 22),
		e.item(t, 3, 7, 21),
	}
	out, err := SecUpdate(context.Background(), e.client, T, gamma, cloud.DedupEliminate)
	if err != nil {
		t.Fatalf("SecUpdate: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("expected 3 distinct objects, got %d", len(out))
	}
	got := map[uint64][2]int64{}
	for _, it := range out {
		obj, ok := e.revealObj(t, it.EHL, []uint64{1, 2, 3})
		if !ok {
			t.Fatal("unknown object after SecUpdate")
		}
		got[obj] = [2]int64{e.dec(t, it.Scores[0]), e.dec(t, it.Scores[1])}
	}
	if got[1] != [2]int64{10, 26} {
		t.Errorf("object 1 = %v, want {10 26} (untouched)", got[1])
	}
	if got[2] != [2]int64{16, 22} {
		t.Errorf("object 2 = %v, want {16 22} (W accumulated, B refreshed)", got[2])
	}
	if got[3] != [2]int64{7, 21} {
		t.Errorf("object 3 = %v, want {7 21} (appended)", got[3])
	}
}

func TestSecUpdateReplaceModeKeepsSentinels(t *testing.T) {
	e := env(t)
	T := []Item{e.item(t, 1, 10, 20)}
	gamma := []Item{e.item(t, 1, 5, 18)}
	out, err := SecUpdate(context.Background(), e.client, T, gamma, cloud.DedupReplace)
	if err != nil {
		t.Fatalf("SecUpdate: %v", err)
	}
	// Replace mode keeps the duplicate slot as a sentinel: 2 rows total.
	if len(out) != 2 {
		t.Fatalf("expected 2 rows in replace mode, got %d", len(out))
	}
	var merged, sentinels int
	for _, it := range out {
		if _, ok := e.revealObj(t, it.EHL, []uint64{1}); ok {
			if w := e.dec(t, it.Scores[0]); w != 15 {
				t.Fatalf("merged W = %d, want 15", w)
			}
			merged++
		} else if e.dec(t, it.Scores[0]) == -1 {
			sentinels++
		}
	}
	if merged != 1 || sentinels != 1 {
		t.Fatalf("merged=%d sentinels=%d", merged, sentinels)
	}
}

func TestSecUpdateEmptyCases(t *testing.T) {
	e := env(t)
	T := []Item{e.item(t, 1, 1, 2)}
	out, err := SecUpdate(context.Background(), e.client, T, nil, cloud.DedupEliminate)
	if err != nil || len(out) != 1 {
		t.Fatalf("empty gamma should return T: %v len=%d", err, len(out))
	}
	gamma := []Item{e.item(t, 2, 3, 4)}
	out, err = SecUpdate(context.Background(), e.client, nil, gamma, cloud.DedupEliminate)
	if err != nil || len(out) != 1 {
		t.Fatalf("empty T should return gamma: %v len=%d", err, len(out))
	}
}

func sortCheck(t *testing.T, e *testEnv, vals []int64, desc bool) {
	t.Helper()
	items := make([]Item, len(vals))
	for i, v := range vals {
		items[i] = e.item(t, uint64(100+i), v, int64(i))
	}
	out, err := EncSort(context.Background(), e.client, items, 0, desc, 16)
	if err != nil {
		t.Fatalf("EncSort: %v", err)
	}
	if len(out) != len(vals) {
		t.Fatalf("sort changed length %d -> %d", len(vals), len(out))
	}
	got := make([]int64, len(out))
	for i, it := range out {
		got[i] = e.dec(t, it.Scores[0])
	}
	want := append([]int64(nil), vals...)
	sort.Slice(want, func(i, j int) bool {
		if desc {
			return want[i] > want[j]
		}
		return want[i] < want[j]
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("desc=%v: sorted = %v, want %v", desc, got, want)
		}
	}
	// Payload columns must travel with their key: re-derive the original
	// index column and check the pairing survived.
	for _, it := range out {
		key := e.dec(t, it.Scores[0])
		idx := e.dec(t, it.Scores[1])
		if vals[idx] != key {
			t.Fatalf("payload decoupled from key: key=%d idx=%d", key, idx)
		}
	}
}

func TestEncSortAscending(t *testing.T) {
	sortCheck(t, env(t), []int64{5, 3, 9, 1}, false)
}

func TestEncSortDescending(t *testing.T) {
	sortCheck(t, env(t), []int64{5, 3, 9, 1, 7}, true) // non-power-of-two
}

func TestEncSortWithDuplicatesAndNegatives(t *testing.T) {
	sortCheck(t, env(t), []int64{4, -1, 4, 0, -1, 8}, true)
}

func TestEncSortEdgeCases(t *testing.T) {
	e := env(t)
	if out, err := EncSort(context.Background(), e.client, nil, 0, false, 8); err != nil || len(out) != 0 {
		t.Fatal("empty sort should be a no-op")
	}
	one := []Item{e.item(t, 1, 5)}
	out, err := EncSort(context.Background(), e.client, one, 0, false, 8)
	if err != nil || len(out) != 1 {
		t.Fatalf("singleton sort: %v", err)
	}
	if _, err := EncSort(context.Background(), e.client, []Item{e.item(t, 1, 5), e.item(t, 2, 6)}, 3, false, 8); err == nil {
		t.Fatal("expected column range error")
	}
}

func TestEncSelectTop(t *testing.T) {
	e := env(t)
	vals := []int64{5, 12, 3, 9, 1, 7}
	items := make([]Item, len(vals))
	for i, v := range vals {
		items[i] = e.item(t, uint64(i), v)
	}
	out, err := EncSelectTop(context.Background(), e.client, items, 0, true, 3, 16)
	if err != nil {
		t.Fatalf("EncSelectTop: %v", err)
	}
	want := []int64{12, 9, 7}
	for i := range want {
		if got := e.dec(t, out[i].Scores[0]); got != want[i] {
			t.Fatalf("top[%d] = %d, want %d", i, got, want[i])
		}
	}
	// k > n clamps.
	out2, err := EncSelectTop(context.Background(), e.client, items[:2], 0, true, 10, 16)
	if err != nil || len(out2) != 2 {
		t.Fatalf("clamped selection: %v", err)
	}
	if _, err := EncSelectTop(context.Background(), e.client, items, 0, true, -1, 16); err == nil {
		t.Fatal("expected negative k error")
	}
	if out3, err := EncSelectTop(context.Background(), e.client, nil, 0, true, 1, 16); err != nil || out3 != nil {
		t.Fatal("empty selection should be a no-op")
	}
}

func TestEncSelectTopAscending(t *testing.T) {
	e := env(t)
	vals := []int64{5, 12, 3, 9}
	items := make([]Item, len(vals))
	for i, v := range vals {
		items[i] = e.item(t, uint64(i), v)
	}
	out, err := EncSelectTop(context.Background(), e.client, items, 0, false, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.dec(t, out[0].Scores[0]) != 3 || e.dec(t, out[1].Scores[0]) != 5 {
		t.Fatal("ascending selection wrong")
	}
}

func TestSecFilterProtocol(t *testing.T) {
	e := env(t)
	tuples := []JoinTuple{
		{Score: e.enc(t, 15), Attrs: []*paillier.Ciphertext{e.enc(t, 1), e.enc(t, 2)}},
		{Score: e.enc(t, 0), Attrs: []*paillier.Ciphertext{e.enc(t, 3), e.enc(t, 4)}},
		{Score: e.enc(t, 27), Attrs: []*paillier.Ciphertext{e.enc(t, 5), e.enc(t, 6)}},
	}
	out, err := SecFilter(context.Background(), e.client, tuples)
	if err != nil {
		t.Fatalf("SecFilter: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("expected 2 surviving tuples, got %d", len(out))
	}
	found := map[int64][]int64{}
	for _, tp := range out {
		s := e.dec(t, tp.Score)
		var attrs []int64
		for _, a := range tp.Attrs {
			attrs = append(attrs, e.dec(t, a))
		}
		found[s] = attrs
	}
	if a, ok := found[15]; !ok || a[0] != 1 || a[1] != 2 {
		t.Fatalf("tuple 15 wrong: %v", found)
	}
	if a, ok := found[27]; !ok || a[0] != 5 || a[1] != 6 {
		t.Fatalf("tuple 27 wrong: %v", found)
	}
	if out, err := SecFilter(context.Background(), e.client, nil); err != nil || out != nil {
		t.Fatal("empty filter should be a no-op")
	}
	if _, err := SecFilter(context.Background(), e.client, []JoinTuple{{Score: nil}}); err == nil {
		t.Fatal("expected malformed tuple error")
	}
}

func TestBatcherLayersProduceValidNetwork(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		layers := batcherLayers(n)
		// Verify with a 0/1 principle-ish spot check: sorting random
		// permutations of ints through the comparator network.
		for trial := 0; trial < 20; trial++ {
			vals, err := prf.RandomPerm(n)
			if err != nil {
				t.Fatal(err)
			}
			for _, layer := range layers {
				seen := map[int]bool{}
				for _, g := range layer {
					if g.i >= g.j {
						t.Fatalf("gate %v not ordered", g)
					}
					if seen[g.i] || seen[g.j] {
						t.Fatalf("layer reuses index: %v", layer)
					}
					seen[g.i], seen[g.j] = true, true
					if vals[g.i] > vals[g.j] {
						vals[g.i], vals[g.j] = vals[g.j], vals[g.i]
					}
				}
			}
			for i := 1; i < n; i++ {
				if vals[i-1] > vals[i] {
					t.Fatalf("n=%d: network failed to sort: %v", n, vals)
				}
			}
		}
	}
}

func TestItemCloneAndValidate(t *testing.T) {
	e := env(t)
	it := e.item(t, 1, 5, 6)
	c := it.Clone()
	c.Scores[0].C.Add(c.Scores[0].C, c.Scores[0].C)
	if e.dec(t, it.Scores[0]) != 5 {
		t.Fatal("Clone aliases original")
	}
	if err := it.Validate(2); err != nil {
		t.Fatalf("valid item rejected: %v", err)
	}
	if err := it.Validate(3); err == nil {
		t.Fatal("wrong column count accepted")
	}
	if err := (Item{}).Validate(0); err == nil {
		t.Fatal("missing EHL accepted")
	}
	if err := (Item{EHL: it.EHL, Scores: []*paillier.Ciphertext{nil}}).Validate(1); err == nil {
		t.Fatal("nil score accepted")
	}
}
