package protocols

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/cloud"
	"repro/internal/dj"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/prf"
)

// SecUpdate merges the current depth's deduplicated items gamma into the
// global encrypted list T (Algorithm 9). For every (new, existing) pair
// with equality bit t:
//
//	existing.W += t * new.W          (accumulate the depth contribution)
//	existing.B  = t*new.B + (1-t)*existing.B   (take the fresher bound)
//	new.W      += t * existing.W_old (so both copies carry the merged total)
//
// after which the new items are appended and a bipartite dedup removes one
// copy of each matched pair. In Replace mode (Qry_F) the duplicate slots
// stay as sentinel rows, so |T| grows by |gamma| each depth, as in the
// paper; in Eliminate mode (Qry_E) they are dropped.
//
// Extra score columns beyond W and B (engine payload such as per-list seen
// indicators) are merged additively like W.
func SecUpdate(ctx context.Context, c *cloud.Client, T, gamma []Item, mode cloud.DedupMode) ([]Item, error) {
	if len(gamma) == 0 {
		return T, nil
	}
	cols := len(gamma[0].Scores)
	for i, it := range gamma {
		if err := it.Validate(cols); err != nil {
			return nil, fmt.Errorf("protocols: SecUpdate gamma[%d]: %w", i, err)
		}
	}
	for i, it := range T {
		if err := it.Validate(cols); err != nil {
			return nil, fmt.Errorf("protocols: SecUpdate T[%d]: %w", i, err)
		}
	}
	if len(T) == 0 {
		// Nothing to merge with; gamma becomes the list.
		return append([]Item(nil), gamma...), nil
	}
	pk := c.PK()

	// One EqBits round over all (new, existing) pairs, permuted. The
	// equality ciphertexts build in parallel.
	type pairRef struct{ g, t int }
	var refs []pairRef
	for gi := range gamma {
		for ti := range T {
			refs = append(refs, pairRef{gi, ti})
		}
	}
	eqCts, err := parallel.MapErrCtx(ctx, c.Parallelism(), refs, func(_ int, r pairRef) (*paillier.Ciphertext, error) {
		ct, err := ehl.SubEnc(c.Enc(), gamma[r.g].EHL, T[r.t].EHL)
		if err != nil {
			return nil, fmt.Errorf("protocols: SecUpdate eq(%d,%d): %w", r.g, r.t, err)
		}
		return ct, nil
	})
	if err != nil {
		return nil, err
	}
	perm, err := prf.RandomPerm(len(eqCts))
	if err != nil {
		return nil, err
	}
	permuted := make([]*paillier.Ciphertext, len(eqCts))
	for i := range eqCts {
		permuted[perm[i]] = eqCts[i]
	}
	bitsPermuted, err := c.EqBits(ctx, permuted)
	if err != nil {
		return nil, err
	}
	bits := make([]*dj.Ciphertext, len(refs))
	for i := range refs {
		bits[i] = bitsPermuted[perm[i]]
	}
	notBits, err := oneMinusAll(ctx, c, bits)
	if err != nil {
		return nil, err
	}

	// Build all selection terms; resolve with one RecoverEnc round.
	zero, err := c.Enc().EncryptZero()
	if err != nil {
		return nil, err
	}
	djPK := c.DJPK()
	one, err := c.DJEnc().Encrypt(big.NewInt(1))
	if err != nil {
		return nil, err
	}
	sel := newSelector(c)
	type jobKind int
	const (
		jobExistingAdd jobKind = iota // add t*value to existing column
		jobExistingSet                // overwrite existing col (composed select)
		jobNewAdd                     // add t*value to new column
	)
	type job struct {
		kind jobKind
		item int // index into T or gamma depending on kind
		col  int
		slot int
	}
	var jobs []job
	// bitIdx[g][t] locates the equality bit of pair (gamma g, existing t).
	bitIdx := make(map[[2]int]int, len(refs))
	for k, r := range refs {
		bitIdx[[2]int{r.g, r.t}] = k
	}
	for k, r := range refs {
		g, t := r.g, r.t
		// Additive columns: W and any payload columns beyond B. Adding
		// composes safely across pairs because at most one pair matches.
		for col := 0; col < cols; col++ {
			if col == ColBest {
				continue
			}
			jobs = append(jobs,
				job{kind: jobExistingAdd, item: t, col: col, slot: sel.add(bits[k], notBits[k], gamma[g].Scores[col], zero)},
				job{kind: jobNewAdd, item: g, col: col, slot: sel.add(bits[k], notBits[k], T[t].Scores[col], zero)})
		}
	}
	// Best bound: replace with the fresher value when matched. This must
	// compose across all gamma items of one existing entry at once —
	// B' = sum_g t_g * B_g + (1 - sum_g t_g) * B_old — a per-pair select
	// would let a later unmatched pair overwrite the refresh. Each entry's
	// exponentiation chain is independent, so they build in parallel.
	if cols > ColBest {
		terms := make([]*dj.Ciphertext, len(T))
		err := parallel.ForEachCtx(ctx, c.Parallelism(), len(T), func(ti int) error {
			var term, tSum *dj.Ciphertext
			for gi := range gamma {
				k := bitIdx[[2]int{gi, ti}]
				contrib, err := djPK.ExpCipher(bits[k], gamma[gi].Scores[ColBest])
				if err != nil {
					return err
				}
				if term == nil {
					term, tSum = contrib, bits[k]
				} else {
					if term, err = djPK.Add(term, contrib); err != nil {
						return err
					}
					if tSum, err = djPK.Add(tSum, bits[k]); err != nil {
						return err
					}
				}
			}
			notT, err := djPK.Sub(one, tSum)
			if err != nil {
				return err
			}
			oldTerm, err := djPK.ExpCipher(notT, T[ti].Scores[ColBest])
			if err != nil {
				return err
			}
			if term, err = djPK.Add(term, oldTerm); err != nil {
				return err
			}
			terms[ti] = term
			return nil
		})
		if err != nil {
			return nil, err
		}
		for ti, term := range terms {
			jobs = append(jobs, job{kind: jobExistingSet, item: ti, col: ColBest, slot: sel.addRaw(term)})
		}
	}
	resolved, err := sel.resolve(ctx)
	if err != nil {
		return nil, err
	}

	// Apply updates on fresh copies.
	newT := make([]Item, len(T))
	for i := range T {
		newT[i] = T[i].Clone()
	}
	newGamma := make([]Item, len(gamma))
	for i := range gamma {
		newGamma[i] = gamma[i].Clone()
	}
	for _, j := range jobs {
		switch j.kind {
		case jobExistingAdd:
			sum, err := pk.Add(newT[j.item].Scores[j.col], resolved[j.slot])
			if err != nil {
				return nil, err
			}
			newT[j.item].Scores[j.col] = sum
		case jobExistingSet:
			newT[j.item].Scores[j.col] = resolved[j.slot]
		case jobNewAdd:
			sum, err := pk.Add(newGamma[j.item].Scores[j.col], resolved[j.slot])
			if err != nil {
				return nil, err
			}
			newGamma[j.item].Scores[j.col] = sum
		}
	}

	// Append and run the bipartite dedup so each matched object survives
	// exactly once (Algorithm 9 line 13).
	combined := append(newT, newGamma...)
	existingIdx := make([]int, len(newT))
	for i := range newT {
		existingIdx[i] = i
	}
	newIdx := make([]int, len(newGamma))
	for i := range newGamma {
		newIdx[i] = len(newT) + i
	}
	return SecDedup(ctx, c, combined, mode, Bipartite(newIdx, existingIdx), nil)
}
