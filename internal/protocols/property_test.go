package protocols

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cloud"
	"repro/internal/paillier"
)

// Property tests: the sub-protocols must agree with their plaintext
// semantics on randomized inputs. Sizes stay tiny because every check
// drives real two-party crypto.

// TestPropertySecWorst checks SecWorstAll against the plaintext rule
// W_i = x_i + sum_{j != i, o_j = o_i} x_j on random depth snapshots.
func TestPropertySecWorst(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		objs := make([]uint64, m)
		scores := make([]int64, m)
		items := make([]DepthItem, m)
		for i := 0; i < m; i++ {
			objs[i] = uint64(rng.Intn(3)) // small domain forces collisions
			scores[i] = int64(rng.Intn(50))
			items[i] = DepthItem{EHL: e.list(t, objs[i]), Score: e.enc(t, scores[i])}
		}
		got, err := SecWorstAll(context.Background(), e.client, items)
		if err != nil {
			t.Logf("SecWorstAll: %v", err)
			return false
		}
		for i := 0; i < m; i++ {
			want := scores[i]
			for j := 0; j < m; j++ {
				if j != i && objs[j] == objs[i] {
					want += scores[j]
				}
			}
			if e.dec(t, got[i]) != want {
				t.Logf("seed %d: worst[%d] = %d, want %d (objs=%v scores=%v)",
					seed, i, e.dec(t, got[i]), want, objs, scores)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySecBest checks SecBestAll against the plaintext NRA bound
// on random list prefixes.
func TestPropertySecBest(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(2)
		depth := 1 + rng.Intn(3)
		// objsAt[j][d], scoresAt[j][d]: list j at depth d. Objects appear
		// at most once per list.
		objsAt := make([][]uint64, m)
		scoresAt := make([][]int64, m)
		hist := make([]ListHistory, m)
		for j := 0; j < m; j++ {
			perm := rng.Perm(8)
			vals := make([]int64, depth)
			for d := range vals {
				vals[d] = int64(60 - 10*d - rng.Intn(5)) // descending-ish
			}
			objsAt[j] = make([]uint64, depth)
			scoresAt[j] = vals
			for d := 0; d < depth; d++ {
				objsAt[j][d] = uint64(perm[d])
				hist[j].EHLs = append(hist[j].EHLs, e.list(t, objsAt[j][d]))
				hist[j].Scores = append(hist[j].Scores, e.enc(t, vals[d]))
			}
		}
		items := make([]DepthItem, m)
		for j := 0; j < m; j++ {
			items[j] = DepthItem{
				EHL:   e.list(t, objsAt[j][depth-1]),
				Score: e.enc(t, scoresAt[j][depth-1]),
			}
		}
		got, err := SecBestAll(context.Background(), e.client, items, hist)
		if err != nil {
			t.Logf("SecBestAll: %v", err)
			return false
		}
		for i := 0; i < m; i++ {
			obj := objsAt[i][depth-1]
			want := scoresAt[i][depth-1]
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				contrib := scoresAt[j][depth-1] // bottom
				for d := 0; d < depth; d++ {
					if objsAt[j][d] == obj {
						contrib = scoresAt[j][d]
						break
					}
				}
				want += contrib
			}
			if e.dec(t, got[i]) != want {
				t.Logf("seed %d: best[%d] = %d, want %d", seed, i, e.dec(t, got[i]), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEncSortIsPermutationSorted checks that EncSort outputs a
// sorted permutation of its input multiset for random values.
func TestPropertyEncSortIsPermutationSorted(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		vals := make([]int64, n)
		items := make([]Item, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(100))
			items[i] = e.item(t, uint64(200+i), vals[i])
		}
		out, err := EncSort(context.Background(), e.client, items, 0, false, 16)
		if err != nil {
			t.Logf("EncSort: %v", err)
			return false
		}
		counts := map[int64]int{}
		for _, v := range vals {
			counts[v]++
		}
		prev := int64(-1 << 60)
		for _, it := range out {
			v := e.dec(t, it.Scores[0])
			if v < prev {
				t.Logf("seed %d: not sorted: %v", seed, vals)
				return false
			}
			prev = v
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				t.Logf("seed %d: multiset changed", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDedupInvariants checks that eliminate-mode dedup keeps
// exactly one item per distinct object with unchanged scores.
func TestPropertyDedupInvariants(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		objs := make([]uint64, n)
		items := make([]Item, n)
		scoreOf := map[uint64]int64{}
		for i := range objs {
			objs[i] = uint64(rng.Intn(4))
			s, ok := scoreOf[objs[i]]
			if !ok {
				s = int64(rng.Intn(90) + 1)
				scoreOf[objs[i]] = s
			}
			items[i] = e.item(t, objs[i], s, s+1)
		}
		out, err := SecDedup(context.Background(), e.client, items, cloud.DedupEliminate, AllPairs(n), nil)
		if err != nil {
			t.Logf("SecDedup: %v", err)
			return false
		}
		if len(out) != len(scoreOf) {
			t.Logf("seed %d: kept %d, want %d distinct", seed, len(out), len(scoreOf))
			return false
		}
		seen := map[uint64]bool{}
		cands := make([]uint64, 0, len(scoreOf))
		for o := range scoreOf {
			cands = append(cands, o)
		}
		for _, it := range out {
			obj, ok := e.revealObj(t, it.EHL, cands)
			if !ok || seen[obj] {
				t.Logf("seed %d: unknown or duplicate object after dedup", seed)
				return false
			}
			seen[obj] = true
			if e.dec(t, it.Scores[0]) != scoreOf[obj] {
				t.Logf("seed %d: score changed for obj %d", seed, obj)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCompareAgainstPlaintext fuzzes EncCompare with random
// signed values.
func TestPropertyCompareAgainstPlaintext(t *testing.T) {
	e := env(t)
	f := func(a, b int16) bool {
		ca := e.enc(t, int64(a))
		cb := e.enc(t, int64(b))
		got, err := EncCompare(context.Background(), e.client, ca, cb, 18)
		if err != nil {
			t.Logf("EncCompare: %v", err)
			return false
		}
		return got == (a <= b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySecMultMatrix checks batched SecMult on random vectors.
func TestPropertySecMultMatrix(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		as := make([]*paillier.Ciphertext, n)
		bs := make([]*paillier.Ciphertext, n)
		want := make([]int64, n)
		for i := 0; i < n; i++ {
			x := int64(rng.Intn(1000)) - 500
			y := int64(rng.Intn(1000)) - 500
			as[i] = e.enc(t, x)
			bs[i] = e.enc(t, y)
			want[i] = x * y
		}
		got, err := SecMult(context.Background(), e.client, as, bs)
		if err != nil {
			t.Logf("SecMult: %v", err)
			return false
		}
		for i := range want {
			if e.dec(t, got[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
