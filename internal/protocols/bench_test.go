package protocols

import (
	"context"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dj"
	"repro/internal/paillier"
)

// Micro-benchmarks for the sub-protocol building blocks: per-call cost of
// each primitive round at the test key size. These feed the complexity
// accounting of Section 10.3 (cost per depth ~ SecWorst O(m) + SecBest
// O(md) + SecDedup O(m^2) + SecUpdate O(m^2 d)).

func benchItems(b *testing.B, e *testEnv, m int) []DepthItem {
	b.Helper()
	items := make([]DepthItem, m)
	for i := 0; i < m; i++ {
		items[i] = DepthItem{EHL: e.list(b, uint64(i%3)), Score: e.enc(b, int64(10+i))}
	}
	return items
}

func BenchmarkSecWorstM3(b *testing.B) {
	e := env(b)
	items := benchItems(b, e, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SecWorstAll(context.Background(), e.client, items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSecBestM3D4(b *testing.B) {
	e := env(b)
	const m, d = 3, 4
	hist := make([]ListHistory, m)
	for j := 0; j < m; j++ {
		for depth := 0; depth < d; depth++ {
			hist[j].EHLs = append(hist[j].EHLs, e.list(b, uint64(j*d+depth)))
			hist[j].Scores = append(hist[j].Scores, e.enc(b, int64(50-depth)))
		}
	}
	items := make([]DepthItem, m)
	for j := 0; j < m; j++ {
		items[j] = DepthItem{EHL: hist[j].EHLs[d-1], Score: hist[j].Scores[d-1]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SecBestAll(context.Background(), e.client, items, hist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSecDedupReplace(b *testing.B) {
	e := env(b)
	items := []Item{
		e.item(b, 1, 10, 20),
		e.item(b, 1, 10, 20),
		e.item(b, 2, 30, 40),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SecDedup(context.Background(), e.client, items, cloud.DedupReplace, AllPairs(len(items)), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncCompare(b *testing.B) {
	e := env(b)
	x := e.enc(b, 100)
	y := e.enc(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncCompare(context.Background(), e.client, x, y, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoverEncBatch8(b *testing.B) {
	e := env(b)
	var outers []*dj.Ciphertext
	for i := 0; i < 8; i++ {
		outer, err := e.client.DJPK().EncryptInner(e.enc(b, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		outers = append(outers, outer)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverEnc(context.Background(), e.client, outers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSecMultBatch8(b *testing.B) {
	e := env(b)
	var as, bs []*paillier.Ciphertext
	for i := 0; i < 8; i++ {
		as = append(as, e.enc(b, int64(i)))
		bs = append(bs, e.enc(b, int64(i+1)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SecMult(context.Background(), e.client, as, bs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncSelectTop3Of8(b *testing.B) {
	e := env(b)
	items := make([]Item, 8)
	for i := range items {
		items[i] = e.item(b, uint64(i), int64(i*7%13))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncSelectTop(context.Background(), e.client, items, 0, true, 3, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncSort8(b *testing.B) {
	e := env(b)
	items := make([]Item, 8)
	for i := range items {
		items[i] = e.item(b, uint64(i), int64(i*7%13))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncSort(context.Background(), e.client, items, 0, true, 16); err != nil {
			b.Fatal(err)
		}
	}
}
