package protocols

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/cloud"
	"repro/internal/dj"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/parallel"
)

// EncSort realizes the EncSort building block of [7] ("sorting behind the
// curtain"): S1 holds encrypted items and ends with the same multiset of
// items ordered by the designated score column, learning nothing about the
// order; S2 sees only masked comparator differences.
//
// Implementation: a Batcher odd-even merge sorting network whose
// compare-exchange gates are built from EncCompareHidden (the comparison
// bit stays encrypted) and the encrypted-selection gadget. Gates within a
// network layer are independent, so each layer costs two rounds (one
// comparison batch, one recovery batch) — the parallelism the paper
// invokes for its O(log^2 m) depth claim (Section 10.3).
//
// The list is padded to a power of two with sentinel items that sort last
// and are stripped before returning. col selects the key column; desc
// selects descending order; magBits bounds the key magnitudes.
func EncSort(ctx context.Context, c *cloud.Client, items []Item, col int, desc bool, magBits int) ([]Item, error) {
	n := len(items)
	if n <= 1 {
		return append([]Item(nil), items...), nil
	}
	cols := len(items[0].Scores)
	if col < 0 || col >= cols {
		return nil, fmt.Errorf("protocols: sort column %d out of range", col)
	}
	for i, it := range items {
		if err := it.Validate(cols); err != nil {
			return nil, fmt.Errorf("protocols: EncSort item %d: %w", i, err)
		}
	}

	// Pad to the next power of two with items whose key sorts last.
	p2 := 1
	for p2 < n {
		p2 <<= 1
	}
	work := make([]Item, p2)
	copy(work, items)
	if p2 > n {
		padKey := new(big.Int).Lsh(big.NewInt(1), uint(magBits)+1)
		if desc {
			padKey.Neg(padKey)
		}
		err := parallel.ForEachCtx(ctx, c.Parallelism(), p2-n, func(i int) error {
			pad, err := sentinelItem(c.Enc(), items[0], padKey)
			if err != nil {
				return err
			}
			work[n+i] = *pad
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	layers := batcherLayers(p2)
	for _, layer := range layers {
		if err := runGateLayer(ctx, c, work, layer, col, desc, magBits+2); err != nil {
			return nil, err
		}
	}
	return work[:n], nil
}

// sentinelItem builds a pad item shaped like the template with the given
// key value; non-key columns are zero and the id is random.
func sentinelItem(enc paillier.Encryptor, template Item, key *big.Int) (*Item, error) {
	params := ehl.Params{Kind: template.EHL.Kind, S: template.EHL.Width(), H: template.EHL.Width()}
	id, err := ehl.RandomList(enc.Key(), params)
	if err != nil {
		return nil, err
	}
	out := &Item{EHL: id}
	for range template.Scores {
		ct, err := enc.Encrypt(key)
		if err != nil {
			return nil, err
		}
		out.Scores = append(out.Scores, ct)
	}
	return out, nil
}

// gate is one compare-exchange: after execution, position i holds the item
// that sorts first.
type gate struct{ i, j int }

// batcherLayers generates the odd-even merge sort network for n a power of
// two, grouped into layers of independent gates.
func batcherLayers(n int) [][]gate {
	var seq []gate
	var sortRange func(lo, cnt int)
	var mergeRange func(lo, cnt, step int)
	mergeRange = func(lo, cnt, step int) {
		s2 := step * 2
		if s2 < cnt {
			mergeRange(lo, cnt, s2)
			mergeRange(lo+step, cnt, s2)
			for i := lo + step; i+step < lo+cnt; i += s2 {
				seq = append(seq, gate{i, i + step})
			}
		} else {
			seq = append(seq, gate{lo, lo + step})
		}
	}
	sortRange = func(lo, cnt int) {
		if cnt > 1 {
			m := cnt / 2
			sortRange(lo, m)
			sortRange(lo+m, m)
			mergeRange(lo, cnt, 1)
		}
	}
	sortRange(0, n)

	// Greedy layering preserving sequential order: a gate joins the
	// current layer only if neither endpoint is already used in it.
	var layers [][]gate
	used := map[int]bool{}
	var cur []gate
	flush := func() {
		if len(cur) > 0 {
			layers = append(layers, cur)
			cur = nil
			used = map[int]bool{}
		}
	}
	for _, g := range seq {
		if used[g.i] || used[g.j] {
			flush()
		}
		cur = append(cur, g)
		used[g.i] = true
		used[g.j] = true
	}
	flush()
	return layers
}

// runGateLayer executes one layer of independent compare-exchange gates in
// two rounds: a hidden-comparison batch and a selection/recovery batch.
func runGateLayer(ctx context.Context, c *cloud.Client, work []Item, layer []gate, col int, desc bool, magBits int) error {
	// Round 1: hidden comparison bits. For ascending order the gate keeps
	// (i, j) when key_i <= key_j; descending swaps the operands.
	as := make([]*paillier.Ciphertext, len(layer))
	bs := make([]*paillier.Ciphertext, len(layer))
	for k, g := range layer {
		if desc {
			as[k], bs[k] = work[g.j].Scores[col], work[g.i].Scores[col]
		} else {
			as[k], bs[k] = work[g.i].Scores[col], work[g.j].Scores[col]
		}
	}
	bits, err := EncCompareHiddenBatch(ctx, c, as, bs, magBits)
	if err != nil {
		return err
	}
	notBits, err := oneMinusAll(ctx, c, bits)
	if err != nil {
		return err
	}

	// Round 2: oblivious swap of every slot of both items.
	sel := newSelector(c)
	type slotRef struct {
		gate  int
		side  int // 0 = position i, 1 = position j
		isEHL bool
		idx   int
		slot  int
	}
	var refs []slotRef
	queue := func(k int, t, notT *dj.Ciphertext, a, b *paillier.Ciphertext, side int, isEHL bool, idx int) {
		refs = append(refs, slotRef{gate: k, side: side, isEHL: isEHL, idx: idx, slot: sel.add(t, notT, a, b)})
	}
	for k, g := range layer {
		I, J := work[g.i], work[g.j]
		for idx := range I.EHL.Cts {
			queue(k, bits[k], notBits[k], I.EHL.Cts[idx], J.EHL.Cts[idx], 0, true, idx)
			queue(k, bits[k], notBits[k], J.EHL.Cts[idx], I.EHL.Cts[idx], 1, true, idx)
		}
		for idx := range I.Scores {
			queue(k, bits[k], notBits[k], I.Scores[idx], J.Scores[idx], 0, false, idx)
			queue(k, bits[k], notBits[k], J.Scores[idx], I.Scores[idx], 1, false, idx)
		}
	}
	resolved, err := sel.resolve(ctx)
	if err != nil {
		return err
	}
	// Materialize the new items, then write them back.
	newItems := make(map[int]*Item)
	for _, g := range layer {
		ni := &Item{EHL: &ehl.List{Kind: work[g.i].EHL.Kind, Cts: make([]*paillier.Ciphertext, len(work[g.i].EHL.Cts))}, Scores: make([]*paillier.Ciphertext, len(work[g.i].Scores))}
		nj := &Item{EHL: &ehl.List{Kind: work[g.j].EHL.Kind, Cts: make([]*paillier.Ciphertext, len(work[g.j].EHL.Cts))}, Scores: make([]*paillier.Ciphertext, len(work[g.j].Scores))}
		newItems[g.i] = ni
		newItems[g.j] = nj
	}
	for _, r := range refs {
		g := layer[r.gate]
		pos := g.i
		if r.side == 1 {
			pos = g.j
		}
		if r.isEHL {
			newItems[pos].EHL.Cts[r.idx] = resolved[r.slot]
		} else {
			newItems[pos].Scores[r.idx] = resolved[r.slot]
		}
	}
	for pos, it := range newItems {
		work[pos] = *it
	}
	return nil
}

// EncSelectTop partially orders items so positions 0..k-1 hold the top k
// by the key column (descending when desc, which is the engine's use:
// largest worst scores first). It runs k selection passes of sequential
// compare-exchange gates — O(k*l) gates, cheaper than a full sort for the
// small k of a top-k query and the alternative the efficiency analysis of
// Section 10.3 suggests. The remaining positions hold the leftovers in
// arbitrary order.
func EncSelectTop(ctx context.Context, c *cloud.Client, items []Item, col int, desc bool, k, magBits int) ([]Item, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	cols := len(items[0].Scores)
	if col < 0 || col >= cols {
		return nil, fmt.Errorf("protocols: selection column %d out of range", col)
	}
	if k < 0 {
		return nil, errors.New("protocols: negative k")
	}
	work := make([]Item, n)
	copy(work, items)
	if k > n {
		k = n
	}
	for p := 0; p < k; p++ {
		for i := p + 1; i < n; i++ {
			// Gate (p, i): keep the winner at position p.
			if err := runGateLayer(ctx, c, work, []gate{{p, i}}, col, desc, magBits+2); err != nil {
				return nil, err
			}
		}
	}
	return work, nil
}
