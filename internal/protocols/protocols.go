// Package protocols implements the S1 side of the paper's two-party
// sub-protocols (Section 8.2 and Section 10): RecoverEnc, EncCompare,
// the encrypted-selection gadget, SecWorst, SecBest, SecDedup/SecDupElim,
// SecUpdate, EncSort / top-k selection, SecMult, and SecFilter.
//
// All functions drive the crypto cloud S2 through a cloud.Client; every
// value S2 sees is blinded and/or permuted first.
package protocols

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/cloud"
	"repro/internal/dj"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/zmath"
)

// Score column conventions for Item.Scores used by the query engine.
const (
	// ColWorst is the accumulated worst (lower-bound) score W.
	ColWorst = 0
	// ColBest is the best (upper-bound) score B.
	ColBest = 1
)

// Item is an encrypted scored item E(I) = (EHL(o), Enc(W), Enc(B), ...):
// an encrypted object id plus one or more encrypted score columns.
type Item struct {
	EHL    *ehl.List
	Scores []*paillier.Ciphertext
}

// Clone deep-copies the item.
func (it Item) Clone() Item {
	out := Item{EHL: it.EHL.Clone(), Scores: make([]*paillier.Ciphertext, len(it.Scores))}
	for i, s := range it.Scores {
		out.Scores[i] = s.Clone()
	}
	return out
}

// Validate checks the item's shape.
func (it Item) Validate(cols int) error {
	if it.EHL == nil || len(it.EHL.Cts) == 0 {
		return errors.New("protocols: item missing EHL")
	}
	if len(it.Scores) != cols {
		return fmt.Errorf("protocols: item has %d score columns, want %d", len(it.Scores), cols)
	}
	for i, s := range it.Scores {
		if s == nil || s.C == nil {
			return fmt.Errorf("protocols: item score column %d is nil", i)
		}
	}
	return nil
}

// RecoverEnc strips the outer DJ layer from each double encryption
// E2(Enc(c)) with additive blinding (Algorithm 5), batched into a single
// round: S1 blinds with Enc(r_i), S2 removes the outer layer, S1 divides
// the blind back out. Blinding and unblinding fan out over the client's
// worker budget.
func RecoverEnc(ctx context.Context, c *cloud.Client, cts []*dj.Ciphertext) ([]*paillier.Ciphertext, error) {
	if len(cts) == 0 {
		return nil, nil
	}
	pk := c.PK()
	djPK := c.DJPK()
	blinded := make([]*dj.Ciphertext, len(cts))
	blinds := make([]*paillier.Ciphertext, len(cts))
	err := parallel.ForEachCtx(ctx, c.Parallelism(), len(cts), func(i int) error {
		r, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return err
		}
		encR, err := c.Enc().Encrypt(r)
		if err != nil {
			return err
		}
		blinds[i] = encR
		b, err := djPK.ExpCipher(cts[i], encR)
		if err != nil {
			return fmt.Errorf("protocols: RecoverEnc blind %d: %w", i, err)
		}
		blinded[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	recovered, err := c.Recover(ctx, blinded)
	if err != nil {
		return nil, err
	}
	// The reply is exactly Enc(c_i) * Enc(r_i) as a group element;
	// dividing by the same Enc(r_i) restores Enc(c_i). All the inverses
	// come from one Montgomery batch inversion (1 inversion + 3 mults per
	// ciphertext instead of an extended-GCD each).
	blindVals := make([]*big.Int, len(blinds))
	for i, b := range blinds {
		blindVals[i] = b.C
	}
	var invs []*big.Int
	if eng := pk.EngineN2(); eng != nil {
		invs, err = zmath.BatchModInverseMod(blindVals, eng)
	} else {
		invs, err = zmath.BatchModInverse(blindVals, pk.N2)
	}
	if err != nil {
		return nil, fmt.Errorf("protocols: RecoverEnc unblind: %w", err)
	}
	return parallel.MapErrCtx(ctx, c.Parallelism(), recovered, func(i int, rec *paillier.Ciphertext) (*paillier.Ciphertext, error) {
		if eng := pk.EngineN2(); eng != nil {
			return &paillier.Ciphertext{C: eng.MulMod(rec.C, invs[i])}, nil
		}
		v := new(big.Int).Mul(rec.C, invs[i])
		v.Mod(v, pk.N2)
		return &paillier.Ciphertext{C: v}, nil
	})
}

// selector accumulates encrypted-selection jobs so a whole batch resolves
// with one RecoverEnc round. Each job is the paper's gadget
//
//	E2(t)^{Enc(a)} * (E2(1)E2(t)^{-1})^{Enc(b)} = E2(Enc(t*a + (1-t)*b))
//
// which picks Enc(a) when t = 1 and Enc(b) when t = 0.
//
// add and addRaw only queue; the layered exponentiations — the dominant
// S1-side cost, since the exponent is a full first-layer ciphertext — are
// deferred to resolve, which builds every queued term in parallel before
// the single recovery round.
type selector struct {
	client *cloud.Client
	jobs   []selJob
}

// selJob is one queued selection. raw short-circuits term construction for
// callers that assembled the outer-layer ciphertext themselves.
type selJob struct {
	raw     *dj.Ciphertext
	t, notT *dj.Ciphertext
	a, b    *paillier.Ciphertext
}

func newSelector(c *cloud.Client) *selector { return &selector{client: c} }

// addRaw queues an already-built E2(Enc(x)) for recovery and returns its
// slot index.
func (s *selector) addRaw(ct *dj.Ciphertext) int {
	s.jobs = append(s.jobs, selJob{raw: ct})
	return len(s.jobs) - 1
}

// add queues select(t, a, b) and returns its slot index. notT must be
// E2(1-t) (callers typically reuse it across selects on the same bit).
// Queueing cannot fail; construction errors surface from resolve.
func (s *selector) add(t, notT *dj.Ciphertext, a, b *paillier.Ciphertext) int {
	s.jobs = append(s.jobs, selJob{t: t, notT: notT, a: a, b: b})
	return len(s.jobs) - 1
}

// resolve builds every queued selection term in parallel and executes the
// batched RecoverEnc round.
func (s *selector) resolve(ctx context.Context) ([]*paillier.Ciphertext, error) {
	djPK := s.client.DJPK()
	terms, err := parallel.MapErrCtx(ctx, s.client.Parallelism(), s.jobs, func(_ int, j selJob) (*dj.Ciphertext, error) {
		if j.raw != nil {
			return j.raw, nil
		}
		termA, err := djPK.ExpCipher(j.t, j.a)
		if err != nil {
			return nil, err
		}
		termB, err := djPK.ExpCipher(j.notT, j.b)
		if err != nil {
			return nil, err
		}
		return djPK.Add(termA, termB)
	})
	if err != nil {
		return nil, err
	}
	return RecoverEnc(ctx, s.client, terms)
}

// oneMinusAll computes E2(1-t) for a batch of hidden bits, drawing the
// E2(1) encryptions from the client's DJ nonce pool.
func oneMinusAll(ctx context.Context, c *cloud.Client, bits []*dj.Ciphertext) ([]*dj.Ciphertext, error) {
	return parallel.MapErrCtx(ctx, c.Parallelism(), bits, func(_ int, b *dj.Ciphertext) (*dj.Ciphertext, error) {
		return dj.OneMinusEnc(c.DJEnc(), b)
	})
}

// SecMult computes Enc(a_i * b_i) for each pair using the standard
// additively blinded two-party multiplication: S1 sends Enc(a+r_a),
// Enc(b+r_b); S2 returns Enc((a+r_a)(b+r_b)); S1 strips the cross terms
// homomorphically. One round for the whole batch.
func SecMult(ctx context.Context, c *cloud.Client, as, bs []*paillier.Ciphertext) ([]*paillier.Ciphertext, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("protocols: SecMult length mismatch %d vs %d", len(as), len(bs))
	}
	if len(as) == 0 {
		return nil, nil
	}
	pk := c.PK()
	blindedA := make([]*paillier.Ciphertext, len(as))
	blindedB := make([]*paillier.Ciphertext, len(as))
	ras := make([]*big.Int, len(as))
	rbs := make([]*big.Int, len(as))
	err := parallel.ForEachCtx(ctx, c.Parallelism(), len(as), func(i int) error {
		ra, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return err
		}
		rb, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return err
		}
		ras[i], rbs[i] = ra, rb
		if blindedA[i], err = pk.AddPlain(as[i], ra); err != nil {
			return err
		}
		// Re-randomize so S2 cannot link the blinded operands to
		// ciphertexts it may have produced earlier.
		if blindedA[i], err = c.Enc().Rerandomize(blindedA[i]); err != nil {
			return err
		}
		if blindedB[i], err = pk.AddPlain(bs[i], rb); err != nil {
			return err
		}
		if blindedB[i], err = c.Enc().Rerandomize(blindedB[i]); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	prods, err := c.MultBlinded(ctx, blindedA, blindedB)
	if err != nil {
		return nil, err
	}
	out := make([]*paillier.Ciphertext, len(as))
	err = parallel.ForEachCtx(ctx, c.Parallelism(), len(as), func(i int) error {
		// ab = (a+ra)(b+rb) - ra*b - rb*a - ra*rb
		t1, err := pk.MulConst(bs[i], new(big.Int).Neg(ras[i]))
		if err != nil {
			return err
		}
		t2, err := pk.MulConst(as[i], new(big.Int).Neg(rbs[i]))
		if err != nil {
			return err
		}
		rr := new(big.Int).Mul(ras[i], rbs[i])
		acc, err := pk.Add(prods[i], t1)
		if err != nil {
			return err
		}
		if acc, err = pk.Add(acc, t2); err != nil {
			return err
		}
		if acc, err = pk.AddPlain(acc, new(big.Int).Neg(rr)); err != nil {
			return err
		}
		out[i] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
