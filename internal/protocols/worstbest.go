package protocols

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/dj"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/prf"
	"repro/internal/zmath"
)

// DepthItem is one encrypted data item E(I) = (EHL(o), Enc(x)) read from a
// sorted list at the current depth (Section 6's item layout).
type DepthItem struct {
	EHL   *ehl.List
	Score *paillier.Ciphertext
}

// ListHistory is the prefix of a permuted sorted list seen so far: the
// items at depths 0..d. The last entry's score is the list's current
// bottom value (the best any unseen object can still achieve there).
type ListHistory struct {
	EHLs   []*ehl.List
	Scores []*paillier.Ciphertext
}

func validateDepthItems(items []DepthItem) error {
	if len(items) == 0 {
		return errors.New("protocols: no depth items")
	}
	for i, it := range items {
		if it.EHL == nil || it.Score == nil {
			return fmt.Errorf("protocols: depth item %d incomplete", i)
		}
	}
	return nil
}

// SecWorstAll is the SecWorst protocol (Algorithm 4) run for every item at
// the current depth at once. The worst (lower-bound) contribution of this
// depth for item i is its own score plus the scores of every other
// same-depth item that carries the same object id:
//
//	W_i = x_i + sum_{j != i} t_ij * x_j,   t_ij = [o_i = o_j]
//
// The equality bits are obtained through one permuted EqBits round and the
// selections resolve with one batched RecoverEnc round; S2's view is the
// permuted equality pattern of the depth (leakage EP^d).
func SecWorstAll(ctx context.Context, c *cloud.Client, items []DepthItem) ([]*paillier.Ciphertext, error) {
	if err := validateDepthItems(items); err != nil {
		return nil, err
	}
	pk := c.PK()
	m := len(items)
	if m == 1 {
		return []*paillier.Ciphertext{items[0].Score.Clone()}, nil
	}

	// Upper-triangle pair set; the randomized equality ciphertexts are
	// independent, so they build in parallel.
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	eqCts, err := parallel.MapErrCtx(ctx, c.Parallelism(), pairs, func(_ int, p pair) (*paillier.Ciphertext, error) {
		ct, err := ehl.SubEnc(c.Enc(), items[p.i].EHL, items[p.j].EHL)
		if err != nil {
			return nil, fmt.Errorf("protocols: SecWorst eq(%d,%d): %w", p.i, p.j, err)
		}
		return ct, nil
	})
	if err != nil {
		return nil, err
	}
	// Random permutation before shipping to S2, per Algorithm 4 line 2.
	perm, err := prf.RandomPerm(len(pairs))
	if err != nil {
		return nil, err
	}
	permuted := make([]*paillier.Ciphertext, len(eqCts))
	for i := range eqCts {
		permuted[perm[i]] = eqCts[i]
	}
	bitsPermuted, err := c.EqBits(ctx, permuted)
	if err != nil {
		return nil, err
	}
	bits := make([]*dj.Ciphertext, len(pairs))
	for i := range pairs {
		bits[i] = bitsPermuted[perm[i]]
	}
	notBits, err := oneMinusAll(ctx, c, bits)
	if err != nil {
		return nil, err
	}

	// Queue t*x_j + (1-t)*0 for the (i<-j) direction and t*x_i + (1-t)*0
	// for (j<-i); one recover round resolves everything.
	zero, err := c.Enc().EncryptZero()
	if err != nil {
		return nil, err
	}
	sel := newSelector(c)
	type slotRef struct {
		item int
		slot int
	}
	var refs []slotRef
	for k, p := range pairs {
		refs = append(refs,
			slotRef{item: p.i, slot: sel.add(bits[k], notBits[k], items[p.j].Score, zero)},
			slotRef{item: p.j, slot: sel.add(bits[k], notBits[k], items[p.i].Score, zero)})
	}
	resolved, err := sel.resolve(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]*paillier.Ciphertext, m)
	for i := range out {
		out[i] = items[i].Score.Clone()
	}
	for _, r := range refs {
		sum, err := pk.Add(out[r.item], resolved[r.slot])
		if err != nil {
			return nil, err
		}
		out[r.item] = sum
	}
	return out, nil
}

// SecBestAll is the SecBest protocol (Algorithm 6) run for every item at
// the current depth at once. For the item of list i, the best
// (upper-bound) score is its own value plus, for every other queried list
// j, either the object's actual score in L_j if it already appeared there,
// or L_j's current bottom value:
//
//	B_i = x_i + sum_{j != i} [ sum_e t_e * x_j^e + (1 - sum_e t_e) * bottom_j ]
//
// histories[j] must contain list j's seen prefix including the current
// depth; item i must be the current-depth item of histories[i]. Two rounds
// total: one permuted EqBits batch and one RecoverEnc batch.
func SecBestAll(ctx context.Context, c *cloud.Client, items []DepthItem, histories []ListHistory) ([]*paillier.Ciphertext, error) {
	if err := validateDepthItems(items); err != nil {
		return nil, err
	}
	if len(histories) != len(items) {
		return nil, fmt.Errorf("protocols: %d histories for %d items", len(histories), len(items))
	}
	for j, h := range histories {
		if len(h.EHLs) == 0 || len(h.EHLs) != len(h.Scores) {
			return nil, fmt.Errorf("protocols: history %d malformed", j)
		}
	}
	pk := c.PK()
	djPK := c.DJPK()
	m := len(items)
	if m == 1 {
		return []*paillier.Ciphertext{items[0].Score.Clone()}, nil
	}

	// Equality ciphertexts for every (item i, other list j, depth e),
	// built in parallel — this is the largest S1-side batch of the
	// per-depth pipeline (m*(m-1)*depth randomized equality operators).
	type ref struct{ i, j, e int }
	var refs []ref
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			for e := range histories[j].EHLs {
				refs = append(refs, ref{i, j, e})
			}
		}
	}
	eqCts, err := parallel.MapErrCtx(ctx, c.Parallelism(), refs, func(_ int, r ref) (*paillier.Ciphertext, error) {
		ct, err := ehl.SubEnc(c.Enc(), items[r.i].EHL, histories[r.j].EHLs[r.e])
		if err != nil {
			return nil, fmt.Errorf("protocols: SecBest eq(%d,%d,%d): %w", r.i, r.j, r.e, err)
		}
		return ct, nil
	})
	if err != nil {
		return nil, err
	}
	perm, err := prf.RandomPerm(len(eqCts))
	if err != nil {
		return nil, err
	}
	permuted := make([]*paillier.Ciphertext, len(eqCts))
	for i := range eqCts {
		permuted[perm[i]] = eqCts[i]
	}
	bitsPermuted, err := c.EqBits(ctx, permuted)
	if err != nil {
		return nil, err
	}
	bits := make([]*dj.Ciphertext, len(refs))
	for i := range refs {
		bits[i] = bitsPermuted[perm[i]]
	}

	// For each (i, j): term = sum_e t_e*Enc(x_j^e) + (1 - sum_e t_e)*Enc(bottom_j),
	// assembled under the outer layer and recovered in one batch. The
	// (i, j) groups are independent, so their exponentiation chains — the
	// dominant S1-side cost here — build in parallel.
	one, err := c.DJEnc().Encrypt(zmath.One)
	if err != nil {
		return nil, err
	}
	// Group the refs per (i, j), in deterministic (i, j) order.
	type key struct{ i, j int }
	grouped := make(map[key][]int)
	for idx, r := range refs {
		grouped[key{r.i, r.j}] = append(grouped[key{r.i, r.j}], idx)
	}
	var keys []key
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if j != i {
				keys = append(keys, key{i, j})
			}
		}
	}
	terms := make([]*dj.Ciphertext, len(keys))
	err = parallel.ForEachCtx(ctx, c.Parallelism(), len(keys), func(g int) error {
		j := keys[g].j
		idxs := grouped[keys[g]]
		bottom := histories[j].Scores[len(histories[j].Scores)-1]
		// T = sum_e t_e as a DJ ciphertext; term accumulates
		// sum_e t_e * Enc(x_j^e) under the outer layer.
		tSum := (*dj.Ciphertext)(nil)
		var term *dj.Ciphertext
		for _, idx := range idxs {
			e := refs[idx].e
			contrib, err := djPK.ExpCipher(bits[idx], histories[j].Scores[e])
			if err != nil {
				return err
			}
			if term == nil {
				term = contrib
				tSum = bits[idx]
			} else {
				if term, err = djPK.Add(term, contrib); err != nil {
					return err
				}
				if tSum, err = djPK.Add(tSum, bits[idx]); err != nil {
					return err
				}
			}
		}
		// (1 - T) * Enc(bottom_j)
		notT, err := djPK.Sub(one, tSum)
		if err != nil {
			return err
		}
		bottomTerm, err := djPK.ExpCipher(notT, bottom)
		if err != nil {
			return err
		}
		if term, err = djPK.Add(term, bottomTerm); err != nil {
			return err
		}
		terms[g] = term
		return nil
	})
	if err != nil {
		return nil, err
	}
	sel := newSelector(c)
	type slotRef struct {
		item int
		slot int
	}
	var slots []slotRef
	for g, k := range keys {
		slots = append(slots, slotRef{item: k.i, slot: sel.addRaw(terms[g])})
	}
	resolved, err := sel.resolve(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]*paillier.Ciphertext, m)
	for i := range out {
		out[i] = items[i].Score.Clone()
	}
	for _, s := range slots {
		sum, err := pk.Add(out[s.item], resolved[s.slot])
		if err != nil {
			return nil, err
		}
		out[s.item] = sum
	}
	return out, nil
}
