package protocols

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"

	"repro/internal/cloud"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/prf"
	"repro/internal/zmath"
)

// JoinTuple is one candidate joined tuple produced by SecJoin: an
// encrypted join score Enc(s) (zero iff the equi-join condition failed)
// plus the encrypted attributes of the combined tuple.
type JoinTuple struct {
	Score *paillier.Ciphertext
	Attrs []*paillier.Ciphertext
}

// Clone deep-copies the tuple.
func (t JoinTuple) Clone() JoinTuple {
	out := JoinTuple{Score: t.Score.Clone(), Attrs: make([]*paillier.Ciphertext, len(t.Attrs))}
	for i, a := range t.Attrs {
		out.Attrs[i] = a.Clone()
	}
	return out
}

// SecFilter removes the candidate tuples that did not satisfy the join
// condition (Algorithm 12): S1 blinds the join score multiplicatively
// (zero stays zero, nonzero becomes uniform) and the attributes
// additively, ships the blind bookkeeping under its ephemeral key,
// permutes, and lets S2 drop the zero rows, re-blind, and re-permute. S1
// then removes the combined blinds. Both parties learn only the number of
// surviving tuples.
//
// Join scores must be nonzero for genuinely joined tuples, which holds for
// the paper's positive attribute domains.
func SecFilter(ctx context.Context, c *cloud.Client, tuples []JoinTuple) ([]JoinTuple, error) {
	if len(tuples) == 0 {
		return nil, nil
	}
	pk := c.PK()
	eph := c.Ephemeral()
	nAttrs := len(tuples[0].Attrs)
	rows := make([]cloud.WireRow, len(tuples))
	perm, err := prf.RandomPerm(len(tuples))
	if err != nil {
		return nil, err
	}
	for i, t := range tuples {
		if t.Score == nil || len(t.Attrs) != nAttrs {
			return nil, fmt.Errorf("protocols: SecFilter tuple %d malformed", i)
		}
	}
	// Sample every multiplicative blind up front and invert them in one
	// Montgomery batch inversion instead of an extended GCD per tuple.
	rs := make([]*big.Int, len(tuples))
	for i := range rs {
		r, err := zmath.RandUnit(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}
	rInvs, err := zmath.BatchModInverse(rs, pk.N)
	if err != nil {
		return nil, fmt.Errorf("protocols: SecFilter blinds: %w", err)
	}
	err = parallel.ForEachCtx(ctx, c.Parallelism(), len(tuples), func(i int) error {
		t := tuples[i]
		r, rInv := rs[i], rInvs[i]
		blindedScore, err := pk.MulConst(t.Score, r)
		if err != nil {
			return err
		}
		if blindedScore, err = c.Enc().Rerandomize(blindedScore); err != nil {
			return err
		}
		row := cloud.WireRow{Scores: []*big.Int{blindedScore.C}}
		invCt, err := c.EphEnc().Encrypt(rInv)
		if err != nil {
			return err
		}
		row.Blinds = []*big.Int{invCt.C}
		for _, attr := range t.Attrs {
			delta, err := zmath.RandInt(rand.Reader, pk.N)
			if err != nil {
				return err
			}
			blinded, err := pk.AddPlain(attr, delta)
			if err != nil {
				return err
			}
			row.Scores = append(row.Scores, blinded.C)
			dCt, err := c.EphEnc().Encrypt(delta)
			if err != nil {
				return err
			}
			row.Blinds = append(row.Blinds, dCt.C)
		}
		rows[perm[i]] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	resp, err := c.FilterRound(ctx, &cloud.FilterRequest{Rows: rows})
	if err != nil {
		return nil, err
	}
	c.Ledger().Record("S1", cloud.MethodFilter, "join cardinality: %d of %d tuples", len(resp.Rows), len(tuples))

	out := make([]JoinTuple, len(resp.Rows))
	err = parallel.ForEachCtx(ctx, c.Parallelism(), len(resp.Rows), func(i int) error {
		row := resp.Rows[i]
		if len(row.Scores) != nAttrs+1 || len(row.Blinds) != nAttrs+1 {
			return fmt.Errorf("protocols: SecFilter reply row %d malformed", i)
		}
		// Unblind the score: the returned blind is the integer product
		// r^{-1} * gamma^{-1} (below the ephemeral modulus by
		// construction); reduce mod N and exponentiate.
		invRaw, err := eph.Decrypt(&paillier.Ciphertext{C: row.Blinds[0]})
		if err != nil {
			return err
		}
		invRaw.Mod(invRaw, pk.N)
		score, err := pk.MulConst(&paillier.Ciphertext{C: row.Scores[0]}, invRaw)
		if err != nil {
			return err
		}
		tuple := JoinTuple{Score: score}
		for j := 0; j < nAttrs; j++ {
			blind, err := eph.Decrypt(&paillier.Ciphertext{C: row.Blinds[j+1]})
			if err != nil {
				return err
			}
			blind.Mod(blind, pk.N)
			attr, err := pk.AddPlain(&paillier.Ciphertext{C: row.Scores[j+1]}, new(big.Int).Neg(blind))
			if err != nil {
				return err
			}
			tuple.Attrs = append(tuple.Attrs, attr)
		}
		out[i] = tuple
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
