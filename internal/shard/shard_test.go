package shard

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/nra"
	"repro/internal/transport"
)

type testRig struct {
	scheme *core.Scheme
	server *cloud.Server
	client *cloud.Client
	s1led  *cloud.Ledger
}

var (
	rigOnce sync.Once
	rig     *testRig
)

func getRig(t testing.TB) *testRig {
	t.Helper()
	rigOnce.Do(func() {
		params := core.Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20}
		scheme, err := core.NewScheme(params)
		if err != nil {
			t.Fatalf("NewScheme: %v", err)
		}
		server, err := cloud.NewServer(scheme.KeyMaterial(), nil)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		s1led := cloud.NewLedger()
		client, err := cloud.NewClient(transport.NewLocal(server, nil), scheme.PublicKey(), s1led)
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		rig = &testRig{scheme: scheme, server: server, client: client, s1led: s1led}
	})
	return rig
}

// correlated builds a perfectly rank-correlated relation with distinct
// per-list and aggregate scores: every list orders the objects the same
// way, so every tracked bound is exact at every depth — the regime where
// sharded and unsharded scans are provably answer- and score-identical.
func correlated(n int) *dataset.Relation {
	rel := &dataset.Relation{Name: "corr"}
	for i := 0; i < n; i++ {
		rel.Rows = append(rel.Rows, []int64{int64(3*n - 3*i), int64(2*n - 2*i + 1), int64(n - i + 2)})
	}
	return rel
}

// antiCorrelated builds lists with opposing orders, the adversarial case
// for relaxed halting and for merge bounds. Columns 0 and 1 sum to a
// constant, so the quadratic-residue third column decides the ranking
// (and keeps every aggregate distinct for n <= 12: i² mod 23 is
// injective there).
func antiCorrelated(n int) *dataset.Relation {
	rel := &dataset.Relation{Name: "anti"}
	for i := 0; i < n; i++ {
		rel.Rows = append(rel.Rows, []int64{int64(4 * i), int64(4 * (n - 1 - i)), int64(i * i % 23)})
	}
	return rel
}

func reveal(t *testing.T, r *testRig, n int, res *core.QueryResult) []core.RevealedResult {
	t.Helper()
	rev, err := r.scheme.NewRevealer(n)
	if err != nil {
		t.Fatalf("NewRevealer: %v", err)
	}
	out, err := rev.RevealTopK(res.Items)
	if err != nil {
		t.Fatalf("RevealTopK: %v", err)
	}
	return out
}

func TestSplit(t *testing.T) {
	rel := correlated(10)
	subs, ids, err := Split(rel, 3)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d shards", len(subs))
	}
	seen := map[int]bool{}
	total := 0
	for s, sub := range subs {
		if len(ids[s]) != sub.N() {
			t.Fatalf("shard %d: %d ids for %d rows", s, len(ids[s]), sub.N())
		}
		for r, id := range ids[s] {
			if id%3 != s {
				t.Errorf("shard %d row %d has global id %d (want id %% 3 == %d)", s, r, id, s)
			}
			if seen[id] {
				t.Errorf("global id %d appears twice", id)
			}
			seen[id] = true
			for c := range rel.Rows[id] {
				if sub.Rows[r][c] != rel.Rows[id][c] {
					t.Errorf("shard %d row %d column %d: %d != global %d", s, r, c, sub.Rows[r][c], rel.Rows[id][c])
				}
			}
		}
		total += sub.N()
	}
	if total != 10 {
		t.Fatalf("shards cover %d rows, want 10", total)
	}
	if _, _, err := Split(rel, 11); err == nil {
		t.Fatal("Split accepted p > n")
	}
	if _, _, err := Split(rel, 0); err == nil {
		t.Fatal("Split accepted p = 0")
	}
}

// TestShardedEquivalence pins the tentpole contract: for every query
// mode and P in {1, 2, 4}, the sharded engine's revealed top-k is
// identical — same objects, same scores, same order — to the unsharded
// spec path over the same keys (and to the plaintext ground truth). The
// fixed-rank-correlated relation keeps every bound exact, the regime the
// merge argument guarantees score-identity in; ties are absent so the
// ordering is fully determined.
func TestShardedEquivalence(t *testing.T) {
	r := getRig(t)
	const n, k = 12, 3
	rel := correlated(n)
	attrs := []int{0, 1, 2}

	truth, err := nra.TopKExact(rel, attrs, nil, k)
	if err != nil {
		t.Fatalf("TopKExact: %v", err)
	}
	er, err := r.scheme.EncryptRelation(rel)
	if err != nil {
		t.Fatalf("EncryptRelation: %v", err)
	}
	tk, err := r.scheme.TokenFor(n, rel.M(), attrs, nil, k)
	if err != nil {
		t.Fatalf("TokenFor: %v", err)
	}

	modes := []core.Mode{core.QryF, core.QryE, core.QryBa}
	if testing.Short() {
		modes = []core.Mode{core.QryE, core.QryBa}
	}
	for _, mode := range modes {
		opts := core.Options{Mode: mode, Halt: core.HaltStrict}
		baseEngine, err := core.NewEngine(r.client, er)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		baseRes, err := baseEngine.SecQuery(context.Background(), tk, opts)
		if err != nil {
			t.Fatalf("%v unsharded SecQuery: %v", mode, err)
		}
		base := reveal(t, r, n, baseRes)
		for i, res := range base {
			if res.Obj != truth[i].Obj || res.Worst != truth[i].Worst {
				t.Fatalf("%v unsharded rank %d: got %+v, ground truth %+v", mode, i, res, truth[i])
			}
		}

		for _, p := range []int{1, 2, 4} {
			sh, err := Encrypt(r.scheme, rel, p)
			if err != nil {
				t.Fatalf("shard.Encrypt(p=%d): %v", p, err)
			}
			eng, err := NewEngine(r.client, sh)
			if err != nil {
				t.Fatalf("NewEngine(p=%d): %v", p, err)
			}
			res, err := eng.SecQuery(context.Background(), tk, opts)
			if err != nil {
				t.Fatalf("%v sharded(p=%d) SecQuery: %v", mode, p, err)
			}
			got := reveal(t, r, n, res)
			if len(got) != len(base) {
				t.Fatalf("%v p=%d: %d results, unsharded %d", mode, p, len(got), len(base))
			}
			for i := range got {
				if got[i] != base[i] {
					t.Errorf("%v p=%d rank %d: sharded %+v != unsharded %+v", mode, p, i, got[i], base[i])
				}
			}
		}
	}
}

// TestShardedAdversarialOrdering runs the sharded engine over
// anti-correlated lists — the case where per-shard scans halt with
// partial scores and the NRA merge-bound check earns its keep (falling
// back to the exact rescan when it cannot certify the merge). The final
// answer must match the plaintext ground truth exactly.
func TestShardedAdversarialOrdering(t *testing.T) {
	r := getRig(t)
	const n, k = 12, 3
	rel := antiCorrelated(n)
	attrs := []int{0, 1, 2}
	truth, err := nra.TopKExact(rel, attrs, nil, k)
	if err != nil {
		t.Fatalf("TopKExact: %v", err)
	}
	tk, err := r.scheme.TokenFor(n, rel.M(), attrs, nil, k)
	if err != nil {
		t.Fatalf("TokenFor: %v", err)
	}
	sh, err := Encrypt(r.scheme, rel, 3)
	if err != nil {
		t.Fatalf("shard.Encrypt: %v", err)
	}
	eng, err := NewEngine(r.client, sh)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Paper halting per shard is the adversarial regime: a shard can halt
	// with undominated bounds, which the merge check must then catch.
	res, err := eng.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltPaper})
	if err != nil {
		t.Fatalf("SecQuery: %v", err)
	}
	got := reveal(t, r, n, res)
	if len(got) != k {
		t.Fatalf("got %d results, want %d", len(got), k)
	}
	gotSet := map[int]bool{}
	for _, g := range got {
		gotSet[g.Obj] = true
	}
	for _, tr := range truth {
		if !gotSet[tr.Obj] {
			t.Errorf("ground-truth object %d missing from sharded result %+v", tr.Obj, got)
		}
	}
	for _, ev := range r.s1led.Events() {
		if ev.Party == "S1" && ev.Method == "ShardMerge" {
			t.Logf("merge fallback exercised: %s", ev.String())
		}
	}
}

// TestShardedMergeBoundFallback forces the NRA merge-bound check to fail
// deterministically: depth-capped shard scans leave an unseen-object
// residual no merged W_k can dominate, so the engine must fall back to
// the exact rescan — and then return the exact global top-k, scores and
// all, despite the hopeless initial cap.
func TestShardedMergeBoundFallback(t *testing.T) {
	r := getRig(t)
	const n, k = 12, 3
	rel := antiCorrelated(n)
	attrs := []int{0, 1, 2}
	truth, err := nra.TopKExact(rel, attrs, nil, k)
	if err != nil {
		t.Fatalf("TopKExact: %v", err)
	}
	tk, err := r.scheme.TokenFor(n, rel.M(), attrs, nil, k)
	if err != nil {
		t.Fatalf("TokenFor: %v", err)
	}
	sh, err := Encrypt(r.scheme, rel, 2)
	if err != nil {
		t.Fatalf("shard.Encrypt: %v", err)
	}
	eng, err := NewEngine(r.client, sh)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	before := len(r.s1led.Events())
	res, err := eng.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltStrict, MaxDepth: 2})
	if err != nil {
		t.Fatalf("SecQuery: %v", err)
	}
	fellBack := false
	for _, ev := range r.s1led.Events()[before:] {
		if ev.Party == "S1" && ev.Method == "ShardMerge" {
			fellBack = true
		}
	}
	if !fellBack {
		t.Fatal("depth-capped shard merge was certified without the exact-rescan fallback")
	}
	got := reveal(t, r, n, res)
	for i, g := range got {
		if g.Obj != truth[i].Obj || g.Worst != truth[i].Worst {
			t.Errorf("rank %d: got %+v, ground truth %+v", i, g, truth[i])
		}
	}
}

// TestShardedExactScanFallback pins the fallback path directly: an
// ExactScan over every shard merges to the exact global top-k with exact
// aggregate scores.
func TestShardedExactScanFallback(t *testing.T) {
	r := getRig(t)
	const n, k = 10, 3
	rel := antiCorrelated(n)
	attrs := []int{0, 1, 2}
	truth, err := nra.TopKExact(rel, attrs, nil, k)
	if err != nil {
		t.Fatalf("TopKExact: %v", err)
	}
	tk, err := r.scheme.TokenFor(n, rel.M(), attrs, nil, k)
	if err != nil {
		t.Fatalf("TokenFor: %v", err)
	}
	sh, err := Encrypt(r.scheme, rel, 2)
	if err != nil {
		t.Fatalf("shard.Encrypt: %v", err)
	}
	eng, err := NewEngine(r.client, sh)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltStrict, ExactScan: true})
	if err != nil {
		t.Fatalf("SecQuery(ExactScan): %v", err)
	}
	if !res.Halted {
		t.Fatalf("exact full scan not marked halted")
	}
	got := reveal(t, r, n, res)
	for i, g := range got {
		if g.Obj != truth[i].Obj || g.Worst != truth[i].Worst {
			t.Errorf("rank %d: got %+v, ground truth %+v", i, g, truth[i])
		}
	}
}

func TestShardedValidateToken(t *testing.T) {
	r := getRig(t)
	rel := correlated(8)
	sh, err := Encrypt(r.scheme, rel, 2)
	if err != nil {
		t.Fatalf("shard.Encrypt: %v", err)
	}
	eng, err := NewEngine(r.client, sh)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// k validated against the global n (8), not a shard's 4.
	tk, err := r.scheme.TokenFor(8, rel.M(), []int{0, 1}, nil, 6)
	if err != nil {
		t.Fatalf("TokenFor: %v", err)
	}
	if err := eng.ValidateToken(tk); err != nil {
		t.Fatalf("ValidateToken(k=6 over n=8): %v", err)
	}
	if err := eng.ValidateToken(&core.Token{K: 9, Lists: []int{0}}); err == nil {
		t.Error("accepted k > n")
	}
	if err := eng.ValidateToken(&core.Token{K: 1, Lists: []int{7}}); err == nil {
		t.Error("accepted out-of-range list position")
	}
	if err := eng.ValidateToken(nil); err == nil {
		t.Error("accepted nil token")
	}
}

// TestShardedOversizedK covers k larger than a shard: every shard
// returns its full candidate list and the merge still assembles the
// exact global top-k.
func TestShardedOversizedK(t *testing.T) {
	r := getRig(t)
	const n, k = 9, 5
	rel := correlated(n)
	attrs := []int{0, 1, 2}
	truth, err := nra.TopKExact(rel, attrs, nil, k)
	if err != nil {
		t.Fatalf("TopKExact: %v", err)
	}
	tk, err := r.scheme.TokenFor(n, rel.M(), attrs, nil, k)
	if err != nil {
		t.Fatalf("TokenFor: %v", err)
	}
	sh, err := Encrypt(r.scheme, rel, 3) // shards of 3 rows, k = 5 > 3
	if err != nil {
		t.Fatalf("shard.Encrypt: %v", err)
	}
	eng, err := NewEngine(r.client, sh)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltStrict})
	if err != nil {
		t.Fatalf("SecQuery: %v", err)
	}
	got := reveal(t, r, n, res)
	if len(got) != k {
		t.Fatalf("got %d results, want %d", len(got), k)
	}
	for i, g := range got {
		if g.Obj != truth[i].Obj || g.Worst != truth[i].Worst {
			t.Errorf("rank %d: got %+v, ground truth %+v", i, g, truth[i])
		}
	}
}
