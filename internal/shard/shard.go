// Package shard partitions one logical relation into P independently
// encrypted shards and merges their encrypted per-shard top-k candidates
// back into the global top-k.
//
// Partitioning is round-robin over rows at Enc time (Split); every shard
// is a complete EncryptedRelation over its row subset, encrypted under
// the owner's shared keys with *global* object ids, so the crypto cloud
// serves all shards of a relation from one key registration and one
// Revealer resolves any shard's output. At query time an Engine runs the
// same token over every shard concurrently — on a multiplexed transport
// the per-shard protocol rounds genuinely overlap — and merges the
// P·k candidates with the existing EncSelectTop selection.
//
// Soundness of the merge is NRA-style. Every object belongs to exactly
// one shard, and the global top-k objects are each within their own
// shard's top-k (at most k-1 objects in the whole relation beat them),
// so the candidate union always contains the answer set. The merged
// k-th worst score W_k is the k-th order statistic of a superset of each
// shard's top-k, hence W_k >= every shard's own k-th worst — the bounds
// each shard's halting already dominated stay dominated. The engine
// still verifies the full NRA condition explicitly: every non-selected
// candidate's upper bound B and every shard residual bound (tracked
// non-top-k bounds plus the unseen-object bound) must be <= W_k, in one
// EncCompareBatch round. If any bound survives — possible only when a
// shard halted under the paper's relaxed condition or was depth-capped —
// the engine falls back to an exact rescan (ExactScan over every shard),
// after which all bounds equal the exact aggregates and the check is
// guaranteed to pass. See DESIGN.md's errata note "Shard merge bound".
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/paillier"
	"repro/internal/protocols"
	"repro/internal/secerr"
	"repro/internal/telemetry"
)

// Split partitions a plaintext relation round-robin into p sub-relations
// and returns, for each, the global row ids backing its rows (shard s
// holds global rows s, s+p, s+2p, ...). p must be in [1, n].
func Split(rel *dataset.Relation, p int) ([]*dataset.Relation, [][]int, error) {
	if rel == nil {
		return nil, nil, errors.New("shard: nil relation")
	}
	if err := rel.Validate(); err != nil {
		return nil, nil, err
	}
	n := rel.N()
	if p < 1 || p > n {
		return nil, nil, fmt.Errorf("shard: shard count %d out of range [1,%d]", p, n)
	}
	subs := make([]*dataset.Relation, p)
	ids := make([][]int, p)
	for s := 0; s < p; s++ {
		sub := &dataset.Relation{Name: fmt.Sprintf("%s/shard%d", rel.Name, s)}
		for i := s; i < n; i += p {
			sub.Rows = append(sub.Rows, rel.Rows[i])
			ids[s] = append(ids[s], i)
		}
		subs[s] = sub
	}
	return subs, ids, nil
}

// Relation is a sharded encrypted relation: P complete encrypted
// relations over disjoint row subsets, sharing the owner's key material
// and carrying globally unique object ids.
type Relation struct {
	Shards []*core.EncryptedRelation
	// N and M are the global dimensions; MaxScoreBits the shared bound.
	N, M         int
	MaxScoreBits int
}

// Encrypt partitions rel into p shards and encrypts each with the
// owner's scheme under global object ids (Enc per shard, Algorithm 2).
func Encrypt(s *core.Scheme, rel *dataset.Relation, p int) (*Relation, error) {
	subs, ids, err := Split(rel, p)
	if err != nil {
		return nil, err
	}
	shards := make([]*core.EncryptedRelation, p)
	for i, sub := range subs {
		er, err := s.EncryptRelationWithIDs(sub, ids[i])
		if err != nil {
			return nil, fmt.Errorf("shard: encrypting shard %d: %w", i, err)
		}
		er.Name = rel.Name
		shards[i] = er
	}
	return New(shards)
}

// New assembles a sharded relation from already-encrypted shards (the
// persistence path) and validates they agree on shape metadata.
func New(shards []*core.EncryptedRelation) (*Relation, error) {
	if len(shards) == 0 {
		return nil, errors.New("shard: no shards")
	}
	r := &Relation{Shards: shards, M: shards[0].M, MaxScoreBits: shards[0].MaxScoreBits}
	for i, er := range shards {
		if er == nil || len(er.Lists) == 0 {
			return nil, fmt.Errorf("shard: shard %d is empty", i)
		}
		if er.M != r.M || er.MaxScoreBits != r.MaxScoreBits {
			return nil, fmt.Errorf("shard: shard %d shape (m=%d, scorebits=%d) differs from shard 0 (m=%d, scorebits=%d)",
				i, er.M, er.MaxScoreBits, r.M, r.MaxScoreBits)
		}
		r.N += er.N
	}
	return r, nil
}

// Engine executes one token over every shard concurrently and merges the
// candidates. It is safe for concurrent use (each query builds only
// per-call state; the per-shard core engines are themselves concurrent).
type Engine struct {
	client  *cloud.Client
	rel     *Relation
	engines []*core.Engine
}

// NewEngine builds the sharded query engine over one client (the shards
// share S2 key material, so every shard's rounds carry the same relation
// ID and route to one registered Server).
func NewEngine(client *cloud.Client, rel *Relation) (*Engine, error) {
	if client == nil {
		return nil, errors.New("shard: nil client")
	}
	if rel == nil || len(rel.Shards) == 0 {
		return nil, errors.New("shard: empty sharded relation")
	}
	e := &Engine{client: client, rel: rel, engines: make([]*core.Engine, len(rel.Shards))}
	for i, er := range rel.Shards {
		sub, err := core.NewEngine(client, er)
		if err != nil {
			return nil, fmt.Errorf("shard: engine for shard %d: %w", i, err)
		}
		e.engines[i] = sub
	}
	return e, nil
}

// Shards returns the shard count P.
func (e *Engine) Shards() int { return len(e.engines) }

// N returns the global row count across all shards.
func (e *Engine) N() int { return e.rel.N }

// M returns the attribute count shared by every shard.
func (e *Engine) M() int { return e.rel.M }

// MaxScoreBits returns the shared per-attribute score bound.
func (e *Engine) MaxScoreBits() int { return e.rel.MaxScoreBits }

// ShardSizes returns the per-shard row counts, in shard order.
func (e *Engine) ShardSizes() []int {
	sizes := make([]int, len(e.rel.Shards))
	for i, er := range e.rel.Shards {
		sizes[i] = er.N
	}
	return sizes
}

// ValidateToken checks a token against the *global* relation dimensions.
func (e *Engine) ValidateToken(tk *core.Token) error {
	if err := e.validateShape(tk); err != nil {
		return err
	}
	if tk.K > e.rel.N {
		return secerr.New(secerr.CodeInvalidToken, "shard: token k=%d out of range", tk.K)
	}
	return nil
}

// validateShape checks everything about a token except the upper bound
// on k — a cluster member hosts only part of the relation, so the global
// k may legitimately exceed the local row count (it is clamped per
// shard; the coordinator validated it against the global N).
func (e *Engine) validateShape(tk *core.Token) error {
	if tk == nil {
		return secerr.New(secerr.CodeInvalidToken, "shard: nil token")
	}
	if len(tk.Lists) == 0 {
		return secerr.New(secerr.CodeInvalidToken, "shard: token selects no lists")
	}
	for _, p := range tk.Lists {
		if p < 0 || p >= e.rel.M {
			return secerr.New(secerr.CodeInvalidToken, "shard: token list position %d out of range", p)
		}
	}
	if tk.Weights != nil && len(tk.Weights) != len(tk.Lists) {
		return secerr.New(secerr.CodeInvalidToken, "shard: token has %d weights for %d lists", len(tk.Weights), len(tk.Lists))
	}
	if tk.K <= 0 {
		return secerr.New(secerr.CodeInvalidToken, "shard: token k=%d out of range", tk.K)
	}
	return nil
}

// magBits is the core engine's comparison-mask sizing, so merged
// candidates compare under the same magnitude bound the shards used.
func (e *Engine) magBits(tk *core.Token) int {
	return core.MagBits(e.rel.MaxScoreBits, tk)
}

// SecQuery executes the top-k query over every shard concurrently and
// merges. With a single shard it is exactly the unsharded core engine.
func (e *Engine) SecQuery(ctx context.Context, tk *core.Token, opts core.Options) (*core.QueryResult, error) {
	if err := e.ValidateToken(tk); err != nil {
		return nil, err
	}
	if len(e.engines) == 1 {
		return e.engines[0].SecQuery(ctx, tk, opts)
	}
	sets, err := e.runShards(ctx, tk, opts)
	if err != nil {
		return nil, err
	}
	res, certified, err := e.merge(ctx, tk, sets)
	if err != nil {
		return nil, err
	}
	if certified {
		return res, nil
	}
	// A residual bound survived the NRA check (a relaxed-halting or
	// depth-capped shard could still hide a better object): rescan every
	// shard exactly, after which every bound is the exact aggregate and
	// the merge is unconditionally correct.
	e.client.Ledger().Record("S1", "ShardMerge", "merge bound check failed; exact rescan over %d shards", len(e.engines))
	telemetry.Default().Counter("sectopk_merge_fallbacks_total", "scope", "shard").Inc()
	exact := opts
	exact.ExactScan = true
	exact.MaxDepth = 0
	sets, err = e.runShards(ctx, tk, exact)
	if err != nil {
		return nil, err
	}
	res, certified, err = e.merge(ctx, tk, sets)
	if err != nil {
		return nil, err
	}
	if !certified {
		return nil, errors.New("shard: merge bound check failed after exact rescan")
	}
	return res, nil
}

// Candidates runs the token over every shard concurrently and returns
// the per-shard candidate sets *without* merging them. This is the
// cluster member's half of a distributed query: each member contributes
// its shards' candidates and the coordinator merges across members with
// Merge. The token's shape is validated locally but its k is not bounded
// by the local row count — the coordinator validated k against the
// global relation and each shard clamps it to its own size.
func (e *Engine) Candidates(ctx context.Context, tk *core.Token, opts core.Options) ([]*core.CandidateSet, error) {
	if err := e.validateShape(tk); err != nil {
		return nil, err
	}
	return e.runShards(ctx, tk, opts)
}

// runShards executes the clamped token on every shard concurrently.
func (e *Engine) runShards(ctx context.Context, tk *core.Token, opts core.Options) ([]*core.CandidateSet, error) {
	sets := make([]*core.CandidateSet, len(e.engines))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := range e.engines {
		sub := e.engines[i]
		shardN := e.rel.Shards[i].N
		if shardN == 0 {
			// A shard drained empty by deletions contributes nothing: no
			// candidates, no residual bound (it hosts no unseen objects).
			sets[i] = &core.CandidateSet{Halted: true}
			continue
		}
		local := &core.Token{K: tk.K, Lists: tk.Lists, Weights: tk.Weights}
		if local.K > shardN {
			local.K = shardN
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs, err := sub.SecQueryCandidates(ctx, local, opts)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %d: %w", i, err)
					cancel() // stop sibling shards within one round
				}
				mu.Unlock()
				return
			}
			sets[i] = cs
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sets, nil
}

// merge delegates to the package-level Merge under this engine's global
// k and magnitude bound.
func (e *Engine) merge(ctx context.Context, tk *core.Token, sets []*core.CandidateSet) (*core.QueryResult, bool, error) {
	return Merge(ctx, e.client, tk.K, e.magBits(tk), sets)
}

// Merge unions candidate sets, selects the global top-k with
// EncSelectTop on the worst-score column, and runs the NRA-style bound
// check: every non-selected candidate's upper bound and every shard
// residual must be dominated by the merged k-th worst. The boolean
// reports whether the check certified the merge. magBits must be
// core.MagBits over the *global* relation's MaxScoreBits — the same
// bound the per-shard scans compared under — which is why the cluster
// coordinator carries the relation's global shape metadata.
func Merge(ctx context.Context, client *cloud.Client, k, magBits int, sets []*core.CandidateSet) (*core.QueryResult, bool, error) {
	var (
		union     []protocols.Item
		residuals []*paillier.Ciphertext
		depth     int
		halted    = true
	)
	for _, cs := range sets {
		union = append(union, cs.Items...)
		residuals = append(residuals, cs.Residuals...)
		if cs.Depth > depth {
			depth = cs.Depth
		}
		halted = halted && cs.Halted
	}
	if len(union) == 0 {
		return &core.QueryResult{Depth: depth, Halted: halted}, true, nil
	}
	if k > len(union) {
		k = len(union)
	}
	ranked, err := protocols.EncSelectTop(ctx, client, union, protocols.ColWorst, true, k, magBits)
	if err != nil {
		return nil, false, fmt.Errorf("shard: merge selection: %w", err)
	}
	wk := ranked[k-1].Scores[protocols.ColWorst]
	bounds := make([]*paillier.Ciphertext, 0, len(ranked)-k+len(residuals))
	for _, it := range ranked[k:] {
		bounds = append(bounds, it.Scores[protocols.ColBest])
	}
	bounds = append(bounds, residuals...)
	certified := true
	if len(bounds) > 0 {
		wks := make([]*paillier.Ciphertext, len(bounds))
		for i := range wks {
			wks[i] = wk
		}
		fs, err := protocols.EncCompareBatch(ctx, client, bounds, wks, magBits)
		if err != nil {
			return nil, false, fmt.Errorf("shard: merge bound check: %w", err)
		}
		for _, f := range fs {
			if !f {
				certified = false
				break
			}
		}
	}
	return &core.QueryResult{Items: ranked[:k], Depth: depth, Halted: halted}, certified, nil
}
