package dataset

import (
	"testing"
)

func TestGenerateShapes(t *testing.T) {
	for _, spec := range All() {
		small := spec.WithN(200)
		rel, err := Generate(small, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if rel.N() != 200 || rel.M() != spec.M {
			t.Fatalf("%s: shape %dx%d, want 200x%d", spec.Name, rel.N(), rel.M(), spec.M)
		}
		if rel.MaxScore() > spec.MaxScore {
			t.Fatalf("%s: score %d exceeds cap %d", spec.Name, rel.MaxScore(), spec.MaxScore)
		}
		if err := rel.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Synthetic().WithN(50)
	a, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("not deterministic at (%d,%d)", i, j)
			}
		}
	}
	c, err := Generate(spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != c.Rows[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Name: "x", N: 0, M: 3, MaxScore: 5}, 1); err == nil {
		t.Fatal("expected error for N=0")
	}
	if _, err := Generate(Spec{Name: "x", N: 3, M: 0, MaxScore: 5}, 1); err == nil {
		t.Fatal("expected error for M=0")
	}
	if _, err := Generate(Spec{Name: "x", N: 3, M: 3, MaxScore: 0}, 1); err == nil {
		t.Fatal("expected error for MaxScore=0")
	}
	if _, err := Generate(Spec{Name: "x", N: 3, M: 3, MaxScore: 5, Correlation: 2}, 1); err == nil {
		t.Fatal("expected error for correlation > 1")
	}
	if _, err := Generate(Spec{Name: "x", N: 3, M: 3, MaxScore: 5, Shape: Shape(99)}, 1); err == nil {
		t.Fatal("expected error for unknown shape")
	}
}

func TestRelationValidate(t *testing.T) {
	bad := &Relation{Name: "r", Rows: [][]int64{{1, 2}, {3}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected ragged-row error")
	}
	neg := &Relation{Name: "r", Rows: [][]int64{{1, -2}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("expected negative-score error")
	}
	empty := &Relation{Name: "r"}
	if err := empty.Validate(); err == nil {
		t.Fatal("expected empty error")
	}
	noAttrs := &Relation{Name: "r", Rows: [][]int64{{}}}
	if err := noAttrs.Validate(); err == nil {
		t.Fatal("expected no-attribute error")
	}
}

func TestScore(t *testing.T) {
	rel := &Relation{Name: "r", Rows: [][]int64{{1, 2, 3}, {4, 5, 6}}}
	if got := rel.Score(0, []int{0, 2}, nil); got != 4 {
		t.Fatalf("unit weights: %d, want 4", got)
	}
	if got := rel.Score(1, []int{0, 1}, []int64{2, 3}); got != 23 {
		t.Fatalf("weighted: %d, want 23", got)
	}
}

func TestSpecHelpers(t *testing.T) {
	s := Insurance().WithN(10).WithM(4)
	if s.N != 10 || s.M != 4 || s.Name != "insurance" {
		t.Fatalf("WithN/WithM broken: %+v", s)
	}
	if Synthetic().ScoreBits() < 10 {
		t.Fatalf("ScoreBits too small: %d", Synthetic().ScoreBits())
	}
	if len(All()) != 4 {
		t.Fatal("All() should return the paper's 4 datasets")
	}
}

func TestCorrelationAffectsTopAgreement(t *testing.T) {
	// With high correlation, the best object by one attribute should rank
	// highly by others — the property that lets NRA halt early.
	spec := Spec{Name: "c", N: 500, M: 4, MaxScore: 1000, Shape: ShapeGaussian, Correlation: 0.9}
	rel, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Find the top object by attribute 0 and check its ranks elsewhere
	// are in the top half.
	best, bestVal := 0, int64(-1)
	for i := 0; i < rel.N(); i++ {
		if rel.Rows[i][0] > bestVal {
			best, bestVal = i, rel.Rows[i][0]
		}
	}
	for j := 1; j < rel.M(); j++ {
		rank := 0
		for i := 0; i < rel.N(); i++ {
			if rel.Rows[i][j] > rel.Rows[best][j] {
				rank++
			}
		}
		if rank > rel.N()/2 {
			t.Fatalf("high-correlation top object ranks %d/%d on attribute %d", rank, rel.N(), j)
		}
	}
}
