// Package dataset provides the relation model and the workload generators
// for the evaluation. The paper (Section 11) uses three UCI datasets
// (insurance 5822x13, diabetes 101767x10, PAMAP 376416x15) and a Gaussian
// synthetic set (10^6 x 10).
//
// Substitution note (DESIGN.md): the module is offline, so the UCI sets
// are replaced by seeded synthetic stand-ins with the same name, schema,
// and qualitative value distributions. The protocol's per-depth cost
// depends only on n, M, score ranges and duplicate/halting structure, all
// of which are preserved.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Relation is a plaintext relation of n objects with M numeric attributes
// (the paper's n x M matrix view of R). Object i's id is its row index.
type Relation struct {
	Name string
	Rows [][]int64
}

// N returns the number of objects.
func (r *Relation) N() int { return len(r.Rows) }

// M returns the number of attributes.
func (r *Relation) M() int {
	if len(r.Rows) == 0 {
		return 0
	}
	return len(r.Rows[0])
}

// Validate checks rectangular shape and non-negative scores (the paper
// assumes non-negative attribute values; Section 3.1).
func (r *Relation) Validate() error {
	if len(r.Rows) == 0 {
		return errors.New("dataset: empty relation")
	}
	m := len(r.Rows[0])
	if m == 0 {
		return errors.New("dataset: relation has no attributes")
	}
	for i, row := range r.Rows {
		if len(row) != m {
			return fmt.Errorf("dataset: row %d has %d attributes, want %d", i, len(row), m)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("dataset: negative score at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// MaxScore returns the largest attribute value.
func (r *Relation) MaxScore() int64 {
	var out int64
	for _, row := range r.Rows {
		for _, v := range row {
			if v > out {
				out = v
			}
		}
	}
	return out
}

// Score evaluates the monotone linear ranking function F_W over the given
// attributes and weights for object obj (Section 3.1).
func (r *Relation) Score(obj int, attrs []int, weights []int64) int64 {
	var s int64
	for i, a := range attrs {
		w := int64(1)
		if weights != nil {
			w = weights[i]
		}
		s += w * r.Rows[obj][a]
	}
	return s
}

// Shape describes a dataset's value distribution.
type Shape int

const (
	// ShapeCategorical produces small-domain integers with heavy
	// duplication (the insurance benchmark's sociodemographic fields).
	ShapeCategorical Shape = iota
	// ShapeSkewed produces long-tailed counts (diabetes utilization
	// fields).
	ShapeSkewed
	// ShapeSensor produces wide-range correlated readings (PAMAP
	// physical-activity monitoring).
	ShapeSensor
	// ShapeGaussian is the paper's synthetic set: Gaussian attribute
	// values.
	ShapeGaussian
)

// Spec describes a dataset to generate.
type Spec struct {
	Name     string
	N        int
	M        int
	MaxScore int64
	Shape    Shape
	// Correlation in [0,1] blends a per-row quality factor into every
	// attribute; higher values make top-k rows agree across attributes,
	// which is what lets NRA-style algorithms halt early on real data.
	Correlation float64
}

// The paper's four datasets at full scale.

// Insurance is the UCI insurance benchmark stand-in (5822 x 13).
func Insurance() Spec {
	return Spec{Name: "insurance", N: 5822, M: 13, MaxScore: 9, Shape: ShapeCategorical, Correlation: 0.5}
}

// Diabetes is the UCI diabetes stand-in (101767 x 10).
func Diabetes() Spec {
	return Spec{Name: "diabetes", N: 101767, M: 10, MaxScore: 1000, Shape: ShapeSkewed, Correlation: 0.6}
}

// PAMAP is the UCI PAMAP physical-activity stand-in (376416 x 15).
func PAMAP() Spec {
	return Spec{Name: "PAMAP", N: 376416, M: 15, MaxScore: 10000, Shape: ShapeSensor, Correlation: 0.6}
}

// Synthetic is the paper's Gaussian synthetic dataset (10^6 x 10).
func Synthetic() Spec {
	return Spec{Name: "synthetic", N: 1_000_000, M: 10, MaxScore: 1000, Shape: ShapeGaussian, Correlation: 0.6}
}

// All returns the four evaluation datasets in the paper's order.
func All() []Spec {
	return []Spec{Insurance(), Diabetes(), PAMAP(), Synthetic()}
}

// WithN returns a copy scaled to n rows (benchmarks run scaled-down
// versions by default; see EXPERIMENTS.md).
func (s Spec) WithN(n int) Spec {
	s.N = n
	return s
}

// WithM returns a copy with m attributes.
func (s Spec) WithM(m int) Spec {
	s.M = m
	return s
}

// Generate builds the relation deterministically from the seed.
func Generate(spec Spec, seed int64) (*Relation, error) {
	if spec.N <= 0 || spec.M <= 0 {
		return nil, fmt.Errorf("dataset: invalid shape %dx%d", spec.N, spec.M)
	}
	if spec.MaxScore <= 0 {
		return nil, fmt.Errorf("dataset: MaxScore must be positive, got %d", spec.MaxScore)
	}
	if spec.Correlation < 0 || spec.Correlation > 1 {
		return nil, fmt.Errorf("dataset: correlation %f outside [0,1]", spec.Correlation)
	}
	rng := rand.New(rand.NewSource(seed))
	rel := &Relation{Name: spec.Name, Rows: make([][]int64, spec.N)}
	maxF := float64(spec.MaxScore)
	for i := 0; i < spec.N; i++ {
		row := make([]int64, spec.M)
		// Per-row quality factor drives cross-attribute correlation.
		quality := rng.Float64()
		for j := 0; j < spec.M; j++ {
			var base float64
			switch spec.Shape {
			case ShapeCategorical:
				base = float64(rng.Intn(int(spec.MaxScore) + 1))
			case ShapeSkewed:
				// Exponential-ish long tail.
				base = math.Min(maxF, rng.ExpFloat64()*maxF/4)
			case ShapeSensor:
				base = clamp(rng.NormFloat64()*maxF/6+maxF/2, 0, maxF)
			case ShapeGaussian:
				base = clamp(rng.NormFloat64()*maxF/6+maxF/2, 0, maxF)
			default:
				return nil, fmt.Errorf("dataset: unknown shape %d", spec.Shape)
			}
			blended := (1-spec.Correlation)*base + spec.Correlation*quality*maxF
			row[j] = int64(clamp(blended, 0, maxF))
		}
		rel.Rows[i] = row
	}
	return rel, rel.Validate()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ScoreBits returns the number of bits needed for a single attribute
// value of this spec (used to size comparison masks).
func (s Spec) ScoreBits() int {
	bits := 1
	for v := s.MaxScore; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
