// Package ehl implements the Encrypted Hash List structures of Section 5:
//
//   - EHL: a probabilistically encrypted Bloom-filter-style bit list of
//     length H. An object is hashed to s positions with HMAC PRFs, the
//     resulting bit list is Paillier-encrypted slot by slot.
//   - EHL+: the compact variant that maps the object through s PRFs
//     straight into Z_N and encrypts the s digests.
//
// Both support the randomized equality operator Sub (the paper's ⊖,
// Equation 1): Sub(EHL(x), EHL(y)) is an encryption of 0 when x = y and of
// a uniformly random group element otherwise. They also support the
// block-wise blinding operator Blind (the paper's ⊙) used by SecDedup and
// SecFilter.
package ehl

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"

	"repro/internal/paillier"
	"repro/internal/prf"
	"repro/internal/zmath"
)

// Kind distinguishes the two structures.
type Kind int

const (
	// KindPlus is the compact EHL+ (default everywhere in the paper's
	// evaluation).
	KindPlus Kind = iota
	// KindClassic is the H-slot bit-list EHL.
	KindClassic
)

func (k Kind) String() string {
	switch k {
	case KindPlus:
		return "EHL+"
	case KindClassic:
		return "EHL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params fixes the structure shape: the number of PRF keys s and, for the
// classic EHL, the list length H.
type Params struct {
	Kind Kind
	S    int // number of HMAC keys (s)
	H    int // classic list length (H); ignored for EHL+
}

// DefaultPlusParams matches the paper's evaluation: s = 5 EHL+ digests.
func DefaultPlusParams() Params { return Params{Kind: KindPlus, S: 5} }

// DefaultClassicParams matches the paper's evaluation: H = 23, s = 5.
func DefaultClassicParams() Params { return Params{Kind: KindClassic, S: 5, H: 23} }

// Validate checks the parameters are usable.
func (p Params) Validate() error {
	if p.S <= 0 {
		return fmt.Errorf("ehl: s must be positive, got %d", p.S)
	}
	if p.Kind == KindClassic && p.H <= 0 {
		return fmt.Errorf("ehl: classic EHL needs H > 0, got %d", p.H)
	}
	if p.Kind != KindClassic && p.Kind != KindPlus {
		return fmt.Errorf("ehl: unknown kind %d", int(p.Kind))
	}
	return nil
}

// Width returns the number of ciphertexts a list of these parameters
// holds (s for EHL+, H for classic).
func (p Params) Width() int {
	if p.Kind == KindClassic {
		return p.H
	}
	return p.S
}

// Hasher holds the secret PRF keys kappa_1..kappa_s and builds lists.
// Only the data owner (and, for the join setting, token holders) has one;
// the servers manipulate Lists without the keys.
type Hasher struct {
	params Params
	keys   []prf.Key
	pk     *paillier.PublicKey
}

// NewHasher derives the s subkeys from the master key.
func NewHasher(master prf.Key, params Params, pk *paillier.PublicKey) (*Hasher, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if pk == nil {
		return nil, errors.New("ehl: nil public key")
	}
	keys, err := prf.DeriveKeys(master, params.S)
	if err != nil {
		return nil, err
	}
	return &Hasher{params: params, keys: keys, pk: pk}, nil
}

// Params returns the structure parameters.
func (h *Hasher) Params() Params { return h.params }

// List is an encrypted hash list: Width() Paillier ciphertexts.
type List struct {
	Kind Kind
	Cts  []*paillier.Ciphertext
}

// objectBytes encodes an object id for hashing.
func objectBytes(obj uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], obj)
	return buf[:]
}

// Digests returns the plaintext digest vector for an object: the s Z_N
// values for EHL+, or the H-slot 0/1 vector for the classic EHL. The
// client uses this to recognize decrypted result ids.
func (h *Hasher) Digests(obj uint64) ([]*big.Int, error) {
	return h.DigestsBytes(objectBytes(obj))
}

// DigestsBytes is Digests for an arbitrary byte encoding (used by the join
// setting, which hashes attribute values rather than row ids).
func (h *Hasher) DigestsBytes(data []byte) ([]*big.Int, error) {
	if h.params.Kind == KindClassic {
		bits := make([]*big.Int, h.params.H)
		for i := range bits {
			bits[i] = new(big.Int)
		}
		for i := 0; i < h.params.S; i++ {
			pos, err := prf.ToRange(h.keys[i], data, h.params.H)
			if err != nil {
				return nil, err
			}
			bits[pos] = big.NewInt(1)
		}
		return bits, nil
	}
	out := make([]*big.Int, h.params.S)
	for i := 0; i < h.params.S; i++ {
		d, err := prf.ToZn(h.keys[i], data, h.pk.N)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// Build hashes and encrypts an object id into a fresh List.
func (h *Hasher) Build(obj uint64) (*List, error) {
	return h.BuildBytes(objectBytes(obj))
}

// BuildBytes builds a List over an arbitrary byte encoding.
func (h *Hasher) BuildBytes(data []byte) (*List, error) {
	digests, err := h.DigestsBytes(data)
	if err != nil {
		return nil, err
	}
	cts := make([]*paillier.Ciphertext, len(digests))
	for i, d := range digests {
		ct, err := h.pk.Encrypt(d)
		if err != nil {
			return nil, fmt.Errorf("ehl: encrypting digest %d: %w", i, err)
		}
		cts[i] = ct
	}
	return &List{Kind: h.params.Kind, Cts: cts}, nil
}

// RandomList builds a list of encryptions of uniformly random Z_N values.
// S2 uses it to replace duplicated objects in SecDedup (Algorithm 7 line
// 22): with overwhelming probability it matches no real object.
func RandomList(pk *paillier.PublicKey, params Params) (*List, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	cts := make([]*paillier.Ciphertext, params.Width())
	for i := range cts {
		r, err := zmath.RandInt(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		ct, err := pk.Encrypt(r)
		if err != nil {
			return nil, err
		}
		cts[i] = ct
	}
	return &List{Kind: params.Kind, Cts: cts}, nil
}

// Clone deep-copies the list.
func (l *List) Clone() *List {
	if l == nil {
		return nil
	}
	out := &List{Kind: l.Kind, Cts: make([]*paillier.Ciphertext, len(l.Cts))}
	for i, c := range l.Cts {
		out.Cts[i] = c.Clone()
	}
	return out
}

// Width returns the number of ciphertexts in the list.
func (l *List) Width() int { return len(l.Cts) }

func compatible(a, b *List) error {
	if a == nil || b == nil {
		return errors.New("ehl: nil list")
	}
	if a.Kind != b.Kind || len(a.Cts) != len(b.Cts) {
		return fmt.Errorf("ehl: incompatible lists (%v/%d vs %v/%d)",
			a.Kind, len(a.Cts), b.Kind, len(b.Cts))
	}
	return nil
}

// Sub is the randomized equality operator ⊖ (Equation 1):
//
//	Sub(x, y) = prod_i (x[i] * y[i]^{-1})^{r_i}
//
// with fresh random r_i in Z_N. The result encrypts 0 iff the underlying
// objects are equal (up to the structure's false-positive rate) and a
// uniformly random value otherwise.
func Sub(pk *paillier.PublicKey, a, b *List) (*paillier.Ciphertext, error) {
	return SubEnc(pk, a, b)
}

// SubEnc is Sub with an explicit encryption surface, so hot paths can
// draw the leading zero-encryption from a nonce pool.
//
// With an engine on the key the operator runs its batch form: one
// Montgomery batch inversion for all the y-slots, one multiply per slot
// for the differences, and a single Straus multi-exponentiation that
// shares its squaring ladder across every slot — instead of a full-width
// exponentiation plus an extended-GCD inverse per slot. The randomness
// draw order matches the slot-by-slot path exactly (the zero encryption,
// then r_1..r_s), so fixed randomness produces bit-identical ciphertexts
// on either path.
func SubEnc(enc paillier.Encryptor, a, b *List) (*paillier.Ciphertext, error) {
	if err := compatible(a, b); err != nil {
		return nil, err
	}
	pk := enc.Key()
	acc, err := enc.EncryptZero()
	if err != nil {
		return nil, err
	}
	if eng := pk.EngineN2(); eng != nil {
		bvals := make([]*big.Int, len(b.Cts))
		avals := make([]*big.Int, len(a.Cts))
		for i := range a.Cts {
			if a.Cts[i] == nil || a.Cts[i].C == nil || b.Cts[i] == nil || b.Cts[i].C == nil {
				return nil, fmt.Errorf("ehl: Sub slot %d: nil ciphertext", i)
			}
			avals[i] = a.Cts[i].C
			bvals[i] = b.Cts[i].C
		}
		rs := make([]*big.Int, len(a.Cts))
		for i := range rs {
			if rs[i], err = zmath.RandUnit(rand.Reader, pk.N); err != nil {
				return nil, err
			}
		}
		binvs, err := zmath.BatchModInverseMod(bvals, eng)
		if err != nil {
			return nil, fmt.Errorf("ehl: Sub inverses: %w", err)
		}
		diffs := make([]*big.Int, len(avals))
		for i := range diffs {
			diffs[i] = eng.MulMod(avals[i], binvs[i])
		}
		prod, err := eng.MultiExpMod(diffs, rs)
		if err != nil {
			return nil, fmt.Errorf("ehl: Sub multi-exp: %w", err)
		}
		return &paillier.Ciphertext{C: eng.MulMod(acc.C, prod)}, nil
	}
	for i := range a.Cts {
		diff, err := pk.Sub(a.Cts[i], b.Cts[i])
		if err != nil {
			return nil, fmt.Errorf("ehl: Sub slot %d: %w", i, err)
		}
		r, err := zmath.RandUnit(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		term, err := pk.MulConst(diff, r)
		if err != nil {
			return nil, err
		}
		if acc, err = pk.Add(acc, term); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Blind is the block-wise operator ⊙: it homomorphically adds the blind
// vector alpha to the list's plaintext digests. Passing the negated vector
// removes a previous blind.
func Blind(pk *paillier.PublicKey, l *List, alpha []*big.Int) (*List, error) {
	if l == nil {
		return nil, errors.New("ehl: nil list")
	}
	if len(alpha) != len(l.Cts) {
		return nil, fmt.Errorf("ehl: blind vector length %d != list width %d", len(alpha), len(l.Cts))
	}
	out := &List{Kind: l.Kind, Cts: make([]*paillier.Ciphertext, len(l.Cts))}
	for i := range l.Cts {
		ct, err := pk.AddPlain(l.Cts[i], alpha[i])
		if err != nil {
			return nil, fmt.Errorf("ehl: Blind slot %d: %w", i, err)
		}
		out.Cts[i] = ct
	}
	return out, nil
}

// BlindCipher is Blind with an encrypted blind vector (componentwise
// ciphertext multiplication), matching the paper's c <- Enc(x) ⊙ EHL(y).
func BlindCipher(pk *paillier.PublicKey, l *List, alpha []*paillier.Ciphertext) (*List, error) {
	if l == nil {
		return nil, errors.New("ehl: nil list")
	}
	if len(alpha) != len(l.Cts) {
		return nil, fmt.Errorf("ehl: blind vector length %d != list width %d", len(alpha), len(l.Cts))
	}
	out := &List{Kind: l.Kind, Cts: make([]*paillier.Ciphertext, len(l.Cts))}
	for i := range l.Cts {
		ct, err := pk.Add(l.Cts[i], alpha[i])
		if err != nil {
			return nil, fmt.Errorf("ehl: BlindCipher slot %d: %w", i, err)
		}
		out.Cts[i] = ct
	}
	return out, nil
}

// Rerandomize re-randomizes every slot (same plaintexts, fresh
// ciphertexts).
func Rerandomize(pk *paillier.PublicKey, l *List) (*List, error) {
	if l == nil {
		return nil, errors.New("ehl: nil list")
	}
	out := &List{Kind: l.Kind, Cts: make([]*paillier.Ciphertext, len(l.Cts))}
	for i := range l.Cts {
		ct, err := pk.Rerandomize(l.Cts[i])
		if err != nil {
			return nil, err
		}
		out.Cts[i] = ct
	}
	return out, nil
}

// ByteSize returns the serialized size of the list under pk, for the
// storage-overhead experiments (Figures 7b and 8b).
func (l *List) ByteSize(pk *paillier.PublicKey) int {
	return len(l.Cts) * pk.ByteLen()
}

// FalsePositiveRate returns the analytic FPR of the structure for a
// database of n objects, per Section 5:
//
//	classic: (1 - e^{-sn/H})^s per pair — with the paper's per-object
//	         lists this is the probability two objects map to identical
//	         slot sets;
//	plus:    n^2 / N^s union bound.
func (p Params) FalsePositiveRate(n int, modulus *big.Int) float64 {
	switch p.Kind {
	case KindClassic:
		// Probability a specific slot is set by one object: each of the s
		// hashes picks a slot; the pairwise collision probability is the
		// chance the two objects' slot sets coincide, approximated by the
		// standard Bloom filter bound with one element per filter.
		perSlot := 1.0
		for i := 0; i < p.S; i++ {
			perSlot *= float64(p.S) / float64(p.H)
		}
		return perSlot
	case KindPlus:
		nsBits := float64(p.S * modulus.BitLen())
		// n^2 / N^s in log space to avoid underflow.
		log2 := 2*math.Log2(float64(n)) - nsBits
		if log2 < -1020 {
			return 0
		}
		return math.Exp2(log2)
	default:
		return 1
	}
}
