package ehl

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"

	"repro/internal/paillier"
	"repro/internal/prf"
	"repro/internal/zmath"
)

var (
	keyOnce sync.Once
	testSK  *paillier.PrivateKey
)

func testKey(t testing.TB) *paillier.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		sk, err := paillier.GenerateKey(rand.Reader, 512)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testSK = sk
	})
	return testSK
}

func newHasher(t testing.TB, params Params) *Hasher {
	t.Helper()
	sk := testKey(t)
	master := prf.Key(make([]byte, prf.KeySize))
	for i := range master {
		master[i] = byte(i)
	}
	h, err := NewHasher(master, params, &sk.PublicKey)
	if err != nil {
		t.Fatalf("NewHasher: %v", err)
	}
	return h
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Kind: KindPlus, S: 0},
		{Kind: KindClassic, S: 5, H: 0},
		{Kind: Kind(9), S: 5, H: 10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := DefaultPlusParams().Validate(); err != nil {
		t.Errorf("default plus params invalid: %v", err)
	}
	if err := DefaultClassicParams().Validate(); err != nil {
		t.Errorf("default classic params invalid: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindPlus.String() != "EHL+" || KindClassic.String() != "EHL" {
		t.Fatal("Kind String() wrong")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestWidth(t *testing.T) {
	if DefaultPlusParams().Width() != 5 {
		t.Fatal("EHL+ width should be s")
	}
	if DefaultClassicParams().Width() != 23 {
		t.Fatal("classic width should be H")
	}
}

func testEqualityForParams(t *testing.T, params Params) {
	sk := testKey(t)
	h := newHasher(t, params)
	a1, err := h.Build(7)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a2, err := h.Build(7) // same object, fresh randomness
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := h.Build(8)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	same, err := Sub(&sk.PublicKey, a1, a2)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if m, _ := sk.Decrypt(same); m.Sign() != 0 {
		t.Fatalf("%v: Sub of equal objects decrypts to %v, want 0", params.Kind, m)
	}

	diff, err := Sub(&sk.PublicKey, a1, b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if m, _ := sk.Decrypt(diff); m.Sign() == 0 {
		t.Fatalf("%v: Sub of distinct objects decrypts to 0", params.Kind)
	}
}

func TestEqualityPlus(t *testing.T)    { testEqualityForParams(t, DefaultPlusParams()) }
func TestEqualityClassic(t *testing.T) { testEqualityForParams(t, DefaultClassicParams()) }

func TestSubRandomizedAcrossCalls(t *testing.T) {
	sk := testKey(t)
	h := newHasher(t, DefaultPlusParams())
	a, _ := h.Build(1)
	b, _ := h.Build(2)
	c1, _ := Sub(&sk.PublicKey, a, b)
	c2, _ := Sub(&sk.PublicKey, a, b)
	m1, _ := sk.Decrypt(c1)
	m2, _ := sk.Decrypt(c2)
	if m1.Cmp(m2) == 0 {
		t.Fatal("Sub results should carry fresh randomness per call")
	}
}

func TestListsAreIndistinguishableInForm(t *testing.T) {
	// Lemma 5.1 sanity: two builds of the same object give different
	// ciphertexts (semantic security means no deterministic fingerprint).
	h := newHasher(t, DefaultPlusParams())
	a, _ := h.Build(7)
	b, _ := h.Build(7)
	for i := range a.Cts {
		if a.Cts[i].C.Cmp(b.Cts[i].C) == 0 {
			t.Fatalf("slot %d identical across two encryptions", i)
		}
	}
}

func TestSubIncompatibleLists(t *testing.T) {
	sk := testKey(t)
	hp := newHasher(t, DefaultPlusParams())
	hc := newHasher(t, DefaultClassicParams())
	a, _ := hp.Build(1)
	b, _ := hc.Build(1)
	if _, err := Sub(&sk.PublicKey, a, b); err == nil {
		t.Fatal("expected error for incompatible kinds")
	}
	if _, err := Sub(&sk.PublicKey, nil, a); err == nil {
		t.Fatal("expected error for nil list")
	}
}

func TestBlindUnblindRoundTrip(t *testing.T) {
	sk := testKey(t)
	h := newHasher(t, DefaultPlusParams())
	l, _ := h.Build(3)
	alpha := make([]*big.Int, l.Width())
	negAlpha := make([]*big.Int, l.Width())
	for i := range alpha {
		r, err := zmath.RandInt(rand.Reader, sk.N)
		if err != nil {
			t.Fatal(err)
		}
		alpha[i] = r
		negAlpha[i] = new(big.Int).Neg(r)
	}
	blinded, err := Blind(&sk.PublicKey, l, alpha)
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	// Blinded list must no longer match the original object.
	l2, _ := h.Build(3)
	d, _ := Sub(&sk.PublicKey, blinded, l2)
	if m, _ := sk.Decrypt(d); m.Sign() == 0 {
		t.Fatal("blinded list still matches the object")
	}
	// Unblinding restores equality.
	restored, err := Blind(&sk.PublicKey, blinded, negAlpha)
	if err != nil {
		t.Fatalf("unblind: %v", err)
	}
	d2, _ := Sub(&sk.PublicKey, restored, l2)
	if m, _ := sk.Decrypt(d2); m.Sign() != 0 {
		t.Fatal("unblinded list no longer matches the object")
	}
}

func TestBlindCipher(t *testing.T) {
	sk := testKey(t)
	h := newHasher(t, DefaultPlusParams())
	l, _ := h.Build(4)
	alpha := make([]*paillier.Ciphertext, l.Width())
	neg := make([]*paillier.Ciphertext, l.Width())
	for i := range alpha {
		r, _ := zmath.RandInt(rand.Reader, sk.N)
		alpha[i], _ = sk.Encrypt(r)
		neg[i], _ = sk.PublicKey.Neg(alpha[i])
	}
	blinded, err := BlindCipher(&sk.PublicKey, l, alpha)
	if err != nil {
		t.Fatalf("BlindCipher: %v", err)
	}
	restored, err := BlindCipher(&sk.PublicKey, blinded, neg)
	if err != nil {
		t.Fatalf("unblind: %v", err)
	}
	ref, _ := h.Build(4)
	d, _ := Sub(&sk.PublicKey, restored, ref)
	if m, _ := sk.Decrypt(d); m.Sign() != 0 {
		t.Fatal("cipher blind/unblind broke equality")
	}
}

func TestBlindLengthMismatch(t *testing.T) {
	sk := testKey(t)
	h := newHasher(t, DefaultPlusParams())
	l, _ := h.Build(1)
	if _, err := Blind(&sk.PublicKey, l, make([]*big.Int, 2)); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := BlindCipher(&sk.PublicKey, l, make([]*paillier.Ciphertext, 2)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestRandomListNeverMatches(t *testing.T) {
	sk := testKey(t)
	h := newHasher(t, DefaultPlusParams())
	real1, _ := h.Build(9)
	rnd, err := RandomList(&sk.PublicKey, DefaultPlusParams())
	if err != nil {
		t.Fatalf("RandomList: %v", err)
	}
	d, _ := Sub(&sk.PublicKey, real1, rnd)
	if m, _ := sk.Decrypt(d); m.Sign() == 0 {
		t.Fatal("random list matched a real object")
	}
	rnd2, _ := RandomList(&sk.PublicKey, DefaultPlusParams())
	d2, _ := Sub(&sk.PublicKey, rnd, rnd2)
	if m, _ := sk.Decrypt(d2); m.Sign() == 0 {
		t.Fatal("two random lists matched")
	}
}

func TestRerandomizePreservesEquality(t *testing.T) {
	sk := testKey(t)
	h := newHasher(t, DefaultPlusParams())
	l, _ := h.Build(5)
	rr, err := Rerandomize(&sk.PublicKey, l)
	if err != nil {
		t.Fatalf("Rerandomize: %v", err)
	}
	for i := range l.Cts {
		if l.Cts[i].C.Cmp(rr.Cts[i].C) == 0 {
			t.Fatalf("slot %d unchanged", i)
		}
	}
	ref, _ := h.Build(5)
	d, _ := Sub(&sk.PublicKey, rr, ref)
	if m, _ := sk.Decrypt(d); m.Sign() != 0 {
		t.Fatal("rerandomized list no longer matches")
	}
}

func TestClone(t *testing.T) {
	h := newHasher(t, DefaultPlusParams())
	l, _ := h.Build(6)
	c := l.Clone()
	c.Cts[0].C.Add(c.Cts[0].C, big.NewInt(1))
	if l.Cts[0].C.Cmp(c.Cts[0].C) == 0 {
		t.Fatal("Clone aliases original")
	}
	if (*List)(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestByteSize(t *testing.T) {
	sk := testKey(t)
	hp := newHasher(t, DefaultPlusParams())
	hc := newHasher(t, DefaultClassicParams())
	lp, _ := hp.Build(1)
	lc, _ := hc.Build(1)
	// The paper's core claim: EHL+ is much smaller than classic EHL.
	if lp.ByteSize(&sk.PublicKey) >= lc.ByteSize(&sk.PublicKey) {
		t.Fatalf("EHL+ (%d bytes) should be smaller than EHL (%d bytes)",
			lp.ByteSize(&sk.PublicKey), lc.ByteSize(&sk.PublicKey))
	}
}

func TestFalsePositiveRateAnalytic(t *testing.T) {
	sk := testKey(t)
	plus := DefaultPlusParams()
	fpr := plus.FalsePositiveRate(1_000_000, sk.N)
	if fpr > 1e-30 {
		t.Fatalf("EHL+ FPR should be negligible, got %g", fpr)
	}
	classic := DefaultClassicParams()
	cfpr := classic.FalsePositiveRate(1_000_000, sk.N)
	if cfpr <= fpr {
		t.Fatal("classic EHL FPR should exceed EHL+ FPR")
	}
	if cfpr <= 0 || cfpr >= 1 {
		t.Fatalf("classic FPR out of (0,1): %g", cfpr)
	}
}

func TestBuildBytesJoinStyle(t *testing.T) {
	// The join setting hashes attribute values; equal values must match
	// across different hashers built from the same master key.
	sk := testKey(t)
	h := newHasher(t, DefaultPlusParams())
	a, _ := h.BuildBytes([]byte("value-120"))
	b, _ := h.BuildBytes([]byte("value-120"))
	c, _ := h.BuildBytes([]byte("value-121"))
	d, _ := Sub(&sk.PublicKey, a, b)
	if m, _ := sk.Decrypt(d); m.Sign() != 0 {
		t.Fatal("equal values should match")
	}
	d2, _ := Sub(&sk.PublicKey, a, c)
	if m, _ := sk.Decrypt(d2); m.Sign() == 0 {
		t.Fatal("distinct values should not match")
	}
}

func TestNewHasherValidation(t *testing.T) {
	sk := testKey(t)
	master, _ := prf.NewKey()
	if _, err := NewHasher(master, Params{Kind: KindPlus, S: 0}, &sk.PublicKey); err == nil {
		t.Fatal("expected param validation error")
	}
	if _, err := NewHasher(master, DefaultPlusParams(), nil); err == nil {
		t.Fatal("expected nil-pk error")
	}
	if _, err := NewHasher(nil, DefaultPlusParams(), &sk.PublicKey); err == nil {
		t.Fatal("expected empty-master error")
	}
}

func BenchmarkBuildPlus(b *testing.B) {
	h := newHasher(b, DefaultPlusParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Build(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildClassic(b *testing.B) {
	h := newHasher(b, DefaultClassicParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Build(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubPlus(b *testing.B) {
	sk := testKey(b)
	h := newHasher(b, DefaultPlusParams())
	x, _ := h.Build(1)
	y, _ := h.Build(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sub(&sk.PublicKey, x, y); err != nil {
			b.Fatal(err)
		}
	}
}
