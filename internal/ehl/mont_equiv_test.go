package ehl

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"math/big"
	"testing"

	"repro/internal/paillier"
	"repro/internal/zmath"
)

// detReader is a deterministic byte stream (counter-mode SHA-256) used to
// replay the exact same randomness into both engine paths of SubEnc.
type detReader struct {
	ctr uint64
	buf []byte
}

func (d *detReader) Read(p []byte) (int, error) {
	for i := range p {
		if len(d.buf) == 0 {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], d.ctr)
			d.ctr++
			s := sha256.Sum256(b[:])
			d.buf = s[:]
		}
		p[i] = d.buf[0]
		d.buf = d.buf[1:]
	}
	return len(p), nil
}

// TestSubEncBitEqualAcrossEngines replays one fixed randomness stream into
// SubEnc under both arithmetic backends. The batch path draws the zero
// encryption and then r_1..r_s in exactly the slot-loop order, so the two
// runs must produce byte-identical ciphertexts — and the result must still
// decrypt to 0 for equal inputs.
func TestSubEncBitEqualAcrossEngines(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	h := newHasher(t, Params{Kind: KindPlus, S: 4})
	a, err := h.Build(7)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := h.Build(7)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	prevRand := rand.Reader
	prevMode := zmath.MontgomeryEnabled()
	defer func() {
		rand.Reader = prevRand
		zmath.SetMontgomeryEnabled(prevMode)
	}()

	run := func(on bool) *big.Int {
		zmath.SetMontgomeryEnabled(on)
		rand.Reader = &detReader{}
		ct, err := SubEnc(pk, a, b)
		if err != nil {
			t.Fatalf("SubEnc(mont=%v): %v", on, err)
		}
		return ct.C
	}
	withMont := run(true)
	withoutMont := run(false)
	if withMont.Cmp(withoutMont) != 0 {
		t.Fatal("SubEnc: engine paths diverge under identical randomness")
	}

	rand.Reader = prevRand
	zmath.SetMontgomeryEnabled(prevMode)
	m, err := sk.Decrypt(&paillier.Ciphertext{C: withMont})
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if m.Sign() != 0 {
		t.Fatalf("Sub of equal lists decrypted to %v, want 0", m)
	}
}
