package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// echoResponder implements Responder for tests: "echo" returns the body,
// "fail" returns an error, "double" decodes an int and doubles it.
type echoResponder struct{}

func (echoResponder) Serve(_ context.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case "echo":
		return body, nil
	case "fail":
		return nil, errors.New("handler exploded")
	case "double":
		var v int
		if err := Decode(body, &v); err != nil {
			return nil, err
		}
		return Encode(v * 2)
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func TestLocalCallRoundTrip(t *testing.T) {
	stats := NewStats()
	c := NewLocal(echoResponder{}, stats)
	var out int
	if err := c.Call(context.Background(), "double", 21, &out); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out != 42 {
		t.Fatalf("double(21) = %d", out)
	}
	if stats.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", stats.Rounds())
	}
	if stats.Bytes() <= 0 {
		t.Fatal("expected nonzero byte count")
	}
}

func TestLocalCallError(t *testing.T) {
	c := NewLocal(echoResponder{}, nil)
	var out int
	err := c.Call(context.Background(), "fail", 1, &out)
	if err == nil || !strings.Contains(err.Error(), "handler exploded") {
		t.Fatalf("expected handler error, got %v", err)
	}
	if err := c.Call(context.Background(), "nope", 1, &out); err == nil {
		t.Fatal("expected unknown-method error")
	}
}

func TestLocalNilResponder(t *testing.T) {
	c := NewLocal(nil, nil)
	if err := c.Call(context.Background(), "echo", 1, nil); err == nil {
		t.Fatal("expected error for nil responder")
	}
}

func TestLocalNilResponse(t *testing.T) {
	c := NewLocal(echoResponder{}, nil)
	if err := c.Call(context.Background(), "echo", "hello", nil); err != nil {
		t.Fatalf("nil resp should be allowed: %v", err)
	}
}

func TestStatsPerMethod(t *testing.T) {
	s := NewStats()
	s.Record("a", 10, 20)
	s.Record("a", 1, 2)
	s.Record("b", 5, 5)
	if got := s.Method("a"); got.Calls != 2 || got.BytesSent != 11 || got.BytesReceived != 22 {
		t.Fatalf("method a stats wrong: %+v", got)
	}
	if got := s.Method("missing"); got.Calls != 0 {
		t.Fatalf("missing method should be zero: %+v", got)
	}
	if ms := s.Methods(); len(ms) != 2 || ms[0] != "a" || ms[1] != "b" {
		t.Fatalf("Methods() = %v", ms)
	}
	if s.Bytes() != 43 {
		t.Fatalf("Bytes = %d, want 43", s.Bytes())
	}
	if !strings.Contains(s.Snapshot(), "rounds=3") {
		t.Fatalf("Snapshot = %q", s.Snapshot())
	}
	s.Reset()
	if s.Rounds() != 0 || s.Bytes() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestLinkModelLatency(t *testing.T) {
	s := NewStats()
	// 50 Mbps: 6.25 MB/s. 625_000 bytes -> 0.1 s transfer.
	s.Record("x", 300_000, 325_000)
	l := LinkModel{BandwidthBitsPerSec: 50e6, RTT: 2 * time.Millisecond}
	got := l.Latency(s)
	want := 100*time.Millisecond + 2*time.Millisecond
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("latency = %v, want about %v", got, want)
	}
	// Zero-bandwidth model falls back to RTT-only.
	l0 := LinkModel{RTT: 5 * time.Millisecond}
	if got := l0.Latency(s); got != 5*time.Millisecond {
		t.Fatalf("rtt-only latency = %v", got)
	}
	if LAN50Mbps().BandwidthBitsPerSec != 50e6 {
		t.Fatal("LAN50Mbps bandwidth wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type payload struct {
		A int
		B string
		C []int64
	}
	in := payload{A: 7, B: "x", C: []int64{1, 2, 3}}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.B != in.B || len(out.C) != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestNetCallerOverPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		_ = ServeConn(context.Background(), c2, echoResponder{})
	}()
	stats := NewStats()
	caller := NewNetCaller(c1, stats)
	var out int
	if err := caller.Call(context.Background(), "double", 100, &out); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out != 200 {
		t.Fatalf("double(100) = %d", out)
	}
	var s string
	if err := caller.Call(context.Background(), "echo", "ping", &s); err != nil {
		t.Fatalf("echo: %v", err)
	}
	if s != "ping" {
		t.Fatalf("echo = %q", s)
	}
	if stats.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", stats.Rounds())
	}
	// Remote handler errors surface as call errors but keep the
	// connection usable.
	if err := caller.Call(context.Background(), "fail", 1, nil); err == nil || !strings.Contains(err.Error(), "handler exploded") {
		t.Fatalf("expected remote error, got %v", err)
	}
	if err := caller.Call(context.Background(), "double", 2, &out); err != nil || out != 4 {
		t.Fatalf("connection unusable after remote error: %v", err)
	}
}

func TestNetCallerOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	go func() { _ = Serve(context.Background(), l, echoResponder{}) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	caller := NewNetCaller(conn, NewStats())
	defer caller.Close()
	var out int
	if err := caller.Call(context.Background(), "double", 8, &out); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out != 16 {
		t.Fatalf("double(8) = %d", out)
	}
}

func TestNetCallerClosedConn(t *testing.T) {
	c1, c2 := net.Pipe()
	caller := NewNetCaller(c1, nil)
	c2.Close()
	c1.Close()
	var out int
	if err := caller.Call(context.Background(), "double", 8, &out); err == nil {
		t.Fatal("expected error on closed connection")
	}
}
