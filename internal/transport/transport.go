// Package transport carries the request/response rounds between the data
// cloud S1 and the crypto cloud S2 (Section 3.2's architecture). Every
// protocol round is one Call. The package provides:
//
//   - a Caller/Responder pair with gob serialization, so the exact wire
//     bytes are counted even for the in-process transport;
//   - Stats, the per-method byte/round accounting that regenerates the
//     paper's communication results (Table 3, Figure 13);
//   - a LinkModel that converts counted traffic into estimated latency
//     under an assumed bandwidth/RTT, mirroring Section 11.2.5's 50 Mbps
//     analysis;
//   - a framed TCP/pipe transport for running S1 and S2 as genuinely
//     separate processes.
//
// The wire protocol is versioned (ProtocolVersion); peers negotiate with
// a Hello round before issuing protocol methods, and handler errors cross
// the wire as structured (code, message) pairs so the typed error
// taxonomy of internal/secerr survives serialization: errors.Is against
// the secerr sentinels behaves identically in-process and over TCP.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/secerr"
)

// ProtocolVersion is the highest version of the S1↔S2 wire protocol this
// build speaks: the method set, the request/response gob schemas, the
// error encoding, and the framing. v2 adds frame-ID multiplexing (many
// in-flight calls per connection, per-call cancellation; see mux.go) and
// the batch envelope method; every v1 request/response schema is
// unchanged. Interop is asymmetric: a v2 listener (ServeConn) still
// serves v1 clients by sniffing for the preface, but Connect requires a
// v2 responder — a pre-v2 responder never answers the preface and the
// exchange fails fast instead of downgrading.
const ProtocolVersion = 2

// MinProtocolVersion is the oldest wire version this build still accepts
// from a connecting peer: v1 clients get the lockstep single-flight
// framing.
const MinProtocolVersion = 1

// Responder is the server side: S2 handles one method call. The context
// is the per-call (or per-connection) context; handlers use it to bound
// their own parallel fan-out.
type Responder interface {
	Serve(ctx context.Context, method string, body []byte) ([]byte, error)
}

// Caller is the client side: S1 issues one protocol round. Cancellation
// is cooperative and bounded by one round: a canceled context stops the
// call before it is issued, and transports with deadline support also
// bound the in-flight round.
type Caller interface {
	Call(ctx context.Context, method string, req, resp any) error
}

// MethodStats aggregates traffic for a single method.
type MethodStats struct {
	Calls         int64
	BytesSent     int64
	BytesReceived int64
}

// Stats aggregates traffic over a link. All methods are safe for
// concurrent use.
type Stats struct {
	mu       sync.Mutex
	total    MethodStats
	byMethod map[string]*MethodStats
}

// NewStats returns an empty counter set.
func NewStats() *Stats {
	return &Stats{byMethod: make(map[string]*MethodStats)}
}

// Record adds one round of the given method with the given payload sizes.
func (s *Stats) Record(method string, sent, received int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total.Calls++
	s.total.BytesSent += int64(sent)
	s.total.BytesReceived += int64(received)
	m := s.byMethod[method]
	if m == nil {
		m = &MethodStats{}
		s.byMethod[method] = m
	}
	m.Calls++
	m.BytesSent += int64(sent)
	m.BytesReceived += int64(received)
}

// Total returns the aggregate counters.
func (s *Stats) Total() MethodStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Rounds returns the number of request/response rounds recorded.
func (s *Stats) Rounds() int64 { return s.Total().Calls }

// Bytes returns total bytes in both directions.
func (s *Stats) Bytes() int64 {
	t := s.Total()
	return t.BytesSent + t.BytesReceived
}

// Method returns a copy of the counters for one method.
func (s *Stats) Method(name string) MethodStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.byMethod[name]; m != nil {
		return *m
	}
	return MethodStats{}
}

// Methods returns the method names seen, sorted.
func (s *Stats) Methods() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byMethod))
	for k := range s.byMethod {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total = MethodStats{}
	s.byMethod = make(map[string]*MethodStats)
}

// Snapshot returns a printable summary.
func (s *Stats) Snapshot() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b bytes.Buffer
	fmt.Fprintf(&b, "rounds=%d sent=%dB recv=%dB", s.total.Calls, s.total.BytesSent, s.total.BytesReceived)
	return b.String()
}

// LinkModel estimates wall-clock latency for counted traffic, the way
// Section 11.2.5 derives latency from bandwidth ("assuming a standard
// 50 Mbps LAN setting").
type LinkModel struct {
	BandwidthBitsPerSec float64
	RTT                 time.Duration
}

// LAN50Mbps is the link the paper assumes for Table 3.
func LAN50Mbps() LinkModel {
	return LinkModel{BandwidthBitsPerSec: 50e6, RTT: time.Millisecond}
}

// Latency returns the modeled network time for the recorded traffic.
func (l LinkModel) Latency(s *Stats) time.Duration {
	t := s.Total()
	if l.BandwidthBitsPerSec <= 0 {
		return time.Duration(t.Calls) * l.RTT
	}
	bits := float64(t.BytesSent+t.BytesReceived) * 8
	seconds := bits / l.BandwidthBitsPerSec
	return time.Duration(seconds*float64(time.Second)) + time.Duration(t.Calls)*l.RTT
}

// Local is the in-process Caller: it gob-serializes both directions (so
// the byte counts are the true wire sizes) and dispatches to the
// Responder directly.
type Local struct {
	responder Responder
	stats     *Stats
}

// NewLocal wires a Caller to a Responder in the same process. stats may be
// nil to disable accounting.
func NewLocal(r Responder, stats *Stats) *Local {
	return &Local{responder: r, stats: stats}
}

// Call implements Caller.
func (l *Local) Call(ctx context.Context, method string, req, resp any) error {
	if l.responder == nil {
		return errors.New("transport: local caller has no responder")
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("transport: %s: %w", method, err)
	}
	body, err := Encode(req)
	if err != nil {
		return secerr.Wrap(secerr.CodeTransport, err, "encoding %s request", method)
	}
	out, err := l.responder.Serve(ctx, method, body)
	if l.stats != nil {
		l.stats.Record(method, len(body), len(out))
	}
	if err != nil {
		return fmt.Errorf("transport: %s: %w", method, err)
	}
	if resp == nil {
		return nil
	}
	if err := Decode(out, resp); err != nil {
		return secerr.Wrap(secerr.CodeTransport, err, "decoding %s response", method)
	}
	return nil
}

// Encode gob-encodes a value.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes into v (a pointer).
func Decode(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
