package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/secerr"
)

// gatedResponder answers method ":" body and can hold designated methods
// until released.
type gatedResponder struct {
	mu   sync.Mutex
	gate map[string]chan struct{}
}

func newGatedResponder() *gatedResponder {
	return &gatedResponder{gate: map[string]chan struct{}{}}
}

// hold makes future calls of method block until the returned release
// function runs.
func (r *gatedResponder) hold(method string) func() {
	ch := make(chan struct{})
	r.mu.Lock()
	r.gate[method] = ch
	r.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func (r *gatedResponder) Serve(ctx context.Context, method string, body []byte) ([]byte, error) {
	r.mu.Lock()
	gate := r.gate[method]
	r.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return Encode(method + " handled")
}

// muxPair starts a negotiated v2 client/server over TCP loopback.
func muxPair(t *testing.T, responder Responder) (*MuxCaller, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = Serve(ctx, l, responder)
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	caller, err := Connect(context.Background(), conn, NewStats())
	if err != nil {
		cancel()
		t.Fatalf("Connect: %v", err)
	}
	mux, ok := caller.(*MuxCaller)
	if !ok {
		cancel()
		t.Fatalf("Connect negotiated %T, want *MuxCaller", caller)
	}
	return mux, func() {
		mux.Close()
		cancel()
		<-served
	}
}

// waitForGoroutines polls until the goroutine count drops to at most
// want, tolerating runtime stragglers for a bounded time.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines alive, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMuxConcurrentCalls drives many concurrent calls over one
// connection and checks every reply lands on its own call.
func TestMuxConcurrentCalls(t *testing.T) {
	mux, stop := muxPair(t, newGatedResponder())
	defer stop()
	const calls = 64
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			method := fmt.Sprintf("m%d", i)
			var out string
			if err := mux.Call(context.Background(), method, i, &out); err != nil {
				errs[i] = err
				return
			}
			if want := method + " handled"; out != want {
				errs[i] = fmt.Errorf("reply %q routed to %q", out, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

// TestMuxCancelOneOfN is the multiplexing contract the v1 transport
// cannot offer: canceling one of N in-flight calls abandons only that
// call's frame — its siblings complete and the connection stays usable.
func TestMuxCancelOneOfN(t *testing.T) {
	resp := newGatedResponder()
	mux, stop := muxPair(t, resp)
	defer stop()

	releaseSlow := resp.hold("slow")
	releaseStuck := resp.hold("stuck")

	const siblings = 4
	var wg sync.WaitGroup
	sibErrs := make([]error, siblings)
	for i := 0; i < siblings; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out string
			sibErrs[i] = mux.Call(context.Background(), "slow", i, &out)
		}(i)
	}

	ctx, cancel := context.WithCancel(context.Background())
	stuckDone := make(chan error, 1)
	go func() {
		var out string
		stuckDone <- mux.Call(ctx, "stuck", 0, &out)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-stuckDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled call: want context.Canceled, got %v", err)
		}
		if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "frame") {
			t.Fatalf("canceled call error does not name its frame: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled call did not return")
	}

	// The siblings must complete normally once released.
	releaseSlow()
	wg.Wait()
	for i, err := range sibErrs {
		if err != nil {
			t.Errorf("sibling %d poisoned by the canceled call: %v", i, err)
		}
	}
	// And the connection is still healthy for new calls.
	var out string
	if err := mux.Call(context.Background(), "after", 0, &out); err != nil {
		t.Fatalf("connection unusable after a canceled call: %v", err)
	}
	releaseStuck()
}

// TestMuxTeardownInFlight closes the caller with calls in flight: each
// fails promptly with a typed transport error naming its own frame, and
// no goroutine survives the teardown.
func TestMuxTeardownInFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()
	resp := newGatedResponder()
	mux, stop := muxPair(t, resp)

	release := resp.hold("held")
	defer release()
	const inflight = 3
	done := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			var out string
			done <- mux.Call(context.Background(), "held", i, &out)
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	mux.Close()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, secerr.ErrTransport) {
				t.Fatalf("in-flight call after Close: want ErrTransport, got %v", err)
			}
			if !strings.Contains(err.Error(), "held") || !strings.Contains(err.Error(), "frame") {
				t.Fatalf("teardown error does not name the failed frame: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight call hung through Close")
		}
	}
	// New calls fail fast, and Close is idempotent.
	if err := mux.Call(context.Background(), "post", 0, nil); !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("call after Close: want ErrTransport, got %v", err)
	}
	mux.Close()
	release()
	stop()
	waitForGoroutines(t, baseline)
}

// TestServeConnV1Fallback checks the sniffing server still speaks the
// lockstep v1 framing to a peer that never sends the preface.
func TestServeConnV1Fallback(t *testing.T) {
	resp := newGatedResponder()
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() { _ = ServeConn(context.Background(), c2, resp) }()
	caller := NewNetCaller(c1, nil)
	defer caller.Close()
	var out string
	if err := caller.Call(context.Background(), "legacy", 1, &out); err != nil {
		t.Fatalf("v1 caller against sniffing server: %v", err)
	}
	if out != "legacy handled" {
		t.Fatalf("v1 reply %q", out)
	}
}

// TestConnectPrefaceNoAnswer pins the fail-fast behavior against a
// responder that never answers the preface (a pre-v2 build would parse
// it as the start of a lockstep frame and wait forever): Connect must
// return a transport error when the context expires, not hang.
func TestConnectPrefaceNoAnswer(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() { // swallow the preface like a v1 readFrame would, answer nothing
		buf := make([]byte, 4)
		io.ReadFull(c2, buf)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := Connect(ctx, c1, nil)
	if err == nil {
		t.Fatal("Connect succeeded against a peer that never answered the preface")
	}
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("want a typed transport error, got %v", err)
	}
}

// TestMuxStructuredErrors checks (code, message) pairs survive the v2
// framing exactly like v1.
func TestMuxStructuredErrors(t *testing.T) {
	mux, stop := muxPair(t, codedResponder{})
	defer stop()
	err := mux.Call(context.Background(), "boom", 1, nil)
	if !errors.Is(err, secerr.ErrUnknownRelation) {
		t.Fatalf("code lost over v2 framing: %v", err)
	}
}

// TestNetCallerBrokenNamesFrame pins the satellite fix: after a canceled
// round poisons a v1 connection, the fail-fast error names which frame
// broke it, so multiplo-session operators can tell the victim from the
// culprit.
func TestNetCallerBrokenNamesFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	release := make(chan struct{})
	defer close(release)
	go func() { _ = ServeConn(context.Background(), c2, stallResponder{release: release}) }()

	caller := NewNetCaller(c1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- caller.Call(ctx, "CulpritRound", 1, nil) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	err := caller.Call(context.Background(), "VictimRound", 1, nil)
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("want ErrTransport, got %v", err)
	}
	if !strings.Contains(err.Error(), "CulpritRound") {
		t.Fatalf("broken-connection error does not name the culprit frame: %v", err)
	}
}
