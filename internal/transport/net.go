package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Frame format (both directions):
//
//	request:  uvarint(len(method)) method uvarint(len(body)) body
//	response: status byte (0 ok, 1 error) uvarint(len(payload)) payload
//
// where an error payload is the error string. One goroutine per
// connection; calls on one connection are serialized, which matches the
// strictly sequential round structure of the protocols.

const (
	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds a single frame to keep a corrupted length prefix from
// allocating unbounded memory.
const maxFrame = 1 << 30

// NetCaller is a Caller over a net.Conn (TCP loopback, unix socket, or
// net.Pipe). It is safe for concurrent use; calls are serialized.
type NetCaller struct {
	mu    sync.Mutex
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	stats *Stats
}

// NewNetCaller wraps an established connection to S2.
func NewNetCaller(conn net.Conn, stats *Stats) *NetCaller {
	return &NetCaller{
		conn:  conn,
		r:     bufio.NewReader(conn),
		w:     bufio.NewWriter(conn),
		stats: stats,
	}
}

// Call implements Caller.
func (c *NetCaller) Call(method string, req, resp any) error {
	body, err := Encode(req)
	if err != nil {
		return fmt.Errorf("transport: encoding %s request: %w", method, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, []byte(method), body); err != nil {
		return fmt.Errorf("transport: sending %s: %w", method, err)
	}
	status, payload, err := readReply(c.r)
	if err != nil {
		return fmt.Errorf("transport: receiving %s reply: %w", method, err)
	}
	if c.stats != nil {
		c.stats.Record(method, len(body)+len(method), len(payload)+1)
	}
	if status == statusErr {
		return fmt.Errorf("transport: %s: remote error: %s", method, payload)
	}
	if resp == nil {
		return nil
	}
	if err := Decode(payload, resp); err != nil {
		return fmt.Errorf("transport: decoding %s response: %w", method, err)
	}
	return nil
}

// Close closes the underlying connection.
func (c *NetCaller) Close() error { return c.conn.Close() }

func writeFrame(w *bufio.Writer, method, body []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(method)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(method); err != nil {
		return err
	}
	n = binary.PutUvarint(lenBuf[:], uint64(len(body)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (method, body []byte, err error) {
	mlen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if mlen > maxFrame {
		return nil, nil, errors.New("transport: oversized method frame")
	}
	method = make([]byte, mlen)
	if _, err := io.ReadFull(r, method); err != nil {
		return nil, nil, err
	}
	blen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if blen > maxFrame {
		return nil, nil, errors.New("transport: oversized body frame")
	}
	body = make([]byte, blen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, nil, err
	}
	return method, body, nil
}

func writeReply(w *bufio.Writer, status byte, payload []byte) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readReply(r *bufio.Reader) (status byte, payload []byte, err error) {
	status, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	plen, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	if plen > maxFrame {
		return 0, nil, errors.New("transport: oversized reply frame")
	}
	payload = make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return status, payload, nil
}

// ServeConn serves a single connection until it closes or a transport
// error occurs. Handler errors are reported to the peer, not returned.
func ServeConn(conn net.Conn, responder Responder) error {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		method, body, err := readFrame(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		out, herr := responder.Serve(string(method), body)
		if herr != nil {
			if err := writeReply(w, statusErr, []byte(herr.Error())); err != nil {
				return err
			}
			continue
		}
		if err := writeReply(w, statusOK, out); err != nil {
			return err
		}
	}
}

// Serve accepts connections from the listener and serves each in its own
// goroutine until the listener closes.
func Serve(l net.Listener, responder Responder) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = ServeConn(conn, responder)
		}()
	}
}
