package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/secerr"
)

// Frame format (both directions):
//
//	request:  uvarint(len(method)) method uvarint(len(body)) body
//	response: status byte (0 ok, 1 error) uvarint(len(payload)) payload
//
// where an error payload is the gob encoding of wireError, carrying the
// structured (code, message) pair of the typed error taxonomy. One
// goroutine per connection; calls on one connection are serialized, which
// matches the strictly sequential round structure of the protocols.

const (
	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds a single frame to keep a corrupted length prefix from
// allocating unbounded memory.
const maxFrame = 1 << 30

// wireError is the serialized form of a handler error: the secerr code
// plus the rendered message. Wrapped causes stay on the serving side.
type wireError struct {
	Code string
	Msg  string
}

// NetCaller is a Caller over a net.Conn (TCP loopback, unix socket, or
// net.Pipe). It is safe for concurrent use; calls are serialized.
type NetCaller struct {
	mu    sync.Mutex
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	stats *Stats
	// brokenBy names the method of the in-flight frame whose cancellation
	// (or I/O failure) interrupted the stream: the connection is mid-frame
	// and no further call can be framed correctly, so every later Call
	// fails fast with a typed transport error naming the frame at fault
	// instead of silently misparsing the peer's bytes.
	brokenBy string

	closeOnce sync.Once
	closeErr  error
}

// NewNetCaller wraps an established connection to S2.
func NewNetCaller(conn net.Conn, stats *Stats) *NetCaller {
	return &NetCaller{
		conn:  conn,
		r:     bufio.NewReader(conn),
		w:     bufio.NewWriter(conn),
		stats: stats,
	}
}

// Call implements Caller. A context canceled before the call starts stops
// it immediately; cancellation mid-round interrupts the in-flight I/O via
// a connection deadline, which leaves the stream mid-frame — the caller
// is then marked broken and every subsequent Call fails fast with a
// typed transport error (reconnect to recover).
func (c *NetCaller) Call(ctx context.Context, method string, req, resp any) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("transport: %s: %w", method, err)
	}
	body, err := Encode(req)
	if err != nil {
		return secerr.Wrap(secerr.CodeTransport, err, "encoding %s request", method)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.brokenBy != "" {
		return secerr.New(secerr.CodeTransport,
			"transport: %s: connection broken by an earlier interrupted %s round; reconnect", method, c.brokenBy)
	}

	// Interrupt in-flight I/O when the context fires. AfterFunc costs
	// nothing until cancellation; fired joins the interrupt body so the
	// deadline state is deterministic before the next round.
	fired := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		c.conn.SetDeadline(time.Now())
		close(fired)
	})
	finishWatch := func() {
		if !stop() {
			<-fired
			c.conn.SetDeadline(time.Time{})
		}
	}

	if err := writeFrame(c.w, []byte(method), body); err != nil {
		finishWatch()
		return c.callErr(ctx, method, "sending", err)
	}
	status, payload, err := readReply(c.r)
	finishWatch()
	if err != nil {
		return c.callErr(ctx, method, "receiving reply for", err)
	}
	if c.stats != nil {
		c.stats.Record(method, len(body)+len(method), len(payload)+1)
	}
	if status == statusErr {
		return fmt.Errorf("transport: %s: remote: %w", method, decodeWireError(payload))
	}
	if resp == nil {
		return nil
	}
	if err := Decode(payload, resp); err != nil {
		return secerr.Wrap(secerr.CodeTransport, err, "decoding %s response", method)
	}
	return nil
}

// callErr classifies an I/O failure (called with c.mu held): any failed
// round leaves the stream in an unknown framing state, so the caller is
// marked broken either way — recording which frame broke it — and if the
// context fired, surface the cancellation, otherwise wrap as a transport
// error.
func (c *NetCaller) callErr(ctx context.Context, method, verb string, err error) error {
	c.brokenBy = method
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("transport: %s: %w", method, ctxErr)
	}
	return secerr.Wrap(secerr.CodeTransport, err, "%s %s", verb, method)
}

// decodeWireError reconstructs the peer's structured error. Payloads that
// do not decode (e.g. from a pre-versioning peer) degrade to an internal
// error carrying the raw bytes as the message.
func decodeWireError(payload []byte) error {
	var we wireError
	if err := Decode(payload, &we); err != nil {
		return secerr.FromWire(string(secerr.CodeInternal), string(payload))
	}
	return secerr.FromWire(we.Code, we.Msg)
}

// Close closes the underlying connection. Safe to call more than once;
// later calls return the first result.
func (c *NetCaller) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.conn.Close() })
	return c.closeErr
}

func writeFrame(w *bufio.Writer, method, body []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(method)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(method); err != nil {
		return err
	}
	n = binary.PutUvarint(lenBuf[:], uint64(len(body)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (method, body []byte, err error) {
	mlen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if mlen > maxFrame {
		return nil, nil, errors.New("transport: oversized method frame")
	}
	method = make([]byte, mlen)
	if _, err := io.ReadFull(r, method); err != nil {
		return nil, nil, err
	}
	blen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if blen > maxFrame {
		return nil, nil, errors.New("transport: oversized body frame")
	}
	body = make([]byte, blen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, nil, err
	}
	return method, body, nil
}

func writeReply(w *bufio.Writer, status byte, payload []byte) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readReply(r *bufio.Reader) (status byte, payload []byte, err error) {
	status, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	plen, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	if plen > maxFrame {
		return 0, nil, errors.New("transport: oversized reply frame")
	}
	payload = make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return status, payload, nil
}

// ServeConn serves a single connection until it closes, the context is
// canceled, or a transport error occurs. Handler errors are reported to
// the peer as structured (code, message) pairs, not returned.
//
// The first byte decides the framing: a v2 peer opens with the multiplex
// preface (first byte 0xF7, which no v1 frame can start with) and gets
// the frame-ID multiplexed loop; everything else is served with the v1
// lockstep loop, so old peers keep working on the same listener.
func ServeConn(ctx context.Context, conn net.Conn, responder Responder) error {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	if first, err := r.Peek(1); err == nil && first[0] == muxMagic[0] {
		r.Discard(1)
		peerMax, err := readPrefaceVersion(r)
		if err != nil {
			return err
		}
		if peerMax < 2 {
			return fmt.Errorf("transport: peer sent a multiplex preface claiming v%d", peerMax)
		}
		if err := writePreface(conn); err != nil {
			return err
		}
		return serveMux(ctx, conn, r, responder)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		method, body, err := readFrame(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		out, herr := responder.Serve(ctx, string(method), body)
		if herr != nil {
			payload, err := Encode(wireError{Code: string(secerr.CodeOf(herr)), Msg: herr.Error()})
			if err != nil {
				payload = nil
			}
			if err := writeReply(w, statusErr, payload); err != nil {
				return err
			}
			continue
		}
		if err := writeReply(w, statusOK, out); err != nil {
			return err
		}
	}
}

// Serve accepts connections from the listener and serves each in its own
// goroutine until the listener closes or the context is canceled (which
// also closes the listener and every open connection).
func Serve(ctx context.Context, l net.Listener, responder Responder) error {
	return ServeWith(ctx, l, responder, ServeOptions{})
}

// ServeOptions tunes ServeWith's shutdown behavior.
type ServeOptions struct {
	// Drain, when positive, makes cancellation graceful: the listener
	// closes immediately and no new frames are read, but handlers already
	// in flight keep running (on a context that survives the
	// cancellation) and flush their replies for up to Drain before the
	// remaining connections are aborted. Zero keeps the immediate-abort
	// behavior: cancellation closes every connection at once.
	Drain time.Duration
	// NewResponder, when set, builds a fresh Responder per accepted
	// connection instead of sharing the one passed to ServeWith — for
	// protocols that carry per-connection state (e.g. the client wire's
	// negotiated tenant identity).
	NewResponder func() Responder
}

// ServeWith is Serve with explicit shutdown options. With a drain window
// configured, cancellation walks a three-step ladder: stop accepting,
// stop reading new frames (a read deadline interrupts the frame loops
// without touching in-flight handlers, whose replies still flush —
// serveMux waits for its handlers before the connection goroutine
// closes the conn), and finally — when the window closes — cancel the
// surviving handlers and tear the connections down. On a canceled
// context ServeWith returns only after every connection goroutine has
// finished, so callers know in-flight work has either completed or been
// aborted by the time it returns.
func ServeWith(ctx context.Context, l net.Listener, responder Responder, opts ServeOptions) error {
	// Handlers run on a context that survives cancellation when draining,
	// so cancellation stops frame intake without aborting work already
	// admitted; the drain timer (or ServeWith's return) cancels them.
	handlerCtx := ctx
	cancelHandlers := context.CancelFunc(func() {})
	if opts.Drain > 0 {
		handlerCtx, cancelHandlers = context.WithCancel(context.WithoutCancel(ctx))
	}
	defer cancelHandlers()

	var (
		mu         sync.Mutex
		conns      = map[net.Conn]struct{}{}
		drainTimer *time.Timer
		wg         sync.WaitGroup
	)
	closeAll := func() {
		mu.Lock()
		defer mu.Unlock()
		for conn := range conns {
			conn.Close()
		}
	}
	stop := context.AfterFunc(ctx, func() {
		l.Close()
		if opts.Drain <= 0 {
			closeAll()
			return
		}
		mu.Lock()
		defer mu.Unlock()
		for conn := range conns {
			conn.SetReadDeadline(time.Now())
		}
		drainTimer = time.AfterFunc(opts.Drain, func() {
			cancelHandlers()
			closeAll()
		})
	})
	defer stop()
	defer func() {
		if ctx.Err() != nil {
			// Bounded: read deadlines have stopped frame intake and the
			// drain timer aborts whatever outlives the window.
			wg.Wait()
		}
		mu.Lock()
		if drainTimer != nil {
			drainTimer.Stop()
		}
		mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		mu.Lock()
		conns[conn] = struct{}{}
		if ctx.Err() != nil {
			// Lost the race with the cancellation walk: apply its
			// read-deadline step here so this conn drains too.
			conn.SetReadDeadline(time.Now())
		}
		mu.Unlock()
		connResponder := responder
		if opts.NewResponder != nil {
			connResponder = opts.NewResponder()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				conn.Close()
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
			_ = ServeConn(handlerCtx, conn, connResponder)
		}()
	}
}
