package transport

import (
	"context"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/secerr"
)

// ReconnectConfig configures a ReconnectCaller.
type ReconnectConfig struct {
	// Dial establishes a new connection-backed caller (typically net.Dial
	// followed by Connect). Required.
	Dial func(ctx context.Context) (ConnCaller, error)
	// OnConnect, when non-nil, runs after each successful dial and before
	// the connection serves calls — the place for the Hello handshake and
	// any per-connection state the peer expects. A failure discards the
	// connection and counts as a failed dial attempt.
	OnConnect func(ctx context.Context, c Caller) error
	// Policy is the dial retry schedule; the zero value uses the backoff
	// package defaults (capped exponential with full jitter).
	Policy backoff.Policy
	// ConnectTimeout bounds a single dial+OnConnect attempt when the
	// caller's context carries no deadline of its own. Zero uses the
	// preface timeout.
	ConnectTimeout time.Duration
}

// ReconnectCaller is a Caller that survives connection loss: it dials
// lazily, re-dials (with capped exponential backoff and jitter) after a
// transport failure, and re-runs the OnConnect hook — the Hello
// handshake — on every fresh connection, so replaced links re-negotiate
// before serving calls.
//
// It deliberately does NOT re-issue the failed round: whether a round is
// safe to repeat is protocol knowledge (see the retry policy layer),
// while this type only knows links. A Call that fails with a transport
// code invalidates the connection; the next Call finds no connection and
// dials anew. Concurrent calls share one connection (the mux layer
// interleaves them) and dialing is single-flight.
type ReconnectCaller struct {
	cfg ReconnectConfig

	mu     sync.Mutex
	cur    ConnCaller
	gen    int // bumps per connection, so one failure invalidates once
	closed bool
}

// NewReconnectCaller builds a ReconnectCaller; it does not dial until the
// first Call.
func NewReconnectCaller(cfg ReconnectConfig) *ReconnectCaller {
	return &ReconnectCaller{cfg: cfg}
}

// dialRetryable keeps the dial loop trying through link-level failures
// but stops on a protocol-version mismatch: a peer speaking the wrong
// protocol will not start speaking the right one on the next attempt.
func dialRetryable(err error) bool {
	return secerr.CodeOf(err) != secerr.CodeProtocolVersion
}

// conn returns the live connection, dialing (with backoff) if there is
// none. The mutex is held across dialing so concurrent callers wait for
// the single in-flight dial instead of racing their own.
func (c *ReconnectCaller) conn(ctx context.Context) (ConnCaller, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, secerr.New(secerr.CodeTransport, "transport: reconnect caller closed")
	}
	if c.cur != nil {
		return c.cur, c.gen, nil
	}
	err := backoff.Retry(ctx, "dial", c.cfg.Policy, dialRetryable, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); !ok {
			timeout := c.cfg.ConnectTimeout
			if timeout <= 0 {
				timeout = prefaceTimeout
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		cc, err := c.cfg.Dial(ctx)
		if err != nil {
			return err
		}
		if c.cfg.OnConnect != nil {
			if err := c.cfg.OnConnect(ctx, cc); err != nil {
				cc.Close()
				return err
			}
		}
		c.cur = cc
		c.gen++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return c.cur, c.gen, nil
}

// invalidate drops the connection of generation gen (a no-op if a newer
// connection already replaced it, so one shared failure tears down the
// link exactly once).
func (c *ReconnectCaller) invalidate(gen int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen || c.cur == nil {
		return
	}
	c.cur.Close()
	c.cur = nil
}

// Call implements Caller: acquire (or re-establish) the connection, issue
// the round, and on a link-level failure tear the connection down so the
// next Call re-dials. The failed round's error is returned as-is — the
// layer above decides whether that round may be repeated.
func (c *ReconnectCaller) Call(ctx context.Context, method string, req, resp any) error {
	cur, gen, err := c.conn(ctx)
	if err != nil {
		return err
	}
	err = cur.Call(ctx, method, req, resp)
	if err != nil && secerr.CodeOf(err) == secerr.CodeTransport {
		c.invalidate(gen)
	}
	return err
}

// Connect establishes the connection now — dialing under the policy and
// running OnConnect — without issuing a round. Constructors use it for
// eager fail-fast validation; a plain Call would bolt one unretried
// round onto the (already retried and handshaken) dial.
func (c *ReconnectCaller) Connect(ctx context.Context) error {
	_, _, err := c.conn(ctx)
	return err
}

// Connected reports whether a live connection is currently established
// (false before the first Call and between a failure and the re-dial).
func (c *ReconnectCaller) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur != nil
}

// Close tears down the current connection, if any, and stops future
// dialing. Safe to call more than once.
func (c *ReconnectCaller) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.cur == nil {
		return nil
	}
	err := c.cur.Close()
	c.cur = nil
	return err
}
