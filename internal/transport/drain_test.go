package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// gateResponder serves "wait" by blocking until the gate opens (or its
// context dies), and "echo" immediately.
type gateResponder struct {
	gate    chan struct{}
	started chan struct{}
}

func (g *gateResponder) Serve(ctx context.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case "echo":
		return body, nil
	case "wait":
		select {
		case g.started <- struct{}{}:
		default:
		}
		select {
		case <-g.gate:
			return body, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	default:
		return nil, errors.New("unknown method")
	}
}

// startDrainServer runs ServeWith on a fresh TCP listener and returns the
// address, the cancel that begins shutdown, and the exit channel.
func startDrainServer(t *testing.T, r Responder, opts ServeOptions) (addr string, cancel context.CancelFunc, exited chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	exited = make(chan error, 1)
	done := make(chan struct{})
	go func() { exited <- ServeWith(ctx, l, r, opts); close(done) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("ServeWith did not exit during cleanup")
		}
	})
	return l.Addr().String(), cancel, exited
}

func dialMux(t *testing.T, addr string) ConnCaller {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	caller, err := Connect(context.Background(), conn, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(func() { caller.Close() })
	return caller
}

// TestServeWithDrainCompletesInFlight checks graceful shutdown: on
// cancellation the listener stops accepting, but a handler already in
// flight keeps running and its reply still reaches the client.
func TestServeWithDrainCompletesInFlight(t *testing.T) {
	r := &gateResponder{gate: make(chan struct{}), started: make(chan struct{}, 1)}
	addr, cancel, exited := startDrainServer(t, r, ServeOptions{Drain: 30 * time.Second})
	caller := dialMux(t, addr)

	inFlight := make(chan error, 1)
	go func() {
		var out []byte
		inFlight <- caller.Call(context.Background(), "wait", []byte("payload"), &out)
	}()
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never started")
	}

	cancel()

	// New connections are refused once shutdown begins (the close is
	// asynchronous, so poll briefly).
	refused := false
	for i := 0; i < 100; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			refused = true
			break
		}
		// The listener may linger a moment; a served conn would answer
		// the preface. Close and retry.
		conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Fatal("listener still accepting long after shutdown began")
	}

	select {
	case err := <-inFlight:
		t.Fatalf("in-flight call returned during drain before release: %v", err)
	default:
	}

	close(r.gate)
	select {
	case err := <-inFlight:
		if err != nil {
			t.Fatalf("in-flight call during drain: %v, want success", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call did not complete after release")
	}

	select {
	case err := <-exited:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ServeWith returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWith did not return after the drain emptied")
	}
}

// TestServeWithDrainDeadlineAborts checks the drain window is a deadline,
// not a hope: a handler that outlives it is canceled, the connection is
// torn down, and both the client and ServeWith unblock.
func TestServeWithDrainDeadlineAborts(t *testing.T) {
	r := &gateResponder{gate: make(chan struct{}), started: make(chan struct{}, 1)}
	addr, cancel, exited := startDrainServer(t, r, ServeOptions{Drain: 50 * time.Millisecond})
	caller := dialMux(t, addr)

	inFlight := make(chan error, 1)
	go func() {
		inFlight <- caller.Call(context.Background(), "wait", []byte("x"), nil)
	}()
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never started")
	}

	cancel() // gate never opens: the handler can only exit via its context

	select {
	case err := <-inFlight:
		if err == nil {
			t.Fatal("call succeeded although its handler was aborted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client call hung past the drain deadline")
	}
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWith hung past the drain deadline")
	}
}

// TestServeWithoutDrainAbortsImmediately pins the default: no drain
// window means cancellation closes connections at once and the in-flight
// call fails promptly instead of finishing.
func TestServeWithoutDrainAbortsImmediately(t *testing.T) {
	r := &gateResponder{gate: make(chan struct{}), started: make(chan struct{}, 1)}
	addr, cancel, exited := startDrainServer(t, r, ServeOptions{})
	caller := dialMux(t, addr)

	inFlight := make(chan error, 1)
	go func() {
		inFlight <- caller.Call(context.Background(), "wait", []byte("x"), nil)
	}()
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never started")
	}

	cancel()

	select {
	case err := <-inFlight:
		if err == nil {
			t.Fatal("call succeeded although the server aborted without draining")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client call hung after an immediate abort")
	}
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWith hung after an immediate abort")
	}
}
