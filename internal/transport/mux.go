package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/secerr"
	"repro/internal/telemetry"
)

// Wire protocol v2: frame-ID multiplexing.
//
// A v2 connection opens with a fixed 4-byte preface in each direction
// (magic + the highest version that side speaks); the negotiated version
// is the smaller of the two. After the preface, frames carry an explicit
// frame ID so many calls can be in flight on one connection:
//
//	request: uvarint(id) uvarint(len(method)) method uvarint(len(body)) body
//	reply:   uvarint(id) status byte uvarint(len(payload)) payload
//
// Replies may arrive in any order; the caller matches them to requests by
// ID. The preface's first byte (0xF7) can never begin a v1 request frame
// (a method-length uvarint is always < 0x80), so one listener serves both
// framings: ServeConn sniffs the first byte and falls back to the v1
// lockstep loop for peers that never send a preface.
//
// Cancellation is per call: a canceled context abandons only its own
// frame — the reply is discarded when it arrives and every other in-flight
// call proceeds undisturbed — in contrast to the v1 NetCaller, where the
// only way to interrupt a round is a connection deadline that poisons the
// whole stream. Only a genuine connection failure fails the remaining
// in-flight calls, and each of those errors names its own frame.

// muxMagic prefaces a v2 multiplexed connection. The first byte is >=
// 0x80, which no v1 request frame can start with.
var muxMagic = [3]byte{0xF7, 'S', 'K'}

// maxMuxHandlers bounds the handler goroutines ServeConn runs per
// multiplexed connection, so a peer flooding frames queues instead of
// exhausting the server.
const maxMuxHandlers = 32

// writePreface sends this side's preface: magic plus max version.
func writePreface(conn net.Conn) error {
	buf := [4]byte{muxMagic[0], muxMagic[1], muxMagic[2], byte(ProtocolVersion)}
	_, err := conn.Write(buf[:])
	return err
}

// readPrefaceVersion reads the peer's preface after the magic byte has
// already been consumed (or verified) by the caller.
func readPrefaceVersion(r io.Reader) (int, error) {
	var rest [3]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return 0, err
	}
	if rest[0] != muxMagic[1] || rest[1] != muxMagic[2] {
		return 0, errors.New("transport: malformed multiplex preface")
	}
	return int(rest[2]), nil
}

// prefaceTimeout bounds the preface exchange when the caller's context
// carries no deadline of its own: a pre-v2 responder parses the preface
// as the start of a lockstep frame and waits for more bytes, so without
// a bound both sides would hang forever.
const prefaceTimeout = 10 * time.Second

// Connect negotiates the wire framing over an established connection to
// a responder: it sends the v2 preface and, when the peer confirms,
// returns a multiplexed MuxCaller. The preface answer is itself v2
// framing, so a well-formed answer never claims an older version; a
// pre-v2 peer simply never answers, and the exchange fails with a
// transport error when the context (or the built-in preface timeout, if
// the context has no deadline) expires.
func Connect(ctx context.Context, conn net.Conn, stats *Stats) (ConnCaller, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: connect: %w", err)
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, prefaceTimeout)
		defer cancel()
	}
	// Bound the whole exchange — the preface write and both reads — with a
	// connection deadline set up front, not armed only at cancellation:
	// arming on cancel leaves each individual I/O unbounded if the watcher
	// goroutine loses its race with a blocking read, whereas an upfront
	// deadline makes every step of the exchange expire together.
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	fired := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Now())
		close(fired)
	})
	defer func() {
		if !stop() {
			<-fired
		}
		conn.SetDeadline(time.Time{})
	}()
	if err := writePreface(conn); err != nil {
		return nil, secerr.Wrap(secerr.CodeTransport, err, "sending multiplex preface")
	}
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return nil, secerr.Wrap(secerr.CodeTransport, err, "reading multiplex preface (a peer that predates wire v2 never answers it)")
	}
	if first[0] != muxMagic[0] {
		return nil, secerr.New(secerr.CodeTransport, "transport: peer did not answer the multiplex preface")
	}
	ver, err := readPrefaceVersion(conn)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeTransport, err, "reading multiplex preface")
	}
	if ver < 2 {
		return nil, secerr.New(secerr.CodeProtocolVersion,
			"transport: peer answered the multiplex preface claiming v%d, this side v%d..v%d", ver, MinProtocolVersion, ProtocolVersion)
	}
	return NewMuxCaller(conn, stats), nil
}

// ConnCaller is a Caller bound to a connection it can close.
type ConnCaller interface {
	Caller
	Close() error
}

// muxPending is one in-flight call awaiting its reply frame.
type muxPending struct {
	id     uint64
	method string
	ch     chan muxReply // buffered: the reader never blocks on delivery
}

type muxReply struct {
	status  byte
	payload []byte
	err     error
}

// MuxCaller is the v2 multiplexed Caller: any number of calls may be in
// flight concurrently on one connection, matched to replies by frame ID.
// It is safe for concurrent use. A canceled call abandons only its own
// frame (the connection stays healthy); a connection failure fails every
// in-flight call with an error naming that call's frame.
type MuxCaller struct {
	conn  net.Conn
	w     *bufio.Writer
	wmu   sync.Mutex // serializes frame writes
	stats *Stats

	mu      sync.Mutex
	pending map[uint64]*muxPending
	nextID  uint64
	dead    error // terminal connection error, set once

	closeOnce sync.Once
	closeErr  error
}

// NewMuxCaller wraps an established connection whose peer already
// confirmed wire v2 (see Connect) and starts the reply reader.
func NewMuxCaller(conn net.Conn, stats *Stats) *MuxCaller {
	c := &MuxCaller{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		stats:   stats,
		pending: make(map[uint64]*muxPending),
	}
	go c.readLoop()
	return c
}

// readLoop dispatches reply frames to their pending calls until the
// connection dies; unknown IDs (abandoned calls) are discarded.
func (c *MuxCaller) readLoop() {
	r := bufio.NewReader(c.conn)
	for {
		id, status, payload, err := readMuxReply(r)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		p := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if p == nil {
			continue // canceled call; its reply is dropped
		}
		p.ch <- muxReply{status: status, payload: payload}
	}
}

// fail marks the connection dead and fails every in-flight call with an
// error naming its own frame, so callers know exactly which call was cut
// off (and that the link, not their request, is at fault).
func (c *MuxCaller) fail(cause error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = cause
	} else {
		cause = c.dead
	}
	pending := c.pending
	c.pending = make(map[uint64]*muxPending)
	c.mu.Unlock()
	for _, p := range pending {
		p.ch <- muxReply{err: secerr.Wrap(secerr.CodeTransport, cause,
			"%s (frame %d): connection lost", p.method, p.id)}
	}
}

// Call implements Caller. Calls are issued concurrently; cancellation
// abandons only this call's frame and leaves the connection usable.
func (c *MuxCaller) Call(ctx context.Context, method string, req, resp any) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("transport: %s: %w", method, err)
	}
	body, err := Encode(req)
	if err != nil {
		return secerr.Wrap(secerr.CodeTransport, err, "encoding %s request", method)
	}
	start := time.Now()
	c.mu.Lock()
	if c.dead != nil {
		dead := c.dead
		c.mu.Unlock()
		return secerr.Wrap(secerr.CodeTransport, dead, "%s: connection lost", method)
	}
	id := c.nextID
	c.nextID++
	p := &muxPending{id: id, method: method, ch: make(chan muxReply, 1)}
	c.pending[id] = p
	c.mu.Unlock()

	c.wmu.Lock()
	werr := writeMuxFrame(c.w, id, []byte(method), body)
	c.wmu.Unlock()
	if werr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// A failed frame write leaves the stream mid-frame: the connection
		// is unusable for everyone, so fail the rest too.
		c.fail(werr)
		emitCallerFrame(method, id, len(body)+len(method), string(secerr.CodeTransport), start)
		return secerr.Wrap(secerr.CodeTransport, werr, "sending %s (frame %d)", method, id)
	}

	select {
	case rep := <-p.ch:
		if rep.err != nil {
			emitCallerFrame(method, id, len(body)+len(method), string(secerr.CodeOf(rep.err)), start)
			return rep.err
		}
		if c.stats != nil {
			c.stats.Record(method, len(body)+len(method), len(rep.payload)+1)
		}
		if rep.status == statusErr {
			rerr := decodeWireError(rep.payload)
			emitCallerFrame(method, id, len(body)+len(method)+len(rep.payload)+1, string(secerr.CodeOf(rerr)), start)
			return fmt.Errorf("transport: %s: remote: %w", method, rerr)
		}
		emitCallerFrame(method, id, len(body)+len(method)+len(rep.payload)+1, "", start)
		if resp == nil {
			return nil
		}
		if err := Decode(rep.payload, resp); err != nil {
			return secerr.Wrap(secerr.CodeTransport, err, "decoding %s response", method)
		}
		return nil
	case <-ctx.Done():
		// Abandon this frame only: deregister so the reader discards the
		// late reply. Every other in-flight call proceeds undisturbed.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		emitCallerFrame(method, id, len(body)+len(method), "canceled", start)
		return fmt.Errorf("transport: %s (frame %d): %w", method, id, ctx.Err())
	}
}

// emitCallerFrame records one resolved caller-side frame into the
// telemetry layer (metrics plus any registered trace sinks).
func emitCallerFrame(method string, id uint64, bytes int, code string, start time.Time) {
	telemetry.EmitFrame(telemetry.FrameEvent{
		Side: "caller", Method: method, Frame: id,
		Bytes: bytes, Code: code, Elapsed: time.Since(start),
	})
}

// Close tears the connection down: in-flight calls fail promptly with a
// typed transport error naming their frames. Safe to call more than once.
func (c *MuxCaller) Close() error {
	c.closeOnce.Do(func() {
		c.fail(secerr.New(secerr.CodeTransport, "transport: caller closed"))
		c.closeErr = c.conn.Close()
	})
	return c.closeErr
}

func writeMuxFrame(w *bufio.Writer, id uint64, method, body []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], id)
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	return writeFrame(w, method, body)
}

func readMuxFrame(r *bufio.Reader) (id uint64, method, body []byte, err error) {
	id, err = binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, nil, err
	}
	method, body, err = readFrame(r)
	return id, method, body, err
}

func writeMuxReply(w *bufio.Writer, id uint64, status byte, payload []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], id)
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	return writeReply(w, status, payload)
}

func readMuxReply(r *bufio.Reader) (id uint64, status byte, payload []byte, err error) {
	id, err = binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	status, payload, err = readReply(r)
	return id, status, payload, err
}

// serveMux serves one negotiated v2 connection: every request frame is
// handled on its own goroutine (bounded by maxMuxHandlers) so slow
// handlers never block unrelated frames; replies are written under a
// mutex in completion order.
func serveMux(ctx context.Context, conn net.Conn, r *bufio.Reader, responder Responder) error {
	w := bufio.NewWriter(conn)
	var wmu sync.Mutex
	sem := make(chan struct{}, maxMuxHandlers)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		id, method, body, err := readMuxFrame(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			out, herr := responder.Serve(ctx, string(method), body)
			status := byte(statusOK)
			payload := out
			code := ""
			if herr != nil {
				status = statusErr
				code = string(secerr.CodeOf(herr))
				payload, _ = Encode(wireError{Code: code, Msg: herr.Error()})
			}
			telemetry.EmitFrame(telemetry.FrameEvent{
				Side: "server", Method: string(method), Frame: id,
				Bytes: len(method) + len(body) + len(payload), Code: code, Elapsed: time.Since(start),
			})
			wmu.Lock()
			werr := writeMuxReply(w, id, status, payload)
			wmu.Unlock()
			if werr != nil {
				// The reply stream is mid-frame; close the connection so
				// the read loop (and the peer) observe the failure.
				conn.Close()
			}
		}()
	}
}
