package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/secerr"
)

// scriptedCaller is a ConnCaller whose next failures are scripted.
type scriptedCaller struct {
	mu     sync.Mutex
	fails  []error // consumed one per Call; nil entries succeed
	calls  int
	closed bool
}

func (s *scriptedCaller) Call(context.Context, string, any, any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if len(s.fails) == 0 {
		return nil
	}
	err := s.fails[0]
	s.fails = s.fails[1:]
	return err
}

func (s *scriptedCaller) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *scriptedCaller) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// fastPolicy keeps reconnect tests quick and deterministic.
var fastPolicy = backoff.Policy{Initial: time.Millisecond, Max: time.Millisecond, Jitter: -1}

// TestReconnectRedialsAfterTransportFailure checks a transport-coded call
// failure tears down the connection (closing it) and the next Call dials
// a fresh one, re-running OnConnect.
func TestReconnectRedialsAfterTransportFailure(t *testing.T) {
	first := &scriptedCaller{fails: []error{secerr.New(secerr.CodeTransport, "link died")}}
	second := &scriptedCaller{}
	callers := []*scriptedCaller{first, second}
	var dials, hellos atomic.Int32
	rc := NewReconnectCaller(ReconnectConfig{
		Dial: func(context.Context) (ConnCaller, error) {
			return callers[dials.Add(1)-1], nil
		},
		OnConnect: func(context.Context, Caller) error { hellos.Add(1); return nil },
		Policy:    fastPolicy,
	})
	defer rc.Close()

	err := rc.Call(context.Background(), "m", nil, nil)
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("first call: %v, want the transport failure surfaced (not retried here)", err)
	}
	if !first.isClosed() {
		t.Fatal("failed connection not closed")
	}
	if err := rc.Call(context.Background(), "m", nil, nil); err != nil {
		t.Fatalf("call after redial: %v", err)
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2", got)
	}
	if got := hellos.Load(); got != 2 {
		t.Fatalf("OnConnect runs = %d, want one per connection (2)", got)
	}
}

// TestReconnectPeerErrorKeepsConnection checks a peer-reported (non
// transport) error does not tear the connection down.
func TestReconnectPeerErrorKeepsConnection(t *testing.T) {
	c := &scriptedCaller{fails: []error{secerr.New(secerr.CodeUnknownRelation, "no such relation")}}
	var dials atomic.Int32
	rc := NewReconnectCaller(ReconnectConfig{
		Dial:   func(context.Context) (ConnCaller, error) { dials.Add(1); return c, nil },
		Policy: fastPolicy,
	})
	defer rc.Close()
	if err := rc.Call(context.Background(), "m", nil, nil); !errors.Is(err, secerr.ErrUnknownRelation) {
		t.Fatalf("call: %v, want the peer error surfaced", err)
	}
	if err := rc.Call(context.Background(), "m", nil, nil); err != nil {
		t.Fatalf("second call: %v", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1 (peer errors keep the link)", got)
	}
}

// TestReconnectDialBackoff checks dialing retries transient failures with
// the policy and eventually succeeds.
func TestReconnectDialBackoff(t *testing.T) {
	var dials atomic.Int32
	rc := NewReconnectCaller(ReconnectConfig{
		Dial: func(context.Context) (ConnCaller, error) {
			if dials.Add(1) < 3 {
				return nil, secerr.New(secerr.CodeTransport, "connection refused")
			}
			return &scriptedCaller{}, nil
		},
		Policy: fastPolicy,
	})
	defer rc.Close()
	if err := rc.Call(context.Background(), "m", nil, nil); err != nil {
		t.Fatalf("call: %v", err)
	}
	if got := dials.Load(); got != 3 {
		t.Fatalf("dials = %d, want 3", got)
	}
}

// TestReconnectDialNonRetryable checks a protocol-version mismatch stops
// the dial loop immediately with the attempt history attached.
func TestReconnectDialNonRetryable(t *testing.T) {
	var dials atomic.Int32
	rc := NewReconnectCaller(ReconnectConfig{
		Dial: func(context.Context) (ConnCaller, error) {
			dials.Add(1)
			return nil, secerr.New(secerr.CodeProtocolVersion, "peer speaks v1")
		},
		Policy: fastPolicy,
	})
	defer rc.Close()
	err := rc.Call(context.Background(), "m", nil, nil)
	if !errors.Is(err, secerr.ErrProtocolVersion) {
		t.Fatalf("call: %v, want protocol version error", err)
	}
	var ex *backoff.ExhaustedError
	if !errors.As(err, &ex) || ex.GaveUp != "non-retryable" {
		t.Fatalf("err = %v, want non-retryable ExhaustedError with history", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1", got)
	}
}

// TestReconnectOnConnectFailureDiscardsConn checks an OnConnect (Hello)
// failure closes the fresh connection and counts as a failed attempt.
func TestReconnectOnConnectFailureDiscardsConn(t *testing.T) {
	bad := &scriptedCaller{}
	good := &scriptedCaller{}
	var dials atomic.Int32
	rc := NewReconnectCaller(ReconnectConfig{
		Dial: func(context.Context) (ConnCaller, error) {
			if dials.Add(1) == 1 {
				return bad, nil
			}
			return good, nil
		},
		OnConnect: func(_ context.Context, c Caller) error {
			if c == ConnCaller(bad) {
				return secerr.New(secerr.CodeTransport, "hello failed")
			}
			return nil
		},
		Policy: fastPolicy,
	})
	defer rc.Close()
	if err := rc.Call(context.Background(), "m", nil, nil); err != nil {
		t.Fatalf("call: %v", err)
	}
	if !bad.isClosed() {
		t.Fatal("connection whose Hello failed was not closed")
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2", got)
	}
}

// TestReconnectConcurrentSingleFlight checks concurrent calls share one
// dialed connection instead of racing their own dials.
func TestReconnectConcurrentSingleFlight(t *testing.T) {
	c := &scriptedCaller{}
	var dials atomic.Int32
	rc := NewReconnectCaller(ReconnectConfig{
		Dial: func(context.Context) (ConnCaller, error) {
			dials.Add(1)
			time.Sleep(5 * time.Millisecond) // widen the race window
			return c, nil
		},
		Policy: fastPolicy,
	})
	defer rc.Close()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rc.Call(context.Background(), "m", nil, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1 (single-flight)", got)
	}
}

// TestReconnectClose checks a closed caller refuses to dial again and
// fails fast with a transport code.
func TestReconnectClose(t *testing.T) {
	c := &scriptedCaller{}
	var dials atomic.Int32
	rc := NewReconnectCaller(ReconnectConfig{
		Dial:   func(context.Context) (ConnCaller, error) { dials.Add(1); return c, nil },
		Policy: fastPolicy,
	})
	if err := rc.Call(context.Background(), "m", nil, nil); err != nil {
		t.Fatalf("call: %v", err)
	}
	if !rc.Connected() {
		t.Fatal("Connected() = false with a live connection")
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !c.isClosed() {
		t.Fatal("Close did not close the live connection")
	}
	if err := rc.Call(context.Background(), "m", nil, nil); !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("call after Close: %v, want transport code", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1 (no dialing after Close)", got)
	}
}
