package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/secerr"
)

// stallResponder never answers, simulating a hung peer.
type stallResponder struct{ release chan struct{} }

func (s stallResponder) Serve(ctx context.Context, method string, body []byte) ([]byte, error) {
	select {
	case <-s.release:
	case <-ctx.Done():
	}
	return nil, errors.New("stalled")
}

// TestNetCallerCancelMidRound cancels a context while the call is blocked
// waiting for the reply: the call must return the context error promptly
// instead of hanging on the read.
func TestNetCallerCancelMidRound(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	release := make(chan struct{})
	defer close(release)
	go func() { _ = ServeConn(context.Background(), c2, stallResponder{release: release}) }()

	caller := NewNetCaller(c1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- caller.Call(ctx, "stall", 1, nil) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call did not return after cancellation")
	}
	// The stream is mid-frame now: later calls must fail fast with a
	// typed transport error rather than misparse the abandoned reply.
	err := caller.Call(context.Background(), "next", 1, nil)
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("call on broken connection: want ErrTransport, got %v", err)
	}
}

// TestNetCallerPreCanceled rejects a dead context before any I/O.
func TestNetCallerPreCanceled(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	caller := NewNetCaller(c1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := caller.Call(ctx, "x", 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestNetCallerDoubleClose checks Close is idempotent.
func TestNetCallerDoubleClose(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	caller := NewNetCaller(c1, nil)
	if err := caller.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := caller.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestStructuredWireError checks the (code, message) error encoding
// round-trips through the framed transport.
func TestStructuredWireError(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		_ = ServeConn(context.Background(), c2, codedResponder{})
	}()
	caller := NewNetCaller(c1, nil)
	err := caller.Call(context.Background(), "boom", 1, nil)
	if !errors.Is(err, secerr.ErrUnknownRelation) {
		t.Fatalf("code lost over the wire: %v", err)
	}
	if got := secerr.CodeOf(err); got != secerr.CodeUnknownRelation {
		t.Fatalf("CodeOf = %q", got)
	}
}

type codedResponder struct{}

func (codedResponder) Serve(ctx context.Context, method string, body []byte) ([]byte, error) {
	return nil, secerr.New(secerr.CodeUnknownRelation, "relation %q not registered", "ghost")
}
