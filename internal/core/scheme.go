// Package core implements SecTopK = (Enc, Token, SecQuery), the paper's
// primary contribution (Definition 4.1): adaptively CQA-secure top-k
// query processing over an encrypted relation in the two non-colluding
// clouds model.
//
//   - Scheme is the data owner: it generates keys, encrypts relations
//     (Algorithm 2), issues query tokens (Section 7), and — standing in
//     for authorized clients — reveals returned results.
//   - Engine is the data cloud S1: it runs SecQuery (Algorithm 3) against
//     the crypto cloud S2 in its three evaluated variants Qry_F, Qry_E,
//     Qry_Ba.
package core

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/prf"
	"repro/internal/protocols"
)

// Params configures the scheme.
type Params struct {
	// KeyBits is the Paillier modulus size. The paper's evaluation uses a
	// small modulus (32-byte ciphertexts, Section 11.2.5); tests use 256,
	// production should use 2048+.
	KeyBits int
	// EHL selects the encrypted-hash-list structure (EHL+ by default).
	EHL ehl.Params
	// MaxScoreBits bounds a single attribute value: scores must lie in
	// [0, 2^MaxScoreBits). Used to size comparison masks.
	MaxScoreBits int
	// Parallelism bounds the data owner's encryption workers (0 = all
	// cores, 1 = serial), matching the knob convention of the cloud and
	// engine layers.
	Parallelism int
	// FastNonce opts the owner's bulk encryption into the short-exponent
	// fixed-base nonce path (paillier.FastEncryptor). Off by default: it
	// rests on the short-exponent/subgroup assumption (see DESIGN.md
	// "Precomputation fast paths"). When off, the owner still uses the
	// assumption-free CRT split — it holds the private key — which is
	// bit-compatible with the spec path.
	FastNonce bool
}

// DefaultParams returns the evaluation configuration: EHL+ with s = 5 and
// 20-bit scores.
func DefaultParams() Params {
	return Params{KeyBits: 512, EHL: ehl.DefaultPlusParams(), MaxScoreBits: 20}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.KeyBits < paillier.MinKeyBits {
		return fmt.Errorf("core: KeyBits %d below minimum %d", p.KeyBits, paillier.MinKeyBits)
	}
	if err := p.EHL.Validate(); err != nil {
		return err
	}
	if p.MaxScoreBits <= 0 || p.MaxScoreBits >= p.KeyBits/2 {
		return fmt.Errorf("core: MaxScoreBits %d out of range for %d-bit keys", p.MaxScoreBits, p.KeyBits)
	}
	return nil
}

// Scheme holds the data owner's key material.
type Scheme struct {
	params  Params
	keys    *cloud.KeyMaterial
	master  prf.Key // EHL master key (kappa_1..kappa_s derive from it)
	permKey prf.Key // PRP key K for list permutation
	hasher  *ehl.Hasher
	// enc is the owner's bulk-encryption surface: the CRT nonce split by
	// default (the owner holds the factorization), the fast-nonce table
	// when Params.FastNonce is set.
	enc paillier.Encryptor
}

// ownerEncryptor picks the owner's encryption surface for the params.
func ownerEncryptor(params Params, keys *cloud.KeyMaterial) (paillier.Encryptor, error) {
	if params.FastNonce {
		return paillier.NewFastEncryptor(&keys.Paillier.PublicKey, 0)
	}
	return keys.Paillier.CRTEncryptor(), nil
}

// NewScheme generates fresh key material.
func NewScheme(params Params) (*Scheme, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	keys, err := cloud.NewKeyMaterial(params.KeyBits)
	if err != nil {
		return nil, err
	}
	return NewSchemeFromKeys(params, keys)
}

// NewSchemeFromKeys builds a scheme over existing key material (so tests
// and benchmarks can share one expensive key pair).
func NewSchemeFromKeys(params Params, keys *cloud.KeyMaterial) (*Scheme, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if keys == nil || keys.Paillier == nil {
		return nil, errors.New("core: missing key material")
	}
	master, err := prf.NewKey()
	if err != nil {
		return nil, err
	}
	permKey, err := prf.NewKey()
	if err != nil {
		return nil, err
	}
	hasher, err := ehl.NewHasher(master, params.EHL, &keys.Paillier.PublicKey)
	if err != nil {
		return nil, err
	}
	enc, err := ownerEncryptor(params, keys)
	if err != nil {
		return nil, err
	}
	return &Scheme{params: params, keys: keys, master: master, permKey: permKey, hasher: hasher, enc: enc}, nil
}

// Secrets carries the owner's symmetric secrets: the EHL master key the
// kappa_i derive from and the PRP key K. Together with the Paillier key
// material they fully determine the scheme, so an owner can persist and
// restore it (and authorized clients can be provisioned for token
// generation and result revealing).
type Secrets struct {
	Master prf.Key
	Perm   prf.Key
}

// Secrets exports the owner's symmetric secrets.
func (s *Scheme) Secrets() Secrets {
	return Secrets{
		Master: append(prf.Key(nil), s.master...),
		Perm:   append(prf.Key(nil), s.permKey...),
	}
}

// RestoreScheme rebuilds a scheme from persisted key material and
// secrets; encryptions, tokens, and revealers produced by the original
// scheme remain valid.
func RestoreScheme(params Params, keys *cloud.KeyMaterial, secrets Secrets) (*Scheme, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if keys == nil || keys.Paillier == nil {
		return nil, errors.New("core: missing key material")
	}
	if len(secrets.Master) == 0 || len(secrets.Perm) == 0 {
		return nil, errors.New("core: missing scheme secrets")
	}
	hasher, err := ehl.NewHasher(secrets.Master, params.EHL, &keys.Paillier.PublicKey)
	if err != nil {
		return nil, err
	}
	enc, err := ownerEncryptor(params, keys)
	if err != nil {
		return nil, err
	}
	return &Scheme{
		params:  params,
		keys:    keys,
		master:  append(prf.Key(nil), secrets.Master...),
		permKey: append(prf.Key(nil), secrets.Perm...),
		hasher:  hasher,
		enc:     enc,
	}, nil
}

// Params returns the scheme parameters.
func (s *Scheme) Params() Params { return s.params }

// KeyMaterial returns the secret keys the data owner provisions to the
// crypto cloud S2 (Algorithm 2 line 10).
func (s *Scheme) KeyMaterial() *cloud.KeyMaterial { return s.keys }

// PublicKey returns the Paillier public key (provisioned to S1).
func (s *Scheme) PublicKey() *paillier.PublicKey { return &s.keys.Paillier.PublicKey }

// EncItem is one encrypted data item E(I) = <EHL(o), Enc(x)> (Section 6).
type EncItem struct {
	EHL   *ehl.List
	Score *paillier.Ciphertext
}

// EncryptedRelation is the outsourced ER: M permuted sorted lists of
// encrypted items. Beyond n and M it reveals nothing (Theorem 6.1).
type EncryptedRelation struct {
	Name      string
	N, M      int
	EHLParams ehl.Params
	// MaxScoreBits is the public bound on attribute magnitudes (schema
	// metadata the engine needs to size comparison masks).
	MaxScoreBits int
	// Lists[p] is the encrypted sorted list stored at permuted position p.
	Lists [][]EncItem
}

// ByteSize returns the serialized size of the encrypted relation, for the
// storage-overhead experiments (Figures 7b/8b).
func (er *EncryptedRelation) ByteSize(pk *paillier.PublicKey) int64 {
	var total int64
	for _, list := range er.Lists {
		for _, it := range list {
			total += int64(it.EHL.ByteSize(pk)) + int64(pk.ByteLen())
		}
	}
	return total
}

// EncryptRelation implements Enc (Algorithm 2): sort each attribute list
// descending, encrypt ids with EHL and scores with Paillier, and permute
// the lists with the PRP P_K. Encryption parallelizes across items the
// way the paper's 64-thread setup does, bounded by Params.Parallelism.
func (s *Scheme) EncryptRelation(rel *dataset.Relation) (*EncryptedRelation, error) {
	return s.EncryptRelationWithIDs(rel, nil)
}

// EncryptRelationWithIDs is EncryptRelation with explicit object ids:
// ids[i] is the identity encrypted into row i's EHL (nil means row index,
// the single-relation behavior). Shard encryption uses it so every shard
// of one relation carries globally unique ids under the shared EHL keys —
// digests stay collision-free across shards and one Revealer resolves any
// shard's results. Ties in a sorted list break on the global id, so a
// sharded encryption orders rows exactly like the unsharded one.
func (s *Scheme) EncryptRelationWithIDs(rel *dataset.Relation, ids []int) (*EncryptedRelation, error) {
	if rel == nil {
		return nil, errors.New("core: nil relation")
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if max := rel.MaxScore(); max >= 1<<uint(s.params.MaxScoreBits) {
		return nil, fmt.Errorf("core: score %d exceeds MaxScoreBits=%d", max, s.params.MaxScoreBits)
	}
	if ids != nil && len(ids) != rel.N() {
		return nil, fmt.Errorf("core: %d ids for %d rows", len(ids), rel.N())
	}
	gid := func(row int) int {
		if ids == nil {
			return row
		}
		return ids[row]
	}
	n, m := rel.N(), rel.M()
	attrs := make([]int, m)
	for j := range attrs {
		attrs[j] = j
	}
	lists, err := sortedPlainLists(rel, attrs, gid)
	if err != nil {
		return nil, err
	}
	perm, err := prf.NewPerm(s.permKey, m)
	if err != nil {
		return nil, err
	}
	er := &EncryptedRelation{
		Name: rel.Name, N: n, M: m,
		EHLParams:    s.params.EHL,
		MaxScoreBits: s.params.MaxScoreBits,
		Lists:        make([][]EncItem, m),
	}

	permuted := make([]int, m)
	for j := 0; j < m; j++ {
		pj, err := perm.Apply(j)
		if err != nil {
			return nil, err
		}
		permuted[j] = pj
		er.Lists[pj] = make([]EncItem, n)
	}
	// One job per (list, depth) cell on the shared worker substrate; each
	// cell owns its output slot, so no synchronization is needed.
	err = parallel.ForEach(s.params.Parallelism, m*n, func(idx int) error {
		j, d := idx/n, idx%n
		entry := lists[j][d]
		l, err := s.hasher.Build(uint64(gid(entry.obj)))
		if err != nil {
			return err
		}
		ct, err := s.enc.Encrypt(big.NewInt(entry.score))
		if err != nil {
			return err
		}
		er.Lists[permuted[j]][d] = EncItem{EHL: l, Score: ct}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: encrypting relation: %w", err)
	}
	return er, nil
}

// EncryptEntry encrypts a single (object id, score) cell under the
// scheme keys: EHL(id) plus Enc(score). It is the unit the mutation
// plane builds deltas from — a fresh row contributes one EncryptEntry
// per attribute list, bit-compatible with what EncryptRelationWithIDs
// would have produced for the same id at the same position.
func (s *Scheme) EncryptEntry(id int, score int64) (EncItem, error) {
	if id < 0 {
		return EncItem{}, fmt.Errorf("core: negative object id %d", id)
	}
	if score < 0 || score >= 1<<uint(s.params.MaxScoreBits) {
		return EncItem{}, fmt.Errorf("core: score %d out of range [0, 2^%d)", score, s.params.MaxScoreBits)
	}
	l, err := s.hasher.Build(uint64(id))
	if err != nil {
		return EncItem{}, err
	}
	ct, err := s.enc.Encrypt(big.NewInt(score))
	if err != nil {
		return EncItem{}, err
	}
	return EncItem{EHL: l, Score: ct}, nil
}

// PermutedPositions maps each attribute j in [0, m) to the permuted
// list position P_K(j), i.e. out[j] is the stored index of attribute
// j's sorted list. Delta construction needs the full mapping to place
// per-attribute entries into the permuted list layout.
func (s *Scheme) PermutedPositions(m int) ([]int, error) {
	perm, err := prf.NewPerm(s.permKey, m)
	if err != nil {
		return nil, err
	}
	out := make([]int, m)
	for j := 0; j < m; j++ {
		if out[j], err = perm.Apply(j); err != nil {
			return nil, err
		}
	}
	return out, nil
}

type plainEntry struct {
	obj   int
	score int64
}

func sortedPlainLists(rel *dataset.Relation, attrs []int, gid func(int) int) ([][]plainEntry, error) {
	out := make([][]plainEntry, len(attrs))
	for li, a := range attrs {
		list := make([]plainEntry, rel.N())
		for i := 0; i < rel.N(); i++ {
			list[i] = plainEntry{obj: i, score: rel.Rows[i][a]}
		}
		// Descending by score, ties by (global) object id (deterministic).
		sort.Slice(list, func(x, y int) bool {
			if list[x].score != list[y].score {
				return list[x].score > list[y].score
			}
			return gid(list[x].obj) < gid(list[y].obj)
		})
		out[li] = list
	}
	return out, nil
}

// Token is the query trapdoor of Section 7: the permuted list positions
// for the queried attributes, optional weights, and k.
type Token struct {
	K       int
	Lists   []int
	Weights []int64
}

// Token implements Token(K, q): map the queried attribute set through the
// PRP. Non-binary weights ride along for S1 to apply via scalar
// multiplication (Section 7).
func (s *Scheme) Token(er *EncryptedRelation, attrs []int, weights []int64, k int) (*Token, error) {
	if er == nil {
		return nil, errors.New("core: nil encrypted relation")
	}
	return s.TokenFor(er.N, er.M, attrs, weights, k)
}

// TokenFor is Token against explicit relation dimensions instead of a
// materialized EncryptedRelation — the sharded facade validates against
// the global (n, m) while each shard only materializes its own slice.
// The PRP depends only on m and the owner's key, so one token is valid
// for every shard of the relation.
func (s *Scheme) TokenFor(n, m int, attrs []int, weights []int64, k int) (*Token, error) {
	if len(attrs) == 0 {
		return nil, errors.New("core: no attributes in query")
	}
	if weights != nil && len(weights) != len(attrs) {
		return nil, fmt.Errorf("core: %d weights for %d attributes", len(weights), len(attrs))
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("core: k=%d out of range (1..%d)", k, n)
	}
	perm, err := prf.NewPerm(s.permKey, m)
	if err != nil {
		return nil, err
	}
	tk := &Token{K: k}
	seen := map[int]bool{}
	for _, a := range attrs {
		if a < 0 || a >= m {
			return nil, fmt.Errorf("core: attribute %d out of range [0,%d)", a, m)
		}
		if seen[a] {
			return nil, fmt.Errorf("core: duplicate attribute %d in query", a)
		}
		seen[a] = true
		p, err := perm.Apply(a)
		if err != nil {
			return nil, err
		}
		tk.Lists = append(tk.Lists, p)
	}
	if weights != nil {
		for _, w := range weights {
			if w < 0 {
				return nil, fmt.Errorf("core: negative weight %d (monotone scoring requires w >= 0)", w)
			}
		}
		tk.Weights = append([]int64(nil), weights...)
	}
	return tk, nil
}

// Revealer maps decrypted EHL digests back to object ids. Only key
// holders (the data owner and authorized clients) can build one.
type Revealer struct {
	sk     *paillier.PrivateKey
	byHex  map[string]int
	hasher *ehl.Hasher
}

// digestKey canonically encodes a full digest vector. Keying on the whole
// vector matters for the classic EHL, where a single slot is just a bit.
func digestKey(digests []*big.Int) string {
	var b strings.Builder
	for _, d := range digests {
		b.WriteString(hex.EncodeToString(d.Bytes()))
		b.WriteByte('|')
	}
	return b.String()
}

// NewRevealer precomputes the digest table for objects 0..n-1.
func (s *Scheme) NewRevealer(n int) (*Revealer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: revealer needs positive n, got %d", n)
	}
	r := &Revealer{sk: s.keys.Paillier, byHex: make(map[string]int, n), hasher: s.hasher}
	for i := 0; i < n; i++ {
		d, err := s.hasher.Digests(uint64(i))
		if err != nil {
			return nil, err
		}
		r.byHex[digestKey(d)] = i
	}
	return r, nil
}

// Object decrypts an EHL's digest vector and resolves the object id.
func (r *Revealer) Object(l *ehl.List) (int, error) {
	if l == nil || len(l.Cts) == 0 {
		return 0, errors.New("core: empty EHL")
	}
	digests := make([]*big.Int, len(l.Cts))
	for i, ct := range l.Cts {
		d, err := r.sk.Decrypt(ct)
		if err != nil {
			return 0, err
		}
		digests[i] = d
	}
	obj, ok := r.byHex[digestKey(digests)]
	if !ok {
		return 0, errors.New("core: digest does not match any object (sentinel row?)")
	}
	return obj, nil
}

// Score decrypts a score ciphertext under the signed interpretation.
func (r *Revealer) Score(ct *paillier.Ciphertext) (int64, error) {
	m, err := r.sk.DecryptSigned(ct)
	if err != nil {
		return 0, err
	}
	if !m.IsInt64() {
		return 0, fmt.Errorf("core: score %v overflows int64", m)
	}
	return m.Int64(), nil
}

// RevealTopK resolves a SecQuery result into (object id, worst score)
// pairs for the client.
func (r *Revealer) RevealTopK(items []protocols.Item) ([]RevealedResult, error) {
	out := make([]RevealedResult, 0, len(items))
	for _, it := range items {
		obj, err := r.Object(it.EHL)
		if err != nil {
			return nil, err
		}
		w, err := r.Score(it.Scores[protocols.ColWorst])
		if err != nil {
			return nil, err
		}
		out = append(out, RevealedResult{Obj: obj, Worst: w})
	}
	return out, nil
}

// RevealedResult is one decrypted top-k answer.
type RevealedResult struct {
	Obj   int
	Worst int64
}
