package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"sync"

	"repro/internal/cloud"
	"repro/internal/paillier"
	"repro/internal/parallel"
	"repro/internal/protocols"
	"repro/internal/secerr"
)

// Mode selects the query-processing variant evaluated in Section 11.2.
type Mode int

const (
	// QryF is the fully private baseline: SecDedup (replace mode) and the
	// halting machinery run at every depth (Section 8).
	QryF Mode = iota
	// QryE swaps SecDedup for SecDupElim, shrinking the tracked list and
	// leaking the uniqueness pattern UP^d to S1 (Section 10.1).
	QryE
	// QryBa batches deduplication/sorting/halting every p depths
	// (Section 10.2).
	QryBa
)

func (m Mode) String() string {
	switch m {
	case QryF:
		return "Qry_F"
	case QryE:
		return "Qry_E"
	case QryBa:
		return "Qry_Ba"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// HaltPolicy selects the halting test.
type HaltPolicy int

const (
	// HaltPaper is Algorithm 3 line 10 verbatim: compare the k-th worst
	// against the (k+1)-th item's best. A relaxation of NRA's condition
	// (see DESIGN.md errata).
	HaltPaper HaltPolicy = iota
	// HaltStrict restores NRA's guarantee: every tracked non-top-k bound
	// and the unseen-object bound must be dominated.
	HaltStrict
)

// SortStrategy selects how the worst-score ranking is maintained.
type SortStrategy int

const (
	// SortTopK runs the O(k*l) oblivious selection (default; linear in k,
	// matching the paper's reported scaling).
	SortTopK SortStrategy = iota
	// SortFull runs the full Batcher-network EncSort of [7], as Algorithm
	// 3 line 9 states.
	SortFull
)

// Options configures one SecQuery execution.
type Options struct {
	Mode Mode
	Halt HaltPolicy
	Sort SortStrategy
	// BatchDepth is the batching parameter p (Qry_Ba only); the paper
	// requires p >= k. Zero picks max(2k, 8).
	BatchDepth int
	// MaxDepth caps the scan for benchmarking time-per-depth; zero means
	// scan to completion.
	MaxDepth int
	// Parallelism bounds the engine's own worker goroutines: 0 inherits
	// the client's knob (which defaults to all cores), 1 reproduces the
	// serial pre-parallel behavior exactly, n caps workers at n. The
	// sub-protocol layers read the client's knob directly, so for a fully
	// serial query construct the cloud.Client with
	// cloud.WithParallelism(1) as well.
	Parallelism int
	// ExactScan disables the halting tests: the scan runs to MaxDepth (or
	// the whole relation), so after a full scan every returned score is
	// the exact aggregate. The shard merge uses it as its fallback when
	// the NRA merge-bound check cannot certify an early-halted merge.
	ExactScan bool
	// QueryID, when non-empty, is the run's idempotency key: a
	// re-execution carrying the same QueryID (the client plane retrying
	// after a link failure) counts as the SAME run in the query-pattern
	// ledger instead of inflating the token's repeat count — a retried
	// query is one query, not a pattern of repeats.
	QueryID string
}

// QueryResult is the outcome of SecQuery: the encrypted top-k items
// (column 0 = worst score), the number of depths scanned, and whether the
// halting condition fired (false only when MaxDepth cut the scan short).
type QueryResult struct {
	Items  []protocols.Item
	Depth  int
	Halted bool
}

// Engine is the data cloud S1's query processor. It is safe for
// concurrent use: sessions multiplexing queries over one engine share
// only the query-pattern ledger, which is mutex-guarded.
type Engine struct {
	client *cloud.Client
	er     *EncryptedRelation

	mu         sync.Mutex // guards seenTokens and seenRuns
	seenTokens map[string]int
	// seenRuns dedupes query-pattern accounting by (token, QueryID) so a
	// retried run does not double-count as a repeated token.
	seenRuns map[string]struct{}
}

// NewEngine builds the S1 engine for an encrypted relation.
func NewEngine(client *cloud.Client, er *EncryptedRelation) (*Engine, error) {
	if client == nil {
		return nil, errors.New("core: nil client")
	}
	if er == nil || len(er.Lists) == 0 {
		return nil, errors.New("core: empty encrypted relation")
	}
	if er.MaxScoreBits <= 0 {
		return nil, errors.New("core: encrypted relation missing MaxScoreBits")
	}
	return &Engine{client: client, er: er, seenTokens: map[string]int{}, seenRuns: map[string]struct{}{}}, nil
}

// par resolves the effective engine parallelism for one query: the
// query's own knob when set, the client's otherwise.
func (e *Engine) par(opts Options) int {
	if opts.Parallelism != 0 {
		return opts.Parallelism
	}
	return e.client.Parallelism()
}

// MagBits bounds |W|, |B| magnitudes for comparison masking: m weighted
// scores of maxScoreBits bits each. Exported because the shard merge
// must compare merged candidates under exactly the bound the per-shard
// scans used — a divergent copy would silently break merge soundness.
func MagBits(maxScoreBits int, tk *Token) int {
	wBits := 1
	for _, w := range tk.Weights {
		if b := bits.Len64(uint64(w)); b > wBits {
			wBits = b
		}
	}
	mBits := bits.Len(uint(len(tk.Lists)))
	return maxScoreBits + wBits + mBits + 2
}

func (e *Engine) magBits(tk *Token) int {
	return MagBits(e.er.MaxScoreBits, tk)
}

// ValidateToken checks a token against the engine's relation without
// executing anything. Failures carry the secerr.ErrInvalidToken code, so
// callers (and peers across the wire) can classify them with errors.Is.
func (e *Engine) ValidateToken(tk *Token) error {
	if tk == nil {
		return secerr.New(secerr.CodeInvalidToken, "core: nil token")
	}
	if len(tk.Lists) == 0 {
		return secerr.New(secerr.CodeInvalidToken, "core: token selects no lists")
	}
	for _, p := range tk.Lists {
		if p < 0 || p >= len(e.er.Lists) {
			return secerr.New(secerr.CodeInvalidToken, "core: token list position %d out of range", p)
		}
	}
	if tk.Weights != nil && len(tk.Weights) != len(tk.Lists) {
		return secerr.New(secerr.CodeInvalidToken, "core: token has %d weights for %d lists", len(tk.Weights), len(tk.Lists))
	}
	if tk.K <= 0 || tk.K > e.er.N {
		return secerr.New(secerr.CodeInvalidToken, "core: token k=%d out of range", tk.K)
	}
	return nil
}

// recordQueryPattern logs the query-pattern leakage QP (Section 9): S1
// observes whether a token repeats. A non-empty queryID dedupes the
// accounting: a re-execution of an already-counted (token, queryID) run —
// the client plane retrying after a link failure — is the same query
// arriving twice, not a repeated query, so it neither bumps the repeat
// count nor adds a ledger entry.
func (e *Engine) recordQueryPattern(tk *Token, queryID string) {
	h := sha256.New()
	fmt.Fprintf(h, "k=%d;", tk.K)
	for _, l := range tk.Lists {
		fmt.Fprintf(h, "%d,", l)
	}
	for _, w := range tk.Weights {
		fmt.Fprintf(h, "w%d,", w)
	}
	key := string(h.Sum(nil))
	e.mu.Lock()
	if queryID != "" {
		runKey := key + "|" + queryID
		if _, done := e.seenRuns[runKey]; done {
			e.mu.Unlock()
			return
		}
		e.seenRuns[runKey] = struct{}{}
	}
	e.seenTokens[key]++
	repeat := e.seenTokens[key]
	e.mu.Unlock()
	e.client.Ledger().Record("S1", "Token", "query pattern: repeat #%d of this token (m=%d, k=%d)",
		repeat, len(tk.Lists), tk.K)
}

// depthScore returns the (weight-scaled) encrypted score of list li at
// depth d. Weights are applied by S1 via scalar multiplication, per
// Section 7.
func (e *Engine) depthScore(tk *Token, li, d int) (*paillier.Ciphertext, error) {
	item := e.er.Lists[tk.Lists[li]][d]
	if tk.Weights == nil {
		return item.Score, nil
	}
	return e.client.PK().MulConst(item.Score, big.NewInt(tk.Weights[li]))
}

// runInfo captures the engine state a shard merge needs beyond the
// QueryResult: the full tracked list (top items ranked first, the
// QueryResult's Items are its prefix), the final per-list bottom scores,
// and the bound computer for batched items (nil when best bounds are
// stored in ColBest).
type runInfo struct {
	ranked   []protocols.Item
	bottoms  []*paillier.Ciphertext
	best     bestFunc
	fullScan bool
}

// SecQuery executes the top-k query (Algorithm 3) in the requested mode.
// Cancellation is cooperative: the engine checks ctx between protocol
// rounds (and the sub-protocol layers check it inside their worker
// loops), so a canceled query stops within one round.
func (e *Engine) SecQuery(ctx context.Context, tk *Token, opts Options) (*QueryResult, error) {
	if err := e.ValidateToken(tk); err != nil {
		return nil, err
	}
	e.recordQueryPattern(tk, opts.QueryID)
	res, _, err := e.run(ctx, tk, opts)
	if err != nil {
		return nil, err
	}
	e.client.Ledger().Record("S1", "Query", "halting depth D_q = %d (halted=%v)", res.Depth, res.Halted)
	return res, nil
}

// run dispatches to the mode's pipeline.
func (e *Engine) run(ctx context.Context, tk *Token, opts Options) (*QueryResult, *runInfo, error) {
	if opts.Mode == QryBa {
		return e.queryBatched(ctx, tk, opts)
	}
	return e.queryPerDepth(ctx, tk, opts)
}

// queryPerDepth is the per-depth pipeline shared by Qry_F and Qry_E.
func (e *Engine) queryPerDepth(ctx context.Context, tk *Token, opts Options) (*QueryResult, *runInfo, error) {
	m, k := len(tk.Lists), tk.K
	magBits := e.magBits(tk)
	dedupMode := cloud.DedupReplace
	if opts.Mode == QryE {
		dedupMode = cloud.DedupEliminate
	}
	maxD := e.er.N
	if opts.MaxDepth > 0 && opts.MaxDepth < maxD {
		maxD = opts.MaxDepth
	}
	histories := make([]protocols.ListHistory, m)
	var T []protocols.Item
	depth := 0
	for d := 0; d < maxD; d++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: depth %d: %w", d, err)
		}
		depth = d + 1
		depthItems := make([]protocols.DepthItem, m)
		err := parallel.ForEachCtx(ctx, e.par(opts), m, func(i int) error {
			score, err := e.depthScore(tk, i, d)
			if err != nil {
				return err
			}
			it := e.er.Lists[tk.Lists[i]][d]
			depthItems[i] = protocols.DepthItem{EHL: it.EHL, Score: score}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < m; i++ {
			histories[i].EHLs = append(histories[i].EHLs, depthItems[i].EHL)
			histories[i].Scores = append(histories[i].Scores, depthItems[i].Score)
		}
		worst, err := protocols.SecWorstAll(ctx, e.client, depthItems)
		if err != nil {
			return nil, nil, fmt.Errorf("core: depth %d SecWorst: %w", d, err)
		}
		best, err := protocols.SecBestAll(ctx, e.client, depthItems, histories)
		if err != nil {
			return nil, nil, fmt.Errorf("core: depth %d SecBest: %w", d, err)
		}
		gamma := make([]protocols.Item, m)
		for i := 0; i < m; i++ {
			gamma[i] = protocols.Item{
				EHL:    depthItems[i].EHL,
				Scores: []*paillier.Ciphertext{worst[i], best[i]},
			}
		}
		gamma, err = protocols.SecDedup(ctx, e.client, gamma, dedupMode, protocols.AllPairs(m), nil)
		if err != nil {
			return nil, nil, fmt.Errorf("core: depth %d SecDedup: %w", d, err)
		}
		T, err = protocols.SecUpdate(ctx, e.client, T, gamma, dedupMode)
		if err != nil {
			return nil, nil, fmt.Errorf("core: depth %d SecUpdate: %w", d, err)
		}
		if opts.ExactScan || len(T) < k+1 {
			continue
		}
		bottoms := make([]*paillier.Ciphertext, m)
		for i := 0; i < m; i++ {
			bottoms[i] = histories[i].Scores[len(histories[i].Scores)-1]
		}
		halted, ranked, err := e.checkHalt(ctx, T, k, magBits, opts, bottoms, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("core: depth %d halting check: %w", d, err)
		}
		T = ranked
		if halted {
			res := &QueryResult{Items: T[:k], Depth: depth, Halted: true}
			return res, &runInfo{ranked: T, bottoms: bottoms}, nil
		}
	}
	bottoms := make([]*paillier.Ciphertext, m)
	for i := 0; i < m; i++ {
		bottoms[i] = histories[i].Scores[len(histories[i].Scores)-1]
	}
	return e.finalize(ctx, T, k, magBits, depth, maxD == e.er.N, bottoms, nil)
}

// queryBatched is Qry_Ba (Section 10.2): per-depth items carry only their
// own score and a per-list seen indicator; every p depths the pending
// items are merged into T with one score-summing dedup, then ranked and
// halt-checked. Best bounds are computed exactly at the batch boundary
// from the indicator vectors: B = W + sum_j (1 - v_j) * bottom_j.
func (e *Engine) queryBatched(ctx context.Context, tk *Token, opts Options) (*QueryResult, *runInfo, error) {
	m, k := len(tk.Lists), tk.K
	magBits := e.magBits(tk)
	p := opts.BatchDepth
	if p == 0 {
		p = 2 * k
		if p < 8 {
			p = 8
		}
	}
	if p < k {
		return nil, nil, fmt.Errorf("core: batch depth p=%d must be >= k=%d (Section 10.2)", p, k)
	}
	maxD := e.er.N
	if opts.MaxDepth > 0 && opts.MaxDepth < maxD {
		maxD = opts.MaxDepth
	}
	cols := 1 + m // [W, v_0..v_{m-1}]
	mergeCols := make([]int, cols)
	for i := range mergeCols {
		mergeCols[i] = i
	}
	var T, pending []protocols.Item
	var bottoms []*paillier.Ciphertext
	depth := 0
	for d := 0; d < maxD; d++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: depth %d: %w", d, err)
		}
		depth = d + 1
		bottoms = make([]*paillier.Ciphertext, m)
		// Each list's depth item needs 1+m encryptions (score + indicator
		// vector); the m items build in parallel.
		depthItems := make([]protocols.Item, m)
		err := parallel.ForEachCtx(ctx, e.par(opts), m, func(i int) error {
			score, err := e.depthScore(tk, i, d)
			if err != nil {
				return err
			}
			bottoms[i] = score
			item := protocols.Item{EHL: e.er.Lists[tk.Lists[i]][d].EHL, Scores: make([]*paillier.Ciphertext, cols)}
			item.Scores[0] = score
			for j := 0; j < m; j++ {
				v := big.NewInt(0)
				if j == i {
					v = big.NewInt(1)
				}
				ct, err := e.client.Enc().Encrypt(v)
				if err != nil {
					return err
				}
				item.Scores[1+j] = ct
			}
			depthItems[i] = item
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		pending = append(pending, depthItems...)
		if (d+1)%p != 0 && d != maxD-1 {
			continue
		}
		// Batch boundary: merge pending into T with one score-summing
		// dedup over (pending x pending) + (pending x T) pairs.
		combined := append(append([]protocols.Item(nil), T...), pending...)
		var pairs protocols.PairSet
		base := len(T)
		for i := 0; i < len(pending); i++ {
			for j := i + 1; j < len(pending); j++ {
				pairs.Pairs = append(pairs.Pairs, [2]int{base + i, base + j})
			}
			for j := 0; j < base; j++ {
				pairs.Pairs = append(pairs.Pairs, [2]int{base + i, j})
			}
		}
		T, err = protocols.SecDedup(ctx, e.client, combined, cloud.DedupMerge, pairs, mergeCols)
		if err != nil {
			return nil, nil, fmt.Errorf("core: depth %d batch merge: %w", d, err)
		}
		pending = nil
		if opts.ExactScan || len(T) < k+1 {
			continue
		}
		halted, ranked, err := e.checkHalt(ctx, T, k, magBits, opts, bottoms, e.batchBest(bottoms, e.par(opts)))
		if err != nil {
			return nil, nil, fmt.Errorf("core: depth %d halting check: %w", d, err)
		}
		T = ranked
		if halted {
			res := &QueryResult{Items: T[:k], Depth: depth, Halted: true}
			return res, &runInfo{ranked: T, bottoms: bottoms, best: e.batchBest(bottoms, e.par(opts))}, nil
		}
	}
	return e.finalize(ctx, T, k, magBits, depth, maxD == e.er.N, bottoms, e.batchBest(bottoms, e.par(opts)))
}

// bestFunc computes exact best bounds for the given (ranked) items.
type bestFunc func(ctx context.Context, items []protocols.Item) ([]*paillier.Ciphertext, error)

// batchBest returns the Qry_Ba bound computer: for each item,
// B = W + sum_j bottom_j - sum_j v_j * bottom_j, with the v_j * bottom_j
// products resolved through one batched SecMult round and the per-item
// bound assembly fanned out over par workers.
func (e *Engine) batchBest(bottoms []*paillier.Ciphertext, par int) bestFunc {
	return func(ctx context.Context, items []protocols.Item) ([]*paillier.Ciphertext, error) {
		pk := e.client.PK()
		m := len(bottoms)
		zero, err := e.client.Enc().EncryptZero()
		if err != nil {
			return nil, err
		}
		sumBottoms, err := pk.AddAll(append([]*paillier.Ciphertext{zero}, bottoms...))
		if err != nil {
			return nil, err
		}
		var as, bs []*paillier.Ciphertext
		for _, it := range items {
			if len(it.Scores) != 1+m {
				return nil, fmt.Errorf("core: batched item has %d columns, want %d", len(it.Scores), 1+m)
			}
			for j := 0; j < m; j++ {
				as = append(as, it.Scores[1+j])
				bs = append(bs, bottoms[j])
			}
		}
		prods, err := protocols.SecMult(ctx, e.client, as, bs)
		if err != nil {
			return nil, err
		}
		negs := make([]*paillier.Ciphertext, len(prods))
		for i, p := range prods {
			if negs[i], err = pk.Neg(p); err != nil {
				return nil, err
			}
		}
		out := make([]*paillier.Ciphertext, len(items))
		err = parallel.ForEachCtx(ctx, par, len(items), func(i int) error {
			// B = W + sum_j bottom_j - sum_j v_j*bottom_j, folded in one
			// product chain over N^2.
			terms := make([]*paillier.Ciphertext, 0, 2+m)
			terms = append(terms, items[i].Scores[0], sumBottoms)
			terms = append(terms, negs[i*m:(i+1)*m]...)
			b, err := pk.AddAll(terms)
			if err != nil {
				return err
			}
			out[i] = b
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
}

// checkHalt ranks T by worst score and evaluates the halting condition.
// When best is nil, stored best-bound columns (ColBest) are used (Qry_F /
// Qry_E); otherwise best computes bounds on demand (Qry_Ba).
func (e *Engine) checkHalt(ctx context.Context, T []protocols.Item, k, magBits int, opts Options, bottoms []*paillier.Ciphertext, best bestFunc) (bool, []protocols.Item, error) {
	var ranked []protocols.Item
	var err error
	if opts.Sort == SortFull {
		ranked, err = protocols.EncSort(ctx, e.client, T, protocols.ColWorst, true, magBits)
	} else {
		ranked, err = protocols.EncSelectTop(ctx, e.client, T, protocols.ColWorst, true, k+1, magBits)
	}
	if err != nil {
		return false, nil, err
	}
	wk := ranked[k-1].Scores[protocols.ColWorst]
	pk := e.client.PK()

	var tail []protocols.Item
	if opts.Halt == HaltPaper {
		tail = ranked[k : k+1]
	} else {
		tail = ranked[k:]
	}
	var bounds []*paillier.Ciphertext
	if best != nil {
		if bounds, err = best(ctx, tail); err != nil {
			return false, nil, err
		}
	} else {
		for _, it := range tail {
			bounds = append(bounds, it.Scores[protocols.ColBest])
		}
	}
	if opts.Halt == HaltPaper {
		// Faithful Algorithm 3 line 10: f = EncCompare(W_k, B_{k+1});
		// halt iff f = 0, i.e. W_k > B_{k+1}.
		f, err := protocols.EncCompare(ctx, e.client, wk, bounds[0], magBits)
		if err != nil {
			return false, nil, err
		}
		return !f, ranked, nil
	}
	// Strict NRA halting: every tracked non-top-k bound plus the
	// unseen-object bound (sum of the current bottoms) must be dominated
	// by W_k.
	zero, err := e.client.Enc().EncryptZero()
	if err != nil {
		return false, nil, err
	}
	sum, err := pk.AddAll(append([]*paillier.Ciphertext{zero}, bottoms...))
	if err != nil {
		return false, nil, err
	}
	bounds = append(bounds, sum)
	wks := make([]*paillier.Ciphertext, len(bounds))
	for i := range wks {
		wks[i] = wk
	}
	fs, err := protocols.EncCompareBatch(ctx, e.client, bounds, wks, magBits)
	if err != nil {
		return false, nil, err
	}
	for _, f := range fs {
		if !f {
			return false, ranked, nil
		}
	}
	return true, ranked, nil
}

// finalize returns the best-effort top-k after the scan ended without the
// halting condition firing. A full scan is exact (all bounds are tight at
// depth n); a MaxDepth-capped scan is marked unhalted. One extra position
// beyond k is ranked so the shard merge sees the (k+1)-th residual.
func (e *Engine) finalize(ctx context.Context, T []protocols.Item, k, magBits, depth int, fullScan bool, bottoms []*paillier.Ciphertext, best bestFunc) (*QueryResult, *runInfo, error) {
	info := &runInfo{bottoms: bottoms, best: best, fullScan: fullScan}
	if len(T) == 0 {
		return &QueryResult{Depth: depth, Halted: fullScan}, info, nil
	}
	if k > len(T) {
		k = len(T)
	}
	sel := k + 1
	if sel > len(T) {
		sel = len(T)
	}
	ranked, err := protocols.EncSelectTop(ctx, e.client, T, protocols.ColWorst, true, sel, magBits)
	if err != nil {
		return nil, nil, err
	}
	info.ranked = ranked
	return &QueryResult{Items: ranked[:k], Depth: depth, Halted: fullScan}, info, nil
}

// CandidateSet is a shard's contribution to a merged top-k: its own
// top-k in a mode-independent two-column shape plus the NRA residual
// bounds the merge check needs.
type CandidateSet struct {
	// Items are the shard's top-k candidates as uniform two-column items:
	// column 0 the accumulated worst score W, column 1 an upper bound B on
	// the candidate's exact aggregate (B = W after a full scan). Ranked by
	// W descending.
	Items []protocols.Item
	// Residuals are encrypted upper bounds covering every object of this
	// relation NOT represented in Items: the best bounds of the tracked
	// non-top-k items, plus — for scans that did not reach the full
	// relation — the unseen-object bound sum_j bottom_j.
	Residuals []*paillier.Ciphertext
	// Depth and Halted mirror QueryResult.
	Depth  int
	Halted bool
}

// SecQueryCandidates executes the query like SecQuery but returns the
// merge view: candidates with explicit upper bounds and the residual
// bounds for everything the shard did not return. internal/shard runs one
// per shard and combines them with an EncSelectTop merge plus an
// NRA-style domination check (see shard.Engine).
func (e *Engine) SecQueryCandidates(ctx context.Context, tk *Token, opts Options) (*CandidateSet, error) {
	if err := e.ValidateToken(tk); err != nil {
		return nil, err
	}
	e.recordQueryPattern(tk, opts.QueryID)
	res, info, err := e.run(ctx, tk, opts)
	if err != nil {
		return nil, err
	}
	e.client.Ledger().Record("S1", "Query", "halting depth D_q = %d (halted=%v)", res.Depth, res.Halted)
	out := &CandidateSet{Depth: res.Depth, Halted: res.Halted}

	// Upper bounds for every tracked item: the stored ColBest for the
	// per-depth modes, the indicator-derived bound for Qry_Ba. After a
	// full scan both reduce to the exact aggregate (B = W).
	var bounds []*paillier.Ciphertext
	if info.best != nil {
		if bounds, err = info.best(ctx, info.ranked); err != nil {
			return nil, err
		}
	} else {
		bounds = make([]*paillier.Ciphertext, len(info.ranked))
		for i, it := range info.ranked {
			bounds[i] = it.Scores[protocols.ColBest]
		}
	}
	k := len(res.Items) // res.Items is info.ranked[:k]
	out.Items = make([]protocols.Item, k)
	for i, it := range res.Items {
		out.Items[i] = protocols.Item{
			EHL:    it.EHL,
			Scores: []*paillier.Ciphertext{it.Scores[protocols.ColWorst], bounds[i]},
		}
	}
	out.Residuals = append(out.Residuals, bounds[k:]...)
	if !info.fullScan && len(info.bottoms) > 0 {
		// Objects never seen in any list are bounded by the sum of the
		// current bottoms; after a full scan there are none.
		zero, err := e.client.Enc().EncryptZero()
		if err != nil {
			return nil, err
		}
		sum, err := e.client.PK().AddAll(append([]*paillier.Ciphertext{zero}, info.bottoms...))
		if err != nil {
			return nil, err
		}
		out.Residuals = append(out.Residuals, sum)
	}
	return out, nil
}
