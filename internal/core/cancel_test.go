package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/cloud"
	"repro/internal/transport"
)

// cancelingCaller cancels the query's context right before issuing the
// N-th protocol round, so the cancellation lands mid-query.
type cancelingCaller struct {
	inner  transport.Caller
	cancel context.CancelFunc
	after  int64
	calls  atomic.Int64
}

func (c *cancelingCaller) Call(ctx context.Context, method string, req, resp any) error {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Call(ctx, method, req, resp)
}

// TestSecQueryCancellation cancels a query mid-round at several points
// and at both serial and fanned-out parallelism: the engine must return
// context.Canceled promptly — within the round the cancellation landed
// in (no further rounds are issued).
func TestSecQueryCancellation(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	for _, par := range []int{1, 8} {
		for _, after := range []int64{1, 2, 5, 9} {
			t.Run(fmt.Sprintf("par=%d/round=%d", par, after), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cc := &cancelingCaller{inner: transport.NewLocal(r.server, nil), cancel: cancel, after: after}
				client, err := cloud.NewClient(cc, r.scheme.PublicKey(), nil, cloud.WithParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				defer client.Close()
				tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
				if err != nil {
					t.Fatal(err)
				}
				engine, err := NewEngine(client, er)
				if err != nil {
					t.Fatal(err)
				}
				res, err := engine.SecQuery(ctx, tk, Options{Mode: QryE, Halt: HaltStrict, Parallelism: par})
				if err == nil {
					t.Fatalf("expected cancellation, got result depth=%d", res.Depth)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("error does not unwrap to context.Canceled: %v", err)
				}
				// Bounded by one round: the canceled round is the last one
				// the engine issues.
				if got := cc.calls.Load(); got > after {
					t.Fatalf("engine issued %d rounds after cancellation at round %d", got-after, after)
				}
			})
		}
	}
}

// TestSecQueryPreCanceledContext runs with an already dead context: no
// protocol round may be issued at all.
func TestSecQueryPreCanceledContext(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := &cancelingCaller{inner: transport.NewLocal(r.server, nil), cancel: func() {}, after: -1}
	client, err := cloud.NewClient(cc, r.scheme.PublicKey(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(client, er)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.SecQuery(ctx, tk, Options{Mode: QryF}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cc.calls.Load() != 0 {
		t.Fatalf("pre-canceled query still issued %d rounds", cc.calls.Load())
	}
}
