package core

import (
	"context"
	"net"
	"testing"

	"repro/internal/cloud"
	"repro/internal/transport"
)

// TestSecQueryOverNetworkTransport runs the full Figure 3 query with S1
// and S2 talking over a real framed connection (net.Pipe), proving every
// protocol message round-trips through the wire codec.
func TestSecQueryOverNetworkTransport(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)

	c1, c2 := net.Pipe()
	defer c1.Close()
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- transport.ServeConn(context.Background(), c2, r.server)
	}()

	stats := transport.NewStats()
	caller := transport.NewNetCaller(c1, stats)
	client, err := cloud.NewClient(caller, r.scheme.PublicKey(), cloud.NewLedger())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(client, er)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltPaper})
	if err != nil {
		t.Fatalf("SecQuery over network: %v", err)
	}
	if res.Depth != 3 || !res.Halted {
		t.Fatalf("network run: depth=%d halted=%v, want 3/true", res.Depth, res.Halted)
	}
	rev, err := r.scheme.NewRevealer(er.N)
	if err != nil {
		t.Fatal(err)
	}
	revealed, err := rev.RevealTopK(res.Items)
	if err != nil {
		t.Fatal(err)
	}
	if revealed[0].Obj != 2 || revealed[1].Obj != 1 {
		t.Fatalf("network top-2 = %+v", revealed)
	}
	if stats.Rounds() == 0 || stats.Bytes() == 0 {
		t.Fatal("network stats not recorded")
	}
	caller.Close()
	c2.Close()
	if err := <-serveDone; err != nil {
		t.Logf("server exit: %v", err) // pipe teardown may surface io errors; informational
	}
}
