package core

import (
	"context"
	"testing"

	"repro/internal/protocols"
)

// TestDebugQryEFlake reruns the Figure 3 Qry_E query until it deviates
// from the expected halting depth and dumps the tracked list state.
// Skipped in normal runs; used to chase nondeterminism.
func TestDebugQryEFlake(t *testing.T) {
	if testing.Short() {
		t.Skip("debug helper")
	}
	r := getRig(t)
	er := encryptFig3(t, r)
	rev, err := r.scheme.NewRevealer(er.N)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 12; trial++ {
		tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := NewEngine(r.client, er)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltPaper})
		if err != nil {
			t.Fatal(err)
		}
		if res.Depth == 3 {
			continue
		}
		t.Logf("trial %d: depth=%d halted=%v", trial, res.Depth, res.Halted)
		for i, it := range res.Items {
			obj, oerr := rev.Object(it.EHL)
			w, _ := rev.Score(it.Scores[protocols.ColWorst])
			b := int64(-999)
			if len(it.Scores) > 1 {
				b, _ = rev.Score(it.Scores[protocols.ColBest])
			}
			t.Logf("  item %d: obj=%d(err=%v) W=%d B=%d", i, obj, oerr, w, b)
		}
		t.Fatalf("trial %d deviated", trial)
	}
}
