package core

import (
	"context"
	"sort"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/nra"
	"repro/internal/transport"
)

// TestClassicEHLEngine runs the full pipeline with the H-slot classic EHL
// instead of EHL+ (the paper's Section 5 fallback structure).
func TestClassicEHLEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("classic-EHL engine sweep is slow; skipped in -short mode")
	}
	r := getRig(t)
	scheme, err := NewSchemeFromKeys(Params{
		KeyBits: 256,
		EHL:     ehl.Params{Kind: ehl.KindClassic, S: 3, H: 17},
		// Classic EHL has a nontrivial false-positive rate; H=17/s=3
		// keeps it tiny for n=5.
		MaxScoreBits: 20,
	}, r.scheme.KeyMaterial())
	if err != nil {
		t.Fatalf("NewSchemeFromKeys: %v", err)
	}
	er, err := scheme.EncryptRelation(figure3())
	if err != nil {
		t.Fatalf("EncryptRelation: %v", err)
	}
	tk, err := scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(r.client, er)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltStrict})
	if err != nil {
		t.Fatalf("SecQuery: %v", err)
	}
	rev, err := scheme.NewRevealer(er.N)
	if err != nil {
		t.Fatal(err)
	}
	revealed, err := rev.RevealTopK(res.Items)
	if err != nil {
		t.Fatal(err)
	}
	if revealed[0].Obj != 2 || revealed[0].Worst != 18 {
		t.Fatalf("classic-EHL top-1 = %+v, want X3/18", revealed[0])
	}
	if revealed[1].Obj != 1 || revealed[1].Worst != 16 {
		t.Fatalf("classic-EHL top-2 = %+v, want X2/16", revealed[1])
	}
}

// TestRandomRelationsAcrossSeeds runs strict-mode Qry_E over several
// random relations and checks the answers against the exhaustive ground
// truth, exercising duplicate-heavy and tie-heavy data.
func TestRandomRelationsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow; skipped in -short mode")
	}
	r := getRig(t)
	spec := dataset.Spec{Name: "rnd", N: 14, M: 3, MaxScore: 12, Shape: dataset.ShapeCategorical, Correlation: 0.4}
	for seed := int64(1); seed <= 4; seed++ {
		rel, err := dataset.Generate(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		er, err := r.scheme.EncryptRelation(rel)
		if err != nil {
			t.Fatal(err)
		}
		attrs := []int{0, 1, 2}
		const k = 3
		_, revealed := runQuery(t, r, er, attrs, nil, k, Options{Mode: QryE, Halt: HaltStrict})
		want, err := nra.TopKExact(rel, attrs, nil, k)
		if err != nil {
			t.Fatal(err)
		}
		gotScores := make([]int64, 0, k)
		for _, g := range revealed {
			gotScores = append(gotScores, rel.Score(g.Obj, attrs, nil))
		}
		sort.Slice(gotScores, func(i, j int) bool { return gotScores[i] > gotScores[j] })
		for i := range want {
			if gotScores[i] != want[i].Worst {
				t.Fatalf("seed %d: scores %v, want k-th run %v", seed, gotScores, want)
			}
		}
	}
}

// TestQryBaMatchesQryEOnSameData cross-checks the batched engine against
// the per-depth engine under strict halting: both must return the same
// top-k score multiset.
func TestQryBaMatchesQryEOnSameData(t *testing.T) {
	if testing.Short() {
		t.Skip("engine cross-check is slow; skipped in -short mode")
	}
	r := getRig(t)
	spec := dataset.Spec{Name: "xchk", N: 16, M: 3, MaxScore: 80, Shape: dataset.ShapeGaussian, Correlation: 0.8}
	rel, err := dataset.Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	er, err := r.scheme.EncryptRelation(rel)
	if err != nil {
		t.Fatal(err)
	}
	attrs := []int{0, 1, 2}
	const k = 3
	_, revealedE := runQuery(t, r, er, attrs, nil, k, Options{Mode: QryE, Halt: HaltStrict})
	_, revealedBa := runQuery(t, r, er, attrs, nil, k, Options{Mode: QryBa, Halt: HaltStrict, BatchDepth: 3})
	scoresOf := func(rev []RevealedResult) []int64 {
		out := make([]int64, len(rev))
		for i, g := range rev {
			out[i] = rel.Score(g.Obj, attrs, nil)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
		return out
	}
	se, sb := scoresOf(revealedE), scoresOf(revealedBa)
	for i := range se {
		if se[i] != sb[i] {
			t.Fatalf("Qry_E scores %v != Qry_Ba scores %v", se, sb)
		}
	}
}

// TestRepeatedQueriesAreStable runs the same token three times; results
// must be identical despite all the fresh protocol randomness.
func TestRepeatedQueriesAreStable(t *testing.T) {
	if testing.Short() {
		t.Skip("triple-query stability check is slow; skipped in -short mode")
	}
	r := getRig(t)
	er := encryptFig3(t, r)
	tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(r.client, er)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := r.scheme.NewRevealer(er.N)
	if err != nil {
		t.Fatal(err)
	}
	var prev []RevealedResult
	for i := 0; i < 3; i++ {
		res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltStrict})
		if err != nil {
			t.Fatal(err)
		}
		revealed, err := rev.RevealTopK(res.Items)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for j := range prev {
				if prev[j] != revealed[j] {
					t.Fatalf("run %d differs: %+v vs %+v", i, prev, revealed)
				}
			}
		}
		prev = revealed
	}
}

// TestBandwidthIndependentOfK verifies the Figure 13 property: per-depth
// traffic depends on m, not k.
func TestBandwidthIndependentOfK(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	perDepth := func(k int) int64 {
		stats := transport.NewStats()
		client, err := cloud.NewClient(transport.NewLocal(r.server, stats), r.scheme.PublicKey(), nil)
		if err != nil {
			t.Fatal(err)
		}
		tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, k)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := NewEngine(client, er)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryF, Halt: HaltPaper, MaxDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Strip the ranking/halting traffic (which does scale with k):
		// compare only the per-depth pipeline methods.
		pipeline := stats.Method(cloud.MethodEqBits).BytesSent +
			stats.Method(cloud.MethodEqBits).BytesReceived +
			stats.Method(cloud.MethodDedup).BytesSent +
			stats.Method(cloud.MethodDedup).BytesReceived
		return pipeline / int64(res.Depth)
	}
	b2 := perDepth(2)
	b4 := perDepth(4)
	diff := b4 - b2
	if diff < 0 {
		diff = -diff
	}
	// Randomized blinds make sizes jitter slightly; the k-dependence, if
	// any, must be well under 5%.
	if diff*20 > b2 {
		t.Fatalf("per-depth pipeline bandwidth varies with k: k=2 %dB vs k=4 %dB", b2, b4)
	}
}
