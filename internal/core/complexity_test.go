package core

import (
	"context"
	"testing"

	"repro/internal/cloud"
	"repro/internal/paillier"
	"repro/internal/protocols"
	"repro/internal/transport"
)

// TestRoundComplexityPerDepth pins down the interaction structure the
// batched sub-protocols promise: the per-depth pipeline (SecWorst +
// SecBest + SecDedup + SecUpdate) costs a constant number of protocol
// rounds regardless of depth, and only the ranking/halting stage scales
// with k and |T|. This is the property that makes the scheme usable over
// a real WAN link (Section 11.2.5's conclusion).
func TestRoundComplexityPerDepth(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)

	pipelineRounds := func(maxDepth int) int64 {
		stats := transport.NewStats()
		client, err := cloud.NewClient(transport.NewLocal(r.server, stats), r.scheme.PublicKey(), nil)
		if err != nil {
			t.Fatal(err)
		}
		tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := NewEngine(client, er)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltPaper, MaxDepth: maxDepth}); err != nil {
			t.Fatal(err)
		}
		// Pipeline methods only (ranking uses Compare/CompareHidden and
		// its own Recover calls, which scale with k and |T|).
		return stats.Method(cloud.MethodEqBits).Calls + stats.Method(cloud.MethodDedup).Calls
	}
	// The Figure 3 query halts at depth 3, so measure strictly below it.
	r2 := pipelineRounds(2)
	r3 := pipelineRounds(3)
	// Steady state per depth: EqBits for SecWorst(1) + SecBest(1) +
	// SecUpdate (1), plus Dedup for the per-depth dedup(1) and SecUpdate's
	// bipartite dedup(1) = 5 rounds. Depth one skips SecUpdate's two
	// rounds (T is empty): 3 rounds.
	if perDepth := r3 - r2; perDepth != 5 {
		t.Fatalf("pipeline rounds per depth = %d, want 5 (r2=%d r3=%d)", perDepth, r2, r3)
	}
	if r2 != 3+5 {
		t.Fatalf("two-depth pipeline rounds = %d, want 8", r2)
	}
}

// TestRankingGatesScaleWithK confirms the other side of the complexity
// split at the protocols level: the oblivious top-k selection pays
// O(k*|T|) comparison gates. Measured on a fixed item list so halting
// behaviour cannot confound the count (which it does inside a full
// query run).
func TestRankingGatesScaleWithK(t *testing.T) {
	r := getRig(t)
	hasher := newTestItems(t, r)
	gates := func(k int) int64 {
		stats := transport.NewStats()
		client, err := cloud.NewClient(transport.NewLocal(r.server, stats), r.scheme.PublicKey(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := protocols.EncSelectTop(context.Background(), client, hasher, 0, true, k, 16); err != nil {
			t.Fatal(err)
		}
		return stats.Method(cloud.MethodCompareHidden).Calls
	}
	g1 := gates(1)
	g3 := gates(3)
	if g3 <= g1 {
		t.Fatalf("selection gates should grow with k: k=1 %d vs k=3 %d", g1, g3)
	}
	// Exact counts: selection pass p touches len-1-p items, one hidden
	// comparison round per gate.
	n := int64(len(hasher))
	if g1 != n-1 {
		t.Fatalf("k=1 gates = %d, want %d", g1, n-1)
	}
	if g3 != (n-1)+(n-2)+(n-3) {
		t.Fatalf("k=3 gates = %d, want %d", g3, (n-1)+(n-2)+(n-3))
	}
}

// newTestItems builds a small list of protocol items for gate counting.
func newTestItems(t *testing.T, r *testRig) []protocols.Item {
	t.Helper()
	er := encryptFig3(t, r)
	items := make([]protocols.Item, 0, 5)
	for d := 0; d < 5; d++ {
		it := er.Lists[0][d]
		items = append(items, protocols.Item{
			EHL:    it.EHL,
			Scores: []*paillier.Ciphertext{it.Score},
		})
	}
	return items
}
