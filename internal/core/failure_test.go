package core

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/transport"
)

// faultyCaller injects a transport failure after a fixed number of
// successful rounds.
type faultyCaller struct {
	inner    transport.Caller
	failFrom int
	calls    int
}

func (f *faultyCaller) Call(ctx context.Context, method string, req, resp any) error {
	f.calls++
	if f.calls > f.failFrom {
		return errors.New("injected transport failure")
	}
	return f.inner.Call(ctx, method, req, resp)
}

// TestTransportFailureSurfacesAsError kills the link mid-query at various
// points; the engine must return an error (never panic, never fabricate
// results).
func TestTransportFailureSurfacesAsError(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	for _, failFrom := range []int{0, 1, 3, 7, 15} {
		fc := &faultyCaller{inner: transport.NewLocal(r.server, nil), failFrom: failFrom}
		client, err := cloud.NewClient(fc, r.scheme.PublicKey(), nil)
		if err != nil {
			t.Fatal(err)
		}
		tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := NewEngine(client, er)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltPaper})
		if err == nil {
			t.Fatalf("failFrom=%d: expected error, got result depth=%d", failFrom, res.Depth)
		}
		if !strings.Contains(err.Error(), "injected transport failure") {
			t.Fatalf("failFrom=%d: unexpected error: %v", failFrom, err)
		}
	}
}

// TestCorruptedCiphertextRejected corrupts an encrypted relation entry;
// the engine must fail cleanly when the protocols hit it.
func TestCorruptedCiphertextRejected(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	// Deep-ish copy of the first list so other tests' cache stays clean.
	corrupted := &EncryptedRelation{
		Name: er.Name, N: er.N, M: er.M,
		EHLParams: er.EHLParams, MaxScoreBits: er.MaxScoreBits,
		Lists: make([][]EncItem, len(er.Lists)),
	}
	for i, l := range er.Lists {
		corrupted.Lists[i] = append([]EncItem(nil), l...)
	}
	bad := corrupted.Lists[0][0]
	corrupted.Lists[0][0] = EncItem{
		EHL:   bad.EHL,
		Score: &paillier.Ciphertext{C: big.NewInt(0)}, // outside the ciphertext group
	}
	tk, err := r.scheme.Token(corrupted, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(r.client, corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltPaper}); err == nil {
		t.Fatal("expected error for corrupted ciphertext")
	}
}

// TestWrongKeyRelationFails queries a relation encrypted under a
// different key pair: every decryption at S2 yields garbage, but the
// run must not panic and the revealed result must fail, not silently
// mis-answer.
func TestWrongKeyRelationFails(t *testing.T) {
	r := getRig(t)
	otherScheme, err := NewScheme(Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20})
	if err != nil {
		t.Fatal(err)
	}
	er, err := otherScheme.EncryptRelation(figure3())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := otherScheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	// r.client talks to a server holding r.scheme's keys, not otherScheme's.
	engine, err := NewEngine(r.client, er)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltPaper, MaxDepth: 2})
	if err != nil {
		return // clean failure is acceptable
	}
	// If the protocols happened to run, the result must not reveal as a
	// valid answer under the true key.
	rev, err := otherScheme.NewRevealer(er.N)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rev.RevealTopK(res.Items); err == nil {
		t.Log("wrong-key run produced revealable items (possible but must not be meaningful)")
	}
}
