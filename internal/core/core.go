package core
