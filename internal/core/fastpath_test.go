package core

import (
	"context"
	"testing"

	"repro/internal/cloud"
	"repro/internal/transport"
)

// TestSecQueryFastPathEquivalence pins the precomputation contract: the
// same query over the same keys and encrypted relation returns identical
// top-k results at identical halting depths with every fast-path knob
// combination — spec nonces (CRT off), CRT subgroup sampling (the
// default), and the opt-in short-exponent fast-nonce tables — in every
// query mode. Under `go test -race` this doubles as the data-race check
// for the fast-path surfaces feeding the pooled fan-out.
func TestSecQueryFastPathEquivalence(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)

	type outcome struct {
		revealed []RevealedResult
		depth    int
		halted   bool
	}
	run := func(mode Mode, opts ...cloud.Option) outcome {
		t.Helper()
		server, err := cloud.NewServer(r.scheme.KeyMaterial(), nil, opts...)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		defer server.Close()
		client, err := cloud.NewClient(transport.NewLocal(server, transport.NewStats()),
			r.scheme.PublicKey(), nil, opts...)
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		defer client.Close()
		tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 3)
		if err != nil {
			t.Fatalf("Token: %v", err)
		}
		engine, err := NewEngine(client, er)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		res, err := engine.SecQuery(context.Background(), tk, Options{Mode: mode, Halt: HaltStrict})
		if err != nil {
			t.Fatalf("SecQuery(%v): %v", mode, err)
		}
		rev, err := r.scheme.NewRevealer(er.N)
		if err != nil {
			t.Fatalf("NewRevealer: %v", err)
		}
		revealed, err := rev.RevealTopK(res.Items)
		if err != nil {
			t.Fatalf("RevealTopK: %v", err)
		}
		return outcome{revealed: revealed, depth: res.Depth, halted: res.Halted}
	}

	knobs := []struct {
		name string
		opts []cloud.Option
	}{
		{"spec", []cloud.Option{cloud.WithCRTNonce(false)}},
		{"crt", nil},
		{"fast", []cloud.Option{cloud.WithFastNonce(true)}},
	}
	for _, mode := range []Mode{QryF, QryE, QryBa} {
		base := run(mode, knobs[0].opts...)
		for _, k := range knobs[1:] {
			got := run(mode, k.opts...)
			if base.depth != got.depth || base.halted != got.halted {
				t.Errorf("%v: spec (depth=%d halted=%v) vs %s (depth=%d halted=%v)",
					mode, base.depth, base.halted, k.name, got.depth, got.halted)
			}
			if len(base.revealed) != len(got.revealed) {
				t.Fatalf("%v/%s: result sizes differ: %d vs %d", mode, k.name, len(base.revealed), len(got.revealed))
			}
			for i := range base.revealed {
				if base.revealed[i] != got.revealed[i] {
					t.Errorf("%v/%s: rank %d differs: spec %+v vs %+v",
						mode, k.name, i, base.revealed[i], got.revealed[i])
				}
			}
		}
	}
}

// TestFastNonceSchemeEncryption checks the owner-side FastNonce knob end
// to end: a relation encrypted through the fast-nonce table queries and
// reveals identically to the default (CRT) owner path.
func TestFastNonceSchemeEncryption(t *testing.T) {
	r := getRig(t)
	params := r.scheme.Params()
	params.FastNonce = true
	fastScheme, err := NewSchemeFromKeys(params, r.scheme.KeyMaterial())
	if err != nil {
		t.Fatalf("NewSchemeFromKeys: %v", err)
	}
	er, err := fastScheme.EncryptRelation(figure3())
	if err != nil {
		t.Fatalf("EncryptRelation: %v", err)
	}
	tk, err := fastScheme.Token(er, []int{0, 1, 2}, nil, 3)
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	engine, err := NewEngine(r.client, er)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltStrict})
	if err != nil {
		t.Fatalf("SecQuery: %v", err)
	}
	rev, err := fastScheme.NewRevealer(er.N)
	if err != nil {
		t.Fatalf("NewRevealer: %v", err)
	}
	revealed, err := rev.RevealTopK(res.Items)
	if err != nil {
		t.Fatalf("RevealTopK: %v", err)
	}
	// Figure 3's ground-truth top-3 under sum scoring: X3(18), X2(16),
	// X1(15).
	wantObjs := map[int]int64{2: 18, 1: 16, 0: 15}
	if len(revealed) != 3 {
		t.Fatalf("got %d results, want 3", len(revealed))
	}
	for _, res := range revealed {
		want, ok := wantObjs[res.Obj]
		if !ok {
			t.Errorf("unexpected object %d in top-3", res.Obj)
			continue
		}
		if res.Worst != want {
			t.Errorf("object %d scored %d, want %d", res.Obj, res.Worst, want)
		}
	}
}
