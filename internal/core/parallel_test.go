package core

import (
	"context"
	"testing"

	"repro/internal/cloud"
	"repro/internal/transport"
)

// TestSecQuerySerialParallelEquivalence pins the Parallelism contract: a
// query executed at Parallelism 1 (the exact serial pre-parallel path,
// nonce pools off) and one at Parallelism 8 over the same keys and
// encrypted relation return identical top-k results at identical halting
// depths, in every query mode. Under `go test -race` this doubles as the
// data-race check for the whole fan-out (engine, protocols, cloud,
// paillier, dj).
func TestSecQuerySerialParallelEquivalence(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)

	type outcome struct {
		revealed []RevealedResult
		depth    int
		halted   bool
	}
	run := func(par int, mode Mode) outcome {
		t.Helper()
		server, err := cloud.NewServer(r.scheme.KeyMaterial(), nil, cloud.WithParallelism(par))
		if err != nil {
			t.Fatalf("NewServer(par=%d): %v", par, err)
		}
		defer server.Close()
		client, err := cloud.NewClient(transport.NewLocal(server, transport.NewStats()),
			r.scheme.PublicKey(), nil, cloud.WithParallelism(par))
		if err != nil {
			t.Fatalf("NewClient(par=%d): %v", par, err)
		}
		defer client.Close()
		tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 3)
		if err != nil {
			t.Fatalf("Token: %v", err)
		}
		engine, err := NewEngine(client, er)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		res, err := engine.SecQuery(context.Background(), tk, Options{Mode: mode, Halt: HaltStrict, Parallelism: par})
		if err != nil {
			t.Fatalf("SecQuery(%v, par=%d): %v", mode, par, err)
		}
		rev, err := r.scheme.NewRevealer(er.N)
		if err != nil {
			t.Fatalf("NewRevealer: %v", err)
		}
		revealed, err := rev.RevealTopK(res.Items)
		if err != nil {
			t.Fatalf("RevealTopK: %v", err)
		}
		return outcome{revealed: revealed, depth: res.Depth, halted: res.Halted}
	}

	for _, mode := range []Mode{QryF, QryE, QryBa} {
		serial := run(1, mode)
		pooled := run(8, mode)
		if serial.depth != pooled.depth || serial.halted != pooled.halted {
			t.Errorf("%v: serial (depth=%d halted=%v) vs parallel (depth=%d halted=%v)",
				mode, serial.depth, serial.halted, pooled.depth, pooled.halted)
		}
		if len(serial.revealed) != len(pooled.revealed) {
			t.Fatalf("%v: result sizes differ: %d vs %d", mode, len(serial.revealed), len(pooled.revealed))
		}
		for i := range serial.revealed {
			if serial.revealed[i] != pooled.revealed[i] {
				t.Errorf("%v: rank %d differs: serial %+v vs parallel %+v",
					mode, i, serial.revealed[i], pooled.revealed[i])
			}
		}
	}
}
