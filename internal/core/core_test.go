package core

import (
	"context"
	"sort"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/nra"
	"repro/internal/transport"
)

// testRig shares one expensive key setup across all core tests.
type testRig struct {
	scheme *Scheme
	server *cloud.Server
	client *cloud.Client
	s2led  *cloud.Ledger
	s1led  *cloud.Ledger
	stats  *transport.Stats
}

var (
	rigOnce sync.Once
	rig     *testRig
)

func getRig(t testing.TB) *testRig {
	t.Helper()
	rigOnce.Do(func() {
		params := Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20}
		scheme, err := NewScheme(params)
		if err != nil {
			t.Fatalf("NewScheme: %v", err)
		}
		s2led := cloud.NewLedger()
		server, err := cloud.NewServer(scheme.KeyMaterial(), s2led)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		stats := transport.NewStats()
		s1led := cloud.NewLedger()
		client, err := cloud.NewClient(transport.NewLocal(server, stats), scheme.PublicKey(), s1led)
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		rig = &testRig{scheme: scheme, server: server, client: client, s2led: s2led, s1led: s1led, stats: stats}
	})
	return rig
}

// figure3 is the paper's running example (see nra tests).
func figure3() *dataset.Relation {
	return &dataset.Relation{
		Name: "fig3",
		Rows: [][]int64{
			{10, 3, 2}, // X1
			{8, 8, 0},  // X2
			{5, 7, 6},  // X3
			{3, 2, 8},  // X4
			{1, 1, 1},  // X5
		},
	}
}

func encryptFig3(t *testing.T, r *testRig) *EncryptedRelation {
	t.Helper()
	er, err := r.scheme.EncryptRelation(figure3())
	if err != nil {
		t.Fatalf("EncryptRelation: %v", err)
	}
	return er
}

func runQuery(t *testing.T, r *testRig, er *EncryptedRelation, attrs []int, weights []int64, k int, opts Options) (*QueryResult, []RevealedResult) {
	t.Helper()
	tk, err := r.scheme.Token(er, attrs, weights, k)
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	engine, err := NewEngine(r.client, er)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := engine.SecQuery(context.Background(), tk, opts)
	if err != nil {
		t.Fatalf("SecQuery(%v): %v", opts.Mode, err)
	}
	rev, err := r.scheme.NewRevealer(er.N)
	if err != nil {
		t.Fatalf("NewRevealer: %v", err)
	}
	revealed, err := rev.RevealTopK(res.Items)
	if err != nil {
		t.Fatalf("RevealTopK: %v", err)
	}
	return res, revealed
}

func TestPaperExampleQryF(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	res, revealed := runQuery(t, r, er, []int{0, 1, 2}, nil, 2, Options{Mode: QryF, Halt: HaltPaper})
	if !res.Halted {
		t.Fatal("query should have halted")
	}
	if res.Depth != 3 {
		t.Fatalf("halting depth = %d, want 3 (Figure 3c)", res.Depth)
	}
	if len(revealed) != 2 {
		t.Fatalf("got %d results", len(revealed))
	}
	// Top-2: X3 (id 2, worst 18) then X2 (id 1, worst 16).
	if revealed[0].Obj != 2 || revealed[0].Worst != 18 {
		t.Fatalf("result[0] = %+v, want X3/18", revealed[0])
	}
	if revealed[1].Obj != 1 || revealed[1].Worst != 16 {
		t.Fatalf("result[1] = %+v, want X2/16", revealed[1])
	}
}

func TestPaperExampleQryE(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	res, revealed := runQuery(t, r, er, []int{0, 1, 2}, nil, 2, Options{Mode: QryE, Halt: HaltPaper})
	if !res.Halted || res.Depth != 3 {
		t.Fatalf("QryE: depth=%d halted=%v, want 3/true", res.Depth, res.Halted)
	}
	if revealed[0].Obj != 2 || revealed[1].Obj != 1 {
		t.Fatalf("QryE top-2 = %+v", revealed)
	}
}

func TestPaperExampleQryBa(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	res, revealed := runQuery(t, r, er, []int{0, 1, 2}, nil, 2,
		Options{Mode: QryBa, Halt: HaltPaper, BatchDepth: 2})
	if !res.Halted {
		t.Fatal("QryBa should halt")
	}
	if res.Depth != 4 {
		t.Fatalf("QryBa halting depth = %d, want 4 (first boundary whose check fires)", res.Depth)
	}
	if revealed[0].Obj != 2 || revealed[0].Worst != 18 || revealed[1].Obj != 1 || revealed[1].Worst != 16 {
		t.Fatalf("QryBa top-2 = %+v", revealed)
	}
}

func TestPaperExampleWithFullSort(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	res, revealed := runQuery(t, r, er, []int{0, 1, 2}, nil, 2,
		Options{Mode: QryF, Halt: HaltPaper, Sort: SortFull})
	if res.Depth != 3 || revealed[0].Obj != 2 || revealed[1].Obj != 1 {
		t.Fatalf("full-sort run: depth=%d revealed=%+v", res.Depth, revealed)
	}
}

func TestStrictHaltingMatchesGroundTruthAcrossModes(t *testing.T) {
	if testing.Short() {
		t.Skip("three-mode ground-truth sweep is slow; skipped in -short mode")
	}
	r := getRig(t)
	spec := dataset.Spec{Name: "corr", N: 24, M: 3, MaxScore: 400, Shape: dataset.ShapeGaussian, Correlation: 0.85}
	rel, err := dataset.Generate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	er, err := r.scheme.EncryptRelation(rel)
	if err != nil {
		t.Fatal(err)
	}
	attrs := []int{0, 1, 2}
	const k = 3
	want, err := nra.TopKExact(rel, attrs, nil, k)
	if err != nil {
		t.Fatal(err)
	}
	wantScores := make([]int64, k)
	for i, w := range want {
		wantScores[i] = w.Worst
	}
	for _, mode := range []Mode{QryF, QryE, QryBa} {
		opts := Options{Mode: mode, Halt: HaltStrict}
		if mode == QryBa {
			opts.BatchDepth = 4
		}
		res, revealed := runQuery(t, r, er, attrs, nil, k, opts)
		if !res.Halted {
			t.Fatalf("%v: did not halt", mode)
		}
		if len(revealed) != k {
			t.Fatalf("%v: %d results", mode, len(revealed))
		}
		// Compare true-score multisets (ties make ids ambiguous).
		gotScores := make([]int64, k)
		for i, g := range revealed {
			gotScores[i] = rel.Score(g.Obj, attrs, nil)
		}
		sort.Slice(gotScores, func(i, j int) bool { return gotScores[i] > gotScores[j] })
		for i := range wantScores {
			if gotScores[i] != wantScores[i] {
				t.Fatalf("%v: scores %v, want %v", mode, gotScores, wantScores)
			}
		}
	}
}

func TestWeightedQuery(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	rel := figure3()
	attrs := []int{0, 1}
	weights := []int64{3, 1}
	want, err := nra.TopKExact(rel, attrs, weights, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, revealed := runQuery(t, r, er, attrs, weights, 1, Options{Mode: QryE, Halt: HaltStrict})
	if revealed[0].Obj != want[0].Obj {
		t.Fatalf("weighted top-1 = %+v, want obj %d", revealed[0], want[0].Obj)
	}
	if revealed[0].Worst != want[0].Worst {
		t.Fatalf("weighted top-1 worst = %d, want %d", revealed[0].Worst, want[0].Worst)
	}
}

func TestSubsetOfAttributes(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	rel := figure3()
	attrs := []int{1, 2}
	want, err := nra.TopKExact(rel, attrs, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, revealed := runQuery(t, r, er, attrs, nil, 2, Options{Mode: QryE, Halt: HaltStrict})
	gotObjs := []int{revealed[0].Obj, revealed[1].Obj}
	sort.Ints(gotObjs)
	wantObjs := []int{want[0].Obj, want[1].Obj}
	sort.Ints(wantObjs)
	if gotObjs[0] != wantObjs[0] || gotObjs[1] != wantObjs[1] {
		t.Fatalf("subset query top-2 = %v, want %v", gotObjs, wantObjs)
	}
}

func TestMaxDepthCap(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(r.client, er)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltStrict, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("capped scan should not report halted")
	}
	if res.Depth != 1 {
		t.Fatalf("depth = %d, want 1", res.Depth)
	}
}

func TestK1AndKn(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	rel := figure3()
	attrs := []int{0, 1, 2}
	_, revealed := runQuery(t, r, er, attrs, nil, 1, Options{Mode: QryE, Halt: HaltStrict})
	want, _ := nra.TopKExact(rel, attrs, nil, 1)
	if revealed[0].Obj != want[0].Obj || revealed[0].Worst != want[0].Worst {
		t.Fatalf("k=1: %+v, want %+v", revealed[0], want[0])
	}
	// k = n forces a full scan; results must be the complete ranking.
	res, revealedAll := runQuery(t, r, er, attrs, nil, 5, Options{Mode: QryE, Halt: HaltStrict})
	if len(revealedAll) != 5 {
		t.Fatalf("k=n returned %d items", len(revealedAll))
	}
	if !res.Halted {
		t.Fatal("full scan should report halted (exact)")
	}
	for i := 1; i < len(revealedAll); i++ {
		if revealedAll[i-1].Worst < revealedAll[i].Worst {
			t.Fatalf("k=n ranking not sorted: %+v", revealedAll)
		}
	}
}

func TestLeakageProfile(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	r.s1led.Reset()
	r.s2led.Reset()
	_, _ = runQuery(t, r, er, []int{0, 1, 2}, nil, 2, Options{Mode: QryE, Halt: HaltPaper})

	// S1's view: query pattern + halting depth (+ uniqueness pattern in
	// Qry_E).
	s1 := r.s1led.Events()
	var hasQP, hasDepth, hasUP bool
	for _, ev := range s1 {
		switch ev.Method {
		case "Token":
			hasQP = true
		case "Query":
			hasDepth = true
		case cloud.MethodDedup:
			hasUP = true
		}
	}
	if !hasQP || !hasDepth || !hasUP {
		t.Fatalf("S1 leakage events missing: QP=%v depth=%v UP=%v (%v)", hasQP, hasDepth, hasUP, s1)
	}
	// S2's view: per-round equality patterns; no event should carry
	// anything beyond counts.
	if len(r.s2led.ByMethod(cloud.MethodEqBits)) == 0 {
		t.Fatal("S2 should have recorded equality-pattern events")
	}
	// Query pattern detection: repeat the query and check the counter.
	r.s1led.Reset()
	_, _ = runQuery(t, r, er, []int{0, 1, 2}, nil, 2, Options{Mode: QryE, Halt: HaltPaper})
	// The runQuery helper builds a fresh engine, so instead check directly:
	engine, _ := NewEngine(r.client, er)
	tk, _ := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if _, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltPaper, MaxDepth: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryE, Halt: HaltPaper, MaxDepth: 1}); err != nil {
		t.Fatal(err)
	}
	var sawRepeat bool
	for _, ev := range r.s1led.ByMethod("Token") {
		if ev.Detail == "query pattern: repeat #2 of this token (m=3, k=2)" {
			sawRepeat = true
		}
	}
	if !sawRepeat {
		t.Fatalf("query pattern repeat not recorded: %v", r.s1led.ByMethod("Token"))
	}
}

// TestQueryPatternIdempotencyKey checks the QueryID dedup: re-executing
// a run under the same QueryID (a client-plane retry) does not inflate
// the token's repeat count, while a fresh QueryID still does.
func TestQueryPatternIdempotencyKey(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	engine, err := NewEngine(r.client, er)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.scheme.Token(er, []int{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.s1led.Reset()
	opts := Options{Mode: QryE, Halt: HaltPaper, MaxDepth: 1, QueryID: "q-1"}
	for i := 0; i < 2; i++ { // same QueryID twice: one retry
		if _, err := engine.SecQuery(context.Background(), tk, opts); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(r.s1led.ByMethod("Token")); got != 1 {
		t.Fatalf("token events after a retried run = %d, want 1 (retry must not recount): %v",
			got, r.s1led.ByMethod("Token"))
	}
	opts.QueryID = "q-2" // a genuinely new run of the same token
	if _, err := engine.SecQuery(context.Background(), tk, opts); err != nil {
		t.Fatal(err)
	}
	var sawSecond bool
	for _, ev := range r.s1led.ByMethod("Token") {
		if ev.Detail == "query pattern: repeat #2 of this token (m=3, k=2)" {
			sawSecond = true
		}
	}
	if !sawSecond {
		t.Fatalf("fresh QueryID did not count as a repeat: %v", r.s1led.ByMethod("Token"))
	}
}

func TestTokenValidation(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	if _, err := r.scheme.Token(er, nil, nil, 2); err == nil {
		t.Fatal("expected error for empty attribute set")
	}
	if _, err := r.scheme.Token(er, []int{9}, nil, 2); err == nil {
		t.Fatal("expected error for attribute out of range")
	}
	if _, err := r.scheme.Token(er, []int{0, 0}, nil, 2); err == nil {
		t.Fatal("expected error for duplicate attribute")
	}
	if _, err := r.scheme.Token(er, []int{0}, []int64{1, 2}, 2); err == nil {
		t.Fatal("expected error for weight mismatch")
	}
	if _, err := r.scheme.Token(er, []int{0}, []int64{-1}, 2); err == nil {
		t.Fatal("expected error for negative weight")
	}
	if _, err := r.scheme.Token(er, []int{0}, nil, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := r.scheme.Token(er, []int{0}, nil, 99); err == nil {
		t.Fatal("expected error for k>n")
	}
	if _, err := r.scheme.Token(nil, []int{0}, nil, 1); err == nil {
		t.Fatal("expected error for nil relation")
	}
}

func TestEngineValidation(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	if _, err := NewEngine(nil, er); err == nil {
		t.Fatal("expected error for nil client")
	}
	if _, err := NewEngine(r.client, nil); err == nil {
		t.Fatal("expected error for nil relation")
	}
	engine, _ := NewEngine(r.client, er)
	if _, err := engine.SecQuery(context.Background(), nil, Options{}); err == nil {
		t.Fatal("expected error for nil token")
	}
	if _, err := engine.SecQuery(context.Background(), &Token{K: 2, Lists: []int{99}}, Options{}); err == nil {
		t.Fatal("expected error for bad list position")
	}
	if _, err := engine.SecQuery(context.Background(), &Token{K: 0, Lists: []int{0}}, Options{}); err == nil {
		t.Fatal("expected error for k=0")
	}
	// Qry_Ba requires p >= k.
	tk, _ := r.scheme.Token(er, []int{0, 1}, nil, 4)
	if _, err := engine.SecQuery(context.Background(), tk, Options{Mode: QryBa, BatchDepth: 2}); err == nil {
		t.Fatal("expected error for p < k")
	}
}

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme(Params{KeyBits: 16, EHL: ehl.DefaultPlusParams(), MaxScoreBits: 8}); err == nil {
		t.Fatal("expected error for tiny key")
	}
	if _, err := NewScheme(Params{KeyBits: 256, EHL: ehl.Params{}, MaxScoreBits: 8}); err == nil {
		t.Fatal("expected error for invalid EHL params")
	}
	if _, err := NewScheme(Params{KeyBits: 256, EHL: ehl.DefaultPlusParams(), MaxScoreBits: 0}); err == nil {
		t.Fatal("expected error for zero score bits")
	}
	if _, err := NewSchemeFromKeys(DefaultParams(), nil); err == nil {
		t.Fatal("expected error for nil keys")
	}
}

func TestEncryptRelationValidation(t *testing.T) {
	r := getRig(t)
	if _, err := r.scheme.EncryptRelation(nil); err == nil {
		t.Fatal("expected error for nil relation")
	}
	big := &dataset.Relation{Name: "big", Rows: [][]int64{{1 << 30}}}
	if _, err := r.scheme.EncryptRelation(big); err == nil {
		t.Fatal("expected error for score exceeding MaxScoreBits")
	}
	ragged := &dataset.Relation{Name: "ragged", Rows: [][]int64{{1, 2}, {3}}}
	if _, err := r.scheme.EncryptRelation(ragged); err == nil {
		t.Fatal("expected error for ragged relation")
	}
}

func TestEncryptedRelationShapeAndSize(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)
	if er.N != 5 || er.M != 3 || len(er.Lists) != 3 {
		t.Fatalf("ER shape wrong: %d %d %d", er.N, er.M, len(er.Lists))
	}
	for _, l := range er.Lists {
		if len(l) != 5 {
			t.Fatalf("list length %d, want 5", len(l))
		}
	}
	sz := er.ByteSize(r.scheme.PublicKey())
	// 3 lists * 5 items * (3 EHL slots + 1 score) ciphertexts of 64 bytes
	// (256-bit N -> 512-bit N^2).
	want := int64(3 * 5 * 4 * r.scheme.PublicKey().ByteLen())
	if sz != want {
		t.Fatalf("ByteSize = %d, want %d", sz, want)
	}
}

func TestRevealerErrors(t *testing.T) {
	r := getRig(t)
	rev, err := r.scheme.NewRevealer(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rev.Object(nil); err == nil {
		t.Fatal("expected error for nil EHL")
	}
	// A random list must not resolve.
	random, err := ehl.RandomList(r.scheme.PublicKey(), ehl.Params{Kind: ehl.KindPlus, S: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rev.Object(random); err == nil {
		t.Fatal("expected error for unknown digest")
	}
	if _, err := r.scheme.NewRevealer(0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestModeString(t *testing.T) {
	if QryF.String() != "Qry_F" || QryE.String() != "Qry_E" || QryBa.String() != "Qry_Ba" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should format")
	}
}
