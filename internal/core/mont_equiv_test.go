package core

import (
	"testing"

	"repro/internal/zmath"
)

// TestQueryModesBitEquivalentAcrossEngines runs the paper's running
// example through all three query modes with the Montgomery engine forced
// on and then forced off. The revealed top-k (objects and exact worst
// scores) must be identical: the engine is an arithmetic backend swap,
// never a semantic change.
func TestQueryModesBitEquivalentAcrossEngines(t *testing.T) {
	r := getRig(t)
	er := encryptFig3(t, r)

	prev := zmath.MontgomeryEnabled()
	defer zmath.SetMontgomeryEnabled(prev)

	modes := []struct {
		name string
		opts Options
	}{
		{"QryF", Options{Mode: QryF, Halt: HaltPaper}},
		{"QryE", Options{Mode: QryE, Halt: HaltPaper}},
		{"QryBa", Options{Mode: QryBa, Halt: HaltPaper, BatchDepth: 2}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			var ref []RevealedResult
			for _, on := range []bool{true, false} {
				zmath.SetMontgomeryEnabled(on)
				_, revealed := runQuery(t, r, er, []int{0, 1, 2}, nil, 2, mode.opts)
				if ref == nil {
					ref = revealed
					continue
				}
				if len(revealed) != len(ref) {
					t.Fatalf("engine toggle changed result count: %d vs %d", len(revealed), len(ref))
				}
				for i := range ref {
					if revealed[i].Obj != ref[i].Obj || revealed[i].Worst != ref[i].Worst {
						t.Errorf("result %d diverges across engines: mont-on (%d, %d) vs mont-off (%d, %d)",
							i, ref[i].Obj, ref[i].Worst, revealed[i].Obj, revealed[i].Worst)
					}
				}
			}
		})
	}
}
