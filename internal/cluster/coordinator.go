// Package cluster fans one top-k query out across many S1 processes and
// merges the results under the same NRA-style soundness argument as the
// in-process shard merge.
//
// The placement model is a tiling: a relation is Split round-robin into
// P shards (internal/shard), and every cluster member hosts a disjoint
// subset of those shards under the owner's shared keys, provisioned via
// the secio "hosted-subset" handoff format. A Coordinator — the query
// front door — learns each member's subset from its Hello, validates
// that the subsets tile the relation exactly (every global shard index
// hosted exactly once, shape metadata and key material consistent
// everywhere), and then serves queries in rounds:
//
//	round 1 (fan-out):  send the token to every member concurrently; each
//	                    runs its shards' candidate scans against S2 and
//	                    returns P_i candidate sets.
//	round 2 (merge):    union the P candidate sets in global shard order,
//	                    EncSelectTop the k best by worst-score, and check
//	                    the NRA bound — every non-selected upper bound and
//	                    every shard residual dominated by the merged k-th
//	                    worst — in one EncCompareBatch.
//	round 3 (rescan):   only if the check could not certify (a relaxed-
//	                    halting or depth-capped shard may hide a better
//	                    object): repeat the fan-out with ExactScan, after
//	                    which every bound is the exact aggregate and the
//	                    re-merge is unconditionally certified.
//
// Soundness is inherited unchanged from the in-process merge (see
// internal/shard and DESIGN.md's "Shard merge bound" errata note):
// the argument is about disjoint row subsets, not about which process
// scans them. Because every member clamps k to each shard's size and the
// coordinator validated k against the global N, cluster answers are
// revealed-identical to a single node hosting all P shards.
//
// Failure semantics: a member that cannot be reached mid-query fails the
// query fast with a typed unavailable error naming the member (wrapping
// the transport cause); sibling fan-outs are canceled. Epoch pinning is
// strict — every candidate request carries the epoch the placement was
// assembled at, so a re-provisioned member fails typed-stale rather than
// contributing candidates from a different version of the relation.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/secerr"
	"repro/internal/secio"
	"repro/internal/transport"
)

// Contribution is one member's part of a relation's placement: its
// identity, the caller reaching its cluster listener, and the subset it
// announced in Hello.
type Contribution struct {
	Member string
	Caller transport.Caller
	Info   SubsetInfo
}

// Coordinator serves distributed top-k queries over one relation's
// placement. It is safe for concurrent use: queries build only per-call
// state.
type Coordinator struct {
	client  *cloud.Client
	name    string
	members []Contribution

	total        int // global shard count P
	n, m         int // global dimensions
	maxScoreBits int
	epoch        uint64
	pk           *big.Int
}

// NewCoordinator validates that the contributions tile the relation —
// every global shard index hosted exactly once, consistent shape
// metadata, key material, and epoch — and assembles the global
// dimensions the token validation and merge bound need. The client is
// the coordinator's own S2 connection (the merge rounds run on it).
func NewCoordinator(client *cloud.Client, name string, members []Contribution) (*Coordinator, error) {
	if client == nil {
		return nil, fmt.Errorf("cluster: nil client")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: relation %q has no contributing members", name)
	}
	first := members[0].Info
	if first.Total < 1 {
		return nil, fmt.Errorf("cluster: member %s announces shard total %d", members[0].Member, first.Total)
	}
	c := &Coordinator{
		client: client, name: name, members: members,
		total: first.Total, m: first.M, maxScoreBits: first.MaxScoreBits,
		epoch: first.Epoch, pk: first.PK,
	}
	owner := make(map[int]string, c.total)
	for _, mc := range members {
		info := mc.Info
		if info.Relation != name {
			return nil, fmt.Errorf("cluster: member %s contributed relation %q to placement of %q", mc.Member, info.Relation, name)
		}
		if info.Total != c.total || info.M != c.m || info.MaxScoreBits != c.maxScoreBits {
			return nil, fmt.Errorf("cluster: member %s shape (P=%d, m=%d, scorebits=%d) differs from member %s (P=%d, m=%d, scorebits=%d)",
				mc.Member, info.Total, info.M, info.MaxScoreBits, members[0].Member, c.total, c.m, c.maxScoreBits)
		}
		if info.Epoch != c.epoch {
			return nil, fmt.Errorf("cluster: member %s hosts epoch %d but member %s hosts epoch %d — re-provision before joining",
				mc.Member, info.Epoch, members[0].Member, c.epoch)
		}
		if info.PK == nil || c.pk == nil || info.PK.Cmp(c.pk) != 0 {
			return nil, fmt.Errorf("cluster: member %s announces different key material than member %s", mc.Member, members[0].Member)
		}
		if len(info.Rows) != len(info.Indices) {
			return nil, fmt.Errorf("cluster: member %s announces %d row counts for %d shards", mc.Member, len(info.Rows), len(info.Indices))
		}
		for j, ix := range info.Indices {
			if ix < 0 || ix >= c.total {
				return nil, fmt.Errorf("cluster: member %s announces shard index %d out of range [0,%d)", mc.Member, ix, c.total)
			}
			if prev, dup := owner[ix]; dup {
				return nil, fmt.Errorf("cluster: shard %d of %q hosted by both %s and %s", ix, name, prev, mc.Member)
			}
			owner[ix] = mc.Member
			c.n += info.Rows[j]
		}
	}
	if len(owner) != c.total {
		missing := make([]int, 0, c.total-len(owner))
		for ix := 0; ix < c.total; ix++ {
			if _, ok := owner[ix]; !ok {
				missing = append(missing, ix)
			}
		}
		return nil, fmt.Errorf("cluster: placement of %q does not tile the relation: shards %v unhosted", name, missing)
	}
	// Deterministic fan-out order (members sorted by their first shard)
	// keeps logs and traffic stable across restarts; the merge itself
	// reassembles candidate sets in global shard order regardless.
	sort.SliceStable(c.members, func(i, j int) bool {
		return c.members[i].Info.Indices[0] < c.members[j].Info.Indices[0]
	})
	return c, nil
}

// Relation returns the placement's relation id.
func (c *Coordinator) Relation() string { return c.name }

// N and M return the global relation dimensions; Shards the global shard
// count P; Members the member count; Epoch the pinned relation epoch.
func (c *Coordinator) N() int        { return c.n }
func (c *Coordinator) M() int        { return c.m }
func (c *Coordinator) Shards() int   { return c.total }
func (c *Coordinator) Members() int  { return len(c.members) }
func (c *Coordinator) Epoch() uint64 { return c.epoch }
func (c *Coordinator) PK() *big.Int  { return c.pk }

// MemberIDs returns the contributing members' identities in fan-out
// order.
func (c *Coordinator) MemberIDs() []string {
	ids := make([]string, len(c.members))
	for i, m := range c.members {
		ids[i] = m.Member
	}
	return ids
}

// ValidateToken checks a token against the global relation dimensions —
// the same checks a single node hosting all shards would make.
func (c *Coordinator) ValidateToken(tk *core.Token) error {
	if tk == nil {
		return secerr.New(secerr.CodeInvalidToken, "cluster: nil token")
	}
	if len(tk.Lists) == 0 {
		return secerr.New(secerr.CodeInvalidToken, "cluster: token selects no lists")
	}
	for _, p := range tk.Lists {
		if p < 0 || p >= c.m {
			return secerr.New(secerr.CodeInvalidToken, "cluster: token list position %d out of range", p)
		}
	}
	if tk.Weights != nil && len(tk.Weights) != len(tk.Lists) {
		return secerr.New(secerr.CodeInvalidToken, "cluster: token has %d weights for %d lists", len(tk.Weights), len(tk.Lists))
	}
	if tk.K <= 0 || tk.K > c.n {
		return secerr.New(secerr.CodeInvalidToken, "cluster: token k=%d out of range", tk.K)
	}
	return nil
}

// SecQuery executes one distributed top-k query through the coordinator
// rounds: fan-out, merge-and-certify, and — only when certification
// fails — the exact-rescan fallback. The result is revealed-identical to
// a single node hosting every shard.
func (c *Coordinator) SecQuery(ctx context.Context, tk *core.Token, opts core.Options) (*core.QueryResult, error) {
	if err := c.ValidateToken(tk); err != nil {
		return nil, err
	}
	tkBytes, err := encodeToken(tk)
	if err != nil {
		return nil, err
	}
	st := &state{c: c, tk: tk, tkBytes: tkBytes, opts: opts}
	var r round = &roundFanOut{st: st}
	for r != nil {
		r, err = r.run(ctx)
		if err != nil {
			return nil, err
		}
	}
	return st.res, nil
}

// encodeToken serializes the token once per query; every member receives
// the same bytes.
func encodeToken(tk *core.Token) ([]byte, error) {
	var buf bytes.Buffer
	if err := secio.WriteToken(&buf, tk); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
