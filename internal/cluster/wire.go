package cluster

import (
	"bytes"
	"context"
	"errors"
	"math/big"

	"repro/internal/core"
	"repro/internal/secerr"
	"repro/internal/secio"
	"repro/internal/shard"
	"repro/internal/transport"
)

// Cluster wire v1: the two methods a member serves on its cluster
// listener, multiplexed on the same wire-v2 mux as everything else. The
// listener also falls through to the client-wire methods (the facade's
// responder composes the two), so a front door can forward whole
// queries — join and kNN, which are not shard-partitioned — to the
// member that hosts them using the ordinary client encoding.
const (
	// ProtocolVersion is the current cluster wire version; MinProtocolVersion
	// the oldest this build still serves.
	ProtocolVersion    = 1
	MinProtocolVersion = 1

	// MethodHello negotiates versions and announces the member's
	// inventory: which shard subsets and whole-relation routes it hosts.
	MethodHello = "Cluster.Hello"
	// MethodCandidates runs one token over the member's shards of a
	// relation and returns the per-shard candidate sets for the
	// coordinator's merge.
	MethodCandidates = "Cluster.Candidates"
)

// HelloRequest opens a coordinator→member session: the version range the
// coordinator speaks.
type HelloRequest struct {
	Min, Max int
}

// SubsetInfo is a member's announcement of one hosted shard subset: its
// placement within the global relation plus the shape metadata the
// coordinator needs to validate tiling and size its merge comparisons.
type SubsetInfo struct {
	Relation string
	// Total is the relation's global shard count P; Indices the global
	// shard indices hosted here; Rows the per-shard row counts aligned
	// with Indices.
	Total   int
	Indices []int
	Rows    []int
	// M and MaxScoreBits are the relation's global shape; Epoch its
	// version; PK the shared Paillier modulus.
	M            int
	MaxScoreBits int
	Epoch        uint64
	PK           *big.Int
}

// RouteInfo announces a relation the member hosts whole — join and kNN
// workloads, which the front door forwards rather than fans out.
type RouteInfo struct {
	Relation string
	Workload string
}

// HelloReply is the member's inventory.
type HelloReply struct {
	Version int
	Member  string
	Subsets []SubsetInfo
	Routes  []RouteInfo
}

// Options carries core.Options across the cluster wire (ExactScan and
// the idempotency key travel in the enclosing request).
type Options struct {
	Mode, Halt, Sort     int
	BatchDepth, MaxDepth int
	Parallelism          int
	QueryID              string
}

// FromCore converts engine options to their wire form.
func FromCore(o core.Options) Options {
	return Options{
		Mode: int(o.Mode), Halt: int(o.Halt), Sort: int(o.Sort),
		BatchDepth: o.BatchDepth, MaxDepth: o.MaxDepth,
		Parallelism: o.Parallelism, QueryID: o.QueryID,
	}
}

// Core converts wire options back to engine options.
func (o Options) Core() core.Options {
	return core.Options{
		Mode: core.Mode(o.Mode), Halt: core.HaltPolicy(o.Halt), Sort: core.SortStrategy(o.Sort),
		BatchDepth: o.BatchDepth, MaxDepth: o.MaxDepth,
		Parallelism: o.Parallelism, QueryID: o.QueryID,
	}
}

// CandidatesRequest asks a member to run one token over its shards of a
// relation. Epoch pins the member's hosted epoch (non-zero always: the
// coordinator pins the epoch it assembled the placement at, so a cluster
// never merges candidates from mixed epochs). Exact requests the
// merge-bound fallback rescan: an exact full scan, after which every
// returned bound is the exact aggregate.
type CandidatesRequest struct {
	Relation string
	Token    []byte // secio "token" stream
	Options  Options
	Epoch    uint64
	Exact    bool
}

// CandidatesReply carries one secio "candidates" stream per hosted
// shard, aligned with the member's announced Indices.
type CandidatesReply struct {
	Epoch uint64
	Sets  [][]byte
}

// Hosted is one shard subset a member serves: the engine over its local
// shards plus the placement metadata it announces.
type Hosted struct {
	Engine *shard.Engine
	Info   SubsetInfo
}

// Inventory is the member-side state the responder serves from. The
// facade implements it over its hosted-subset registry.
type Inventory interface {
	// Member is this node's cluster identity, reported in Hello and in
	// readiness probes.
	Member() string
	// Subsets lists every hosted shard subset; Subset resolves one.
	Subsets() []*Hosted
	Subset(relation string) (*Hosted, bool)
	// Routes lists the whole-relation workloads this member serves.
	Routes() []RouteInfo
	// Begin brackets one candidate execution into the host's admission
	// and drain accounting. The returned release must be called exactly
	// once iff err is nil.
	Begin(ctx context.Context) (func(), error)
}

// Respond serves one cluster-plane method. handled=false means the
// method is not a cluster method and the caller should fall through to
// its other responders (the facade chains the client-wire responder so
// one listener serves both planes).
func Respond(ctx context.Context, inv Inventory, method string, body []byte) (out []byte, handled bool, err error) {
	switch method {
	case MethodHello:
		out, err = serveHello(inv, body)
		return out, true, err
	case MethodCandidates:
		out, err = serveCandidates(ctx, inv, body)
		return out, true, err
	}
	return nil, false, nil
}

func serveHello(inv Inventory, body []byte) ([]byte, error) {
	var req HelloRequest
	if err := transport.Decode(body, &req); err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cluster: undecodable hello")
	}
	if req.Min > ProtocolVersion || req.Max < MinProtocolVersion {
		return nil, secerr.New(secerr.CodeProtocolVersion,
			"cluster: peer speaks v%d..v%d, this member v%d..v%d", req.Min, req.Max, MinProtocolVersion, ProtocolVersion)
	}
	ver := ProtocolVersion
	if req.Max < ver {
		ver = req.Max
	}
	reply := HelloReply{Version: ver, Member: inv.Member(), Routes: inv.Routes()}
	for _, h := range inv.Subsets() {
		reply.Subsets = append(reply.Subsets, h.Info)
	}
	return transport.Encode(reply)
}

func serveCandidates(ctx context.Context, inv Inventory, body []byte) ([]byte, error) {
	var req CandidatesRequest
	if err := transport.Decode(body, &req); err != nil {
		return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cluster: undecodable candidates request")
	}
	h, ok := inv.Subset(req.Relation)
	if !ok {
		return nil, secerr.New(secerr.CodeUnknownRelation,
			"cluster: member %s hosts no shards of relation %q", inv.Member(), req.Relation)
	}
	if req.Epoch != 0 && req.Epoch != h.Info.Epoch {
		return nil, secerr.New(secerr.CodeRelationStale,
			"cluster: request pinned to epoch %d but member %s hosts epoch %d", req.Epoch, inv.Member(), h.Info.Epoch)
	}
	tk, err := secio.ReadToken(bytes.NewReader(req.Token))
	if err != nil {
		return nil, err
	}
	release, err := inv.Begin(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	opts := req.Options.Core()
	if req.Exact {
		opts.ExactScan = true
		opts.MaxDepth = 0
	}
	sets, err := h.Engine.Candidates(ctx, tk, opts)
	if err != nil {
		// A canceled serve context means this member is draining or its
		// peer link died mid-query; either way the member is unavailable
		// for this call, and the coordinator's retry/typed-error contract
		// depends on seeing that code rather than a bare cancellation
		// bubbled up from deep inside the engine.
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			return nil, secerr.Wrap(secerr.CodeUnavailable, err,
				"cluster: member %s canceled mid-query", inv.Member())
		}
		return nil, err
	}
	reply := CandidatesReply{Epoch: h.Info.Epoch, Sets: make([][]byte, len(sets))}
	for i, cs := range sets {
		var buf bytes.Buffer
		if err := secio.WriteCandidates(&buf, cs); err != nil {
			return nil, err
		}
		reply.Sets[i] = buf.Bytes()
	}
	return transport.Encode(reply)
}
