package cluster

import (
	"bytes"
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/secerr"
	"repro/internal/secio"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// The coordinator's query protocol is round-structured: each round is a
// state transition that either produces the next round or finishes the
// query. The state carries everything a round needs, so rounds stay
// side-effect-free except for the calls they make.

// state is one distributed query's progress through the rounds.
type state struct {
	c       *Coordinator
	tk      *core.Token
	tkBytes []byte
	opts    core.Options
	// sets holds every shard's candidate set in GLOBAL shard order —
	// the same order a single node hosting all shards would produce —
	// so the merge is byte-for-byte the in-process merge.
	sets []*core.CandidateSet
	res  *core.QueryResult
}

// round is one protocol step; run returns the next round, or nil when
// the query is complete (st.res is then set).
type round interface {
	run(ctx context.Context) (round, error)
}

// roundFanOut sends the token to every member concurrently and collects
// their candidate sets. With exact set it requests the merge-bound
// fallback rescan instead of the normal halting scan.
type roundFanOut struct {
	st    *state
	exact bool
}

func (r *roundFanOut) run(ctx context.Context) (round, error) {
	st := r.st
	c := st.c
	st.sets = make([]*core.CandidateSet, c.total)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := range c.members {
		m := &c.members[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sets, err := r.call(ctx, m)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel() // stop sibling members within this round
				}
				mu.Unlock()
				return
			}
			// Reassemble in global shard order; members' replies align
			// with their announced indices.
			mu.Lock()
			for j, cs := range sets {
				st.sets[m.Info.Indices[j]] = cs
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &roundMerge{st: st, exact: r.exact}, nil
}

// call runs one member's Candidates round and decodes its contribution.
// A failed link is wrapped as a typed unavailable error naming the
// member, so a half-up cluster is diagnosable from the message alone.
func (r *roundFanOut) call(ctx context.Context, m *Contribution) ([]*core.CandidateSet, error) {
	req := CandidatesRequest{
		Relation: r.st.c.name,
		Token:    r.st.tkBytes,
		Options:  FromCore(r.st.opts),
		Epoch:    r.st.c.epoch,
		Exact:    r.exact,
	}
	var reply CandidatesReply
	if err := m.Caller.Call(ctx, MethodCandidates, req, &reply); err != nil {
		if secerr.CodeOf(err) == secerr.CodeTransport {
			return nil, secerr.Wrap(secerr.CodeUnavailable, err, "cluster: member %s unreachable", m.Member)
		}
		return nil, secerr.Wrap(secerr.CodeOf(err), err, "cluster: member %s", m.Member)
	}
	if len(reply.Sets) != len(m.Info.Indices) {
		return nil, secerr.New(secerr.CodeBadRequest,
			"cluster: member %s returned %d candidate sets for %d hosted shards", m.Member, len(reply.Sets), len(m.Info.Indices))
	}
	sets := make([]*core.CandidateSet, len(reply.Sets))
	for i, b := range reply.Sets {
		cs, err := secio.ReadCandidates(bytes.NewReader(b))
		if err != nil {
			return nil, secerr.Wrap(secerr.CodeBadRequest, err, "cluster: member %s candidate set %d", m.Member, i)
		}
		sets[i] = cs
	}
	return sets, nil
}

// roundMerge unions the collected candidates and certifies the merged
// top-k with the NRA bound check. Certification failure after a normal
// fan-out triggers the exact rescan; after an exact fan-out it is an
// internal error (every bound is then an exact aggregate, so the check
// cannot fail on honest parties).
type roundMerge struct {
	st    *state
	exact bool
}

func (r *roundMerge) run(ctx context.Context) (round, error) {
	st := r.st
	c := st.c
	magBits := core.MagBits(c.maxScoreBits, st.tk)
	res, certified, err := shard.Merge(ctx, c.client, st.tk.K, magBits, st.sets)
	if err != nil {
		return nil, err
	}
	if certified {
		st.res = res
		return nil, nil
	}
	if r.exact {
		return nil, secerr.New(secerr.CodeInternal, "cluster: merge bound check failed after exact rescan")
	}
	c.client.Ledger().Record("S1", "ClusterMerge",
		"merge bound check failed; exact rescan across %d members (%d shards)", len(c.members), c.total)
	telemetry.Default().Counter("sectopk_merge_fallbacks_total", "scope", "cluster").Inc()
	return &roundFanOut{st: st, exact: true}, nil
}
