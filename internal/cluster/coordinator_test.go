package cluster

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/secerr"
	"repro/internal/shard"
	"repro/internal/transport"
)

type rigT struct {
	scheme *core.Scheme
	client *cloud.Client
	ledger *cloud.Ledger
}

var (
	rigOnce sync.Once
	rig     *rigT
)

func getRig(t testing.TB) *rigT {
	t.Helper()
	rigOnce.Do(func() {
		scheme, err := core.NewScheme(core.Params{
			KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 20,
		})
		if err != nil {
			t.Fatalf("NewScheme: %v", err)
		}
		server, err := cloud.NewServer(scheme.KeyMaterial(), nil)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ledger := cloud.NewLedger()
		client, err := cloud.NewClient(transport.NewLocal(server, nil), scheme.PublicKey(), ledger)
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		rig = &rigT{scheme: scheme, client: client, ledger: ledger}
	})
	return rig
}

func testRelation() *dataset.Relation {
	return &dataset.Relation{
		Name: "clu",
		Rows: [][]int64{
			{30, 3, 2}, {28, 8, 0}, {5, 27, 6}, {3, 2, 28}, {11, 11, 1}, {9, 4, 13},
			{24, 1, 1}, {2, 25, 2}, {7, 7, 7}, {16, 2, 4}, {1, 19, 3}, {6, 6, 20},
		},
	}
}

// info builds a SubsetInfo for a set of shards cut from sh.
func info(sh *shard.Relation, pkN *big.Int, indices ...int) SubsetInfo {
	inf := SubsetInfo{
		Relation: "clu", Total: len(sh.Shards), Indices: indices,
		M: sh.M, MaxScoreBits: sh.MaxScoreBits, Epoch: 1, PK: pkN,
	}
	for _, ix := range indices {
		inf.Rows = append(inf.Rows, sh.Shards[ix].N)
	}
	return inf
}

// memberInventory is a minimal member for in-package tests: it hosts one
// subset directly over a shard.Engine.
type memberInventory struct {
	id     string
	hosted *Hosted
}

func (m *memberInventory) Member() string { return m.id }
func (m *memberInventory) Subsets() []*Hosted {
	return []*Hosted{m.hosted}
}
func (m *memberInventory) Subset(rel string) (*Hosted, bool) {
	if rel == m.hosted.Info.Relation {
		return m.hosted, true
	}
	return nil, false
}
func (m *memberInventory) Routes() []RouteInfo                       { return nil }
func (m *memberInventory) Begin(ctx context.Context) (func(), error) { return func() {}, nil }

// localCaller routes coordinator calls straight into a member's Respond,
// exercising the full wire encode/decode without a socket.
type localCaller struct{ inv Inventory }

func (l localCaller) Call(ctx context.Context, method string, req, resp any) error {
	body, err := transport.Encode(req)
	if err != nil {
		return err
	}
	out, handled, err := Respond(ctx, l.inv, method, body)
	if err != nil {
		return err
	}
	if !handled {
		return secerr.New(secerr.CodeUnknownMethod, "test: method %q not a cluster method", method)
	}
	return transport.Decode(out, resp)
}

// newMember cuts the given shard indices into a member with its own
// engine, returning the coordinator-side contribution.
func newMember(t *testing.T, r *rigT, sh *shard.Relation, id string, indices ...int) Contribution {
	t.Helper()
	subset := make([]*core.EncryptedRelation, len(indices))
	for i, ix := range indices {
		subset[i] = sh.Shards[ix]
	}
	local, err := shard.New(subset)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := shard.NewEngine(r.client, local)
	if err != nil {
		t.Fatal(err)
	}
	inv := &memberInventory{id: id, hosted: &Hosted{Engine: engine, Info: info(sh, r.scheme.PublicKey().N, indices...)}}
	return Contribution{Member: id, Caller: localCaller{inv: inv}, Info: inv.hosted.Info}
}

// TestPlacementValidation pins every way a placement can fail to tile
// the relation.
func TestPlacementValidation(t *testing.T) {
	r := getRig(t)
	sh, err := shard.Encrypt(r.scheme, testRelation(), 4)
	if err != nil {
		t.Fatal(err)
	}
	pkN := r.scheme.PublicKey().N
	a := newMember(t, r, sh, "a", 0, 1)
	b := newMember(t, r, sh, "b", 2, 3)

	t.Run("valid", func(t *testing.T) {
		c, err := NewCoordinator(r.client, "clu", []Contribution{b, a})
		if err != nil {
			t.Fatalf("NewCoordinator: %v", err)
		}
		if c.N() != 12 || c.M() != 3 || c.Shards() != 4 || c.Members() != 2 {
			t.Fatalf("dims = N%d M%d P%d members%d", c.N(), c.M(), c.Shards(), c.Members())
		}
		// Fan-out order is deterministic regardless of join order.
		if ids := c.MemberIDs(); ids[0] != "a" || ids[1] != "b" {
			t.Fatalf("member order = %v", ids)
		}
	})
	t.Run("gap", func(t *testing.T) {
		if _, err := NewCoordinator(r.client, "clu", []Contribution{a}); err == nil || !strings.Contains(err.Error(), "unhosted") {
			t.Fatalf("gap placement: err = %v", err)
		}
	})
	t.Run("overlap", func(t *testing.T) {
		b2 := newMember(t, r, sh, "b2", 1, 2, 3)
		if _, err := NewCoordinator(r.client, "clu", []Contribution{a, b2}); err == nil || !strings.Contains(err.Error(), "hosted by both") {
			t.Fatalf("overlapping placement: err = %v", err)
		}
	})
	t.Run("epoch mismatch", func(t *testing.T) {
		b2 := b
		b2.Info.Epoch = 2
		if _, err := NewCoordinator(r.client, "clu", []Contribution{a, b2}); err == nil || !strings.Contains(err.Error(), "epoch") {
			t.Fatalf("mixed-epoch placement: err = %v", err)
		}
	})
	t.Run("key mismatch", func(t *testing.T) {
		b2 := b
		b2.Info.PK = new(big.Int).Add(pkN, big.NewInt(2))
		if _, err := NewCoordinator(r.client, "clu", []Contribution{a, b2}); err == nil || !strings.Contains(err.Error(), "key material") {
			t.Fatalf("mixed-key placement: err = %v", err)
		}
	})
	t.Run("wrong relation", func(t *testing.T) {
		b2 := b
		b2.Info.Relation = "other"
		if _, err := NewCoordinator(r.client, "clu", []Contribution{a, b2}); err == nil {
			t.Fatal("cross-relation contribution accepted")
		}
	})
	t.Run("rows misaligned", func(t *testing.T) {
		b2 := b
		b2.Info.Rows = b2.Info.Rows[:1]
		if _, err := NewCoordinator(r.client, "clu", []Contribution{a, b2}); err == nil {
			t.Fatal("misaligned row counts accepted")
		}
	})
}

// TestCoordinatorMatchesSingleEngine runs the same token through a
// 2-member coordinator and through one engine hosting all four shards,
// and requires the revealed answers to be identical — the distributed
// merge is the in-process merge.
func TestCoordinatorMatchesSingleEngine(t *testing.T) {
	r := getRig(t)
	sh, err := shard.Encrypt(r.scheme, testRelation(), 4)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(r.client, "clu", []Contribution{
		newMember(t, r, sh, "a", 0, 1),
		newMember(t, r, sh, "b", 2, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := shard.NewEngine(r.client, sh)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.scheme.Token(sh.Shards[0], []int{0, 1, 2}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	tk.K = 3
	rev, err := r.scheme.NewRevealer(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []core.Options{
		{Mode: core.QryE, Halt: core.HaltPaper},
		{Mode: core.QryE, Halt: core.HaltPaper, MaxDepth: 1}, // forces the rescan fallback
	} {
		ctx := context.Background()
		want, err := single.SecQuery(ctx, tk, opts)
		if err != nil {
			t.Fatalf("single-engine SecQuery: %v", err)
		}
		got, err := coord.SecQuery(ctx, tk, opts)
		if err != nil {
			t.Fatalf("coordinator SecQuery: %v", err)
		}
		wantRev, err := rev.RevealTopK(want.Items)
		if err != nil {
			t.Fatal(err)
		}
		gotRev, err := rev.RevealTopK(got.Items)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotRev) != len(wantRev) {
			t.Fatalf("opts %+v: %d items vs %d", opts, len(gotRev), len(wantRev))
		}
		for i := range wantRev {
			if gotRev[i].Obj != wantRev[i].Obj || gotRev[i].Worst != wantRev[i].Worst {
				t.Fatalf("opts %+v item %d: cluster %+v vs single %+v", opts, i, gotRev[i], wantRev[i])
			}
		}
	}
}

// TestCoordinatorEpochPin pins that a member hosting a different epoch
// than the placement fails typed-stale, never silently contributing.
func TestCoordinatorEpochPin(t *testing.T) {
	r := getRig(t)
	sh, err := shard.Encrypt(r.scheme, testRelation(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := newMember(t, r, sh, "a", 0)
	b := newMember(t, r, sh, "b", 1)
	coord, err := NewCoordinator(r.client, "clu", []Contribution{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// The member re-provisions to a newer epoch behind the coordinator's
	// back: its announced Info (and so the serving inventory) moves on.
	b.Caller.(localCaller).inv.(*memberInventory).hosted.Info.Epoch = 2
	tk, err := r.scheme.Token(sh.Shards[0], []int{0, 1}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.SecQuery(context.Background(), tk, core.Options{Mode: core.QryE, Halt: core.HaltPaper})
	if !errors.Is(err, secerr.ErrRelationStale) {
		t.Fatalf("mixed-epoch query: err = %v (code %q), want relation_stale", err, secerr.CodeOf(err))
	}
	if err == nil || !strings.Contains(err.Error(), "b") {
		t.Fatalf("stale error does not name the member: %v", err)
	}
}
