package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, p := range []int{0, 1, 2, 8} {
		n := 257
		hits := make([]int32, n)
		err := ForEach(p, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: unexpected error %v", p, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("p=%d: index %d hit %d times", p, i, h)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	err := ForEach(1, 10, func(i int) error {
		order = append(order, i) // no locking: p=1 must be single-goroutine
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken at %d: got %v", i, order)
		}
	}
}

func TestForEachError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, p := range []int{1, 4} {
		var calls atomic.Int32
		err := ForEach(p, 1000, func(i int) error {
			calls.Add(1)
			if i == 3 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("p=%d: got %v, want sentinel", p, err)
		}
		// Scheduling must stop early; allow in-flight slack.
		if c := calls.Load(); c > 900 {
			t.Fatalf("p=%d: %d calls after error, scheduling did not stop", p, c)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestMapErr(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out, err := MapErr(8, in, func(i, v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if _, err := MapErr(8, in, func(i, v int) (int, error) {
		if v == 42 {
			return 0, errors.New("boom")
		}
		return v, nil
	}); err == nil {
		t.Fatal("expected error")
	}
}
