package parallel

import (
	"sync"
	"time"
)

// Pool runs background filler goroutines that keep a bounded buffer of
// precomputed values. Get never blocks — a drained pool reports !ok and
// the caller computes inline — so a Pool is purely a throughput
// optimization and can never change results. The crypto layers use it to
// precompute the nonce powers that dominate Paillier/DJ encryption.
//
// Fillers start lazily on the first Get: a pool a consumer never draws
// from (e.g. the DJ surface during a query mode that never encrypts under
// it) costs nothing.
type Pool[T any] struct {
	workers int
	fill    func() (T, error)
	ch      chan T
	stop    chan struct{}

	mu      sync.Mutex
	started bool
	closed  bool
	wg      sync.WaitGroup
}

// NewPool prepares a pool of up to capacity precomputed values from fill,
// served by workers filler goroutines once the first Get arrives. A fill
// error stops that filler; consumers keep working through their inline
// fallback and surface the error there. Close must be called to release
// started fillers (it is safe, and a no-op, if none ever started).
func NewPool[T any](workers, capacity int, fill func() (T, error)) *Pool[T] {
	if workers < 1 {
		workers = 1
	}
	if capacity < workers {
		capacity = workers
	}
	return &Pool[T]{
		workers: workers,
		fill:    fill,
		ch:      make(chan T, capacity),
		stop:    make(chan struct{}),
	}
}

func (p *Pool[T]) run() {
	defer p.wg.Done()
	failures := 0
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		v, err := p.fill()
		if err != nil {
			// Transient failures (e.g. a randomness-read blip) get a few
			// backed-off retries; persistent failure stops this filler and
			// consumers surface the error through their inline fallback.
			failures++
			if failures >= 3 {
				return
			}
			select {
			case <-time.After(10 * time.Millisecond):
			case <-p.stop:
				return
			}
			continue
		}
		failures = 0
		select {
		case p.ch <- v:
		case <-p.stop:
			return
		}
	}
}

// Get returns a precomputed value, or ok = false when the buffer is
// drained (the caller should compute inline). The first Get starts the
// background fillers.
func (p *Pool[T]) Get() (v T, ok bool) {
	p.mu.Lock()
	if !p.started && !p.closed {
		p.started = true
		for w := 0; w < p.workers; w++ {
			p.wg.Add(1)
			go p.run()
		}
	}
	p.mu.Unlock()
	select {
	case v = <-p.ch:
		return v, true
	default:
		return v, false
	}
}

// Close stops the background fillers. The pool stays usable afterwards
// (Get reports drained and callers fall back to inline computation).
// Safe to call more than once.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.stop)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
