// Package parallel is the shared parallel-execution substrate: a bounded
// worker pool over index ranges that every per-element big.Int loop in the
// crypto, protocol, cloud, and engine layers runs on.
//
// The parallelism knob follows one convention everywhere:
//
//	0  use all cores (runtime.GOMAXPROCS)
//	1  strictly serial, in index order — byte-for-byte the behavior of a
//	   plain for loop, so serial/parallel equivalence is testable
//	n  at most n worker goroutines
//
// Work items must be independent; ForEach gives each invocation exclusive
// ownership of its index, so writing out[i] from fn(i) is race-free.
//
// Cancellation is cooperative: the Ctx variants check the context before
// every work item (serial path) or before every claim (worker path), so a
// canceled query stops burning exponentiations after at most one
// in-flight item per worker.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to a concrete worker count:
// 0 (or negative) means all cores, otherwise the knob itself.
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(p)
// goroutines. With p == 1 (or n < 2, or a single available core) it
// degenerates to a plain serial loop in index order. The first error stops
// further scheduling and is returned; in-flight items finish first.
func ForEach(p, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), p, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is
// canceled, no further items start (in-flight items finish) and the
// context's error is returned. With the background context the behavior —
// including the strictly serial p == 1 path — is byte-for-byte ForEach.
func ForEachCtx(ctx context.Context, p, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := Workers(p)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					firstErr.CompareAndSwap(nil, errBox{err})
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || firstErr.Load() != nil {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, errBox{err})
					return
				}
			}
		}()
	}
	wg.Wait()
	if v := firstErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

// errBox wraps an error so atomic.Value never sees inconsistently typed
// values (CompareAndSwap requires a consistent concrete type).
type errBox struct{ err error }

// MapErr applies fn to every element of in and collects the results in
// order, scheduling on ForEach with the same knob semantics.
func MapErr[T, U any](p int, in []T, fn func(i int, v T) (U, error)) ([]U, error) {
	return MapErrCtx(context.Background(), p, in, fn)
}

// MapErrCtx is MapErr with cooperative cancellation via ForEachCtx.
func MapErrCtx[T, U any](ctx context.Context, p int, in []T, fn func(i int, v T) (U, error)) ([]U, error) {
	out := make([]U, len(in))
	err := ForEachCtx(ctx, p, len(in), func(i int) error {
		v, err := fn(i, in[i])
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
