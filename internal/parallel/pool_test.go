package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolLazyStartAndGet(t *testing.T) {
	var fills atomic.Int32
	p := NewPool(2, 4, func() (int, error) {
		fills.Add(1)
		return 7, nil
	})
	// No Get yet: fillers must not have started.
	time.Sleep(20 * time.Millisecond)
	if n := fills.Load(); n != 0 {
		t.Fatalf("pool filled %d values before first Get", n)
	}
	// First Get may or may not find a value (fillers just started), but
	// shortly after, values must flow.
	p.Get()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := p.Get(); ok {
			if v != 7 {
				t.Fatalf("pool yielded %d, want 7", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never produced a value after first Get")
		}
		time.Sleep(time.Millisecond)
	}
	p.Close()
	p.Close() // idempotent
}

func TestPoolCloseBeforeUse(t *testing.T) {
	var fills atomic.Int32
	p := NewPool(2, 4, func() (int, error) {
		fills.Add(1)
		return 1, nil
	})
	p.Close()
	if _, ok := p.Get(); ok {
		t.Fatal("closed-before-use pool produced a value")
	}
	time.Sleep(20 * time.Millisecond)
	if n := fills.Load(); n != 0 {
		t.Fatalf("closed-before-use pool ran %d fills", n)
	}
}

func TestPoolFillErrorDegradesToInline(t *testing.T) {
	p := NewPool(1, 2, func() (int, error) {
		return 0, errors.New("rand broke")
	})
	defer p.Close()
	p.Get() // starts the filler, which dies on the error
	time.Sleep(20 * time.Millisecond)
	if _, ok := p.Get(); ok {
		t.Fatal("erroring pool produced a value")
	}
}
