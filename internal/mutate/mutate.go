// Package mutate is the live mutation plane for hosted encrypted
// relations: versioned snapshots of sharded encrypted stores plus the
// delta bundles the owner ships to evolve them without re-encrypting.
//
// The paper's protocol is encrypt-once — every hosted list is frozen at
// Enc time. This package relaxes that with a tombstone layout that
// keeps the query machinery untouched: each shard's permuted sorted
// lists store their LIVE entries first, in exactly the order a fresh
// encryption of the surviving rows would produce, with tombstoned
// (dead) entries appended at the tail. The live view handed to the
// query engine is the [:live] prefix of every list, so tombstones are
// excluded from SecQueryCandidates by construction — the "tombstone set
// consulted before EncSelectTop" is realized structurally rather than
// by per-candidate filtering, which would leak which candidates were
// deleted mid-query.
//
// Deltas address entries by position, not by identity: the data cloud
// never learns which ciphertext belongs to which object, only that the
// entry at live position p of list l died, or that a fresh encrypted
// entry belongs at sorted position q. Positions are computed by the
// owner from its plaintext mirror (which replicates the deterministic
// sort order of core.EncryptRelationWithIDs: score descending, ties by
// global id ascending), so after Apply the live prefix of every list is
// byte-for-byte the layout a fresh encryption would have produced.
//
// Snapshots are immutable: Apply and Compact are copy-on-write and
// return a new *Relation with the epoch advanced; readers holding the
// old snapshot keep a fully consistent view. Epoch mismatches fail
// typed (secerr.CodeRelationStale) so retries are deliberate.
package mutate

import (
	"repro/internal/core"
	"repro/internal/secerr"
)

// DeleteRow tombstones one live row. Pos[p] is the row's entry position
// in list p of the BASE epoch's live view; all deletes in one delta are
// interpreted against that same base view and removed as a set.
type DeleteRow struct {
	// ID is the global object id being tombstoned. The data cloud does
	// not need it to apply the delta (positions suffice) but records it
	// in the shard's tombstone set for compaction accounting — the id is
	// already public to S1 as leakage of the delete operation itself.
	ID  int
	Pos []int
}

// InsertRow adds one fresh encrypted row. Pos[p] is the entry's sorted
// position in list p of the FINAL live view — after every delete and
// every insert of the enclosing delta has landed — and Items[p] is the
// encrypted cell (EHL(id), Enc(score)) destined for list p.
type InsertRow struct {
	ID    int
	Pos   []int
	Items []core.EncItem
}

// ShardDelta is one shard's slice of a delta: deletes against the base
// live view plus inserts into the final live view.
type ShardDelta struct {
	Shard   int
	Deletes []DeleteRow
	Inserts []InsertRow
}

// Delta is one atomic mutation bundle. It applies to exactly the
// relation state at BaseEpoch: applying against any other epoch fails
// with secerr.CodeRelationStale. ID is the idempotency key — the
// hosting side records applied IDs so a retried Apply is a no-op that
// reports the epoch the first application produced.
type Delta struct {
	BaseEpoch uint64
	ID        string
	Shards    []ShardDelta
}

// Rows returns (inserted, deleted) row counts across all shards.
func (d *Delta) Rows() (ins, del int) {
	for _, sd := range d.Shards {
		ins += len(sd.Inserts)
		del += len(sd.Deletes)
	}
	return
}

// Shard is one shard of a mutable relation. ER.N counts LIVE rows; each
// of ER's lists holds ER.N live entries (sorted) followed by Dead
// tombstoned entries. Every delete retires exactly one entry per list,
// so the dead tail length is uniform across the shard's lists.
type Shard struct {
	ER *core.EncryptedRelation
	// Dead is the tombstoned-entry count per list.
	Dead int
	// DeadIDs are the global ids whose rows are tombstoned and not
	// re-inserted (an update re-inserts its id, keeping it live even
	// though the superseded entries joined the dead tail).
	DeadIDs []int
}

// LiveView returns the shard as the query engine must see it: the same
// metadata with every list truncated to its live prefix. The subslices
// share backing arrays with the stored lists — snapshots are immutable,
// so structural sharing is safe.
func (s *Shard) LiveView() *core.EncryptedRelation {
	lists := make([][]core.EncItem, len(s.ER.Lists))
	for p, l := range s.ER.Lists {
		lists[p] = l[:s.ER.N]
	}
	return &core.EncryptedRelation{
		Name: s.ER.Name, N: s.ER.N, M: s.ER.M,
		EHLParams:    s.ER.EHLParams,
		MaxScoreBits: s.ER.MaxScoreBits,
		Lists:        lists,
	}
}

// Relation is one epoch's immutable snapshot of a mutable hosted
// relation.
type Relation struct {
	// Epoch is the monotonic version; a fresh hosting starts at 1.
	Epoch uint64
	// IDSpace is the exclusive upper bound on global object ids ever
	// assigned (live or dead) — the revealer must cover [0, IDSpace).
	IDSpace int
	Shards  []*Shard
}

// New wraps a fresh shard encryption as epoch-1 mutable state. idSpace
// of 0 defaults to the total row count (fresh encryptions number rows
// 0..n-1).
func New(shards []*core.EncryptedRelation, idSpace int) (*Relation, error) {
	if len(shards) == 0 {
		return nil, secerr.New(secerr.CodeBadRequest, "mutate: no shards")
	}
	r := &Relation{Epoch: 1, IDSpace: idSpace, Shards: make([]*Shard, len(shards))}
	total := 0
	for i, er := range shards {
		if er == nil {
			return nil, secerr.New(secerr.CodeBadRequest, "mutate: nil shard %d", i)
		}
		r.Shards[i] = &Shard{ER: er}
		total += er.N
	}
	if r.IDSpace < total {
		r.IDSpace = total
	}
	return r, nil
}

// LiveShards returns every shard's live view, the slice the sharded
// query engine is rebuilt over after each epoch change.
func (r *Relation) LiveShards() []*core.EncryptedRelation {
	out := make([]*core.EncryptedRelation, len(r.Shards))
	for i, s := range r.Shards {
		out[i] = s.LiveView()
	}
	return out
}

// LiveRows returns the live row count across shards.
func (r *Relation) LiveRows() int {
	n := 0
	for _, s := range r.Shards {
		n += s.ER.N
	}
	return n
}

// DeadRows returns the tombstoned-row count across shards.
func (r *Relation) DeadRows() int {
	n := 0
	for _, s := range r.Shards {
		n += s.Dead
	}
	return n
}

// Apply validates the delta against this snapshot and returns the next
// epoch's snapshot. The receiver is never modified; untouched shards
// are shared between snapshots. Epoch mismatch fails with
// secerr.CodeRelationStale; structural problems (positions out of
// range, duplicate targets, shape mismatches) fail with
// secerr.CodeBadRequest before any state is built, so a rejected delta
// leaves nothing behind.
func (r *Relation) Apply(d *Delta) (*Relation, error) {
	if d == nil {
		return nil, secerr.New(secerr.CodeBadRequest, "mutate: nil delta")
	}
	if d.BaseEpoch != r.Epoch {
		return nil, secerr.New(secerr.CodeRelationStale,
			"mutate: delta targets epoch %d, relation is at epoch %d", d.BaseEpoch, r.Epoch)
	}
	next := &Relation{Epoch: r.Epoch + 1, IDSpace: r.IDSpace, Shards: make([]*Shard, len(r.Shards))}
	copy(next.Shards, r.Shards)
	seen := make(map[int]bool, len(d.Shards))
	for _, sd := range d.Shards {
		if sd.Shard < 0 || sd.Shard >= len(r.Shards) {
			return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d out of range [0,%d)", sd.Shard, len(r.Shards))
		}
		if seen[sd.Shard] {
			return nil, secerr.New(secerr.CodeBadRequest, "mutate: duplicate shard %d in delta", sd.Shard)
		}
		seen[sd.Shard] = true
		ns, err := applyShard(r.Shards[sd.Shard], &sd)
		if err != nil {
			return nil, err
		}
		next.Shards[sd.Shard] = ns
		for _, ins := range sd.Inserts {
			if ins.ID >= next.IDSpace {
				next.IDSpace = ins.ID + 1
			}
		}
	}
	return next, nil
}

// applyShard builds one shard's next state. For every list: delete
// positions (base live view) are removed as a set, surviving entries
// keep their relative order, inserts land at their final positions, and
// the removed entries join the dead tail.
func applyShard(s *Shard, sd *ShardDelta) (*Shard, error) {
	m := s.ER.M
	live := s.ER.N
	finalLen := live - len(sd.Deletes) + len(sd.Inserts)
	if finalLen < 0 || live-len(sd.Deletes) < 0 {
		return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d: %d deletes exceed %d live rows", sd.Shard, len(sd.Deletes), live)
	}
	for _, del := range sd.Deletes {
		if len(del.Pos) != m {
			return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d: delete has %d positions for m=%d", sd.Shard, len(del.Pos), m)
		}
	}
	for _, ins := range sd.Inserts {
		if len(ins.Pos) != m || len(ins.Items) != m {
			return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d: insert has %d positions / %d items for m=%d", sd.Shard, len(ins.Pos), len(ins.Items), m)
		}
		for p, it := range ins.Items {
			if it.EHL == nil || it.Score == nil {
				return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d: insert item for list %d is incomplete", sd.Shard, p)
			}
		}
	}
	ns := &Shard{
		ER: &core.EncryptedRelation{
			Name: s.ER.Name, N: finalLen, M: m,
			EHLParams:    s.ER.EHLParams,
			MaxScoreBits: s.ER.MaxScoreBits,
			Lists:        make([][]core.EncItem, m),
		},
		Dead: s.Dead + len(sd.Deletes),
	}
	for p := 0; p < m; p++ {
		oldList := s.ER.Lists[p]
		// Mark the base live view's deleted positions.
		dead := make(map[int]bool, len(sd.Deletes))
		for _, del := range sd.Deletes {
			pos := del.Pos[p]
			if pos < 0 || pos >= live {
				return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d list %d: delete position %d out of live range [0,%d)", sd.Shard, p, pos, live)
			}
			if dead[pos] {
				return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d list %d: duplicate delete position %d", sd.Shard, p, pos)
			}
			dead[pos] = true
		}
		// Place inserts at their final-view positions.
		newList := make([]core.EncItem, finalLen, finalLen+s.Dead+len(sd.Deletes))
		placed := make(map[int]bool, len(sd.Inserts))
		for _, ins := range sd.Inserts {
			pos := ins.Pos[p]
			if pos < 0 || pos >= finalLen {
				return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d list %d: insert position %d out of final range [0,%d)", sd.Shard, p, pos, finalLen)
			}
			if placed[pos] {
				return nil, secerr.New(secerr.CodeBadRequest, "mutate: shard %d list %d: duplicate insert position %d", sd.Shard, p, pos)
			}
			placed[pos] = true
			newList[pos] = ins.Items[p]
		}
		// Stream survivors, in order, into the unclaimed slots.
		out := 0
		removed := make([]core.EncItem, 0, len(sd.Deletes))
		for i := 0; i < live; i++ {
			if dead[i] {
				removed = append(removed, oldList[i])
				continue
			}
			for placed[out] {
				out++
			}
			if out >= finalLen {
				return nil, secerr.New(secerr.CodeInternal, "mutate: shard %d list %d: survivor overflow", sd.Shard, p)
			}
			newList[out] = oldList[i]
			out++
		}
		// Dead tail: the prior tail plus this delta's removals.
		newList = append(newList, oldList[live:]...)
		newList = append(newList, removed...)
		ns.ER.Lists[p] = newList
	}
	// Tombstone-set accounting: deleted ids minus re-inserted ids (an
	// update keeps its id live), unioned with the prior dead set.
	reborn := make(map[int]bool, len(sd.Inserts))
	for _, ins := range sd.Inserts {
		reborn[ins.ID] = true
	}
	for _, id := range s.DeadIDs {
		if !reborn[id] {
			ns.DeadIDs = append(ns.DeadIDs, id)
		}
	}
	for _, del := range sd.Deletes {
		if !reborn[del.ID] {
			ns.DeadIDs = append(ns.DeadIDs, del.ID)
		}
	}
	return ns, nil
}

// Compact folds every shard's tombstones away: lists are truncated to
// their live prefixes (copied, so the new snapshot owns its storage)
// and the dead tails dropped. The epoch advances — compaction changes
// what a position means, so in-flight deltas against the old epoch must
// fail stale rather than land on reshuffled lists.
func (r *Relation) Compact() *Relation {
	next := &Relation{Epoch: r.Epoch + 1, IDSpace: r.IDSpace, Shards: make([]*Shard, len(r.Shards))}
	for i, s := range r.Shards {
		lists := make([][]core.EncItem, len(s.ER.Lists))
		for p, l := range s.ER.Lists {
			lists[p] = append([]core.EncItem(nil), l[:s.ER.N]...)
		}
		next.Shards[i] = &Shard{ER: &core.EncryptedRelation{
			Name: s.ER.Name, N: s.ER.N, M: s.ER.M,
			EHLParams:    s.ER.EHLParams,
			MaxScoreBits: s.ER.MaxScoreBits,
			Lists:        lists,
		}}
	}
	return next
}
