package knn

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/transport"
)

type rig struct {
	keys   *cloud.KeyMaterial
	scheme *Scheme
	client *cloud.Client
}

var (
	rigOnce sync.Once
	shared  *rig
)

func getRig(t testing.TB) *rig {
	t.Helper()
	rigOnce.Do(func() {
		keys, err := cloud.NewKeyMaterial(256)
		if err != nil {
			t.Fatalf("NewKeyMaterial: %v", err)
		}
		scheme, err := NewScheme(keys, ehl.Params{Kind: ehl.KindPlus, S: 3}, 16)
		if err != nil {
			t.Fatalf("NewScheme: %v", err)
		}
		server, err := cloud.NewServer(keys, cloud.NewLedger())
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		client, err := cloud.NewClient(transport.NewLocal(server, transport.NewStats()), &keys.Paillier.PublicKey, cloud.NewLedger())
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		shared = &rig{keys: keys, scheme: scheme, client: client}
	})
	return shared
}

func smallRelation() *dataset.Relation {
	return &dataset.Relation{
		Name: "pts",
		Rows: [][]int64{
			{1, 1},   // 0
			{10, 10}, // 1
			{4, 5},   // 2
			{9, 8},   // 3
			{2, 7},   // 4
		},
	}
}

func TestPlainKNN(t *testing.T) {
	rel := smallRelation()
	objs, dists, err := PlainKNN(rel, []int64{9, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Distances to (9,9): 128, 2, 41, 1, 53 -> nearest: obj 3 (1), obj 1 (2).
	if objs[0] != 3 || objs[1] != 1 {
		t.Fatalf("plain kNN = %v", objs)
	}
	if dists[0] != 1 || dists[1] != 2 {
		t.Fatalf("plain distances = %v", dists)
	}
	if _, _, err := PlainKNN(nil, []int64{1}, 1); err == nil {
		t.Fatal("expected error for nil relation")
	}
	if _, _, err := PlainKNN(rel, []int64{1}, 1); err == nil {
		t.Fatal("expected error for dimension mismatch")
	}
}

func TestSecureKNNMatchesPlain(t *testing.T) {
	r := getRig(t)
	rel := smallRelation()
	db, err := r.scheme.Encrypt(rel)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	engine, err := NewEngine(r.client, db, 16)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	q := []int64{9, 9}
	items, err := engine.Query(context.Background(), q, 2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	rev, err := r.scheme.NewRevealer(rel.N())
	if err != nil {
		t.Fatal(err)
	}
	wantObjs, wantDists, _ := PlainKNN(rel, q, 2)
	for i, it := range items {
		obj, dist, err := rev.Reveal(it)
		if err != nil {
			t.Fatalf("Reveal %d: %v", i, err)
		}
		if obj != wantObjs[i] || dist != wantDists[i] {
			t.Fatalf("result %d = obj %d dist %d, want obj %d dist %d",
				i, obj, dist, wantObjs[i], wantDists[i])
		}
	}
}

func TestTopKViaKNNMatchesSumOfSquaresRanking(t *testing.T) {
	// Section 11.3's reduction: querying the domain's upper corner makes
	// the k nearest records the top-k by the sum-of-squares score.
	r := getRig(t)
	rel := smallRelation()
	db, err := r.scheme.Encrypt(rel)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(r.client, db, 16)
	if err != nil {
		t.Fatal(err)
	}
	const maxScore = 10
	items, err := TopKViaKNN(context.Background(), engine, maxScore, 2)
	if err != nil {
		t.Fatalf("TopKViaKNN: %v", err)
	}
	rev, _ := r.scheme.NewRevealer(rel.N())
	obj0, _, err := rev.Reveal(items[0])
	if err != nil {
		t.Fatal(err)
	}
	obj1, _, err := rev.Reveal(items[1])
	if err != nil {
		t.Fatal(err)
	}
	// Sum-of-squares scores: 2, 200, 41, 145, 53 -> top-2 = obj 1, obj 3.
	if obj0 != 1 || obj1 != 3 {
		t.Fatalf("top-2 via kNN = %d,%d want 1,3", obj0, obj1)
	}
}

func TestQueryValidation(t *testing.T) {
	r := getRig(t)
	db, err := r.scheme.Encrypt(smallRelation())
	if err != nil {
		t.Fatal(err)
	}
	engine, _ := NewEngine(r.client, db, 16)
	if _, err := engine.Query(context.Background(), []int64{1}, 1); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	if _, err := engine.Query(context.Background(), []int64{1, 1}, 0); err == nil {
		t.Fatal("expected k=0 error")
	}
	// k > n clamps.
	items, err := engine.Query(context.Background(), []int64{0, 0}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("k>n should clamp: got %d", len(items))
	}
}

func TestConstructorValidation(t *testing.T) {
	r := getRig(t)
	if _, err := NewScheme(nil, ehl.DefaultPlusParams(), 16); err == nil {
		t.Fatal("expected error for nil keys")
	}
	if _, err := NewScheme(r.keys, ehl.DefaultPlusParams(), 0); err == nil {
		t.Fatal("expected error for zero score bits")
	}
	if _, err := NewEngine(nil, &EncDatabase{N: 1}, 16); err == nil {
		t.Fatal("expected error for nil client")
	}
	if _, err := NewEngine(r.client, nil, 16); err == nil {
		t.Fatal("expected error for nil db")
	}
	if _, err := r.scheme.Encrypt(nil); err == nil {
		t.Fatal("expected error for nil relation")
	}
	big := &dataset.Relation{Name: "big", Rows: [][]int64{{1 << 30}}}
	if _, err := r.scheme.Encrypt(big); err == nil {
		t.Fatal("expected error for oversized scores")
	}
	if _, err := r.scheme.NewRevealer(0); err == nil {
		t.Fatal("expected error for n=0")
	}
}
