// Package knn implements the secure kNN comparator of Section 11.3
// (Elmehdwi, Samanthula, Jiang, ICDE 2014 — the paper's reference [21]),
// adapted to answer top-k selection queries the way Section 11.3
// describes: restrict the scoring function to sum-of-squares, query a
// large-enough point, and return the k nearest neighbors.
//
// The protocol's cost profile is the point of the comparison: every query
// touches all n records with O(n*m) secure multiplications between the
// clouds (both computation and communication scale with the database
// size), whereas SecTopK's per-depth cost is independent of n. The
// benchmark harness reproduces that gap.
package knn

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/prf"
	"repro/internal/protocols"
)

// Scheme is the data owner for the SkNN baseline.
type Scheme struct {
	keys         *cloud.KeyMaterial
	hasher       *ehl.Hasher
	master       prf.Key
	maxScoreBits int
	// enc is the owner's bulk-encryption surface: the assumption-free CRT
	// nonce split, since the owner holds the factorization.
	enc paillier.Encryptor
}

// NewScheme builds the owner over existing key material with a freshly
// sampled id-hashing master key.
func NewScheme(keys *cloud.KeyMaterial, ehlParams ehl.Params, maxScoreBits int) (*Scheme, error) {
	master, err := prf.NewKey()
	if err != nil {
		return nil, err
	}
	return NewSchemeWithMaster(keys, master, ehlParams, maxScoreBits)
}

// NewSchemeWithMaster builds the owner over existing key material and an
// existing id-hashing master key, so a persisted owner can reveal results
// for databases it encrypted in an earlier process (the digest table is
// keyed by the master).
func NewSchemeWithMaster(keys *cloud.KeyMaterial, master prf.Key, ehlParams ehl.Params, maxScoreBits int) (*Scheme, error) {
	if keys == nil || keys.Paillier == nil {
		return nil, errors.New("knn: missing key material")
	}
	if len(master) == 0 {
		return nil, errors.New("knn: missing master key")
	}
	if maxScoreBits <= 0 {
		return nil, errors.New("knn: maxScoreBits must be positive")
	}
	hasher, err := ehl.NewHasher(master, ehlParams, &keys.Paillier.PublicKey)
	if err != nil {
		return nil, err
	}
	return &Scheme{
		keys: keys, hasher: hasher, master: master, maxScoreBits: maxScoreBits,
		enc: keys.Paillier.CRTEncryptor(),
	}, nil
}

// Master returns the id-hashing master key, for owner-side persistence.
func (s *Scheme) Master() prf.Key { return s.master }

// EncRecord is one encrypted record: an id tag plus Enc(x_j) for every
// attribute. (Per Section 11.3 the owner also provisions the squares
// Enc(x_j^2); our engine derives the squared terms with SecMult instead,
// which keeps the O(n*m) two-party multiplication cost the comparison is
// about.)
type EncRecord struct {
	ID     *ehl.List
	Values []*paillier.Ciphertext
}

// EncDatabase is the outsourced encrypted record store.
type EncDatabase struct {
	Name    string
	N, M    int
	Records []EncRecord
}

// Encrypt outsources the relation.
func (s *Scheme) Encrypt(rel *dataset.Relation) (*EncDatabase, error) {
	if rel == nil {
		return nil, errors.New("knn: nil relation")
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if max := rel.MaxScore(); max >= 1<<uint(s.maxScoreBits) {
		return nil, fmt.Errorf("knn: score %d exceeds maxScoreBits=%d", max, s.maxScoreBits)
	}
	out := &EncDatabase{Name: rel.Name, N: rel.N(), M: rel.M()}
	for i := 0; i < rel.N(); i++ {
		rec := EncRecord{}
		id, err := s.hasher.Build(uint64(i))
		if err != nil {
			return nil, err
		}
		rec.ID = id
		for j := 0; j < rel.M(); j++ {
			ct, err := s.enc.Encrypt(big.NewInt(rel.Rows[i][j]))
			if err != nil {
				return nil, err
			}
			rec.Values = append(rec.Values, ct)
		}
		out.Records = append(out.Records, rec)
	}
	return out, nil
}

// Revealer resolves result ids (client side).
type Revealer struct {
	sk     *paillier.PrivateKey
	hasher *ehl.Hasher
	n      int
}

// NewRevealer builds the digest table resolver.
func (s *Scheme) NewRevealer(n int) (*Revealer, error) {
	if n <= 0 {
		return nil, errors.New("knn: revealer needs positive n")
	}
	return &Revealer{sk: s.keys.Paillier, hasher: s.hasher, n: n}, nil
}

// Reveal decrypts one result item into (object id, squared distance).
func (r *Revealer) Reveal(it protocols.Item) (int, int64, error) {
	d, err := r.sk.Decrypt(it.EHL.Cts[0])
	if err != nil {
		return 0, 0, err
	}
	obj := -1
	for i := 0; i < r.n; i++ {
		want, err := r.hasher.Digests(uint64(i))
		if err != nil {
			return 0, 0, err
		}
		if want[0].Cmp(d) == 0 {
			obj = i
			break
		}
	}
	if obj < 0 {
		return 0, 0, errors.New("knn: unknown result id")
	}
	dist, err := r.sk.DecryptSigned(it.Scores[0])
	if err != nil {
		return 0, 0, err
	}
	return obj, dist.Int64(), nil
}

// Engine is S1's SkNN query processor.
type Engine struct {
	client       *cloud.Client
	db           *EncDatabase
	maxScoreBits int
}

// NewEngine builds the engine over an encrypted database.
func NewEngine(client *cloud.Client, db *EncDatabase, maxScoreBits int) (*Engine, error) {
	if client == nil {
		return nil, errors.New("knn: nil client")
	}
	if db == nil || db.N == 0 {
		return nil, errors.New("knn: empty database")
	}
	if maxScoreBits <= 0 {
		return nil, errors.New("knn: maxScoreBits must be positive")
	}
	return &Engine{client: client, db: db, maxScoreBits: maxScoreBits}, nil
}

// Query returns the k records nearest to the (plaintext-weighted,
// encrypted) query point under squared L2 distance. Every query costs
// O(n*m) secure multiplications (one batched round trip carrying n*m
// ciphertexts each way) plus an oblivious k-minimum selection — the cost
// shape Section 11.3 compares against.
func (e *Engine) Query(ctx context.Context, q []int64, k int) ([]protocols.Item, error) {
	if len(q) != e.db.M {
		return nil, fmt.Errorf("knn: query has %d attributes, database has %d", len(q), e.db.M)
	}
	if k <= 0 {
		return nil, errors.New("knn: k must be positive")
	}
	if k > e.db.N {
		k = e.db.N
	}
	pk := e.client.PK()
	// Encrypt the query point: in [21] the querier ships Enc(q) and the
	// clouds compute on it without learning q. The client's configured
	// encryption surface (pooled / fast-nonce) serves the encryptions.
	encQ := make([]*paillier.Ciphertext, e.db.M)
	for j, v := range q {
		ct, err := e.client.Enc().Encrypt(big.NewInt(v))
		if err != nil {
			return nil, err
		}
		encQ[j] = ct
	}
	// Squared distance: d_i = sum_j (x_ij - q_j)^2. The cross terms and
	// squares come from one batched SecMult round over all n*m pairs:
	// (x - q)^2 = (x - q) * (x - q).
	var diffs []*paillier.Ciphertext
	for _, rec := range e.db.Records {
		for j := 0; j < e.db.M; j++ {
			diff, err := pk.Sub(rec.Values[j], encQ[j])
			if err != nil {
				return nil, err
			}
			diffs = append(diffs, diff)
		}
	}
	squares, err := protocols.SecMult(ctx, e.client, diffs, diffs)
	if err != nil {
		return nil, err
	}
	items := make([]protocols.Item, e.db.N)
	for i, rec := range e.db.Records {
		dist, err := pk.EncryptZero()
		if err != nil {
			return nil, err
		}
		for j := 0; j < e.db.M; j++ {
			if dist, err = pk.Add(dist, squares[i*e.db.M+j]); err != nil {
				return nil, err
			}
		}
		items[i] = protocols.Item{EHL: rec.ID, Scores: []*paillier.Ciphertext{dist}}
	}
	// Oblivious k-minimum extraction (ascending selection).
	magBits := 2*e.maxScoreBits + 4 + bitsLen(e.db.M)
	ranked, err := protocols.EncSelectTop(ctx, e.client, items, 0, false, k, magBits)
	if err != nil {
		return nil, err
	}
	return ranked[:k], nil
}

func bitsLen(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// PlainKNN is the ground-truth k nearest neighbors by squared L2.
func PlainKNN(rel *dataset.Relation, q []int64, k int) ([]int, []int64, error) {
	if rel == nil || rel.N() == 0 {
		return nil, nil, errors.New("knn: empty relation")
	}
	if len(q) != rel.M() {
		return nil, nil, fmt.Errorf("knn: query has %d attributes, relation has %d", len(q), rel.M())
	}
	type pair struct {
		obj  int
		dist int64
	}
	all := make([]pair, rel.N())
	for i := 0; i < rel.N(); i++ {
		var d int64
		for j := 0; j < rel.M(); j++ {
			diff := rel.Rows[i][j] - q[j]
			d += diff * diff
		}
		all[i] = pair{obj: i, dist: d}
	}
	// Simple selection; ties by object id.
	for p := 0; p < k && p < len(all); p++ {
		minIdx := p
		for i := p + 1; i < len(all); i++ {
			if all[i].dist < all[minIdx].dist ||
				(all[i].dist == all[minIdx].dist && all[i].obj < all[minIdx].obj) {
				minIdx = i
			}
		}
		all[p], all[minIdx] = all[minIdx], all[p]
	}
	if k > len(all) {
		k = len(all)
	}
	objs := make([]int, k)
	dists := make([]int64, k)
	for i := 0; i < k; i++ {
		objs[i] = all[i].obj
		dists[i] = all[i].dist
	}
	return objs, dists, nil
}

// TopKViaKNN answers a sum-of-squares top-k selection query through the
// kNN interface, per Section 11.3: query the upper bound of the attribute
// domain; the k nearest records under squared L2 are exactly the k
// records with the largest sum-of-squares scores... for records dominated
// by the corner this reduces top-k to kNN.
func TopKViaKNN(ctx context.Context, e *Engine, maxScore int64, k int) ([]protocols.Item, error) {
	q := make([]int64, e.db.M)
	for j := range q {
		q[j] = maxScore
	}
	return e.Query(ctx, q, k)
}
