package join

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/dj"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/prf"
	"repro/internal/protocols"
)

// Engine is S1's side of the secure top-k join operator ./sec.
type Engine struct {
	client *cloud.Client
	er1    *EncRelation
	er2    *EncRelation
	// maxScoreBits bounds attribute magnitudes for comparison masks.
	maxScoreBits int
}

// NewEngine builds the join engine over two encrypted relations.
func NewEngine(client *cloud.Client, er1, er2 *EncRelation, maxScoreBits int) (*Engine, error) {
	if client == nil {
		return nil, errors.New("join: nil client")
	}
	if er1 == nil || er2 == nil || er1.N == 0 || er2.N == 0 {
		return nil, errors.New("join: empty encrypted relation")
	}
	if maxScoreBits <= 0 {
		return nil, errors.New("join: maxScoreBits must be positive")
	}
	return &Engine{client: client, er1: er1, er2: er2, maxScoreBits: maxScoreBits}, nil
}

func (e *Engine) validateToken(tk *Token) error {
	if tk == nil {
		return errors.New("join: nil token")
	}
	check := func(p, m int, what string) error {
		if p < 0 || p >= m {
			return fmt.Errorf("join: token %s position %d out of range [0,%d)", what, p, m)
		}
		return nil
	}
	if err := check(tk.JoinPos1, e.er1.M, "join-1"); err != nil {
		return err
	}
	if err := check(tk.JoinPos2, e.er2.M, "join-2"); err != nil {
		return err
	}
	if err := check(tk.ScorePos1, e.er1.M, "score-1"); err != nil {
		return err
	}
	if err := check(tk.ScorePos2, e.er2.M, "score-2"); err != nil {
		return err
	}
	for _, p := range tk.Proj1 {
		if err := check(p, e.er1.M, "projection-1"); err != nil {
			return err
		}
	}
	for _, p := range tk.Proj2 {
		if err := check(p, e.er2.M, "projection-2"); err != nil {
			return err
		}
	}
	if tk.K <= 0 {
		return errors.New("join: token k must be positive")
	}
	return nil
}

// SecJoin executes the oblivious nested-loop equi-join (Algorithm 11):
// for every candidate pair (i, j), one hidden equality bit selects either
// the real combined tuple (score = R1.scoreA + R2.scoreB, projected
// attributes) or an all-zero tuple. SecFilter then drops the zero tuples
// and EncSelectTop ranks the survivors by score, returning the encrypted
// top-k joined tuples.
//
// Neither server learns which pairs joined: S2 sees only the permuted
// equality pattern and the join cardinality; S1 sees only the cardinality
// (Section 12.4).
func (e *Engine) SecJoin(ctx context.Context, tk *Token) ([]protocols.JoinTuple, error) {
	if err := e.validateToken(tk); err != nil {
		return nil, err
	}
	pk := e.client.PK()
	djPK := e.client.DJPK()

	// Phase 1: hidden equality bits for every candidate pair, in random
	// order (Algorithm 11 line 3).
	type pair struct{ i, j int }
	pairs := make([]pair, 0, e.er1.N*e.er2.N)
	for i := 0; i < e.er1.N; i++ {
		for j := 0; j < e.er2.N; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	perm, err := prf.RandomPerm(len(pairs))
	if err != nil {
		return nil, err
	}
	eqCts := make([]*paillier.Ciphertext, len(pairs))
	for idx, p := range pairs {
		ct, err := ehl.Sub(pk, e.er1.Tuples[p.i][tk.JoinPos1].EHL, e.er2.Tuples[p.j][tk.JoinPos2].EHL)
		if err != nil {
			return nil, fmt.Errorf("join: eq(%d,%d): %w", p.i, p.j, err)
		}
		eqCts[perm[idx]] = ct
	}
	bitsPermuted, err := e.client.EqBits(ctx, eqCts)
	if err != nil {
		return nil, err
	}
	bits := make([]*dj.Ciphertext, len(pairs))
	for idx := range pairs {
		bits[idx] = bitsPermuted[perm[idx]]
	}

	// Phase 2: assemble each candidate tuple under the outer layer:
	// score s_ij = t * (x_scoreA + x_scoreB), attributes x' = t * x
	// (Algorithm 11 lines 7-10). The (1-t) * Enc(0) complement keeps the
	// inner plaintext a valid ciphertext. One recovery round resolves the
	// whole nested loop.
	zero, err := pk.EncryptZero()
	if err != nil {
		return nil, err
	}
	nCols := 1 + len(tk.Proj1) + len(tk.Proj2)
	jobs := make([]*dj.Ciphertext, 0, len(pairs)*nCols)
	for idx, p := range pairs {
		t := bits[idx]
		notT, err := djPK.OneMinus(t)
		if err != nil {
			return nil, err
		}
		zeroTerm, err := djPK.ExpCipher(notT, zero)
		if err != nil {
			return nil, err
		}
		scoreSum, err := pk.Add(e.er1.Tuples[p.i][tk.ScorePos1].Value, e.er2.Tuples[p.j][tk.ScorePos2].Value)
		if err != nil {
			return nil, err
		}
		cols := make([]*paillier.Ciphertext, 0, nCols)
		cols = append(cols, scoreSum)
		for _, pos := range tk.Proj1 {
			cols = append(cols, e.er1.Tuples[p.i][pos].Value)
		}
		for _, pos := range tk.Proj2 {
			cols = append(cols, e.er2.Tuples[p.j][pos].Value)
		}
		for _, colCt := range cols {
			term, err := djPK.ExpCipher(t, colCt)
			if err != nil {
				return nil, err
			}
			if term, err = djPK.Add(term, zeroTerm); err != nil {
				return nil, err
			}
			jobs = append(jobs, term)
		}
	}
	resolved, err := protocols.RecoverEnc(ctx, e.client, jobs)
	if err != nil {
		return nil, err
	}
	candidates := make([]protocols.JoinTuple, len(pairs))
	for idx := range pairs {
		base := idx * nCols
		candidates[idx] = protocols.JoinTuple{
			Score: resolved[base],
			Attrs: resolved[base+1 : base+nCols],
		}
	}

	// Phase 3: drop the tuples that did not satisfy the join condition.
	joined, err := protocols.SecFilter(ctx, e.client, candidates)
	if err != nil {
		return nil, err
	}
	if len(joined) == 0 {
		return nil, nil
	}

	// Phase 4: rank by score and return the encrypted top-k
	// (Section 12.4's final EncSort step, via the top-k selection).
	items := make([]protocols.Item, len(joined))
	for i, t := range joined {
		id, err := ehl.RandomList(pk, ehl.Params{Kind: ehl.KindPlus, S: 1})
		if err != nil {
			return nil, err
		}
		items[i] = protocols.Item{EHL: id, Scores: append([]*paillier.Ciphertext{t.Score}, t.Attrs...)}
	}
	k := tk.K
	if k > len(items) {
		k = len(items)
	}
	ranked, err := protocols.EncSelectTop(ctx, e.client, items, 0, true, k, e.maxScoreBits+2)
	if err != nil {
		return nil, err
	}
	out := make([]protocols.JoinTuple, k)
	for i := 0; i < k; i++ {
		out[i] = protocols.JoinTuple{Score: ranked[i].Scores[0], Attrs: ranked[i].Scores[1:]}
	}
	return out, nil
}
