// Package join implements the secure top-k join of Section 12: the
// encryption setup for multiple relations (Algorithm 10), the join token
// (Section 12.3), the oblivious nested-loop equi-join operator ./sec
// (SecJoin, Algorithm 11) and its SecFilter post-processing, and the
// plaintext baseline used as ground truth.
package join

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/paillier"
	"repro/internal/prf"
	"repro/internal/protocols"
)

// Params configures the join scheme.
type Params struct {
	KeyBits      int
	EHL          ehl.Params
	MaxScoreBits int
}

// DefaultParams mirrors the top-k scheme's evaluation configuration.
func DefaultParams() Params {
	return Params{KeyBits: 512, EHL: ehl.DefaultPlusParams(), MaxScoreBits: 20}
}

// Scheme is the data owner for the multi-relation setting. Attribute
// *values* are EHL-encrypted (not object ids), so the servers can
// homomorphically evaluate the equi-join condition across relations
// (Algorithm 10 line 4).
type Scheme struct {
	params  Params
	keys    *cloud.KeyMaterial
	hasher  *ehl.Hasher
	master  prf.Key
	permKey prf.Key
	// enc is the owner's bulk-encryption surface: the assumption-free CRT
	// nonce split, since the owner holds the factorization.
	enc paillier.Encryptor
}

// Secrets is the symmetric secret material of a join owner: the EHL
// hashing master key and the attribute-permutation key. Together with the
// Paillier factorization they restore the full scheme.
type Secrets struct {
	Master, Perm []byte
}

// NewScheme generates fresh key material.
func NewScheme(params Params) (*Scheme, error) {
	keys, err := cloud.NewKeyMaterial(params.KeyBits)
	if err != nil {
		return nil, err
	}
	return NewSchemeFromKeys(params, keys)
}

// NewSchemeFromKeys builds the scheme over existing keys with freshly
// sampled symmetric secrets.
func NewSchemeFromKeys(params Params, keys *cloud.KeyMaterial) (*Scheme, error) {
	master, err := prf.NewKey()
	if err != nil {
		return nil, err
	}
	permKey, err := prf.NewKey()
	if err != nil {
		return nil, err
	}
	return RestoreScheme(params, keys, Secrets{Master: master, Perm: permKey})
}

// RestoreScheme rebuilds a scheme from persisted keys and secrets:
// relations, tokens, and results produced by the original scheme remain
// valid.
func RestoreScheme(params Params, keys *cloud.KeyMaterial, secrets Secrets) (*Scheme, error) {
	if err := params.EHL.Validate(); err != nil {
		return nil, err
	}
	if keys == nil || keys.Paillier == nil {
		return nil, errors.New("join: missing key material")
	}
	if params.MaxScoreBits <= 0 {
		return nil, errors.New("join: MaxScoreBits must be positive")
	}
	if len(secrets.Master) == 0 || len(secrets.Perm) == 0 {
		return nil, errors.New("join: missing symmetric secrets")
	}
	hasher, err := ehl.NewHasher(prf.Key(secrets.Master), params.EHL, &keys.Paillier.PublicKey)
	if err != nil {
		return nil, err
	}
	return &Scheme{
		params: params, keys: keys, hasher: hasher,
		master: prf.Key(secrets.Master), permKey: prf.Key(secrets.Perm),
		enc: keys.Paillier.CRTEncryptor(),
	}, nil
}

// KeyMaterial returns the secret keys for provisioning S2.
func (s *Scheme) KeyMaterial() *cloud.KeyMaterial { return s.keys }

// Secrets returns the symmetric secret material for owner-side
// persistence.
func (s *Scheme) Secrets() Secrets {
	return Secrets{Master: s.master, Perm: s.permKey}
}

// Params returns the scheme parameters.
func (s *Scheme) Params() Params { return s.params }

// PublicKey returns the Paillier public key.
func (s *Scheme) PublicKey() *paillier.PublicKey { return &s.keys.Paillier.PublicKey }

// EncAttr is one encrypted attribute cell E(s) = <EHL(value), Enc(value)>.
type EncAttr struct {
	EHL   *ehl.List
	Value *paillier.Ciphertext
}

// EncRelation is one encrypted relation: n tuples of M permuted encrypted
// attributes. It reveals only its dimensions (Section 12.2).
type EncRelation struct {
	Name string
	N, M int
	// Tuples[i][p] is tuple i's attribute stored at permuted position p.
	Tuples [][]EncAttr
}

// valueBytes encodes an attribute value for hashing; equal values collide
// across relations because the hasher keys are shared.
func valueBytes(v int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	return buf[:]
}

// EncryptRelation implements the per-relation half of Algorithm 10. The
// attribute permutation is keyed by relation name so each relation gets
// its own P.
func (s *Scheme) EncryptRelation(rel *dataset.Relation) (*EncRelation, error) {
	if rel == nil {
		return nil, errors.New("join: nil relation")
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if max := rel.MaxScore(); max >= 1<<uint(s.params.MaxScoreBits) {
		return nil, fmt.Errorf("join: score %d exceeds MaxScoreBits=%d", max, s.params.MaxScoreBits)
	}
	perm, err := s.relationPerm(rel.Name, rel.M())
	if err != nil {
		return nil, err
	}
	out := &EncRelation{Name: rel.Name, N: rel.N(), M: rel.M(), Tuples: make([][]EncAttr, rel.N())}
	for i := 0; i < rel.N(); i++ {
		tuple := make([]EncAttr, rel.M())
		for j := 0; j < rel.M(); j++ {
			p, err := perm.Apply(j)
			if err != nil {
				return nil, err
			}
			l, err := s.hasher.BuildBytes(valueBytes(rel.Rows[i][j]))
			if err != nil {
				return nil, err
			}
			ct, err := s.enc.Encrypt(big.NewInt(rel.Rows[i][j]))
			if err != nil {
				return nil, err
			}
			tuple[p] = EncAttr{EHL: l, Value: ct}
		}
		out.Tuples[i] = tuple
	}
	return out, nil
}

func (s *Scheme) relationPerm(name string, m int) (*prf.Perm, error) {
	sub, err := prf.DeriveKeys(append(prf.Key(nil), s.permKey...), 1)
	if err != nil {
		return nil, err
	}
	key := prf.Key(prf.Eval(sub[0], []byte("rel:"+name)))
	return prf.NewPerm(key, m)
}

// Token is the join trapdoor: permuted positions of the join attributes
// (the equi-join condition JC), the score attributes, and the projected
// payload attributes, plus k.
type Token struct {
	K int
	// JoinPos1/JoinPos2: permuted positions of R1.A and R2.B.
	JoinPos1, JoinPos2 int
	// ScorePos1/ScorePos2: permuted positions of R1.C and R2.D in
	// Score = R1.C + R2.D.
	ScorePos1, ScorePos2 int
	// Proj1/Proj2: permuted positions of the projected attributes
	// returned with each joined tuple.
	Proj1, Proj2 []int
}

// NewToken builds the token for
//
//	SELECT proj FROM R1, R2 WHERE R1.joinA = R2.joinB
//	ORDER BY R1.scoreA + R2.scoreB STOP AFTER k
//
// mapping every attribute through the per-relation permutation
// (Section 12.3).
func (s *Scheme) NewToken(er1, er2 *EncRelation, joinA, joinB, scoreA, scoreB int, proj1, proj2 []int, k int) (*Token, error) {
	if er1 == nil || er2 == nil {
		return nil, errors.New("join: nil encrypted relation")
	}
	if k <= 0 {
		return nil, fmt.Errorf("join: k=%d must be positive", k)
	}
	p1, err := s.relationPerm(er1.Name, er1.M)
	if err != nil {
		return nil, err
	}
	p2, err := s.relationPerm(er2.Name, er2.M)
	if err != nil {
		return nil, err
	}
	mapAttr := func(p *prf.Perm, a, m int, what string) (int, error) {
		if a < 0 || a >= m {
			return 0, fmt.Errorf("join: %s attribute %d out of range [0,%d)", what, a, m)
		}
		return p.Apply(a)
	}
	tk := &Token{K: k}
	if tk.JoinPos1, err = mapAttr(p1, joinA, er1.M, "join"); err != nil {
		return nil, err
	}
	if tk.JoinPos2, err = mapAttr(p2, joinB, er2.M, "join"); err != nil {
		return nil, err
	}
	if tk.ScorePos1, err = mapAttr(p1, scoreA, er1.M, "score"); err != nil {
		return nil, err
	}
	if tk.ScorePos2, err = mapAttr(p2, scoreB, er2.M, "score"); err != nil {
		return nil, err
	}
	for _, a := range proj1 {
		p, err := mapAttr(p1, a, er1.M, "projection")
		if err != nil {
			return nil, err
		}
		tk.Proj1 = append(tk.Proj1, p)
	}
	for _, a := range proj2 {
		p, err := mapAttr(p2, a, er2.M, "projection")
		if err != nil {
			return nil, err
		}
		tk.Proj2 = append(tk.Proj2, p)
	}
	return tk, nil
}

// RevealedTuple is a decrypted joined result.
type RevealedTuple struct {
	Score int64
	Attrs []int64
}

// Reveal decrypts joined tuples (data-owner / client side).
func (s *Scheme) Reveal(tuples []protocols.JoinTuple) ([]RevealedTuple, error) {
	out := make([]RevealedTuple, 0, len(tuples))
	for _, t := range tuples {
		sc, err := s.keys.Paillier.DecryptSigned(t.Score)
		if err != nil {
			return nil, err
		}
		rt := RevealedTuple{Score: sc.Int64()}
		for _, a := range t.Attrs {
			v, err := s.keys.Paillier.DecryptSigned(a)
			if err != nil {
				return nil, err
			}
			rt.Attrs = append(rt.Attrs, v.Int64())
		}
		out = append(out, rt)
	}
	return out, nil
}

// PlainTopKJoin computes the ground-truth top-k equi-join.
func PlainTopKJoin(r1, r2 *dataset.Relation, joinA, joinB, scoreA, scoreB int, proj1, proj2 []int, k int) ([]RevealedTuple, error) {
	if r1 == nil || r2 == nil {
		return nil, errors.New("join: nil relation")
	}
	var out []RevealedTuple
	for i := 0; i < r1.N(); i++ {
		for j := 0; j < r2.N(); j++ {
			if r1.Rows[i][joinA] != r2.Rows[j][joinB] {
				continue
			}
			rt := RevealedTuple{Score: r1.Rows[i][scoreA] + r2.Rows[j][scoreB]}
			for _, a := range proj1 {
				rt.Attrs = append(rt.Attrs, r1.Rows[i][a])
			}
			for _, a := range proj2 {
				rt.Attrs = append(rt.Attrs, r2.Rows[j][a])
			}
			out = append(out, rt)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}
