package join

import (
	"context"
	"sort"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/ehl"
	"repro/internal/transport"
)

type rig struct {
	scheme *Scheme
	client *cloud.Client
}

var (
	rigOnce sync.Once
	shared  *rig
)

func getRig(t testing.TB) *rig {
	t.Helper()
	rigOnce.Do(func() {
		params := Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 16}
		scheme, err := NewScheme(params)
		if err != nil {
			t.Fatalf("NewScheme: %v", err)
		}
		server, err := cloud.NewServer(scheme.KeyMaterial(), cloud.NewLedger())
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		client, err := cloud.NewClient(transport.NewLocal(server, transport.NewStats()), scheme.PublicKey(), cloud.NewLedger())
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		shared = &rig{scheme: scheme, client: client}
	})
	return shared
}

// testRelations builds two small relations with a shared join domain.
// R1(join, score, extra), R2(join, score, extra).
func testRelations() (*dataset.Relation, *dataset.Relation) {
	r1 := &dataset.Relation{Name: "R1", Rows: [][]int64{
		{1, 10, 100},
		{2, 20, 200},
		{3, 30, 300},
		{2, 25, 250},
	}}
	r2 := &dataset.Relation{Name: "R2", Rows: [][]int64{
		{2, 5, 500},
		{3, 7, 700},
		{4, 9, 900},
	}}
	return r1, r2
}

func TestPlainTopKJoin(t *testing.T) {
	r1, r2 := testRelations()
	// Joins: (r1[1],r2[0]) 20+5=25; (r1[3],r2[0]) 25+5=30; (r1[2],r2[1]) 30+7=37.
	got, err := PlainTopKJoin(r1, r2, 0, 0, 1, 1, []int{2}, []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Score != 37 || got[1].Score != 30 {
		t.Fatalf("plain join top-2 = %+v", got)
	}
	if got[0].Attrs[0] != 300 || got[0].Attrs[1] != 700 {
		t.Fatalf("projected attrs = %v", got[0].Attrs)
	}
	if _, err := PlainTopKJoin(nil, r2, 0, 0, 1, 1, nil, nil, 2); err == nil {
		t.Fatal("expected error for nil relation")
	}
}

func TestSecJoinMatchesPlaintext(t *testing.T) {
	r := getRig(t)
	r1, r2 := testRelations()
	er1, err := r.scheme.EncryptRelation(r1)
	if err != nil {
		t.Fatalf("EncryptRelation R1: %v", err)
	}
	er2, err := r.scheme.EncryptRelation(r2)
	if err != nil {
		t.Fatalf("EncryptRelation R2: %v", err)
	}
	tk, err := r.scheme.NewToken(er1, er2, 0, 0, 1, 1, []int{2}, []int{2}, 2)
	if err != nil {
		t.Fatalf("NewToken: %v", err)
	}
	engine, err := NewEngine(r.client, er1, er2, 16)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	enc, err := engine.SecJoin(context.Background(), tk)
	if err != nil {
		t.Fatalf("SecJoin: %v", err)
	}
	got, err := r.scheme.Reveal(enc)
	if err != nil {
		t.Fatalf("Reveal: %v", err)
	}
	want, err := PlainTopKJoin(r1, r2, 0, 0, 1, 1, []int{2}, []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score {
			t.Fatalf("tuple %d score = %d, want %d", i, got[i].Score, want[i].Score)
		}
		for j := range want[i].Attrs {
			if got[i].Attrs[j] != want[i].Attrs[j] {
				t.Fatalf("tuple %d attr %d = %d, want %d", i, j, got[i].Attrs[j], want[i].Attrs[j])
			}
		}
	}
}

func TestSecJoinNoMatches(t *testing.T) {
	r := getRig(t)
	r1 := &dataset.Relation{Name: "A1", Rows: [][]int64{{1, 10}, {2, 20}}}
	r2 := &dataset.Relation{Name: "A2", Rows: [][]int64{{8, 5}, {9, 7}}}
	er1, err := r.scheme.EncryptRelation(r1)
	if err != nil {
		t.Fatal(err)
	}
	er2, err := r.scheme.EncryptRelation(r2)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.scheme.NewToken(er1, er2, 0, 0, 1, 1, nil, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(r.client, er1, er2, 16)
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.SecJoin(context.Background(), tk)
	if err != nil {
		t.Fatalf("SecJoin: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("expected no joined tuples, got %d", len(out))
	}
}

func TestSecJoinKLargerThanMatches(t *testing.T) {
	r := getRig(t)
	r1, r2 := testRelations()
	er1, _ := r.scheme.EncryptRelation(r1)
	er2, _ := r.scheme.EncryptRelation(r2)
	tk, err := r.scheme.NewToken(er1, er2, 0, 0, 1, 1, nil, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	engine, _ := NewEngine(r.client, er1, er2, 16)
	enc, err := engine.SecJoin(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.scheme.Reveal(enc)
	if err != nil {
		t.Fatal(err)
	}
	// All three joins, ranked.
	scores := []int64{got[0].Score, got[1].Score, got[2].Score}
	if !sort.SliceIsSorted(scores, func(i, j int) bool { return scores[i] > scores[j] }) {
		t.Fatalf("join results not ranked: %v", scores)
	}
	if len(got) != 3 || scores[0] != 37 {
		t.Fatalf("join results = %+v", got)
	}
}

func TestTokenValidation(t *testing.T) {
	r := getRig(t)
	r1, r2 := testRelations()
	er1, _ := r.scheme.EncryptRelation(r1)
	er2, _ := r.scheme.EncryptRelation(r2)
	if _, err := r.scheme.NewToken(er1, er2, 9, 0, 1, 1, nil, nil, 2); err == nil {
		t.Fatal("expected error for join attribute out of range")
	}
	if _, err := r.scheme.NewToken(er1, er2, 0, 0, 1, 1, []int{7}, nil, 2); err == nil {
		t.Fatal("expected error for projection out of range")
	}
	if _, err := r.scheme.NewToken(er1, er2, 0, 0, 1, 1, nil, nil, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := r.scheme.NewToken(nil, er2, 0, 0, 1, 1, nil, nil, 2); err == nil {
		t.Fatal("expected error for nil relation")
	}
}

func TestEngineValidation(t *testing.T) {
	r := getRig(t)
	r1, r2 := testRelations()
	er1, _ := r.scheme.EncryptRelation(r1)
	er2, _ := r.scheme.EncryptRelation(r2)
	if _, err := NewEngine(nil, er1, er2, 16); err == nil {
		t.Fatal("expected error for nil client")
	}
	if _, err := NewEngine(r.client, nil, er2, 16); err == nil {
		t.Fatal("expected error for nil relation")
	}
	if _, err := NewEngine(r.client, er1, er2, 0); err == nil {
		t.Fatal("expected error for zero score bits")
	}
	engine, _ := NewEngine(r.client, er1, er2, 16)
	if _, err := engine.SecJoin(context.Background(), nil); err == nil {
		t.Fatal("expected error for nil token")
	}
	if _, err := engine.SecJoin(context.Background(), &Token{K: 1, JoinPos1: 99}); err == nil {
		t.Fatal("expected error for bad token position")
	}
}

func TestEncryptRelationValidation(t *testing.T) {
	r := getRig(t)
	if _, err := r.scheme.EncryptRelation(nil); err == nil {
		t.Fatal("expected error for nil relation")
	}
	big := &dataset.Relation{Name: "big", Rows: [][]int64{{1 << 40}}}
	if _, err := r.scheme.EncryptRelation(big); err == nil {
		t.Fatal("expected error for oversized score")
	}
}

func TestSchemeValidation(t *testing.T) {
	if _, err := NewSchemeFromKeys(Params{KeyBits: 256, EHL: ehl.Params{}, MaxScoreBits: 16}, nil); err == nil {
		t.Fatal("expected error for bad EHL params")
	}
	r := getRig(t)
	if _, err := NewSchemeFromKeys(Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 0}, r.scheme.KeyMaterial()); err == nil {
		t.Fatal("expected error for zero MaxScoreBits")
	}
	if _, err := NewSchemeFromKeys(Params{KeyBits: 256, EHL: ehl.Params{Kind: ehl.KindPlus, S: 3}, MaxScoreBits: 16}, nil); err == nil {
		t.Fatal("expected error for nil keys")
	}
}

func TestValueEqualityAcrossRelations(t *testing.T) {
	// Equal attribute values in different relations must hash to matching
	// EHLs (the property the equi-join relies on).
	r := getRig(t)
	r1 := &dataset.Relation{Name: "B1", Rows: [][]int64{{42, 1}}}
	r2 := &dataset.Relation{Name: "B2", Rows: [][]int64{{42, 2}}}
	er1, err := r.scheme.EncryptRelation(r1)
	if err != nil {
		t.Fatal(err)
	}
	er2, err := r.scheme.EncryptRelation(r2)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := r.scheme.NewToken(er1, er2, 0, 0, 1, 1, nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, _ := NewEngine(r.client, er1, er2, 16)
	out, err := engine.SecJoin(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.scheme.Reveal(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Score != 3 {
		t.Fatalf("cross-relation equality broken: %+v", got)
	}
}
