package telemetry

import (
	"sync"
	"time"
)

// FrameEvent is one transport-mux frame observation: emitted by the
// caller side when a reply (or failure) resolves a frame, and by the
// serving side when a handler finishes. Bytes counts the method, body,
// and reply payload attributable to the frame.
type FrameEvent struct {
	Side    string // "caller" or "server"
	Method  string
	Frame   uint64
	Bytes   int
	Code    string // secerr code; "" on success
	Elapsed time.Duration
}

// QuerySpan is one executed request's span record: what the serving
// plane observed between admission and answer. Approximate fields
// (Rounds, Bytes, S2Calls, MergeFallbacks) are measured as deltas on
// shared connection counters, matching the Answer.Traffic convention.
type QuerySpan struct {
	Relation       string
	Workload       string
	Tenant         string
	Rounds         int64
	Bytes          int64
	S2Calls        int64
	FanOut         int
	MergeFallbacks int64
	Epoch          uint64
	Code           string // secerr code; "" on success
	Elapsed        time.Duration
}

// TraceSink receives frame events and query spans. Implementations
// must be safe for concurrent use and must not block: emits happen on
// the serving hot path.
type TraceSink interface {
	Frame(FrameEvent)
	Span(QuerySpan)
}

// SinkFuncs adapts plain functions to a TraceSink; nil fields drop
// their event kind.
type SinkFuncs struct {
	OnFrame func(FrameEvent)
	OnSpan  func(QuerySpan)
}

// Frame implements TraceSink.
func (s SinkFuncs) Frame(ev FrameEvent) {
	if s.OnFrame != nil {
		s.OnFrame(ev)
	}
}

// Span implements TraceSink.
func (s SinkFuncs) Span(sp QuerySpan) {
	if s.OnSpan != nil {
		s.OnSpan(sp)
	}
}

// sinkEntry gives each registration a unique identity, so sinks whose
// dynamic type is not comparable (e.g. SinkFuncs) still unregister.
type sinkEntry struct{ sink TraceSink }

var (
	sinkMu sync.RWMutex
	sinks  []*sinkEntry
)

// RegisterSink subscribes a sink to every emitted frame event and query
// span; the returned function unregisters it.
func RegisterSink(s TraceSink) (unregister func()) {
	e := &sinkEntry{sink: s}
	sinkMu.Lock()
	sinks = append(sinks, e)
	sinkMu.Unlock()
	return func() {
		sinkMu.Lock()
		defer sinkMu.Unlock()
		for i, cur := range sinks {
			if cur == e {
				sinks = append(append([]*sinkEntry(nil), sinks[:i]...), sinks[i+1:]...)
				return
			}
		}
	}
}

// EmitFrame records a frame event into the default registry's mux
// metrics and fans it out to the registered sinks.
func EmitFrame(ev FrameEvent) {
	r := defaultRegistry
	r.Counter("sectopk_mux_frames_total", "side", ev.Side, "method", ev.Method).Inc()
	r.Counter("sectopk_mux_frame_bytes_total", "side", ev.Side, "method", ev.Method).Add(int64(ev.Bytes))
	if ev.Code != "" {
		r.Counter("sectopk_mux_frame_errors_total", "side", ev.Side, "code", ev.Code).Inc()
	}
	r.Histogram("sectopk_mux_frame_seconds", nil, "side", ev.Side).ObserveDuration(ev.Elapsed)
	sinkMu.RLock()
	subs := sinks
	sinkMu.RUnlock()
	for _, s := range subs {
		s.sink.Frame(ev)
	}
}

// EmitSpan records a query span into the default registry's query
// metrics and fans it out to the registered sinks.
func EmitSpan(sp QuerySpan) {
	r := defaultRegistry
	code := sp.Code
	if code == "" {
		code = "ok"
	}
	tenant := sp.Tenant
	if tenant == "" {
		tenant = "default"
	}
	r.Counter("sectopk_queries_total", "workload", sp.Workload, "tenant", tenant, "code", code).Inc()
	r.Histogram("sectopk_query_seconds", nil, "workload", sp.Workload).ObserveDuration(sp.Elapsed)
	r.Counter("sectopk_query_rounds_total", "workload", sp.Workload).Add(sp.Rounds)
	r.Counter("sectopk_query_bytes_total", "workload", sp.Workload).Add(sp.Bytes)
	r.Counter("sectopk_query_s2_calls_total", "workload", sp.Workload).Add(sp.S2Calls)
	r.Counter("sectopk_query_merge_fallbacks_total", "workload", sp.Workload).Add(sp.MergeFallbacks)
	if sp.Relation != "" && sp.Epoch > 0 {
		r.Gauge("sectopk_relation_epoch", "relation", sp.Relation).Set(float64(sp.Epoch))
	}
	sinkMu.RLock()
	subs := sinks
	sinkMu.RUnlock()
	for _, s := range subs {
		s.sink.Span(sp)
	}
}
