// Package telemetry is the serving plane's observation layer: a
// dependency-free metrics registry (counters, gauges, histograms with
// fixed latency buckets) rendered in the Prometheus text exposition
// format, plus the trace-hook types every instrumented layer emits —
// per-frame events from the transport mux and per-query span records
// from the data cloud's unified execute path.
//
// The package sits below every other internal package (it imports only
// the standard library), so transport, cloud, shard, cluster, qos, and
// the sectopk facade can all record into the process-global default
// registry without dependency injection or import cycles. Instrument
// lookups are cheap (one mutex-guarded map hit) relative to the
// crypto-bound work they bracket.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the fixed histogram bucket layout (seconds) shared
// by every latency histogram: half a millisecond up to ten seconds,
// roughly logarithmic. Fixed buckets keep scrapes from different
// processes directly aggregatable.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing value.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d (negative deltas are ignored: counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.n.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. All
// methods are safe for concurrent use.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, the last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts
// by linear interpolation inside the selected bucket; the top bucket
// reports its lower bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if seen+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return lo // open-ended bucket: report its floor
			}
			return lo + (h.bounds[i]-lo)*(rank-seen)/n
		}
		seen += n
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one labeled instrument inside a family.
type metric struct {
	labels []string // k1, v1, k2, v2, ...
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every label combination of one metric name.
type family struct {
	name    string
	kind    string // "counter", "gauge", "histogram"
	bounds  []float64
	metrics map[string]*metric // keyed by the serialized label set
}

// Registry holds metric families. The zero value is not usable; build
// with NewRegistry or use the process-global Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry every instrumented layer
// records into.
func Default() *Registry { return defaultRegistry }

// labelKey serializes a label set for map lookup; labels are k, v pairs.
func labelKey(labels []string) string {
	return strings.Join(labels, "\x1f")
}

func (r *Registry) lookup(name, kind string, bounds []float64, labels []string) *metric {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: %s: odd label list %q", name, labels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, bounds: bounds, metrics: map[string]*metric{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	m := f.metrics[key]
	if m == nil {
		m = &metric{labels: append([]string(nil), labels...)}
		switch kind {
		case "counter":
			m.c = &Counter{}
		case "gauge":
			m.g = &Gauge{}
		case "histogram":
			m.h = newHistogram(f.bounds)
		}
		f.metrics[key] = m
	}
	return m
}

// Counter returns (building on first use) the counter for name with the
// given label pairs (k1, v1, k2, v2, ...).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, "counter", nil, labels).c
}

// Gauge returns (building on first use) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, "gauge", nil, labels).g
}

// Histogram returns (building on first use) the histogram for name and
// labels. bounds is consulted only on the family's first registration;
// nil picks LatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return r.lookup(name, "histogram", bounds, labels).h
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels formats {k="v",...}; extra, when non-empty, is appended
// verbatim as one more pair (the histogram le bound).
func renderLabels(labels []string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, labels[i], escapeLabel(labels[i+1]))
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float without exponent noise for integers.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders the registry in the Prometheus text exposition
// format, families and label sets in sorted order so scrapes are
// deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type snap struct {
		f       *family
		metrics []*metric
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.metrics))
		for k := range f.metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := snap{f: f}
		for _, k := range keys {
			s.metrics = append(s.metrics, f.metrics[k])
		}
		snaps = append(snaps, s)
	}
	r.mu.Unlock()

	for _, s := range snaps {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.f.name, s.f.kind); err != nil {
			return err
		}
		for _, m := range s.metrics {
			switch s.f.kind {
			case "counter":
				if _, err := fmt.Fprintf(w, "%s%s %d\n", s.f.name, renderLabels(m.labels, ""), m.c.Value()); err != nil {
					return err
				}
			case "gauge":
				if _, err := fmt.Fprintf(w, "%s%s %s\n", s.f.name, renderLabels(m.labels, ""), formatValue(m.g.Value())); err != nil {
					return err
				}
			case "histogram":
				var cum int64
				for i, bound := range m.h.bounds {
					cum += m.h.counts[i].Load()
					le := fmt.Sprintf(`le="%s"`, formatValue(bound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.f.name, renderLabels(m.labels, le), cum); err != nil {
						return err
					}
				}
				cum += m.h.counts[len(m.h.bounds)].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.f.name, renderLabels(m.labels, `le="+Inf"`), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.f.name, renderLabels(m.labels, ""), formatValue(m.h.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.f.name, renderLabels(m.labels, ""), m.h.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Handler serves the registry at GET in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// Handler serves the default registry — what sectopk-node mounts at
// /metrics on the probe listener.
func Handler() http.Handler { return defaultRegistry.Handler() }
