package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeLookup(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "tenant", "gold")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if got := r.Counter("reqs_total", "tenant", "gold").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := r.Counter("reqs_total", "tenant", "free").Value(); got != 0 {
		t.Fatalf("distinct label set shares state: %d", got)
	}
	g := r.Gauge("epoch", "relation", "demo")
	g.Set(7)
	if got := r.Gauge("epoch", "relation", "demo").Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want within the first bucket", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %v, want within the (0.1, 1] bucket", p99)
	}
	// Overflow lands in +Inf and reports the top bound's floor.
	h2 := r.Histogram("lat2_seconds", []float64{0.01})
	h2.Observe(5)
	if q := h2.Quantile(0.5); q != 0.01 {
		t.Fatalf("+Inf bucket quantile = %v, want the 0.01 floor", q)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", "side", "caller", "method", "Batch").Add(4)
	r.Gauge("members").Set(3)
	r.Histogram("q_seconds", []float64{0.1, 1}).Observe(0.05)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		`frames_total{side="caller",method="Batch"} 4`,
		"# TYPE members gauge",
		"members 3",
		"# TYPE q_seconds histogram",
		`q_seconds_bucket{le="0.1"} 1`,
		`q_seconds_bucket{le="+Inf"} 1`,
		"q_seconds_sum 0.05",
		"q_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("errs_total", "msg", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `msg="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestEmitFansOutToSinks(t *testing.T) {
	var mu sync.Mutex
	var frames []FrameEvent
	var spans []QuerySpan
	undo := RegisterSink(SinkFuncs{
		OnFrame: func(ev FrameEvent) { mu.Lock(); frames = append(frames, ev); mu.Unlock() },
		OnSpan:  func(sp QuerySpan) { mu.Lock(); spans = append(spans, sp); mu.Unlock() },
	})
	EmitFrame(FrameEvent{Side: "caller", Method: "Test.Emit", Bytes: 10, Elapsed: time.Millisecond})
	EmitSpan(QuerySpan{Workload: "topk", Tenant: "gold", Relation: "demo", Epoch: 2, Elapsed: time.Millisecond})
	undo()
	EmitFrame(FrameEvent{Side: "caller", Method: "Test.Emit"})
	mu.Lock()
	defer mu.Unlock()
	if len(frames) != 1 || frames[0].Method != "Test.Emit" {
		t.Fatalf("frames = %+v, want exactly the one pre-unregister event", frames)
	}
	if len(spans) != 1 || spans[0].Tenant != "gold" {
		t.Fatalf("spans = %+v, want exactly one", spans)
	}
	// The emits above also land in the default registry.
	if Default().Counter("sectopk_queries_total", "workload", "topk", "tenant", "gold", "code", "ok").Value() < 1 {
		t.Fatal("EmitSpan did not record into the default registry")
	}
	if Default().Gauge("sectopk_relation_epoch", "relation", "demo").Value() != 2 {
		t.Fatal("EmitSpan did not record the epoch gauge")
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Histogram("h_seconds", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
