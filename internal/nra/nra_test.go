package nra

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// paperRelation reproduces the running example of Figure 3: five objects
// X1..X5 (ids 0..4) over three attributes R1, R2, R3.
func paperRelation() *dataset.Relation {
	return &dataset.Relation{
		Name: "fig3",
		Rows: [][]int64{
			// R1, R2, R3
			{10, 3, 2}, // X1
			{8, 8, 0},  // X2
			{5, 7, 6},  // X3
			{3, 2, 8},  // X4
			{1, 1, 1},  // X5
		},
	}
}

func TestSortedListsMatchFigure3(t *testing.T) {
	rel := paperRelation()
	lists, err := SortedLists(rel, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// R1 sorted: X1:10, X2:8, X3:5, X4:3, X5:1
	wantR1 := []Item{{0, 10}, {1, 8}, {2, 5}, {3, 3}, {4, 1}}
	for i, w := range wantR1 {
		if lists[0][i] != w {
			t.Fatalf("R1[%d] = %v, want %v", i, lists[0][i], w)
		}
	}
	// R3 sorted: X4:8, X3:6, X1:2, X5:1, X2:0
	wantR3 := []Item{{3, 8}, {2, 6}, {0, 2}, {4, 1}, {1, 0}}
	for i, w := range wantR3 {
		if lists[2][i] != w {
			t.Fatalf("R3[%d] = %v, want %v", i, lists[2][i], w)
		}
	}
}

func TestRunPaperExampleTop2(t *testing.T) {
	// The paper's example: top-2 with F = sum of all three attributes
	// yields X3 (18) and X2 (16), halting at depth 3 (Figure 3c).
	rel := paperRelation()
	lists, err := SortedLists(rel, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, depth, err := RunPaperVariant(lists, 2)
	if err != nil {
		t.Fatal(err)
	}
	if depth != 3 {
		t.Fatalf("halting depth = %d, want 3 (Figure 3c)", depth)
	}
	if len(res) != 2 || res[0].Obj != 2 || res[1].Obj != 1 {
		t.Fatalf("top-2 = %+v, want X3 then X2", res)
	}
	if res[0].Worst != 18 || res[1].Worst != 16 {
		t.Fatalf("worst scores = %d,%d want 18,16", res[0].Worst, res[1].Worst)
	}

	exact, depthExact, err := Run(lists, 2)
	if err != nil {
		t.Fatal(err)
	}
	if exact[0].Obj != 2 || exact[1].Obj != 1 {
		t.Fatalf("exact top-2 = %+v", exact)
	}
	if depthExact > 5 {
		t.Fatalf("exact depth = %d", depthExact)
	}
}

func TestRunMatchesExactTopK(t *testing.T) {
	// Property: on random relations, exact NRA returns a valid top-k
	// (same score multiset as the full-scan ground truth).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		m := 2 + rng.Intn(4)
		rel := &dataset.Relation{Name: "rand", Rows: make([][]int64, n)}
		for i := range rel.Rows {
			row := make([]int64, m)
			for j := range row {
				row[j] = int64(rng.Intn(50))
			}
			rel.Rows[i] = row
		}
		attrs := make([]int, m)
		for j := range attrs {
			attrs[j] = j
		}
		k := 1 + rng.Intn(5)
		lists, err := SortedLists(rel, attrs, nil)
		if err != nil {
			return false
		}
		got, _, err := Run(lists, k)
		if err != nil {
			return false
		}
		want, err := TopKExact(rel, attrs, nil, k)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		gs := scoresOf(rel, attrs, got)
		ws := make([]int64, len(want))
		for i, w := range want {
			ws[i] = w.Worst
		}
		sort.Slice(gs, func(i, j int) bool { return gs[i] > gs[j] })
		for i := range gs {
			if gs[i] != ws[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperVariantBehaviourOnCorrelatedData(t *testing.T) {
	// The paper's halting test (Algorithm 3 line 10) compares only the
	// k-th worst against the (k+1)-th item's bound, which is a relaxation
	// of NRA's halting condition: it can fire before every outside
	// object is ruled out. This test documents that behaviour: the
	// variant must always return k items, halt within the scan, and be
	// *mostly* accurate on the evaluation-style correlated data — while
	// at least occasionally deviating from the exact top-k (the reason
	// the engine offers HaltStrict; see DESIGN.md errata).
	spec := dataset.Spec{Name: "c", N: 300, M: 3, MaxScore: 200, Shape: dataset.ShapeGaussian, Correlation: 0.7}
	attrs := []int{0, 1, 2}
	const k, seeds = 5, 10
	total, wrong := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		rel, err := dataset.Generate(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		lists, err := SortedLists(rel, attrs, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, depth, err := RunPaperVariant(lists, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("seed %d: returned %d items, want %d", seed, len(got), k)
		}
		if depth <= 0 || depth > rel.N() {
			t.Fatalf("seed %d: depth %d out of range", seed, depth)
		}
		kth, err := KthScore(rel, attrs, nil, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			total++
			if rel.Score(r.Obj, attrs, nil) < kth {
				wrong++
			}
		}
	}
	if wrong*5 > total {
		t.Fatalf("paper-variant halting wrong on %d/%d results; relaxation should be mostly accurate", wrong, total)
	}
	t.Logf("paper-variant halting: %d/%d results below the exact kth score (documented relaxation)", wrong, total)
}

func TestStrictRunIsAlwaysValidOnCorrelatedData(t *testing.T) {
	spec := dataset.Spec{Name: "c", N: 300, M: 3, MaxScore: 200, Shape: dataset.ShapeGaussian, Correlation: 0.7}
	attrs := []int{0, 1, 2}
	for seed := int64(0); seed < 10; seed++ {
		rel, err := dataset.Generate(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		lists, err := SortedLists(rel, attrs, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Run(lists, 5)
		if err != nil {
			t.Fatal(err)
		}
		kth, err := KthScore(rel, attrs, nil, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if score := rel.Score(r.Obj, attrs, nil); score < kth {
				t.Fatalf("seed %d: exact NRA returned obj %d with score %d < kth %d",
					seed, r.Obj, score, kth)
			}
		}
	}
}

func TestWeightedQueries(t *testing.T) {
	rel := paperRelation()
	attrs := []int{0, 1}
	weights := []int64{3, 1}
	lists, err := SortedLists(rel, attrs, weights)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(lists, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopKExact(rel, attrs, weights, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Obj != want[0].Obj || got[0].Worst != want[0].Worst {
		t.Fatalf("weighted top-1 = %+v, want %+v", got[0], want[0])
	}
}

func TestBoundsAreBounds(t *testing.T) {
	rel := paperRelation()
	attrs := []int{0, 1, 2}
	lists, _ := SortedLists(rel, attrs, nil)
	res, _, err := Run(lists, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		true_ := rel.Score(r.Obj, attrs, nil)
		if r.Worst > true_ || r.Best < true_ {
			t.Fatalf("obj %d: bounds [%d,%d] do not contain true score %d",
				r.Obj, r.Worst, r.Best, true_)
		}
	}
}

func TestValidation(t *testing.T) {
	rel := paperRelation()
	if _, err := SortedLists(rel, nil, nil); err == nil {
		t.Fatal("expected error for no attributes")
	}
	if _, err := SortedLists(rel, []int{9}, nil); err == nil {
		t.Fatal("expected error for attribute out of range")
	}
	if _, err := SortedLists(rel, []int{0}, []int64{1, 2}); err == nil {
		t.Fatal("expected error for weight length mismatch")
	}
	if _, err := SortedLists(rel, []int{0}, []int64{-1}); err == nil {
		t.Fatal("expected error for negative weight")
	}
	if _, err := SortedLists(nil, []int{0}, nil); err == nil {
		t.Fatal("expected error for nil relation")
	}
	lists, _ := SortedLists(rel, []int{0}, nil)
	if _, _, err := Run(lists, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, _, err := Run(nil, 1); err == nil {
		t.Fatal("expected error for no lists")
	}
	if _, _, err := Run([][]Item{{{0, 1}}, {}}, 1); err == nil {
		t.Fatal("expected error for ragged lists")
	}
	if _, err := TopKExact(nil, []int{0}, nil, 1); err == nil {
		t.Fatal("expected error for nil relation")
	}
	if _, err := TopKExact(rel, []int{0}, nil, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestKLargerThanN(t *testing.T) {
	rel := paperRelation()
	lists, _ := SortedLists(rel, []int{0, 1, 2}, nil)
	res, depth, err := Run(lists, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != rel.N() {
		t.Fatalf("k>n should clamp to n, got %d", len(res))
	}
	if depth != rel.N() {
		t.Fatalf("full scan expected, depth = %d", depth)
	}
	// At full depth the bounds are exact.
	for _, r := range res {
		if r.Worst != r.Best {
			t.Fatalf("obj %d bounds not tight at full scan: [%d,%d]", r.Obj, r.Worst, r.Best)
		}
	}
}

func scoresOf(rel *dataset.Relation, attrs []int, res []Result) []int64 {
	out := make([]int64, len(res))
	for i, r := range res {
		out[i] = rel.Score(r.Obj, attrs, nil)
	}
	return out
}
