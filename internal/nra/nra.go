// Package nra implements Fagin's No-Random-Access algorithm (Algorithm 1
// of the paper, from Fagin, Lotem, Naor PODS'01) over plaintext sorted
// lists. It is the reference the encrypted engine is tested against, the
// baseline for the overhead benchmarks, and — in its paper-variant form —
// an exact plaintext mirror of SecQuery's bookkeeping so the encrypted
// engine can be checked round for round.
package nra

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Item is one sorted-list entry: an object id and its local score at this
// position.
type Item struct {
	Obj   int
	Score int64
}

// SortedLists builds the descending sorted list for each requested
// attribute (the set S = {L_1..L_m} of Section 3.4; the paper's example
// runs descending, largest local score first).
func SortedLists(rel *dataset.Relation, attrs []int, weights []int64) ([][]Item, error) {
	if rel == nil || rel.N() == 0 {
		return nil, errors.New("nra: empty relation")
	}
	if len(attrs) == 0 {
		return nil, errors.New("nra: no attributes selected")
	}
	if weights != nil && len(weights) != len(attrs) {
		return nil, fmt.Errorf("nra: %d weights for %d attributes", len(weights), len(attrs))
	}
	out := make([][]Item, len(attrs))
	for li, a := range attrs {
		if a < 0 || a >= rel.M() {
			return nil, fmt.Errorf("nra: attribute %d out of range [0,%d)", a, rel.M())
		}
		w := int64(1)
		if weights != nil {
			w = weights[li]
			if w < 0 {
				return nil, fmt.Errorf("nra: negative weight %d (monotone scoring requires w >= 0)", w)
			}
		}
		list := make([]Item, rel.N())
		for i := 0; i < rel.N(); i++ {
			list[i] = Item{Obj: i, Score: w * rel.Rows[i][a]}
		}
		sort.Slice(list, func(x, y int) bool {
			if list[x].Score != list[y].Score {
				return list[x].Score > list[y].Score
			}
			return list[x].Obj < list[y].Obj
		})
		out[li] = list
	}
	return out, nil
}

// Result is one reported top-k object with its bound state at halting.
type Result struct {
	Obj   int
	Worst int64
	Best  int64
}

// objState tracks one seen object during a run.
type objState struct {
	obj      int
	seen     []bool
	scores   []int64
	worst    int64
	staleB   int64 // best bound as of the last depth the object appeared
	lastSeen int
}

// bestAt returns the exact NRA upper bound given current bottom values.
func (o *objState) bestAt(bottoms []int64) int64 {
	b := o.worst
	for j, seen := range o.seen {
		if !seen {
			b += bottoms[j]
		}
	}
	return b
}

// Run executes the exact NRA algorithm: at each depth it recomputes every
// seen object's upper bound from the current bottom values and halts when
// at least k objects are seen and no outside object (seen or unseen) can
// beat the current top-k's k-th lower bound. Returns the top-k and the
// halting depth (1-based count of scanned depths).
func Run(lists [][]Item, k int) ([]Result, int, error) {
	return run(lists, k, false)
}

// RunPaperVariant mirrors the encrypted engine's bookkeeping instead:
// upper bounds are refreshed only at depths where the object reappears
// (SecBest semantics), and the halting test compares only the k-th worst
// against the (k+1)-th item's stale bound in the worst-score ordering
// (Algorithm 3 lines 9-12).
func RunPaperVariant(lists [][]Item, k int) ([]Result, int, error) {
	return run(lists, k, true)
}

func run(lists [][]Item, k int, paperVariant bool) ([]Result, int, error) {
	if len(lists) == 0 {
		return nil, 0, errors.New("nra: no lists")
	}
	n := len(lists[0])
	for _, l := range lists {
		if len(l) != n {
			return nil, 0, errors.New("nra: ragged lists")
		}
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("nra: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	m := len(lists)
	states := map[int]*objState{}
	bottoms := make([]int64, m)

	finish := func(depth int) ([]Result, int, error) {
		ranked := rankByWorst(states)
		out := make([]Result, 0, k)
		for i := 0; i < k && i < len(ranked); i++ {
			st := ranked[i]
			best := st.staleB
			if !paperVariant {
				best = st.bestAt(bottoms)
			}
			out = append(out, Result{Obj: st.obj, Worst: st.worst, Best: best})
		}
		return out, depth, nil
	}

	for d := 0; d < n; d++ {
		// Sorted access to each list at depth d.
		touched := map[int]bool{}
		for j, l := range lists {
			it := l[d]
			bottoms[j] = it.Score
			st := states[it.Obj]
			if st == nil {
				st = &objState{obj: it.Obj, seen: make([]bool, m), scores: make([]int64, m)}
				states[it.Obj] = st
			}
			if !st.seen[j] {
				st.seen[j] = true
				st.scores[j] = it.Score
				st.worst += it.Score
			}
			touched[it.Obj] = true
		}
		// Refresh bounds: the paper variant refreshes only touched
		// objects (stale bounds for dormant ones), exact NRA refreshes
		// everyone.
		for obj, st := range states {
			if paperVariant && !touched[obj] {
				continue
			}
			st.staleB = st.bestAt(bottoms)
			st.lastSeen = d
		}

		if len(states) < k+1 {
			// The encrypted engine needs k+1 items before it can run the
			// halting comparison; at full depth the loop exit below
			// handles the k == n edge.
			continue
		}
		ranked := rankByWorst(states)
		mk := ranked[k-1].worst
		if paperVariant {
			// Compare only the (k+1)-th item's stale bound.
			if ranked[k].staleB < mk {
				return finish(d + 1)
			}
		} else {
			halt := true
			for _, st := range ranked[k:] {
				if st.bestAt(bottoms) > mk {
					halt = false
					break
				}
			}
			// Unseen-object bound: an object never seen anywhere could
			// still reach the sum of the bottoms.
			var unseenBound int64
			for _, b := range bottoms {
				unseenBound += b
			}
			if len(states) < n && unseenBound > mk {
				halt = false
			}
			if halt {
				return finish(d + 1)
			}
		}
	}
	// Full scan: every bound is exact now.
	return finish(n)
}

// rankByWorst orders the states by descending worst score (ties by object
// id for determinism, mirroring the deterministic tie behaviour tests
// rely on).
func rankByWorst(states map[int]*objState) []*objState {
	out := make([]*objState, 0, len(states))
	for _, st := range states {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].worst != out[j].worst {
			return out[i].worst > out[j].worst
		}
		return out[i].obj < out[j].obj
	})
	return out
}

// TopKExact computes the exact top-k by scanning the whole relation —
// ground truth for every correctness test.
func TopKExact(rel *dataset.Relation, attrs []int, weights []int64, k int) ([]Result, error) {
	if rel == nil || rel.N() == 0 {
		return nil, errors.New("nra: empty relation")
	}
	if k <= 0 {
		return nil, fmt.Errorf("nra: k must be positive, got %d", k)
	}
	if k > rel.N() {
		k = rel.N()
	}
	type pair struct {
		obj   int
		score int64
	}
	all := make([]pair, rel.N())
	for i := 0; i < rel.N(); i++ {
		all[i] = pair{obj: i, score: rel.Score(i, attrs, weights)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].obj < all[j].obj
	})
	out := make([]Result, k)
	for i := 0; i < k; i++ {
		out[i] = Result{Obj: all[i].obj, Worst: all[i].score, Best: all[i].score}
	}
	return out, nil
}

// KthScore returns the exact k-th largest aggregate score (for tie-aware
// set comparisons in tests).
func KthScore(rel *dataset.Relation, attrs []int, weights []int64, k int) (int64, error) {
	res, err := TopKExact(rel, attrs, weights, k)
	if err != nil {
		return 0, err
	}
	return res[len(res)-1].Worst, nil
}
