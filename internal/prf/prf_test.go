package prf

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewKey(t *testing.T) {
	k1, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != KeySize || len(k2) != KeySize {
		t.Fatal("wrong key size")
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("two fresh keys are identical")
	}
}

func TestDeriveKeysDeterministicAndDistinct(t *testing.T) {
	master := Key(bytes.Repeat([]byte{7}, KeySize))
	a, err := DeriveKeys(master, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveKeys(master, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("derivation not deterministic at %d", i)
		}
		for j := i + 1; j < len(a); j++ {
			if bytes.Equal(a[i], a[j]) {
				t.Fatalf("subkeys %d and %d collide", i, j)
			}
		}
	}
	if _, err := DeriveKeys(nil, 3); err == nil {
		t.Fatal("expected error for empty master")
	}
	if _, err := DeriveKeys(master, 0); err == nil {
		t.Fatal("expected error for zero count")
	}
}

func TestEvalDeterministic(t *testing.T) {
	k := Key(bytes.Repeat([]byte{1}, KeySize))
	a := Eval(k, []byte("object-42"))
	b := Eval(k, []byte("object-42"))
	if !bytes.Equal(a, b) {
		t.Fatal("PRF not deterministic")
	}
	c := Eval(k, []byte("object-43"))
	if bytes.Equal(a, c) {
		t.Fatal("distinct inputs collide")
	}
	k2 := Key(bytes.Repeat([]byte{2}, KeySize))
	d := Eval(k2, []byte("object-42"))
	if bytes.Equal(a, d) {
		t.Fatal("distinct keys collide")
	}
}

func TestToZnRange(t *testing.T) {
	k := Key(bytes.Repeat([]byte{3}, KeySize))
	n := big.NewInt(1_000_003)
	f := func(data []byte) bool {
		v, err := ToZn(k, data, n)
		if err != nil {
			return false
		}
		return v.Sign() >= 0 && v.Cmp(n) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ToZn(k, []byte("x"), big.NewInt(0)); err == nil {
		t.Fatal("expected error for zero modulus")
	}
}

func TestToZnDeterministic(t *testing.T) {
	k := Key(bytes.Repeat([]byte{4}, KeySize))
	n := new(big.Int).Lsh(big.NewInt(1), 256)
	a, _ := ToZn(k, []byte("o"), n)
	b, _ := ToZn(k, []byte("o"), n)
	if a.Cmp(b) != 0 {
		t.Fatal("ToZn not deterministic")
	}
}

func TestToRange(t *testing.T) {
	k := Key(bytes.Repeat([]byte{5}, KeySize))
	counts := make([]int, 8)
	for i := 0; i < 800; i++ {
		v, err := ToRange(k, []byte{byte(i), byte(i >> 8)}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v >= 8 {
			t.Fatalf("ToRange out of bounds: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("bucket %d never hit; suspicious for 800 samples", i)
		}
	}
	if _, err := ToRange(k, []byte("x"), 0); err == nil {
		t.Fatal("expected error for zero bound")
	}
}

func TestPermIsBijection(t *testing.T) {
	k := Key(bytes.Repeat([]byte{6}, KeySize))
	for _, n := range []int{1, 2, 7, 64, 500} {
		p, err := NewPerm(k, n)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			j, err := p.Apply(i)
			if err != nil {
				t.Fatal(err)
			}
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("not a bijection at n=%d: i=%d -> %d", n, i, j)
			}
			seen[j] = true
			back, err := p.Invert(j)
			if err != nil {
				t.Fatal(err)
			}
			if back != i {
				t.Fatalf("inverse broken: %d -> %d -> %d", i, j, back)
			}
		}
	}
}

func TestPermDeterministicPerKey(t *testing.T) {
	k1 := Key(bytes.Repeat([]byte{8}, KeySize))
	k2 := Key(bytes.Repeat([]byte{9}, KeySize))
	a, _ := NewPerm(k1, 64)
	b, _ := NewPerm(k1, 64)
	c, _ := NewPerm(k2, 64)
	sameAsB, sameAsC := true, true
	for i := 0; i < 64; i++ {
		va, _ := a.Apply(i)
		vb, _ := b.Apply(i)
		vc, _ := c.Apply(i)
		if va != vb {
			sameAsB = false
		}
		if va != vc {
			sameAsC = false
		}
	}
	if !sameAsB {
		t.Fatal("same key gave different permutations")
	}
	if sameAsC {
		t.Fatal("different keys gave identical permutations (unlikely)")
	}
}

func TestPermValidation(t *testing.T) {
	k := Key(bytes.Repeat([]byte{1}, KeySize))
	if _, err := NewPerm(k, 0); err == nil {
		t.Fatal("expected error for empty domain")
	}
	if _, err := NewPerm(nil, 4); err == nil {
		t.Fatal("expected error for empty key")
	}
	p, _ := NewPerm(k, 4)
	if _, err := p.Apply(-1); err == nil {
		t.Fatal("expected error for negative index")
	}
	if _, err := p.Apply(4); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
	if _, err := p.Invert(99); err == nil {
		t.Fatal("expected error for out-of-range inverse")
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
}

func TestRandomPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 100} {
		p, err := RandomPerm(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != n {
			t.Fatalf("len = %d, want %d", len(p), n)
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("RandomPerm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
	if _, err := RandomPerm(-1); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestInvertPerm(t *testing.T) {
	p, err := RandomPerm(50)
	if err != nil {
		t.Fatal(err)
	}
	inv := InvertPerm(p)
	for i, v := range p {
		if inv[v] != i {
			t.Fatalf("InvertPerm broken at %d", i)
		}
	}
}
