// Package prf provides the keyed pseudorandom primitives the paper's
// construction assumes: an HMAC-SHA-256 PRF (used as the "secure keyed
// hash" of the EHL structures), a PRF-to-Z_N digest map for EHL+, and the
// keyed pseudorandom permutation P that Enc applies to the sorted lists
// (Algorithm 2, line 9) and the join token reuses (Section 12.3).
package prf

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sort"
)

// KeySize is the byte length of PRF keys.
const KeySize = 32

// Key is a PRF key.
type Key []byte

// NewKey samples a fresh random PRF key.
func NewKey() (Key, error) {
	k := make(Key, KeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("prf: sampling key: %w", err)
	}
	return k, nil
}

// DeriveKeys derives n independent subkeys from a master key, as the data
// owner does for the EHL keys kappa_1..kappa_s.
func DeriveKeys(master Key, n int) ([]Key, error) {
	if len(master) == 0 {
		return nil, errors.New("prf: empty master key")
	}
	if n <= 0 {
		return nil, fmt.Errorf("prf: key count must be positive, got %d", n)
	}
	out := make([]Key, n)
	var ctr [8]byte
	for i := range out {
		binary.BigEndian.PutUint64(ctr[:], uint64(i))
		mac := hmac.New(sha256.New, master)
		mac.Write([]byte("sectopk-subkey"))
		mac.Write(ctr[:])
		out[i] = mac.Sum(nil)
	}
	return out, nil
}

// Eval computes HMAC-SHA-256(key, data).
func Eval(key Key, data []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(data)
	return mac.Sum(nil)
}

// EvalUint64 evaluates the PRF on the big-endian encoding of v.
func EvalUint64(key Key, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return Eval(key, buf[:])
}

// ToZn maps data into Z_n by expanding the PRF in counter mode to
// bitlen(n)+64 bits and reducing; the result is statistically close to
// uniform. This is the "HMAC(k, o) mod N" digest of EHL+ (Section 5).
func ToZn(key Key, data []byte, n *big.Int) (*big.Int, error) {
	if n == nil || n.Sign() <= 0 {
		return nil, errors.New("prf: ToZn modulus must be positive")
	}
	need := (n.BitLen()+64)/8 + 1
	stream := make([]byte, 0, need)
	var ctr [4]byte
	for block := 0; len(stream) < need; block++ {
		binary.BigEndian.PutUint32(ctr[:], uint32(block))
		mac := hmac.New(sha256.New, key)
		mac.Write(ctr[:])
		mac.Write(data)
		stream = mac.Sum(stream)
	}
	out := new(big.Int).SetBytes(stream[:need])
	return out.Mod(out, n), nil
}

// ToRange maps data into [0, n) for a small int range; used by the classic
// EHL to pick bit positions (HMAC(k, o) mod H).
func ToRange(key Key, data []byte, n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("prf: ToRange bound must be positive, got %d", n)
	}
	v, err := ToZn(key, data, big.NewInt(int64(n)))
	if err != nil {
		return 0, err
	}
	return int(v.Int64()), nil
}

// Perm is a keyed pseudorandom permutation over [0, n): the paper's P_K.
// It is realized by sorting the domain by PRF value, which yields a
// permutation computationally indistinguishable from random under the PRF
// assumption.
type Perm struct {
	n       int
	forward []int // forward[i] = P(i)
	inverse []int // inverse[P(i)] = i
}

// NewPerm builds the permutation P_K over [0, n).
func NewPerm(key Key, n int) (*Perm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("prf: permutation domain must be positive, got %d", n)
	}
	if len(key) == 0 {
		return nil, errors.New("prf: empty permutation key")
	}
	type tagged struct {
		tag []byte
		idx int
	}
	items := make([]tagged, n)
	for i := range items {
		items[i] = tagged{tag: EvalUint64(key, uint64(i)), idx: i}
	}
	sort.Slice(items, func(a, b int) bool {
		c := compareBytes(items[a].tag, items[b].tag)
		if c != 0 {
			return c < 0
		}
		return items[a].idx < items[b].idx
	})
	p := &Perm{n: n, forward: make([]int, n), inverse: make([]int, n)}
	for pos, it := range items {
		p.forward[it.idx] = pos
		p.inverse[pos] = it.idx
	}
	return p, nil
}

func compareBytes(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// Len returns the domain size.
func (p *Perm) Len() int { return p.n }

// Apply returns P(i).
func (p *Perm) Apply(i int) (int, error) {
	if i < 0 || i >= p.n {
		return 0, fmt.Errorf("prf: permutation index %d out of [0, %d)", i, p.n)
	}
	return p.forward[i], nil
}

// Invert returns P^{-1}(j).
func (p *Perm) Invert(j int) (int, error) {
	if j < 0 || j >= p.n {
		return 0, fmt.Errorf("prf: permutation index %d out of [0, %d)", j, p.n)
	}
	return p.inverse[j], nil
}

// RandomPerm samples a uniformly random permutation of [0, n) using
// crypto/rand (Fisher-Yates). The servers use it for the ephemeral
// permutations pi inside the sub-protocols.
func RandomPerm(n int) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("prf: negative permutation size %d", n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(rand.Reader, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, err
		}
		j := int(jBig.Int64())
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// InvertPerm returns the inverse of a permutation given as a slice.
func InvertPerm(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}
