package faultnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/secerr"
)

// okCaller is an inner transport that always succeeds and counts calls.
type okCaller struct{ calls int }

func (c *okCaller) Call(context.Context, string, any, any) error {
	c.calls++
	return nil
}

// TestSeededDeterministic checks the same seed and profile reproduce the
// same fault pattern, and a different seed diverges.
func TestSeededDeterministic(t *testing.T) {
	profile := Profile{Ops: 64, Rate: 0.3, PersistRate: 0.2}
	drive := func(s *Schedule) []string {
		for i := 0; i < 64; i++ {
			s.take("call", fmt.Sprintf("op%d", i))
		}
		return s.Injected()
	}
	a := drive(Seeded(42, profile))
	b := drive(Seeded(42, profile))
	if len(a) == 0 {
		t.Fatal("seed 42 injected no faults; profile too sparse for the test")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	c := drive(Seeded(43, profile))
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

// TestCallerOneShotReset checks a one-shot reset fails exactly one call
// with the transport code, and the next call goes through.
func TestCallerOneShotReset(t *testing.T) {
	inner := &okCaller{}
	c := NewCaller(inner, NewSchedule().At(0, Fault{Kind: KindReset}))
	err := c.Call(context.Background(), "m", nil, nil)
	if !errors.Is(err, secerr.ErrTransport) {
		t.Fatalf("err = %v, want transport code", err)
	}
	if inner.calls != 0 {
		t.Fatalf("inner reached %d times during reset, want 0", inner.calls)
	}
	if err := c.Call(context.Background(), "m", nil, nil); err != nil {
		t.Fatalf("call after one-shot reset: %v", err)
	}
}

// TestCallerPersistentReset checks a persistent fault latches: every
// later call fails the same way.
func TestCallerPersistentReset(t *testing.T) {
	inner := &okCaller{}
	c := NewCaller(inner, NewSchedule().At(1, Fault{Kind: KindReset, Persistent: true}))
	if err := c.Call(context.Background(), "m", nil, nil); err != nil {
		t.Fatalf("call before fault: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Call(context.Background(), "m", nil, nil); !errors.Is(err, secerr.ErrTransport) {
			t.Fatalf("call %d after latch: %v, want transport code", i, err)
		}
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls)
	}
}

// TestCallerStallHonorsContext checks a stalled call returns the
// context's error promptly once the caller gives up.
func TestCallerStallHonorsContext(t *testing.T) {
	c := NewCaller(&okCaller{}, NewSchedule().At(0, Fault{Kind: KindStall}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Call(ctx, "m", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stalled call did not return promptly after context expiry")
	}
}

// TestConnResetTearsBothDirections checks a conn-layer reset closes the
// underlying connection so the peer observes the loss too.
func TestConnResetTearsBothDirections(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := WrapConn(a, NewSchedule().At(0, Fault{Kind: KindReset}))
	if _, err := c.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write during reset: %v, want net.ErrClosed", err)
	}
	if _, err := b.Read(make([]byte, 1)); err != io.EOF && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("peer read after reset: %v, want closed", err)
	}
}

// TestConnStallRespectsDeadline checks a stalled read times out at the
// deadline the caller configured, like a kernel socket would.
func TestConnStallRespectsDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WrapConn(a, NewSchedule().At(0, Fault{Kind: KindStall}))
	if err := c.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read: %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stalled read did not honor its deadline")
	}
}

// TestConnStallUnblocksOnClose checks an undeadlined stalled read is
// released by Close rather than hanging forever.
func TestConnStallUnblocksOnClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := WrapConn(a, NewSchedule().At(0, Fault{Kind: KindStall}))
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("stalled read after close: %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled read not released by Close")
	}
}

// TestConnDelayPassesThrough checks a delayed write still delivers its
// bytes after the hold.
func TestConnDelayPassesThrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WrapConn(a, NewSchedule().At(0, Fault{Kind: KindDelay, Delay: 5 * time.Millisecond}))
	go func() {
		c.Write([]byte("ok"))
	}()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("read delayed bytes: %v", err)
	}
	if string(buf) != "ok" {
		t.Fatalf("read %q, want %q", buf, "ok")
	}
}

// TestListenerPerConnSchedules checks each accepted connection gets its
// own schedule by index, with nil meaning fault-free.
func TestListenerPerConnSchedules(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	l := &Listener{Listener: base, NewSchedule: func(i int) *Schedule {
		if i == 0 {
			return NewSchedule().At(0, Fault{Kind: KindReset})
		}
		return nil
	}}
	defer l.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- conn
		}
	}()

	for i := 0; i < 2; i++ {
		d, err := net.Dial("tcp", base.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer d.Close()
	}

	first := <-accepted
	defer first.Close()
	if _, err := first.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("first conn write: %v, want injected reset", err)
	}
	second := <-accepted
	defer second.Close()
	if _, err := second.Write([]byte("x")); err != nil {
		t.Fatalf("second conn write: %v, want fault-free", err)
	}
}
