// Package faultnet injects deterministic faults into the system's
// transports so the failure model is testable: connection resets,
// read/write stalls, and frame delays, scheduled either explicitly or
// from a seed. It wraps both layers a deployment can lose —
// transport.Caller (one protocol round) and net.Conn (the byte stream
// under the framing) — so chaos suites can prove that every query
// either completes with a revealed-equivalent answer or fails fast with
// a typed secerr code: no hangs, no goroutine leaks, no wrong results.
//
// Schedules are deterministic: an explicit schedule triggers exactly the
// faults it was given, at the operation indexes it was given them for,
// and a seeded schedule derives its fault pattern from a fixed seed via
// a stable PRNG, so a failing chaos run reproduces from its seed alone.
package faultnet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/secerr"
	"repro/internal/transport"
)

// Kind is the fault class injected at one operation.
type Kind int

const (
	// KindNone lets the operation through untouched.
	KindNone Kind = iota
	// KindReset fails the operation as a torn connection (and, at the
	// conn layer, actually closes the underlying connection, so both
	// directions observe the loss like a real RST).
	KindReset
	// KindStall blocks the operation until the caller's context (or the
	// connection's deadline) fires — a black-holed peer.
	KindStall
	// KindDelay holds the operation for Delay, then lets it through — a
	// congested link rather than a dead one.
	KindDelay
)

// String names the kind for logs and test output.
func (k Kind) String() string {
	switch k {
	case KindReset:
		return "reset"
	case KindStall:
		return "stall"
	case KindDelay:
		return "delay"
	default:
		return "none"
	}
}

// Fault is one scheduled misbehavior.
type Fault struct {
	Kind Kind
	// Delay is the hold time for KindDelay.
	Delay time.Duration
	// Persistent latches the fault: once triggered, every later
	// operation on the same schedule fails the same way (a dead link),
	// instead of a one-shot glitch the next operation survives.
	Persistent bool
}

// Schedule maps operation indexes (0-based, in execution order) to
// faults. One schedule tracks one stream of operations — share it
// between wrappers only when they should consume a single combined
// index space. Safe for concurrent use.
type Schedule struct {
	mu      sync.Mutex
	faults  map[int]Fault
	next    int
	latched *Fault
	log     []string
}

// NewSchedule returns an empty (fault-free) schedule.
func NewSchedule() *Schedule {
	return &Schedule{faults: map[int]Fault{}}
}

// At schedules a fault for the op-th operation (0-based). Returns the
// schedule for chaining.
func (s *Schedule) At(op int, f Fault) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults[op] = f
	return s
}

// Profile parameterizes a seeded schedule.
type Profile struct {
	// Ops is how many leading operations are fault-eligible (later ones
	// always pass; keeps runs terminating under persistent retries).
	Ops int
	// Rate is the per-operation fault probability in [0, 1].
	Rate float64
	// Kinds are the eligible fault kinds (defaults to reset/stall/delay).
	Kinds []Kind
	// Delay is the hold time used for KindDelay faults.
	Delay time.Duration
	// PersistRate is the probability a chosen fault is persistent.
	PersistRate float64
}

// Seeded derives a deterministic schedule from the seed: the same seed
// and profile always produce the same fault pattern.
func Seeded(seed int64, p Profile) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	kinds := p.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindReset, KindStall, KindDelay}
	}
	delay := p.Delay
	if delay <= 0 {
		delay = 5 * time.Millisecond
	}
	s := NewSchedule()
	for op := 0; op < p.Ops; op++ {
		if rng.Float64() >= p.Rate {
			continue
		}
		f := Fault{Kind: kinds[rng.Intn(len(kinds))], Delay: delay}
		if rng.Float64() < p.PersistRate {
			f.Persistent = true
		}
		s.faults[op] = f
	}
	return s
}

// take consumes the next operation index and returns its fault (or the
// latched persistent fault).
func (s *Schedule) take(layer, op string) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latched != nil {
		return *s.latched
	}
	idx := s.next
	s.next++
	f := s.faults[idx]
	if f.Kind != KindNone {
		s.log = append(s.log, fmt.Sprintf("%s op %d (%s): %s%s", layer, idx, op, f.Kind,
			map[bool]string{true: " [persistent]", false: ""}[f.Persistent]))
		if f.Persistent {
			latched := f
			s.latched = &latched
		}
	}
	return f
}

// Injected reports the faults actually triggered so far, in order —
// useful in failing-test output alongside the seed.
func (s *Schedule) Injected() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.log...)
}

// Caller wraps a transport.Caller with fault injection: each Call
// consumes one schedule index before reaching the inner transport.
// Injected failures carry secerr.CodeTransport, exactly like genuine
// link failures, so recovery layers cannot tell them apart.
type Caller struct {
	inner transport.Caller
	sched *Schedule
}

// NewCaller wraps inner with the schedule.
func NewCaller(inner transport.Caller, sched *Schedule) *Caller {
	return &Caller{inner: inner, sched: sched}
}

// Call implements transport.Caller.
func (c *Caller) Call(ctx context.Context, method string, req, resp any) error {
	switch f := c.sched.take("call", method); f.Kind {
	case KindReset:
		return secerr.New(secerr.CodeTransport, "faultnet: injected connection reset before %s", method)
	case KindStall:
		// A black-holed peer: nothing moves until the caller gives up.
		<-ctx.Done()
		return fmt.Errorf("transport: %s: %w", method, ctx.Err())
	case KindDelay:
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return fmt.Errorf("transport: %s: %w", method, ctx.Err())
		}
	}
	return c.inner.Call(ctx, method, req, resp)
}
