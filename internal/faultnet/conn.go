package faultnet

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// Conn wraps a net.Conn with fault injection under the framing layer:
// each Read and Write consumes one schedule index. A reset closes the
// underlying connection (both directions observe the loss, like a real
// RST); a stall blocks until the relevant deadline fires or the
// connection closes (a black-holed peer honoring nothing); a delay holds
// the byte flow briefly. Deadlines set through SetDeadline /
// SetReadDeadline / SetWriteDeadline are tracked so stalls respect them
// exactly like kernel sockets do.
type Conn struct {
	inner net.Conn
	sched *Schedule

	mu      sync.Mutex
	readDL  time.Time
	writeDL time.Time

	closeOnce sync.Once
	closed    chan struct{}
	closeErr  error
}

// WrapConn wraps conn with the schedule.
func WrapConn(conn net.Conn, sched *Schedule) *Conn {
	return &Conn{inner: conn, sched: sched, closed: make(chan struct{})}
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	if err := c.fault("read", c.readDeadline); err != nil {
		return 0, err
	}
	return c.inner.Read(b)
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	if err := c.fault("write", c.writeDeadline); err != nil {
		return 0, err
	}
	return c.inner.Write(b)
}

// fault consumes one schedule index and applies its fault to this
// operation; deadline supplies the operation's current deadline for
// stalls.
func (c *Conn) fault(op string, deadline func() time.Time) error {
	switch f := c.sched.take("conn", op); f.Kind {
	case KindReset:
		c.Close()
		return fmt.Errorf("faultnet: injected connection reset during %s: %w", op, net.ErrClosed)
	case KindStall:
		return c.stall(deadline())
	case KindDelay:
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.closed:
			return net.ErrClosed
		}
	}
	return nil
}

// stall blocks until the deadline fires or the connection closes. A zero
// deadline stalls until close — exactly the hang an undeadlined read
// against a black-holed peer produces.
func (c *Conn) stall(dl time.Time) error {
	if dl.IsZero() {
		<-c.closed
		return net.ErrClosed
	}
	t := time.NewTimer(time.Until(dl))
	defer t.Stop()
	select {
	case <-t.C:
		return os.ErrDeadlineExceeded
	case <-c.closed:
		return net.ErrClosed
	}
}

func (c *Conn) readDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readDL
}

func (c *Conn) writeDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeDL
}

// Close implements net.Conn; it also releases every stalled operation.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.closeErr = c.inner.Close()
	})
	return c.closeErr
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}

// Listener wraps a net.Listener so every accepted connection carries a
// fresh fault schedule from NewSchedule (nil leaves a connection
// fault-free).
type Listener struct {
	net.Listener
	// NewSchedule supplies the schedule for the i-th accepted
	// connection (0-based).
	NewSchedule func(i int) *Schedule

	mu sync.Mutex
	n  int
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	if l.NewSchedule == nil {
		return conn, nil
	}
	sched := l.NewSchedule(i)
	if sched == nil {
		return conn, nil
	}
	return WrapConn(conn, sched), nil
}
