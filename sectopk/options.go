package sectopk

import (
	"time"

	"repro/internal/backoff"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/ehl"
	"repro/internal/qos"
)

// Option configures an Owner, JoinOwner, CryptoCloud, or DataCloud at
// construction time. All roles share one option vocabulary; options that
// do not apply to a role are ignored by it (e.g. key-material options on
// a DataCloud, which never holds keys).
type Option func(*config)

type config struct {
	keyBits      int
	ehlDigests   int
	maxScoreBits int
	parallelism  int
	fastNonce    bool
	crtNonce     bool
	noncePools   bool
	shards       int
	batching     bool
	sessionLimit int
	retry        *RetryPolicy
	drainTimeout time.Duration
	compactGoal  int
	memberID     string
	// tenant names the tenant a Client identifies as (WithTenant).
	tenant string
	// tenantLimits are a DataCloud's per-tenant QoS admission budgets
	// (WithTenantLimits); nil leaves every tenant unlimited.
	tenantLimits map[string]qos.Rate
	// traceSink receives one QuerySpan per execution (WithTraceSink).
	traceSink TraceSink
}

// retryPolicy resolves the effective backoff policy: the configured one,
// or the package defaults when retries were requested implicitly (e.g.
// DialRetry with no WithRetry option).
func (c config) retryPolicy() backoff.Policy {
	if c.retry != nil {
		return c.retry.backoff()
	}
	return backoff.Policy{}
}

func defaultConfig() config {
	p := core.DefaultParams()
	return config{
		keyBits:      p.KeyBits,
		ehlDigests:   p.EHL.S,
		maxScoreBits: p.MaxScoreBits,
		crtNonce:     true,
		noncePools:   true,
		shards:       1,
		batching:     true,
	}
}

func buildConfig(opts []Option) config {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// coreParams maps the config to the owner-side scheme parameters.
func (c config) coreParams() core.Params {
	return core.Params{
		KeyBits:      c.keyBits,
		EHL:          ehl.Params{Kind: ehl.KindPlus, S: c.ehlDigests},
		MaxScoreBits: c.maxScoreBits,
		Parallelism:  c.parallelism,
		FastNonce:    c.fastNonce,
	}
}

// cloudOptions maps the config to the cloud-layer option set.
func (c config) cloudOptions() []cloud.Option {
	opts := []cloud.Option{
		cloud.WithParallelism(c.parallelism),
		cloud.WithFastNonce(c.fastNonce),
		cloud.WithCRTNonce(c.crtNonce),
	}
	if !c.noncePools {
		opts = append(opts, cloud.WithoutNoncePools())
	}
	return opts
}

// WithKeyBits sets the Paillier modulus size. The default matches the
// paper's evaluation (512); production deployments should use 2048+.
func WithKeyBits(bits int) Option {
	return func(c *config) { c.keyBits = bits }
}

// WithEHLDigests sets the EHL+ digest count s (the security/size
// trade-off of Section 6; the paper evaluates s = 5).
func WithEHLDigests(s int) Option {
	return func(c *config) { c.ehlDigests = s }
}

// WithMaxScoreBits bounds attribute magnitudes: every score must lie in
// [0, 2^bits). The bound is public schema metadata used to size
// comparison masks.
func WithMaxScoreBits(bits int) Option {
	return func(c *config) { c.maxScoreBits = bits }
}

// WithParallelism bounds a role's worker goroutines: 0 (the default)
// uses all cores, 1 is strictly serial, n caps workers at n.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithFastNonce opts into the short-exponent fixed-base nonce path for
// every encryption surface the role owns. Off by default: it rests on
// the short-exponent/subgroup assumption on top of DCR (see DESIGN.md
// "Precomputation fast paths").
func WithFastNonce(on bool) Option {
	return func(c *config) { c.fastNonce = on }
}

// WithCRTNonce toggles the assumption-free CRT nonce fast path for
// surfaces whose private key the role holds. On by default.
func WithCRTNonce(on bool) Option {
	return func(c *config) { c.crtNonce = on }
}

// WithoutNoncePools disables the background nonce-precompute pools.
func WithoutNoncePools() Option {
	return func(c *config) { c.noncePools = false }
}

// WithShards partitions relations into p round-robin shards at Enc time
// (Owner option; the other roles infer the shard count from the relation
// itself). A sharded relation's query runs P per-shard sub-engines
// concurrently over shared crypto-cloud key material and merges their
// candidates with an NRA-checked encrypted selection, so multi-core
// hosts parallelize a single query across shards. p <= 1 (the default)
// keeps the relation unsharded.
func WithShards(p int) Option {
	return func(c *config) {
		if p >= 1 {
			c.shards = p
		}
	}
}

// WithBatching toggles the data cloud's batch scheduler (on by default):
// protocol calls from concurrent sessions coalesce into wire-v2 batch
// envelopes — one round trip for many calls — flushed on size, on a ~1ms
// tick, or immediately while the link is idle (so a lone session pays no
// added latency). Turn it off to reproduce the one-call-per-round wire
// v1 behavior exactly.
func WithBatching(on bool) Option {
	return func(c *config) { c.batching = on }
}

// WithSessionLimit bounds the requests a DataCloud executes
// concurrently, across every workload and entry point: DataCloud.Execute,
// Session/JoinSession, SessionPool runs, and requests admitted from
// remote clients (ServeClients) all claim one admission slot for the
// duration of their run. An explicit limit SHEDS on overflow: a request
// arriving with every slot taken fails immediately with ErrOverloaded
// (which also crosses the client wire typed, and which the retrying
// client plane backs off and retries) instead of queueing into an
// unbounded backlog. n <= 0 (the default) leaves in-process execution
// unbounded; the remote client plane then falls back to a
// GOMAXPROCS-sized queueing gate of its own, so an open listener never
// admits unbounded concurrent work.
func WithSessionLimit(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.sessionLimit = n
		}
	}
}

// RetryPolicy is the public face of the shared backoff schedule: capped
// exponential delays with randomized jitter, bounded by attempts and/or
// a total elapsed window. The zero value picks the package defaults
// (first retry after ~25ms, doubling to a 2s cap, 4 attempts).
type RetryPolicy struct {
	// Initial is the base delay before the first retry.
	Initial time.Duration
	// Max caps the per-retry delay after exponential growth.
	Max time.Duration
	// Factor is the growth factor between retries (default 2).
	Factor float64
	// Jitter is the randomized fraction of each delay in [0, 1]
	// (default 0.5); negative disables jitter entirely.
	Jitter float64
	// MaxAttempts bounds total tries, first call included (0 = default,
	// negative = exactly one attempt).
	MaxAttempts int
	// MaxElapsed, when positive, bounds the total retry window; with
	// MaxAttempts left 0 it becomes the only bound.
	MaxElapsed time.Duration
}

func (p RetryPolicy) backoff() backoff.Policy {
	return backoff.Policy{
		Initial: p.Initial, Max: p.Max, Factor: p.Factor, Jitter: p.Jitter,
		MaxAttempts: p.MaxAttempts, MaxElapsed: p.MaxElapsed,
	}
}

// WithRetry opts a role into recovery-by-retry under the given policy.
//
// On a DataCloud it wraps the S1→S2 transport with the round-retry
// layer: failed protocol rounds are re-issued when — and only when —
// the method is in the retryability table (every current method is: S2's
// handlers are stateless crypto transforms) and the failure was
// link-level or an overload shed. Peer-computed errors surface
// immediately. Combine with DialRetry for re-dialing too.
//
// On a querier Client (DialRetry) it sets the schedule used both for
// re-dialing the data cloud and for re-issuing failed Execute calls
// (which carry an idempotency key, so a retried query is accounted as
// one query, not a repeated pattern).
func WithRetry(p RetryPolicy) Option {
	return func(c *config) { c.retry = &p }
}

// WithMemberID names a DataCloud's cluster identity: the Member string
// it announces in cluster Hellos and reports in readiness probes.
// Unset (the default), a front door identifies the member by its dialed
// address instead.
func WithMemberID(id string) Option {
	return func(c *config) { c.memberID = id }
}

// WithCompactThreshold makes a DataCloud fold tombstones automatically:
// when a relation's tombstoned-row count reaches n after an Apply, the
// compaction runs in the same epoch transition (the Apply reports the
// post-compaction epoch, so the owner adopts both steps at once). Zero
// (the default) leaves compaction entirely owner-triggered
// (DataCloud.Compact). Compaction trades the O(dead) storage debt for
// an epoch bump: queries pinned to the pre-compaction epoch fail with
// ErrRelationStale, exactly like they would across any other Apply.
func WithCompactThreshold(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.compactGoal = n
		}
	}
}

// WithDrainTimeout makes a DataCloud's shutdown graceful: Close (and a
// canceled ServeClients) stops admitting new requests immediately —
// they shed with ErrOverloaded — but lets requests already executing
// run to completion for up to d before aborting what remains. Zero (the
// default) keeps the immediate-abort behavior.
func WithDrainTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.drainTimeout = d
		}
	}
}

// Mode selects the query-processing variant (Section 11.2).
type Mode int

const (
	// ModeFull is Qry_F: fully private, SecDedup in replace mode at every
	// depth.
	ModeFull Mode = iota
	// ModeEliminate is Qry_E: duplicates are eliminated, trading the
	// uniqueness-pattern leakage for speed (Section 10.1).
	ModeEliminate
	// ModeBatched is Qry_Ba: dedup/sort/halt batched every p depths
	// (Section 10.2).
	ModeBatched
)

func (m Mode) String() string { return m.coreMode().String() }

func (m Mode) coreMode() core.Mode {
	switch m {
	case ModeEliminate:
		return core.QryE
	case ModeBatched:
		return core.QryBa
	default:
		return core.QryF
	}
}

// Halting selects the halting test.
type Halting int

const (
	// HaltingPaper is Algorithm 3 line 10 verbatim.
	HaltingPaper Halting = iota
	// HaltingStrict restores NRA's guarantee (every tracked bound and the
	// unseen-object bound must be dominated).
	HaltingStrict
)

func (h Halting) coreHalt() core.HaltPolicy {
	if h == HaltingStrict {
		return core.HaltStrict
	}
	return core.HaltPaper
}

// SortStrategy selects how the worst-score ranking is maintained.
type SortStrategy int

const (
	// SortTopK runs the O(k*l) oblivious selection (the default).
	SortTopK SortStrategy = iota
	// SortFull runs the full Batcher-network EncSort.
	SortFull
)

func (s SortStrategy) coreSort() core.SortStrategy {
	if s == SortFull {
		return core.SortFull
	}
	return core.SortTopK
}

// QueryOption configures one Session (one query execution).
type QueryOption func(*queryConfig)

type queryConfig struct {
	mode        Mode
	halt        Halting
	sort        SortStrategy
	batchDepth  int
	maxDepth    int
	parallelism int
	// epoch, when non-zero, pins the query to one relation epoch: if a
	// concurrent Apply or Compact advanced the relation past it, the
	// query fails fast with ErrRelationStale instead of answering over a
	// state the querier did not ask about.
	epoch uint64
	// queryID is the run's idempotency key (set by the client wire, not a
	// public QueryOption): re-executions of the same logical query carry
	// the same ID so the leakage ledger counts them once.
	queryID string
	// tenant is the admission bucket the request runs under (set by the
	// client wire from the connection's negotiated tenant, not a public
	// QueryOption); "" is the default tenant.
	tenant string
}

func buildQueryConfig(opts []QueryOption) queryConfig {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

func (q queryConfig) coreOptions() core.Options {
	return core.Options{
		Mode:        q.mode.coreMode(),
		Halt:        q.halt.coreHalt(),
		Sort:        q.sort.coreSort(),
		BatchDepth:  q.batchDepth,
		MaxDepth:    q.maxDepth,
		Parallelism: q.parallelism,
		QueryID:     q.queryID,
	}
}

// WithMode selects the query-processing variant.
func WithMode(m Mode) QueryOption {
	return func(c *queryConfig) { c.mode = m }
}

// WithHalting selects the halting test.
func WithHalting(h Halting) QueryOption {
	return func(c *queryConfig) { c.halt = h }
}

// WithSortStrategy selects the ranking strategy.
func WithSortStrategy(s SortStrategy) QueryOption {
	return func(c *queryConfig) { c.sort = s }
}

// WithBatchDepth sets the batching parameter p (ModeBatched only; must be
// >= k; 0 picks max(2k, 8)).
func WithBatchDepth(p int) QueryOption {
	return func(c *queryConfig) { c.batchDepth = p }
}

// WithMaxDepth caps the scan depth (0 scans to completion). A capped
// query may return an unhalted, best-effort result.
func WithMaxDepth(d int) QueryOption {
	return func(c *queryConfig) { c.maxDepth = d }
}

// WithQueryParallelism bounds this query's engine workers, overriding the
// DataCloud's knob (0 inherits it).
func WithQueryParallelism(n int) QueryOption {
	return func(c *queryConfig) { c.parallelism = n }
}

// WithEpoch pins the query to one relation epoch (DataCloud.Epoch or the
// epoch an Apply reported). A query whose relation has since advanced —
// a concurrent Apply or Compact landed — fails fast with
// ErrRelationStale rather than silently answering over newer data. Note
// the pin rejects only version skew visible at execution start; a query
// already executing always finishes on the consistent snapshot it
// started on, whatever mutations land meanwhile. 0 (the default) means
// "whatever is current".
func WithEpoch(epoch uint64) QueryOption {
	return func(c *queryConfig) { c.epoch = epoch }
}
