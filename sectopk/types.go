package sectopk

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/mutate"
	"repro/internal/paillier"
	"repro/internal/protocols"
	"repro/internal/secerr"
	"repro/internal/shard"
)

// Relation is a plaintext table: n rows of m integer attributes. All
// attributes must be non-negative and bounded by the owner's
// WithMaxScoreBits setting.
type Relation struct {
	Name string
	Rows [][]int64
}

// toDataset converts to the internal representation.
func (r *Relation) toDataset() (*dataset.Relation, error) {
	if r == nil {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: nil relation")
	}
	rel := &dataset.Relation{Name: r.Name, Rows: r.Rows}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	return rel, nil
}

// GenerateDataset deterministically generates one of the evaluation
// datasets (insurance, diabetes, PAMAP, synthetic) scaled to exactly the
// requested row count (which may exceed the spec's published size).
func GenerateDataset(name string, rows int, seed int64) (*Relation, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("sectopk: dataset rows must be positive, got %d", rows)
	}
	var spec dataset.Spec
	switch strings.ToLower(name) {
	case "insurance":
		spec = dataset.Insurance()
	case "diabetes":
		spec = dataset.Diabetes()
	case "pamap":
		spec = dataset.PAMAP()
	case "synthetic":
		spec = dataset.Synthetic()
	default:
		return nil, fmt.Errorf("sectopk: unknown dataset %q (want insurance, diabetes, pamap, or synthetic)", name)
	}
	rel, err := dataset.Generate(spec.WithN(rows), seed)
	if err != nil {
		return nil, err
	}
	return &Relation{Name: rel.Name, Rows: rel.Rows}, nil
}

// Query describes one top-k query: the attribute set, optional
// non-negative weights (nil weighs every attribute 1), and k.
type Query struct {
	Attrs   []int
	Weights []int64
	K       int
}

// Result is one revealed top-k answer: the object's row index in the
// original relation and its accumulated (worst) score.
type Result struct {
	Object int
	Score  int64
}

// Traffic summarizes wire usage: request/response rounds and bytes in
// both directions. Answers produced by the serving plane additionally
// carry the span fields below; they stay zero on the cumulative
// connection-level accessors (DataCloud.Traffic, Client.Traffic) and on
// answers from servers predating client wire v3. Like Rounds and Bytes,
// the span counters are measured as deltas on shared per-process
// counters, so they are approximate when requests execute concurrently.
type Traffic struct {
	Rounds int64
	Bytes  int64
	// S2Calls counts the protocol calls this execution shipped to the
	// crypto cloud (the batch scheduler coalesces many into one round).
	S2Calls int64
	// FanOut is the parallel width the query spread over: the relation's
	// shard count locally, or the member count through a cluster front
	// door. 0 when not applicable (join/kNN, cumulative Traffic).
	FanOut int
	// MergeFallbacks counts merge-bound certification failures that
	// forced an exact rescan during this execution.
	MergeFallbacks int64
	// Epoch is the relation epoch the query answered over (0 when the
	// workload is not epoch-versioned).
	Epoch uint64
}

// EncryptedRelation is an outsourced relation: one or more encrypted
// shards (P round-robin partitions, each a complete set of encrypted
// sorted lists under globally unique object ids) plus the public key
// they were encrypted under (public material — safe to hand to the data
// cloud). Unsharded relations are the P = 1 case.
type EncryptedRelation struct {
	sh *shard.Relation
	pk *paillier.PublicKey
	// mst, when non-nil, is the relation's mutable state: the epoch, the
	// id space high-water mark, and the tombstone tails behind sh's live
	// views. A freshly encrypted relation has none (nil = epoch-1 state
	// with no tombstones); Host and the mutation plane materialize it.
	mst *mutate.Relation
}

// Epoch returns the relation's mutation epoch (1 for a fresh
// encryption; every applied delta or compaction advances it).
func (er *EncryptedRelation) Epoch() uint64 {
	if er.mst != nil {
		return er.mst.Epoch
	}
	return 1
}

// idSpace is the exclusive upper bound on object ids ever assigned in
// this relation, live or tombstoned — the digest range a revealer must
// cover.
func (er *EncryptedRelation) idSpace() int {
	if er.mst != nil && er.mst.IDSpace > er.sh.N {
		return er.mst.IDSpace
	}
	return er.sh.N
}

// Name returns the relation's name.
func (er *EncryptedRelation) Name() string { return er.sh.Shards[0].Name }

// Rows returns the global row count n.
func (er *EncryptedRelation) Rows() int { return er.sh.N }

// Attributes returns the attribute count m.
func (er *EncryptedRelation) Attributes() int { return er.sh.M }

// Shards returns the shard count P (1 for unsharded relations).
func (er *EncryptedRelation) Shards() int { return len(er.sh.Shards) }

// ByteSize returns the serialized ciphertext size, for storage-overhead
// accounting.
func (er *EncryptedRelation) ByteSize() int64 {
	var total int64
	for _, s := range er.sh.Shards {
		total += s.ByteSize(er.pk)
	}
	return total
}

// Token is a query trapdoor issued by the owner for one encrypted
// relation.
type Token struct {
	tk *core.Token
}

// K returns the query's k.
func (t *Token) K() int { return t.tk.K }

// EncryptedResult is the encrypted outcome of one query: the top-k items
// (ids and scores still encrypted), the scan depth, and whether the
// halting condition fired (false only for depth-capped scans).
type EncryptedResult struct {
	items  []protocols.Item
	Depth  int
	Halted bool
}

// Len returns the number of encrypted result items.
func (r *EncryptedResult) Len() int { return len(r.items) }

// EncryptedJoinRelation is an outsourced join relation (Section 12):
// attribute values EHL-encrypted so the clouds can evaluate equi-join
// conditions homomorphically.
type EncryptedJoinRelation struct {
	er           *join.EncRelation
	pk           *paillier.PublicKey
	ehlS         int
	maxScoreBits int
}

// Name returns the relation's name.
func (er *EncryptedJoinRelation) Name() string { return er.er.Name }

// Rows returns the tuple count.
func (er *EncryptedJoinRelation) Rows() int { return er.er.N }

// Attributes returns the attribute count.
func (er *EncryptedJoinRelation) Attributes() int { return er.er.M }

// JoinQuery describes a secure top-k equi-join:
//
//	SELECT Project1, Project2 FROM R1, R2
//	WHERE R1.JoinAttr1 = R2.JoinAttr2
//	ORDER BY R1.ScoreAttr1 + R2.ScoreAttr2 STOP AFTER K
type JoinQuery struct {
	JoinAttr1, JoinAttr2   int
	ScoreAttr1, ScoreAttr2 int
	Project1, Project2     []int
	K                      int
}

// JoinToken is the join trapdoor for one relation pair.
type JoinToken struct {
	tk *join.Token
}

// K returns the join query's k.
func (t *JoinToken) K() int { return t.tk.K }

// EncryptedJoinResult is the encrypted outcome of one join: the top-k
// joined tuples with encrypted scores and projected attributes.
type EncryptedJoinResult struct {
	tuples []protocols.JoinTuple
}

// Len returns the number of encrypted joined tuples.
func (r *EncryptedJoinResult) Len() int { return len(r.tuples) }

// JoinResult is one revealed joined tuple: the combined score followed by
// the projected attribute values (Project1's then Project2's).
type JoinResult struct {
	Score int64
	Attrs []int64
}

// PlainTopKJoin computes the ground-truth top-k equi-join over plaintext
// relations — the oracle secure runs are checked against.
func PlainTopKJoin(r1, r2 *Relation, q JoinQuery) ([]JoinResult, error) {
	d1, err := r1.toDataset()
	if err != nil {
		return nil, err
	}
	d2, err := r2.toDataset()
	if err != nil {
		return nil, err
	}
	tuples, err := join.PlainTopKJoin(d1, d2, q.JoinAttr1, q.JoinAttr2, q.ScoreAttr1, q.ScoreAttr2, q.Project1, q.Project2, q.K)
	if err != nil {
		return nil, err
	}
	out := make([]JoinResult, len(tuples))
	for i, t := range tuples {
		out[i] = JoinResult{Score: t.Score, Attrs: t.Attrs}
	}
	return out, nil
}
