package sectopk_test

import (
	"context"
	"fmt"
	"log"

	"repro/sectopk"
)

// Example runs the full SecTopK pipeline through the public API: the
// owner encrypts a relation, the two clouds stand up in-process, a
// session executes a top-2 query, and the owner reveals the answer.
func Example() {
	ctx := context.Background()

	// The data owner generates keys and encrypts the relation.
	owner, err := sectopk.NewOwner(
		sectopk.WithKeyBits(256), // demo-sized; production wants 2048+
		sectopk.WithEHLDigests(3),
		sectopk.WithMaxScoreBits(20),
	)
	if err != nil {
		log.Fatal(err)
	}
	er, err := owner.Encrypt(&sectopk.Relation{
		Name: "demo",
		Rows: [][]int64{
			{10, 3, 2},
			{8, 8, 0},
			{5, 7, 6},
			{3, 2, 8},
			{1, 1, 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The crypto cloud S2 holds the keys; the data cloud S1 hosts the
	// encrypted relation and drives the protocol rounds.
	cc := sectopk.NewCryptoCloud()
	defer cc.Close()
	if err := cc.Register("demo", owner.Keys()); err != nil {
		log.Fatal(err)
	}
	dc := sectopk.NewDataCloud()
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		log.Fatal(err)
	}
	if err := dc.Host(ctx, "demo", er); err != nil {
		log.Fatal(err)
	}

	// An authorized client asks for the top-2 by the sum of all three
	// attributes; one session is one query's lifecycle.
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := dc.NewSession("demo", tk,
		sectopk.WithMode(sectopk.ModeEliminate),
		sectopk.WithHalting(sectopk.HaltingStrict),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// The client reveals the encrypted answer with the owner's keys.
	results, err := owner.Reveal(er, res)
	if err != nil {
		log.Fatal(err)
	}
	for rank, r := range results {
		fmt.Printf("top-%d: object %d, score %d\n", rank+1, r.Object, r.Score)
	}
	// Output:
	// top-1: object 2, score 18
	// top-2: object 1, score 16
}
