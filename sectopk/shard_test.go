package sectopk_test

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/sectopk"
)

// shardDemoRelation is rank-correlated with distinct aggregates, so the
// sharded and unsharded engines are score-identical (see
// internal/shard's equivalence suite for the argument).
func shardDemoRelation(n int) *sectopk.Relation {
	rel := &sectopk.Relation{Name: "sharddemo"}
	for i := 0; i < n; i++ {
		rel.Rows = append(rel.Rows, []int64{int64(3*n - 3*i), int64(2*n - 2*i + 1), int64(n - i + 2)})
	}
	return rel
}

// plainTopK is the ground truth: rank by aggregate score, descending.
func plainTopK(rel *sectopk.Relation, k int) []sectopk.Result {
	type pair struct {
		obj   int
		score int64
	}
	all := make([]pair, len(rel.Rows))
	for i, row := range rel.Rows {
		var s int64
		for _, v := range row {
			s += v
		}
		all[i] = pair{obj: i, score: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].obj < all[j].obj
	})
	out := make([]sectopk.Result, k)
	for i := 0; i < k; i++ {
		out[i] = sectopk.Result{Object: all[i].obj, Score: all[i].score}
	}
	return out
}

// TestShardedSessionPoolOverTCP drives the whole throughput-first data
// plane through the public API: a sharded relation (WithShards), a TCP
// connection that negotiates the multiplexed wire v2, the batch
// scheduler (on by default), and a SessionPool issuing concurrent
// queries — every result identical to the plaintext ground truth.
func TestShardedSessionPoolOverTCP(t *testing.T) {
	ctx := context.Background()
	const n, k, p = 12, 3, 3
	rel := shardDemoRelation(n)
	truth := plainTopK(rel, k)

	owner, err := sectopk.NewOwner(testOpts(sectopk.WithShards(p))...)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	er, err := owner.Encrypt(rel)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if er.Shards() != p {
		t.Fatalf("Shards() = %d, want %d", er.Shards(), p)
	}
	if er.Rows() != n {
		t.Fatalf("Rows() = %d, want global %d", er.Rows(), n)
	}

	cc := sectopk.NewCryptoCloud(testOpts()...)
	defer cc.Close()
	if err := cc.Register("sharddemo", owner.Keys()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	go func() { _ = cc.Serve(serveCtx, l) }()

	dc := sectopk.NewDataCloud(testOpts()...)
	defer dc.Close()
	if err := dc.Dial(ctx, l.Addr().String()); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := dc.Host(ctx, "sharddemo", er); err != nil {
		t.Fatalf("Host: %v", err)
	}
	tk, err := owner.Token(er, sectopk.Query{Attrs: []int{0, 1, 2}, K: k})
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	pool, err := dc.NewSessionPool("sharddemo", 4)
	if err != nil {
		t.Fatalf("NewSessionPool: %v", err)
	}
	if _, err := dc.NewSessionPool("ghost", 4); err == nil {
		t.Fatal("NewSessionPool accepted an unhosted relation")
	}

	const queries = 4
	var wg sync.WaitGroup
	results := make([][]sectopk.Result, queries)
	errs := make([]error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pool.Execute(ctx, tk, sectopk.WithMode(sectopk.ModeEliminate), sectopk.WithHalting(sectopk.HaltingStrict))
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = owner.Reveal(er, res)
		}(i)
	}
	wg.Wait()
	for i := 0; i < queries; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent query %d: %v", i, errs[i])
		}
		if len(results[i]) != k {
			t.Fatalf("query %d returned %d results", i, len(results[i]))
		}
		for rank, got := range results[i] {
			if got != truth[rank] {
				t.Errorf("query %d rank %d: got %+v, want %+v", i, rank, got, truth[rank])
			}
		}
	}
}

// TestShardedRelationRoundTrip persists a sharded relation and loads it
// back; an unsharded save stays in the legacy format and loads too.
func TestShardedRelationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rel := shardDemoRelation(8)
	owner, err := sectopk.NewOwner(testOpts(sectopk.WithShards(2))...)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	er, err := owner.Encrypt(rel)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	path := filepath.Join(dir, "sharded.er")
	if err := er.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := sectopk.LoadEncryptedRelation(path)
	if err != nil {
		t.Fatalf("LoadEncryptedRelation: %v", err)
	}
	if loaded.Shards() != 2 || loaded.Rows() != 8 || loaded.Attributes() != 3 {
		t.Fatalf("loaded shape: shards=%d rows=%d attrs=%d", loaded.Shards(), loaded.Rows(), loaded.Attributes())
	}

	// The loaded bundle still answers queries correctly end to end.
	ctx := context.Background()
	cc := sectopk.NewCryptoCloud(testOpts()...)
	defer cc.Close()
	if err := cc.Register("rt", owner.Keys()); err != nil {
		t.Fatal(err)
	}
	dc := sectopk.NewDataCloud(testOpts()...)
	defer dc.Close()
	if err := dc.ConnectLocal(ctx, cc); err != nil {
		t.Fatal(err)
	}
	if err := dc.Host(ctx, "rt", loaded); err != nil {
		t.Fatalf("Host(loaded): %v", err)
	}
	tk, err := owner.Token(loaded, sectopk.Query{Attrs: []int{0, 1, 2}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dc.NewSession("rt", tk, sectopk.WithMode(sectopk.ModeEliminate))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Execute(ctx)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	got, err := owner.Reveal(loaded, res)
	if err != nil {
		t.Fatalf("Reveal: %v", err)
	}
	truth := plainTopK(rel, 2)
	for i := range got {
		if got[i] != truth[i] {
			t.Errorf("rank %d: got %+v, want %+v", i, got[i], truth[i])
		}
	}

	// A restored owner keeps sharding when asked: the bundle does not
	// record Enc-time options, so LoadOwner re-applies them.
	bundle := filepath.Join(dir, "owner.bundle")
	if err := owner.Save(bundle); err != nil {
		t.Fatalf("owner.Save: %v", err)
	}
	restored, err := sectopk.LoadOwner(bundle, sectopk.WithShards(2))
	if err != nil {
		t.Fatalf("LoadOwner: %v", err)
	}
	rer, err := restored.Encrypt(rel)
	if err != nil {
		t.Fatalf("restored Encrypt: %v", err)
	}
	if rer.Shards() != 2 {
		t.Fatalf("restored owner encrypted %d shard(s), want 2", rer.Shards())
	}

	// Unsharded bundles keep the legacy format readable by older builds.
	plainOwner, err := sectopk.NewOwner(testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	plainER, err := plainOwner.Encrypt(demoRelation())
	if err != nil {
		t.Fatal(err)
	}
	plainPath := filepath.Join(dir, "plain.er")
	if err := plainER.Save(plainPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(plainPath); err != nil {
		t.Fatal(err)
	}
	plainLoaded, err := sectopk.LoadEncryptedRelation(plainPath)
	if err != nil {
		t.Fatalf("legacy-format load: %v", err)
	}
	if plainLoaded.Shards() != 1 {
		t.Fatalf("legacy bundle loaded as %d shards", plainLoaded.Shards())
	}
}
