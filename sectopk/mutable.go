package sectopk

import (
	"crypto/rand"
	"encoding/hex"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ehl"
	"repro/internal/mutate"
	"repro/internal/secerr"
	"repro/internal/secio"
	"repro/internal/shard"
)

// Delta is one atomic encrypted mutation bundle the owner produces
// (InsertRows, DeleteRows, UpdateScores) and ships to the data cloud
// (DataCloud.Apply in process, Client.Apply over the wire). It carries
// only public material — fresh ciphertexts for inserted cells and list
// positions for tombstones — plus the idempotency key that makes a
// retried Apply exactly-once.
type Delta struct {
	d      *mutate.Delta
	params ehl.Params
}

// ID returns the delta's idempotency key.
func (d *Delta) ID() string { return d.d.ID }

// BaseEpoch returns the relation epoch this delta applies to.
func (d *Delta) BaseEpoch() uint64 { return d.d.BaseEpoch }

// Rows returns the (inserted, deleted) row counts. An updated row
// counts once in each.
func (d *Delta) Rows() (inserted, deleted int) { return d.d.Rows() }

// Save persists the delta for out-of-band hand-off (e.g. the
// sectopk-node apply subcommand).
func (d *Delta) Save(path string) error {
	return saveTo(path, func(w io.Writer) error {
		return secio.WriteDelta(w, d.d, d.params)
	})
}

// LoadDelta reads a persisted mutation delta.
func LoadDelta(path string) (*Delta, error) {
	var out *Delta
	err := loadFrom(path, func(r io.Reader) error {
		d, params, err := secio.ReadDelta(r)
		if err != nil {
			return err
		}
		out = &Delta{d: d, params: params}
		return nil
	})
	return out, err
}

// newDeltaID draws the idempotency key for one delta. Unlike a query's
// run key this one is load-bearing — exactly-once application hangs on
// it — so an entropy failure is an error, not a silent downgrade.
func newDeltaID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", secerr.Wrap(secerr.CodeInternal, err, "sectopk: drawing delta id")
	}
	return hex.EncodeToString(b[:]), nil
}

// MutableRelation is the owner's handle on a live-updatable encrypted
// relation. It keeps two synchronized views: the plaintext mirror (the
// live rows with their global ids — what the owner needs to compute
// sorted positions) and the ciphertext shadow (an exact copy of the
// hosted state, advanced through the same mutate.Apply the data cloud
// runs, so the owner can re-derive tokens, save a re-hostable bundle,
// or compare against a fresh encryption at any epoch).
//
// The intended loop is: produce a delta (InsertRows / DeleteRows /
// UpdateScores), ship it with DataCloud.Apply or Client.Apply —
// retrying the same delta is safe, the idempotency key dedups it —
// then Adopt the epoch the Apply reported. Deltas must be applied in
// the order they were produced; the epoch fencing rejects anything
// else as ErrRelationStale.
//
// All methods are safe for concurrent use.
type MutableRelation struct {
	owner *Owner
	name  string
	m, p  int

	mu     sync.Mutex
	rows   map[int][]int64 // live plaintext rows by global id
	nextID int             // id allocator high-water mark
	state  *mutate.Relation
}

// NewMutable opens a freshly encrypted relation for live updates. rel
// must be the exact plaintext Encrypt consumed (the mirror replays the
// encryption's deterministic row-id assignment: row i carries global id
// i, round-robin across er's shards), and er must be unmutated — an
// already-evolved relation reopens from the owner bundle
// (MutableRelation.Save / Owner.LoadMutable) instead, which carries the
// mirror at the right epoch.
func (o *Owner) NewMutable(rel *Relation, er *EncryptedRelation) (*MutableRelation, error) {
	if rel == nil || er == nil {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: nil relation or encrypted relation")
	}
	if er.Epoch() != 1 || (er.mst != nil && er.mst.DeadRows() > 0) {
		return nil, secerr.New(secerr.CodeBadRequest,
			"sectopk: relation already mutated (epoch %d); reopen it from the owner bundle", er.Epoch())
	}
	n := er.sh.N
	if len(rel.Rows) != n {
		return nil, secerr.New(secerr.CodeBadRequest,
			"sectopk: plaintext has %d rows, encrypted relation has %d", len(rel.Rows), n)
	}
	m := er.sh.M
	state := er.mst
	if state == nil {
		st, err := mutate.New(er.sh.Shards, 0)
		if err != nil {
			return nil, err
		}
		state = st
	}
	mr := &MutableRelation{
		owner: o, name: er.Name(), m: m, p: len(er.sh.Shards),
		rows: make(map[int][]int64, n), nextID: n, state: state,
	}
	for i, row := range rel.Rows {
		if len(row) != m {
			return nil, secerr.New(secerr.CodeBadRequest,
				"sectopk: row %d has %d attributes, relation has %d", i, len(row), m)
		}
		mr.rows[i] = append([]int64(nil), row...)
	}
	return mr, nil
}

// Name returns the relation's name.
func (mr *MutableRelation) Name() string { return mr.name }

// Epoch returns the epoch of the owner's shadow state — the epoch the
// next produced delta will target.
func (mr *MutableRelation) Epoch() uint64 {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return mr.state.Epoch
}

// LiveRows returns the live row count.
func (mr *MutableRelation) LiveRows() int {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return len(mr.rows)
}

// Encrypted returns the relation's current encrypted view — what the
// data cloud hosts at this epoch. Use it to (re-)Host after loading an
// owner bundle, to Save an epoch-stamped hosted bundle, or to issue
// tokens and reveal results at the current epoch.
func (mr *MutableRelation) Encrypted() (*EncryptedRelation, error) {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return encryptedView(mr.state, mr.owner)
}

// encryptedView wraps one mutable snapshot as the facade relation type.
func encryptedView(st *mutate.Relation, o *Owner) (*EncryptedRelation, error) {
	sh, err := shard.New(st.LiveShards())
	if err != nil {
		return nil, err
	}
	return &EncryptedRelation{sh: sh, pk: o.scheme.PublicKey(), mst: st}, nil
}

// Token issues a trapdoor valid against the current epoch's live rows.
func (mr *MutableRelation) Token(q Query) (*Token, error) {
	mr.mu.Lock()
	n := mr.state.LiveRows()
	mr.mu.Unlock()
	tk, err := mr.owner.scheme.TokenFor(n, mr.m, q.Attrs, q.Weights, q.K)
	if err != nil {
		return nil, secerr.Wrap(secerr.CodeInvalidToken, err, "sectopk: token")
	}
	return &Token{tk: tk}, nil
}

// InsertRows produces a delta adding fresh rows under newly allocated
// global ids, placed round-robin across the relation's shards (id mod
// P — the same placement Enc used, so shard membership stays a pure
// function of the id). The delta is already applied to the owner's
// shadow when this returns; ship it before producing the next one.
func (mr *MutableRelation) InsertRows(rows [][]int64) (*Delta, error) {
	if len(rows) == 0 {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: no rows to insert")
	}
	return mr.mutate(rows, nil, nil)
}

// DeleteRows produces a delta tombstoning the given global ids. The
// rows leave every query's view at the epoch the Apply lands; their
// ciphertexts remain on the dead tails until a compaction folds them.
func (mr *MutableRelation) DeleteRows(ids []int) (*Delta, error) {
	if len(ids) == 0 {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: no rows to delete")
	}
	return mr.mutate(nil, ids, nil)
}

// UpdateScores produces a delta replacing the attribute vectors of
// existing rows, keyed by global id. An update is a delete plus an
// insert of the same id inside one atomic delta: the superseded
// ciphertexts join the dead tail, the fresh ones land at their sorted
// positions, and the id stays live throughout.
func (mr *MutableRelation) UpdateScores(updates map[int][]int64) (*Delta, error) {
	if len(updates) == 0 {
		return nil, secerr.New(secerr.CodeBadRequest, "sectopk: no rows to update")
	}
	return mr.mutate(nil, nil, updates)
}

// idRow pairs a global id with its attribute vector for sorting.
type idRow struct {
	id  int
	row []int64
}

// attrPositions returns each id's position in the list that attribute
// j's sorted order produces: score descending, ties by id ascending —
// exactly core.EncryptRelationWithIDs's layout, which is what keeps a
// mutated live prefix byte-compatible with a fresh encryption.
func attrPositions(entries []idRow, j int) map[int]int {
	order := make([]idRow, len(entries))
	copy(order, entries)
	sort.Slice(order, func(x, y int) bool {
		if order[x].row[j] != order[y].row[j] {
			return order[x].row[j] > order[y].row[j]
		}
		return order[x].id < order[y].id
	})
	pos := make(map[int]int, len(order))
	for i, e := range order {
		pos[e.id] = i
	}
	return pos
}

// mutate is the shared delta builder: deletes and updates name existing
// live ids, inserts carry fresh rows. It computes per-shard,
// per-permuted-list positions from the plaintext mirror, encrypts the
// inserted cells, applies the delta to the shadow state, and commits
// the mirror — all-or-nothing.
func (mr *MutableRelation) mutate(inserts [][]int64, deletes []int, updates map[int][]int64) (*Delta, error) {
	mr.mu.Lock()
	defer mr.mu.Unlock()

	// Resolve the delete set (deleted ids plus updated ids) and the
	// insert set (fresh rows plus updated rows under their old ids).
	delSet := make(map[int]bool, len(deletes)+len(updates))
	for _, id := range deletes {
		if _, live := mr.rows[id]; !live {
			return nil, secerr.New(secerr.CodeBadRequest, "sectopk: row id %d is not live", id)
		}
		if delSet[id] {
			return nil, secerr.New(secerr.CodeBadRequest, "sectopk: duplicate delete of row id %d", id)
		}
		delSet[id] = true
	}
	var ins []idRow
	nextID := mr.nextID
	for _, row := range inserts {
		if err := mr.validRow(row); err != nil {
			return nil, err
		}
		ins = append(ins, idRow{id: nextID, row: row})
		nextID++
	}
	// Deterministic order over the update map keys, so the same logical
	// mutation always builds the same delta.
	updIDs := make([]int, 0, len(updates))
	for id := range updates {
		updIDs = append(updIDs, id)
	}
	sort.Ints(updIDs)
	for _, id := range updIDs {
		if _, live := mr.rows[id]; !live {
			return nil, secerr.New(secerr.CodeBadRequest, "sectopk: row id %d is not live", id)
		}
		if delSet[id] {
			return nil, secerr.New(secerr.CodeBadRequest, "sectopk: row id %d both deleted and updated", id)
		}
		if err := mr.validRow(updates[id]); err != nil {
			return nil, err
		}
		delSet[id] = true
		ins = append(ins, idRow{id: id, row: updates[id]})
	}

	// Group the work by shard (shard membership is id mod P).
	delByShard := make(map[int][]int, mr.p)
	for id := range delSet {
		delByShard[id%mr.p] = append(delByShard[id%mr.p], id)
	}
	insByShard := make(map[int][]idRow, mr.p)
	for _, in := range ins {
		insByShard[in.id%mr.p] = append(insByShard[in.id%mr.p], in)
	}
	touched := make(map[int]bool, mr.p)
	for s := range delByShard {
		touched[s] = true
	}
	for s := range insByShard {
		touched[s] = true
	}
	shardIDs := make([]int, 0, len(touched))
	for s := range touched {
		shardIDs = append(shardIDs, s)
	}
	sort.Ints(shardIDs)

	perm, err := mr.owner.scheme.PermutedPositions(mr.m)
	if err != nil {
		return nil, err
	}
	id, err := newDeltaID()
	if err != nil {
		return nil, err
	}
	d := &mutate.Delta{BaseEpoch: mr.state.Epoch, ID: id}
	for _, s := range shardIDs {
		sd, err := mr.shardDelta(s, delByShard[s], insByShard[s], delSet, perm)
		if err != nil {
			return nil, err
		}
		d.Shards = append(d.Shards, *sd)
	}

	// Advance the shadow through the exact code path the data cloud
	// runs; only then commit the mirror.
	next, err := mr.state.Apply(d)
	if err != nil {
		return nil, err
	}
	mr.state = next
	mr.nextID = nextID
	for id := range delSet {
		delete(mr.rows, id)
	}
	for _, in := range ins {
		mr.rows[in.id] = append([]int64(nil), in.row...)
	}
	return &Delta{d: d, params: mr.owner.scheme.Params().EHL}, nil
}

// shardDelta builds one shard's slice of the delta: delete positions
// against the shard's base live order, insert positions against its
// final live order, fresh ciphertexts for every inserted cell.
func (mr *MutableRelation) shardDelta(s int, delIDs []int, ins []idRow, delSet map[int]bool, perm []int) (*mutate.ShardDelta, error) {
	// Base = the shard's live rows before this delta; final = after.
	var base, final []idRow
	for id, row := range mr.rows {
		if id%mr.p != s {
			continue
		}
		base = append(base, idRow{id: id, row: row})
		if !delSet[id] {
			final = append(final, idRow{id: id, row: row})
		}
	}
	for _, in := range ins {
		final = append(final, idRow{id: in.id, row: in.row})
	}
	sd := &mutate.ShardDelta{Shard: s}
	// One position map per attribute, reused across all rows of this
	// shard; mapped through the PRP so Pos is indexed by stored list.
	basePos := make([]map[int]int, mr.m)
	finalPos := make([]map[int]int, mr.m)
	for j := 0; j < mr.m; j++ {
		basePos[j] = attrPositions(base, j)
		finalPos[j] = attrPositions(final, j)
	}
	sort.Ints(delIDs)
	for _, id := range delIDs {
		pos := make([]int, mr.m)
		for j := 0; j < mr.m; j++ {
			pos[perm[j]] = basePos[j][id]
		}
		sd.Deletes = append(sd.Deletes, mutate.DeleteRow{ID: id, Pos: pos})
	}
	for _, in := range ins {
		pos := make([]int, mr.m)
		items := make([]core.EncItem, mr.m)
		for j := 0; j < mr.m; j++ {
			pos[perm[j]] = finalPos[j][in.id]
			it, err := mr.owner.scheme.EncryptEntry(in.id, in.row[j])
			if err != nil {
				return nil, secerr.Wrap(secerr.CodeBadRequest, err, "sectopk: encrypting inserted cell")
			}
			items[perm[j]] = it
		}
		sd.Inserts = append(sd.Inserts, mutate.InsertRow{ID: in.id, Pos: pos, Items: items})
	}
	return sd, nil
}

// validRow checks one attribute vector's shape (range checks happen in
// EncryptEntry, which owns the score-bit bound).
func (mr *MutableRelation) validRow(row []int64) error {
	if len(row) != mr.m {
		return secerr.New(secerr.CodeBadRequest,
			"sectopk: row has %d attributes, relation has %d", len(row), mr.m)
	}
	return nil
}

// Adopt synchronizes the owner's shadow with the epoch an Apply or
// Compact reported. Equal epochs are a no-op; one ahead means the data
// cloud compacted (threshold-triggered inside an Apply, or an explicit
// Compact), which the shadow replays — compaction never changes live
// views, so the mirror needs no adjustment. Anything further fails
// with ErrRelationStale: the hosting has moved in a way this owner
// did not produce, and must be re-hosted from the owner's bundle.
func (mr *MutableRelation) Adopt(epoch uint64) error {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	switch epoch {
	case mr.state.Epoch:
		return nil
	case mr.state.Epoch + 1:
		mr.state = mr.state.Compact()
		return nil
	}
	return secerr.New(secerr.CodeRelationStale,
		"sectopk: hosted epoch %d is not adoptable from local epoch %d (re-host from the owner bundle)",
		epoch, mr.state.Epoch)
}

// DeadRows returns the tombstoned-row count awaiting compaction, per
// the owner's shadow.
func (mr *MutableRelation) DeadRows() int {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return mr.state.DeadRows()
}

// Save persists the owner's mutable-relation bundle — plaintext mirror
// plus ciphertext shadow — to a 0600 file. The shadow's ciphertexts
// are not reconstructible (fresh nonces every encryption), so this
// bundle is the only way to resume mutating after a restart with a
// shadow that still matches the hosted bytes. It holds plaintext rows
// and must never leave the owner.
func (mr *MutableRelation) Save(path string) error {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	ids := make([]int, 0, len(mr.rows))
	for id := range mr.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rows := make([][]int64, len(ids))
	for i, id := range ids {
		rows[i] = mr.rows[id]
	}
	mir := &secio.OwnerMirror{
		Name: mr.name, P: mr.p, M: mr.m,
		NextID: mr.nextID, Epoch: mr.state.Epoch,
		IDs: ids, Rows: rows,
	}
	return secio.SaveOwnerMutable(path, mir, mr.state, mr.owner.scheme.PublicKey())
}

// LoadMutable reopens a mutable relation from the bundle
// MutableRelation.Save wrote. The owner must be the one (or a restored
// copy of the one) that encrypted it — foreign key material is
// rejected.
func (o *Owner) LoadMutable(path string) (*MutableRelation, error) {
	mir, st, pk, err := secio.LoadOwnerMutable(path)
	if err != nil {
		return nil, err
	}
	if pk.N.Cmp(o.scheme.PublicKey().N) != 0 {
		return nil, secerr.New(secerr.CodeBadRequest,
			"sectopk: bundle was encrypted under a different key than this owner holds")
	}
	if mir.P != len(st.Shards) {
		return nil, secerr.New(secerr.CodeBadRequest,
			"sectopk: mirror names %d shards, shadow has %d", mir.P, len(st.Shards))
	}
	if mir.Epoch != st.Epoch {
		return nil, secerr.New(secerr.CodeBadRequest,
			"sectopk: mirror at epoch %d, shadow at epoch %d", mir.Epoch, st.Epoch)
	}
	if st.LiveRows() != len(mir.Rows) {
		return nil, secerr.New(secerr.CodeBadRequest,
			"sectopk: mirror has %d rows, shadow has %d live", len(mir.Rows), st.LiveRows())
	}
	mr := &MutableRelation{
		owner: o, name: mir.Name, m: mir.M, p: mir.P,
		rows: make(map[int][]int64, len(mir.IDs)), nextID: mir.NextID, state: st,
	}
	if mr.nextID < st.IDSpace {
		mr.nextID = st.IDSpace
	}
	for i, id := range mir.IDs {
		if len(mir.Rows[i]) != mir.M {
			return nil, secerr.New(secerr.CodeBadRequest,
				"sectopk: stored row %d has %d attributes, relation has %d", i, len(mir.Rows[i]), mir.M)
		}
		if _, dup := mr.rows[id]; dup {
			return nil, secerr.New(secerr.CodeBadRequest, "sectopk: stored mirror repeats row id %d", id)
		}
		mr.rows[id] = mir.Rows[i]
	}
	return mr, nil
}
