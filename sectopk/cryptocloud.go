package sectopk

import (
	"context"
	"net"

	"repro/internal/cloud"
	"repro/internal/secerr"
	"repro/internal/transport"
)

// CryptoCloud is the crypto cloud role (S2): the only party holding
// decryption keys. One CryptoCloud serves any number of registered
// relations, each under its own key material; every protocol request is
// routed on the relation ID it carries.
//
// Serve it over TCP with Serve, or hand it to a DataCloud in the same
// process via DataCloud.ConnectLocal.
type CryptoCloud struct {
	svc    *cloud.Service
	ledger *cloud.Ledger
	cfg    config
}

// NewCryptoCloud builds an empty crypto cloud. Options configure the
// per-relation handler pools (parallelism, nonce paths).
func NewCryptoCloud(opts ...Option) *CryptoCloud {
	return &CryptoCloud{
		svc:    cloud.NewService(),
		ledger: cloud.NewLedger(),
		cfg:    buildConfig(opts),
	}
}

// Register adds a relation under id with the owner-provisioned key
// material. Registering an ID twice fails with ErrRelationExists.
func (c *CryptoCloud) Register(id string, keys *Keys) error {
	if keys == nil || keys.km == nil {
		return secerr.New(secerr.CodeBadRequest, "sectopk: nil key material")
	}
	return c.svc.Register(id, keys.km, c.ledger, c.cfg.cloudOptions()...)
}

// Deregister removes a relation and releases its background pools.
func (c *CryptoCloud) Deregister(id string) { c.svc.Deregister(id) }

// Relations lists the registered relation IDs, sorted.
func (c *CryptoCloud) Relations() []string { return c.svc.Relations() }

// Serve accepts connections from the listener until it closes or the
// context is canceled (which also closes open connections). Each
// connection is served on its own goroutine; protocol errors are reported
// to the peer as structured codes, never by tearing the process down.
func (c *CryptoCloud) Serve(ctx context.Context, l net.Listener) error {
	return transport.Serve(ctx, l, c.svc)
}

// LeakageEvents returns everything this cloud's handlers could observe
// beyond declared ciphertext sizes — the leakage profile of Section 9 —
// as human-readable strings.
func (c *CryptoCloud) LeakageEvents() []string {
	events := c.ledger.Events()
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.String()
	}
	return out
}

// Close deregisters every relation and stops their background pools.
// Safe to call more than once.
func (c *CryptoCloud) Close() { c.svc.Close() }

// responder exposes the transport hook for in-process wiring.
func (c *CryptoCloud) responder() transport.Responder { return c.svc }
