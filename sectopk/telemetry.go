package sectopk

import (
	"time"

	"repro/internal/qos"
	"repro/internal/secerr"
	"repro/internal/telemetry"
)

// DefaultTenant is the admission bucket unidentified callers land in:
// in-process callers, wire v1/v2 peers (whose Hello predates the tenant
// field), and v3 clients that never set WithTenant.
const DefaultTenant = qos.DefaultTenant

// Rate is one tenant's admission budget: a sustained request rate plus
// a burst allowance. Burst <= 0 defaults to max(1, ceil(PerSecond)).
type Rate struct {
	PerSecond float64
	Burst     int
}

// WithTenantLimits configures a DataCloud's per-tenant QoS admission:
// requests from a tenant named in the map draw from that tenant's token
// bucket and SHED with ErrOverloaded when it is empty — immediately,
// never queued — while tenants outside the map stay unlimited (the
// session-limit gate below this layer still bounds them). The map key
// "" configures DefaultTenant, which is where in-process callers and
// clients that never set WithTenant land. Admission is also
// deadline-aware regardless of limits: a request whose context deadline
// has passed, or whose remaining budget is under the observed service
// latency, sheds with context.DeadlineExceeded instead of burning a
// slot on an answer nobody can receive. Per-tenant admit/shed counts
// surface in /metrics (sectopk_tenant_admitted_total,
// sectopk_tenant_shed_total).
func WithTenantLimits(limits map[string]Rate) Option {
	return func(c *config) {
		c.tenantLimits = make(map[string]qos.Rate, len(limits))
		for tenant, r := range limits {
			c.tenantLimits[tenant] = qos.Rate{PerSecond: r.PerSecond, Burst: r.Burst}
		}
	}
}

// WithTenant names the tenant a Client identifies as in its Hello
// (client wire v3). The server buckets the connection's requests under
// that name for QoS admission and telemetry. Unset — or against a
// pre-v3 server, which has no tenant field to read — the connection
// lands in DefaultTenant. Client-side option; DataCloud ignores it.
func WithTenant(name string) Option {
	return func(c *config) { c.tenant = name }
}

// QuerySpan is one executed request's trace record: what the serving
// plane observed between admission and answer. Spans are emitted for
// every execution through the unified path — in-process Execute,
// sessions, pools, and remote clients — including failed and shed ones
// (Code then carries the secerr code).
type QuerySpan struct {
	Relation string
	Workload Workload
	// Tenant is the admission bucket the request ran under (never "";
	// unidentified callers report DefaultTenant).
	Tenant string
	// Traffic carries the span counters: rounds, bytes, S2 calls,
	// fan-out width, merge-bound fallbacks, and the answered epoch.
	Traffic Traffic
	// Code is the secerr code string of the failure, "" on success.
	Code    string
	Elapsed time.Duration
}

// TraceSink receives one QuerySpan per executed request. Implementations
// must be safe for concurrent use and must not block: spans are emitted
// on the serving hot path.
type TraceSink interface {
	Span(QuerySpan)
}

// TraceSinkFunc adapts a plain function to a TraceSink.
type TraceSinkFunc func(QuerySpan)

// Span implements TraceSink.
func (f TraceSinkFunc) Span(s QuerySpan) { f(s) }

// WithTraceSink subscribes a sink to every query span this DataCloud
// emits. The sink sees exactly the spans the telemetry plane records
// into /metrics, one per execution, after the request finishes (or
// sheds). DataCloud option; the other roles ignore it.
func WithTraceSink(s TraceSink) Option {
	return func(c *config) { c.traceSink = s }
}

// emitSpan records one execution's span into the telemetry plane and
// fans it out to the configured sink.
func (d *DataCloud) emitSpan(w Workload, relation, tenant string, ans *Answer, err error, elapsed time.Duration) {
	code := ""
	if err != nil {
		code = string(secerr.CodeOf(err))
	}
	var tr Traffic
	if ans != nil {
		tr = ans.Traffic
	}
	tenant = qos.Canonical(tenant)
	telemetry.EmitSpan(telemetry.QuerySpan{
		Relation:       relation,
		Workload:       string(w),
		Tenant:         tenant,
		Rounds:         tr.Rounds,
		Bytes:          tr.Bytes,
		S2Calls:        tr.S2Calls,
		FanOut:         tr.FanOut,
		MergeFallbacks: tr.MergeFallbacks,
		Epoch:          tr.Epoch,
		Code:           code,
		Elapsed:        elapsed,
	})
	if s := d.cfg.traceSink; s != nil {
		s.Span(QuerySpan{
			Relation: relation, Workload: w, Tenant: tenant,
			Traffic: tr, Code: code, Elapsed: elapsed,
		})
	}
}

// mergeFallbackCount reads the process-wide merge-bound fallback
// counters (shard + cluster scopes); executions measure deltas of it.
func mergeFallbackCount() int64 {
	r := telemetry.Default()
	return r.Counter("sectopk_merge_fallbacks_total", "scope", "shard").Value() +
		r.Counter("sectopk_merge_fallbacks_total", "scope", "cluster").Value()
}
